// Obfuscation study (defender's view): how much Gaussian routing noise is
// needed to blunt the machine-learning attack? Reproduces the spirit of
// the paper's §III-I / §IV-G on a reduced-scale suite: a noise SD around
// 1% of the die height collapses the attack, and more noise adds little.
//
// Run with:
//
//	go run ./examples/obfuscation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	const splitLayer = 6
	clean, err := repro.SplitAll(designs, splitLayer)
	if err != nil {
		log.Fatal(err)
	}

	sds := []float64{0, 0.005, 0.01, 0.02}
	rng := rand.New(rand.NewSource(7))

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintf(tw, "noise SD\tavg acc@|LoC|=10\tavg acc@|LoC|=50\tavg PA success\n")
	for _, sd := range sds {
		chs := clean
		if sd > 0 {
			chs = make([]*repro.Challenge, len(clean))
			for i, ch := range clean {
				chs[i] = ch.WithNoise(sd, rng)
			}
		}
		res, err := repro.RunAttack(repro.Imp11(), chs)
		if err != nil {
			log.Fatal(err)
		}
		var a10, a50 float64
		for _, ev := range res.Evals {
			a10 += ev.AccuracyAtK(10)
			a50 += ev.AccuracyAtK(50)
		}
		pa, err := repro.RunProximityAttack(repro.Imp11(), chs)
		if err != nil {
			log.Fatal(err)
		}
		var paAvg float64
		for _, o := range pa {
			paAvg += o.Success
		}
		n := float64(len(res.Evals))
		fmt.Fprintf(tw, "%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			sd*100, a10/n*100, a50/n*100, paAvg/n*100)
	}
	tw.Flush()

	fmt.Println("\nReading the table: the attack degrades steeply once the injected")
	fmt.Println("noise reaches ~1% of the die height; doubling it further changes")
	fmt.Println("little — matching the paper's conclusion that SD ~= 1% suffices.")
}
