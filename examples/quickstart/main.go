// Quickstart: generate the synthetic benchmark suite, cut it at the top
// via layer, run the paper's Imp-11 attack with leave-one-out
// cross-validation, and print each design's List-of-Candidates quality.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	// A reduced-scale suite keeps the example under a minute; see
	// cmd/experiments for full-scale runs.
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Generated designs:")
	for _, d := range designs {
		fmt.Printf("  %-5s %6d cells %6d nets\n", d.Name, len(d.Netlist.Cells), len(d.Netlist.Nets))
	}

	// Cut every design at via layer 8: the untrusted foundry sees metal
	// 1-8 and must guess the M9 connections.
	const splitLayer = 8
	chs, err := repro.SplitAll(designs, splitLayer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSplit at via layer %d:\n", splitLayer)
	for _, ch := range chs {
		fmt.Printf("  %-5s %5d v-pins (%d cut nets)\n", ch.Design.Name, len(ch.VPins), ch.CutNets())
	}

	// Run the attack: for each design, a Bagging(REPTree) model trained on
	// the other four designs scores all candidate v-pin pairs.
	res, err := repro.RunAttack(repro.Imp11(), chs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nAttack results (Imp-11, leave-one-out):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tacc@|LoC|=1\tacc@|LoC|=5\tacc@|LoC|=20\t|LoC| for 90% acc\ttrain\ttest")
	for _, ev := range res.Evals {
		loc90 := "unreachable"
		if v := ev.LoCForAccuracy(0.9); v >= 0 {
			loc90 = fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%s\t%v\t%v\n",
			ev.Design,
			ev.AccuracyAtK(1)*100, ev.AccuracyAtK(5)*100, ev.AccuracyAtK(20)*100,
			loc90, ev.TrainDur.Round(1e6), ev.TestDur.Round(1e6))
	}
	tw.Flush()

	fmt.Println("\nInterpretation: a handful of candidates per broken net suffices to")
	fmt.Println("contain the true connection with ~90% likelihood — split manufacturing")
	fmt.Println("at the top via layer leaks most of the BEOL netlist.")
}
