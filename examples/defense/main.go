// Defense study at the layout level: instead of abstractly noising v-pin
// coordinates, actually change the design — re-route crossing nets with
// amplified detours (routing perturbation) and lift shorter nets above the
// split (wire lifting) — and measure both the security gained and the
// wirelength the defender pays.
//
// Run with:
//
//	go run ./examples/defense
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

const splitLayer = 6

// attackAccuracy runs Imp-11 leave-one-out and returns mean accuracy@10.
func attackAccuracy(name string, designs []*repro.Design) float64 {
	chs, err := repro.SplitAll(designs, splitLayer)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.Imp11()
	cfg.Name = "Imp-11-" + name
	res, err := repro.RunAttack(cfg, chs)
	if err != nil {
		log.Fatal(err)
	}
	var acc float64
	for _, ev := range res.Evals {
		acc += ev.AccuracyAtK(10)
	}
	return acc / float64(len(res.Evals))
}

func main() {
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	baseline := attackAccuracy("base", designs)

	type defense struct {
		name  string
		apply func(d *repro.Design, seed int64) (*repro.Design, repro.DefenseCost, error)
	}
	defenses := []defense{
		{"perturb x2", func(d *repro.Design, seed int64) (*repro.Design, repro.DefenseCost, error) {
			return repro.PerturbRoutes(d, splitLayer, 2.0, seed)
		}},
		{"perturb x4", func(d *repro.Design, seed int64) (*repro.Design, repro.DefenseCost, error) {
			return repro.PerturbRoutes(d, splitLayer, 4.0, seed)
		}},
		{"lift 50% of M5/M6", func(d *repro.Design, seed int64) (*repro.Design, repro.DefenseCost, error) {
			return repro.LiftNets(d, 5, 6, 2, 0.5, seed)
		}},
		{"trunk jogs <=4 tracks", func(d *repro.Design, seed int64) (*repro.Design, repro.DefenseCost, error) {
			return repro.JogTrunks(d, splitLayer, 4, 1.0, seed)
		}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintf(tw, "defense\tattack acc@|LoC|=10\tdelta\twirelength overhead\n")
	fmt.Fprintf(tw, "none\t%.1f%%\t\t\n", baseline*100)
	for _, def := range defenses {
		protected := make([]*repro.Design, len(designs))
		var totalOverhead float64
		for i, d := range designs {
			nd, cost, err := def.apply(d, int64(1000+i))
			if err != nil {
				log.Fatal(err)
			}
			protected[i] = nd
			totalOverhead += cost.Overhead()
		}
		acc := attackAccuracy(def.name, protected)
		fmt.Fprintf(tw, "%s\t%.1f%%\t%+.1fpp\t%.2f%%\n",
			def.name, acc*100, (acc-baseline)*100, totalOverhead/float64(len(designs))*100)
	}
	tw.Flush()

	fmt.Println("\nRe-routing with extra detours barely helps: legal routes stay snapped")
	fmt.Println("to tracks, so truly matching v-pins still share exact track coordinates")
	fmt.Println("— the attack's strongest feature survives. Lifting even helps the")
	fmt.Println("attacker (the new cut nets are easy trunk-endpoint pairs). What works")
	fmt.Println("is attacking the alignment invariant itself: short wrong-way jogs on")
	fmt.Println("the metal just above the split misalign matching v-pins for under 1%")
	fmt.Println("wirelength — the manufacturable counterpart of the paper's §III-I noise.")
}
