// Feature-ranking study: which layout features carry the signal that
// breaks split manufacturing, and how does their importance shift as the
// split moves to lower layers? Reproduces the analysis behind the paper's
// Fig. 7 using information gain and Fisher's discriminant ratio.
//
// Run with:
//
//	go run ./examples/featureranking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"

	"repro"
	"repro/internal/attack"
	"repro/internal/features"
	"repro/internal/ml"
)

func main() {
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, layer := range []int{8, 6, 4} {
		chs, err := repro.SplitAll(designs, layer)
		if err != nil {
			log.Fatal(err)
		}
		insts := attack.NewInstances(chs)
		radius := attack.NeighborRadiusNorm(insts, 0.90)
		rng := rand.New(rand.NewSource(int64(layer)))
		ds := attack.TrainingSet(repro.Imp11(), insts, radius, nil, rng)

		// Model-based importance: what a trained ensemble actually uses
		// (a held-out split keeps the AUC estimate honest).
		val, train := ds.SplitFrac(0.3, rng)
		model, err := ml.TrainBagging(train, ml.DefaultBaggingSize,
			ml.TreeOptions{Kind: ml.REPTree}, rng)
		if err != nil {
			log.Fatal(err)
		}
		perm := ml.PermutationImportance(model, val, rng)

		type ranked struct {
			name   string
			gain   float64
			fisher float64
			perm   float64
		}
		rows := make([]ranked, 0, features.NumFeatures)
		for f := 0; f < features.NumFeatures; f++ {
			col := ds.Column(f)
			rows = append(rows, ranked{
				name:   features.Names[f],
				gain:   ml.InfoGain(col, ds.Y, 10),
				fisher: ml.FisherRatio(col, ds.Y),
				perm:   perm[f],
			})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].gain > rows[j].gain })

		fmt.Printf("Split layer %d - features ranked by information gain:\n", layer)
		tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, "rank\tfeature\tinfo gain\tFisher ratio\tpermutation (AUC drop)")
		for i, r := range rows {
			fmt.Fprintf(tw, "%d\t%s\t%.4f\t%.4f\t%.4f\n", i+1, r.name, r.gain, r.fisher, r.perm)
		}
		tw.Flush()
		fmt.Println()
	}

	fmt.Println("Routing-derived features (v-pin positions and their Manhattan")
	fmt.Println("distance) dominate at every layer; the top-layer DiffVpinY signal")
	fmt.Println("weakens at lower splits, where more features share the work —")
	fmt.Println("the paper's argument for why lower split layers are safer.")
}
