// Proximity-attack comparison: the naive nearest-neighbour attack of
// prior work [9], the linear-regression region attack of [5], the
// fixed-threshold ML proximity attack of [18], and this paper's
// validation-based proximity attack, side by side at the top via layer.
//
// Run with:
//
//	go run ./examples/proximity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro"
	"repro/internal/priorwork"
)

func main() {
	designs, err := repro.GenerateSuite(repro.SuiteConfig{Scale: 0.4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	const splitLayer = 8
	chs, err := repro.SplitAll(designs, splitLayer)
	if err != nil {
		log.Fatal(err)
	}

	// Baselines.
	rng := rand.New(rand.NewSource(3))
	nn := make([]float64, len(chs))
	for i, ch := range chs {
		nn[i] = priorwork.NearestNeighborPA(ch, rng)
	}
	regression, err := priorwork.RunLeaveOneOut(chs, 1.0, 1)
	if err != nil {
		log.Fatal(err)
	}

	// This paper: ML candidates + validated per-design PA-LoC fraction.
	// The Y variant exploits the single routing direction above layer 8.
	outcomes, err := repro.RunProximityAttack(repro.WithY(repro.Imp9()), chs)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "design\t[9] nearest\t[5] region\tML fixed-thr [18]\tML validated (this paper)\tPA-LoC frac")
	var s1, s2, s3, s4 float64
	for i, o := range outcomes {
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t%.4f\n",
			o.Design, nn[i]*100, regression[i].PASuccess*100,
			o.FixedSuccess*100, o.Success*100, o.BestFrac)
		s1 += nn[i]
		s2 += regression[i].PASuccess
		s3 += o.FixedSuccess
		s4 += o.Success
	}
	n := float64(len(outcomes))
	fmt.Fprintf(tw, "Avg\t%.2f%%\t%.2f%%\t%.2f%%\t%.2f%%\t\n", s1/n*100, s2/n*100, s3/n*100, s4/n*100)
	tw.Flush()

	fmt.Println("\nA proximity attack must name the single correct partner for every")
	fmt.Println("broken net. Machine-learning candidate filtering lifts the success")
	fmt.Println("rate far above the geometric baselines.")
}
