// Package repro is a from-scratch Go reproduction of "Analysis of Security
// of Split Manufacturing Using Machine Learning" (Zeng, Zhang, Davoodi —
// DAC 2018). It bundles:
//
//   - a synthetic EDA substrate (standard-cell library, netlist generation,
//     row-based placement, 9-metal-layer global routing) standing in for
//     the ISPD-2011 industrial layouts the paper evaluates on;
//   - split-manufacturing challenge generation: FEOL views and v-pins with
//     hidden ground truth for any split (via) layer;
//   - the paper's machine-learning attack: Weka-style Bagging over REPTree
//     or RandomTree base classifiers on 11 pair-wise layout features, with
//     the Imp neighborhood scalability improvement, two-level pruning,
//     top-layer direction limits, threshold-controlled candidate lists, and
//     the validation-based proximity attack;
//   - the prior-work baselines the paper compares against; and
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation (see internal/experiments and cmd/experiments).
//
// This package is the facade: it re-exports the types and entry points a
// downstream user needs. The examples/ directory shows complete usage.
package repro

import (
	"io"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obfuscate"
	"repro/internal/sim"
	"repro/internal/split"
)

// Design is a fully placed-and-routed synthetic benchmark.
type Design = layout.Design

// DesignProfile parameterises single-design generation.
type DesignProfile = layout.Profile

// SuiteConfig parameterises benchmark-suite generation. Scale 1.0 is
// roughly 1/20th of the paper's industrial designs with the same relative
// proportions; see DESIGN.md.
type SuiteConfig = layout.SuiteConfig

// Challenge is a design cut at a split layer: the attacker-visible FEOL
// view plus hidden ground truth for scoring.
type Challenge = split.Challenge

// VPin is a virtual pin — the via stub where a net crosses the split layer.
type VPin = split.VPin

// AttackConfig selects one of the paper's model configurations.
type AttackConfig = attack.Config

// AttackResult is a leave-one-out attack run: one Evaluation per design.
type AttackResult = attack.Result

// Evaluation holds one design's scored candidate lists and all LoC/accuracy
// metrics.
type Evaluation = attack.Evaluation

// PAOutcome reports a proximity attack against one design.
type PAOutcome = attack.PAOutcome

// TradeoffPoint is one (LoC fraction, accuracy) point of a trade-off curve.
type TradeoffPoint = attack.TradeoffPoint

// GenerateSuite generates the five superblue-like benchmark designs.
func GenerateSuite(cfg SuiteConfig) ([]*Design, error) {
	return layout.GenerateSuite(cfg)
}

// GenerateDesign generates a single design from a profile.
func GenerateDesign(p DesignProfile) (*Design, error) {
	return layout.Generate(p)
}

// SuiteProfiles returns the five design profiles at the given scale, for
// callers who want to tweak them before generation.
func SuiteProfiles(cfg SuiteConfig) []DesignProfile {
	return layout.SuiteProfiles(cfg)
}

// SaveDesign writes a design in the .sml text exchange format — the stand-in
// for the GDSII/DEF hand-off of the paper's attack model.
func SaveDesign(w io.Writer, d *Design) error { return layout.Save(w, d) }

// LoadDesign parses a design written by SaveDesign.
func LoadDesign(r io.Reader) (*Design, error) { return layout.Load(r) }

// Split cuts a design at the given via layer (1..8; the paper studies 4, 6
// and 8) and extracts its v-pins.
func Split(d *Design, viaLayer int) (*Challenge, error) {
	return split.NewChallenge(d, viaLayer)
}

// SplitAll cuts every design at the same via layer.
func SplitAll(designs []*Design, viaLayer int) ([]*Challenge, error) {
	chs := make([]*Challenge, 0, len(designs))
	for _, d := range designs {
		c, err := split.NewChallenge(d, viaLayer)
		if err != nil {
			return nil, err
		}
		chs = append(chs, c)
	}
	return chs, nil
}

// ML9 is the paper's baseline configuration: the first nine pair features
// without the neighborhood scalability improvement.
func ML9() AttackConfig { return attack.ML9() }

// Imp9 restricts training and testing to the matched-pair neighborhood
// (§III-D) with the nine baseline features.
func Imp9() AttackConfig { return attack.Imp9() }

// Imp7 is Imp9 without the two least important features.
func Imp7() AttackConfig { return attack.Imp7() }

// Imp11 is Imp9 plus the two congestion features — the paper's strongest
// standard configuration.
func Imp11() AttackConfig { return attack.Imp11() }

// WithY returns the "Y" variant of a configuration (DiffVpinY limited to
// zero), for attacks on the highest via layer.
func WithY(c AttackConfig) AttackConfig { return attack.WithY(c) }

// WithTwoLevel returns the two-level-pruning variant of a configuration.
func WithTwoLevel(c AttackConfig) AttackConfig { return attack.WithTwoLevel(c) }

// WithRandomForest switches the configuration's base classifier to
// unpruned RandomTrees (Weka's RandomForest, the paper's earlier model
// [18]); trees = 0 selects the Weka default of 100.
func WithRandomForest(c AttackConfig, trees int) AttackConfig {
	return attack.WithBase(c, ml.RandomTree, trees)
}

// Scorer is the classifier interface the attack engine consumes.
type Scorer = attack.Scorer

// WithLogistic switches the configuration's learner family to L2-regularised
// logistic regression — a linear reference point between the prior work's
// linear regression and the paper's tree ensembles. Like every registered
// family, it is hashable and serializable, so logistic runs cache and
// checkpoint exactly like the tree ensembles.
func WithLogistic(c AttackConfig) AttackConfig {
	return attack.WithFamily(c, model.FamilyLogistic)
}

// WithMLP switches the configuration's learner family to the from-scratch
// multi-layer perceptron of the DL-perspective attack (Li et al.,
// DAC'19/TCAD'20). Combine with WithRanking for the full recast.
func WithMLP(c AttackConfig) AttackConfig {
	return attack.WithFamily(c, model.FamilyMLP)
}

// WithRanking enables the list-wise ranking head: every scored v-pin's
// candidate list is softmax-normalised into a probability distribution over
// its candidates. Rankings, CCR, and accuracy-at-K are unchanged; score
// scales seen by threshold sweeps differ.
func WithRanking(c AttackConfig) AttackConfig {
	return attack.WithRanking(c)
}

// DLMLP is the DL-perspective configuration: the widened feature set
// including routing hints, neighborhood sampling, and the MLP family.
func DLMLP() AttackConfig { return attack.DLMLP() }

// DefenseCost quantifies what an obfuscation transform costs the design.
type DefenseCost = obfuscate.Cost

// PerturbRoutes re-routes every net crossing the split layer with amplified
// jitter and detours — the paper's §III-I obfuscation realised as a real
// re-route. The returned design shares the netlist and placement.
func PerturbRoutes(d *Design, splitLayer int, jitterFactor float64, seed int64) (*Design, DefenseCost, error) {
	return obfuscate.PerturbRoutes(d, splitLayer, jitterFactor, seed)
}

// LiftNets promotes a fraction of nets with trunks in [fromLo, fromHi] by
// `up` layers ("wire lifting"), so a split above fromHi cuts more nets.
func LiftNets(d *Design, fromLo, fromHi, up int, frac float64, seed int64) (*Design, DefenseCost, error) {
	return obfuscate.LiftNets(d, fromLo, fromHi, up, frac, seed)
}

// JogTrunks displaces trunk endpoints of nets one metal above the split
// with short same-layer wrong-way jogs, breaking the exact track alignment
// of matching v-pins at near-zero wirelength cost — the manufacturable
// counterpart of the paper's Gaussian obfuscation noise.
func JogTrunks(d *Design, splitLayer, maxJogTracks int, frac float64, seed int64) (*Design, DefenseCost, error) {
	return obfuscate.JogTrunks(d, splitLayer, maxJogTracks, frac, seed)
}

// RunAttack executes the leave-one-out machine-learning attack on the
// given challenges (all cut at the same split layer).
func RunAttack(cfg AttackConfig, chs []*Challenge) (*AttackResult, error) {
	return attack.Run(cfg, chs)
}

// RunProximityAttack executes the validation-based proximity attack
// (§III-H) for every design.
func RunProximityAttack(cfg AttackConfig, chs []*Challenge) ([]PAOutcome, error) {
	return attack.RunProximity(cfg, chs)
}

// Curve evaluates the aggregate accuracy-vs-LoC-fraction trade-off of a
// run on the given fraction grid (nil selects the grid used in Fig. 9).
func Curve(res *AttackResult, fractions []float64) []TradeoffPoint {
	if fractions == nil {
		fractions = attack.CurveFractions()
	}
	return attack.Curve(res.Evals, fractions)
}

// RecoveryReport quantifies how well an attacker's reconstructed netlist
// matches the reference, both structurally (correct pairings) and
// functionally (simulated logic values).
type RecoveryReport = sim.RecoveryReport

// EvaluateRecovery rewires the challenge's BEOL according to the
// attacker's pairing (driver-side v-pin ID -> guessed partner ID),
// simulates reference and reconstruction on shared random vectors, and
// reports structural and functional recovery rates.
func EvaluateRecovery(ch *Challenge, pairing map[int]int, vectors int, seed int64) (RecoveryReport, error) {
	return sim.EvaluateRecovery(ch, pairing, vectors, seed)
}

// TruthPairing returns the ground-truth v-pin pairing of a challenge; its
// recovery rates are 100% by construction (a useful self-check).
func TruthPairing(ch *Challenge) map[int]int { return sim.TruthPairing(ch) }
