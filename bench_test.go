package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design choices
// called out in DESIGN.md §5.
//
// Each benchmark regenerates its table/figure end-to-end (attack runs
// included) on a reduced-scale suite so `go test -bench=.` finishes in
// minutes; `cmd/experiments -scale 1.0` produces the full-scale numbers
// recorded in EXPERIMENTS.md. Designs are generated once and shared;
// attack-result caches are fresh per iteration so the measured work is the
// real computation, not a cache hit.

import (
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/split"
)

// benchScale keeps the full bench sweep in the minutes range.
const benchScale = 0.25

var (
	benchOnce    sync.Once
	benchErr     error
	benchDesigns []*layout.Design
)

// benchSuite returns a fresh experiment Suite (empty caches) over the
// shared bench designs.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		s, err := experiments.NewSuite(benchScale, 1)
		if err != nil {
			benchErr = err
			return
		}
		benchDesigns = s.Designs
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return experiments.NewSuiteFromDesigns(benchDesigns, benchScale, 1)
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		if err := exp.Run(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// benchChallenges cuts the shared designs at a layer, once per call.
func benchChallenges(b *testing.B, layer int) []*split.Challenge {
	b.Helper()
	benchSuite(b) // ensure designs exist
	chs := make([]*split.Challenge, 0, len(benchDesigns))
	for _, d := range benchDesigns {
		c, err := split.NewChallenge(d, layer)
		if err != nil {
			b.Fatal(err)
		}
		chs = append(chs, c)
	}
	return chs
}

// runQuality runs cfg at the layer and reports aggregate accuracy@k=10 as
// a custom metric alongside the runtime.
func runQuality(b *testing.B, cfg attack.Config, layer int) {
	b.Helper()
	chs := benchChallenges(b, layer)
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := attack.Run(cfg, chs)
		if err != nil {
			b.Fatal(err)
		}
		acc = 0
		for _, ev := range res.Evals {
			acc += ev.AccuracyAtK(10)
		}
		acc /= float64(len(res.Evals))
	}
	b.ReportMetric(acc, "acc@10")
}

// benchWorkers measures the full leave-one-out run at a fixed worker
// count. The attack result is identical at every count (the determinism
// tests pin this); only the wall time changes, so comparing these
// benchmarks is the serial-vs-parallel speedup measurement.
func benchWorkers(b *testing.B, workers int) {
	b.Helper()
	chs := benchChallenges(b, 6)
	cfg := attack.Imp11()
	cfg.Name = "Imp-11-workers"
	cfg.Seed = 1
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := attack.Run(cfg, chs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWorkers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkRunWorkers2(b *testing.B) { benchWorkers(b, 2) }
func BenchmarkRunWorkers4(b *testing.B) { benchWorkers(b, 4) }
func BenchmarkRunWorkersMax(b *testing.B) {
	benchWorkers(b, 0) // GOMAXPROCS
}

// Ablation: the neighborhood CDF cut trades the saturation ceiling against
// runtime (§III-D discusses the 90% choice).
func BenchmarkAblationNeighborhood80(b *testing.B) {
	cfg := attack.Imp9()
	cfg.Name = "Imp-9-q80"
	cfg.NeighborQuantile = 0.80
	runQuality(b, cfg, 6)
}

func BenchmarkAblationNeighborhood90(b *testing.B) {
	runQuality(b, attack.Imp9(), 6)
}

func BenchmarkAblationNeighborhood95(b *testing.B) {
	cfg := attack.Imp9()
	cfg.Name = "Imp-9-q95"
	cfg.NeighborQuantile = 0.95
	runQuality(b, cfg, 6)
}

// Ablation: ensemble size (Weka default is 10 REPTrees).
func BenchmarkAblationTrees5(b *testing.B) {
	cfg := attack.Imp9()
	cfg.Name = "Imp-9-t5"
	cfg.NumTrees = 5
	runQuality(b, cfg, 6)
}

func BenchmarkAblationTrees25(b *testing.B) {
	cfg := attack.Imp9()
	cfg.Name = "Imp-9-t25"
	cfg.NumTrees = 25
	runQuality(b, cfg, 6)
}

// Ablation: pruned REPTree vs unpruned RandomTree base classifiers at
// equal ensemble size — isolates the effect of reduced-error pruning from
// the ensemble-size effect in Table II.
func BenchmarkAblationPruningOn(b *testing.B) {
	runQuality(b, attack.Imp7(), 6)
}

func BenchmarkAblationPruningOff(b *testing.B) {
	cfg := attack.WithBase(attack.Imp7(), ml.RandomTree, ml.DefaultBaggingSize)
	cfg.Name = "Imp-7-unpruned10"
	runQuality(b, cfg, 6)
}

// Ablation: balanced vs unbalanced negative sampling. The paper argues
// balanced sampling is essential [4]; the unbalanced variant draws four
// negatives per positive.
func BenchmarkAblationBalanced(b *testing.B) {
	runQuality(b, attack.Imp11(), 6)
}

func BenchmarkAblationUnbalanced(b *testing.B) {
	chs := benchChallenges(b, 6)
	cfg := attack.Imp11()
	cfg.Name = "Imp-11-unbalanced"
	var acc float64
	for i := 0; i < b.N; i++ {
		insts := attack.NewInstances(chs)
		acc = 0
		for target := range insts {
			var train []*attack.Instance
			for j, inst := range insts {
				if j != target {
					train = append(train, inst)
				}
			}
			rng := rand.New(rand.NewSource(int64(target)))
			radius := attack.NeighborRadiusNorm(train, 0.90)
			ds := attack.TrainingSet(cfg, train, radius, nil, rng)
			// Oversample negatives 4:1 by re-adding three more negative
			// draws per positive.
			extra := attack.TrainingSet(cfg, train, radius, nil, rng)
			for k := range extra.X {
				if !extra.Y[k] {
					ds.Add(extra.X[k], false)
				}
			}
			ev, err := attack.ScoreWithTrainingSet(cfg, ds, insts[target], radius, rng)
			if err != nil {
				b.Fatal(err)
			}
			acc += ev.AccuracyAtK(10)
		}
		acc /= float64(len(insts))
	}
	b.ReportMetric(acc, "acc@10")
}
