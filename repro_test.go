package repro

// Integration tests of the public facade: the complete pipeline a
// downstream user runs — generate, split, attack, proximity-attack —
// exercised end to end at a small scale.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/route"
)

var (
	intOnce    sync.Once
	intErr     error
	intDesigns []*Design
	intChs     []*Challenge // split layer 8
)

func fixtures(t *testing.T) ([]*Design, []*Challenge) {
	t.Helper()
	intOnce.Do(func() {
		intDesigns, intErr = GenerateSuite(SuiteConfig{Scale: 0.2, Seed: 17})
		if intErr != nil {
			return
		}
		intChs, intErr = SplitAll(intDesigns, 8)
	})
	if intErr != nil {
		t.Fatal(intErr)
	}
	return intDesigns, intChs
}

func TestGenerateSuiteFacade(t *testing.T) {
	designs, _ := fixtures(t)
	if len(designs) != 5 {
		t.Fatalf("suite has %d designs", len(designs))
	}
	names := map[string]bool{}
	for _, d := range designs {
		names[d.Name] = true
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	for _, want := range []string{"sb1", "sb5", "sb10", "sb12", "sb18"} {
		if !names[want] {
			t.Errorf("design %s missing", want)
		}
	}
}

func TestSuiteProfilesEditable(t *testing.T) {
	profiles := SuiteProfiles(SuiteConfig{Scale: 0.1, Seed: 2})
	profiles[0].NumMacros = 0
	d, err := GenerateDesign(profiles[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Netlist.Cells {
		if c.Kind.Macro {
			t.Fatal("macro generated despite NumMacros=0")
		}
	}
}

func TestSplitFacade(t *testing.T) {
	designs, chs := fixtures(t)
	if len(chs) != len(designs) {
		t.Fatalf("%d challenges for %d designs", len(chs), len(designs))
	}
	if _, err := Split(designs[0], 0); err == nil {
		t.Error("invalid split layer accepted")
	}
	if _, err := Split(designs[0], route.NumVia); err != nil {
		t.Errorf("top via layer rejected: %v", err)
	}
}

func TestEndToEndAttack(t *testing.T) {
	_, chs := fixtures(t)
	res, err := RunAttack(Imp11(), chs)
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	for _, ev := range res.Evals {
		acc += ev.AccuracyAtK(10)
	}
	acc /= float64(len(res.Evals))
	if acc < 0.6 {
		t.Errorf("end-to-end layer-8 accuracy@10 = %.3f, expected a strong attack", acc)
	}
}

func TestEndToEndProximity(t *testing.T) {
	_, chs := fixtures(t)
	outs, err := RunProximityAttack(WithY(Imp9()), chs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(chs) {
		t.Fatalf("%d outcomes", len(outs))
	}
	var sum float64
	for _, o := range outs {
		sum += o.Success
	}
	// The PA must do far better than random guessing (1/n).
	if sum/float64(len(outs)) < 0.05 {
		t.Errorf("mean PA success %.3f implausibly low", sum/float64(len(outs)))
	}
}

func TestCurveFacade(t *testing.T) {
	_, chs := fixtures(t)
	res, err := RunAttack(Imp9(), chs)
	if err != nil {
		t.Fatal(err)
	}
	pts := Curve(res, nil)
	if len(pts) == 0 {
		t.Fatal("empty default curve")
	}
	prev := -1.0
	for _, p := range pts {
		if p.LoCFrac <= prev {
			t.Error("curve fractions not increasing")
		}
		prev = p.LoCFrac
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("curve accuracy %.3f out of range", p.Accuracy)
		}
	}
	custom := Curve(res, []float64{0.01, 0.05})
	if len(custom) != 2 {
		t.Errorf("custom grid ignored")
	}
}

func TestConfigConstructors(t *testing.T) {
	if ML9().Name != "ML-9" || Imp9().Name != "Imp-9" ||
		Imp7().Name != "Imp-7" || Imp11().Name != "Imp-11" {
		t.Error("config names wrong")
	}
	if y := WithY(Imp11()); y.Name != "Imp-11Y" || !y.LimitDiffVpinY {
		t.Error("WithY wrong")
	}
	if tl := WithTwoLevel(Imp11()); !tl.TwoLevel {
		t.Error("WithTwoLevel wrong")
	}
	if rf := WithRandomForest(Imp7(), 0); rf.NumTrees != 0 || rf.BaseKind == 0 {
		// BaseKind RandomTree is non-zero; NumTrees 0 means Weka default.
		t.Error("WithRandomForest wrong")
	}
}

func TestObfuscationFacade(t *testing.T) {
	_, chs := fixtures(t)
	rng := rand.New(rand.NewSource(5))
	noised := chs[0].WithNoise(0.01, rng)
	if noised == chs[0] {
		t.Fatal("WithNoise returned the original")
	}
	if len(noised.VPins) != len(chs[0].VPins) {
		t.Fatal("noise changed the v-pin count")
	}
}
