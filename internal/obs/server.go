package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount registers the live telemetry endpoints on a caller-provided mux
// and returns their paths (for index pages):
//
//	/healthz     liveness probe ("ok")
//	/metrics     the metrics registry in Prometheus text exposition format
//	/progress    JSON snapshots of every Progress tracker
//	/spans       the live span tree as JSON (running spans included)
//	/debug/pprof the standard runtime profiles
//
// Every endpoint reads point-in-time snapshots of state the run maintains
// anyway, so serving never perturbs results: no randomness is consumed and
// no run data is mutated. Mount is how a service (the splitserved job
// server) grafts telemetry onto its own mux; Handler wraps it with an
// index for standalone -serve-obs use. A nil context serves 503 on
// everything but /healthz.
func (o *Context) Mount(mux *http.ServeMux) []string {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if o == nil {
			http.Error(w, "observability disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics().Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		ServeJSON(w, o.ProgressStatuses())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		ServeJSON(w, o.SpansReport())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return []string{"/healthz", "/metrics", "/progress", "/spans", "/debug/pprof/"}
}

// Handler returns the standalone live telemetry HTTP handler of the
// context: every Mount endpoint plus a plain-text index at "/".
func (o *Context) Handler() http.Handler {
	mux := http.NewServeMux()
	endpoints := o.Mount(mux)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "live telemetry endpoints:")
		for _, ep := range endpoints {
			fmt.Fprintf(w, "  %s\n", ep)
		}
	})
	return mux
}

// ServeJSON writes v as indented JSON with the right content type; it is
// the one JSON response path shared by the telemetry endpoints and the job
// server's API handlers.
func ServeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Server is a running live telemetry HTTP server.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the telemetry server on addr (e.g. ":9090", or
// "127.0.0.1:0" for an ephemeral port) and returns once it is listening.
// Requests are handled on background goroutines for the life of the run;
// call Close to stop. Serving requires an enabled context.
func (o *Context) Serve(addr string) (*Server, error) {
	if o == nil {
		return nil, errors.New("obs: serve: observability context is disabled")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: serve: %w", err)
	}
	s := &Server{srv: &http.Server{Handler: o.Handler()}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the server's bound address ("127.0.0.1:37213").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close gracefully shuts the server down, waiting briefly for in-flight
// requests.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
