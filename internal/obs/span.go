package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Attr is one key/value attribute of a span.
type Attr struct {
	Key   string
	Value any
}

// F builds an Attr; the name echoes slog's key-value style.
func F(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed phase of a run. Spans nest: children are created with
// Begin on the parent, and the whole tree lands in the run report. All
// methods are safe on a nil *Span, so instrumented code never checks.
type Span struct {
	o     *Context
	path  string // "/"-joined ancestry, for logs
	name  string
	start time.Time

	mu       sync.Mutex
	attrs    []Attr
	counters map[string]int64
	children []*Span
	dur      time.Duration
	ended    bool
}

func newSpan(o *Context, parent *Span, name string, attrs []Attr) *Span {
	path := name
	if parent != nil {
		path = parent.path + "/" + name
	}
	return &Span{o: o, path: path, name: name, start: time.Now(), attrs: attrs}
}

// Begin starts a child span.
func (s *Span) Begin(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.o, s, name, attrs)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	c.logBegin()
	return c
}

// SetAttr attaches (or overwrites) an attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Count adds n to a named counter scoped to this span.
func (s *Span) Count(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[key] += n
	s.mu.Unlock()
}

// End stops the span, logs it, and returns its wall-clock duration. A
// second End keeps the first duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	d := s.dur
	args := make([]any, 0, 2+2*len(s.attrs)+2*len(s.counters))
	args = append(args, "dur", d)
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value)
	}
	for k, v := range s.counters {
		args = append(args, k, v)
	}
	s.mu.Unlock()
	s.o.Log().Info("span "+s.path, args...)
	return d
}

// Dur returns the duration recorded by End (0 before End).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

func (s *Span) logBegin() {
	if s == nil {
		return
	}
	log := s.o.Log()
	if !log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	args := make([]any, 0, 2*len(s.attrs))
	s.mu.Lock()
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value)
	}
	s.mu.Unlock()
	log.Debug("begin "+s.path, args...)
}

// report snapshots the span subtree.
func (s *Span) report() *SpanReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &SpanReport{
		Name:  s.name,
		DurNS: int64(s.dur),
		Dur:   s.dur.String(),
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			r.Attrs[a.Key] = a.Value
		}
	}
	if len(s.counters) > 0 {
		r.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			r.Counters[k] = v
		}
	}
	for _, c := range s.children {
		r.Children = append(r.Children, c.report())
	}
	return r
}
