package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Attr is one key/value attribute of a span.
type Attr struct {
	Key   string
	Value any
}

// F builds an Attr; the name echoes slog's key-value style.
func F(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Span is one timed phase of a run. Spans nest: children are created with
// Begin on the parent, and the whole tree lands in the run report. All
// methods are safe on a nil *Span, so instrumented code never checks.
type Span struct {
	o     *Context
	path  string // "/"-joined ancestry, for logs
	name  string
	start time.Time
	// proc groups the span under its root span in trace exports: every
	// root span is one trace "process", inherited by all descendants.
	proc int32

	mu       sync.Mutex
	attrs    []Attr
	counters map[string]int64
	children []*Span
	dur      time.Duration
	ended    bool
	// track is the span's worker lane in trace exports: 1+worker when a
	// "worker" attribute is present, else inherited from the parent (0 at
	// the root).
	track int32
}

func newSpan(o *Context, parent *Span, name string, attrs []Attr) *Span {
	path := name
	var proc, track int32
	if parent != nil {
		path = parent.path + "/" + name
		proc = parent.proc
		track = parent.trackID()
	} else {
		proc = o.nextProc()
	}
	s := &Span{o: o, path: path, name: name, start: time.Now(),
		proc: proc, track: track, attrs: attrs}
	for _, a := range attrs {
		if a.Key == "worker" {
			if t, ok := workerTrack(a.Value); ok {
				s.track = t
			}
		}
	}
	o.Trace().beginSpan(s, parent == nil)
	return s
}

// trackID returns the span's trace track under its own lock.
func (s *Span) trackID() int32 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.track
}

// workerTrack maps a "worker" attribute value to a 1-based track ID.
func workerTrack(v any) (int32, bool) {
	switch w := v.(type) {
	case int:
		return int32(w) + 1, true
	case int32:
		return w + 1, true
	case int64:
		return int32(w) + 1, true
	}
	return 0, false
}

// Begin starts a child span.
func (s *Span) Begin(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(s.o, s, name, attrs)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	c.logBegin()
	return c
}

// SetAttr attaches (or overwrites) an attribute.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if key == "worker" {
		if t, ok := workerTrack(value); ok {
			s.track = t
		}
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Count adds n to a named counter scoped to this span.
func (s *Span) Count(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[key] += n
	s.mu.Unlock()
}

// End stops the span, logs it, and returns its wall-clock duration. A
// second End keeps the first duration.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	tr := s.o.Trace()
	s.mu.Lock()
	first := !s.ended
	if first {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	d := s.dur
	args := make([]any, 0, 2+2*len(s.attrs)+2*len(s.counters))
	args = append(args, "dur", d)
	var attrs []Attr
	var counters map[string]int64
	if first && tr != nil {
		attrs = append([]Attr(nil), s.attrs...)
		if len(s.counters) > 0 {
			counters = make(map[string]int64, len(s.counters))
		}
	}
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value)
	}
	for k, v := range s.counters {
		args = append(args, k, v)
		if counters != nil {
			counters[k] = v
		}
	}
	s.mu.Unlock()
	if first && tr != nil {
		tr.endSpan(s, s.start.Add(d), attrs, counters)
	}
	s.o.Log().Info("span "+s.path, args...)
	return d
}

// Dur returns the duration recorded by End (0 before End).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

func (s *Span) logBegin() {
	if s == nil {
		return
	}
	log := s.o.Log()
	if !log.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	args := make([]any, 0, 2*len(s.attrs))
	s.mu.Lock()
	for _, a := range s.attrs {
		args = append(args, a.Key, a.Value)
	}
	s.mu.Unlock()
	log.Debug("begin "+s.path, args...)
}

// report snapshots the span subtree. It is safe concurrently with Begin,
// SetAttr, Count, and End, so the live /spans endpoint can serve it while a
// run executes; spans still running report their elapsed time so far and
// Running=true.
func (s *Span) report() *SpanReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	r := &SpanReport{
		Name:    s.name,
		DurNS:   int64(dur),
		Dur:     dur.String(),
		Running: !s.ended,
	}
	if len(s.attrs) > 0 {
		r.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			r.Attrs[a.Key] = a.Value
		}
	}
	if len(s.counters) > 0 {
		r.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			r.Counters[k] = v
		}
	}
	for _, c := range s.children {
		r.Children = append(r.Children, c.report())
	}
	return r
}
