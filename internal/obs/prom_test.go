package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the text exposition output byte for byte:
// families sorted by name, counters and gauges as single samples, histograms
// as summaries with quantile labels plus _sum/_count and _min/_max gauges.
// Regenerate with `go test -run PrometheusGolden -update ./internal/obs/`.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("attack.targets").Add(12)
	r.Counter("suite.cache.hit").Add(3)
	r.Gauge("progress.attack.done").Set(7)
	r.Gauge("progress.attack.rate_per_s").Set(2.5)
	h := r.Histogram("pair.score_ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}

	var buf bytes.Buffer
	r.Snapshot().WritePrometheus(&buf)

	golden := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition differs from golden; rerun with -update if intentional\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePrometheusNilSnapshot(t *testing.T) {
	var buf bytes.Buffer
	(*Snapshot)(nil).WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Errorf("nil snapshot wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"attack.targets":        "attack_targets",
		"progress.a-b.eta_s":    "progress_a_b_eta_s",
		"legal_name:ok":         "legal_name:ok",
		"9starts.with.digit":    "_starts_with_digit",
		"mid9digit":             "mid9digit",
		"spaß":                  "spa_",
		"progress.sweep.pa.L6.": "progress_sweep_pa_L6_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2.5, "2.5"},
		{0, "0"},
		{-1e300, "-1e+300"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
	}
	for _, tc := range cases {
		if got := promFloat(tc.v); got != tc.want {
			t.Errorf("promFloat(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestMetricsEndpointRoundTrip checks the exposition a live server returns
// parses as the documented families (a smoke test that the content a
// Prometheus scraper sees matches the snapshot).
func TestPrometheusHasAllFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(3)
	var buf bytes.Buffer
	r.Snapshot().WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE c counter\nc 1\n",
		"# TYPE g gauge\ng 1\n",
		"# TYPE h summary\n",
		`h{quantile="0.5"} 3`,
		"h_sum 3\nh_count 1\n",
		"# TYPE h_min gauge\nh_min 3\n",
		"# TYPE h_max gauge\nh_max 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
