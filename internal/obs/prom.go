package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as summaries with p50/p90/p99 quantile samples plus _sum/_count, and the
// reservoir min/max as companion gauges. Instrument names are sanitized
// (dots and other illegal runes become underscores) and families are
// emitted in sorted name order, so the output is stable for golden tests
// and diffing. A nil snapshot writes nothing.
func (s *Snapshot) WritePrometheus(w io.Writer) {
	if s == nil {
		return
	}
	for _, k := range sortedKeys(s.Counters) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[k]))
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, promFloat(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %s\n", name, promFloat(h.P90))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, promFloat(h.P99))
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
		fmt.Fprintf(w, "# TYPE %s_min gauge\n%s_min %s\n", name, name, promFloat(h.Min))
		fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", name, name, promFloat(h.Max))
	}
}

// promName maps a dotted instrument name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune (and a leading digit)
// with '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float sample the way Prometheus expects: shortest
// round-trip representation, with IEEE specials spelled +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 1.7976931348623157e308:
		return "+Inf"
	case v < -1.7976931348623157e308:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
