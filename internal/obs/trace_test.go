package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// traceDoc mirrors the Chrome trace JSON for decoding in tests.
type traceDoc struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// TestTraceGolden pins the Chrome trace JSON byte for byte using a recorder
// fed with fixed timestamps, so any format drift (field names, metadata
// records, ordering, indentation) fails here. Regenerate with
// `go test -run TraceGolden -update ./internal/obs/`.
func TestTraceGolden(t *testing.T) {
	t0 := time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)
	r := &TraceRecorder{start: t0, cap: 16, procs: map[int32]string{1: "attack"}}
	r.emit("B", "attack", 1, 0, t0, nil)
	r.emit("B", "target", 1, 1, t0.Add(100*time.Microsecond), nil)
	r.emit("E", "target", 1, 1, t0.Add(1500*time.Microsecond),
		map[string]any{"design": "sb1", "pairs": int64(42), "worker": 0})
	r.emit("B", "target", 1, 2, t0.Add(200*time.Microsecond), nil)
	r.emit("E", "target", 1, 2, t0.Add(1800*time.Microsecond), nil)
	r.emit("E", "attack", 1, 0, t0.Add(2*time.Millisecond), nil)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace JSON differs from golden; rerun with -update if intentional\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestTraceEndToEnd drives real spans through a traced context and checks
// the exported structure without pinning timestamps: balanced B/E events,
// worker attributes mapped to thread tracks, root spans mapped to separate
// processes, and metadata naming every track.
func TestTraceEndToEnd(t *testing.T) {
	o := New(Options{Command: "test"})
	rec := o.EnableTrace(0)
	if rec == nil || o.Trace() != rec {
		t.Fatal("EnableTrace did not attach the recorder")
	}

	root := o.Begin("attack", F("cfg", "Imp-11"))
	w0 := root.Begin("target", F("worker", 0), F("design", "sb1"))
	w0.Begin("train").End()
	w0.Count("pairs", 42)
	w0.End()
	w1 := root.Begin("target", F("worker", 1))
	w1.End()
	root.End()
	second := o.Begin("report")
	second.End()

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	begins, ends := 0, 0
	procs := map[int32]bool{}
	threadNames := map[[2]int32]string{}
	processNames := map[int32]string{}
	var trainTID, w0TID int32 = -1, -1
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			begins++
			procs[e.PID] = true
			if e.Name == "train" {
				trainTID = e.TID
			}
		case "E":
			ends++
			if e.Name == "target" && e.Args["worker"] == float64(0) {
				w0TID = e.TID
				if e.Args["pairs"] != float64(42) {
					t.Errorf("span counter missing from E args: %v", e.Args)
				}
				if e.Args["design"] != "sb1" {
					t.Errorf("span attr missing from E args: %v", e.Args)
				}
			}
		case "M":
			switch e.Name {
			case "thread_name":
				threadNames[[2]int32{e.PID, e.TID}] = e.Args["name"].(string)
			case "process_name":
				processNames[e.PID] = e.Args["name"].(string)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if begins != 5 || ends != 5 {
		t.Errorf("B/E counts = %d/%d, want 5/5", begins, ends)
	}
	if len(procs) != 2 {
		t.Errorf("root spans map to %d processes, want 2", len(procs))
	}
	// worker 0 lands on track 1, and its child span inherits the track.
	if w0TID != 1 {
		t.Errorf("worker-0 span on tid %d, want 1", w0TID)
	}
	if trainTID != w0TID {
		t.Errorf("child span tid %d, parent %d — track not inherited", trainTID, w0TID)
	}
	if got := threadNames[[2]int32{1, 1}]; got != "worker 0" {
		t.Errorf("thread name for tid 1 = %q, want \"worker 0\"", got)
	}
	if got := threadNames[[2]int32{1, 0}]; got != "main" {
		t.Errorf("thread name for tid 0 = %q, want \"main\"", got)
	}
	if got := processNames[1]; got != "attack" {
		t.Errorf("process 1 named %q, want \"attack\"", got)
	}
	if got := processNames[2]; got != "report" {
		t.Errorf("process 2 named %q, want \"report\"", got)
	}
}

// TestTraceBounded verifies the recorder stops growing at its capacity and
// reports what it dropped, both via Dropped and in the exported JSON.
func TestTraceBounded(t *testing.T) {
	o := New(Options{Command: "test"})
	rec := o.EnableTrace(4)
	for i := 0; i < 10; i++ {
		o.Begin("s").End() // B + E each
	}
	if rec.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", rec.Len())
	}
	if rec.Dropped() != 16 {
		t.Errorf("Dropped = %d, want 16", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["dropped_events"] != float64(16) {
		t.Errorf("otherData.dropped_events = %v, want 16", doc.OtherData["dropped_events"])
	}
}

func TestTraceNilSafe(t *testing.T) {
	var o *Context
	if o.EnableTrace(0) != nil || o.Trace() != nil {
		t.Error("nil context produced a recorder")
	}
	if err := o.WriteTraceFile(filepath.Join(t.TempDir(), "t.json")); err != nil {
		t.Errorf("nil WriteTraceFile: %v", err)
	}
	var r *TraceRecorder
	r.emit("B", "x", 0, 0, time.Now(), nil)
	r.beginSpan(nil, false)
	r.endSpan(nil, time.Now(), nil, nil)
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Error("nil recorder has state")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	// A traced context without a recorder must also no-op.
	o2 := New(Options{Command: "x"})
	o2.Begin("s").End()
	if err := o2.WriteTraceFile(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Errorf("recorder-less WriteTraceFile: %v", err)
	}
}

// TestWriteTraceFile exercises the file path end to end: the written file
// must be valid, Perfetto-shaped JSON.
func TestWriteTraceFile(t *testing.T) {
	o := New(Options{Command: "test"})
	o.EnableTrace(0)
	sp := o.Begin("run")
	sp.Begin("phase").End()
	sp.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := o.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
}

// TestTraceSpanBeforeEnable covers spans that began before EnableTrace: they
// emit no B event, but ending them after enabling must not panic and their
// E timestamp clamps at 0 rather than going negative.
func TestTraceSpanBeforeEnable(t *testing.T) {
	o := New(Options{Command: "test"})
	sp := o.Begin("early")
	rec := o.EnableTrace(0)
	rec.start = time.Now().Add(time.Hour) // force a pre-recorder end time
	sp.End()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.TS < 0 {
			t.Errorf("negative timestamp %g on %s %s", e.TS, e.Ph, e.Name)
		}
	}
}
