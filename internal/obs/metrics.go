package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight process-local metrics registry. Instruments are
// created on first use and identified by flat dotted names. All methods are
// nil-safe: a nil *Registry hands out nil instruments whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CacheStats pairs the hit/miss counters of one named cache: lookups land
// in snapshots and run reports under "<name>.hit" and "<name>.miss". Like
// every instrument it is nil-safe — a CacheStats from a nil registry
// no-ops.
type CacheStats struct {
	hit, miss *Counter
}

// Cache returns the hit/miss counter pair of the named cache, creating the
// counters if needed.
func (r *Registry) Cache(name string) CacheStats {
	return CacheStats{hit: r.Counter(name + ".hit"), miss: r.Counter(name + ".miss")}
}

// Lookup records one cache-lookup outcome.
func (c CacheStats) Lookup(hit bool) {
	if hit {
		c.hit.Inc()
	} else {
		c.miss.Inc()
	}
}

// Hits returns the hit count so far.
func (c CacheStats) Hits() int64 { return c.hit.Value() }

// Misses returns the miss count so far.
func (c CacheStats) Misses() int64 { return c.miss.Value() }

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histReservoir bounds per-histogram memory; beyond it, observations are
// reservoir-sampled so quantiles stay representative.
const histReservoir = 4096

// Histogram accumulates float observations with exact count/sum/min/max and
// quantiles estimated from a bounded reservoir.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	samples  []float64
	lcg      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < histReservoir {
		h.samples = append(h.samples, v)
		return
	}
	// Deterministic LCG keeps the registry free of math/rand state.
	h.lcg = h.lcg*6364136223846793005 + 1442695040888963407
	if idx := h.lcg % uint64(h.count); idx < histReservoir {
		h.samples[idx] = v
	}
}

// Quantile returns the q-quantile (0..1) of the reservoir, 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileOf(h.samples, q)
}

// quantileOf copies and sorts samples, then reads one quantile. Callers
// needing several quantiles of the same reservoir should sort once and use
// sortedQuantile (see Snapshot).
func quantileOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return sortedQuantile(s, q)
}

// sortedQuantile reads the nearest-rank q-quantile from already-sorted
// samples, 0 when empty.
func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	idx := int(q*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// HistogramSummary is the exported snapshot of one histogram.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of the whole registry, JSON-ready.
type Snapshot struct {
	Counters   map[string]int64            `json:"counters,omitempty"`
	Gauges     map[string]float64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSummary, len(r.hists))
		for k, h := range r.hists {
			// Copy the reservoir under the lock, but sort it (once — every
			// quantile reads the same sorted copy) outside, so concurrent
			// Observe calls are not blocked behind the O(n log n) work.
			h.mu.Lock()
			sum := HistogramSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			sorted := append([]float64(nil), h.samples...)
			h.mu.Unlock()
			sort.Float64s(sorted)
			sum.P50 = sortedQuantile(sorted, 0.50)
			sum.P90 = sortedQuantile(sorted, 0.90)
			sum.P99 = sortedQuantile(sorted, 0.99)
			if sum.Count > 0 {
				sum.Mean = sum.Sum / float64(sum.Count)
			}
			s.Histograms[k] = sum
		}
	}
	return s
}

// WriteText dumps the snapshot in a stable, human-readable order.
func (s *Snapshot) WriteText(w io.Writer) {
	if s == nil {
		return
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(w, "  %-40s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-40s %g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(s.Histograms) {
			h := s.Histograms[k]
			fmt.Fprintf(w, "  %-40s count=%d mean=%.4g min=%g max=%g p50=%g p90=%g p99=%g\n",
				k, h.Count, h.Mean, h.Min, h.Max, h.P50, h.P90, h.P99)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
