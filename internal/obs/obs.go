// Package obs is the observability substrate of the attack pipeline:
// structured logging on log/slog, a hierarchical span timer, a lightweight
// metrics registry (counters, gauges, histograms with quantile summaries),
// machine-readable run reports, and CLI wiring for profiles.
//
// Everything is opt-in and nil-safe: library code instruments
// unconditionally against a *Context that may be nil, in which case every
// call is a no-op and the instrumented code runs at full speed. Commands
// construct a Context from flags (see CLI) only when the user asks for
// logs, metrics, or a report.
package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Context carries the observability state of one run: the logger, the span
// tree, the metrics registry, and — when enabled — the trace recorder,
// progress trackers, and live telemetry server. A nil *Context disables
// everything.
type Context struct {
	command string
	log     *slog.Logger
	reg     *Registry
	started time.Time
	procSeq atomic.Int32

	mu       sync.Mutex
	roots    []*Span
	trace    *TraceRecorder
	progress []*Progress
}

// Options configures a Context.
type Options struct {
	// Command names the producing command in reports.
	Command string
	// Logger receives structured logs; nil disables logging while keeping
	// spans and metrics active.
	Logger *slog.Logger
}

// New creates an enabled observability context.
func New(opts Options) *Context {
	return &Context{
		command: opts.Command,
		log:     opts.Logger,
		reg:     NewRegistry(),
		started: time.Now(),
	}
}

// Enabled reports whether the context records anything.
func (o *Context) Enabled() bool { return o != nil }

// Log returns the context's logger; it is never nil — a disabled context
// (or one constructed without a logger) yields a logger that discards
// every record without formatting it.
func (o *Context) Log() *slog.Logger {
	if o == nil || o.log == nil {
		return nopLogger
	}
	return o.log
}

// Metrics returns the context's metrics registry; nil when disabled (all
// Registry, Counter, Gauge, and Histogram methods are nil-safe, so chained
// calls like o.Metrics().Counter("x").Inc() are always legal).
func (o *Context) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Begin starts a root-level span.
func (o *Context) Begin(name string, attrs ...Attr) *Span {
	if o == nil {
		return nil
	}
	s := newSpan(o, nil, name, attrs)
	o.mu.Lock()
	o.roots = append(o.roots, s)
	o.mu.Unlock()
	s.logBegin()
	return s
}

// BeginUnder starts a span under parent, or at root level when parent is
// nil. It lets library code nest under a caller-provided span without
// caring whether one exists.
func (o *Context) BeginUnder(parent *Span, name string, attrs ...Attr) *Span {
	if parent != nil {
		return parent.Begin(name, attrs...)
	}
	return o.Begin(name, attrs...)
}

// nextProc hands out the trace "process" ID of a new root span.
func (o *Context) nextProc() int32 {
	if o == nil {
		return 0
	}
	return o.procSeq.Add(1)
}

// SpansReport snapshots every root span subtree, including spans still
// running (reported with their elapsed time so far). It is safe while spans
// begin and end concurrently; the live /spans endpoint serves it.
func (o *Context) SpansReport() []*SpanReport {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	roots := append([]*Span(nil), o.roots...)
	o.mu.Unlock()
	out := make([]*SpanReport, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.report())
	}
	return out
}

// nopLogger discards records at the handler level, before formatting.
var nopLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
