package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI bundles the observability flags shared by every command in cmd/.
// Typical wiring:
//
//	var cli obs.CLI
//	cli.Register(flag.CommandLine)
//	flag.Parse()
//	if cli.ShowVersion { fmt.Println(obs.Version()); return }
//	o, err := cli.Setup("mycmd") // o may be nil: observability is opt-in
//	defer cli.Finish(o, configMap, summaryMap)
type CLI struct {
	Verbose     bool
	LogFormat   string
	ReportPath  string
	DumpMetrics bool
	CPUProfile  string
	MemProfile  string
	ShowVersion bool
	// Workers bounds the worker goroutines of parallel pipeline stages
	// (suite generation, per-target attack runs, ensemble training, config
	// sweeps). Zero selects GOMAXPROCS. Results are bit-identical at any
	// value.
	Workers int
	// ServeObs, when non-empty, serves live telemetry (/metrics in
	// Prometheus format, /progress, /spans, /healthz, /debug/pprof) on
	// this address for the duration of the run.
	ServeObs string
	// TracePath, when non-empty, records span begin/end events and writes
	// them as Chrome trace-event JSON (Perfetto-loadable) to this path at
	// exit.
	TracePath string

	cpuFile *os.File
	server  *Server
}

// Register installs the flags on fs. The -serve-obs and -trace flags are
// defined here, once, so every command shares one definition and cannot
// drift.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Verbose, "v", false, "verbose: structured span/phase logs on stderr")
	fs.IntVar(&c.Workers, "workers", 0, "max worker goroutines for parallel stages (0 = GOMAXPROCS); results are identical at any value")
	fs.StringVar(&c.LogFormat, "log-format", "text", "log format: text or json")
	fs.StringVar(&c.ReportPath, "report", "", "write a JSON run report to this path")
	fs.BoolVar(&c.DumpMetrics, "metrics", false, "dump the metrics registry to stderr at exit")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this path at exit")
	fs.BoolVar(&c.ShowVersion, "version", false, "print version and exit")
	fs.StringVar(&c.ServeObs, "serve-obs", "", "serve live telemetry (/metrics, /progress, /spans, /healthz, /debug/pprof) on this address, e.g. :9090")
	fs.StringVar(&c.TracePath, "trace", "", "write a Chrome trace-event (Perfetto) JSON span timeline to this path")
}

// Setup starts profiling and returns the observability context implied by
// the flags — nil when every observability feature is off, so the
// instrumented pipeline runs exactly as before.
func (c *CLI) Setup(command string) (*Context, error) {
	if c.LogFormat != "text" && c.LogFormat != "json" {
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", c.LogFormat)
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	if !c.Verbose && c.ReportPath == "" && !c.DumpMetrics && c.ServeObs == "" && c.TracePath == "" {
		return nil, nil
	}
	var logger *slog.Logger
	if c.Verbose {
		hopts := &slog.HandlerOptions{Level: slog.LevelInfo}
		if c.LogFormat == "json" {
			logger = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
		} else {
			logger = slog.New(slog.NewTextHandler(os.Stderr, hopts))
		}
	}
	o := New(Options{Command: command, Logger: logger})
	if c.TracePath != "" {
		o.EnableTrace(0)
	}
	if c.ServeObs != "" {
		srv, err := o.Serve(c.ServeObs)
		if err != nil {
			return nil, err
		}
		c.server = srv
		fmt.Fprintf(os.Stderr, "obs: serving live telemetry on http://%s\n", srv.Addr())
	}
	return o, nil
}

// ServerAddr returns the bound address of the live telemetry server, empty
// when -serve-obs is off.
func (c *CLI) ServerAddr() string {
	if c.server == nil {
		return ""
	}
	return c.server.Addr()
}

// Finish runs the at-exit observability work: it shuts down the live
// telemetry server, writes the Chrome trace file, stops the CPU profile,
// writes the heap profile, dumps the metrics registry, and writes the run
// report with the caller's config and summary blocks attached.
func (c *CLI) Finish(o *Context, config, summary map[string]any) error {
	if c.server != nil {
		if err := c.server.Close(); err != nil {
			return fmt.Errorf("obs: serve-obs: %w", err)
		}
		c.server = nil
	}
	if c.TracePath != "" && o != nil {
		if err := o.WriteTraceFile(c.TracePath); err != nil {
			return err
		}
		o.Log().Info("trace written", "path", c.TracePath,
			"events", o.Trace().Len(), "dropped", o.Trace().Dropped())
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return fmt.Errorf("obs: cpuprofile: %w", err)
		}
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
	}
	if c.DumpMetrics && o != nil {
		fmt.Fprintln(os.Stderr, "metrics registry:")
		o.Metrics().Snapshot().WriteText(os.Stderr)
	}
	if c.ReportPath != "" && o != nil {
		rep := o.BuildReport()
		rep.Config = config
		rep.Summary = summary
		if err := WriteReportFile(c.ReportPath, rep); err != nil {
			return err
		}
		o.Log().Info("run report written", "path", c.ReportPath)
	}
	return nil
}
