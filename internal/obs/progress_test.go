package obs

import (
	"testing"
	"time"
)

func TestProgressGaugesAndStatus(t *testing.T) {
	o := New(Options{Command: "test"})
	p := o.NewProgress("attack.Imp-11.L6", 10)
	if p == nil {
		t.Fatal("NewProgress returned nil on an enabled context")
	}
	// Backdate the start so rate and ETA are well defined and positive.
	p.start = time.Now().Add(-2 * time.Second)
	p.Add(1)
	p.Add(3)
	if p.Done() != 4 {
		t.Errorf("Done = %d, want 4", p.Done())
	}

	g := o.Metrics().Snapshot().Gauges
	if g["progress.attack.Imp-11.L6.done"] != 4 {
		t.Errorf("done gauge = %g, want 4", g["progress.attack.Imp-11.L6.done"])
	}
	if g["progress.attack.Imp-11.L6.total"] != 10 {
		t.Errorf("total gauge = %g, want 10", g["progress.attack.Imp-11.L6.total"])
	}
	if g["progress.attack.Imp-11.L6.rate_per_s"] <= 0 {
		t.Errorf("rate gauge = %g, want > 0", g["progress.attack.Imp-11.L6.rate_per_s"])
	}
	if g["progress.attack.Imp-11.L6.eta_s"] <= 0 {
		t.Errorf("eta gauge = %g, want > 0", g["progress.attack.Imp-11.L6.eta_s"])
	}

	sts := o.ProgressStatuses()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	st := sts[0]
	if st.Name != "attack.Imp-11.L6" || st.Done != 4 || st.Total != 10 {
		t.Errorf("status = %+v", st)
	}
	if st.Frac != 0.4 {
		t.Errorf("frac = %g, want 0.4", st.Frac)
	}
	if st.RatePerS <= 0 || st.EtaS <= 0 || st.ElapsedS <= 0 {
		t.Errorf("rate/eta/elapsed = %g/%g/%g, want all > 0", st.RatePerS, st.EtaS, st.ElapsedS)
	}
	if st.Finished {
		t.Error("tracker reports finished before Finish")
	}

	p.Finish()
	st = o.ProgressStatuses()[0]
	if !st.Finished || st.EtaS != 0 {
		t.Errorf("after Finish: finished=%v eta=%g, want true/0", st.Finished, st.EtaS)
	}
	if v := o.Metrics().Snapshot().Gauges["progress.attack.Imp-11.L6.eta_s"]; v != 0 {
		t.Errorf("eta gauge after Finish = %g, want 0", v)
	}
}

func TestProgressCompletionZeroesEta(t *testing.T) {
	o := New(Options{Command: "test"})
	p := o.NewProgress("sweep", 2)
	p.start = time.Now().Add(-time.Second)
	p.Add(2)
	if v := o.Metrics().Snapshot().Gauges["progress.sweep.eta_s"]; v != 0 {
		t.Errorf("eta at done==total = %g, want 0", v)
	}
	st := o.ProgressStatuses()[0]
	if st.EtaS != 0 || st.Frac != 1 {
		t.Errorf("status at completion = %+v", st)
	}
}

func TestProgressMultipleTrackersInOrder(t *testing.T) {
	o := New(Options{Command: "test"})
	o.NewProgress("first", 1)
	o.NewProgress("second", 2)
	sts := o.ProgressStatuses()
	if len(sts) != 2 || sts[0].Name != "first" || sts[1].Name != "second" {
		t.Errorf("statuses out of order: %+v", sts)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var o *Context
	p := o.NewProgress("x", 5)
	if p != nil {
		t.Fatal("nil context produced a tracker")
	}
	p.Add(1)
	p.Finish()
	if p.Done() != 0 {
		t.Error("nil tracker has state")
	}
	if o.ProgressStatuses() != nil {
		t.Error("nil context has statuses")
	}
}
