package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// SpanReport is the JSON form of one span subtree.
type SpanReport struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
	Dur   string `json:"dur"`
	// Running marks a span that had not ended when the report was taken
	// (live /spans serving); its durations are elapsed-so-far.
	Running  bool             `json:"running,omitempty"`
	Attrs    map[string]any   `json:"attrs,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*SpanReport    `json:"children,omitempty"`
}

// Find returns the first span named name in a depth-first walk of the
// subtree (including the receiver), or nil.
func (s *SpanReport) Find(name string) *SpanReport {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Report is the machine-readable record of one run: provenance, the span
// tree, the metrics snapshot, and command-specific config/summary blocks.
// Reports written across PRs form a diffable perf trajectory.
type Report struct {
	Command      string         `json:"command"`
	Version      string         `json:"version"`
	GoVersion    string         `json:"go_version"`
	Config       map[string]any `json:"config,omitempty"`
	Summary      map[string]any `json:"summary,omitempty"`
	WallNS       int64          `json:"wall_ns"`
	Wall         string         `json:"wall"`
	PeakRSSBytes int64          `json:"peak_rss_bytes,omitempty"`
	Spans        []*SpanReport  `json:"spans,omitempty"`
	Metrics      *Snapshot      `json:"metrics,omitempty"`
}

// Find returns the first span named name across all root span trees.
func (r *Report) Find(name string) *SpanReport {
	if r == nil {
		return nil
	}
	for _, s := range r.Spans {
		if hit := s.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// BuildReport snapshots the context into a Report. Nil context yields nil.
func (o *Context) BuildReport() *Report {
	if o == nil {
		return nil
	}
	wall := time.Since(o.started)
	r := &Report{
		Command:      o.command,
		Version:      Version(),
		GoVersion:    runtime.Version(),
		WallNS:       int64(wall),
		Wall:         wall.String(),
		PeakRSSBytes: PeakRSS(),
		Metrics:      o.reg.Snapshot(),
	}
	o.mu.Lock()
	roots := append([]*Span(nil), o.roots...)
	o.mu.Unlock()
	for _, s := range roots {
		r.Spans = append(r.Spans, s.report())
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReportFile writes the report to path.
func WriteReportFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: report: %w", err)
	}
	return f.Close()
}

// PeakRSS returns the process's peak resident set size in bytes (VmHWM),
// or 0 where unavailable (non-Linux platforms).
func PeakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// Version reports the build's module version plus VCS revision, via
// runtime/debug.ReadBuildInfo, for run-report provenance.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	if v != "" && v != "(devel)" {
		// Module-aware builds already carry a (pseudo-)version with any
		// VCS dirty marker baked in.
		return v
	}
	v = "(devel)"
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += "+" + rev
		if dirty {
			v += "-dirty"
		}
	}
	return v
}
