package obs

import (
	"sync/atomic"
	"time"
)

// Progress tracks one bounded unit of work — targets attacked, configs
// swept, experiments run — and exports its state as gauges
// ("progress.<name>.done", ".total", ".rate_per_s", ".eta_s") so /metrics
// and /progress show how far along a run is and when it will finish.
// Add is a few atomic operations; call it per work unit, not per pair.
// All methods are nil-safe: a Progress from a nil *Context no-ops.
type Progress struct {
	name     string
	start    time.Time
	total    atomic.Int64
	done     atomic.Int64
	finished atomic.Bool

	doneG, totalG, rateG, etaG *Gauge
}

// NewProgress registers a progress tracker for total units of work under
// name. Names should be unique among trackers alive at the same time —
// concurrent trackers sharing a name each appear in /progress, but
// last-writer-wins on the shared gauges. A nil context returns nil.
func (o *Context) NewProgress(name string, total int64) *Progress {
	if o == nil {
		return nil
	}
	p := &Progress{
		name:   name,
		start:  time.Now(),
		doneG:  o.reg.Gauge("progress." + name + ".done"),
		totalG: o.reg.Gauge("progress." + name + ".total"),
		rateG:  o.reg.Gauge("progress." + name + ".rate_per_s"),
		etaG:   o.reg.Gauge("progress." + name + ".eta_s"),
	}
	p.total.Store(total)
	p.totalG.Set(float64(total))
	p.doneG.Set(0)
	o.mu.Lock()
	o.progress = append(o.progress, p)
	o.mu.Unlock()
	return p
}

// Add records n completed units and refreshes the exported gauges.
func (p *Progress) Add(n int64) {
	if p == nil {
		return
	}
	done := p.done.Add(n)
	p.doneG.Set(float64(done))
	elapsed := time.Since(p.start).Seconds()
	if elapsed <= 0 {
		return
	}
	rate := float64(done) / elapsed
	p.rateG.Set(rate)
	if total := p.total.Load(); total > done && rate > 0 {
		p.etaG.Set(float64(total-done) / rate)
	} else {
		p.etaG.Set(0)
	}
}

// Finish marks the tracker complete and zeroes its ETA. Further Adds still
// count but the tracker reports finished.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.finished.Store(true)
	p.etaG.Set(0)
}

// Done returns the completed unit count.
func (p *Progress) Done() int64 {
	if p == nil {
		return 0
	}
	return p.done.Load()
}

// ProgressStatus is the JSON snapshot of one tracker, served by /progress.
type ProgressStatus struct {
	Name     string  `json:"name"`
	Done     int64   `json:"done"`
	Total    int64   `json:"total"`
	Frac     float64 `json:"frac"`
	RatePerS float64 `json:"rate_per_s"`
	// EtaS estimates the seconds remaining at the observed rate; 0 when
	// done, finished, or no units have completed yet.
	EtaS     float64 `json:"eta_s"`
	ElapsedS float64 `json:"elapsed_s"`
	Finished bool    `json:"finished"`
}

// status snapshots the tracker.
func (p *Progress) status() ProgressStatus {
	done := p.done.Load()
	total := p.total.Load()
	elapsed := time.Since(p.start).Seconds()
	st := ProgressStatus{
		Name: p.name, Done: done, Total: total,
		ElapsedS: elapsed, Finished: p.finished.Load(),
	}
	if total > 0 {
		st.Frac = float64(done) / float64(total)
	}
	if elapsed > 0 && done > 0 {
		st.RatePerS = float64(done) / elapsed
		if !st.Finished && total > done {
			st.EtaS = float64(total-done) / st.RatePerS
		}
	}
	return st
}

// ProgressStatuses snapshots every registered tracker in registration
// order; nil context yields nil.
func (o *Context) ProgressStatuses() []ProgressStatus {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	trackers := append([]*Progress(nil), o.progress...)
	o.mu.Unlock()
	out := make([]ProgressStatus, 0, len(trackers))
	for _, p := range trackers {
		out = append(out, p.status())
	}
	return out
}
