package obs

import (
	"fmt"
	"io"
	"testing"
)

// BenchmarkRegistrySnapshot measures snapshotting a registry with full
// histogram reservoirs — the /metrics hot path. Snapshot sorts each
// reservoir once and reads all three quantiles from the sorted copy (it
// used to copy and sort per quantile).
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		h := r.Histogram(fmt.Sprintf("h%d", i))
		for j := 0; j < histReservoir; j++ {
			h.Observe(float64(j * (i + 1) % 997))
		}
	}
	for i := 0; i < 16; i++ {
		r.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
		r.Gauge(fmt.Sprintf("g%d", i)).Set(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}

// BenchmarkWritePrometheus measures rendering a populated snapshot to the
// exposition format.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		h := r.Histogram(fmt.Sprintf("h%d", i))
		for j := 0; j < 1000; j++ {
			h.Observe(float64(j))
		}
	}
	for i := 0; i < 16; i++ {
		r.Counter(fmt.Sprintf("c%d", i)).Add(int64(i))
	}
	s := r.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WritePrometheus(io.Discard)
	}
}

// BenchmarkSpanTracedVsUntraced shows what a traced span costs relative to
// the plain span path (both against an enabled context; the nil-context
// path is free and covered by AllocsPerRun tests in internal/attack).
func BenchmarkSpanTracedVsUntraced(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		o := New(Options{Command: "bench"})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Begin("s").End()
		}
	})
	b.Run("traced", func(b *testing.B) {
		o := New(Options{Command: "bench"})
		o.EnableTrace(1 << 20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Begin("s").End()
		}
	})
}
