package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

func TestServerEndpoints(t *testing.T) {
	o := New(Options{Command: "test"})
	o.Metrics().Counter("attack.targets").Add(5)
	sp := o.Begin("run", F("cfg", "Imp-11"))
	prog := o.NewProgress("work", 4)
	prog.Add(1)

	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	code, ctype, body := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, ctype, body = get(t, base+"/metrics")
	if code != 200 {
		t.Errorf("/metrics = %d", code)
	}
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "# TYPE attack_targets counter\nattack_targets 5\n") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.Contains(body, "progress_work_done 1") {
		t.Errorf("/metrics missing progress gauge:\n%s", body)
	}

	code, ctype, body = get(t, base+"/progress")
	if code != 200 || ctype != "application/json" {
		t.Errorf("/progress = %d %q", code, ctype)
	}
	var sts []ProgressStatus
	if err := json.Unmarshal([]byte(body), &sts); err != nil {
		t.Fatalf("/progress invalid JSON: %v", err)
	}
	if len(sts) != 1 || sts[0].Name != "work" || sts[0].Done != 1 {
		t.Errorf("/progress = %+v", sts)
	}

	code, _, body = get(t, base+"/spans")
	if code != 200 {
		t.Errorf("/spans = %d", code)
	}
	var spans []*SpanReport
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/spans invalid JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "run" || !spans[0].Running {
		t.Errorf("/spans = %+v", spans)
	}
	sp.End()
	_, _, body = get(t, base+"/spans")
	spans = nil // Running is omitempty: don't merge into the old snapshot
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatal(err)
	}
	if spans[0].Running {
		t.Error("/spans still reports the ended span as running")
	}

	code, _, body = get(t, base+"/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	code, _, _ = get(t, base+"/nosuch")
	if code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
	code, _, body = get(t, base+"/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}

	if srv.Addr() == "" {
		t.Error("Addr empty on a listening server")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestServeNilContext(t *testing.T) {
	var o *Context
	if _, err := o.Serve("127.0.0.1:0"); err == nil {
		t.Error("nil context Serve must fail")
	}
	var s *Server
	if s.Addr() != "" {
		t.Error("nil server has an address")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

func TestServeBadAddress(t *testing.T) {
	o := New(Options{Command: "test"})
	if _, err := o.Serve("definitely:not:an:addr"); err == nil {
		t.Error("bad address accepted")
	}
}

// TestServerConcurrentWithRun hammers the registry, span tree, trace
// recorder, and progress trackers from worker goroutines while others
// scrape every live endpoint — the -race CI job turns any unsynchronized
// access into a failure. It also re-checks the serving-doesn't-perturb
// claim: the counters must come out exact.
func TestServerConcurrentWithRun(t *testing.T) {
	o := New(Options{Command: "race"})
	o.EnableTrace(1 << 10)
	srv, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	const workers, iters = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prog := o.NewProgress(fmt.Sprintf("hammer.%d", w), iters)
			root := o.Begin("hammer", F("worker", w))
			for i := 0; i < iters; i++ {
				sp := root.Begin("unit", F("i", i))
				sp.Count("n", 1)
				o.Metrics().Counter("hits").Inc()
				o.Metrics().Histogram("lat").Observe(float64(i))
				o.Metrics().Gauge("last").Set(float64(i))
				sp.End()
				prog.Add(1)
			}
			root.End()
			prog.Finish()
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, ep := range []string{"/metrics", "/spans", "/progress", "/healthz"} {
					resp, err := http.Get(base + ep)
					if err != nil {
						t.Errorf("GET %s: %v", ep, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()

	if v := o.Metrics().Counter("hits").Value(); v != workers*iters {
		t.Errorf("hits = %d, want %d — serving perturbed the run", v, workers*iters)
	}
	snap := o.Metrics().Snapshot()
	if snap.Histograms["lat"].Count != workers*iters {
		t.Errorf("histogram count = %d, want %d", snap.Histograms["lat"].Count, workers*iters)
	}
	for _, st := range o.ProgressStatuses() {
		if st.Done != iters || !st.Finished {
			t.Errorf("tracker %s = %+v", st.Name, st)
		}
	}
}
