package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilContextIsSafeAndCheap(t *testing.T) {
	var o *Context
	if o.Enabled() {
		t.Error("nil context reports enabled")
	}
	if o.Log() == nil {
		t.Fatal("nil context must still hand out a logger")
	}
	o.Log().Info("discarded")

	sp := o.Begin("root", F("k", 1))
	if sp != nil {
		t.Fatal("nil context produced a span")
	}
	child := sp.Begin("child")
	child.SetAttr("x", 2)
	child.Count("n", 3)
	if d := child.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	if s2 := o.BeginUnder(nil, "x"); s2 != nil {
		t.Fatal("nil context BeginUnder produced a span")
	}

	// The whole chained metrics path must no-op.
	o.Metrics().Counter("c").Inc()
	o.Metrics().Gauge("g").Set(1)
	o.Metrics().Histogram("h").Observe(1)
	if o.Metrics().Counter("c").Value() != 0 {
		t.Error("nil counter has a value")
	}
	if o.Metrics().Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}
	if o.BuildReport() != nil {
		t.Error("nil context built a report")
	}
}

func TestSpanNesting(t *testing.T) {
	o := New(Options{Command: "test"})
	root := o.Begin("root", F("cfg", "Imp-11"))
	a := root.Begin("a")
	b := a.Begin("b", F("deep", true))
	b.Count("items", 2)
	b.Count("items", 3)
	b.End()
	a.End()
	inner := o.BeginUnder(root, "c")
	inner.End()
	root.End()
	second := o.Begin("second")
	second.End()

	rep := o.BuildReport()
	if len(rep.Spans) != 2 {
		t.Fatalf("got %d root spans, want 2", len(rep.Spans))
	}
	r := rep.Spans[0]
	if r.Name != "root" || len(r.Children) != 2 {
		t.Fatalf("root span %q has %d children, want root/2", r.Name, len(r.Children))
	}
	if r.Children[0].Name != "a" || r.Children[1].Name != "c" {
		t.Errorf("children %q, %q", r.Children[0].Name, r.Children[1].Name)
	}
	bRep := rep.Find("b")
	if bRep == nil {
		t.Fatal("Find(b) = nil")
	}
	if bRep.Counters["items"] != 5 {
		t.Errorf("span counter = %d, want 5", bRep.Counters["items"])
	}
	if bRep.Attrs["deep"] != true {
		t.Errorf("span attr deep = %v", bRep.Attrs["deep"])
	}
	// A parent's duration covers its children.
	if r.DurNS < r.Children[0].DurNS {
		t.Errorf("root dur %d < child dur %d", r.DurNS, r.Children[0].DurNS)
	}
	if rep.Find("nosuch") != nil {
		t.Error("Find(nosuch) != nil")
	}
}

func TestSpanEndIdempotentAndLogged(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	o := New(Options{Command: "test", Logger: logger})
	sp := o.Begin("phase", F("design", "sb1"))
	d1 := sp.End()
	time.Sleep(time.Millisecond)
	d2 := sp.End()
	if d1 != d2 {
		t.Errorf("second End changed duration: %v vs %v", d1, d2)
	}
	if sp.Dur() != d1 {
		t.Errorf("Dur() = %v, want %v", sp.Dur(), d1)
	}
	if !strings.Contains(buf.String(), "span phase") || !strings.Contains(buf.String(), "design=sb1") {
		t.Errorf("span log missing fields: %q", buf.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	snap := r.Snapshot()
	s, ok := snap.Histograms["lat"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Errorf("count/min/max = %d/%g/%g", s.Count, s.Min, s.Max)
	}
	if math.Abs(s.Mean-500.5) > 1e-9 {
		t.Errorf("mean = %g, want 500.5", s.Mean)
	}
	// Reservoir not yet exceeded, so quantiles are exact nearest-rank.
	if math.Abs(s.P50-500) > 1 || math.Abs(s.P90-900) > 1 || math.Abs(s.P99-990) > 1 {
		t.Errorf("quantiles p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
}

func TestHistogramReservoirOverflow(t *testing.T) {
	h := &Histogram{}
	const n = 10 * histReservoir
	for i := 0; i < n; i++ {
		h.Observe(float64(i % 100))
	}
	if h.count != n {
		t.Fatalf("count = %d, want %d", h.count, n)
	}
	if len(h.samples) != histReservoir {
		t.Fatalf("reservoir size %d, want %d", len(h.samples), histReservoir)
	}
	// Values are uniform over 0..99: the median estimate must land nearby.
	if q := h.Quantile(0.5); q < 30 || q > 70 {
		t.Errorf("overflowed reservoir p50 = %g, want ≈ 50", q)
	}
}

func TestCountersAndGaugesConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	r.Gauge("g").Set(2.5)
	if v := r.Gauge("g").Value(); v != 2.5 {
		t.Errorf("gauge = %g", v)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	o := New(Options{Command: "roundtrip"})
	sp := o.Begin("outer", F("layer", 8))
	sp.Begin("inner").End()
	sp.End()
	o.Metrics().Counter("suite.cache.hit").Add(3)
	o.Metrics().Histogram("sizes").Observe(42)

	rep := o.BuildReport()
	rep.Config = map[string]any{"design": "sb1"}
	rep.Summary = map[string]any{"vpins": 96}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Command != "roundtrip" || back.Version == "" || back.GoVersion == "" {
		t.Errorf("provenance lost: %+v", back)
	}
	if back.Find("inner") == nil {
		t.Error("span tree lost in round trip")
	}
	if back.Metrics == nil || back.Metrics.Counters["suite.cache.hit"] != 3 {
		t.Error("metrics lost in round trip")
	}
	if hs := back.Metrics.Histograms["sizes"]; hs.Count != 1 || hs.Max != 42 {
		t.Errorf("histogram summary lost: %+v", hs)
	}
	if back.Config["design"] != "sb1" {
		t.Error("config lost in round trip")
	}
	if back.WallNS <= 0 {
		t.Error("wall duration missing")
	}
}

func TestCLISetupAndFinish(t *testing.T) {
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	var cli CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cli.Register(fs)
	err := fs.Parse([]string{
		"-report", reportPath, "-cpuprofile", cpuPath, "-memprofile", memPath,
		"-log-format", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := cli.Setup("clitest")
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("-report must enable the context")
	}
	o.Begin("work").End()
	if err := cli.Finish(o, map[string]any{"k": "v"}, map[string]any{"n": 1}); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("written report invalid: %v", err)
	}
	if rep.Command != "clitest" || rep.Find("work") == nil {
		t.Errorf("report content wrong: %+v", rep)
	}
	for _, p := range []string{cpuPath, memPath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty", p)
		}
	}
}

// TestCLIServeObsAndTrace wires the shared -serve-obs and -trace flags end
// to end: Setup must enable the context, start the server, and attach the
// recorder; Finish must shut the server down and write the trace file.
func TestCLIServeObsAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")

	var cli CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cli.Register(fs)
	if err := fs.Parse([]string{"-serve-obs", "127.0.0.1:0", "-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	o, err := cli.Setup("clitest")
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("-serve-obs/-trace must enable the context")
	}
	if o.Trace() == nil {
		t.Fatal("-trace did not attach a recorder")
	}
	addr := cli.ServerAddr()
	if addr == "" {
		t.Fatal("-serve-obs did not start a server")
	}
	o.Begin("work").End()

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("live server unreachable: %v", err)
	}
	resp.Body.Close()

	if err := cli.Finish(o, nil, nil); err != nil {
		t.Fatal(err)
	}
	if cli.ServerAddr() != "" {
		t.Error("server still registered after Finish")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Finish")
	}
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

func TestCLIRejectsBadLogFormat(t *testing.T) {
	cli := CLI{LogFormat: "yaml"}
	if _, err := cli.Setup("x"); err == nil {
		t.Error("bad -log-format accepted")
	}
}

func TestCLIDisabledByDefault(t *testing.T) {
	cli := CLI{LogFormat: "text"}
	o, err := cli.Setup("x")
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("observability must be opt-in: no flags, no context")
	}
	if err := cli.Finish(o, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Error("empty version")
	}
}

func TestPeakRSSOnLinux(t *testing.T) {
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Skip("no /proc on this platform")
	}
	if PeakRSS() <= 0 {
		t.Error("PeakRSS = 0 on linux")
	}
}
