package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultTraceEvents bounds the in-memory trace recorder: once this many
// events are buffered, further events are counted as dropped instead of
// growing the heap, so tracing a long run cannot exhaust memory.
const DefaultTraceEvents = 1 << 16

// traceEvent is one Chrome trace-event ("Trace Event Format") record.
// Timestamps are microseconds since the recorder started; pid groups the
// events of one root span (one run), tid is the worker track within it.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceRecorder accumulates span begin/end events into a bounded buffer and
// writes them as Chrome trace-event JSON loadable by Perfetto
// (ui.perfetto.dev) and chrome://tracing. Each root span becomes a trace
// "process" and each worker a "thread" track inside it, so the parallel
// timeline of a leave-one-out attack is directly inspectable. All methods
// are nil-safe and safe for concurrent use.
type TraceRecorder struct {
	mu      sync.Mutex
	start   time.Time
	events  []traceEvent
	cap     int
	dropped int64
	procs   map[int32]string // pid -> root span name, for metadata
}

// EnableTrace attaches a trace recorder buffering up to capacity events
// (<= 0 selects DefaultTraceEvents) and returns it. It must be called
// before the spans of interest begin; a nil context returns nil. Tracing
// records only span begin/end — it never perturbs the run's randomness or
// results.
func (o *Context) EnableTrace(capacity int) *TraceRecorder {
	if o == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	r := &TraceRecorder{start: time.Now(), cap: capacity, procs: map[int32]string{}}
	o.mu.Lock()
	o.trace = r
	o.mu.Unlock()
	return r
}

// Trace returns the context's trace recorder, nil when tracing is off.
func (o *Context) Trace() *TraceRecorder {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.trace
}

// ts converts an absolute time to trace microseconds (clamped at 0 for
// spans that began before the recorder).
func (r *TraceRecorder) ts(t time.Time) float64 {
	us := float64(t.Sub(r.start)) / float64(time.Microsecond)
	if us < 0 {
		us = 0
	}
	return us
}

// emit appends one event, or counts it as dropped when the buffer is full.
func (r *TraceRecorder) emit(ph, name string, pid, tid int32, t time.Time, args map[string]any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.cap {
		r.dropped++
		return
	}
	r.events = append(r.events, traceEvent{
		Name: name, Ph: ph, TS: r.ts(t), PID: pid, TID: tid, Args: args,
	})
}

// beginSpan records the B event of a span; root spans also name their
// process track.
func (r *TraceRecorder) beginSpan(s *Span, isRoot bool) {
	if r == nil {
		return
	}
	if isRoot {
		r.mu.Lock()
		if _, ok := r.procs[s.proc]; !ok {
			r.procs[s.proc] = s.name
		}
		r.mu.Unlock()
	}
	r.emit("B", s.name, s.proc, s.trackID(), s.start, nil)
}

// endSpan records the E event of a span with its final attributes and
// counters as args.
func (r *TraceRecorder) endSpan(s *Span, end time.Time, attrs []Attr, counters map[string]int64) {
	if r == nil {
		return
	}
	var args map[string]any
	if len(attrs)+len(counters) > 0 {
		args = make(map[string]any, len(attrs)+len(counters))
		for _, a := range attrs {
			args[a.Key] = a.Value
		}
		for k, v := range counters {
			args[k] = v
		}
	}
	r.emit("E", s.name, s.proc, s.trackID(), end, args)
}

// Dropped returns how many events did not fit in the buffer.
func (r *TraceRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of buffered events.
func (r *TraceRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSON writes the buffered events as a Chrome trace-event JSON object,
// prepending process/thread metadata so Perfetto labels each run and worker
// track. The recorder stays usable afterwards.
func (r *TraceRecorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	events := append([]traceEvent(nil), r.events...)
	dropped := r.dropped
	procs := make(map[int32]string, len(r.procs))
	for k, v := range r.procs {
		procs[k] = v
	}
	r.mu.Unlock()

	meta := metadataEvents(events, procs)
	doc := struct {
		TraceEvents     []traceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		doc.OtherData = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTraceFile writes the context's recorded trace to path; it is a no-op
// without a recorder.
func (o *Context) WriteTraceFile(path string) error {
	r := o.Trace()
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace: %w", err)
	}
	return f.Close()
}

// metadataEvents builds the process_name/thread_name metadata records for
// every (pid, tid) track present in events, in sorted order.
func metadataEvents(events []traceEvent, procs map[int32]string) []traceEvent {
	type track struct{ pid, tid int32 }
	seen := map[track]bool{}
	for _, e := range events {
		seen[track{e.PID, e.TID}] = true
	}
	tracks := make([]track, 0, len(seen))
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	var meta []traceEvent
	lastPID := int32(-1)
	for _, tr := range tracks {
		if tr.pid != lastPID {
			lastPID = tr.pid
			name := procs[tr.pid]
			if name == "" {
				name = fmt.Sprintf("run %d", tr.pid)
			}
			meta = append(meta, traceEvent{
				Name: "process_name", Ph: "M", PID: tr.pid, TID: 0,
				Args: map[string]any{"name": name},
			})
		}
		tname := "main"
		if tr.tid > 0 {
			tname = fmt.Sprintf("worker %d", tr.tid-1)
		}
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]any{"name": tname},
		})
	}
	return meta
}
