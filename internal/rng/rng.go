// Package rng provides splittable deterministic random streams for the
// parallel attack engine.
//
// The engine's headline guarantee is that results are bit-identical at any
// worker count. A single sequential *rand.Rand threaded through a pipeline
// cannot offer that: the stream's state at any point depends on how much
// randomness every earlier stage consumed, so reordering or parallelising
// stages silently changes every later draw. Instead, every unit of work
// (a leave-one-out target, a bagged tree's bootstrap resample, a level-2
// negative draw) derives its own independent stream from nothing but the
// run's root seed and the unit's coordinates:
//
//	r := rng.Derive(cfg.Seed, unitLevel1, target, tree)
//
// Derivation is a SplitMix64-style avalanche hash over the (seed, units...)
// path, so streams are statistically independent, stable across runs, and
// independent of scheduling. The scheme is pinned by golden tests in this
// package; changing it changes every downstream result and is a breaking
// change.
package rng

import "math/rand"

// golden is the SplitMix64 increment: 2^64 divided by the golden ratio,
// forced odd. Adding it before mixing keeps short, similar inputs (0, 1,
// 2, ...) from landing in nearby hash states.
const golden = 0x9E3779B97F4A7C15

// chainMul is an odd 64-bit multiplier (from Steele & Vigna's LXM
// generators) applied to the running hash before each unit is folded in.
// Multiplying only the chain state makes the combiner positionally
// asymmetric: without it, h + mix64(u) commutes, and Mix(a, b, ...) would
// collide with Mix(b, a, ...) whenever seed and first unit swap.
const chainMul = 0xD1342543DE82EF95

// mix64 is the SplitMix64 finalizer: a bijective avalanche function that
// spreads every input bit across the whole output word (Steele, Lea &
// Flood, "Fast splittable pseudorandom number generators", OOPSLA 2014).
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix derives a 64-bit seed from a root seed and a unit path. The path is
// order-sensitive (Mix(s, 1, 2) != Mix(s, 2, 1)) and length-sensitive
// (Mix(s) != Mix(s, 0)), so distinct pipeline units get distinct seeds as
// long as their coordinate paths differ. Mix is pure: the same inputs
// yield the same seed on every platform and every run.
func Mix(seed int64, units ...int64) int64 {
	h := mix64(uint64(seed) + golden)
	for _, u := range units {
		h = mix64(h*chainMul + golden + mix64(uint64(u)+golden))
	}
	return int64(h)
}

// Derive returns a fresh *rand.Rand seeded with Mix(seed, units...). Each
// call allocates an independent generator, so callers may Derive
// concurrently from any number of goroutines; the returned *rand.Rand
// itself is not safe for concurrent use (hand one to exactly one worker).
func Derive(seed int64, units ...int64) *rand.Rand {
	return rand.New(rand.NewSource(Mix(seed, units...)))
}
