package rng

import "testing"

// TestMixGolden pins the derivation scheme. These values are load-bearing:
// every attack result in the repository is derived from them, so a change
// here means every downstream number changes too. Do not update them
// without treating the change as a breaking one.
func TestMixGolden(t *testing.T) {
	cases := []struct {
		seed  int64
		units []int64
		want  int64
	}{
		{0, nil, -2152535657050944081},
		{1, nil, -7995527694508729151},
		{1, []int64{0}, -6482174287984436265},
		{1, []int64{1}, 1865470226598487700},
		{1, []int64{2, 3}, -2562507227404908140},
		{-7, []int64{42}, 286595219011487410},
	}
	for _, c := range cases {
		if got := Mix(c.seed, c.units...); got != c.want {
			t.Errorf("Mix(%d, %v) = %d, want %d", c.seed, c.units, got, c.want)
		}
	}
	if got := Derive(1, 2, 3).Int63(); got != 5295073975730184390 {
		t.Errorf("Derive(1,2,3).Int63() = %d, want 5295073975730184390", got)
	}
}

func TestMixPathSensitivity(t *testing.T) {
	if Mix(1, 1, 2) == Mix(1, 2, 1) {
		t.Error("Mix is not order-sensitive")
	}
	if Mix(1) == Mix(1, 0) {
		t.Error("Mix is not length-sensitive")
	}
	if Mix(1, 5) == Mix(1, 5, 0) {
		t.Error("Mix path extension by zero collides")
	}
	if Mix(1, 5) == Mix(2, 5) {
		t.Error("Mix ignores the seed")
	}
	// Regression: a symmetric combiner makes the chain state and the unit
	// hash commute, colliding whenever seed and first unit swap.
	if Mix(1, 0) == Mix(0, 1) {
		t.Error("Mix seed/unit swap collides")
	}
}

// TestMixNoCollisions checks that the paths the attack engine actually
// uses — small seeds, a handful of unit dimensions, small indices — derive
// all-distinct seeds.
func TestMixNoCollisions(t *testing.T) {
	seen := map[int64][]int64{}
	for seed := int64(0); seed < 4; seed++ {
		for unit := int64(0); unit < 8; unit++ {
			for a := int64(0); a < 16; a++ {
				for b := int64(0); b < 16; b++ {
					v := Mix(seed, unit, a, b)
					if prev, ok := seen[v]; ok {
						t.Fatalf("collision: (%d,%d,%d,%d) and %v both derive %d",
							seed, unit, a, b, prev, v)
					}
					seen[v] = []int64{seed, unit, a, b}
				}
			}
		}
	}
}

// TestDeriveIndependentStreams checks that Derive hands out generators
// whose draws do not depend on what other derived generators consumed —
// the property that makes per-unit streams safe to use from any worker in
// any order.
func TestDeriveIndependentStreams(t *testing.T) {
	a1 := Derive(9, 1)
	b := Derive(9, 2)
	for i := 0; i < 100; i++ {
		b.Int63() // consuming stream 2 must not affect stream 1
	}
	a2 := Derive(9, 1)
	for i := 0; i < 100; i++ {
		if a1.Int63() != a2.Int63() {
			t.Fatalf("stream (9,1) not reproducible at draw %d", i)
		}
	}
}
