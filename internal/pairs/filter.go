package pairs

// Filter bundles the candidate-pair admission rules of one attack
// configuration for one instance: legality, the Imp neighborhood radius,
// and the DiffVpinY limit. The zero Filter is not meaningful; construct
// through Instance.Filter.
type Filter struct {
	inst   *Instance
	radius float64 // absolute DBU; <0 disables the neighborhood test
	yLimit bool
}

// Filter builds the admission filter for this instance. radiusNorm is the
// neighborhood radius as a fraction of die width (< 0 disables the
// neighborhood test); yLimit enables the DiffVpinY = 0 restriction of the
// "Y" configurations (§III-G).
func (inst *Instance) Filter(radiusNorm float64, yLimit bool) Filter {
	f := Filter{inst: inst, radius: -1, yLimit: yLimit}
	if radiusNorm >= 0 {
		f.radius = radiusNorm * inst.dieW
	}
	return f
}

// Instance returns the instance the filter admits pairs of.
func (f Filter) Instance() *Instance { return f.inst }

// Admits reports whether the pair (a, b) may be trained on or tested.
func (f Filter) Admits(a, b int) bool {
	if a == b || !f.inst.Ex.Legal(a, b) {
		return false
	}
	if f.yLimit && f.inst.Ex.DiffVpinYOf(a, b) != 0 {
		return false
	}
	if f.radius >= 0 && f.inst.Ex.VpinDist(a, b) > f.radius {
		return false
	}
	return true
}

// Enumerate invokes fn for every admitted candidate b of v-pin a, in the
// pipeline's canonical deterministic order (the index's bucket walk).
// Enumerate(a, fn) visits exactly the b with Admits(a, b), but uses the
// spatial index to skip the geometric rejections instead of testing every
// pair.
func (f Filter) Enumerate(a int, fn func(b int32)) {
	f.inst.ix.candidates(a, f.radius, f.yLimit, func(b int32) {
		if f.inst.Ex.Legal(a, int(b)) {
			fn(b)
		}
	})
}

// EnumerateGeometric invokes fn for every candidate b of v-pin a that
// passes the geometric pre-filters only (neighborhood, y-limit) — legality
// is not checked. Reservoir sampling over near-admitted candidates uses
// this to apply its own interleaved checks.
func (f Filter) EnumerateGeometric(a int, fn func(b int32)) {
	f.inst.ix.candidates(a, f.radius, f.yLimit, fn)
}
