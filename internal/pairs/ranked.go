package pairs

import "math"

// Ranked wraps a backend with the list-wise ranking head of the
// DL-perspective attack (Li et al., DAC'19/TCAD'20): instead of treating
// each candidate pair as an independent, heavily imbalanced classification,
// it softmax-normalises every gathered v-pin's candidate scores in place,
// so each list becomes a probability distribution over "which candidate is
// this v-pin's BEOL connection". Gate-rejected candidates (score -1, the
// two-level pruning sentinel below every threshold) are left untouched and
// excluded from the normalisation.
//
// The softmax is strictly monotone within a list, so per-list rankings —
// and therefore the candidate lists, CCR, and accuracy-at-K — are preserved
// exactly; what changes is the score scale that cross-list consumers (the
// figure-of-merit, ROC sweeps) see. The wrapper composes with any backend,
// batched or scalar, and Batched() reports the path underneath.
func Ranked(b Backend) Backend {
	if _, ok := b.(*rankedBackend); ok {
		return b
	}
	return &rankedBackend{inner: b}
}

type rankedBackend struct {
	inner Backend
}

func (r *rankedBackend) score(g *Gatherer) {
	r.inner.score(g)
	// Max-subtraction keeps the exponentials in range; only candidates the
	// gate admitted (P >= 0) participate.
	max := math.Inf(-1)
	for _, p := range g.P {
		if p >= 0 && p > max {
			max = p
		}
	}
	if math.IsInf(max, -1) {
		return // every candidate gate-rejected, nothing to normalise
	}
	var sum float64
	for _, p := range g.P {
		if p >= 0 {
			sum += math.Exp(p - max)
		}
	}
	for k, p := range g.P {
		if p >= 0 {
			g.P[k] = math.Exp(p-max) / sum
		}
	}
}
