// Package pairs owns the candidate-pair pipeline at the core of the
// paper's attack: enumerate the admitted v-pin pairs of an instance,
// materialise their 11 features (§III-B) into a reusable arena, and score
// them through a pluggable backend.
//
// Every consumer of candidate pairs — training-set sampling, level-1 and
// level-2 candidate scoring, two-level pruning, and the proximity attack's
// validation stage — goes through the same three stages:
//
//	Instance   per-(design, split-layer) state: feature extractor, ground
//	           truth, and the spatial v-pin index.
//	Filter     the admission rules of one configuration (legality,
//	           neighborhood radius, DiffVpinY limit); Enumerate walks the
//	           admitted candidates of a v-pin in the pipeline's canonical
//	           deterministic order.
//	Gatherer   a reusable arena that collects one v-pin's admitted
//	           candidates (ids, distances, feature rows) and scores them
//	           via a Backend — either the batched flat-arena fast path or
//	           the per-pair scalar oracle. Both backends consume the same
//	           gathered rows in the same order, so results are
//	           bit-identical across backends.
//
// The package has no randomness and no configuration of its own; callers
// own both.
package pairs

// Scorer is the classifier interface the pipeline consumes: a probability
// that a feature vector describes a truly matching v-pin pair. Prob must be
// safe for concurrent use — candidate scoring fans out across goroutines
// against one Scorer. Trained models are expected to be immutable, which
// makes this free.
type Scorer interface {
	Prob(x []float64) float64
}

// BatchScorer is a Scorer that can score a whole row-major feature matrix
// in one call. ProbBatch(rows, stride, out) must write to out[r] exactly
// what Prob(rows[r*stride:(r+1)*stride]) returns — bit-identical, so the
// pipeline may use either path interchangeably — and must be safe for
// concurrent use and allocation-free. ml.Ensemble, the compiled form of the
// Bagging, is the canonical implementation.
type BatchScorer interface {
	Scorer
	ProbBatch(rows []float64, stride int, out []float64)
}

// TwoLevel composes the two pruning levels of §III-E: pairs the level-1
// model rejects (p1 < 0.5) are excluded outright (scored -1, below every
// threshold); surviving pairs are scored by the level-2 model.
type TwoLevel struct {
	L1, L2 Scorer
}

// Prob implements Scorer with the two-level composition.
func (s *TwoLevel) Prob(x []float64) float64 {
	if s.L1.Prob(x) < 0.5 {
		return -1
	}
	return s.L2.Prob(x)
}
