package pairs

import (
	"math"

	"repro/internal/split"
)

// vpinIndex accelerates candidate enumeration: spatial buckets for
// neighborhood queries and exact-y buckets for the "Y" configurations.
type vpinIndex struct {
	n    int
	tile float64
	nx   int
	ny   int
	grid [][]int32
	byY  map[int64][]int32
	xs   []float64
	ys   []float64
}

func newVpinIndex(ch *split.Challenge) *vpinIndex {
	die := ch.Design.Die()
	n := len(ch.VPins)
	// The grid granularity scales with the v-pin population so buckets hold
	// a few dozen entries on average: the historical 32×32 grid up to ~24k
	// v-pins (every pre-industrial design — their indexes are unchanged),
	// proportionally finer above, which keeps neighborhood queries bounded
	// by the radius instead of the bucket population at industrial scale.
	div := 32
	if d := int(math.Sqrt(float64(n) / 24.0)); d > div {
		div = d
	}
	ix := &vpinIndex{
		n:    n,
		tile: float64(die.Width()) / float64(div),
		byY:  make(map[int64][]int32),
		xs:   make([]float64, n),
		ys:   make([]float64, n),
	}
	if ix.tile <= 0 {
		ix.tile = 1
	}
	ix.nx = int(float64(die.Width())/ix.tile) + 2
	ix.ny = int(float64(die.Height())/ix.tile) + 2
	ix.grid = make([][]int32, ix.nx*ix.ny)
	for i := range ch.VPins {
		x := float64(ch.VPins[i].Pos.X)
		y := float64(ch.VPins[i].Pos.Y)
		ix.xs[i], ix.ys[i] = x, y
		tx, ty := ix.tileOf(x, y)
		ix.grid[ty*ix.nx+tx] = append(ix.grid[ty*ix.nx+tx], int32(i))
		yi := int64(ch.VPins[i].Pos.Y)
		ix.byY[yi] = append(ix.byY[yi], int32(i))
	}
	return ix
}

func (ix *vpinIndex) tileOf(x, y float64) (int, int) {
	tx := int(x / ix.tile)
	ty := int(y / ix.tile)
	if tx < 0 {
		tx = 0
	}
	if ty < 0 {
		ty = 0
	}
	if tx >= ix.nx {
		tx = ix.nx - 1
	}
	if ty >= ix.ny {
		ty = ix.ny - 1
	}
	return tx, ty
}

// regions partitions the target v-pins into spatially-contiguous shards of
// at most size entries each, walking the grid tiles in row-major order (the
// same deterministic order candidates uses). A nil targets selects every
// v-pin. Workers streaming one region at a time touch neighboring v-pins
// together — their candidate tiles overlap, so the extractor's and index's
// cache lines stay hot — and the retained lists are independent of which
// worker processes which region (TopK retention is order-free).
func (ix *vpinIndex) regions(targets []int, size int) [][]int32 {
	if size < 1 {
		size = 1
	}
	var member []bool
	total := ix.n
	if targets != nil {
		member = make([]bool, ix.n)
		for _, a := range targets {
			member[a] = true
		}
		total = len(targets)
	}
	out := make([][]int32, 0, total/size+1)
	cur := make([]int32, 0, min(size, total))
	for ti := range ix.grid {
		for _, b := range ix.grid[ti] {
			if member != nil && !member[b] {
				continue
			}
			cur = append(cur, b)
			if len(cur) >= size {
				out = append(out, cur)
				cur = make([]int32, 0, size)
			}
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// candidates invokes fn for every v-pin b that passes the geometric
// pre-filters relative to a (excluding a itself). Legality is not checked
// here; Filter.Enumerate layers it on top. The visit order — y-bucket or
// tile-row-major walk, insertion order within buckets — is the pipeline's
// canonical enumeration order and must stay deterministic: it is the row
// order of the batched feature matrices, the scalar/batch bit-identity
// contract's shared ground.
func (ix *vpinIndex) candidates(a int, radius float64, yLimit bool, fn func(b int32)) {
	if yLimit {
		for _, b := range ix.byY[int64(ix.ys[a])] {
			if int(b) == a {
				continue
			}
			if radius >= 0 {
				d := ix.xs[a] - ix.xs[int(b)]
				if d < 0 {
					d = -d
				}
				if d > radius {
					continue
				}
			}
			fn(b)
		}
		return
	}
	if radius < 0 {
		for b := int32(0); b < int32(ix.n); b++ {
			if int(b) != a {
				fn(b)
			}
		}
		return
	}
	x, y := ix.xs[a], ix.ys[a]
	tx0, ty0 := ix.tileOf(x-radius, y-radius)
	tx1, ty1 := ix.tileOf(x+radius, y+radius)
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			for _, b := range ix.grid[ty*ix.nx+tx] {
				if int(b) == a {
					continue
				}
				dx := x - ix.xs[b]
				if dx < 0 {
					dx = -dx
				}
				dy := y - ix.ys[b]
				if dy < 0 {
					dy = -dy
				}
				if dx+dy <= radius {
					fn(b)
				}
			}
		}
	}
}
