package pairs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/layout"
	"repro/internal/split"
)

// Shared test fixtures: one small suite, challenges per layer, generated
// once per test binary.
var (
	fixOnce sync.Once
	fixErr  error
	fixChs  map[int][]*split.Challenge
)

func challenges(t testing.TB, layer int) []*split.Challenge {
	t.Helper()
	fixOnce.Do(func() {
		designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: 0.2, Seed: 5})
		if err != nil {
			fixErr = err
			return
		}
		fixChs = map[int][]*split.Challenge{}
		for _, layer := range []int{6, 8} {
			for _, d := range designs {
				c, err := split.NewChallenge(d, layer)
				if err != nil {
					fixErr = err
					return
				}
				fixChs[layer] = append(fixChs[layer], c)
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixChs[layer]
}

// bruteCandidates computes the candidate set of a by scanning all v-pins —
// the reference the spatial index must match exactly.
func bruteCandidates(inst *Instance, a int, radius float64, yLimit bool) []int {
	var out []int
	for b := 0; b < inst.N(); b++ {
		if b == a {
			continue
		}
		if yLimit && inst.Ex.DiffVpinYOf(a, b) != 0 {
			continue
		}
		if radius >= 0 && inst.Ex.VpinDist(a, b) > radius {
			continue
		}
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func indexCandidates(inst *Instance, a int, radius float64, yLimit bool) []int {
	var out []int
	inst.ix.candidates(a, radius, yLimit, func(b int32) {
		out = append(out, int(b))
	})
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestVpinIndexMatchesBruteForce(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4]) // smallest design
	dieW := inst.DieWidth()
	rng := rand.New(rand.NewSource(1))
	radii := []float64{-1, 0, dieW * 0.01, dieW * 0.1, dieW * 0.5, dieW * 3}
	for trial := 0; trial < 40; trial++ {
		a := rng.Intn(inst.N())
		for _, r := range radii {
			for _, yLimit := range []bool{false, true} {
				want := bruteCandidates(inst, a, r, yLimit)
				got := indexCandidates(inst, a, r, yLimit)
				if !equalInts(got, want) {
					t.Fatalf("v-pin %d radius %.0f yLimit=%v: index %d candidates, brute force %d",
						a, r, yLimit, len(got), len(want))
				}
			}
		}
	}
}

func TestVpinIndexTopLayerYBuckets(t *testing.T) {
	// At split layer 8 every true match shares its partner's y, so the
	// y-limited candidate set must always contain the match.
	chs := challenges(t, 8)
	inst := New(chs[0])
	for a := 0; a < inst.N(); a++ {
		found := false
		inst.ix.candidates(a, -1, true, func(b int32) {
			if int(b) == inst.Match(a) {
				found = true
			}
		})
		if !found {
			t.Fatalf("y-limited candidates of %d exclude its true match", a)
		}
	}
}

// referenceEnumeration reimplements the pre-refactor scalar enumeration
// order from the raw challenge: tile buckets in v-pin insertion order
// walked row-major (or the exact-y bucket under the Y limit), with the
// legality check applied on top. The pipeline's Enumerate must reproduce
// it exactly — heap tie-breaking downstream depends on this order, so a
// silent reordering would change attack output.
func referenceEnumeration(ch *split.Challenge, a int, radius float64, yLimit bool) []int32 {
	die := ch.Design.Die()
	legal := func(b int) bool { return split.LegalPair(&ch.VPins[a], &ch.VPins[b]) }
	xs := func(i int) float64 { return float64(ch.VPins[i].Pos.X) }
	ys := func(i int) float64 { return float64(ch.VPins[i].Pos.Y) }
	var out []int32

	if yLimit {
		// Exact-y buckets, v-pin insertion order.
		for b := range ch.VPins {
			if b == a || int64(ch.VPins[b].Pos.Y) != int64(ch.VPins[a].Pos.Y) {
				continue
			}
			if radius >= 0 {
				dx := xs(a) - xs(b)
				if dx < 0 {
					dx = -dx
				}
				if dx > radius {
					continue
				}
			}
			if legal(b) {
				out = append(out, int32(b))
			}
		}
		return out
	}
	if radius < 0 {
		for b := range ch.VPins {
			if b != a && legal(b) {
				out = append(out, int32(b))
			}
		}
		return out
	}

	// Tile buckets in insertion order, walked row-major over the window.
	tile := float64(die.Width()) / 32
	if tile <= 0 {
		tile = 1
	}
	nx := int(float64(die.Width())/tile) + 2
	ny := int(float64(die.Height())/tile) + 2
	tileOf := func(x, y float64) (int, int) {
		tx, ty := int(x/tile), int(y/tile)
		tx = max(0, min(tx, nx-1))
		ty = max(0, min(ty, ny-1))
		return tx, ty
	}
	grid := make([][]int32, nx*ny)
	for b := range ch.VPins {
		tx, ty := tileOf(xs(b), ys(b))
		grid[ty*nx+tx] = append(grid[ty*nx+tx], int32(b))
	}
	tx0, ty0 := tileOf(xs(a)-radius, ys(a)-radius)
	tx1, ty1 := tileOf(xs(a)+radius, ys(a)+radius)
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			for _, b := range grid[ty*nx+tx] {
				if int(b) == a {
					continue
				}
				dx := xs(a) - xs(int(b))
				if dx < 0 {
					dx = -dx
				}
				dy := ys(a) - ys(int(b))
				if dy < 0 {
					dy = -dy
				}
				if dx+dy <= radius && legal(int(b)) {
					out = append(out, b)
				}
			}
		}
	}
	return out
}

func TestEnumerationOrderMatchesReference(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		radiusNorm float64
		yLimit     bool
	}{
		{-1, false}, {-1, true}, {0.05, false}, {0.05, true}, {0.5, false},
	}
	for trial := 0; trial < 25; trial++ {
		a := rng.Intn(inst.N())
		for _, tc := range cases {
			f := inst.Filter(tc.radiusNorm, tc.yLimit)
			var got []int32
			f.Enumerate(a, func(b int32) { got = append(got, b) })
			want := referenceEnumeration(inst.Ch, a, f.radius, tc.yLimit)
			if len(got) != len(want) {
				t.Fatalf("v-pin %d radiusNorm %g yLimit=%v: got %d candidates, reference %d",
					a, tc.radiusNorm, tc.yLimit, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("v-pin %d radiusNorm %g yLimit=%v: order diverges at %d: got %d, reference %d",
						a, tc.radiusNorm, tc.yLimit, k, got[k], want[k])
				}
			}
		}
	}
}

// TestEnumerateAgreesWithAdmits pins the contract that Enumerate visits
// exactly the candidates Admits accepts, whatever the filter settings.
func TestEnumerateAgreesWithAdmits(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := rng.Intn(inst.N())
		for _, radiusNorm := range []float64{-1, 0, 0.05} {
			for _, yLimit := range []bool{false, true} {
				f := inst.Filter(radiusNorm, yLimit)
				seen := map[int]bool{}
				f.Enumerate(a, func(b int32) { seen[int(b)] = true })
				for b := 0; b < inst.N(); b++ {
					if f.Admits(a, b) != seen[b] {
						t.Fatalf("v-pin (%d,%d) radiusNorm %g yLimit=%v: Admits=%v, enumerated=%v",
							a, b, radiusNorm, yLimit, f.Admits(a, b), seen[b])
					}
				}
			}
		}
	}
}

// TestFilterRadiusZero checks the degenerate neighborhood: radius 0 admits
// only exactly co-located pairs.
func TestFilterRadiusZero(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	f := inst.Filter(0, false)
	for a := 0; a < inst.N(); a++ {
		f.Enumerate(a, func(b int32) {
			if inst.Ex.VpinDist(a, int(b)) != 0 {
				t.Fatalf("radius 0 admitted (%d,%d) at distance %g", a, b, inst.Ex.VpinDist(a, int(b)))
			}
		})
	}
}

// constScorer is a trivial scalar-only model for backend tests.
type constScorer struct{ p float64 }

func (c constScorer) Prob([]float64) float64 { return c.p }

// TestYLimitZeroCandidates restricts a challenge to two v-pins on
// different y tracks: the Y limit must then admit nothing, and an empty
// gather must score cleanly on both backends.
func TestYLimitZeroCandidates(t *testing.T) {
	chs := challenges(t, 6)
	ch := chs[4]
	// Find a legal pair on different y tracks.
	b := -1
	for i := 1; i < len(ch.VPins); i++ {
		if int64(ch.VPins[i].Pos.Y) != int64(ch.VPins[0].Pos.Y) &&
			split.LegalPair(&ch.VPins[0], &ch.VPins[i]) {
			b = i
			break
		}
	}
	if b < 0 {
		t.Skip("no off-track legal pair in fixture")
	}
	inst := New(ch.Restrict([]int{0, b}))
	f := inst.Filter(-1, true)
	f.Enumerate(0, func(int32) { t.Fatal("Y limit admitted an off-track candidate") })

	var g Gatherer
	g.Gather(f, 0)
	if len(g.Ids) != 0 {
		t.Fatalf("empty filter gathered %d candidates", len(g.Ids))
	}
	g.Score(ResolveBackend(constScorer{p: 0.9}, false))
	if len(g.P) != 0 {
		t.Fatalf("empty gather scored %d probabilities", len(g.P))
	}
}

// TestSingleVpinInstance builds a one-v-pin challenge via Restrict: the
// match is absent (-1), and every enumeration is empty.
func TestSingleVpinInstance(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4].Restrict([]int{0}))
	if inst.N() != 1 {
		t.Fatalf("restricted instance has %d v-pins, want 1", inst.N())
	}
	if m := inst.Match(0); m != -1 {
		t.Fatalf("Match(0) = %d, want -1 (partner excluded)", m)
	}
	for _, radiusNorm := range []float64{-1, 0, 0.5} {
		for _, yLimit := range []bool{false, true} {
			f := inst.Filter(radiusNorm, yLimit)
			f.Enumerate(0, func(b int32) {
				t.Fatalf("singleton instance enumerated candidate %d", b)
			})
			var g Gatherer
			g.Gather(f, 0)
			if len(g.Ids) != 0 {
				t.Fatalf("singleton instance gathered %d candidates", len(g.Ids))
			}
		}
	}
}

// TestRestrictKeepsPairs checks that Restrict remaps surviving partners and
// drops excluded ones.
func TestRestrictKeepsPairs(t *testing.T) {
	chs := challenges(t, 6)
	ch := chs[4]
	m := ch.VPins[0].Match
	// Pick a third v-pin whose partner is outside the kept set.
	c := -1
	for i := range ch.VPins {
		if i != 0 && i != m && ch.VPins[i].Match != 0 && ch.VPins[i].Match != m {
			c = i
			break
		}
	}
	if c < 0 {
		t.Fatal("fixture has no v-pin outside the first pair")
	}
	inst := New(ch.Restrict([]int{0, m, c}))
	if got := inst.Match(0); got != 1 {
		t.Errorf("Match(0) = %d, want 1 (partner remapped)", got)
	}
	if got := inst.Match(1); got != 0 {
		t.Errorf("Match(1) = %d, want 0", got)
	}
	if got := inst.Match(2); got != -1 {
		t.Errorf("Match(2) = %d, want -1 (partner excluded)", got)
	}
}

// TestResolveBackendClassification pins the resolver's fallback rules:
// scalar-only models (and two-level compositions containing one) must get
// the per-row oracle, never the batched path.
func TestResolveBackendClassification(t *testing.T) {
	scalar := constScorer{p: 0.7}
	if Batched(ResolveBackend(scalar, false)) {
		t.Error("scalar-only model resolved to the batched backend")
	}
	two := &TwoLevel{L1: scalar, L2: scalar}
	if Batched(ResolveBackend(two, false)) {
		t.Error("scalar two-level model resolved to the batched backend")
	}
}

// TestNewAllDeterministicAcrossWorkers checks that parallel instance
// preparation yields the same instances as the serial build.
func TestNewAllDeterministicAcrossWorkers(t *testing.T) {
	chs := challenges(t, 6)
	serial := NewAll(chs, 1)
	parallel := NewAll(chs, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("serial built %d instances, parallel %d", len(serial), len(parallel))
	}
	row1 := make([]float64, features.NumFeatures)
	row2 := make([]float64, features.NumFeatures)
	for i := range serial {
		if serial[i].Ch != parallel[i].Ch {
			t.Fatalf("instance %d bound to a different challenge", i)
		}
		a, m := 0, serial[i].Match(0)
		if m < 0 {
			continue
		}
		serial[i].Ex.Pair(a, m, row1)
		parallel[i].Ex.Pair(a, m, row2)
		for f := range row1 {
			if row1[f] != row2[f] {
				t.Fatalf("instance %d feature %d differs: %g vs %g", i, f, row1[f], row2[f])
			}
		}
	}
}
