package pairs

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestLoCCapEdges(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{n: 1000, frac: 0.15, want: 150}, // plain fraction
		{n: 10, frac: 0.15, want: 10},    // floor of 32 clipped to n < 32
		{n: 31, frac: 1.0, want: 31},     // n just under the floor
		{n: 100, frac: 2.0, want: 100},   // frac*n > n caps at n
		{n: 100, frac: 0, want: 32},      // zero frac still keeps the floor
		{n: 1000, frac: 0, want: 32},
		{n: 0, frac: 0.15, want: 0}, // degenerate empty design
		{n: 33, frac: 0.001, want: 32},
	}
	for _, c := range cases {
		if got := LoCCap(c.n, c.frac); got != c.want {
			t.Errorf("LoCCap(%d, %g) = %d, want %d", c.n, c.frac, got, c.want)
		}
	}
}

// randomCandidates builds a candidate set with unique Other and heavy P
// ties (eight distinct probabilities), the regime where retention order
// matters most.
func randomCandidates(rng *rand.Rand, n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{
			Other: int32(i),
			P:     float32(rng.Intn(8)) / 8,
			D:     float32(rng.Intn(100)),
		}
	}
	return out
}

// TestTopKMatchesSortEverything pins the heap's contract: for any push
// order, the retained set equals the first Cap entries of sorting the whole
// input — including ties at exactly the capacity boundary.
func TestTopKMatchesSortEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h TopK
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		cands := randomCandidates(rng, n)
		want := slices.Clone(cands)
		slices.SortFunc(want, CompareCandidates)
		for _, capacity := range []int{1, 2, n / 2, n - 1, n, n + 10} {
			if capacity < 1 {
				continue
			}
			rng.Shuffle(n, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
			h.Reset(capacity)
			for _, c := range cands {
				h.Push(c)
			}
			got := h.Sorted()
			wantK := want
			if capacity < n {
				wantK = want[:capacity]
			}
			if !slices.Equal(got, wantK) {
				t.Fatalf("trial %d cap %d: heap retained %v, sort-everything %v",
					trial, capacity, got, wantK)
			}
		}
	}
}

// TestTopKResetReuse checks that a recycled heap carries nothing over from
// its previous use.
func TestTopKResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var reused TopK
	for round := 0; round < 20; round++ {
		cands := randomCandidates(rng, 64)
		capacity := 1 + rng.Intn(70)
		var fresh TopK
		fresh.Reset(capacity)
		reused.Reset(capacity)
		for _, c := range cands {
			fresh.Push(c)
			reused.Push(c)
		}
		if !slices.Equal(slices.Clone(fresh.Sorted()), reused.Sorted()) {
			t.Fatalf("round %d: reused heap diverged from a fresh one", round)
		}
	}
}

// TestTopKSteadyStateAllocs pins the scoring loop's heap behavior: once the
// backing array has grown to capacity, a Reset/Push/Sorted cycle allocates
// nothing.
func TestTopKSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := randomCandidates(rng, 256)
	var h TopK
	cycle := func() {
		h.Reset(32)
		for _, c := range cands {
			h.Push(c)
		}
		h.Sorted()
	}
	cycle() // grow the backing array once
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("steady-state TopK cycle allocates %.1f times per run, want 0", allocs)
	}
}

// tieScorer is a deterministic feature-dependent scorer that lands on a
// coarse probability grid, forcing plenty of P ties across candidates.
type tieScorer struct{}

func (tieScorer) Prob(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return math.Mod(math.Abs(s), 16) / 16
}

// referenceLists scores every target serially with a fresh gatherer and a
// full sort — the brute-force shape ScoreLists must reproduce exactly.
func referenceLists(f Filter, backend Backend, targets []int, capPer int) [][]Candidate {
	inst := f.Instance()
	lists := make([][]Candidate, inst.N())
	if targets == nil {
		targets = make([]int, inst.N())
		for i := range targets {
			targets[i] = i
		}
	}
	for _, a := range targets {
		var g Gatherer
		g.Gather(f, a)
		g.Score(backend)
		all := make([]Candidate, len(g.Ids))
		for k, b := range g.Ids {
			all[k] = Candidate{Other: b, P: float32(g.P[k]), D: g.D[k]}
		}
		slices.SortFunc(all, CompareCandidates)
		if len(all) > capPer {
			all = all[:capPer]
		}
		lists[a] = all
	}
	return lists
}

func equalLists(a, b [][]Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		if !slices.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestScoreListsMatchesReference checks the streamed, sharded, heap-bounded
// engine against serial sort-everything scoring, over full and subset
// target sets.
func TestScoreListsMatchesReference(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	f := inst.Filter(inst.DieWidth()*0.15, false)
	backend := ResolveBackend(tieScorer{}, false)

	subset := []int{0, 3, 5, inst.N() - 1, inst.N() / 2}
	for _, tc := range []struct {
		name    string
		targets []int
		capPer  int
	}{
		{name: "all-capped", targets: nil, capPer: 10},
		{name: "all-uncapped", targets: nil, capPer: inst.N()},
		{name: "subset", targets: subset, capPer: 7},
		{name: "cap-one", targets: subset, capPer: 1},
	} {
		want := referenceLists(f, backend, tc.targets, tc.capPer)
		got, stats := ScoreLists(f, backend, StreamOptions{
			Targets: tc.targets, Cap: tc.capPer, Workers: 3, ShardVpins: 5})
		if !equalLists(got, want) {
			t.Fatalf("%s: streamed lists diverge from the serial reference", tc.name)
		}
		var retained int64
		for _, l := range got {
			retained += int64(len(l))
		}
		if stats.Retained != retained {
			t.Errorf("%s: stats.Retained = %d, lists hold %d", tc.name, stats.Retained, retained)
		}
	}
}

// TestScoreListsShardInvariance pins the bit-identity guarantee: worker
// count and shard size change scheduling, never the retained lists or the
// pair count.
func TestScoreListsShardInvariance(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	f := inst.Filter(inst.DieWidth()*0.2, false)
	backend := ResolveBackend(tieScorer{}, false)

	base, baseStats := ScoreLists(f, backend, StreamOptions{Cap: 12, Workers: 1})
	for _, opt := range []StreamOptions{
		{Cap: 12, Workers: 4},
		{Cap: 12, Workers: 4, ShardVpins: 1},
		{Cap: 12, Workers: 2, ShardVpins: 17},
		{Cap: 12, Workers: 0, ShardVpins: 1 << 20},
	} {
		got, stats := ScoreLists(f, backend, opt)
		if !equalLists(got, base) {
			t.Fatalf("workers=%d shard=%d: lists diverge from the single-worker run",
				opt.Workers, opt.ShardVpins)
		}
		if stats.Pairs != baseStats.Pairs || stats.Retained != baseStats.Retained {
			t.Errorf("workers=%d shard=%d: stats (%d pairs, %d retained) != base (%d, %d)",
				opt.Workers, opt.ShardVpins, stats.Pairs, stats.Retained,
				baseStats.Pairs, baseStats.Retained)
		}
	}
}

// TestRegionsCoverTargets checks the spatial sharder's partition contract:
// every target appears in exactly one region, and region sizes respect the
// requested bound.
func TestRegionsCoverTargets(t *testing.T) {
	chs := challenges(t, 6)
	inst := New(chs[4])
	n := inst.N()
	subset := []int{1, 2, n - 1, n / 3, n / 2}
	for _, targets := range [][]int{nil, subset} {
		for _, size := range []int{1, 7, 64, 100000} {
			regions := inst.ix.regions(targets, size)
			seen := map[int32]int{}
			for _, reg := range regions {
				if len(reg) == 0 || len(reg) > size {
					t.Fatalf("size %d: region of %d v-pins", size, len(reg))
				}
				for _, a := range reg {
					seen[a]++
				}
			}
			want := n
			if targets != nil {
				want = len(targets)
			}
			if len(seen) != want {
				t.Fatalf("size %d: regions cover %d v-pins, want %d", size, len(seen), want)
			}
			for a, count := range seen {
				if count != 1 {
					t.Fatalf("size %d: v-pin %d appears in %d regions", size, a, count)
				}
			}
		}
	}
}
