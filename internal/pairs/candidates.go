package pairs

import "slices"

// Candidate is one scored entry of a v-pin's candidate list.
type Candidate struct {
	// Other is the candidate partner v-pin.
	Other int32
	// P is the ensemble probability p(v, v') of eq. (3).
	P float32
	// D is the ManhattanVpin distance, used by the proximity attack.
	D float32
}

// CompareCandidates is the candidate-list order: descending probability,
// ties broken by ascending partner index. Other is unique within a list,
// so this is a total order and every sorting algorithm — and both scoring
// backends — produce exactly the same list.
func CompareCandidates(x, y Candidate) int {
	if x.P != y.P {
		if x.P > y.P {
			return -1
		}
		return 1
	}
	return int(x.Other) - int(y.Other)
}

// LoCCap is the per-v-pin candidate-list bound for a design with n v-pins:
// maxLoCFrac*n, floored at 32 entries so tiny designs keep usable lists,
// and never more than n. Every consumer of retained candidate lists (the
// attack engine, the two-level pruning stage) must use the same bound or
// their lists diverge.
func LoCCap(n int, maxLoCFrac float64) int {
	capPer := int(maxLoCFrac * float64(n))
	if capPer < 32 {
		capPer = 32
	}
	if capPer > n {
		capPer = n
	}
	return capPer
}

// TopK is a bounded heap keeping the Cap first candidates of the canonical
// CompareCandidates order. The heap root is the worst retained candidate
// under that total order (lowest P, ties by largest Other), so the retained
// set — not just its sorted presentation — equals the first Cap entries of
// sorting everything, regardless of push order. That makes retention
// independent of the enumeration order, which is what allows candidate
// streaming to shard targets by spatial region freely.
type TopK struct {
	// Cap bounds the retained candidates and must be positive.
	Cap int
	c   []Candidate
}

// Reset empties the heap and sets its capacity, keeping the backing array
// so a worker can reuse one TopK across v-pins without reallocating. Any
// slice previously returned by Sorted is invalidated.
func (h *TopK) Reset(capacity int) {
	h.Cap = capacity
	h.c = h.c[:0]
}

// Len returns the number of retained candidates.
func (h *TopK) Len() int { return len(h.c) }

// Push offers a candidate, evicting the canonically-worst retained one when
// full.
func (h *TopK) Push(cand Candidate) {
	if len(h.c) < h.Cap {
		h.c = append(h.c, cand)
		h.up(len(h.c) - 1)
		return
	}
	if CompareCandidates(cand, h.c[0]) >= 0 {
		return // ranks at or after the current worst: not retained
	}
	h.c[0] = cand
	h.down(0)
}

// Sorted destroys the heap order and returns the retained candidates in
// canonical CompareCandidates order. The returned slice aliases the heap's
// backing array: it is valid until the next Push or Reset, so callers that
// keep lists must copy them out (the streaming scorer packs them into a
// per-region arena).
func (h *TopK) Sorted() []Candidate {
	slices.SortFunc(h.c, CompareCandidates)
	return h.c
}

// The heap invariant is "parent ranks no earlier than child" under
// CompareCandidates, keeping the canonically-last element at the root.

func (h *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if CompareCandidates(h.c[i], h.c[p]) <= 0 {
			break
		}
		h.c[p], h.c[i] = h.c[i], h.c[p]
		i = p
	}
}

func (h *TopK) down(i int) {
	n := len(h.c)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && CompareCandidates(h.c[l], h.c[worst]) > 0 {
			worst = l
		}
		if r < n && CompareCandidates(h.c[r], h.c[worst]) > 0 {
			worst = r
		}
		if worst == i {
			return
		}
		h.c[i], h.c[worst] = h.c[worst], h.c[i]
		i = worst
	}
}
