package pairs

import "slices"

// Candidate is one scored entry of a v-pin's candidate list.
type Candidate struct {
	// Other is the candidate partner v-pin.
	Other int32
	// P is the ensemble probability p(v, v') of eq. (3).
	P float32
	// D is the ManhattanVpin distance, used by the proximity attack.
	D float32
}

// CompareCandidates is the candidate-list order: descending probability,
// ties broken by ascending partner index. Other is unique within a list,
// so this is a total order and every sorting algorithm — and both scoring
// backends — produce exactly the same list.
func CompareCandidates(x, y Candidate) int {
	if x.P != y.P {
		if x.P > y.P {
			return -1
		}
		return 1
	}
	return int(x.Other) - int(y.Other)
}

// LoCCap is the per-v-pin candidate-list bound for a design with n v-pins:
// maxLoCFrac*n, floored at 32 entries so tiny designs keep usable lists,
// and never more than n. Every consumer of retained candidate lists (the
// attack engine, the two-level pruning stage) must use the same bound or
// their lists diverge.
func LoCCap(n int, maxLoCFrac float64) int {
	capPer := int(maxLoCFrac * float64(n))
	if capPer < 32 {
		capPer = 32
	}
	if capPer > n {
		capPer = n
	}
	return capPer
}

// TopK is a bounded min-heap on P keeping the Cap highest-probability
// candidates. Push candidates in enumeration order, then call Sorted once:
// because CompareCandidates is a total order, the retained list does not
// depend on the heap's internal state history.
type TopK struct {
	// Cap bounds the retained candidates and must be positive.
	Cap int
	c   []Candidate
}

// Push offers a candidate, evicting the current minimum when full.
func (h *TopK) Push(cand Candidate) {
	if len(h.c) < h.Cap {
		h.c = append(h.c, cand)
		h.up(len(h.c) - 1)
		return
	}
	if cand.P <= h.c[0].P {
		return
	}
	h.c[0] = cand
	h.down(0)
}

// Sorted destroys the heap order and returns the retained candidates in
// canonical CompareCandidates order.
func (h *TopK) Sorted() []Candidate {
	slices.SortFunc(h.c, CompareCandidates)
	return h.c
}

func (h *TopK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.c[p].P <= h.c[i].P {
			break
		}
		h.c[p], h.c[i] = h.c[i], h.c[p]
		i = p
	}
}

func (h *TopK) down(i int) {
	n := len(h.c)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.c[l].P < h.c[small].P {
			small = l
		}
		if r < n && h.c[r].P < h.c[small].P {
			small = r
		}
		if small == i {
			return
		}
		h.c[i], h.c[small] = h.c[small], h.c[i]
		i = small
	}
}
