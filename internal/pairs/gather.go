package pairs

import (
	"repro/internal/features"
	"repro/internal/obs"
)

// Gatherer is one scoring worker's reusable arena: it collects a v-pin's
// admitted candidates (ids, distances, feature rows) and scores them
// through a Backend. All slices grow to the largest candidate set the
// worker has seen and are then reused, so steady-state gathering and
// scoring allocate nothing. A Gatherer is not safe for concurrent use; use
// one per worker.
type Gatherer struct {
	// Ids[k] is the k-th admitted candidate of the current v-pin, in the
	// canonical enumeration order — the same order the scalar oracle scores
	// in, which is what keeps heap tie-breaking identical across backends.
	Ids []int32
	// D[k] is the ManhattanVpin distance of candidate k.
	D []float32
	// P[k] is candidate k's final probability after Score; under two-level
	// pruning gate-rejected candidates score -1, exactly like the scalar
	// TwoLevel composition.
	P []float64
	// Stride is the feature-row width; zero selects features.NumFeatures,
	// the width of every pre-existing configuration. Configurations whose
	// feature set reaches into the routing-hint block set the wider
	// features.Width of their set.
	Stride int
	// rows is the row-major feature matrix: candidate k occupies
	// rows[k*stride : (k+1)*stride].
	rows []float64
	// p2 holds level-2 probabilities of the gate's survivors.
	p2 []float64
	// Batches and BatchRows count ProbBatch calls and the rows scored
	// through them, across the Gatherer's lifetime. The scalar backend
	// leaves them untouched.
	Batches   int64
	BatchRows int64
}

// rowStride resolves the arena's feature-row width.
func (g *Gatherer) rowStride() int {
	if g.Stride > 0 {
		return g.Stride
	}
	return features.NumFeatures
}

// Gather collects v-pin a's admitted candidates under the filter: ids,
// distances, and the feature matrix, in the canonical enumeration order.
// Previously gathered state is discarded.
func (g *Gatherer) Gather(f Filter, a int) {
	stride := g.rowStride()
	inst := f.inst
	g.Ids = g.Ids[:0]
	g.D = g.D[:0]
	g.rows = g.rows[:0]
	f.Enumerate(a, func(b32 int32) {
		b := int(b32)
		g.Ids = append(g.Ids, b32)
		g.D = append(g.D, float32(inst.Ex.VpinDist(a, b)))
		k := len(g.rows)
		if k+stride <= cap(g.rows) {
			g.rows = g.rows[:k+stride]
		} else {
			g.rows = append(g.rows, make([]float64, stride)...)
		}
		inst.Ex.Pair(a, b, g.rows[k:k+stride])
	})
}

// Score runs the gathered candidates through the backend, filling P with
// one probability per gathered candidate.
func (g *Gatherer) Score(b Backend) {
	k := len(g.Ids)
	if cap(g.P) < k {
		g.P = make([]float64, k)
	}
	g.P = g.P[:k]
	if k == 0 {
		return
	}
	b.score(g)
}

// Backend scores a gathered arena. The two implementations — the batched
// flat-arena fast path and the per-pair scalar oracle — consume the same
// rows in the same order and produce bit-identical probabilities; which
// one runs is a pure performance choice. Construct through ResolveBackend.
type Backend interface {
	score(g *Gatherer)
}

// ResolveBackend resolves a trained model into its scoring backend. Models
// whose every level implements BatchScorer get the batched path;
// scalar-only scorers, mixed two-level compositions, and the forceScalar
// oracle (Config.ScalarScoring) fall back to per-row Prob over the same
// arena. A two-level model batches only when both levels do: mixing a
// batched level with a scalar one would complicate the contract for no
// caller that exists. ResolveBackendObs is the observable variant; this one
// reports nothing.
func ResolveBackend(model Scorer, forceScalar bool) Backend {
	return ResolveBackendObs(nil, model, forceScalar)
}

// ResolveBackendObs is ResolveBackend reporting silent fast-path losses: a
// two-level composition with exactly one batch-capable level falls back to
// the scalar oracle, and that fallback — easy to cause by composing a
// batched level with a scalar-only family's level, and invisible in
// results because the two paths are bit-identical — increments the
// pairs.backend.scalar_fallback counter so the perf regression shows in
// /metrics. A nil obs context reports nothing (obs methods are nil-safe).
func ResolveBackendObs(o *obs.Context, model Scorer, forceScalar bool) Backend {
	if !forceScalar {
		switch m := model.(type) {
		case *TwoLevel:
			b1, ok1 := m.L1.(BatchScorer)
			b2, ok2 := m.L2.(BatchScorer)
			if ok1 && ok2 {
				return &batchBackend{b1: b1, b2: b2}
			}
			if ok1 != ok2 {
				o.Metrics().Counter("pairs.backend.scalar_fallback").Inc()
				o.Log().Debug("two-level composition falls back to scalar scoring",
					"level1_batched", ok1, "level2_batched", ok2)
			}
		case BatchScorer:
			return &batchBackend{b1: m}
		}
	}
	return &scalarBackend{model: model}
}

// Batched reports whether the backend is the batched fast path, looking
// through a Ranked wrapper at the scoring path underneath.
func Batched(b Backend) bool {
	if r, ok := b.(*rankedBackend); ok {
		b = r.inner
	}
	_, ok := b.(*batchBackend)
	return ok
}

// scalarBackend scores the arena one row at a time through the model's
// Prob — the oracle the batched path is verified against.
type scalarBackend struct {
	model Scorer
}

func (s *scalarBackend) score(g *Gatherer) {
	stride := g.rowStride()
	for k := range g.Ids {
		g.P[k] = s.model.Prob(g.rows[k*stride : (k+1)*stride])
	}
}

// batchBackend scores the arena in one ProbBatch call per model level. b2
// is the level-2 model under two-level pruning, nil otherwise. Under
// two-level pruning, level 1 scores all rows first; surviving rows
// (p1 >= 0.5, the gate of TwoLevel.Prob) are compacted to the front of the
// matrix in place, level 2 scores only the survivors, and the results
// scatter back over the gate: rejected candidates score -1, exactly like
// the scalar composition.
type batchBackend struct {
	b1 BatchScorer
	b2 BatchScorer
}

func (eng *batchBackend) score(g *Gatherer) {
	stride := g.rowStride()
	k := len(g.Ids)
	eng.b1.ProbBatch(g.rows, stride, g.P)
	g.Batches++
	g.BatchRows += int64(k)
	if eng.b2 == nil {
		return
	}
	surv := 0
	for i := 0; i < k; i++ {
		if g.P[i] < 0.5 {
			continue
		}
		if surv != i {
			copy(g.rows[surv*stride:(surv+1)*stride], g.rows[i*stride:(i+1)*stride])
		}
		surv++
	}
	if cap(g.p2) < surv {
		g.p2 = make([]float64, surv)
	}
	g.p2 = g.p2[:surv]
	if surv > 0 {
		eng.b2.ProbBatch(g.rows[:surv*stride], stride, g.p2)
		g.Batches++
		g.BatchRows += int64(surv)
	}
	s := 0
	for i := 0; i < k; i++ {
		if g.P[i] < 0.5 {
			g.P[i] = -1
		} else {
			g.P[i] = g.p2[s]
			s++
		}
	}
}
