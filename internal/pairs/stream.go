package pairs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// StreamOptions configures one ScoreLists run.
type StreamOptions struct {
	// Targets lists the v-pins to score; nil scores every v-pin of the
	// instance. Candidates are always drawn from the whole design.
	Targets []int
	// Cap bounds each retained candidate list (see LoCCap and any absolute
	// cap the caller layers on top). Values below 1 are clamped to 1.
	Cap int
	// ShardVpins is the region size: how many v-pins one worker streams
	// before claiming the next region. Zero picks a size that gives every
	// worker several regions (for load balance) while keeping regions large
	// enough that the per-region arena amortises. The retained lists are
	// bit-identical for every shard size.
	ShardVpins int
	// Workers bounds the scoring goroutines; zero or negative selects
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	// Stride is the feature-row width each worker's Gatherer uses; zero
	// selects features.NumFeatures. Callers whose feature set reaches into
	// the routing-hint block pass features.Width of their set.
	Stride int
	// Visit, when non-nil, observes every scored arena before retention:
	// it is called once per target v-pin with the gathered ids, distances,
	// and probabilities. Calls happen concurrently for different v-pins but
	// never for the same one, so a Visit writing to per-v-pin slots needs no
	// locking. The Gatherer is reused immediately after Visit returns.
	Visit func(a int, g *Gatherer)
}

// StreamStats reports what one ScoreLists run did.
type StreamStats struct {
	// Pairs counts the candidate pairs scored through the backend.
	Pairs int64
	// Batches and BatchRows count ProbBatch calls and their rows (zero on
	// the scalar path).
	Batches, BatchRows int64
	// Regions is the number of spatial shards the targets were split into.
	Regions int
	// Retained counts the candidates kept across all lists after the cap.
	Retained int64
}

// ScoreLists is the shared candidate-scoring engine: it streams the target
// v-pins through the filter and backend one spatial region at a time and
// returns the per-v-pin retained candidate lists in canonical
// CompareCandidates order. Both the attack engine's scoring stage and the
// two-level training stage ride this one implementation.
//
// Memory is bounded by region, not by design: each worker owns one reusable
// Gatherer arena and one reusable TopK heap, and packs the retained lists of
// its current region into a single per-region arena (one allocation per
// region instead of one per v-pin). Retention is order-free — TopK keeps
// exactly the first Cap entries of the canonical total order no matter the
// push order — so the returned lists are bit-identical at any worker count
// and any shard size.
func ScoreLists(f Filter, backend Backend, opts StreamOptions) ([][]Candidate, StreamStats) {
	inst := f.Instance()
	n := inst.N()
	lists := make([][]Candidate, n)
	total := n
	if opts.Targets != nil {
		total = len(opts.Targets)
	}
	if total == 0 {
		return lists, StreamStats{}
	}
	capPer := opts.Cap
	if capPer < 1 {
		capPer = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	regions := inst.ix.regions(opts.Targets, shardSize(opts.ShardVpins, total, workers))
	stats := StreamStats{Regions: len(regions)}
	if workers > len(regions) {
		workers = len(regions)
	}

	var nextRegion atomic.Int64
	var pairs, batches, batchRows, retained int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := Gatherer{Stride: opts.Stride}
			var h TopK
			var scored, kept int64
			// spans defers list fix-up to the end of the region: the arena
			// may reallocate while the region streams, so slices into it are
			// only taken once its length is final.
			type span struct{ a, lo, hi int }
			var spans []span
			arenaHint := 0
			for {
				ri := int(nextRegion.Add(1)) - 1
				if ri >= len(regions) {
					break
				}
				arena := make([]Candidate, 0, arenaHint)
				spans = spans[:0]
				for _, a32 := range regions[ri] {
					a := int(a32)
					h.Reset(capPer)
					g.Gather(f, a)
					g.Score(backend)
					scored += int64(len(g.Ids))
					if opts.Visit != nil {
						opts.Visit(a, &g)
					}
					for k, b := range g.Ids {
						h.Push(Candidate{Other: b, P: float32(g.P[k]), D: g.D[k]})
					}
					lo := len(arena)
					arena = append(arena, h.Sorted()...)
					spans = append(spans, span{a: a, lo: lo, hi: len(arena)})
				}
				for _, sp := range spans {
					lists[sp.a] = arena[sp.lo:sp.hi:sp.hi]
				}
				kept += int64(len(arena))
				if len(arena) > arenaHint {
					arenaHint = len(arena)
				}
			}
			atomic.AddInt64(&pairs, scored)
			atomic.AddInt64(&batches, g.Batches)
			atomic.AddInt64(&batchRows, g.BatchRows)
			atomic.AddInt64(&retained, kept)
		}()
	}
	wg.Wait()
	stats.Pairs = pairs
	stats.Batches = batches
	stats.BatchRows = batchRows
	stats.Retained = retained
	return lists, stats
}

// shardSize resolves the region size: the explicit request when positive,
// otherwise a size giving each worker about four regions — small enough to
// balance uneven regions across workers, large enough that the per-region
// arena allocation amortises — clamped to [16, 2048] v-pins.
func shardSize(requested, total, workers int) int {
	if requested > 0 {
		return requested
	}
	size := (total + 4*workers - 1) / (4 * workers)
	if size < 16 {
		size = 16
	}
	if size > 2048 {
		size = 2048
	}
	return size
}
