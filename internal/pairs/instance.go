package pairs

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/split"
)

// Instance bundles a challenge with its feature extractor and spatial
// index; one Instance per (design, split layer). Instances are immutable
// after construction and safe to share between concurrent attack runs.
type Instance struct {
	Ch *split.Challenge
	Ex *features.Extractor
	// match[i] is the ground-truth partner of v-pin i (-1 when the partner
	// is absent, which only degenerate restricted challenges produce).
	match []int32
	// dieW normalises distances across designs of different sizes.
	dieW float64
	ix   *vpinIndex
}

// New prepares a challenge for training or testing.
func New(ch *split.Challenge) *Instance {
	inst := &Instance{
		Ch:    ch,
		Ex:    features.NewExtractor(ch),
		match: make([]int32, len(ch.VPins)),
		dieW:  float64(ch.Design.Die().Width()),
	}
	for i := range ch.VPins {
		inst.match[i] = int32(ch.VPins[i].Match)
	}
	inst.ix = newVpinIndex(ch)
	return inst
}

// NewAll prepares one Instance per challenge, building them concurrently on
// up to workers goroutines (<= 0 selects GOMAXPROCS). Construction is
// per-challenge deterministic, so the result is identical at any worker
// count.
func NewAll(chs []*split.Challenge, workers int) []*Instance {
	insts := make([]*Instance, len(chs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chs) {
		workers = len(chs)
	}
	if workers <= 1 {
		for i, ch := range chs {
			insts[i] = New(ch)
		}
		return insts
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chs) {
					return
				}
				insts[i] = New(chs[i])
			}
		}()
	}
	wg.Wait()
	return insts
}

// N returns the v-pin count.
func (inst *Instance) N() int { return len(inst.Ch.VPins) }

// Match returns the ground-truth partner of v-pin a (-1 when absent).
func (inst *Instance) Match(a int) int { return int(inst.match[a]) }

// DieWidth returns the design's die width, the distance normaliser of the
// Imp neighborhood radius.
func (inst *Instance) DieWidth() float64 { return inst.dieW }

// appendMatchDistsNorm appends the ManhattanVpin distance of every true
// match, normalised by die width (one entry per cut net), to out.
func (inst *Instance) appendMatchDistsNorm(out []float64) []float64 {
	for a := 0; a < inst.N(); a++ {
		m := inst.Match(a)
		if a < m {
			out = append(out, inst.Ex.VpinDist(a, m)/inst.dieW)
		}
	}
	return out
}

// NeighborRadiusNorm pools the normalised matched-pair distances of the
// given (training) instances and returns their q-quantile — the
// neighborhood radius of the Imp configurations, as a fraction of die
// width (paper §III-D, Fig. 4). The pool is preallocated at its bound (one
// entry per matched pair, at most N/2 per instance), so the computation
// makes one slice allocation however large the suite is.
func NeighborRadiusNorm(insts []*Instance, q float64) float64 {
	total := 0
	for _, inst := range insts {
		total += inst.N() / 2
	}
	all := make([]float64, 0, total)
	for _, inst := range insts {
		all = inst.appendMatchDistsNorm(all)
	}
	return ml.Quantile(all, q)
}
