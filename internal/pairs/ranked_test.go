package pairs

import (
	"math"
	"sort"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
)

// presetBackend writes a fixed probability vector into the arena —
// the controlled input of the ranking-head tests.
type presetBackend struct{ ps []float64 }

func (p *presetBackend) score(g *Gatherer) { copy(g.P, p.ps) }

// constBatchScorer is a batch-capable constant model for resolver tests.
type constBatchScorer struct{ p float64 }

func (c constBatchScorer) Prob([]float64) float64 { return c.p }
func (c constBatchScorer) ProbBatch(rows []float64, stride int, out []float64) {
	for i := range out {
		out[i] = c.p
	}
}

// gatherFixture returns a Gatherer holding one real v-pin's candidates.
func gatherFixture(t *testing.T) (*Gatherer, Filter) {
	t.Helper()
	inst := New(challenges(t, 6)[4])
	f := inst.Filter(-1, false)
	var g Gatherer
	for a := 0; a < inst.N(); a++ {
		g.Gather(f, a)
		if len(g.Ids) >= 3 {
			return &g, f
		}
	}
	t.Fatal("no v-pin with at least 3 candidates")
	return nil, Filter{}
}

func TestRankedSoftmaxNormalises(t *testing.T) {
	g, _ := gatherFixture(t)
	n := len(g.Ids)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = float64(i%7) / 7 // repeated values exercise ties too
	}
	g.Score(Ranked(&presetBackend{ps: raw}))

	var sum float64
	for _, p := range g.P {
		if p < 0 || p > 1 {
			t.Fatalf("softmax output %v outside [0, 1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax outputs sum to %v, want 1", sum)
	}
	// Monotone: the per-list ranking is exactly the raw ranking.
	rawOrder := argsort(raw)
	softOrder := argsort(g.P)
	for i := range rawOrder {
		if rawOrder[i] != softOrder[i] {
			t.Fatalf("ranking changed: raw order %v, softmax order %v", rawOrder, softOrder)
		}
	}
}

func TestRankedPreservesGateSentinels(t *testing.T) {
	g, _ := gatherFixture(t)
	n := len(g.Ids)
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = 0.4 + 0.01*float64(i)
	}
	raw[0] = -1 // two-level gate rejection
	if n > 2 {
		raw[2] = -1
	}
	g.Score(Ranked(&presetBackend{ps: raw}))
	var sum float64
	for i, p := range g.P {
		if raw[i] < 0 {
			if p != raw[i] {
				t.Fatalf("gate-rejected candidate %d rescored to %v", i, p)
			}
			continue
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("admitted scores sum to %v, want 1", sum)
	}
}

func TestRankedAllRejectedUntouched(t *testing.T) {
	g, _ := gatherFixture(t)
	raw := make([]float64, len(g.Ids))
	for i := range raw {
		raw[i] = -1
	}
	g.Score(Ranked(&presetBackend{ps: raw}))
	for i, p := range g.P {
		if p != -1 {
			t.Fatalf("fully rejected list rescored at %d: %v", i, p)
		}
	}
}

func TestRankedWrapIdempotentAndTransparent(t *testing.T) {
	b := Ranked(&presetBackend{})
	if Ranked(b) != b {
		t.Error("double-wrapping allocated a second ranking head")
	}
	batch := ResolveBackend(constBatchScorer{p: 0.5}, false)
	if !Batched(batch) {
		t.Fatal("batch-capable scorer did not resolve to the batched backend")
	}
	if !Batched(Ranked(batch)) {
		t.Error("Batched does not look through the ranking wrapper")
	}
	if Batched(Ranked(ResolveBackend(constScorer{p: 0.5}, false))) {
		t.Error("ranked scalar backend misreported as batched")
	}
}

// TestGathererStride: a wider Stride must gather the same candidates with
// wider rows whose base block matches the default-width gather and whose
// routing block is filled.
func TestGathererStride(t *testing.T) {
	inst := New(challenges(t, 6)[4])
	f := inst.Filter(-1, false)
	var narrow, wide Gatherer
	wide.Stride = features.NumAll
	a := 0
	for ; a < inst.N(); a++ {
		narrow.Gather(f, a)
		if len(narrow.Ids) > 0 {
			break
		}
	}
	wide.Gather(f, a)
	if len(wide.Ids) != len(narrow.Ids) {
		t.Fatalf("stride changed the candidate set: %d vs %d", len(wide.Ids), len(narrow.Ids))
	}
	want := make([]float64, features.NumAll)
	for k := range wide.Ids {
		nrow := narrow.rows[k*features.NumFeatures : (k+1)*features.NumFeatures]
		wrow := wide.rows[k*features.NumAll : (k+1)*features.NumAll]
		for j, v := range nrow {
			if wrow[j] != v {
				t.Fatalf("candidate %d base feature %d differs: %g vs %g", k, j, wrow[j], v)
			}
		}
		inst.Ex.Pair(a, int(wide.Ids[k]), want)
		for j := features.NumFeatures; j < features.NumAll; j++ {
			if wrow[j] != want[j] {
				t.Fatalf("candidate %d routing feature %d = %g, want %g", k, j, wrow[j], want[j])
			}
		}
	}
}

// TestResolveBackendObsFallbackCounter pins the observability contract of
// mixed two-level compositions: exactly one batch-capable level falls back
// to the scalar oracle and increments pairs.backend.scalar_fallback.
func TestResolveBackendObsFallbackCounter(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	counter := func() int64 { return o.Metrics().Counter("pairs.backend.scalar_fallback").Value() }

	mixed := &TwoLevel{L1: constBatchScorer{p: 0.9}, L2: constScorer{p: 0.3}}
	if Batched(ResolveBackendObs(o, mixed, false)) {
		t.Fatal("mixed two-level composition resolved to the batched backend")
	}
	if got := counter(); got != 1 {
		t.Fatalf("fallback counter = %d after mixed composition, want 1", got)
	}

	// Both-batch, both-scalar, and forced-scalar resolutions are not silent
	// losses and must not count.
	ResolveBackendObs(o, &TwoLevel{L1: constBatchScorer{p: 0.9}, L2: constBatchScorer{p: 0.3}}, false)
	ResolveBackendObs(o, &TwoLevel{L1: constScorer{p: 0.9}, L2: constScorer{p: 0.3}}, false)
	ResolveBackendObs(o, constBatchScorer{p: 0.9}, true)
	if got := counter(); got != 1 {
		t.Fatalf("fallback counter = %d after clean resolutions, want 1", got)
	}

	// The nil-obs variant must not panic on the same mixed composition.
	if Batched(ResolveBackend(mixed, false)) {
		t.Fatal("nil-obs resolution of mixed composition batched")
	}
}

func argsort(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}
