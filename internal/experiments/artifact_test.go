package experiments

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/obs"
)

// TestSuiteArtifactCacheHits pins the train-once/score-many property of the
// suite's artifact store: sweeping a one-level configuration and then its
// two-level variant at the same layer trains each fold's level-1 model
// exactly once — the second sweep's level-1 stages are all cache hits and
// only the level-2 stages train.
func TestSuiteArtifactCacheHits(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	s := NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
	s.Obs = o

	if _, err := s.Run(attack.Imp11(), 8); err != nil {
		t.Fatal(err)
	}
	two := attack.WithTwoLevel(attack.Imp11())
	two.Name += "-2L"
	if _, err := s.Run(two, 8); err != nil {
		t.Fatal(err)
	}

	n := int64(len(s.Designs))
	ac := o.Metrics().Cache("model.artifacts")
	// First sweep: one level-1 miss per fold. Second sweep: one level-1 hit
	// plus one level-2 miss per fold.
	if ac.Hits() != n {
		t.Errorf("model.artifacts hits = %d, want %d (two-level sweep must reuse level-1 models)", ac.Hits(), n)
	}
	if ac.Misses() != 2*n {
		t.Errorf("model.artifacts misses = %d, want %d", ac.Misses(), 2*n)
	}

	// "Trained exactly once" shows up as one sampled training set per fold:
	// the two-level sweep reuses the cached level-1 models and never
	// re-samples.
	hs, ok := o.Metrics().Snapshot().Histograms["attack.trainset.size"]
	if !ok {
		t.Fatal("attack.trainset.size histogram not recorded")
	}
	if hs.Count != int64(n) {
		t.Errorf("trainset samples drawn %d times, want exactly once per fold (%d)", hs.Count, n)
	}
}
