package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/attack"
)

// One tiny suite shared by all experiment tests; experiment runs are cached
// inside it, so later tests reuse earlier work.
var (
	suiteOnce sync.Once
	suiteErr  error
	suiteVal  *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(0.12, 3)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestNewSuite(t *testing.T) {
	s := testSuite(t)
	if len(s.Designs) != 5 {
		t.Fatalf("suite has %d designs, want 5", len(s.Designs))
	}
}

func TestChallengesCached(t *testing.T) {
	s := testSuite(t)
	a, err := s.Challenges(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Challenges(8)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] || a[0] != b[0] {
		t.Error("challenges not cached")
	}
}

func TestRunCached(t *testing.T) {
	s := testSuite(t)
	a, err := s.Run(attack.Imp9(), 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(attack.Imp9(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("attack runs not cached")
	}
}

func TestNoisyChallenges(t *testing.T) {
	s := testSuite(t)
	clean, err := s.Challenges(6)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := s.NoisyChallenges(6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(noisy) != len(clean) {
		t.Fatal("noisy suite size differs")
	}
	moved := 0
	for i := range clean[0].VPins {
		if noisy[0].VPins[i].Pos != clean[0].VPins[i].Pos {
			moved++
		}
	}
	if moved == 0 {
		t.Error("noise did not move any v-pin")
	}
	same, err := s.NoisyChallenges(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if same[0] != clean[0] {
		t.Error("sd=0 must return the clean challenges")
	}
}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) failed: %v", e.ID, err)
		}
	}
	if _, err := ByID("table99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestAllExperimentsComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"fig4", "fig7", "fig8", "fig9", "fig10"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

// runExperiment executes one experiment on the shared suite and returns its
// output.
func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(testSuite(t), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestTableIOutput(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{"split layer 8", "split layer 6", "split layer 4",
		"sb1", "sb12", "Avg", "[5]|LoC|", "Imp-11"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestTableIIOutput(t *testing.T) {
	out := runExperiment(t, "table2")
	for _, want := range []string{"RandomTree", "REPTree", "Runtime", "split layer 8", "split layer 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %q", want)
		}
	}
}

func TestTableIIIOutput(t *testing.T) {
	out := runExperiment(t, "table3")
	for _, want := range []string{"2-level", "noPrune", "split layer 8"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}

func TestTableIVOutput(t *testing.T) {
	out := runExperiment(t, "table4")
	for _, want := range []string{"ML-9", "Imp-11Y", "frac@95%", "acc@10.00%", "runtime"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 output missing %q", want)
		}
	}
	// Y configs must appear only in the layer-8 block.
	blocks := strings.Split(out, "Table IV - split layer ")
	for _, b := range blocks[2:] { // layers 6 and 4
		if strings.Contains(b, "Y\t") || strings.Contains(b, "-9Y") {
			t.Error("Y configuration leaked into a lower-layer block")
		}
	}
}

func TestTableVOutput(t *testing.T) {
	out := runExperiment(t, "table5")
	for _, want := range []string{"[9]NN", "[5]PA", "-fix", "-val", "ValTime"} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 output missing %q", want)
		}
	}
}

func TestTableVIOutput(t *testing.T) {
	out := runExperiment(t, "table6")
	for _, want := range []string{"no-noise", "SD=1%", "SD=2%", "split layer 6", "split layer 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 output missing %q", want)
		}
	}
}

func TestFig4Output(t *testing.T) {
	out := runExperiment(t, "fig4")
	for _, want := range []string{"CDF", "p90%", "sb18"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestFig7Output(t *testing.T) {
	out := runExperiment(t, "fig7")
	for _, want := range []string{"InfoGain", "|Corr|", "Fisher", "ManhattanVpin", "RoutingCongestion"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 output missing %q", want)
		}
	}
}

func TestFig8Output(t *testing.T) {
	out := runExperiment(t, "fig8")
	for _, want := range []string{"match mean", "non-match", "DiffCellArea"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8 output missing %q", want)
		}
	}
}

func TestFig9Output(t *testing.T) {
	out := runExperiment(t, "fig9")
	for _, want := range []string{"LoCfrac", "Prior work [5]", "Imp-7", "split layer 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9 output missing %q", want)
		}
	}
}

func TestFig10Output(t *testing.T) {
	out := runExperiment(t, "fig10")
	for _, want := range []string{"no-noise", "SD=2%", "split layer 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig10 output missing %q", want)
		}
	}
}

func TestNewSuiteFromDesignsSharesLayouts(t *testing.T) {
	s := testSuite(t)
	fresh := NewSuiteFromDesigns(s.Designs, s.Scale, s.Seed)
	if len(fresh.runs) != 0 {
		t.Error("fresh suite must have empty caches")
	}
	if &fresh.Designs[0] == nil || fresh.Designs[0] != s.Designs[0] {
		t.Error("fresh suite must share design pointers")
	}
}

func TestExtensionExperiments(t *testing.T) {
	out := runExperiment(t, "ext-classifiers")
	for _, want := range []string{"logistic", "RandomForest", "pair AUC"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-classifiers output missing %q", want)
		}
	}
	out = runExperiment(t, "ext-defense")
	for _, want := range []string{"perturb x2", "lift", "wirelength overhead", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-defense output missing %q", want)
		}
	}
}

func TestAllWithExtensions(t *testing.T) {
	base := len(All())
	ext := len(AllWithExtensions())
	if ext != base+4 {
		t.Errorf("AllWithExtensions has %d entries, want %d", ext, base+4)
	}
	if _, err := ByID("ext-defense"); err != nil {
		t.Errorf("ext-defense not registered: %v", err)
	}
	if _, err := ByID("ext-dl"); err != nil {
		t.Errorf("ext-dl not registered: %v", err)
	}
}

func TestExtRecovery(t *testing.T) {
	out := runExperiment(t, "ext-recovery")
	for _, want := range []string{"structural", "functional", "observation pins", "Avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("ext-recovery output missing %q", want)
		}
	}
}
