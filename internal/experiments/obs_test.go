package experiments

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/obs"
)

// TestSuiteMetrics attaches an observability context to a suite and checks
// that cache outcomes and training-set sizes land in the metrics registry.
// The suite reuses the shared fixture's generated designs but gets fresh
// caches, so the hit/miss sequence is deterministic.
func TestSuiteMetrics(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	s := NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
	s.Obs = o

	if _, err := s.Run(attack.Imp9(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(attack.Imp9(), 8); err != nil {
		t.Fatal(err)
	}

	m := o.Metrics()
	if hits := m.Counter("suite.cache.hit").Value(); hits < 1 {
		t.Errorf("suite.cache.hit = %d, want >= 1 (second Run must hit)", hits)
	}
	// First Run misses both the run cache and the challenge cache.
	if misses := m.Counter("suite.cache.miss").Value(); misses < 2 {
		t.Errorf("suite.cache.miss = %d, want >= 2", misses)
	}

	// The leave-one-out run samples one training set per target design.
	snap := m.Snapshot()
	hs, ok := snap.Histograms["attack.trainset.size"]
	if !ok {
		t.Fatal("attack.trainset.size histogram not recorded")
	}
	if hs.Count < int64(len(s.Designs)) {
		t.Errorf("trainset histogram count = %d, want >= %d", hs.Count, len(s.Designs))
	}
	if hs.Min <= 0 {
		t.Errorf("trainset histogram min = %g, want > 0", hs.Min)
	}
	if n := m.Counter("attack.targets").Value(); n != int64(len(s.Designs)) {
		t.Errorf("attack.targets = %d, want %d", n, len(s.Designs))
	}
}

// TestSuiteInstanceCacheHits sweeps two configurations at one layer and
// checks that the second run reuses the prepared instances: the
// (layer, noise) instance cache must record at least one hit.
func TestSuiteInstanceCacheHits(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	s := NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
	s.Obs = o

	if _, err := s.Run(attack.Imp9(), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(attack.ML9(), 8); err != nil {
		t.Fatal(err)
	}

	ic := o.Metrics().Cache("suite.instances")
	if ic.Misses() < 1 {
		t.Errorf("suite.instances.miss = %d, want >= 1 (first config must build)", ic.Misses())
	}
	if ic.Hits() < 1 {
		t.Errorf("suite.instances.hit = %d, want >= 1 (second config must reuse instances)", ic.Hits())
	}
}

// TestSuiteRunExperimentObs checks the per-experiment span and counter.
func TestSuiteRunExperimentObs(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	s := NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
	s.Obs = o

	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunExperiment(s, e, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("experiment produced no output")
	}
	if n := o.Metrics().Counter("experiments.run").Value(); n != 1 {
		t.Errorf("experiments.run = %d, want 1", n)
	}
	sp := o.BuildReport().Find("experiment")
	if sp == nil {
		t.Fatal("report has no experiment span")
	}
	if sp.Attrs["id"] != "fig4" {
		t.Errorf("experiment span id = %v", sp.Attrs["id"])
	}
}

// TestSuiteObsNilSafe pins the zero-overhead contract: a suite without a
// context must run exactly as before.
func TestSuiteObsNilSafe(t *testing.T) {
	s := NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
	if s.Obs != nil {
		t.Fatal("fresh suite must not have a context")
	}
	if _, err := s.Challenges(8); err != nil {
		t.Fatal(err)
	}
	e, err := ByID("fig4")
	if err != nil {
		t.Fatal(err)
	}
	if err := RunExperiment(s, e, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}
