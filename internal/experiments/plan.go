package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/attack"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/sweep"
)

// RunSpec names one leave-one-out attack run an experiment depends on: a
// configuration at a (split layer, noise) coordinate. Specs are the bridge
// between the experiment registry and the sweep work-unit layer: each spec
// expands into one unit per suite design (fold).
type RunSpec struct {
	Config attack.Config
	Layer  int
	Noise  float64
}

// Deps enumerations per experiment. Each mirrors exactly the Run/RunNoisy
// calls its renderer makes (see tables.go, figures.go, extensions.go), so a
// sharded plan pre-computes precisely the folds the merge run will load.

func depsTableI() []RunSpec {
	return crossLayers(attack.StandardConfigs(), tableLayers)
}

func depsTableII() []RunSpec {
	rf := attack.WithBase(attack.Imp7(), ml.RandomTree, 0)
	rf.Name = "Imp-7-RandomTree"
	return crossLayers([]attack.Config{rf, attack.Imp7()}, []int{8, 6})
}

func depsTableIII() []RunSpec {
	two := attack.WithTwoLevel(attack.Imp11())
	two.Name = "Imp-11-2L"
	return crossLayers([]attack.Config{two, attack.Imp11()}, []int{8})
}

func depsTableIV() []RunSpec {
	var out []RunSpec
	for _, layer := range tableLayers {
		out = append(out, crossLayers(tableIVConfigs(layer), []int{layer})...)
	}
	return out
}

// depsNoise covers Table VI and Fig. 10: Imp-11 with and without Gaussian
// y-noise obfuscation at the two lower split layers.
func depsNoise() []RunSpec {
	var out []RunSpec
	for _, layer := range []int{6, 4} {
		for _, sd := range []float64{0, 0.01, 0.02} {
			out = append(out, RunSpec{Config: attack.Imp11(), Layer: layer, Noise: sd})
		}
	}
	return out
}

func depsExtClassifiers() []RunSpec {
	// Every classifier is a registered learner family now, so all three are
	// content-addressable and checkpoint as plan units.
	logistic := attack.WithFamily(attack.Imp11(), model.FamilyLogistic)
	logistic.Name = "Imp-11-logistic"
	forest := attack.WithBase(attack.Imp11(), ml.RandomTree, 0)
	forest.Name = "Imp-11-RandomForest"
	return crossLayers([]attack.Config{attack.Imp11(), forest, logistic}, []int{8, 6})
}

// depsExtDL covers the DL-perspective comparison: Bagging vs the MLP family
// vs the MLP with the list-wise ranking head, at the top split layer.
func depsExtDL() []RunSpec {
	return crossLayers(dlConfigs(), []int{8})
}

func depsExtDefense() []RunSpec {
	// Only the undefended baseline runs against the suite's own challenges;
	// the defense variants mutate layouts out-of-suite and cannot be
	// checkpointed as units.
	return crossLayers([]attack.Config{attack.Imp11()}, []int{6})
}

func depsExtRecovery() []RunSpec {
	return crossLayers([]attack.Config{attack.WithY(attack.Imp9())}, []int{8})
}

// crossLayers expands configs × layers into clean (noise-0) run specs.
func crossLayers(configs []attack.Config, layers []int) []RunSpec {
	out := make([]RunSpec, 0, len(configs)*len(layers))
	for _, layer := range layers {
		for _, cfg := range configs {
			out = append(out, RunSpec{Config: cfg, Layer: layer})
		}
	}
	return out
}

// PlanUnit is one entry of an executable plan: the sweep work unit plus the
// prepared configuration that computes it.
type PlanUnit struct {
	Unit   sweep.Unit
	Config attack.Config
}

// PlanRuns expands run specs into the suite's work units: one unit per
// (spec × fold), deduplicated across specs (experiments share runs — Tables
// IV and V and Fig. 9 all consume the same sweeps). Every configuration is
// content-addressable — learner families serialize their identity into
// OptionsHash — so every spec plans. Enumeration is deterministic: same
// suite, same specs, same plan.
func (s *Suite) PlanRuns(runs []RunSpec) []PlanUnit {
	var units []PlanUnit
	seen := map[string]bool{}
	for _, r := range runs {
		pcfg := s.prepare(r.Config)
		runKey := fmt.Sprintf("%s@%d/%g", pcfg.Name, r.Layer, r.Noise)
		if seen[runKey] {
			continue
		}
		seen[runKey] = true
		for fold := range s.Designs {
			units = append(units, PlanUnit{Unit: s.unit(pcfg, r.Layer, r.Noise, fold), Config: pcfg})
		}
	}
	return units
}

// Plan enumerates the work units of a set of experiments by concatenating
// their Deps and expanding with PlanRuns. Experiments without Deps (pure
// feature figures, out-of-suite defense variants) contribute nothing: their
// rendering work always happens in the merge process.
func (s *Suite) Plan(exps []Experiment) []PlanUnit {
	var runs []RunSpec
	for _, e := range exps {
		if e.Deps != nil {
			runs = append(runs, e.Deps()...)
		}
	}
	return s.PlanRuns(runs)
}

// PlanStats summarises a RunPlan execution.
type PlanStats struct {
	// Planned is the total unit count of the plan, across all shards.
	Planned int
	// Owned is how many units this suite's shard was responsible for.
	Owned int
	// Computed units ran the attack engine (includes Recomputed).
	Computed int
	// Loaded units were served from valid checkpoint files.
	Loaded int
	// Recomputed units had a corrupt checkpoint file discarded first.
	Recomputed int
}

// String renders the stats for command output.
func (st PlanStats) String() string {
	return fmt.Sprintf("planned=%d owned=%d computed=%d loaded=%d recomputed=%d",
		st.Planned, st.Owned, st.Computed, st.Loaded, st.Recomputed)
}

// RunPlan executes the units of the plan that the suite's Shard owns,
// checkpointing every completed fold. It is the shard worker's entry point:
// enumerate (Plan), filter by ownership, compute-or-skip each unit, and exit
// — rendering happens later, in a merge run that loads the union of all
// shards' partials. Requires a Checkpoint (a sharded run without one would
// compute results and throw them away).
func (s *Suite) RunPlan(units []PlanUnit) (PlanStats, error) {
	st := PlanStats{Planned: len(units)}
	if s.Checkpoint == nil {
		return st, fmt.Errorf("experiments: RunPlan needs a checkpoint directory to write partial results to")
	}
	if err := s.Shard.Validate(); err != nil {
		return st, err
	}
	var owned []PlanUnit
	for _, u := range units {
		if s.Shard.Owns(u.Unit.Key()) {
			owned = append(owned, u)
		}
	}
	st.Owned = len(owned)

	name := "shard"
	if sh := s.Shard.String(); sh != "" {
		name = "shard." + strings.ReplaceAll(sh, "/", "of")
	}
	var mu sync.Mutex
	err := s.sweep(name, len(owned), func(i int) error {
		u := owned[i]
		insts, err := s.Instances(u.Unit.Layer, u.Unit.Noise)
		if err != nil {
			return err
		}
		_, _, outcome, err := sweep.RunUnit(s.Obs, s.Checkpoint, u.Unit, u.Config, insts)
		if err != nil {
			return err
		}
		mu.Lock()
		switch outcome {
		case sweep.Loaded:
			st.Loaded++
		case sweep.Recomputed:
			st.Recomputed++
			st.Computed++
		default:
			st.Computed++
		}
		mu.Unlock()
		return nil
	})
	return st, err
}
