package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/attack"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// freshSuite wraps the shared test designs in a new Suite with empty caches,
// so shard/merge tests measure real checkpoint traffic instead of the shared
// suite's warm run cache.
func freshSuite(t *testing.T) *Suite {
	t.Helper()
	return NewSuiteFromDesigns(testSuite(t).Designs, 0.12, 3)
}

func fig10Experiment(t *testing.T) Experiment {
	t.Helper()
	e, err := ByID("fig10")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// renderFig10 runs Fig10 on the suite and returns the exact output bytes.
func renderFig10(t *testing.T, s *Suite) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Fig10(s, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fig10Digests collects the evaluation digests of every run Fig10 consumed,
// keyed by (layer, noise, fold).
func fig10Digests(t *testing.T, s *Suite) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, layer := range []int{6, 4} {
		for _, sd := range []float64{0, 0.01, 0.02} {
			res, err := s.RunNoisy(attack.Imp11(), layer, sd)
			if err != nil {
				t.Fatal(err)
			}
			for fold, ev := range res.Evals {
				out[ev.Digest()] = s.Designs[fold].Name
			}
		}
	}
	return out
}

// TestShardMergeDeterminism is the end-to-end contract of the sweep layer:
// Fig. 10 rendered from three shards' merged partials is byte-identical —
// and every evaluation digest-identical — to a single-process run.
func TestShardMergeDeterminism(t *testing.T) {
	fig10 := fig10Experiment(t)

	// Baseline: one process, no checkpoint.
	baseline := freshSuite(t)
	wantBytes := renderFig10(t, baseline)
	wantDigests := fig10Digests(t, baseline)

	// Three shard workers sharing one checkpoint directory.
	ckDir := t.TempDir()
	var planned, owned, computed int
	for i := 1; i <= 3; i++ {
		s := freshSuite(t)
		ck, err := sweep.Open(ckDir)
		if err != nil {
			t.Fatal(err)
		}
		s.Checkpoint = ck
		s.Shard = sweep.Shard{Index: i, Count: 3}
		stats, err := s.RunPlan(s.Plan([]Experiment{fig10}))
		if err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
		planned = stats.Planned
		owned += stats.Owned
		computed += stats.Computed
		if stats.Loaded != 0 || stats.Recomputed != 0 {
			t.Errorf("shard %d/3 on a fresh checkpoint: %s (want no loads)", i, stats)
		}
	}
	if planned == 0 {
		t.Fatal("fig10 plan is empty")
	}
	if owned != planned || computed != planned {
		t.Fatalf("3 shards owned %d and computed %d of %d planned units", owned, computed, planned)
	}

	// Merge: a fresh process with the checkpoint loads every fold and
	// renders; nothing may be recomputed.
	merged := freshSuite(t)
	ck, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	merged.Checkpoint = ck
	merged.Obs = obs.New(obs.Options{Command: "test"})
	gotBytes := renderFig10(t, merged)
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("merged Fig10 output differs from the single-process run:\n--- merged ---\n%s\n--- single ---\n%s",
			gotBytes, wantBytes)
	}
	if done := merged.Obs.Metrics().Counter("sweep.units.done").Value(); done != 0 {
		t.Errorf("merge recomputed %d units; every fold should load from the checkpoint", done)
	}
	if skipped := merged.Obs.Metrics().Counter("sweep.units.skipped").Value(); skipped != int64(planned) {
		t.Errorf("merge loaded %d units, want all %d", skipped, planned)
	}
	gotDigests := fig10Digests(t, merged)
	if len(gotDigests) != len(wantDigests) {
		t.Fatalf("merged run has %d distinct digests, baseline %d", len(gotDigests), len(wantDigests))
	}
	for d := range wantDigests {
		if _, ok := gotDigests[d]; !ok {
			t.Errorf("baseline digest %s (design %s) missing from the merged run", d, wantDigests[d])
		}
	}
}

// TestShardKillResume corrupts one partial and deletes another — the
// checkpoint shapes a killed shard leaves behind — and verifies a resumed
// run recomputes exactly those units and still merges bit-identically.
func TestShardKillResume(t *testing.T) {
	fig10 := fig10Experiment(t)
	ckDir := t.TempDir()

	first := freshSuite(t)
	ck, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	first.Checkpoint = ck
	stats, err := first.RunPlan(first.Plan([]Experiment{fig10}))
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := renderFig10(t, first)

	// Simulate the kill: one unit file torn mid-write, one never written.
	files, err := filepath.Glob(filepath.Join(ckDir, "*.unit"))
	if err != nil || len(files) < 2 {
		t.Fatalf("checkpoint has %d unit files (%v), want >= 2", len(files), err)
	}
	sort.Strings(files)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(files[1]); err != nil {
		t.Fatal(err)
	}

	// Resume: the zero shard owns every unit; all but the damaged two load.
	resumed := freshSuite(t)
	ck2, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Checkpoint = ck2
	rstats, err := resumed.RunPlan(resumed.Plan([]Experiment{fig10}))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Planned != stats.Planned || rstats.Owned != stats.Planned {
		t.Fatalf("resume plan %s does not cover the %d original units", rstats, stats.Planned)
	}
	if rstats.Computed != 2 || rstats.Recomputed != 1 || rstats.Loaded != stats.Planned-2 {
		t.Errorf("resume stats %s; want computed=2 recomputed=1 loaded=%d", rstats, stats.Planned-2)
	}

	merged := freshSuite(t)
	ck3, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	merged.Checkpoint = ck3
	if got := renderFig10(t, merged); !bytes.Equal(got, wantBytes) {
		t.Error("Fig10 after kill-and-resume differs from the uninterrupted run")
	}
}

// TestSharedModelStoreDedup: two processes sharing an on-disk model store
// train each unique fold spec exactly once — the second run's folds are all
// disk hits, recording zero "model.artifacts" misses.
func TestSharedModelStoreDedup(t *testing.T) {
	modelDir := t.TempDir()
	plan := []RunSpec{{Config: attack.Imp9(), Layer: 8}}

	run := func(ckDir string) *obs.Context {
		s := freshSuite(t)
		o := obs.New(obs.Options{Command: "test"})
		s.Obs = o
		s.SetModelStore(model.NewStore(0, modelDir))
		ck, err := sweep.Open(ckDir)
		if err != nil {
			t.Fatal(err)
		}
		s.Checkpoint = ck
		if _, err := s.RunPlan(s.PlanRuns(plan)); err != nil {
			t.Fatal(err)
		}
		return o
	}

	// Separate checkpoint dirs force the second run to recompute every fold
	// instead of loading the first run's partials: only the shared model
	// store can dedup the training work.
	oA := run(t.TempDir())
	oB := run(t.TempDir())

	folds := int64(len(testSuite(t).Designs))
	ac := oA.Metrics().Cache("model.artifacts")
	bc := oB.Metrics().Cache("model.artifacts")
	if ac.Misses() != folds {
		t.Errorf("first run recorded %d artifact misses, want %d (one per unique fold spec)", ac.Misses(), folds)
	}
	if bc.Misses() != 0 {
		t.Errorf("second run recorded %d artifact misses, want 0 (all folds served from the shared disk store)", bc.Misses())
	}
	if hits := oB.Metrics().Counter("model.artifacts.disk.hit").Value(); hits != folds {
		t.Errorf("second run recorded %d disk hits, want %d", hits, folds)
	}
}

// TestMLPFoldsCheckpointAndResume: MLP-family folds are sweep units like any
// other — a second process pointed at the same checkpoint directory loads
// every fold from disk instead of retraining, and reproduces the digests.
func TestMLPFoldsCheckpointAndResume(t *testing.T) {
	ckDir := t.TempDir()
	cfg := attack.DLMLP()
	cfg.MLPEpochs = 3
	plan := []RunSpec{{Config: cfg, Layer: 8}}

	first := freshSuite(t)
	ck, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	first.Checkpoint = ck
	stats, err := first.RunPlan(first.PlanRuns(plan))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Planned == 0 || stats.Computed != stats.Planned {
		t.Fatalf("first run %s; want every planned unit computed", stats)
	}
	res, err := first.Run(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(res.Evals))
	for fold, ev := range res.Evals {
		want[fold] = ev.Digest()
	}

	resumed := freshSuite(t)
	resumed.Obs = obs.New(obs.Options{Command: "test"})
	ck2, err := sweep.Open(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Checkpoint = ck2
	rstats, err := resumed.RunPlan(resumed.PlanRuns(plan))
	if err != nil {
		t.Fatal(err)
	}
	if rstats.Loaded != stats.Planned || rstats.Computed != 0 {
		t.Errorf("resume stats %s; want all %d units loaded, none computed", rstats, stats.Planned)
	}
	if done := resumed.Obs.Metrics().Counter("sweep.units.done").Value(); done != 0 {
		t.Errorf("resume retrained %d MLP folds; want 0", done)
	}
	rres, err := resumed.Run(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for fold, ev := range rres.Evals {
		if ev.Digest() != want[fold] {
			t.Errorf("fold %d digest %s after resume, want %s", fold, ev.Digest(), want[fold])
		}
	}
}
