package experiments

import "testing"

func TestFormatHelpers(t *testing.T) {
	if got := fmtLoC(-1); got != "-" {
		t.Errorf("fmtLoC(-1) = %q, want dash (paper's unreachable marker)", got)
	}
	if got := fmtLoC(12.34); got != "12.3" {
		t.Errorf("fmtLoC = %q", got)
	}
	if got := fmtFrac(-1); got != "-" {
		t.Errorf("fmtFrac(-1) = %q", got)
	}
	if got := fmtFrac(0.0123); got != "1.23%" {
		t.Errorf("fmtFrac = %q", got)
	}
	if got := fmtPct(0.5); got != "50.00%" {
		t.Errorf("fmtPct = %q", got)
	}
}

func TestTableIVConfigsPerLayer(t *testing.T) {
	if got := len(tableIVConfigs(8)); got != 8 {
		t.Errorf("layer 8 has %d configs, want 8 (4 + 4 Y variants)", got)
	}
	for _, layer := range []int{6, 4} {
		cfgs := tableIVConfigs(layer)
		if len(cfgs) != 4 {
			t.Errorf("layer %d has %d configs, want 4", layer, len(cfgs))
		}
		for _, c := range cfgs {
			if c.LimitDiffVpinY {
				t.Errorf("layer %d includes Y config %s", layer, c.Name)
			}
		}
	}
}
