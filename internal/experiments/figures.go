package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/priorwork"
	"repro/internal/split"
)

// normMatchDists returns the ManhattanVpin distance of every true match in
// the challenge, normalised by die width.
func normMatchDists(ch *split.Challenge) []float64 {
	dieW := float64(ch.Design.Die().Width())
	var out []float64
	for i := range ch.VPins {
		v := &ch.VPins[i]
		if v.Match > i {
			out = append(out, float64(v.Pos.Manhattan(ch.VPins[v.Match].Pos))/dieW)
		}
	}
	return out
}

// Fig4 reproduces Fig. 4: for each design, the CDF of the normalised
// matched-pair ManhattanVpin over the *other* four designs at split layer 6
// — the distribution the Imp neighborhood radius is read from.
func Fig4(s *Suite, w io.Writer) error {
	chs, err := s.Challenges(6)
	if err != nil {
		return err
	}
	probes := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	fmt.Fprintln(w, "Fig. 4 - CDF of normalised ManhattanVpin of true matches (split layer 6)")
	fmt.Fprintln(w, "Each row: held-out design; values: distance below which the given fraction")
	fmt.Fprintln(w, "of the remaining four designs' matched pairs fall (fraction of die width).")
	tw := newTab(w)
	fmt.Fprint(tw, "design\t")
	for _, p := range probes {
		fmt.Fprintf(tw, "p%.0f%%\t", p*100)
	}
	fmt.Fprintln(tw)
	for target := range chs {
		var pool []float64
		for i, ch := range chs {
			if i != target {
				pool = append(pool, normMatchDists(ch)...)
			}
		}
		fmt.Fprintf(tw, "%s\t", chs[target].Design.Name)
		for _, q := range ml.CDF(pool, probes) {
			fmt.Fprintf(tw, "%.3f\t", q)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// figTrainingSamples generates Imp-style training samples for a single
// design (neighborhood radius taken from the other designs, as in the
// leave-one-out discipline).
func figTrainingSamples(s *Suite, layer, design int) (*ml.Dataset, error) {
	insts, err := s.Instances(layer, 0)
	if err != nil {
		return nil, err
	}
	var trainInsts []*attack.Instance
	for i, inst := range insts {
		if i != design {
			trainInsts = append(trainInsts, inst)
		}
	}
	cfg := attack.Imp11()
	cfg.Seed = s.Seed
	radius := attack.NeighborRadiusNorm(trainInsts, 0.90)
	rng := rand.New(rand.NewSource(s.Seed + int64(layer*100+design)))
	ds := attack.TrainingSet(cfg, []*attack.Instance{insts[design]}, radius, nil, rng)
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// Fig7 reproduces Fig. 7: the information gain, absolute correlation
// coefficient, and Fisher's discriminant ratio of all 11 features, per
// design, for split layers 4, 6 and 8.
func Fig7(s *Suite, w io.Writer) error {
	metrics := []struct {
		name string
		f    func(xs []float64, ys []bool) float64
	}{
		{"InfoGain", func(xs []float64, ys []bool) float64 { return ml.InfoGain(xs, ys, 10) }},
		{"|Corr|", func(xs []float64, ys []bool) float64 {
			c := ml.CorrCoef(xs, ys)
			if c < 0 {
				c = -c
			}
			return c
		}},
		{"Fisher", ml.FisherRatio},
	}
	for _, layer := range []int{4, 6, 8} {
		chs, err := s.Challenges(layer)
		if err != nil {
			return err
		}
		// Per-design datasets.
		sets := make([]*ml.Dataset, len(chs))
		for d := range chs {
			if sets[d], err = figTrainingSamples(s, layer, d); err != nil {
				return err
			}
		}
		for _, m := range metrics {
			fmt.Fprintf(w, "Fig. 7 - %s, split layer %d\n", m.name, layer)
			tw := newTab(w)
			fmt.Fprint(tw, "feature\t")
			for _, ch := range chs {
				fmt.Fprintf(tw, "%s\t", ch.Design.Name)
			}
			fmt.Fprintln(tw)
			for f := 0; f < features.NumFeatures; f++ {
				fmt.Fprintf(tw, "%s\t", features.Names[f])
				for d := range chs {
					v := m.f(sets[d].Column(f), sets[d].Y)
					fmt.Fprintf(tw, "%.4f\t", v)
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig8 reproduces Fig. 8: per-feature class-conditional distributions of
// the pooled layer-6 training samples, as 10-bin histograms plus summary
// statistics.
func Fig8(s *Suite, w io.Writer) error {
	chs, err := s.Challenges(6)
	if err != nil {
		return err
	}
	pooled := &ml.Dataset{}
	for d := range chs {
		ds, err := figTrainingSamples(s, 6, d)
		if err != nil {
			return err
		}
		pooled.X = append(pooled.X, ds.X...)
		pooled.Y = append(pooled.Y, ds.Y...)
	}
	fmt.Fprintln(w, "Fig. 8 - feature distributions in the pooled layer-6 training set")
	for f := 0; f < features.NumFeatures; f++ {
		col := pooled.Column(f)
		var match, non []float64
		for i, v := range col {
			if pooled.Y[i] {
				match = append(match, v)
			} else {
				non = append(non, v)
			}
		}
		counts, edges := ml.Histogram(col, 10)
		_ = counts
		fmt.Fprintf(w, "%s: match mean=%.1f sd=%.1f | non-match mean=%.1f sd=%.1f\n",
			features.Names[f], meanOf(match), sdOf(match), meanOf(non), sdOf(non))
		fmt.Fprintf(w, "  bins [%.1f .. %.1f]:\n", edges[0], edges[len(edges)-1])
		fmt.Fprintf(w, "  match:     %v\n", histCounts(match, edges))
		fmt.Fprintf(w, "  non-match: %v\n", histCounts(non, edges))
	}
	fmt.Fprintln(w)
	return nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sdOf(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := meanOf(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// histCounts bins xs into the given shared edges.
func histCounts(xs []float64, edges []float64) []int {
	n := len(edges) - 1
	counts := make([]int, n)
	lo, hi := edges[0], edges[n]
	width := (hi - lo) / float64(n)
	if width == 0 {
		counts[0] = len(xs)
		return counts
	}
	for _, v := range xs {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// Fig9 reproduces Fig. 9: the LoC-fraction vs average-accuracy trade-off
// curves of every configuration (plus the Y variants at layer 8) and the
// prior-work [5] reference curve, for split layers 8, 6 and 4.
func Fig9(s *Suite, w io.Writer) error {
	fracs := attack.CurveFractions()
	slacks := []float64{0.1, 0.25, 0.5, 1, 2, 4, 8}
	for _, layer := range []int{8, 6, 4} {
		chs, err := s.Challenges(layer)
		if err != nil {
			return err
		}
		configs := tableIVConfigs(layer)
		curves := make([][]attack.TradeoffPoint, len(configs))
		for i, cfg := range configs {
			res, err := s.Run(cfg, layer)
			if err != nil {
				return err
			}
			curves[i] = attack.Curve(res.Evals, fracs)
		}
		priorCurve, err := priorwork.Curve(chs, slacks, s.Seed)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "Fig. 9 - split layer %d: accuracy vs LoC fraction\n", layer)
		tw := newTab(w)
		fmt.Fprint(tw, "LoCfrac\t")
		for _, cfg := range configs {
			fmt.Fprintf(tw, "%s\t", cfg.Name)
		}
		fmt.Fprintln(tw)
		for pi, f := range fracs {
			fmt.Fprintf(tw, "%.4f%%\t", f*100)
			for i := range configs {
				fmt.Fprintf(tw, "%.4f\t", curves[i][pi].Accuracy)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w, "Prior work [5] (slack sweep):")
		tw = newTab(w)
		fmt.Fprintln(tw, "LoCfrac\taccuracy")
		for _, p := range priorCurve {
			fmt.Fprintf(tw, "%.4f%%\t%.4f\n", p.LoCFrac*100, p.Accuracy)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// Fig10 reproduces Fig. 10: Imp-11 trade-off curves with and without
// obfuscation noise (SD = 1 and 2 % of die height) at split layers 6 and 4.
func Fig10(s *Suite, w io.Writer) error {
	fracs := attack.CurveFractions()
	sds := []float64{0, 0.01, 0.02}
	for _, layer := range []int{6, 4} {
		curves := make([][]attack.TradeoffPoint, len(sds))
		for i, sd := range sds {
			res, err := s.RunNoisy(attack.Imp11(), layer, sd)
			if err != nil {
				return err
			}
			curves[i] = attack.Curve(res.Evals, fracs)
		}
		fmt.Fprintf(w, "Fig. 10 - split layer %d (Imp-11): accuracy vs LoC fraction\n", layer)
		tw := newTab(w)
		fmt.Fprintln(tw, "LoCfrac\tno-noise\tSD=1%\tSD=2%")
		for pi, f := range fracs {
			fmt.Fprintf(tw, "%.4f%%\t", f*100)
			for i := range sds {
				fmt.Fprintf(tw, "%.4f\t", curves[i][pi].Accuracy)
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}
