package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obfuscate"
	"repro/internal/sim"
	"repro/internal/split"
	"repro/internal/timing"
)

// The ext* experiments go beyond the paper: a classifier bake-off including
// a linear model, and a defender-side evaluation of layout-level
// countermeasures with their wirelength cost. They are registered alongside
// the paper's tables and figures.

// extExperiments returns the extension experiments.
func extExperiments() []Experiment {
	return []Experiment{
		{ID: "ext-classifiers", Title: "Extension: classifier bake-off (Bagging/REPTree vs RandomForest vs logistic)", Run: ExtClassifiers, Deps: depsExtClassifiers},
		{ID: "ext-dl", Title: "Extension: DL-perspective attack (MLP + routing hints + list-wise ranking) vs Bagging", Run: ExtDL, Deps: depsExtDL},
		{ID: "ext-defense", Title: "Extension: layout-level defenses (routing perturbation, wire lifting, trunk jogs) vs attack", Run: ExtDefense, Deps: depsExtDefense},
		{ID: "ext-recovery", Title: "Extension: functional netlist recovery from PA pairings (logic simulation)", Run: ExtRecovery, Deps: depsExtRecovery},
	}
}

// dlConfigs are the DL-perspective comparison configurations: the paper's
// strongest Bagging pipeline against the MLP family (with the routing-hint
// feature block) and the same MLP with the list-wise ranking head.
func dlConfigs() []attack.Config {
	return []attack.Config{attack.Imp11(), attack.DLMLP(), attack.DLMLPRank()}
}

// ExtDL recasts the DL-perspective split-manufacturing attack (Li et al.,
// DAC'19/TCAD'20) onto this engine at the top split layer: a multi-layer
// perceptron over the widened feature set including the routing-hint block,
// with and without the list-wise ranking head, against the paper's Bagging
// baseline. CCR is the correct-connection rate — the fraction of v-pins
// whose true partner ranks first in the candidate list (accuracy at |LoC|=1).
// The ranking head softmax-normalises each candidate list, which is monotone
// per list: CCR and accuracy-at-K match the plain MLP exactly, while the
// scores become per-list probability distributions (visible in the AUC,
// which pools scores across lists).
func ExtDL(s *Suite, w io.Writer) error {
	const layer = 8
	configs := dlConfigs()
	results, err := s.RunAll(configs, layer)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Extension: DL-perspective attack - split layer %d\n", layer)
	tw := newTab(w)
	fmt.Fprintln(tw, "model\tCCR\tacc@|LoC|=5\tacc@|LoC|=10\tpair AUC\truntime")
	for ci, cfg := range configs {
		res := results[ci]
		var ccr, a5, a10, auc float64
		for _, ev := range res.Evals {
			ccr += ev.AccuracyAtK(1)
			a5 += ev.AccuracyAtK(5)
			a10 += ev.AccuracyAtK(10)
			auc += pairAUC(ev)
		}
		n := float64(len(res.Evals))
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.4f\t%v\n", cfg.Name,
			fmtPct(ccr/n), fmtPct(a5/n), fmtPct(a10/n), auc/n,
			(res.MeanTrainDur() + res.MeanTestDur()).Round(1e6))
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// ExtRecovery goes past the paper's structural PA metric: it rewires each
// design's BEOL according to the attacker's proximity-attack picks and
// simulates the reconstruction against the reference on random input
// vectors. Functional recovery exceeds structural success because wrong
// guesses often wire in correlated signals.
func ExtRecovery(s *Suite, w io.Writer) error {
	const layer = 8
	const vectors = 16
	chs, err := s.Challenges(layer)
	if err != nil {
		return err
	}
	res, err := s.Run(attack.WithY(attack.Imp9()), layer)
	if err != nil {
		return err
	}
	pa, err := s.RunPA(attack.WithY(attack.Imp9()), layer, 0)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Extension: netlist recovery - split layer %d (Imp-9Y picks, %d vectors)\n", layer, vectors)
	tw := newTab(w)
	fmt.Fprintln(tw, "design\tstructural (PA)\tfunctional\tchance-adjusted\tobservation pins")
	var sSum, fSum float64
	for d, ch := range chs {
		rng := rand.New(rand.NewSource(s.Seed + int64(d)*13))
		answers := res.Evals[d].PAAnswers(pa[d].BestFrac, rng)
		pairing := map[int]int{}
		for i := range ch.VPins {
			if ch.VPins[i].IsDriverSide() && answers[i] >= 0 {
				pairing[i] = int(answers[i])
			}
		}
		rep, err := sim.EvaluateRecovery(ch, pairing, vectors, s.Seed+int64(d))
		if err != nil {
			return err
		}
		// Chance-adjusted: how far above the 0.5 coin-flip baseline the
		// functional rate sits, rescaled to [0, 1].
		adj := 2*rep.FunctionalRate - 1
		if adj < 0 {
			adj = 0
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\n", ch.Design.Name,
			fmtPct(rep.StructuralRate), fmtPct(rep.FunctionalRate), fmtPct(adj), rep.CutSinkPins)
		sSum += rep.StructuralRate
		fSum += rep.FunctionalRate
	}
	n := float64(len(chs))
	fmt.Fprintf(tw, "Avg\t%s\t%s\t\t\n", fmtPct(sSum/n), fmtPct(fSum/n))
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// ExtClassifiers compares classifiers under the Imp-11 pipeline at split
// layers 8 and 6: accuracy at fixed LoC sizes plus the pair-scoring AUC.
func ExtClassifiers(s *Suite, w io.Writer) error {
	logistic := attack.WithFamily(attack.Imp11(), model.FamilyLogistic)
	logistic.Name = "Imp-11-logistic"
	forest := attack.WithBase(attack.Imp11(), ml.RandomTree, 0)
	forest.Name = "Imp-11-RandomForest"
	configs := []attack.Config{attack.Imp11(), forest, logistic}

	for _, layer := range []int{8, 6} {
		fmt.Fprintf(w, "Extension: classifier comparison - split layer %d (Imp-11 pipeline)\n", layer)
		tw := newTab(w)
		fmt.Fprintln(tw, "classifier\tacc@|LoC|=5\tacc@|LoC|=20\tpair AUC\truntime")
		results, err := s.RunAll(configs, layer)
		if err != nil {
			return err
		}
		for ci, cfg := range configs {
			res := results[ci]
			var a5, a20, auc float64
			for _, ev := range res.Evals {
				a5 += ev.AccuracyAtK(5)
				a20 += ev.AccuracyAtK(20)
				auc += pairAUC(ev)
			}
			n := float64(len(res.Evals))
			fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%v\n", cfg.Name,
				fmtPct(a5/n), fmtPct(a20/n), auc/n,
				(res.MeanTrainDur() + res.MeanTestDur()).Round(1e6))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// pairAUC computes the AUC over an evaluation's scored pairs: the true
// match's probability against the retained negatives, per v-pin, pooled.
func pairAUC(ev *attack.Evaluation) float64 {
	var scores []float64
	var labels []bool
	for a := 0; a < ev.N; a++ {
		if ev.TruthP[a] >= 0 {
			scores = append(scores, float64(ev.TruthP[a]))
			labels = append(labels, true)
		}
		for _, c := range ev.Cands[a] {
			if c.P < 0 || int(c.Other) == int(ev.Truth[a]) {
				continue
			}
			scores = append(scores, float64(c.P))
			labels = append(labels, false)
		}
	}
	return ml.AUC(scores, labels)
}

// ExtDefense measures the attack against layout-level defenses at split
// layer 6: routing perturbation with growing strength and wire lifting,
// reporting attack accuracy, v-pin population, and wirelength overhead.
func ExtDefense(s *Suite, w io.Writer) error {
	const layer = 6
	type variant struct {
		name  string
		apply func(d *layout.Design, seed int64) (*layout.Design, obfuscate.Cost, error)
	}
	variants := []variant{
		{"perturb x2", func(d *layout.Design, seed int64) (*layout.Design, obfuscate.Cost, error) {
			return obfuscate.PerturbRoutes(d, layer, 2.0, seed)
		}},
		{"perturb x4", func(d *layout.Design, seed int64) (*layout.Design, obfuscate.Cost, error) {
			return obfuscate.PerturbRoutes(d, layer, 4.0, seed)
		}},
		{"lift 50% M5-M6 +2", func(d *layout.Design, seed int64) (*layout.Design, obfuscate.Cost, error) {
			return obfuscate.LiftNets(d, 5, 6, 2, 0.5, seed)
		}},
		{"trunk jogs <=4", func(d *layout.Design, seed int64) (*layout.Design, obfuscate.Cost, error) {
			return obfuscate.JogTrunks(d, layer, 4, 1.0, seed)
		}},
	}

	base, err := s.Run(attack.Imp11(), layer)
	if err != nil {
		return err
	}
	baseTiming := make([]timing.DesignTiming, len(s.Designs))
	for i, d := range s.Designs {
		baseTiming[i] = timing.Analyze(d)
	}
	fmt.Fprintf(w, "Extension: layout-level defenses - split layer %d (Imp-11)\n", layer)
	tw := newTab(w)
	fmt.Fprintln(tw, "defense\tavg v-pins\tacc@|LoC|=10\twirelength overhead\tdelay overhead")
	var baseAcc, baseVp float64
	for _, ev := range base.Evals {
		baseAcc += ev.AccuracyAtK(10)
		baseVp += float64(ev.N)
	}
	n := float64(len(base.Evals))
	fmt.Fprintf(tw, "none\t%.0f\t%s\t-\t-\n", baseVp/n, fmtPct(baseAcc/n))

	for vi, v := range variants {
		chs := make([]*split.Challenge, len(s.Designs))
		var overhead, delayOH float64
		for i, d := range s.Designs {
			nd, cost, err := v.apply(d, int64(7000+100*vi+i))
			if err != nil {
				return err
			}
			overhead += cost.Overhead()
			delayOH += timing.Overhead(baseTiming[i], timing.Analyze(nd))
			if chs[i], err = split.NewChallenge(nd, layer); err != nil {
				return err
			}
		}
		cfg := attack.Imp11()
		cfg.Name = fmt.Sprintf("Imp-11-def%d", vi)
		res, err := attack.Run(s.prepare(cfg), chs)
		if err != nil {
			return err
		}
		var acc, vp float64
		for _, ev := range res.Evals {
			acc += ev.AccuracyAtK(10)
			vp += float64(ev.N)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%s\t%.2f%%\t%.2f%%\n",
			v.name, vp/n, fmtPct(acc/n), overhead/n*100, delayOH/n*100)
	}
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}
