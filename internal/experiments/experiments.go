// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite. Each experiment is
// registered under the paper's table/figure number and writes a plain-text
// reproduction of the corresponding rows or series.
//
// Attack runs are cached per (configuration, split layer) inside a Suite,
// so experiments that share underlying runs (Tables I and IV, Fig. 9, ...)
// do not repeat work.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/priorwork"
	"repro/internal/split"
	"repro/internal/sweep"
)

// Suite is the generated benchmark suite plus caches of challenges and
// attack results. A Suite is safe for concurrent use: caches are
// mutex-guarded and attack results depend only on (Seed, config, layer),
// never on which goroutine computed them.
type Suite struct {
	Designs []*layout.Design
	// Tier is the suite tier the designs came from ("" means standard).
	Tier  string
	Scale float64
	Seed  int64

	// Workers bounds the goroutines of every attack run and config sweep
	// started through this suite (propagated into attack.Config.Workers
	// unless the config sets its own). Zero selects GOMAXPROCS. Results
	// are bit-identical at any worker count.
	Workers int

	// Obs, when non-nil, receives cache hit/miss counters, spans, and logs
	// from every suite operation and is propagated into attack runs.
	Obs *obs.Context

	// Checkpoint, when non-nil, persists every leave-one-out fold as a
	// content-addressed unit file (see internal/sweep): folds already in the
	// checkpoint are loaded instead of recomputed — bit-identically — which
	// is both the resume path for killed runs and the merge path combining
	// partials that other shards (or machines) computed. Every learner
	// family checkpoints — MLP folds resume exactly like Bagging folds.
	Checkpoint *sweep.Checkpoint
	// Shard restricts RunPlan to the units this shard owns (the "-shard
	// i/n" partition). The zero value owns everything. Run/RunNoisy ignore
	// it: a rendering run always needs every fold, loading what shards
	// computed and computing only what is missing.
	Shard sweep.Shard

	mu    sync.Mutex
	chs   map[int][]*split.Challenge
	insts map[string][]*attack.Instance
	runs  map[string]*attack.Result
	noisy map[string][]*split.Challenge
	pa    map[string][]attack.PAOutcome
	nn    map[int][]float64
	// models caches trained artifacts per fold by spec content hash, so
	// sweeps that retrain identical folds (threshold sweeps, two-level
	// variants sharing a level-1 model) become cache hits; see
	// model.Store. It rides alongside the instance cache and reports
	// outcomes under the "model.artifacts" counters.
	models *model.Store
}

// NewSuite generates the five benchmark designs at the given scale.
func NewSuite(scale float64, seed int64) (*Suite, error) {
	return NewSuiteObs(nil, scale, seed)
}

// NewSuiteObs is NewSuite with an observability context (nil disables it)
// that instruments suite generation and every subsequent suite operation.
func NewSuiteObs(o *obs.Context, scale float64, seed int64) (*Suite, error) {
	return NewSuiteParallel(o, scale, seed, 0)
}

// NewSuiteParallel is NewSuiteObs with an explicit worker bound (0 =
// GOMAXPROCS): the benchmark designs are generated concurrently, and the
// bound is inherited by every attack run and config sweep started through
// the suite. Generation is per-design deterministic, so the suite is
// identical at any worker count.
func NewSuiteParallel(o *obs.Context, scale float64, seed int64, workers int) (*Suite, error) {
	return NewSuiteTier(o, layout.TierStandard, scale, seed, workers)
}

// NewSuiteTier is NewSuiteParallel with an explicit suite tier: "standard"
// for the five sb* benchmark designs, "industrial" for the three 100k+-cell
// sbx* designs. The tier changes only which designs are generated; every
// cache and attack path downstream is tier-agnostic.
func NewSuiteTier(o *obs.Context, tier string, scale float64, seed int64, workers int) (*Suite, error) {
	designs, err := layout.GenerateSuiteObs(o, layout.SuiteConfig{Tier: tier, Scale: scale, Seed: seed, Workers: workers})
	if err != nil {
		return nil, err
	}
	s := NewSuiteFromDesigns(designs, scale, seed)
	s.Tier = tier
	s.Workers = workers
	s.Obs = o
	return s, nil
}

// SetModelStore replaces the suite's trained-artifact store. Commands use
// this to wire the -model-cache/-model-cache-dir flags in: with a shared
// on-disk directory, concurrent shards (separate processes, even separate
// machines) train each unique fold spec exactly once and load it everywhere
// else. A nil store is ignored.
func (s *Suite) SetModelStore(st *model.Store) {
	if st == nil {
		return
	}
	s.mu.Lock()
	s.models = st
	s.mu.Unlock()
}

// provenance pins the suite shape for sweep units.
func (s *Suite) provenance() sweep.Provenance {
	tier := s.Tier
	if tier == "" {
		tier = layout.TierStandard
	}
	return sweep.Provenance{Tier: tier, Scale: s.Scale, Seed: s.Seed}
}

// cacheLookup records a suite-cache outcome on the metrics registry.
func (s *Suite) cacheLookup(hit bool) {
	s.Obs.Metrics().Cache("suite.cache").Lookup(hit)
}

// NewSuiteFromDesigns wraps already-generated designs in a Suite with
// fresh caches. The benchmark harness uses this to re-measure attack work
// without re-generating layouts.
func NewSuiteFromDesigns(designs []*layout.Design, scale float64, seed int64) *Suite {
	return &Suite{
		Designs: designs,
		Scale:   scale,
		Seed:    seed,
		chs:     map[int][]*split.Challenge{},
		insts:   map[string][]*attack.Instance{},
		runs:    map[string]*attack.Result{},
		noisy:   map[string][]*split.Challenge{},
		pa:      map[string][]attack.PAOutcome{},
		nn:      map[int][]float64{},
		models:  model.NewStore(0, ""),
	}
}

// Challenges returns (and caches) the challenges for a split layer.
func (s *Suite) Challenges(layer int) ([]*split.Challenge, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if chs, ok := s.chs[layer]; ok {
		s.cacheLookup(true)
		return chs, nil
	}
	s.cacheLookup(false)
	chs := make([]*split.Challenge, 0, len(s.Designs))
	for _, d := range s.Designs {
		c, err := split.NewChallengeObs(s.Obs, d, layer)
		if err != nil {
			return nil, err
		}
		chs = append(chs, c)
	}
	s.chs[layer] = chs
	return chs, nil
}

// NoisyChallenges returns challenges with Gaussian y-noise of the given
// standard deviation (fraction of die height) applied to all v-pins,
// cached per (layer, sd).
func (s *Suite) NoisyChallenges(layer int, sd float64) ([]*split.Challenge, error) {
	base, err := s.Challenges(layer)
	if err != nil {
		return nil, err
	}
	if sd == 0 {
		return base, nil
	}
	key := fmt.Sprintf("%d/%g", layer, sd)
	s.mu.Lock()
	defer s.mu.Unlock()
	if chs, ok := s.noisy[key]; ok {
		s.cacheLookup(true)
		return chs, nil
	}
	s.cacheLookup(false)
	rng := rand.New(rand.NewSource(s.Seed*1000 + int64(layer)*17 + int64(sd*1e4)))
	chs := make([]*split.Challenge, len(base))
	for i, ch := range base {
		chs[i] = ch.WithNoise(sd, rng)
	}
	s.noisy[key] = chs
	return chs, nil
}

// Instances returns (and caches) the prepared attack instances — feature
// extractors plus spatial pair indexes — for a split layer and noise level
// (sd 0 selects the clean challenges). Instances are immutable, so one set
// is shared by every attack run, sweep, and figure at the same (layer,
// noise) coordinates; multi-config sweeps stop re-deriving per-v-pin
// features. Lookups are counted under "suite.instances.hit"/".miss".
func (s *Suite) Instances(layer int, sd float64) ([]*attack.Instance, error) {
	key := fmt.Sprintf("%d/%g", layer, sd)
	s.mu.Lock()
	in, ok := s.insts[key]
	s.mu.Unlock()
	s.Obs.Metrics().Cache("suite.instances").Lookup(ok)
	if ok {
		return in, nil
	}
	chs, err := s.NoisyChallenges(layer, sd)
	if err != nil {
		return nil, err
	}
	in = attack.NewInstancesWorkers(chs, s.Workers)
	s.mu.Lock()
	s.insts[key] = in
	s.mu.Unlock()
	return in, nil
}

// prepare stamps a config with the suite's seed, worker bound, and
// observability context before an attack run. A config's own Workers, when
// set, wins over the suite's.
func (s *Suite) prepare(cfg attack.Config) attack.Config {
	cfg.Seed = s.Seed
	if cfg.Workers == 0 {
		cfg.Workers = s.Workers
	}
	if s.Obs != nil {
		cfg.Obs = s.Obs
	}
	if cfg.Models == nil {
		cfg.Models = s.models
	}
	return cfg
}

// Run executes (and caches) a leave-one-out attack run of cfg at the given
// split layer.
func (s *Suite) Run(cfg attack.Config, layer int) (*attack.Result, error) {
	key := fmt.Sprintf("%s@%d", cfg.Name, layer)
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		s.cacheLookup(true)
		return r, nil
	}
	s.mu.Unlock()
	s.cacheLookup(false)

	insts, err := s.Instances(layer, 0)
	if err != nil {
		return nil, err
	}
	r, err := s.runFolds(cfg, layer, 0, insts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs[key] = r
	s.mu.Unlock()
	return r, nil
}

// runFolds executes a full leave-one-out run of cfg fold by fold on the
// suite's worker pool, assembling the per-fold evaluations into one
// attack.Result. Each fold goes through runFold — and therefore through the
// checkpoint when one is configured — and is bit-identical to the matching
// entry of a monolithic attack.RunInstances call, so decomposition (and any
// mix of loaded and computed folds) never changes results.
func (s *Suite) runFolds(cfg attack.Config, layer int, sd float64, insts []*attack.Instance) (*attack.Result, error) {
	pcfg := s.prepare(cfg)
	start := time.Now()
	res := &attack.Result{
		Config:     pcfg,
		Evals:      make([]*attack.Evaluation, len(insts)),
		RadiusNorm: make([]float64, len(insts)),
	}
	name := fmt.Sprintf("attack.%s.L%d", pcfg.Name, layer)
	if sd != 0 {
		name += fmt.Sprintf(".noise%g", sd)
	}
	err := s.sweep(name, len(insts), func(fold int) error {
		res.RadiusNorm[fold] = -1
		ev, radius, err := s.runFold(pcfg, layer, sd, insts, fold)
		if err != nil {
			return err
		}
		res.Evals[fold] = ev
		res.RadiusNorm[fold] = radius
		return nil
	})
	res.TotalDur = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s at layer %d: %w", pcfg.Name, layer, err)
	}
	return res, nil
}

// runFold runs one leave-one-out fold, serving it from (and saving it to)
// the checkpoint when the suite has one.
func (s *Suite) runFold(pcfg attack.Config, layer int, sd float64,
	insts []*attack.Instance, fold int) (*attack.Evaluation, float64, error) {

	if s.Checkpoint != nil {
		ev, radius, _, err := sweep.RunUnit(s.Obs, s.Checkpoint, s.unit(pcfg, layer, sd, fold), pcfg, insts)
		return ev, radius, err
	}
	return attack.RunFoldInstances(pcfg, insts, fold)
}

// unit builds the sweep work unit of one fold. Every configuration is
// content-addressable — learner families serialize their identity into
// OptionsHash — so every fold has a unit.
func (s *Suite) unit(pcfg attack.Config, layer int, sd float64, fold int) sweep.Unit {
	return sweep.Unit{
		Prov:   s.provenance(),
		Config: pcfg.Name,
		Spec:   pcfg.OptionsHash(),
		Layer:  layer,
		Noise:  sd,
		Fold:   fold,
		Design: s.Designs[fold].Name,
	}
}

// RunPA executes (and caches) the validation-based proximity attack of cfg
// at the given split layer, optionally on noise-obfuscated challenges
// (sd > 0, as a fraction of die height).
func (s *Suite) RunPA(cfg attack.Config, layer int, sd float64) ([]attack.PAOutcome, error) {
	key := fmt.Sprintf("%s@%d/%g", cfg.Name, layer, sd)
	s.mu.Lock()
	if o, ok := s.pa[key]; ok {
		s.mu.Unlock()
		s.cacheLookup(true)
		return o, nil
	}
	s.mu.Unlock()
	s.cacheLookup(false)

	insts, err := s.Instances(layer, sd)
	if err != nil {
		return nil, err
	}
	// Reuse the cached attack run's candidate lists; only the PA-LoC
	// validation stage is new work.
	var prior *attack.Result
	if sd == 0 {
		if prior, err = s.Run(cfg, layer); err != nil {
			return nil, err
		}
	} else {
		if prior, err = s.RunNoisy(cfg, layer, sd); err != nil {
			return nil, err
		}
	}
	o, err := attack.RunProximityOnInstances(s.prepare(cfg), insts, prior)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.pa[key] = o
	s.mu.Unlock()
	return o, nil
}

// RunNoisy executes (and caches) a leave-one-out run on noise-obfuscated
// challenges.
func (s *Suite) RunNoisy(cfg attack.Config, layer int, sd float64) (*attack.Result, error) {
	if sd == 0 {
		return s.Run(cfg, layer)
	}
	key := fmt.Sprintf("%s@%d/noise%g", cfg.Name, layer, sd)
	s.mu.Lock()
	if r, ok := s.runs[key]; ok {
		s.mu.Unlock()
		s.cacheLookup(true)
		return r, nil
	}
	s.mu.Unlock()
	s.cacheLookup(false)

	insts, err := s.Instances(layer, sd)
	if err != nil {
		return nil, err
	}
	r, err := s.runFolds(cfg, layer, sd, insts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs[key] = r
	s.mu.Unlock()
	return r, nil
}

// sweep runs fn for every index in 0..n-1 on a bounded pool (suite worker
// bound capped at n) and joins the per-index errors, tracking live progress
// under "sweep.<name>". Each index's work is deterministic on its own, so
// the sweep result does not depend on the worker count.
func (s *Suite) sweep(name string, n int, fn func(i int) error) error {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	prog := s.Obs.NewProgress("sweep."+name, int64(n))
	defer prog.Finish()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
				prog.Add(1)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunAll executes (and caches) the leave-one-out attack runs of all
// configs at the given split layer, sweeping the configs across the
// suite's worker pool. Results are position-matched to cfgs and identical
// to len(cfgs) sequential Run calls; table experiments use this to
// prefetch every column before printing.
func (s *Suite) RunAll(cfgs []attack.Config, layer int) ([]*attack.Result, error) {
	out := make([]*attack.Result, len(cfgs))
	err := s.sweep(fmt.Sprintf("configs.L%d", layer), len(cfgs), func(i int) error {
		r, err := s.Run(cfgs[i], layer)
		out[i] = r
		return err
	})
	return out, err
}

// RunPAAll executes (and caches) the validation-based proximity attacks of
// all configs at the given split layer and noise level, sweeping the
// configs across the suite's worker pool. Results are position-matched to
// cfgs and identical to sequential RunPA calls.
func (s *Suite) RunPAAll(cfgs []attack.Config, layer int, sd float64) ([][]attack.PAOutcome, error) {
	out := make([][]attack.PAOutcome, len(cfgs))
	err := s.sweep(fmt.Sprintf("pa.L%d", layer), len(cfgs), func(i int) error {
		o, err := s.RunPA(cfgs[i], layer, sd)
		out[i] = o
		return err
	})
	return out, err
}

// nnPA returns the nearest-neighbour PA success of design d at the given
// layer, cached per layer.
func (s *Suite) nnPA(layer, d int) float64 {
	s.mu.Lock()
	if v, ok := s.nn[layer]; ok {
		s.mu.Unlock()
		s.cacheLookup(true)
		return v[d]
	}
	s.mu.Unlock()
	s.cacheLookup(false)
	chs, err := s.Challenges(layer)
	if err != nil {
		return 0
	}
	v := make([]float64, len(chs))
	rng := rand.New(rand.NewSource(s.Seed + int64(layer)))
	for i, ch := range chs {
		v[i] = priorwork.NearestNeighborPA(ch, rng)
	}
	s.mu.Lock()
	s.nn[layer] = v
	s.mu.Unlock()
	return v[d]
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key: "table1".."table6", "fig4".."fig10".
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run writes the reproduction to w.
	Run func(s *Suite, w io.Writer) error
	// Deps enumerates the leave-one-out attack runs the experiment consumes
	// (see plan.go), which is what lets a sweep over experiments decompose
	// into shardable work units before anything executes. Nil means the
	// experiment needs no attack runs (fig4/7/8) or its runs cannot be
	// enumerated up front (out-of-suite defense variants). Deps only covers
	// the attack-run stage: proximity validation and rendering always run
	// in the merge process, on top of checkpointed folds.
	Deps func() []RunSpec
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: comparison with prior work [5] across split layers", Run: TableI, Deps: depsTableI},
		{ID: "table2", Title: "Table II: RandomTree vs REPTree base classifiers (Imp-7)", Run: TableII, Deps: depsTableII},
		{ID: "table3", Title: "Table III: two-level pruning vs no pruning (Imp-11, layer 8)", Run: TableIII, Deps: depsTableIII},
		{ID: "table4", Title: "Table IV: model configurations, LoC/accuracy trade-offs, runtime", Run: TableIV, Deps: depsTableIV},
		{ID: "table5", Title: "Table V: proximity attack success rates", Run: TableV, Deps: depsTableIV},
		{ID: "table6", Title: "Table VI: proximity attack under design obfuscation", Run: TableVI, Deps: depsNoise},
		{ID: "fig4", Title: "Fig. 4: CDF of matched-pair ManhattanVpin (layer 6)", Run: Fig4},
		{ID: "fig7", Title: "Fig. 7: feature importance rankings across layers", Run: Fig7},
		{ID: "fig8", Title: "Fig. 8: feature distributions by class (layer 6)", Run: Fig8},
		{ID: "fig9", Title: "Fig. 9: LoC-fraction vs accuracy trade-off curves", Run: Fig9, Deps: depsTableIV},
		{ID: "fig10", Title: "Fig. 10: trade-off curves with and without obfuscation noise", Run: Fig10, Deps: depsNoise},
	}
}

// AllWithExtensions returns the paper's experiments followed by the
// repository's extension experiments.
func AllWithExtensions() []Experiment {
	return append(All(), extExperiments()...)
}

// RunExperiment executes one experiment under a span on the suite's
// observability context, so per-experiment wall-clock cost lands in run
// reports. With a nil Suite.Obs it is exactly e.Run(s, w).
func RunExperiment(s *Suite, e Experiment, w io.Writer) error {
	sp := s.Obs.Begin("experiment", obs.F("id", e.ID))
	err := e.Run(s, w)
	sp.End()
	s.Obs.Metrics().Counter("experiments.run").Inc()
	return err
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range AllWithExtensions() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
