package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/attack"
	"repro/internal/ml"
	"repro/internal/priorwork"
)

// tableLayers is the split-layer order the paper's tables use.
var tableLayers = []int{8, 6, 4}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
}

// fmtLoC renders a LoC size, with the paper's dash for unreachable targets.
func fmtLoC(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func fmtFrac(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

func fmtPct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// TableI reproduces Table I: for each split layer and design, the
// prior-work [5] baseline (mean LoC and accuracy) and, for each of the four
// configurations, the LoC needed to match the baseline's accuracy and the
// accuracy achieved at the baseline's LoC.
func TableI(s *Suite, w io.Writer) error {
	configs := attack.StandardConfigs()
	for _, layer := range tableLayers {
		chs, err := s.Challenges(layer)
		if err != nil {
			return err
		}
		prior, err := priorwork.RunLeaveOneOut(chs, 1.0, s.Seed)
		if err != nil {
			return err
		}
		results, err := s.RunAll(configs, layer)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "Table I - split layer %d\n", layer)
		tw := newTab(w)
		fmt.Fprint(tw, "design\t#v-pin\t[5]|LoC|\t[5]Acc\t")
		for _, cfg := range configs {
			fmt.Fprintf(tw, "%s|LoC|@Acc\t", cfg.Name)
		}
		for _, cfg := range configs {
			fmt.Fprintf(tw, "%sAcc@|LoC|\t", cfg.Name)
		}
		fmt.Fprintln(tw)

		type agg struct{ vp, loc5, acc5 float64 }
		var sum agg
		sumLoC := make([]float64, len(configs))
		sumAcc := make([]float64, len(configs))
		locReachable := make([]int, len(configs))
		for d := range chs {
			ev := func(i int) *attack.Evaluation { return results[i].Evals[d] }
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\t", chs[d].Design.Name, len(chs[d].VPins),
				prior[d].MeanLoC, fmtPct(prior[d].Accuracy))
			for i := range configs {
				loc := ev(i).LoCForAccuracy(prior[d].Accuracy)
				fmt.Fprintf(tw, "%s\t", fmtLoC(loc))
				if loc >= 0 {
					sumLoC[i] += loc
					locReachable[i]++
				}
			}
			for i := range configs {
				acc := ev(i).AccuracyAtLoC(prior[d].MeanLoC)
				fmt.Fprintf(tw, "%s\t", fmtPct(acc))
				sumAcc[i] += acc
			}
			fmt.Fprintln(tw)
			sum.vp += float64(len(chs[d].VPins))
			sum.loc5 += prior[d].MeanLoC
			sum.acc5 += prior[d].Accuracy
		}
		n := float64(len(chs))
		fmt.Fprintf(tw, "Avg\t%.0f\t%.1f\t%s\t", sum.vp/n, sum.loc5/n, fmtPct(sum.acc5/n))
		for i := range configs {
			if locReachable[i] > 0 {
				fmt.Fprintf(tw, "%.1f\t", sumLoC[i]/float64(locReachable[i]))
			} else {
				fmt.Fprint(tw, "-\t")
			}
		}
		for i := range configs {
			fmt.Fprintf(tw, "%s\t", fmtPct(sumAcc[i]/n))
		}
		fmt.Fprintln(tw)
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// TableII reproduces Table II: Bagging with RandomTree (the predecessor
// [18]) against Bagging with REPTree (this paper) under Imp-7, reporting
// the threshold-0.5 operating point and runtime for split layers 8 and 6.
func TableII(s *Suite, w io.Writer) error {
	rf := attack.WithBase(attack.Imp7(), ml.RandomTree, 0)
	rf.Name = "Imp-7-RandomTree"
	rep := attack.Imp7()
	for _, layer := range []int{8, 6} {
		rfRes, err := s.Run(rf, layer)
		if err != nil {
			return err
		}
		repRes, err := s.Run(rep, layer)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "Table II - split layer %d (Imp-7)\n", layer)
		tw := newTab(w)
		fmt.Fprintln(tw, "design\tRandomTree|LoC|\tRandomTreeAcc\tREPTree|LoC|\tREPTreeAcc")
		var a, b, c, d float64
		for i := range rfRes.Evals {
			e1, e2 := rfRes.Evals[i], repRes.Evals[i]
			fmt.Fprintf(tw, "%s\t%.1f\t%s\t%.1f\t%s\n", e1.Design,
				e1.MeanLoC(0.5), fmtPct(e1.Accuracy(0.5)),
				e2.MeanLoC(0.5), fmtPct(e2.Accuracy(0.5)))
			a += e1.MeanLoC(0.5)
			b += e1.Accuracy(0.5)
			c += e2.MeanLoC(0.5)
			d += e2.Accuracy(0.5)
		}
		n := float64(len(rfRes.Evals))
		fmt.Fprintf(tw, "Avg\t%.1f\t%s\t%.1f\t%s\n", a/n, fmtPct(b/n), c/n, fmtPct(d/n))
		fmt.Fprintf(tw, "Runtime\t%v\t\t%v\t\n",
			(rfRes.MeanTrainDur() + rfRes.MeanTestDur()).Round(1e6),
			(repRes.MeanTrainDur() + repRes.MeanTestDur()).Round(1e6))
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// TableIII reproduces Table III: two-level pruning against no pruning with
// Imp-11 at split layer 8, at the threshold-0.5 operating point.
func TableIII(s *Suite, w io.Writer) error {
	two := attack.WithTwoLevel(attack.Imp11())
	two.Name = "Imp-11-2L"
	plain := attack.Imp11()
	twoRes, err := s.Run(two, 8)
	if err != nil {
		return err
	}
	plainRes, err := s.Run(plain, 8)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table III - split layer 8 (Imp-11)")
	tw := newTab(w)
	fmt.Fprintln(tw, "design\t2-level|LoC|\t2-levelAcc\tnoPrune|LoC|\tnoPruneAcc")
	var a, b, c, d float64
	for i := range twoRes.Evals {
		e1, e2 := twoRes.Evals[i], plainRes.Evals[i]
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%.2f\t%s\n", e1.Design,
			e1.MeanLoC(0.5), fmtPct(e1.Accuracy(0.5)),
			e2.MeanLoC(0.5), fmtPct(e2.Accuracy(0.5)))
		a += e1.MeanLoC(0.5)
		b += e1.Accuracy(0.5)
		c += e2.MeanLoC(0.5)
		d += e2.Accuracy(0.5)
	}
	n := float64(len(twoRes.Evals))
	fmt.Fprintf(tw, "Avg\t%.2f\t%s\t%.2f\t%s\n", a/n, fmtPct(b/n), c/n, fmtPct(d/n))
	fmt.Fprintf(tw, "Runtime\t%v\t\t%v\t\n",
		(twoRes.MeanTrainDur() + twoRes.MeanTestDur()).Round(1e6),
		(plainRes.MeanTrainDur() + plainRes.MeanTestDur()).Round(1e6))
	tw.Flush()
	fmt.Fprintln(w)
	return nil
}

// tableIVConfigs returns the configurations evaluated at a layer: the four
// standard ones everywhere, plus the "Y" variants at the highest via layer.
func tableIVConfigs(layer int) []attack.Config {
	configs := attack.StandardConfigs()
	if layer == 8 {
		configs = append(configs, attack.StandardConfigsY()...)
	}
	return configs
}

// TableIV reproduces Table IV: for every configuration and split layer, the
// LoC fraction needed for average accuracies {95, 90, 80, 50}%, the average
// accuracy at LoC fractions {0.01, 0.1, 1, 10}%, and the mean runtime.
func TableIV(s *Suite, w io.Writer) error {
	accTargets := []float64{0.95, 0.90, 0.80, 0.50}
	fracs := []float64{0.0001, 0.001, 0.01, 0.10}
	for _, layer := range tableLayers {
		fmt.Fprintf(w, "Table IV - split layer %d\n", layer)
		tw := newTab(w)
		fmt.Fprint(tw, "config\t")
		for _, a := range accTargets {
			fmt.Fprintf(tw, "frac@%.0f%%\t", a*100)
		}
		for _, f := range fracs {
			fmt.Fprintf(tw, "acc@%.2f%%\t", f*100)
		}
		fmt.Fprintln(tw, "runtime")
		configs := tableIVConfigs(layer)
		results, err := s.RunAll(configs, layer)
		if err != nil {
			return err
		}
		for i, cfg := range configs {
			res := results[i]
			fmt.Fprintf(tw, "%s\t", cfg.Name)
			for _, a := range accTargets {
				fmt.Fprintf(tw, "%s\t", fmtFrac(attack.AggregateLoCFracForAccuracy(res.Evals, a, 0.14)))
			}
			for _, f := range fracs {
				fmt.Fprintf(tw, "%s\t", fmtPct(attack.AggregateAccuracyAtLoCFrac(res.Evals, f)))
			}
			fmt.Fprintf(tw, "%v\n", (res.MeanTrainDur() + res.MeanTestDur()).Round(1e6))
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// TableV reproduces Table V: proximity-attack success rates per design for
// the naive nearest-neighbour baseline [9], the regression baseline [5],
// and each configuration with both the fixed-threshold PA of [18] and the
// validation-based PA of this paper.
func TableV(s *Suite, w io.Writer) error {
	for _, layer := range tableLayers {
		chs, err := s.Challenges(layer)
		if err != nil {
			return err
		}
		prior, err := priorwork.RunLeaveOneOut(chs, 1.0, s.Seed)
		if err != nil {
			return err
		}
		configs := tableIVConfigs(layer)
		outcomes, err := s.RunPAAll(configs, layer, 0)
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "Table V - split layer %d\n", layer)
		tw := newTab(w)
		fmt.Fprint(tw, "design\t[9]NN\t[5]PA\t")
		for _, cfg := range configs {
			fmt.Fprintf(tw, "%s-fix\t%s-val\t", cfg.Name, cfg.Name)
		}
		fmt.Fprintln(tw)
		nnSum, p5Sum := 0.0, 0.0
		fixSum := make([]float64, len(configs))
		valSum := make([]float64, len(configs))
		for d := range chs {
			nn := s.nnPA(layer, d)
			fmt.Fprintf(tw, "%s\t%s\t%s\t", chs[d].Design.Name, fmtPct(nn), fmtPct(prior[d].PASuccess))
			nnSum += nn
			p5Sum += prior[d].PASuccess
			for i := range configs {
				o := outcomes[i][d]
				fmt.Fprintf(tw, "%s\t%s\t", fmtPct(o.FixedSuccess), fmtPct(o.Success))
				fixSum[i] += o.FixedSuccess
				valSum[i] += o.Success
			}
			fmt.Fprintln(tw)
		}
		n := float64(len(chs))
		fmt.Fprintf(tw, "Avg\t%s\t%s\t", fmtPct(nnSum/n), fmtPct(p5Sum/n))
		for i := range configs {
			fmt.Fprintf(tw, "%s\t%s\t", fmtPct(fixSum[i]/n), fmtPct(valSum[i]/n))
		}
		fmt.Fprintln(tw)
		fmt.Fprint(tw, "ValTime\t\t\t")
		for i := range configs {
			var dur float64
			for _, o := range outcomes[i] {
				dur += o.ValidationDur.Seconds()
			}
			fmt.Fprintf(tw, "\t%.1fs\t", dur/n)
		}
		fmt.Fprintln(tw)
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}

// TableVI reproduces Table VI: validated proximity-attack success with
// Gaussian y-noise obfuscation at SD = 0, 1 and 2 % of the die height, for
// split layers 6 and 4 with Imp-11.
func TableVI(s *Suite, w io.Writer) error {
	sds := []float64{0, 0.01, 0.02}
	for _, layer := range []int{6, 4} {
		fmt.Fprintf(w, "Table VI - split layer %d (Imp-11)\n", layer)
		tw := newTab(w)
		fmt.Fprintln(tw, "design\tno-noise\tSD=1%\tSD=2%")
		rows := map[string][]float64{}
		var names []string
		for _, sd := range sds {
			outs, err := s.RunPA(attack.Imp11(), layer, sd)
			if err != nil {
				return err
			}
			for _, o := range outs {
				if _, ok := rows[o.Design]; !ok {
					names = append(names, o.Design)
				}
				rows[o.Design] = append(rows[o.Design], o.Success)
			}
		}
		avgs := make([]float64, len(sds))
		for _, name := range names {
			fmt.Fprintf(tw, "%s", name)
			for i, v := range rows[name] {
				fmt.Fprintf(tw, "\t%s", fmtPct(v))
				avgs[i] += v
			}
			fmt.Fprintln(tw)
		}
		fmt.Fprint(tw, "Avg")
		for _, v := range avgs {
			fmt.Fprintf(tw, "\t%s", fmtPct(v/float64(len(names))))
		}
		fmt.Fprintln(tw)
		tw.Flush()
		fmt.Fprintln(w)
	}
	return nil
}
