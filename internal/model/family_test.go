package model

import (
	"encoding/json"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pairs"
)

func TestFamilyRegistry(t *testing.T) {
	// The empty name aliases bagging: every pre-family TrainOptions literal
	// keeps resolving to the paper's learner.
	def, err := FamilyByName("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != FamilyBagging {
		t.Fatalf("default family is %q, want %q", def.Name(), FamilyBagging)
	}
	for _, name := range []string{FamilyBagging, FamilyMLP, FamilyLogistic} {
		f, err := FamilyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Name() != name {
			t.Fatalf("FamilyByName(%q).Name() = %q", name, f.Name())
		}
	}
	if _, err := FamilyByName("no-such-family"); err == nil {
		t.Fatal("unknown family resolved without error")
	} else if !strings.Contains(err.Error(), "no-such-family") {
		t.Errorf("error %q does not name the unknown family", err)
	}
	names := Families()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Families() not sorted/unique: %v", names)
		}
	}
}

// collidingFamily registers under an already-taken name to prove Register
// refuses duplicates.
type collidingFamily struct{ name string }

func (c collidingFamily) Name() string                          { return c.name }
func (collidingFamily) HashOptions(w io.Writer, o TrainOptions) {}
func (collidingFamily) Train(ctx TrainContext, ds *ml.Dataset) (pairs.Scorer, error) {
	return nil, nil
}
func (collidingFamily) TrainSeq(o *obs.Context, opts TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error) {
	return nil, nil
}
func (collidingFamily) Encode(sc pairs.Scorer) ([]byte, error) { return nil, nil }
func (collidingFamily) Decode(data []byte) (pairs.Scorer, error) {
	return nil, nil
}

func TestRegisterRejectsDuplicatesAndEmptyNames(t *testing.T) {
	mustPanic := func(label string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", label)
			}
		}()
		f()
	}
	mustPanic("duplicate registration", func() { Register(collidingFamily{name: FamilyBagging}) })
	mustPanic("empty name", func() { Register(collidingFamily{}) })
}

// TestSpecHashPinned pins exact pre-family Spec.Hash values: the bagging
// family writes the identical canonical bytes the pre-family format wrote,
// so every artifact cached before the family axis existed stays addressable.
// Recompute these constants only for a deliberate, documented cache break.
func TestSpecHashPinned(t *testing.T) {
	imp11 := Spec{
		Opts: TrainOptions{
			Name: "Imp-11", Features: features.Set11(), Neighborhood: true,
		}.WithDefaults(),
		Seed: 42, Fold: 1, SplitLayer: 8,
		Designs:    []string{"sb1", "sb5", "sb10", "sb12"},
		DataDigest: strings.Repeat("0123456789abcdef", 4),
		RadiusNorm: 0.0625,
	}
	twoLevel := imp11
	twoLevel.Opts.TwoLevel = true
	capped := twoLevel
	capped.Opts.MaxLoCCount = 256
	ml9 := Spec{
		Opts: TrainOptions{Name: "ML-9", Features: features.Set9()}.WithDefaults(),
		Seed: 7, Fold: 0, SplitLayer: 6,
		Designs:    []string{"sb1", "sb5"},
		DataDigest: strings.Repeat("feedface", 8),
		RadiusNorm: -1,
	}
	pinned := []struct {
		label string
		spec  Spec
		want  string
	}{
		{"imp11-1L", imp11, "e7eb5d20a4d5f5ab1da952d4c706b0d2071fc50695b69757707126aab5a806a3"},
		{"imp11-2L", twoLevel, "023692e48337bf9d03b938aeedf22c6f7eff4b54412af252d19821ec3dfe6cce"},
		{"imp11-2L-cap", capped, "f643a72eaa3f4cde0b7f8fe4e8d34508271109d711f6760d777742341aeb8eb9"},
		{"ml9", ml9, "71ee2ad53119e214afeef3dc7b4422a9a40b81a84107e269c1d7924e93abde60"},
	}
	for _, tc := range pinned {
		if got := tc.spec.Hash(); got != tc.want {
			t.Errorf("%s: Hash = %s, want pinned %s", tc.label, got, tc.want)
		}
	}
}

func TestSpecHashFamilyAxis(t *testing.T) {
	base := testSpec(t, imp11Opts())
	spelled := base
	spelled.Opts.Family = FamilyBagging
	spelled.Opts = spelled.Opts.WithDefaults()
	if spelled.Hash() != base.Hash() {
		t.Error("explicit bagging spelling changed the spec hash")
	}
	mlp := base
	mlp.Opts.Family = FamilyMLP
	mlp.Opts = mlp.Opts.WithDefaults()
	if mlp.Hash() == base.Hash() {
		t.Error("mlp family did not change the spec hash")
	}
	logistic := base
	logistic.Opts.Family = FamilyLogistic
	if logistic.Hash() == base.Hash() || logistic.Hash() == mlp.Hash() {
		t.Error("logistic family hash must be distinct")
	}
	wide := mlp
	wide.Opts.MLPHidden = 32
	if wide.Hash() == mlp.Hash() {
		t.Error("MLPHidden did not change the mlp spec hash")
	}
}

func mlpOpts() TrainOptions {
	return TrainOptions{
		Name: "DL-MLP-test", Features: features.Set15(), Neighborhood: true,
		Family: FamilyMLP, MLPEpochs: 4,
	}
}

// TestMLPArtifactRoundTrip: the MLP family's artifacts carry the family
// kind tag, round-trip the container byte-exactly, score identically after
// decoding, and reject corruption — the same contract the bagging artifacts
// have always had.
func TestMLPArtifactRoundTrip(t *testing.T) {
	spec := testSpec(t, mlpOpts())
	art, stats, err := Train(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 {
		t.Fatalf("train stats %+v report no work", stats)
	}
	if art.Meta.Family != FamilyMLP {
		t.Fatalf("artifact family %q, want %q", art.Meta.Family, FamilyMLP)
	}
	if _, ok := art.Scorer().(*ml.MLP); !ok {
		t.Fatalf("trained scorer is %T, want *ml.MLP", art.Scorer())
	}
	blob, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalArtifact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.Family != FamilyMLP {
		t.Fatalf("decoded family %q, want %q", back.Meta.Family, FamilyMLP)
	}
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("mlp artifact round trip is not byte-exact")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		row := make([]float64, features.NumAll)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if got, want := back.Scorer().Prob(row), art.Scorer().Prob(row); got != want {
			t.Fatalf("decoded Prob = %v, original = %v", got, want)
		}
	}
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
		"payload flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"checksum flip": func(b []byte) []byte { b[len(b)-2] ^= 1; return b },
	} {
		if _, err := UnmarshalArtifact(corrupt(append([]byte(nil), blob...))); err == nil {
			t.Errorf("%s: corrupted mlp artifact decoded without error", name)
		}
	}
}

// TestMLPStoreCaching: MLP specs cache exactly like bagging specs — second
// train is a memory hit, and a fresh store loads the artifact from disk
// bit-identically. This is the behavior the old Learner closure could never
// have (it bypassed the Store entirely).
func TestMLPStoreCaching(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	dir := t.TempDir()
	spec := testSpec(t, mlpOpts())
	spec.Obs = o

	store := NewStore(0, dir)
	a, stats, err := store.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Level1 == 0 {
		t.Fatal("first GetOrTrain reported no training work")
	}
	b, stats2, err := store.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("cache hit returned a different artifact pointer")
	}
	if stats2 != (TrainStats{}) {
		t.Fatalf("cache hit reported training work: %+v", stats2)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.model")); err != nil {
		t.Fatal(err)
	}
	second := NewStore(0, dir)
	c, stats3, err := second.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats3 != (TrainStats{}) {
		t.Fatalf("disk hit reported training work: %+v", stats3)
	}
	wa, _ := a.MarshalBinary()
	wc, _ := c.MarshalBinary()
	if string(wa) != string(wc) {
		t.Fatal("disk-loaded mlp artifact not bit-identical")
	}
}

// TestBaggingMetaOmitsFamily pins the artifact-byte compatibility shim: the
// bagging family is the zero value and must be absent from the serialized
// meta JSON, keeping every committed artifact_bytes baseline exact.
func TestBaggingMetaOmitsFamily(t *testing.T) {
	art, _, err := Train(testSpec(t, imp11Opts()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(art.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "family") {
		t.Fatalf("bagging artifact meta %s mentions family; bytes no longer match the pre-family format", raw)
	}
}
