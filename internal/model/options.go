// Package model owns the attack's train stage: it turns a training Spec —
// the held-out fold's training designs, the attack configuration's training
// options, and the seed — into an Artifact holding the compiled flat-arena
// ensembles plus metadata, with a canonical content hash per Spec, a
// versioned binary codec for artifacts, and a Store that makes repeated
// folds and sweeps cache hits (in-memory LRU plus an optional on-disk
// directory). The attack engine consumes Artifacts through the pairs
// scoring backends; training here is bit-identical to training in-process
// at any worker count because every random stream is derived from
// (Seed, unit, Fold, ...) exactly as the engine always did.
package model

import (
	"runtime"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/pairs"
)

// TrainOptions is the training-relevant slice of an attack configuration:
// everything that influences the trained model's bits, plus the unhashed
// presentation fields (Name) and execution fields (ScalarScoring,
// ShardVpins). attack.Config projects into this struct, so the options live
// in one place instead of being re-derived by every training stage.
type TrainOptions struct {
	// Name labels the configuration in logs and artifact metadata. It does
	// not influence training and is excluded from spec hashes.
	Name string
	// Features are the feature indices trees may split on.
	Features []int
	// Neighborhood enables the Imp scalability improvement (§III-D).
	Neighborhood bool
	// NeighborQuantile is the CDF cut defining the neighborhood radius;
	// zero selects the paper's 0.90.
	NeighborQuantile float64
	// LimitDiffVpinY enables the "Y" refinement (§III-G).
	LimitDiffVpinY bool
	// TwoLevel enables two-level pruning (§III-E): the artifact carries a
	// second ensemble trained on level-1 survivors.
	TwoLevel bool
	// BaseKind is the Bagging base classifier.
	BaseKind ml.TreeKind
	// NumTrees is the ensemble size; zero selects the Weka default for the
	// base kind.
	NumTrees int
	// MaxLoCFrac bounds the per-v-pin candidate lists the two-level stage
	// draws its negatives from. It only influences training under TwoLevel
	// and is hashed only then, so one- and two-level configurations share
	// level-1 artifacts.
	MaxLoCFrac float64
	// MaxLoCCount, when positive, additionally caps those lists at an
	// absolute length (the industrial-scale memory bound). Like MaxLoCFrac
	// it influences training only under TwoLevel and is hashed only then —
	// and only when set, so every pre-existing spec hash is unchanged.
	MaxLoCCount int
	// TrainCap bounds the number of training samples (0 = unlimited).
	TrainCap int
	// Family selects the registered learner family ("" = FamilyBagging,
	// the paper's ensemble). Every family hashes, caches, serializes, and
	// checkpoints identically; see Family and the registry in family.go.
	Family string
	// MLPHidden, MLPEpochs, and MLPRate configure the mlp family's network
	// (zero selects its defaults, resolved by WithDefaults). Other families
	// ignore and never hash them.
	MLPHidden int
	MLPEpochs int
	MLPRate   float64
	// ScalarScoring forces the per-pair scalar oracle when the level-2
	// stage scores training designs with the level-1 model. Results are
	// bit-identical either way (the documented Ensemble/Bagging contract),
	// so it is excluded from spec hashes.
	ScalarScoring bool
	// ShardVpins is the spatial-region size of the streamed candidate
	// scoring the level-2 stage runs over the training designs (0 = auto).
	// Results are bit-identical for every value, so like ScalarScoring it
	// is an execution knob excluded from spec hashes.
	ShardVpins int
}

// WithDefaults resolves the zero-value conveniences exactly as
// attack.Config always has.
func (o TrainOptions) WithDefaults() TrainOptions {
	if o.NeighborQuantile <= 0 || o.NeighborQuantile > 1 {
		o.NeighborQuantile = 0.90
	}
	if o.NumTrees <= 0 {
		if o.BaseKind == ml.RandomTree {
			o.NumTrees = ml.DefaultForestSize
		} else {
			o.NumTrees = ml.DefaultBaggingSize
		}
	}
	if o.MaxLoCFrac <= 0 || o.MaxLoCFrac > 1 {
		o.MaxLoCFrac = 0.15
	}
	if len(o.Features) == 0 {
		o.Features = features.Set9()
	}
	// The zero value and the explicit name mean the same family; normalise
	// to "" so default configurations hash (and serialize their Meta)
	// exactly as they did before the family axis existed.
	if o.Family == FamilyBagging {
		o.Family = ""
	}
	if o.Family == FamilyMLP {
		if o.MLPHidden <= 0 {
			o.MLPHidden = 16
		}
		if o.MLPEpochs <= 0 {
			o.MLPEpochs = 30
		}
		if o.MLPRate <= 0 {
			o.MLPRate = 0.05
		}
	}
	return o
}

// TreeOptions returns the base-classifier options for ensemble training.
func (o TrainOptions) TreeOptions() ml.TreeOptions {
	opts := ml.TreeOptions{Kind: o.BaseKind, Features: o.Features}
	if o.BaseKind == ml.RandomTree {
		opts.MinLeaf = 1 // Weka RandomTree default
	}
	return opts
}

// Filter builds the pair-admission filter of these options for one
// instance: the neighborhood radius applies only under the Imp improvement,
// the DiffVpinY limit only under the "Y" refinement.
func (o TrainOptions) Filter(inst *pairs.Instance, radiusNorm float64) pairs.Filter {
	if !o.Neighborhood {
		radiusNorm = -1
	}
	return inst.Filter(radiusNorm, o.LimitDiffVpinY)
}

// FeatureNames maps the configured feature indices to their display names
// (the paper's for the base block, the routing-hint names past it).
func (o TrainOptions) FeatureNames() []string {
	out := make([]string, len(o.Features))
	for i, f := range o.Features {
		out[i] = features.Name(f)
	}
	return out
}

// workerCount resolves a worker bound for a pool of n units: workers when
// positive (GOMAXPROCS otherwise), capped at n.
func workerCount(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}
