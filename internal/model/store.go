package model

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// DefaultStoreCapacity bounds the in-memory artifact cache when NewStore is
// given a non-positive capacity. A full experiments sweep holds one level-1
// and one level-2 artifact per (config, layer, fold); 256 covers the
// paper's tables with room to spare at a few MB per artifact.
const DefaultStoreCapacity = 256

// Store caches trained artifacts by spec content hash: an in-memory LRU
// always, plus an optional on-disk directory so artifacts survive the
// process and can be shared between runs. A nil *Store is valid and simply
// trains every request. Lookups record hit/miss outcomes on the requesting
// spec's obs context under the "model.artifacts" cache counters (plus
// "model.artifacts.disk.hit" for loads served from the directory).
//
// Concurrent GetOrTrain calls for the same hash are coalesced: one caller
// trains, the rest wait and share the artifact, so a sweep trains each
// fold exactly once no matter how its workers race.
type Store struct {
	mu       sync.Mutex
	capacity int
	mem      map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight
	dir      string
}

type storeEntry struct {
	hash string
	art  *Artifact
}

// flight is one in-progress training another caller may wait on.
type flight struct {
	done chan struct{}
	art  *Artifact
	err  error
}

// NewStore builds a store bounded to capacity in-memory artifacts
// (non-positive selects DefaultStoreCapacity). A non-empty dir enables the
// on-disk layer: artifacts are written as <hash>.model under dir, which is
// created if missing.
func NewStore(capacity int, dir string) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{
		capacity: capacity,
		mem:      make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
		dir:      dir,
	}
}

// GetOrTrain returns the artifact for spec, training it only when no
// cached copy exists. The returned stats describe only the training work
// this call actually performed: a full cache hit reports zeros, and a
// two-level spec whose level-1 model was cached reports only the level-2
// stage. Results are bit-identical to Train(spec) — cached artifacts came
// from the same deterministic training streams.
func (s *Store) GetOrTrain(spec Spec) (*Artifact, TrainStats, error) {
	if s == nil {
		return Train(spec)
	}
	l1Spec := spec.Level1()
	l1, l1Stats, err := s.getOrDo(spec.Obs, l1Spec.Hash(), func() (*Artifact, TrainStats, error) {
		return trainLevel1(l1Spec)
	})
	if err != nil || !spec.Opts.TwoLevel {
		return l1, l1Stats, err
	}
	full, l2Stats, err := s.getOrDo(spec.Obs, spec.Hash(), func() (*Artifact, TrainStats, error) {
		return TrainLevel2(spec, l1)
	})
	l1Stats.Level2 = l2Stats.Level2
	l1Stats.Level2Samples = l2Stats.Level2Samples
	return full, l1Stats, err
}

// getOrDo returns the artifact cached under hash, or runs train once —
// coalescing concurrent callers — and caches its result.
func (s *Store) getOrDo(o *obs.Context, hash string,
	train func() (*Artifact, TrainStats, error)) (*Artifact, TrainStats, error) {

	cache := o.Metrics().Cache("model.artifacts")
	s.mu.Lock()
	if el, ok := s.mem[hash]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		cache.Lookup(true)
		return el.Value.(*storeEntry).art, TrainStats{}, nil
	}
	if fl, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, TrainStats{}, fl.err
		}
		// The winner's training satisfied this lookup too: a hit, and no
		// work performed by this call.
		cache.Lookup(true)
		return fl.art, TrainStats{}, nil
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[hash] = fl
	s.mu.Unlock()

	if art, ok := s.loadDisk(hash); ok {
		cache.Lookup(true)
		o.Metrics().Counter("model.artifacts.disk.hit").Inc()
		s.finish(hash, fl, art, nil)
		return art, TrainStats{}, nil
	}

	cache.Lookup(false)
	art, stats, err := train()
	s.finish(hash, fl, art, err)
	if err == nil {
		s.writeDisk(hash, art)
	}
	return art, stats, err
}

// finish publishes a flight's outcome and inserts successful artifacts
// into the LRU.
func (s *Store) finish(hash string, fl *flight, art *Artifact, err error) {
	s.mu.Lock()
	fl.art, fl.err = art, err
	delete(s.inflight, hash)
	if err == nil {
		el := s.order.PushFront(&storeEntry{hash: hash, art: art})
		s.mem[hash] = el
		for s.order.Len() > s.capacity {
			old := s.order.Back()
			s.order.Remove(old)
			delete(s.mem, old.Value.(*storeEntry).hash)
		}
	}
	s.mu.Unlock()
	close(fl.done)
}

// diskPath is the on-disk location of an artifact, or "" without a dir.
func (s *Store) diskPath(hash string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, hash+".model")
}

// loadDisk probes the on-disk layer. A decodable artifact whose metadata
// repeats the expected spec hash is served; anything else (missing,
// corrupted, renamed) falls through to training.
func (s *Store) loadDisk(hash string) (*Artifact, bool) {
	path := s.diskPath(hash)
	if path == "" {
		return nil, false
	}
	art, err := LoadFile(path)
	if err != nil || art.Meta.SpecHash != hash {
		return nil, false
	}
	return art, true
}

// writeDisk persists a freshly trained artifact, best-effort: a read-only
// or missing cache directory must not fail the training that produced the
// artifact. Every family serializes through its registered codec, so no
// artifact is exempt.
func (s *Store) writeDisk(hash string, art *Artifact) {
	path := s.diskPath(hash)
	if path == "" {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	_ = art.WriteFile(path)
}

// Len reports the number of artifacts currently held in memory.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Dir returns the on-disk cache directory ("" when memory-only).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}
