package model

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/rng"
)

// TrainStats is the wall-clock and size breakdown of the training work one
// Train (or Store.GetOrTrain) call actually performed. A full cache hit
// reports zeros: the stats describe work done, not work represented.
type TrainStats struct {
	// Sampling is training-set generation time, Level1 and Level2 the
	// ensemble training times (Level2 zero without two-level pruning).
	Sampling, Level1, Level2 time.Duration
	// Samples and Level2Samples count the level-1 and level-2 training rows.
	Samples, Level2Samples int
}

// Train executes the spec's full train stage — sampling, level-1 ensemble
// training, and (under TwoLevel) the two-level-pruning stage — and returns
// the artifact. Training is bit-identical at any spec.Workers count: every
// random stream is derived from (Seed, unit, Fold, ...). Progress spans
// ("sampling", "train-level1", "train-level2") nest under spec.Span when
// spec.Obs is set.
func Train(spec Spec) (*Artifact, TrainStats, error) {
	l1, stats, err := trainLevel1(spec.Level1())
	if err != nil || !spec.Opts.TwoLevel {
		return l1, stats, err
	}
	full, l2stats, err := TrainLevel2(spec, l1)
	stats.Level2 = l2stats.Level2
	stats.Level2Samples = l2stats.Level2Samples
	if err != nil {
		return nil, stats, err
	}
	return full, stats, nil
}

// trainLevel1 runs sampling plus level-1 ensemble training for a spec that
// has already been normalised to level 1 (see Spec.Level1).
func trainLevel1(spec Spec) (*Artifact, TrainStats, error) {
	var stats TrainStats
	o := spec.Obs

	t0 := time.Now()
	ssp := o.BeginUnder(spec.Span, "sampling")
	ds := TrainingSet(o, spec.Opts, spec.Insts, spec.RadiusNorm, nil,
		rng.Derive(spec.Seed, UnitSampling, int64(spec.Fold)))
	stats.Sampling = time.Since(t0)
	stats.Samples = ds.Len()
	ssp.SetAttr("samples", ds.Len())
	ssp.End()

	l1sp := o.BeginUnder(spec.Span, "train-level1",
		obs.F("samples", ds.Len()), obs.F("trees", spec.Opts.NumTrees))
	t1 := time.Now()
	sc, err := trainUnit(spec, ds, UnitLevel1)
	stats.Level1 = time.Since(t1)
	l1sp.End()
	if err != nil {
		return nil, stats, err
	}

	art := &Artifact{
		Meta: Meta{
			SpecHash:     spec.Hash(),
			Config:       spec.Opts.Name,
			Family:       spec.Opts.Family,
			Level:        1,
			SplitLayer:   spec.SplitLayer,
			Designs:      spec.Designs,
			Seed:         spec.Seed,
			Fold:         spec.Fold,
			RadiusNorm:   spec.RadiusNorm,
			Samples:      ds.Len(),
			FeatureNames: spec.Opts.FeatureNames(),
			Version:      obs.Version(),
		},
		l1: sc,
	}
	if e, ok := sc.(*ml.Ensemble); ok {
		art.Meta.Trees = e.Trees()
	}
	return art, stats, nil
}

// TrainLevel2 runs the two-level-pruning stage (§III-E) of a TwoLevel spec
// on top of an already-trained level-1 artifact and returns the full
// two-level artifact. The returned stats cover only the level-2 work, so a
// Store can account a cached level-1 model as zero additional training.
func TrainLevel2(spec Spec, l1 *Artifact) (*Artifact, TrainStats, error) {
	var stats TrainStats
	o := spec.Obs
	l2sp := o.BeginUnder(spec.Span, "train-level2")
	t0 := time.Now()
	sc, nSamples, err := trainLevel2Scorer(spec, l1.l1)
	stats.Level2 = time.Since(t0)
	stats.Level2Samples = nSamples
	l2sp.End()
	if err != nil {
		return nil, stats, err
	}
	art := &Artifact{Meta: l1.Meta, l1: l1.l1, l2: sc}
	art.Meta.SpecHash = spec.Hash()
	art.Meta.Level = 2
	art.Meta.Level2Samples = nSamples
	if e, ok := sc.(*ml.Ensemble); ok {
		art.Meta.Level2Trees = e.Trees()
	}
	return art, stats, nil
}

// trainUnit trains the spec's classifier through its registered Family,
// handing it the stream coordinates (Seed, unit, Fold). The bagging family
// trains tree t on stream (Seed, unit, Fold, t) and compiles into its
// flat-arena form, exactly as this function always did; other families draw
// their own streams from the same coordinates, so every family's artifact
// is bit-identical at any worker count.
func trainUnit(spec Spec, ds *ml.Dataset, unit int64) (pairs.Scorer, error) {
	fam, err := FamilyByName(spec.Opts.Family)
	if err != nil {
		return nil, err
	}
	return fam.Train(TrainContext{
		Obs:     spec.Obs,
		Opts:    spec.Opts,
		Seed:    spec.Seed,
		Unit:    unit,
		Fold:    spec.Fold,
		Workers: spec.Workers,
	}, ds)
}

// level2Sample is one two-level-pruning training row: a feature vector and
// its class.
type level2Sample struct {
	row []float64
	pos bool
}

// trainLevel2Scorer applies the level-1 model to the training designs
// themselves; every v-pin's level-1 LoC (threshold 0.5) supplies one
// "high-quality" negative — a candidate the level-1 model could not reject
// — and the level-2 model is trained on these negatives plus all
// positives. The per-design scoring fans out across spec.Workers
// goroutines; samples are assembled in design order, so the level-2
// training set (and hence the model) is identical at any worker count.
func trainLevel2Scorer(spec Spec, l1 pairs.Scorer) (pairs.Scorer, int, error) {
	trainInsts := spec.Insts
	perInst := make([][]level2Sample, len(trainInsts))
	// Divide the worker budget between the per-design fan-out here and the
	// candidate-scoring fan-out inside each level2Samples call: the nested
	// pools would otherwise multiply to up to Workers² goroutines competing
	// for Workers cores.
	total := workerCount(spec.Workers, 1<<30)
	outer := total
	if outer > len(trainInsts) {
		outer = len(trainInsts)
	}
	inner := total / outer
	if inner < 1 {
		inner = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < outer; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(trainInsts) {
					return
				}
				perInst[i] = level2Samples(spec, trainInsts[i], l1, inner, i)
			}
		}()
	}
	wg.Wait()
	ds := &ml.Dataset{}
	for _, samples := range perInst {
		for _, s := range samples {
			ds.Add(s.row, s.pos)
		}
	}
	if ds.Len() == 0 {
		return nil, 0, fmt.Errorf("model: two-level pruning produced no training samples")
	}
	sc, err := trainUnit(spec, ds, UnitLevel2Model)
	return sc, ds.Len(), err
}

// level2Samples scores one training design with the level-1 model and
// collects its two-level training rows: every admitted true pair as a
// positive, plus per v-pin one negative sampled uniformly from the v-pin's
// level-1 LoC (candidates scored at or above 0.5, excluding the truth).
// The negative draws consume the stream (Seed, UnitLevel2Neg, Fold,
// instIdx) in v-pin order, so the samples are independent of how sibling
// designs are scheduled.
func level2Samples(spec Spec, inst *pairs.Instance, l1 pairs.Scorer, workers, instIdx int) []level2Sample {
	filter := spec.Opts.Filter(inst, spec.RadiusNorm)
	lists := candidateLists(spec, inst, l1, workers)
	negRng := rng.Derive(spec.Seed, UnitLevel2Neg, int64(spec.Fold), int64(instIdx))
	width := features.Width(spec.Opts.Features)
	var out []level2Sample
	for a := 0; a < inst.N(); a++ {
		m := inst.Match(a)
		if m >= 0 && filter.Admits(a, m) {
			row := make([]float64, width)
			inst.Ex.Pair(a, m, row)
			out = append(out, level2Sample{row: row, pos: true})
		}
		// Collect the level-1 LoC of a (p >= 0.5, excluding the truth)
		// and sample one high-quality negative from it.
		cands := lists[a]
		loc := cands[:0:0]
		for _, c := range cands {
			if c.P < 0.5 {
				break // sorted descending
			}
			if int(c.Other) != m {
				loc = append(loc, c)
			}
		}
		if len(loc) == 0 {
			continue
		}
		pick := loc[negRng.Intn(len(loc))]
		row := make([]float64, width)
		inst.Ex.Pair(a, int(pick.Other), row)
		out = append(out, level2Sample{row: row, pos: false})
	}
	return out
}

// candidateLists scores every admitted candidate pair of inst with the
// level-1 model and returns the per-v-pin retained lists, exactly as the
// attack engine's scoring stage produces them: streamed one spatial region
// at a time through pairs.ScoreLists — the same engine, the same bounds
// (fractional MaxLoCFrac tightened by the absolute MaxLoCCount), so the
// lists are bit-identical to the engine's at any worker count and shard
// size, and training memory stays bounded on industrial-tier designs.
func candidateLists(spec Spec, inst *pairs.Instance, l1 pairs.Scorer, workers int) [][]pairs.Candidate {
	filter := spec.Opts.Filter(inst, spec.RadiusNorm)
	capPer := pairs.LoCCap(inst.N(), spec.Opts.MaxLoCFrac)
	if c := spec.Opts.MaxLoCCount; c > 0 && c < capPer {
		capPer = c
	}
	lists, _ := pairs.ScoreLists(filter, pairs.ResolveBackendObs(spec.Obs, l1, spec.Opts.ScalarScoring), pairs.StreamOptions{
		Cap:        capPer,
		ShardVpins: spec.Opts.ShardVpins,
		Workers:    workers,
		Stride:     features.Width(spec.Opts.Features),
	})
	return lists
}
