package model

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/features"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/split"
)

// Shared fixture: one small suite's instances at split layer 8, built once
// per test binary.
var (
	fixOnce  sync.Once
	fixErr   error
	fixInsts []*pairs.Instance
)

func instances(t testing.TB) []*pairs.Instance {
	t.Helper()
	fixOnce.Do(func() {
		designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: 0.2, Seed: 5})
		if err != nil {
			fixErr = err
			return
		}
		chs := make([]*split.Challenge, len(designs))
		for i, d := range designs {
			if chs[i], fixErr = split.NewChallenge(d, 8); fixErr != nil {
				return
			}
		}
		fixInsts = pairs.NewAll(chs, 0)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixInsts
}

// trainInsts is the leave-one-out training fold for target 0.
func trainInsts(t testing.TB) []*pairs.Instance {
	insts := instances(t)
	return insts[1:]
}

func imp11Opts() TrainOptions {
	return TrainOptions{Name: "Imp-11-test", Features: features.Set11(), Neighborhood: true}
}

func testSpec(t testing.TB, opts TrainOptions) Spec {
	insts := trainInsts(t)
	radius := pairs.NeighborRadiusNorm(insts, 0.9)
	if !opts.Neighborhood {
		radius = -1
	}
	return NewSpec(opts, 42, 0, insts, radius)
}

func TestSpecHashStable(t *testing.T) {
	a := testSpec(t, imp11Opts()).Hash()
	b := testSpec(t, imp11Opts()).Hash()
	if a != b {
		t.Fatalf("hash not stable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash %q is not a sha256 hex string", a)
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	base := testSpec(t, imp11Opts())
	mutations := map[string]func(*Spec){
		"seed":       func(s *Spec) { s.Seed++ },
		"fold":       func(s *Spec) { s.Fold++ },
		"layer":      func(s *Spec) { s.SplitLayer++ },
		"designs":    func(s *Spec) { s.Designs = append([]string{"extra"}, s.Designs...) },
		"data":       func(s *Spec) { s.DataDigest = "0" + s.DataDigest[1:] },
		"radius":     func(s *Spec) { s.RadiusNorm *= 1.0000001 },
		"features":   func(s *Spec) { s.Opts.Features = features.Set9() },
		"quantile":   func(s *Spec) { s.Opts.NeighborQuantile = 0.85 },
		"ylimit":     func(s *Spec) { s.Opts.LimitDiffVpinY = true },
		"trees":      func(s *Spec) { s.Opts.NumTrees++ },
		"traincap":   func(s *Spec) { s.Opts.TrainCap = 100 },
		"two-level":  func(s *Spec) { s.Opts.TwoLevel = true },
		"neighbhood": func(s *Spec) { s.Opts.Neighborhood = false },
	}
	for name, mutate := range mutations {
		s := base
		mutate(&s)
		if s.Hash() == base.Hash() {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
	// Presentation and execution fields must NOT change the hash: scoring
	// results are identical regardless, so they would only fragment the cache.
	for name, mutate := range map[string]func(*Spec){
		"name":    func(s *Spec) { s.Opts.Name = "renamed" },
		"scalar":  func(s *Spec) { s.Opts.ScalarScoring = true },
		"workers": func(s *Spec) { s.Workers = 7 },
	} {
		s := base
		mutate(&s)
		if s.Hash() != base.Hash() {
			t.Errorf("mutating %s changed the hash", name)
		}
	}
}

// TestSpecLevel1Sharing pins the cache-sharing property: the level-1 stage
// of a two-level spec hashes identically to the plain one-level spec, so
// Imp-11 and Imp-11-2L share one level-1 artifact.
func TestSpecLevel1Sharing(t *testing.T) {
	plain := testSpec(t, imp11Opts())
	two := plain
	two.Opts.TwoLevel = true
	two.Opts.MaxLoCFrac = 0.15
	if two.Hash() == plain.Hash() {
		t.Fatal("two-level spec hashes like its one-level variant")
	}
	if two.Level1().Hash() != plain.Hash() {
		t.Fatal("two-level spec's level-1 stage does not share the one-level hash")
	}
	// MaxLoCFrac influences only the two-level stage.
	narrower := plain
	narrower.Opts.MaxLoCFrac = 0.05
	if narrower.Hash() != plain.Hash() {
		t.Error("MaxLoCFrac changed a one-level hash")
	}
	narrower.Opts.TwoLevel = true
	if narrower.Hash() == two.Hash() {
		t.Error("MaxLoCFrac did not change a two-level hash")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	spec := testSpec(t, imp11Opts())
	art, stats, err := Train(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 || stats.Level1 == 0 {
		t.Fatalf("train stats %+v report no work", stats)
	}
	if art.Meta.SpecHash != spec.Hash() || art.Meta.Level != 1 || art.Meta.Trees == 0 {
		t.Fatalf("artifact meta %+v does not describe the spec", art.Meta)
	}

	blob, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalArtifact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Meta, art.Meta) {
		t.Fatalf("decoded meta %+v, want %+v", back.Meta, art.Meta)
	}
	// Bit-equal scorers: the decoded arena re-encodes to the same bytes,
	// and Prob agrees on random feature rows.
	blob2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("artifact round trip is not byte-exact")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		row := make([]float64, features.NumFeatures)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if got, want := back.Scorer().Prob(row), art.Scorer().Prob(row); got != want {
			t.Fatalf("decoded Prob = %v, original = %v", got, want)
		}
	}
}

func TestTwoLevelArtifactRoundTrip(t *testing.T) {
	opts := imp11Opts()
	opts.TwoLevel = true
	spec := testSpec(t, opts)
	art, stats, err := Train(spec)
	if err != nil {
		t.Fatal(err)
	}
	if art.Meta.Level != 2 || art.Meta.Level2Trees == 0 || stats.Level2Samples == 0 {
		t.Fatalf("two-level artifact meta %+v / stats %+v", art.Meta, stats)
	}
	blob, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalArtifact(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Scorer().(*pairs.TwoLevel); !ok {
		t.Fatalf("decoded scorer is %T, want *pairs.TwoLevel", back.Scorer())
	}
	e1a, e2a, _ := art.Ensembles()
	e1b, e2b, _ := back.Ensembles()
	for name, pair := range map[string][2]interface{ MarshalBinary() ([]byte, error) }{
		"level-1": {e1a, e1b}, "level-2": {e2a, e2b},
	} {
		wa, _ := pair[0].MarshalBinary()
		wb, _ := pair[1].MarshalBinary()
		if string(wa) != string(wb) {
			t.Fatalf("%s ensemble not bit-identical after round trip", name)
		}
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	art, _, err := Train(testSpec(t, imp11Opts()))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := art.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":         func(b []byte) []byte { return nil },
		"truncated":     func(b []byte) []byte { return b[:len(b)/2] },
		"bad magic":     func(b []byte) []byte { b[0] = 'x'; return b },
		"bad version":   func(b []byte) []byte { b[8] = 0xEE; return b },
		"payload flip":  func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"checksum flip": func(b []byte) []byte { b[len(b)-2] ^= 1; return b },
	}
	for name, corrupt := range cases {
		if _, err := UnmarshalArtifact(corrupt(append([]byte(nil), blob...))); err == nil {
			t.Errorf("%s: corrupted artifact decoded without error", name)
		}
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	art, _, err := Train(testSpec(t, imp11Opts()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a.model")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta.SpecHash != art.Meta.SpecHash {
		t.Fatalf("loaded spec hash %s, want %s", back.Meta.SpecHash, art.Meta.SpecHash)
	}
	// A truncated file must be rejected, not half-loaded.
	blob, _ := os.ReadFile(path)
	if err := os.WriteFile(path, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated artifact file loaded without error")
	}
}

func TestStoreMemoryHits(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	spec := testSpec(t, imp11Opts())
	spec.Obs = o
	store := NewStore(0, "")

	a, stats, err := store.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Level1 == 0 {
		t.Fatal("first GetOrTrain reported no training work")
	}
	b, stats2, err := store.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("cache hit returned a different artifact pointer")
	}
	if stats2 != (TrainStats{}) {
		t.Fatalf("cache hit reported training work: %+v", stats2)
	}
	c := o.Metrics().Cache("model.artifacts")
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d artifacts, want 1", store.Len())
	}
}

// TestStoreLevel1SharedWithTwoLevel pins the "train each stage exactly
// once" property across configurations: training the plain spec first means
// the two-level spec reuses the cached level-1 model and trains only its
// level-2 stage.
func TestStoreLevel1SharedWithTwoLevel(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	store := NewStore(0, "")
	plain := testSpec(t, imp11Opts())
	plain.Obs = o
	if _, _, err := store.GetOrTrain(plain); err != nil {
		t.Fatal(err)
	}

	two := plain
	two.Opts.TwoLevel = true
	_, stats, err := store.GetOrTrain(two)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sampling != 0 || stats.Level1 != 0 {
		t.Fatalf("two-level run re-ran the cached level-1 stage: %+v", stats)
	}
	if stats.Level2 == 0 || stats.Level2Samples == 0 {
		t.Fatalf("two-level run did not train its level-2 stage: %+v", stats)
	}
	c := o.Metrics().Cache("model.artifacts")
	// plain: 1 miss. two: level-1 hit + level-2 miss.
	if c.Hits() != 1 || c.Misses() != 2 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/2", c.Hits(), c.Misses())
	}
}

func TestStoreDiskLayer(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	dir := t.TempDir()
	spec := testSpec(t, imp11Opts())
	spec.Obs = o

	first := NewStore(0, dir)
	a, _, err := first.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := filepath.Join(dir, spec.Hash()+".model")
	if _, err := os.Stat(onDisk); err != nil {
		t.Fatalf("artifact not persisted to %s: %v", onDisk, err)
	}

	// A fresh process (fresh Store, same dir) loads instead of training.
	second := NewStore(0, dir)
	b, stats, err := second.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats != (TrainStats{}) {
		t.Fatalf("disk hit reported training work: %+v", stats)
	}
	if got := o.Metrics().Counter("model.artifacts.disk.hit").Value(); got != 1 {
		t.Fatalf("disk-hit counter = %d, want 1", got)
	}
	wa, _ := a.MarshalBinary()
	wb, _ := b.MarshalBinary()
	if string(wa) != string(wb) {
		t.Fatal("disk-loaded artifact not bit-identical to the trained one")
	}

	// Corrupt the on-disk copy: the store must fall back to training, not
	// serve damaged bits.
	blob, _ := os.ReadFile(onDisk)
	blob[len(blob)/2] ^= 1
	if err := os.WriteFile(onDisk, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	third := NewStore(0, dir)
	c, stats3, err := third.GetOrTrain(spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Level1 == 0 {
		t.Fatal("store served a corrupted disk artifact instead of retraining")
	}
	wc, _ := c.MarshalBinary()
	if string(wc) != string(wa) {
		t.Fatal("retrained artifact not bit-identical")
	}
}

func TestStoreCoalescesConcurrentTraining(t *testing.T) {
	o := obs.New(obs.Options{Command: "test"})
	spec := testSpec(t, imp11Opts())
	spec.Obs = o
	store := NewStore(0, "")

	const callers = 8
	arts := make([]*Artifact, callers)
	trained := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			art, stats, err := store.GetOrTrain(spec)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
			if stats.Level1 > 0 {
				mu.Lock()
				trained++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if trained != 1 {
		t.Fatalf("%d callers performed training, want exactly 1", trained)
	}
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatal("coalesced callers received different artifacts")
		}
	}
}

// TestSpecMismatchIsDetectable: an artifact trained for one fold must not
// hash-match another fold's spec (RunTargetArtifact relies on this).
func TestSpecMismatchIsDetectable(t *testing.T) {
	insts := instances(t)
	radius := pairs.NeighborRadiusNorm(insts[1:], 0.9)
	fold0 := NewSpec(imp11Opts(), 42, 0, insts[1:], radius)
	fold1 := NewSpec(imp11Opts(), 42, 1, append([]*pairs.Instance{insts[0]}, insts[2:]...),
		pairs.NeighborRadiusNorm(append([]*pairs.Instance{insts[0]}, insts[2:]...), 0.9))
	if fold0.Hash() == fold1.Hash() {
		t.Fatal("different folds share a spec hash")
	}
}
