package model

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/ml"
	"repro/internal/pairs"
)

// Meta is the serialized metadata of a trained artifact: enough to verify
// what the model was trained on (spec hash, designs, seed, fold) and to
// describe it (tree counts, feature names, repro version) without loading
// the arenas.
type Meta struct {
	// SpecHash is the content hash (Spec.Hash) of the training spec.
	SpecHash string `json:"spec_hash"`
	// Config is the attack configuration's display name.
	Config string `json:"config"`
	// Family is the artifact's learner-family kind tag, dispatching the
	// payload sections to the family's codec. Empty means FamilyBagging —
	// and is omitted from the JSON, so every bagging artifact's bytes are
	// identical to the pre-family format (container version 1 throughout).
	Family string `json:"family,omitempty"`
	// Level is 1 for a plain ensemble, 2 when a two-level-pruning model
	// rides along.
	Level int `json:"level"`
	// SplitLayer and Designs identify the training fold.
	SplitLayer int      `json:"split_layer"`
	Designs    []string `json:"designs"`
	// Seed and Fold pin the random streams training consumed.
	Seed int64 `json:"seed"`
	Fold int   `json:"fold"`
	// RadiusNorm is the Imp neighborhood radius used (-1 when disabled).
	RadiusNorm float64 `json:"radius_norm"`
	// Samples and Level2Samples count the training rows per level.
	Samples       int `json:"samples"`
	Level2Samples int `json:"level2_samples,omitempty"`
	// Trees and Level2Trees are the ensemble sizes per level.
	Trees       int `json:"trees"`
	Level2Trees int `json:"level2_trees,omitempty"`
	// FeatureNames are the paper names of the trained feature set, in
	// training order.
	FeatureNames []string `json:"feature_names"`
	// Version is the repro build version that trained the artifact.
	Version string `json:"version"`
}

// Artifact is a trained model ready for scoring: the level-1 scorer, the
// optional level-2 scorer, and the metadata describing their provenance.
// Artifacts are immutable and safe to share between concurrent scoring
// runs.
type Artifact struct {
	Meta Meta

	// l1 and l2 are the trained scorers; their concrete type is the
	// Meta.Family's (compiled *ml.Ensemble for bagging, *ml.MLP for mlp,
	// *ml.Logistic for logistic).
	l1, l2 pairs.Scorer
}

// Scorer returns the scoring interface the attack engine consumes: the
// two-level gate when the artifact carries a level-2 model, the level-1
// ensemble alone otherwise.
func (a *Artifact) Scorer() pairs.Scorer {
	if a.l2 != nil {
		return &pairs.TwoLevel{L1: a.l1, L2: a.l2}
	}
	return a.l1
}

// Ensembles returns the compiled arenas, with ok false for families that
// do not train ensembles (level2 is nil for one-level artifacts).
func (a *Artifact) Ensembles() (level1, level2 *ml.Ensemble, ok bool) {
	e1, ok1 := a.l1.(*ml.Ensemble)
	if !ok1 {
		return nil, nil, false
	}
	if a.l2 == nil {
		return e1, nil, true
	}
	e2, ok2 := a.l2.(*ml.Ensemble)
	if !ok2 {
		return nil, nil, false
	}
	return e1, e2, true
}

// Artifact container format:
//
//	magic   "SPLITMDL"                   8 bytes
//	version uint16 little-endian         currently 1
//	meta    uint32 length + JSON Meta    (Meta.Family is the payload kind tag)
//	level1  uint32 length + family payload blob
//	level2  uint32 length + family payload blob (length 0 when absent)
//	crc     uint32                       IEEE CRC-32 of everything above
//
// The payload sections are encoded and decoded by the Meta.Family's codec
// (self-checking blobs with their own magic, version, and CRC), dispatched
// through the registry. Bagging payloads are ml ensemble blobs exactly as
// before the kind tag existed, and an absent Family tag means bagging, so
// the container version stays 1 and pre-family artifacts load unchanged.
const (
	artifactMagic = "SPLITMDL"
	// ArtifactCodecVersion is the current on-disk artifact format version.
	ArtifactCodecVersion = 1
)

// MarshalBinary encodes the artifact in the versioned container format,
// dispatching the payload sections through the Meta.Family's codec.
func (a *Artifact) MarshalBinary() ([]byte, error) {
	fam, err := FamilyByName(a.Meta.Family)
	if err != nil {
		return nil, fmt.Errorf("model: artifact %s: %w", a.Meta.Config, err)
	}
	metaBlob, err := json.Marshal(a.Meta)
	if err != nil {
		return nil, fmt.Errorf("model: encoding artifact metadata: %w", err)
	}
	l1Blob, err := fam.Encode(a.l1)
	if err != nil {
		return nil, fmt.Errorf("model: encoding level-1 payload: %w", err)
	}
	var l2Blob []byte
	if a.l2 != nil {
		if l2Blob, err = fam.Encode(a.l2); err != nil {
			return nil, fmt.Errorf("model: encoding level-2 payload: %w", err)
		}
	}
	buf := make([]byte, 0, len(artifactMagic)+2+3*4+len(metaBlob)+len(l1Blob)+len(l2Blob)+4)
	buf = append(buf, artifactMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, ArtifactCodecVersion)
	for _, blob := range [][]byte{metaBlob, l1Blob, l2Blob} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalArtifact decodes an artifact encoded by MarshalBinary,
// validating the container checksum, the embedded family payload blobs, and
// the consistency of the metadata with the decoded payloads.
func UnmarshalArtifact(data []byte) (*Artifact, error) {
	headerLen := len(artifactMagic) + 2
	if len(data) < headerLen+3*4+4 {
		return nil, fmt.Errorf("model: artifact blob truncated (%d bytes)", len(data))
	}
	if string(data[:len(artifactMagic)]) != artifactMagic {
		return nil, fmt.Errorf("model: not a model artifact (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[len(artifactMagic):]); v != ArtifactCodecVersion {
		return nil, fmt.Errorf("model: unsupported artifact codec version %d (have %d)",
			v, ArtifactCodecVersion)
	}
	if got, stored := crc32.ChecksumIEEE(data[:len(data)-4]),
		binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("model: artifact blob checksum mismatch (corrupted payload)")
	}
	off := headerLen
	var blobs [3][]byte
	for i := range blobs {
		if off+4 > len(data)-4 {
			return nil, fmt.Errorf("model: artifact blob truncated inside section %d", i)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || off+n > len(data)-4 {
			return nil, fmt.Errorf("model: artifact section %d length %d exceeds blob", i, n)
		}
		blobs[i] = data[off : off+n]
		off += n
	}
	if off != len(data)-4 {
		return nil, fmt.Errorf("model: artifact blob has %d trailing bytes", len(data)-4-off)
	}

	a := &Artifact{}
	if err := json.Unmarshal(blobs[0], &a.Meta); err != nil {
		return nil, fmt.Errorf("model: decoding artifact metadata: %w", err)
	}
	fam, err := FamilyByName(a.Meta.Family)
	if err != nil {
		return nil, fmt.Errorf("model: decoding artifact: %w", err)
	}
	l1, err := fam.Decode(blobs[1])
	if err != nil {
		return nil, fmt.Errorf("model: decoding level-1 payload: %w", err)
	}
	a.l1 = l1
	switch {
	case a.Meta.Level == 2 && len(blobs[2]) == 0:
		return nil, fmt.Errorf("model: two-level artifact is missing its level-2 payload")
	case a.Meta.Level != 2 && len(blobs[2]) != 0:
		return nil, fmt.Errorf("model: level-%d artifact carries an unexpected level-2 payload", a.Meta.Level)
	case len(blobs[2]) != 0:
		l2, err := fam.Decode(blobs[2])
		if err != nil {
			return nil, fmt.Errorf("model: decoding level-2 payload: %w", err)
		}
		a.l2 = l2
	}
	return a, nil
}

// WriteFile atomically serializes the artifact to path (temp file plus
// rename, so concurrent readers never observe a partial artifact).
func (a *Artifact) WriteFile(path string) error {
	blob, err := a.MarshalBinary()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("model: writing artifact: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("model: writing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("model: writing artifact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("model: writing artifact: %w", err)
	}
	return nil
}

// LoadFile reads and decodes an artifact written by WriteFile.
func LoadFile(path string) (*Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: loading artifact: %w", err)
	}
	a, err := UnmarshalArtifact(blob)
	if err != nil {
		return nil, fmt.Errorf("model: loading artifact %s: %w", path, err)
	}
	return a, nil
}
