package model

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/rng"
)

// Registered family names. The empty string is the zero-value alias for
// FamilyBagging, so every pre-existing TrainOptions literal keeps meaning
// what it always did.
const (
	FamilyBagging  = "bagging"
	FamilyMLP      = "mlp"
	FamilyLogistic = "logistic"
)

// TrainContext carries everything a Family's deterministic training pass
// may consume: the training options, the random-stream coordinates
// (Seed, Unit, Fold), the worker budget, and the observability context.
// Families draw all randomness through Rng so a trained model's bits depend
// only on (Seed, Unit, Fold) — never on scheduling or hardware.
type TrainContext struct {
	Obs     *obs.Context
	Opts    TrainOptions
	Seed    int64
	Unit    int64
	Fold    int
	Workers int
}

// Rng derives the context's random stream at the given extra coordinates:
// rng.Derive(Seed, Unit, Fold, coords...). Each distinct coordinate tuple is
// an independent stream, which is how the bagging family trains its trees
// in parallel without sharing state.
func (c TrainContext) Rng(coords ...int64) *rand.Rand {
	units := append([]int64{c.Unit, int64(c.Fold)}, coords...)
	return rng.Derive(c.Seed, units...)
}

// Family is one learner family: a named, hashable, serializable way to turn
// a pair-sample dataset into a pairs.Scorer. Families are first-class
// citizens of the whole train stack — Spec hashes them, the artifact codec
// dispatches payload encoding through them, and the Store/checkpoint layers
// treat every family identically. This replaces the old opaque Learner
// closure, which could be neither hashed nor serialized and forced bypass
// branches into every one of those layers.
type Family interface {
	// Name is the registry key, e.g. "bagging".
	Name() string
	// HashOptions writes the family's canonical serialization of its
	// training-relevant options to w. It becomes part of Spec.Hash, so the
	// byte format is load-bearing: changing it reprices every cached
	// artifact of the family. The bagging family writes the exact line the
	// pre-family Spec.Hash wrote, keeping all historical hashes valid.
	HashOptions(w io.Writer, o TrainOptions)
	// Train fits a scorer using only streams derived from ctx.Rng, so the
	// result is bit-identical at any worker count.
	Train(ctx TrainContext, ds *ml.Dataset) (pairs.Scorer, error)
	// TrainSeq fits a scorer consuming the single shared rng sequentially —
	// the legacy in-process paths (proximity validation, direct Run) that
	// predate per-unit streams.
	TrainSeq(o *obs.Context, opts TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error)
	// Encode serializes a scorer this family trained; Decode inverts it
	// bit-exactly. Together they are the artifact codec's per-family
	// payload sections.
	Encode(sc pairs.Scorer) ([]byte, error)
	Decode(data []byte) (pairs.Scorer, error)
}

var (
	familyMu  sync.RWMutex
	familyReg = map[string]Family{}
)

// Register adds a family to the registry. It panics on an empty name or a
// duplicate registration: families are process-global wiring, and a silent
// overwrite would reprice spec hashes out from under the Store.
func Register(f Family) {
	name := f.Name()
	if name == "" {
		panic("model: cannot register a family with an empty name")
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if _, dup := familyReg[name]; dup {
		panic(fmt.Sprintf("model: family %q registered twice", name))
	}
	familyReg[name] = f
}

// FamilyByName resolves a family; "" means FamilyBagging. Unknown names are
// an error for callers validating user input (attack.Config.Validate, the
// serve layer's 400 path).
func FamilyByName(name string) (Family, error) {
	if name == "" {
		name = FamilyBagging
	}
	familyMu.RLock()
	f, ok := familyReg[name]
	familyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("model: unknown learner family %q (have %v)", name, Families())
	}
	return f, nil
}

// mustFamily resolves a family that validation already admitted; an
// unregistered name this deep is a programming error, not user input.
func mustFamily(name string) Family {
	f, err := FamilyByName(name)
	if err != nil {
		panic(err)
	}
	return f
}

// Families lists the registered family names, sorted.
func Families() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	names := make([]string, 0, len(familyReg))
	for name := range familyReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(baggingFamily{})
	Register(mlpFamily{})
	Register(logisticFamily{})
}

// baggingFamily is the paper's learner: a Bagging ensemble of decision
// trees, compiled to the flat-arena Ensemble for batch scoring.
type baggingFamily struct{}

func (baggingFamily) Name() string { return FamilyBagging }

// HashOptions writes exactly the line the pre-family Spec.Hash wrote for
// every spec, so each historical bagging hash stays byte-identical.
func (baggingFamily) HashOptions(w io.Writer, o TrainOptions) {
	fmt.Fprintf(w, "base=%d trees=%d traincap=%d\n", o.BaseKind, o.NumTrees, o.TrainCap)
}

func (baggingFamily) Train(ctx TrainContext, ds *ml.Dataset) (pairs.Scorer, error) {
	streams := func(tree int) *rand.Rand { return ctx.Rng(int64(tree)) }
	b, err := ml.TrainBaggingStreams(ctx.Obs, ds, ctx.Opts.NumTrees,
		ctx.Opts.TreeOptions(), streams, workerCount(ctx.Workers, ctx.Opts.NumTrees))
	if err != nil {
		return nil, err
	}
	return b.Compile(), nil
}

func (baggingFamily) TrainSeq(o *obs.Context, opts TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error) {
	b, err := ml.TrainBaggingObs(o, ds, opts.NumTrees, opts.TreeOptions(), r)
	if err != nil {
		return nil, err
	}
	return b.Compile(), nil
}

func (baggingFamily) Encode(sc pairs.Scorer) ([]byte, error) {
	e, ok := sc.(*ml.Ensemble)
	if !ok {
		return nil, fmt.Errorf("model: bagging artifact holds a %T, want *ml.Ensemble", sc)
	}
	return e.MarshalBinary()
}

func (baggingFamily) Decode(data []byte) (pairs.Scorer, error) {
	return ml.UnmarshalEnsemble(data)
}

// mlpFamily is the DL-perspective learner (Li et al., DAC'19/TCAD'20): a
// from-scratch multi-layer perceptron over the same pair samples, typically
// paired with the routing-hint feature block and the list-wise ranking head.
type mlpFamily struct{}

func (mlpFamily) Name() string { return FamilyMLP }

func (mlpFamily) HashOptions(w io.Writer, o TrainOptions) {
	fmt.Fprintf(w, "family=mlp hidden=%d epochs=%d rate=%016x traincap=%d\n",
		o.MLPHidden, o.MLPEpochs, math.Float64bits(o.MLPRate), o.TrainCap)
}

func (mlpFamily) options(o TrainOptions) ml.MLPOptions {
	return ml.MLPOptions{
		Features:     o.Features,
		Hidden:       o.MLPHidden,
		Epochs:       o.MLPEpochs,
		LearningRate: o.MLPRate,
	}
}

func (f mlpFamily) Train(ctx TrainContext, ds *ml.Dataset) (pairs.Scorer, error) {
	return ml.TrainMLP(ds, f.options(ctx.Opts), ctx.Rng())
}

func (f mlpFamily) TrainSeq(o *obs.Context, opts TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error) {
	return ml.TrainMLP(ds, f.options(opts), r)
}

func (mlpFamily) Encode(sc pairs.Scorer) ([]byte, error) {
	nn, ok := sc.(*ml.MLP)
	if !ok {
		return nil, fmt.Errorf("model: mlp artifact holds a %T, want *ml.MLP", sc)
	}
	return nn.MarshalBinary()
}

func (mlpFamily) Decode(data []byte) (pairs.Scorer, error) {
	return ml.UnmarshalMLP(data)
}

// logisticFamily is the linear baseline of the classifier-choice ablation,
// promoted from a custom Learner closure to a full citizen of the registry.
type logisticFamily struct{}

func (logisticFamily) Name() string { return FamilyLogistic }

func (logisticFamily) HashOptions(w io.Writer, o TrainOptions) {
	fmt.Fprintf(w, "family=logistic traincap=%d\n", o.TrainCap)
}

func (logisticFamily) Train(ctx TrainContext, ds *ml.Dataset) (pairs.Scorer, error) {
	return ml.TrainLogistic(ds, ml.LogisticOptions{Features: ctx.Opts.Features}, ctx.Rng())
}

func (logisticFamily) TrainSeq(o *obs.Context, opts TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error) {
	return ml.TrainLogistic(ds, ml.LogisticOptions{Features: opts.Features}, r)
}

func (logisticFamily) Encode(sc pairs.Scorer) ([]byte, error) {
	lg, ok := sc.(*ml.Logistic)
	if !ok {
		return nil, fmt.Errorf("model: logistic artifact holds a %T, want *ml.Logistic", sc)
	}
	return lg.MarshalBinary()
}

func (logisticFamily) Decode(data []byte) (pairs.Scorer, error) {
	return ml.UnmarshalLogistic(data)
}
