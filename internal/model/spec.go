package model

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
	"repro/internal/pairs"
)

// Stream units name the independent random streams one training fold
// consumes. Every stream is derived as rng.Derive(Seed, unit, Fold,
// index...), so a unit's draws depend only on the seed and its coordinates
// — never on what other units consumed or on which worker ran them. The
// values are the ones the attack engine has always used; renumbering them
// changes every downstream result, so treat them like the golden values in
// internal/rng. (The proximity-attack units 5 and 6 stay in
// internal/attack: they belong to the validation stage, not training.)
const (
	UnitSampling    int64 = iota + 1 // training-set sampling for one fold
	UnitLevel1                       // level-1 ensemble training (per tree)
	UnitLevel2Neg                    // level-2 negative draws (per instance)
	UnitLevel2Model                  // level-2 ensemble training (per tree)
)

// Spec describes one training run completely enough to reproduce its bits:
// the training designs (leave-one-out fold), the training options, the
// seed, and the neighborhood radius. Hash() is a canonical content address
// over exactly the fields that influence the trained model, which is what
// makes the Store's train-once/score-many caching sound.
type Spec struct {
	// Opts are the training options (defaults applied by NewSpec).
	Opts TrainOptions
	// Seed is the root of all randomness.
	Seed int64
	// Fold is the held-out target's index in the full design list — the
	// rng coordinate every training stream is derived with.
	Fold int
	// SplitLayer is the common split layer of the training designs.
	SplitLayer int
	// Designs are the training designs' names, in training order.
	Designs []string
	// DataDigest fingerprints the training designs' v-pin tables (the
	// attack's entire interface to a design); see dataDigest.
	DataDigest string
	// RadiusNorm is the Imp neighborhood radius as a fraction of die width
	// (-1 without the improvement). It is derived from the training
	// designs but hashed explicitly: it is an input to sampling.
	RadiusNorm float64

	// Runtime state, never hashed: the prepared training instances, the
	// worker bound, and the observability context/parent span training
	// reports under.
	Insts   []*pairs.Instance
	Workers int
	Obs     *obs.Context
	Span    *obs.Span
}

// NewSpec builds the Spec for training on insts with the given options,
// seed, and fold index, deriving the split layer, design names, and data
// digest from the instances. Defaults are applied to opts.
func NewSpec(opts TrainOptions, seed int64, fold int, insts []*pairs.Instance, radiusNorm float64) Spec {
	spec := Spec{
		Opts:       opts.WithDefaults(),
		Seed:       seed,
		Fold:       fold,
		Designs:    make([]string, len(insts)),
		DataDigest: dataDigest(insts),
		RadiusNorm: radiusNorm,
		Insts:      insts,
	}
	if len(insts) > 0 {
		spec.SplitLayer = insts[0].Ch.SplitLayer
	}
	for i, inst := range insts {
		spec.Designs[i] = inst.Ch.Design.Name
	}
	return spec
}

// Level1 returns the spec of this spec's level-1 model: TwoLevel cleared.
// Because Hash covers MaxLoCFrac only under TwoLevel, the one-level
// configuration and the level-1 stage of its two-level variant share one
// hash — and therefore one cached artifact.
func (s Spec) Level1() Spec {
	s.Opts.TwoLevel = false
	return s
}

// Hash is the spec's canonical content address: a SHA-256 over a versioned
// serialization of every training-relevant field. Fields that cannot change
// the trained bits — Name, Workers, ScalarScoring (the documented
// scalar/batch bit-identity contract), observability — are excluded, so
// presentation differences still hit the cache. The learner-specific
// options are serialized by the spec's Family (HashOptions), whose bagging
// implementation writes the exact bytes the pre-family format did — every
// hash minted before the family axis existed is unchanged.
func (s Spec) Hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model-spec/v1\n")
	level := 1
	if s.Opts.TwoLevel {
		level = 2
	}
	fmt.Fprintf(&b, "level=%d\n", level)
	fmt.Fprintf(&b, "seed=%d fold=%d layer=%d\n", s.Seed, s.Fold, s.SplitLayer)
	fmt.Fprintf(&b, "designs=%s\n", strings.Join(s.Designs, ","))
	fmt.Fprintf(&b, "data=%s\n", s.DataDigest)
	fmt.Fprintf(&b, "radius=%016x\n", math.Float64bits(s.RadiusNorm))
	fmt.Fprintf(&b, "features=%v\n", s.Opts.Features)
	fmt.Fprintf(&b, "neighborhood=%t quantile=%016x ylimit=%t\n",
		s.Opts.Neighborhood, math.Float64bits(s.Opts.NeighborQuantile), s.Opts.LimitDiffVpinY)
	mustFamily(s.Opts.Family).HashOptions(&b, s.Opts)
	if s.Opts.TwoLevel {
		// MaxLoCFrac bounds the level-1 candidate lists the level-2 stage
		// draws negatives from; without TwoLevel it only affects scoring.
		fmt.Fprintf(&b, "maxlocfrac=%016x\n", math.Float64bits(s.Opts.MaxLoCFrac))
		// The absolute cap tightens those same lists, so it joins the hash
		// under TwoLevel — but only when set, keeping every hash minted
		// before the field existed (and every uncapped config) unchanged.
		if s.Opts.MaxLoCCount > 0 {
			fmt.Fprintf(&b, "maxloccount=%d\n", s.Opts.MaxLoCCount)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// dataDigest fingerprints the training instances through the attack's
// interface to them: design name, split layer, and the full v-pin table
// (positions, pin locations, wirelengths, areas, ground-truth matches) plus
// the die width that normalises distances. Two instance lists with equal
// digests yield byte-equal feature rows, since the extractor's congestion
// grids are built from the same generated layouts the v-pin tables came
// from.
func dataDigest(insts []*pairs.Instance) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, inst := range insts {
		fmt.Fprintf(h, "design=%s layer=%d n=%d\n",
			inst.Ch.Design.Name, inst.Ch.SplitLayer, inst.N())
		u64(math.Float64bits(inst.DieWidth()))
		for i := range inst.Ch.VPins {
			vp := &inst.Ch.VPins[i]
			u64(uint64(vp.Pos.X))
			u64(uint64(vp.Pos.Y))
			u64(uint64(vp.PinLoc.X))
			u64(uint64(vp.PinLoc.Y))
			u64(uint64(vp.Wirelength))
			u64(math.Float64bits(vp.InArea))
			u64(math.Float64bits(vp.OutArea))
			u64(uint64(int64(vp.Match)))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
