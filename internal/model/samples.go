package model

import (
	"math/rand"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/pairs"
)

// TrainingSet generates the balanced sample set of §III-B from the given
// training instances: one positive (true match) per v-pin plus one random
// admitted negative per v-pin. onlyVpins, when non-nil, restricts sample
// generation to the listed v-pins of each instance (used by the proximity
// attack's 80/20 validation split). The rng must be the fold's sampling
// stream; TrainingSet consumes it sequentially.
func TrainingSet(o *obs.Context, opts TrainOptions, insts []*pairs.Instance,
	radiusNorm float64, onlyVpins [][]int, rng *rand.Rand) *ml.Dataset {

	ds := &ml.Dataset{}
	width := features.Width(opts.Features)
	for k, inst := range insts {
		filter := opts.Filter(inst, radiusNorm)
		n := inst.N()
		vpins := onlyVpins0(onlyVpins, k, n)
		selected := make([]bool, n)
		for _, a := range vpins {
			selected[a] = true
		}
		for _, a := range vpins {
			m := inst.Match(a)
			if m < 0 || !selected[m] || !filter.Admits(a, m) {
				continue
			}
			row := make([]float64, width)
			inst.Ex.Pair(a, m, row)
			ds.Add(row, true)

			// Matched negative: a random admitted non-matching partner.
			if b, ok := SampleNegative(filter, vpins, selected, a, m, rng); ok {
				neg := make([]float64, width)
				inst.Ex.Pair(a, b, neg)
				ds.Add(neg, false)
			}
		}
	}
	if opts.TrainCap > 0 && ds.Len() > opts.TrainCap {
		idx := rng.Perm(ds.Len())[:opts.TrainCap]
		ds = ds.Subset(idx)
	}
	o.Metrics().Histogram("attack.trainset.size").Observe(float64(ds.Len()))
	o.Log().Debug("training set sampled", "config", opts.Name,
		"designs", len(insts), "samples", ds.Len())
	return ds
}

// SampleNegative draws a uniform random admitted non-matching partner for
// a. It first tries cheap rejection sampling; under tight filters (small
// neighborhoods, Y-limits) where rejection rarely lands, it falls back to
// reservoir sampling over the filter's admitted candidate stream. vpins
// lists the candidate pool and selected marks its members; m is a's true
// match, never returned.
func SampleNegative(filter pairs.Filter, vpins []int,
	selected []bool, a, m int, rng *rand.Rand) (int, bool) {

	const tries = 40
	for t := 0; t < tries; t++ {
		b := vpins[rng.Intn(len(vpins))]
		if b != m && filter.Admits(a, b) {
			return b, true
		}
	}
	// Reservoir over all admitted candidates of a.
	chosen, count := -1, 0
	filter.Enumerate(a, func(b32 int32) {
		b := int(b32)
		if b == m || !selected[b] {
			return
		}
		count++
		if rng.Intn(count) == 0 {
			chosen = b
		}
	})
	if chosen < 0 {
		return 0, false
	}
	return chosen, true
}

func onlyVpins0(only [][]int, k, n int) []int {
	if only != nil {
		return only[k]
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
