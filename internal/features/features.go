// Package features computes the 11 pair-wise layout features of the paper's
// machine-learning model (§III-B) from a split-manufacturing challenge.
//
// Each sample describes a *pair* of v-pins and is labelled by whether the
// two are truly the two sides of one cut net. The Extractor precomputes all
// per-v-pin quantities once so the inner testing loop — which may evaluate
// tens of millions of pairs — only performs a few arithmetic operations per
// pair.
package features

import (
	"repro/internal/split"
)

// Feature indices. The paper's "first 9 features" are DiffPinX through
// DiffArea; Imp-7 removes TotalWirelength and TotalArea; Imp-11 adds the
// two congestion features.
const (
	DiffPinX = iota
	DiffPinY
	ManhattanPin
	DiffVpinX
	DiffVpinY
	ManhattanVpin
	TotalWirelength
	TotalArea
	DiffArea
	PlacementCongestion
	RoutingCongestion
	// NumFeatures is the size of a full feature vector.
	NumFeatures
)

// Names maps feature indices to the names used in the paper.
var Names = [NumFeatures]string{
	"DiffPinX",
	"DiffPinY",
	"ManhattanPin",
	"DiffVpinX",
	"DiffVpinY",
	"ManhattanVpin",
	"TotalWireLength",
	"TotalCellArea",
	"DiffCellArea",
	"PlacementCongestion",
	"RoutingCongestion",
}

// Set9 is the feature subset of the ML-9 and Imp-9 configurations: the
// first nine features of §III-B.
func Set9() []int {
	return []int{DiffPinX, DiffPinY, ManhattanPin, DiffVpinX, DiffVpinY,
		ManhattanVpin, TotalWirelength, TotalArea, DiffArea}
}

// Set7 is Imp-7's subset: Set9 minus the two least important features,
// TotalWirelength and TotalCellArea (paper §IV).
func Set7() []int {
	return []int{DiffPinX, DiffPinY, ManhattanPin, DiffVpinX, DiffVpinY,
		ManhattanVpin, DiffArea}
}

// Set11 is the full feature set of Imp-11.
func Set11() []int {
	s := make([]int, NumFeatures)
	for i := range s {
		s[i] = i
	}
	return s
}

// Extractor computes pair feature vectors for one challenge.
type Extractor struct {
	n              int
	px, py, vx, vy []float64
	w, inA, outA   []float64
	pc, rc         []float64
	driver         []bool
}

// NewExtractor caches the per-v-pin features (§III-A) of all v-pins in c.
func NewExtractor(c *split.Challenge) *Extractor {
	n := len(c.VPins)
	e := &Extractor{
		n:  n,
		px: make([]float64, n), py: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
		w: make([]float64, n), inA: make([]float64, n), outA: make([]float64, n),
		pc: make([]float64, n), rc: make([]float64, n),
		driver: make([]bool, n),
	}
	for i := range c.VPins {
		v := &c.VPins[i]
		e.px[i], e.py[i] = float64(v.PinLoc.X), float64(v.PinLoc.Y)
		e.vx[i], e.vy[i] = float64(v.Pos.X), float64(v.Pos.Y)
		e.w[i] = float64(v.Wirelength)
		e.inA[i], e.outA[i] = v.InArea, v.OutArea
		e.pc[i], e.rc[i] = c.PC(v), c.RC(v)
		e.driver[i] = v.IsDriverSide()
	}
	return e
}

// N returns the number of v-pins the extractor covers.
func (e *Extractor) N() int { return e.n }

// Legal reports whether the pair (a, b) is electrically legal: at most one
// of the two fragments may end in an output pin.
func (e *Extractor) Legal(a, b int) bool {
	return !(e.driver[a] && e.driver[b])
}

// Pair fills out with the 11 features of the v-pin pair (a, b). out must
// have length NumFeatures. All features are symmetric: Pair(a, b) equals
// Pair(b, a).
func (e *Extractor) Pair(a, b int, out []float64) {
	out[DiffPinX] = abs(e.px[a] - e.px[b])
	out[DiffPinY] = abs(e.py[a] - e.py[b])
	out[ManhattanPin] = out[DiffPinX] + out[DiffPinY]
	out[DiffVpinX] = abs(e.vx[a] - e.vx[b])
	out[DiffVpinY] = abs(e.vy[a] - e.vy[b])
	out[ManhattanVpin] = out[DiffVpinX] + out[DiffVpinY]
	out[TotalWirelength] = e.w[a] + e.w[b]
	out[TotalArea] = e.inA[a] + e.inA[b] + e.outA[a] + e.outA[b]
	out[DiffArea] = (e.outA[a] + e.outA[b]) - (e.inA[a] + e.inA[b])
	out[PlacementCongestion] = e.pc[a] + e.pc[b]
	out[RoutingCongestion] = e.rc[a] + e.rc[b]
}

// VpinDist returns the ManhattanVpin distance of the pair, used for
// neighborhood filtering and the proximity attack without materialising a
// full feature vector.
func (e *Extractor) VpinDist(a, b int) float64 {
	return abs(e.vx[a]-e.vx[b]) + abs(e.vy[a]-e.vy[b])
}

// DiffVpinYOf returns |vy_a - vy_b|, used by the "Y" configurations that
// exploit the single routing direction of the top metal layer.
func (e *Extractor) DiffVpinYOf(a, b int) float64 {
	return abs(e.vy[a] - e.vy[b])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
