// Package features computes the 11 pair-wise layout features of the paper's
// machine-learning model (§III-B) from a split-manufacturing challenge.
//
// Each sample describes a *pair* of v-pins and is labelled by whether the
// two are truly the two sides of one cut net. The Extractor precomputes all
// per-v-pin quantities once so the inner testing loop — which may evaluate
// tens of millions of pairs — only performs a few arithmetic operations per
// pair.
package features

import (
	"repro/internal/split"
)

// Feature indices. The paper's "first 9 features" are DiffPinX through
// DiffArea; Imp-7 removes TotalWirelength and TotalArea; Imp-11 adds the
// two congestion features.
const (
	DiffPinX = iota
	DiffPinY
	ManhattanPin
	DiffVpinX
	DiffVpinY
	ManhattanVpin
	TotalWirelength
	TotalArea
	DiffArea
	PlacementCongestion
	RoutingCongestion
	// NumFeatures is the size of the paper's full feature vector — and the
	// base row width every pre-existing configuration uses. The routing-hint
	// block below extends vectors past it; Width resolves the width a
	// feature set actually needs.
	NumFeatures
)

// Routing-hint feature block: wirelength/direction-of-travel features in the
// spirit of the DL-perspective attack (Li et al., DAC'19/TCAD'20), which
// augments the pair geometry with hints about where each cut route was
// heading. The indices sit past NumFeatures so the paper's Set9/Set7/Set11
// vectors — and everything hashed over them — stay byte-identical; only
// configurations that select these indices get the wider rows.
const (
	// RoutingSlackSum is slack_a + slack_b, where slack_i is v-pin i's
	// routed wirelength minus the direct pin-to-v-pin Manhattan distance —
	// how much detour the FEOL fragment took.
	RoutingSlackSum = NumFeatures + iota
	// RoutingSlackDiff is |slack_a - slack_b|: matching fragments of one net
	// tend to have been detoured by the same congestion.
	RoutingSlackDiff
	// RoutingNetLength estimates the joined net's total length:
	// w_a + w_b + ManhattanVpin.
	RoutingNetLength
	// RoutingDirAlign measures direction-of-travel agreement: the
	// L1-normalised pin-to-v-pin travel direction of each side, projected
	// onto the (normalised) v-pin displacement toward the other side and
	// summed. Truly matching fragments travel toward each other, so the
	// feature is large and positive for true pairs. Symmetric in (a, b).
	RoutingDirAlign
	// NumAll is the width of a vector carrying the routing-hint block.
	NumAll
)

// Names maps feature indices to the names used in the paper.
var Names = [NumFeatures]string{
	"DiffPinX",
	"DiffPinY",
	"ManhattanPin",
	"DiffVpinX",
	"DiffVpinY",
	"ManhattanVpin",
	"TotalWireLength",
	"TotalCellArea",
	"DiffCellArea",
	"PlacementCongestion",
	"RoutingCongestion",
}

// routingNames extends Names over the routing-hint block.
var routingNames = [NumAll - NumFeatures]string{
	"RoutingSlackSum",
	"RoutingSlackDiff",
	"RoutingNetLength",
	"RoutingDirAlign",
}

// Name returns the display name of any feature index, covering both the
// paper's block (Names) and the routing-hint block.
func Name(i int) string {
	if i < NumFeatures {
		return Names[i]
	}
	return routingNames[i-NumFeatures]
}

// Width is the feature-row width a feature set needs: NumFeatures for every
// subset of the paper's block (keeping those rows byte-identical to what
// they always were), and up to NumAll when routing-hint indices appear.
func Width(set []int) int {
	w := NumFeatures
	for _, f := range set {
		if f >= w {
			w = f + 1
		}
	}
	return w
}

// Set9 is the feature subset of the ML-9 and Imp-9 configurations: the
// first nine features of §III-B.
func Set9() []int {
	return []int{DiffPinX, DiffPinY, ManhattanPin, DiffVpinX, DiffVpinY,
		ManhattanVpin, TotalWirelength, TotalArea, DiffArea}
}

// Set7 is Imp-7's subset: Set9 minus the two least important features,
// TotalWirelength and TotalCellArea (paper §IV).
func Set7() []int {
	return []int{DiffPinX, DiffPinY, ManhattanPin, DiffVpinX, DiffVpinY,
		ManhattanVpin, DiffArea}
}

// Set11 is the full feature set of Imp-11.
func Set11() []int {
	s := make([]int, NumFeatures)
	for i := range s {
		s[i] = i
	}
	return s
}

// Set15 is Set11 plus the routing-hint block — the feature set of the
// DL-perspective configurations.
func Set15() []int {
	s := make([]int, NumAll)
	for i := range s {
		s[i] = i
	}
	return s
}

// Extractor computes pair feature vectors for one challenge.
type Extractor struct {
	n              int
	px, py, vx, vy []float64
	w, inA, outA   []float64
	pc, rc         []float64
	ux, uy, slack  []float64
	driver         []bool
}

// NewExtractor caches the per-v-pin features (§III-A) of all v-pins in c.
func NewExtractor(c *split.Challenge) *Extractor {
	n := len(c.VPins)
	e := &Extractor{
		n:  n,
		px: make([]float64, n), py: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n),
		w: make([]float64, n), inA: make([]float64, n), outA: make([]float64, n),
		pc: make([]float64, n), rc: make([]float64, n),
		ux: make([]float64, n), uy: make([]float64, n), slack: make([]float64, n),
		driver: make([]bool, n),
	}
	for i := range c.VPins {
		v := &c.VPins[i]
		e.px[i], e.py[i] = float64(v.PinLoc.X), float64(v.PinLoc.Y)
		e.vx[i], e.vy[i] = float64(v.Pos.X), float64(v.Pos.Y)
		e.w[i] = float64(v.Wirelength)
		e.inA[i], e.outA[i] = v.InArea, v.OutArea
		e.pc[i], e.rc[i] = c.PC(v), c.RC(v)
		e.driver[i] = v.IsDriverSide()
		// Routing hints: the FEOL fragment's direction of travel is the
		// L1-normalised pin→v-pin displacement (zero when pin == v-pin),
		// its slack the routed wirelength beyond that direct distance.
		dx, dy := e.vx[i]-e.px[i], e.vy[i]-e.py[i]
		if l := abs(dx) + abs(dy); l > 0 {
			e.ux[i], e.uy[i] = dx/l, dy/l
		}
		e.slack[i] = e.w[i] - abs(dx) - abs(dy)
	}
	return e
}

// N returns the number of v-pins the extractor covers.
func (e *Extractor) N() int { return e.n }

// Legal reports whether the pair (a, b) is electrically legal: at most one
// of the two fragments may end in an output pin.
func (e *Extractor) Legal(a, b int) bool {
	return !(e.driver[a] && e.driver[b])
}

// Pair fills out with the features of the v-pin pair (a, b). out must have
// length NumFeatures, or NumAll when a configuration selects routing-hint
// indices (the extra block is only computed when out reaches into it, so
// 11-wide rows cost exactly what they always did). All features are
// symmetric: Pair(a, b) equals Pair(b, a).
func (e *Extractor) Pair(a, b int, out []float64) {
	out[DiffPinX] = abs(e.px[a] - e.px[b])
	out[DiffPinY] = abs(e.py[a] - e.py[b])
	out[ManhattanPin] = out[DiffPinX] + out[DiffPinY]
	out[DiffVpinX] = abs(e.vx[a] - e.vx[b])
	out[DiffVpinY] = abs(e.vy[a] - e.vy[b])
	out[ManhattanVpin] = out[DiffVpinX] + out[DiffVpinY]
	out[TotalWirelength] = e.w[a] + e.w[b]
	out[TotalArea] = e.inA[a] + e.inA[b] + e.outA[a] + e.outA[b]
	out[DiffArea] = (e.outA[a] + e.outA[b]) - (e.inA[a] + e.inA[b])
	out[PlacementCongestion] = e.pc[a] + e.pc[b]
	out[RoutingCongestion] = e.rc[a] + e.rc[b]
	if len(out) > NumFeatures {
		e.routingPair(a, b, out)
	}
}

// routingPair fills the routing-hint block. RoutingDirAlign projects each
// side's travel direction onto the v-pin displacement pointing at the other
// side; writing both projections against the a→b displacement t flips the
// sign of b's term, so the sum is symmetric under swapping a and b.
func (e *Extractor) routingPair(a, b int, out []float64) {
	out[RoutingSlackSum] = e.slack[a] + e.slack[b]
	out[RoutingSlackDiff] = abs(e.slack[a] - e.slack[b])
	out[RoutingNetLength] = e.w[a] + e.w[b] + out[ManhattanVpin]
	tx, ty := e.vx[b]-e.vx[a], e.vy[b]-e.vy[a]
	if l := abs(tx) + abs(ty); l > 0 {
		tx, ty = tx/l, ty/l
	}
	out[RoutingDirAlign] = (e.ux[a]-e.ux[b])*tx + (e.uy[a]-e.uy[b])*ty
}

// VpinDist returns the ManhattanVpin distance of the pair, used for
// neighborhood filtering and the proximity attack without materialising a
// full feature vector.
func (e *Extractor) VpinDist(a, b int) float64 {
	return abs(e.vx[a]-e.vx[b]) + abs(e.vy[a]-e.vy[b])
}

// DiffVpinYOf returns |vy_a - vy_b|, used by the "Y" configurations that
// exploit the single routing direction of the top metal layer.
func (e *Extractor) DiffVpinYOf(a, b int) float64 {
	return abs(e.vy[a] - e.vy[b])
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
