package features

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/split"
)

var (
	chOnce sync.Once
	chVal  *split.Challenge
)

func testChallenge(t *testing.T) *split.Challenge {
	t.Helper()
	chOnce.Do(func() {
		p := layout.SuiteProfiles(layout.SuiteConfig{Scale: 0.2, Seed: 21})[4] // sb18, smallest
		d, err := layout.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := split.NewChallenge(d, 6)
		if err != nil {
			t.Fatal(err)
		}
		chVal = c
	})
	if chVal == nil {
		t.Fatal("challenge generation failed earlier")
	}
	return chVal
}

func TestFeatureSets(t *testing.T) {
	if len(Set9()) != 9 || len(Set7()) != 7 || len(Set11()) != 11 {
		t.Fatalf("set sizes = %d/%d/%d, want 9/7/11", len(Set9()), len(Set7()), len(Set11()))
	}
	in9 := map[int]bool{}
	for _, f := range Set9() {
		in9[f] = true
	}
	for _, f := range Set7() {
		if !in9[f] {
			t.Errorf("Set7 feature %s not in Set9", Names[f])
		}
	}
	if in9[PlacementCongestion] || in9[RoutingCongestion] {
		t.Error("congestion features must not be in Set9")
	}
	has := func(set []int, f int) bool {
		for _, x := range set {
			if x == f {
				return true
			}
		}
		return false
	}
	if has(Set7(), TotalWirelength) || has(Set7(), TotalArea) {
		t.Error("Set7 must exclude TotalWireLength and TotalCellArea")
	}
	if !has(Set11(), RoutingCongestion) {
		t.Error("Set11 must include RoutingCongestion")
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d unnamed", i)
		}
	}
}

func TestPairSymmetry(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	rng := rand.New(rand.NewSource(1))
	fa := make([]float64, NumFeatures)
	fb := make([]float64, NumFeatures)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, fa)
		e.Pair(b, a, fb)
		for k := 0; k < NumFeatures; k++ {
			if fa[k] != fb[k] {
				t.Fatalf("feature %s asymmetric for pair (%d,%d): %f vs %f",
					Names[k], a, b, fa[k], fb[k])
			}
		}
	}
}

func TestPairAgainstHandComputation(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	a, b := 0, 1
	f := make([]float64, NumFeatures)
	e.Pair(a, b, f)

	va, vb := &c.VPins[a], &c.VPins[b]
	wantDiffVpinX := float64((va.Pos.X - vb.Pos.X).Abs())
	if f[DiffVpinX] != wantDiffVpinX {
		t.Errorf("DiffVpinX = %f, want %f", f[DiffVpinX], wantDiffVpinX)
	}
	wantManPin := float64((va.PinLoc.X - vb.PinLoc.X).Abs() + (va.PinLoc.Y - vb.PinLoc.Y).Abs())
	if f[ManhattanPin] != wantManPin {
		t.Errorf("ManhattanPin = %f, want %f", f[ManhattanPin], wantManPin)
	}
	wantW := float64(va.Wirelength + vb.Wirelength)
	if f[TotalWirelength] != wantW {
		t.Errorf("TotalWireLength = %f, want %f", f[TotalWirelength], wantW)
	}
	wantTotalArea := va.InArea + vb.InArea + va.OutArea + vb.OutArea
	if f[TotalArea] != wantTotalArea {
		t.Errorf("TotalCellArea = %f, want %f", f[TotalArea], wantTotalArea)
	}
	wantDiffArea := (va.OutArea + vb.OutArea) - (va.InArea + vb.InArea)
	if f[DiffArea] != wantDiffArea {
		t.Errorf("DiffCellArea = %f, want %f", f[DiffArea], wantDiffArea)
	}
	wantPC := c.PC(va) + c.PC(vb)
	if f[PlacementCongestion] != wantPC {
		t.Errorf("PlacementCongestion = %f, want %f", f[PlacementCongestion], wantPC)
	}
}

func TestManhattanConsistency(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	f := make([]float64, NumFeatures)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, f)
		if f[ManhattanPin] != f[DiffPinX]+f[DiffPinY] {
			t.Fatal("ManhattanPin != DiffPinX + DiffPinY")
		}
		if f[ManhattanVpin] != f[DiffVpinX]+f[DiffVpinY] {
			t.Fatal("ManhattanVpin != DiffVpinX + DiffVpinY")
		}
		if got := e.VpinDist(a, b); got != f[ManhattanVpin] {
			t.Fatalf("VpinDist = %f, want %f", got, f[ManhattanVpin])
		}
		if got := e.DiffVpinYOf(a, b); got != f[DiffVpinY] {
			t.Fatalf("DiffVpinYOf = %f, want %f", got, f[DiffVpinY])
		}
	}
}

func TestMatchingPairsHaveSaneFeatures(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	f := make([]float64, NumFeatures)
	for i := range c.VPins {
		v := &c.VPins[i]
		if !e.Legal(i, v.Match) {
			t.Fatalf("true match (%d,%d) reported illegal", i, v.Match)
		}
		e.Pair(i, v.Match, f)
		for k := 0; k < NumFeatures; k++ {
			if k == DiffArea {
				continue // the only feature allowed to be negative
			}
			if f[k] < 0 {
				t.Fatalf("feature %s negative for matching pair: %f", Names[k], f[k])
			}
		}
		if f[TotalArea] <= 0 {
			t.Fatalf("matching pair (%d,%d) has zero TotalCellArea", i, v.Match)
		}
	}
}

func TestLegalMirrorsChallengeRule(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		want := split.LegalPair(&c.VPins[a], &c.VPins[b])
		if got := e.Legal(a, b); got != want {
			t.Fatalf("Legal(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
}

func TestExtractorN(t *testing.T) {
	c := testChallenge(t)
	if NewExtractor(c).N() != len(c.VPins) {
		t.Error("extractor N mismatch")
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		set  []int
		want int
	}{
		{nil, NumFeatures},
		{Set7(), NumFeatures},
		{Set9(), NumFeatures},
		{Set11(), NumFeatures},
		{Set15(), NumAll},
		{[]int{RoutingSlackSum}, RoutingSlackSum + 1},
		{[]int{DiffPinX, RoutingDirAlign}, NumAll},
	}
	for _, c := range cases {
		if got := Width(c.set); got != c.want {
			t.Errorf("Width(%v) = %d, want %d", c.set, got, c.want)
		}
	}
}

func TestSet15(t *testing.T) {
	s := Set15()
	if len(s) != NumAll {
		t.Fatalf("Set15 has %d features, want %d", len(s), NumAll)
	}
	for i, f := range s {
		if f != i {
			t.Fatalf("Set15[%d] = %d, want %d", i, f, i)
		}
	}
}

func TestNameCoversAllIndices(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumAll; i++ {
		n := Name(i)
		if n == "" {
			t.Errorf("feature %d unnamed", i)
		}
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	for i := 0; i < NumFeatures; i++ {
		if Name(i) != Names[i] {
			t.Errorf("Name(%d) = %q diverges from Names[%d] = %q", i, Name(i), i, Names[i])
		}
	}
}

// TestRoutingPairSymmetry covers the routing-hint block: every feature,
// including the direction-projection one, must be invariant under swapping
// the pair.
func TestRoutingPairSymmetry(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	rng := rand.New(rand.NewSource(4))
	fa := make([]float64, NumAll)
	fb := make([]float64, NumAll)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, fa)
		e.Pair(b, a, fb)
		for k := 0; k < NumAll; k++ {
			if fa[k] != fb[k] {
				t.Fatalf("feature %s asymmetric for pair (%d,%d): %f vs %f",
					Name(k), a, b, fa[k], fb[k])
			}
		}
	}
}

// TestRoutingPairHandComputation cross-checks the routing-hint block against
// a direct computation from the challenge's v-pin records.
func TestRoutingPairHandComputation(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	f := make([]float64, NumAll)
	manhattan := func(v *split.VPin) float64 {
		return float64((v.Pos.X - v.PinLoc.X).Abs() + (v.Pos.Y - v.PinLoc.Y).Abs())
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, f)
		va, vb := &c.VPins[a], &c.VPins[b]
		sa := float64(va.Wirelength) - manhattan(va)
		sb := float64(vb.Wirelength) - manhattan(vb)
		if f[RoutingSlackSum] != sa+sb {
			t.Fatalf("RoutingSlackSum = %f, want %f", f[RoutingSlackSum], sa+sb)
		}
		if want := abs(sa - sb); f[RoutingSlackDiff] != want {
			t.Fatalf("RoutingSlackDiff = %f, want %f", f[RoutingSlackDiff], want)
		}
		if want := float64(va.Wirelength+vb.Wirelength) + f[ManhattanVpin]; f[RoutingNetLength] != want {
			t.Fatalf("RoutingNetLength = %f, want %f", f[RoutingNetLength], want)
		}
		if sa < 0 || sb < 0 {
			t.Fatalf("negative routing slack %f/%f for v-pins %d/%d", sa, sb, a, b)
		}
	}
}

// TestBaseBlockUnchangedByWiderRows pins the byte-stability contract: an
// 11-wide row and the first 11 entries of a 15-wide row for the same pair
// are identical, so pre-existing Set9/Set11 vectors (and everything hashed
// over them) are untouched by the routing-hint block.
func TestBaseBlockUnchangedByWiderRows(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	rng := rand.New(rand.NewSource(6))
	narrow := make([]float64, NumFeatures)
	wide := make([]float64, NumAll)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, narrow)
		e.Pair(a, b, wide)
		for k := 0; k < NumFeatures; k++ {
			if narrow[k] != wide[k] {
				t.Fatalf("feature %s differs between 11-wide and 15-wide rows: %f vs %f",
					Name(k), narrow[k], wide[k])
			}
		}
	}
}
