package features

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/split"
)

var (
	chOnce sync.Once
	chVal  *split.Challenge
)

func testChallenge(t *testing.T) *split.Challenge {
	t.Helper()
	chOnce.Do(func() {
		p := layout.SuiteProfiles(layout.SuiteConfig{Scale: 0.2, Seed: 21})[4] // sb18, smallest
		d, err := layout.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := split.NewChallenge(d, 6)
		if err != nil {
			t.Fatal(err)
		}
		chVal = c
	})
	if chVal == nil {
		t.Fatal("challenge generation failed earlier")
	}
	return chVal
}

func TestFeatureSets(t *testing.T) {
	if len(Set9()) != 9 || len(Set7()) != 7 || len(Set11()) != 11 {
		t.Fatalf("set sizes = %d/%d/%d, want 9/7/11", len(Set9()), len(Set7()), len(Set11()))
	}
	in9 := map[int]bool{}
	for _, f := range Set9() {
		in9[f] = true
	}
	for _, f := range Set7() {
		if !in9[f] {
			t.Errorf("Set7 feature %s not in Set9", Names[f])
		}
	}
	if in9[PlacementCongestion] || in9[RoutingCongestion] {
		t.Error("congestion features must not be in Set9")
	}
	has := func(set []int, f int) bool {
		for _, x := range set {
			if x == f {
				return true
			}
		}
		return false
	}
	if has(Set7(), TotalWirelength) || has(Set7(), TotalArea) {
		t.Error("Set7 must exclude TotalWireLength and TotalCellArea")
	}
	if !has(Set11(), RoutingCongestion) {
		t.Error("Set11 must include RoutingCongestion")
	}
}

func TestNamesComplete(t *testing.T) {
	for i, n := range Names {
		if n == "" {
			t.Errorf("feature %d unnamed", i)
		}
	}
}

func TestPairSymmetry(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	rng := rand.New(rand.NewSource(1))
	fa := make([]float64, NumFeatures)
	fb := make([]float64, NumFeatures)
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, fa)
		e.Pair(b, a, fb)
		for k := 0; k < NumFeatures; k++ {
			if fa[k] != fb[k] {
				t.Fatalf("feature %s asymmetric for pair (%d,%d): %f vs %f",
					Names[k], a, b, fa[k], fb[k])
			}
		}
	}
}

func TestPairAgainstHandComputation(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	a, b := 0, 1
	f := make([]float64, NumFeatures)
	e.Pair(a, b, f)

	va, vb := &c.VPins[a], &c.VPins[b]
	wantDiffVpinX := float64((va.Pos.X - vb.Pos.X).Abs())
	if f[DiffVpinX] != wantDiffVpinX {
		t.Errorf("DiffVpinX = %f, want %f", f[DiffVpinX], wantDiffVpinX)
	}
	wantManPin := float64((va.PinLoc.X - vb.PinLoc.X).Abs() + (va.PinLoc.Y - vb.PinLoc.Y).Abs())
	if f[ManhattanPin] != wantManPin {
		t.Errorf("ManhattanPin = %f, want %f", f[ManhattanPin], wantManPin)
	}
	wantW := float64(va.Wirelength + vb.Wirelength)
	if f[TotalWirelength] != wantW {
		t.Errorf("TotalWireLength = %f, want %f", f[TotalWirelength], wantW)
	}
	wantTotalArea := va.InArea + vb.InArea + va.OutArea + vb.OutArea
	if f[TotalArea] != wantTotalArea {
		t.Errorf("TotalCellArea = %f, want %f", f[TotalArea], wantTotalArea)
	}
	wantDiffArea := (va.OutArea + vb.OutArea) - (va.InArea + vb.InArea)
	if f[DiffArea] != wantDiffArea {
		t.Errorf("DiffCellArea = %f, want %f", f[DiffArea], wantDiffArea)
	}
	wantPC := c.PC(va) + c.PC(vb)
	if f[PlacementCongestion] != wantPC {
		t.Errorf("PlacementCongestion = %f, want %f", f[PlacementCongestion], wantPC)
	}
}

func TestManhattanConsistency(t *testing.T) {
	e := NewExtractor(testChallenge(t))
	f := make([]float64, NumFeatures)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		e.Pair(a, b, f)
		if f[ManhattanPin] != f[DiffPinX]+f[DiffPinY] {
			t.Fatal("ManhattanPin != DiffPinX + DiffPinY")
		}
		if f[ManhattanVpin] != f[DiffVpinX]+f[DiffVpinY] {
			t.Fatal("ManhattanVpin != DiffVpinX + DiffVpinY")
		}
		if got := e.VpinDist(a, b); got != f[ManhattanVpin] {
			t.Fatalf("VpinDist = %f, want %f", got, f[ManhattanVpin])
		}
		if got := e.DiffVpinYOf(a, b); got != f[DiffVpinY] {
			t.Fatalf("DiffVpinYOf = %f, want %f", got, f[DiffVpinY])
		}
	}
}

func TestMatchingPairsHaveSaneFeatures(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	f := make([]float64, NumFeatures)
	for i := range c.VPins {
		v := &c.VPins[i]
		if !e.Legal(i, v.Match) {
			t.Fatalf("true match (%d,%d) reported illegal", i, v.Match)
		}
		e.Pair(i, v.Match, f)
		for k := 0; k < NumFeatures; k++ {
			if k == DiffArea {
				continue // the only feature allowed to be negative
			}
			if f[k] < 0 {
				t.Fatalf("feature %s negative for matching pair: %f", Names[k], f[k])
			}
		}
		if f[TotalArea] <= 0 {
			t.Fatalf("matching pair (%d,%d) has zero TotalCellArea", i, v.Match)
		}
	}
}

func TestLegalMirrorsChallengeRule(t *testing.T) {
	c := testChallenge(t)
	e := NewExtractor(c)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a, b := rng.Intn(e.N()), rng.Intn(e.N())
		want := split.LegalPair(&c.VPins[a], &c.VPins[b])
		if got := e.Legal(a, b); got != want {
			t.Fatalf("Legal(%d,%d) = %v, want %v", a, b, got, want)
		}
	}
}

func TestExtractorN(t *testing.T) {
	c := testChallenge(t)
	if NewExtractor(c).N() != len(c.VPins) {
		t.Error("extractor N mismatch")
	}
}
