package layout_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/split"
)

// ioSuite generates a tiny suite for IO tests (external test package to
// avoid the layout <- split import cycle).
func ioSuite(t *testing.T) []*layout.Design {
	t.Helper()
	designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: 0.12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return designs
}

func roundTrip(t *testing.T, d *layout.Design) *layout.Design {
	t.Helper()
	var buf bytes.Buffer
	if err := layout.Save(&buf, d); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ld, err := layout.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return ld
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := ioSuite(t)[0]
	ld := roundTrip(t, d)

	if ld.Name != d.Name {
		t.Errorf("name %q != %q", ld.Name, d.Name)
	}
	if ld.Die() != d.Die() {
		t.Errorf("die %v != %v", ld.Die(), d.Die())
	}
	if len(ld.Netlist.Cells) != len(d.Netlist.Cells) {
		t.Fatalf("cell count %d != %d", len(ld.Netlist.Cells), len(d.Netlist.Cells))
	}
	for i := range d.Netlist.Cells {
		if ld.Netlist.Cells[i].Kind.Name != d.Netlist.Cells[i].Kind.Name {
			t.Fatalf("cell %d kind differs", i)
		}
		if ld.Placement.Origin(i) != d.Placement.Origin(i) {
			t.Fatalf("cell %d origin differs", i)
		}
	}
	if len(ld.Netlist.Nets) != len(d.Netlist.Nets) {
		t.Fatalf("net count differs")
	}
	for i := range d.Netlist.Nets {
		a, b := &d.Netlist.Nets[i], &ld.Netlist.Nets[i]
		if a.Driver != b.Driver || len(a.Sinks) != len(b.Sinks) {
			t.Fatalf("net %d differs", i)
		}
		for s := range a.Sinks {
			if a.Sinks[s] != b.Sinks[s] {
				t.Fatalf("net %d sink %d differs", i, s)
			}
		}
	}
	for i := range d.Routing.Routes {
		a, b := &d.Routing.Routes[i], &ld.Routing.Routes[i]
		if a.TrunkLayer != b.TrunkLayer || a.TrunkA != b.TrunkA || a.TrunkB != b.TrunkB ||
			a.DriverEscape != b.DriverEscape || a.SinkEscape != b.SinkEscape {
			t.Fatalf("route %d header differs", i)
		}
		if len(a.Segments) != len(b.Segments) || len(a.Vias) != len(b.Vias) {
			t.Fatalf("route %d geometry counts differ", i)
		}
		for s := range a.Segments {
			if a.Segments[s] != b.Segments[s] {
				t.Fatalf("route %d segment %d differs", i, s)
			}
		}
		for v := range a.Vias {
			if a.Vias[v] != b.Vias[v] {
				t.Fatalf("route %d via %d differs", i, v)
			}
		}
	}
}

func TestLoadedDesignAttackEquivalence(t *testing.T) {
	// A loaded design must produce byte-identical challenges: same v-pins,
	// same ground truth, same features.
	d := ioSuite(t)[4] // sb18, smallest
	ld := roundTrip(t, d)
	for _, layer := range []int{4, 8} {
		ca, err := split.NewChallenge(d, layer)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := split.NewChallenge(ld, layer)
		if err != nil {
			t.Fatal(err)
		}
		if len(ca.VPins) != len(cb.VPins) {
			t.Fatalf("layer %d: v-pin counts differ", layer)
		}
		for i := range ca.VPins {
			a, b := ca.VPins[i], cb.VPins[i]
			if a.Pos != b.Pos || a.PinLoc != b.PinLoc || a.Match != b.Match ||
				a.Wirelength != b.Wirelength || a.InArea != b.InArea || a.OutArea != b.OutArea {
				t.Fatalf("layer %d: v-pin %d differs after round trip", layer, i)
			}
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	d := ioSuite(t)[4]
	var buf bytes.Buffer
	if err := layout.Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	corruptions := []struct {
		name string
		mut  func(string) string
	}{
		{"bad header", func(s string) string { return strings.Replace(s, "SML 1", "SML 9", 1) }},
		{"missing design", func(s string) string { return strings.Replace(s, "DESIGN", "DSIGN", 1) }},
		{"unknown kind", func(s string) string {
			i := strings.Index(s, "\nC 0 ")
			j := strings.Index(s[i+3:], " ")
			return s[:i+3] + "0 BOGUS_KIND" + s[i+3+j+len(" NAND2_X1"):]
		}},
		{"truncated", func(s string) string { return s[:len(s)/2] }},
		{"no end", func(s string) string { return strings.Replace(s, "END", "", 1) }},
		{"garbage record", func(s string) string { return strings.Replace(s, "\nEND", "\nXYZZY\nEND", 1) }},
	}
	for _, c := range corruptions {
		if _, err := layout.Load(strings.NewReader(c.mut(good))); err == nil {
			t.Errorf("%s: corrupt input accepted", c.name)
		}
	}
	// Sanity: the unmutated string loads.
	if _, err := layout.Load(strings.NewReader(good)); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
}

func TestLoadIgnoresCommentsAndBlankLines(t *testing.T) {
	d := ioSuite(t)[4]
	var buf bytes.Buffer
	if err := layout.Save(&buf, d); err != nil {
		t.Fatal(err)
	}
	decorated := "# a comment\n\n" + strings.Replace(buf.String(), "CELLS", "# mid comment\nCELLS", 1)
	if _, err := layout.Load(strings.NewReader(decorated)); err != nil {
		t.Fatalf("comments/blank lines rejected: %v", err)
	}
}
