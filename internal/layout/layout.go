// Package layout assembles complete placed-and-routed designs and generates
// the synthetic benchmark suite standing in for the ISPD-2011 superblue
// layouts the paper evaluates on. Each suite design has its own size,
// locality mix, congestion personality, and trunk-layer population, scaled
// so the relative v-pin counts across designs and split layers track the
// paper's Table I.
package layout

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/rng"
	"repro/internal/route"
)

// Design is a fully placed and routed benchmark.
type Design struct {
	Name      string
	Netlist   *netlist.Netlist
	Placement *place.Placement
	Routing   *route.Routing
}

// Die returns the design's die rectangle.
func (d *Design) Die() geom.Rect { return d.Placement.Die }

// Profile describes how to generate one benchmark design.
type Profile struct {
	Name string
	// Seed makes the design reproducible.
	Seed int64
	// DieSize is the edge length of the square die.
	DieSize geom.Coord
	// NumCells / NumMacros / NumNets size the netlist.
	NumCells  int
	NumMacros int
	NumNets   int
	// SeqFraction is the flip-flop fraction.
	SeqFraction float64
	// Clusters / ClusterTightness shape placement density.
	Clusters         int
	ClusterTightness float64
	// Reach is the net-locality mix (MeanReach values in fractions of the
	// die width; converted to DBU at generation time).
	Reach []ReachFrac
	// TrunkTargets gives the desired number of nets per trunk-layer group;
	// see layerFracs.
	TrunkTargets TrunkTargets
	// Router personality.
	PromoteProb  float64
	EscapeJitter float64
	DetourProb   float64
}

// ReachFrac is a locality class with reach expressed relative to die width.
type ReachFrac struct {
	Frac  float64
	Reach float64 // fraction of die width
}

// TrunkTargets is the desired net population of the high trunk-layer
// groups: T9 (cut by split 8), T7+T8 (additionally cut by split 6), and
// T5+T6 (additionally cut by split 4). Remaining nets stay on M2..M4.
type TrunkTargets struct {
	T9, T78, T56 int
}

// layerFracs converts trunk targets to per-layer fractions for the router.
// Group totals are split evenly between their two layers, and the local
// remainder is distributed bottom-heavy over M2..M4.
func layerFracs(tt TrunkTargets, totalNets int) [route.NumMetal + 1]float64 {
	var f [route.NumMetal + 1]float64
	n := float64(totalNets)
	f[9] = float64(tt.T9) / n
	f[8] = float64(tt.T78) / 2 / n
	f[7] = f[8]
	f[6] = float64(tt.T56) / 2 / n
	f[5] = f[6]
	rest := 1 - (f[9] + f[8] + f[7] + f[6] + f[5])
	if rest < 0 {
		rest = 0
	}
	f[4] = rest * 0.18
	f[3] = rest * 0.30
	f[2] = rest * 0.52
	return f
}

// Generate builds a complete design from a profile. Generation is
// deterministic in the profile (including its seed).
func Generate(p Profile) (*Design, error) {
	if p.NumCells <= 0 || p.NumNets <= 0 {
		return nil, fmt.Errorf("layout: profile %q missing sizes", p.Name)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	lib := cell.DefaultLibrary()

	cells, err := netlist.GenerateCells(lib, netlist.CellMixConfig{
		NumCells:    p.NumCells,
		NumMacros:   p.NumMacros,
		SeqFraction: p.SeqFraction,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("layout: %s: %w", p.Name, err)
	}
	nl := &netlist.Netlist{Lib: lib, Cells: cells}

	die := geom.R(0, 0, p.DieSize, p.DieSize)
	pl, err := place.Place(nl, place.Config{
		Die:               die,
		Clusters:          p.Clusters,
		ClusterTightness:  p.ClusterTightness,
		UtilisationTarget: 0.9,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("layout: %s: %w", p.Name, err)
	}

	classes := make([]netlist.ReachClass, len(p.Reach))
	for i, rc := range p.Reach {
		classes[i] = netlist.ReachClass{
			Frac:      rc.Frac,
			MeanReach: geom.Coord(rc.Reach * float64(p.DieSize)),
		}
	}
	nets, err := netlist.GenerateNets(cells, pl.Origin, die, netlist.NetGenConfig{
		NumNets: p.NumNets,
		Classes: classes,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("layout: %s: %w", p.Name, err)
	}
	nl.Nets = nets
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("layout: %s: generated netlist invalid: %w", p.Name, err)
	}

	rcfg := route.Config{
		LayerFracs:   layerFracs(p.TrunkTargets, len(nets)),
		PromoteProb:  p.PromoteProb,
		EscapeJitter: p.EscapeJitter,
		DetourProb:   p.DetourProb,
	}
	routing, err := route.BuildRouting(nl, pl, rcfg, rng)
	if err != nil {
		return nil, fmt.Errorf("layout: %s: %w", p.Name, err)
	}
	return &Design{Name: p.Name, Netlist: nl, Placement: pl, Routing: routing}, nil
}

// Suite tiers. The standard tier is the original five-design suite —
// superblue-like personalities at roughly 1/20th of the paper's sizes,
// small enough that every-configuration sweeps finish in minutes. The
// industrial tier is the superblue-class preset: three designs of 100k+
// cells each (at Scale 1), the size regime where the paper's results
// actually live.
const (
	TierStandard   = "standard"
	TierIndustrial = "industrial"
)

// Tiers lists the valid suite tiers.
func Tiers() []string { return []string{TierStandard, TierIndustrial} }

// ValidTier reports whether name is a known suite tier ("" selects
// standard).
func ValidTier(name string) bool {
	return name == "" || name == TierStandard || name == TierIndustrial
}

// SuiteConfig controls benchmark suite generation.
type SuiteConfig struct {
	// Tier selects the suite: TierStandard ("" included) or TierIndustrial.
	Tier string
	// Scale multiplies all net/cell counts. Scale 1.0 corresponds to
	// roughly 1/20th of the paper's industrial designs on the standard
	// tier — large enough to preserve the relative v-pin populations,
	// small enough that a full leave-one-out sweep of every configuration
	// finishes in minutes — and to the paper-faithful 100k+-cell sizes on
	// the industrial tier. Above 1.0 the die edge grows with sqrt(Scale)
	// so placement density, and with it each design's congestion
	// personality, is preserved; at and below 1.0 the die is fixed,
	// keeping every historical (scale, seed) suite bit-identical.
	Scale float64
	// Seed offsets all design seeds, for generating independent suites.
	Seed int64
	// Workers bounds the goroutines generating designs concurrently. Zero
	// or negative selects GOMAXPROCS. Each design is generated from its own
	// profile seed, so the suite is identical at any worker count.
	Workers int
}

// SuiteProfiles returns the design profiles of the configured tier at the
// given scale, or nil for an unknown tier. Relative sizes and per-design
// personalities follow the paper: sb12 is the largest and most congested
// (largest LoCs), sb10 has a distinct v-pin distribution with shorter
// top-layer nets (highest proximity-attack success), sb18 is the smallest.
func SuiteProfiles(cfg SuiteConfig) []Profile {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	switch cfg.Tier {
	case "", TierStandard:
		return standardProfiles(cfg)
	case TierIndustrial:
		return industrialProfiles(cfg)
	}
	return nil
}

// dieEdge grows a tier-base die edge with the square root of the total
// size multiplier above 1, so cell density — and with it routing
// congestion, the personality knob the suite is calibrated around — stays
// constant as designs scale up. Multipliers at or below 1 keep the base
// edge: the pre-tier suites never scaled the die, and their layouts must
// stay bit-identical.
func dieEdge(base geom.Coord, mult float64) geom.Coord {
	if mult <= 1 {
		return base
	}
	return geom.Coord(float64(base) * math.Sqrt(mult))
}

// standardProfiles is the original five-design suite.
func standardProfiles(cfg SuiteConfig) []Profile {
	s := cfg.Scale
	scale := func(n float64) int {
		v := int(n * s)
		if v < 1 {
			v = 1
		}
		return v
	}
	stdReach := []ReachFrac{
		{Frac: 0.55, Reach: 0.02},
		{Frac: 0.30, Reach: 0.055},
		{Frac: 0.15, Reach: 0.14},
	}
	profiles := []Profile{
		{
			Name: "sb1", Seed: cfg.Seed + 101, DieSize: dieEdge(36000, s),
			NumCells: scale(9600), NumMacros: 4, NumNets: scale(10680), SeqFraction: 0.12,
			Clusters: 4, ClusterTightness: 0.55, Reach: stdReach,
			TrunkTargets: TrunkTargets{T9: scale(196), T78: scale(879), T56: scale(2663)},
			PromoteProb:  0.25, EscapeJitter: 1.0, DetourProb: 0.30,
		},
		{
			Name: "sb5", Seed: cfg.Seed + 105, DieSize: dieEdge(40000, s),
			NumCells: scale(11450), NumMacros: 4, NumNets: scale(12723), SeqFraction: 0.14,
			Clusters: 5, ClusterTightness: 0.60, Reach: stdReach,
			TrunkTargets: TrunkTargets{T9: scale(275), T78: scale(1129), T56: scale(3049)},
			PromoteProb:  0.25, EscapeJitter: 1.1, DetourProb: 0.32,
		},
		{
			// sb10: distinct v-pin distribution — shorter global nets and a
			// calmer router, making nearest-candidate attacks much more
			// successful, as the paper observes for superblue10.
			Name: "sb10", Seed: cfg.Seed + 110, DieSize: dieEdge(44000, s),
			NumCells: scale(13840), NumMacros: 6, NumNets: scale(15377), SeqFraction: 0.10,
			Clusters: 3, ClusterTightness: 0.45,
			Reach: []ReachFrac{
				{Frac: 0.55, Reach: 0.02},
				{Frac: 0.33, Reach: 0.05},
				{Frac: 0.12, Reach: 0.12},
			},
			TrunkTargets: TrunkTargets{T9: scale(322), T78: scale(1858), T56: scale(3202)},
			PromoteProb:  0.15, EscapeJitter: 0.6, DetourProb: 0.15,
		},
		{
			// sb12: largest, most congested, longest nets — hardest design,
			// mirroring superblue12's outsized LoCs in the paper.
			Name: "sb12", Seed: cfg.Seed + 112, DieSize: dieEdge(48000, s),
			NumCells: scale(10965), NumMacros: 8, NumNets: scale(12183), SeqFraction: 0.16,
			Clusters: 7, ClusterTightness: 0.75,
			Reach: []ReachFrac{
				{Frac: 0.50, Reach: 0.025},
				{Frac: 0.28, Reach: 0.075},
				{Frac: 0.22, Reach: 0.18},
			},
			TrunkTargets: TrunkTargets{T9: scale(433), T78: scale(1467), T56: scale(2364)},
			PromoteProb:  0.40, EscapeJitter: 1.6, DetourProb: 0.50,
		},
		{
			Name: "sb18", Seed: cfg.Seed + 118, DieSize: dieEdge(32000, s),
			NumCells: scale(5475), NumMacros: 2, NumNets: scale(6083), SeqFraction: 0.12,
			Clusters: 3, ClusterTightness: 0.55, Reach: stdReach,
			TrunkTargets: TrunkTargets{T9: scale(188), T78: scale(652), T56: scale(1289)},
			PromoteProb:  0.25, EscapeJitter: 1.0, DetourProb: 0.30,
		},
	}
	return profiles
}

// industrialProfiles is the superblue-class tier: three designs with the
// standard suite's sb1 / sb10 / sb12 personalities (reach mix, clustering,
// router knobs) multiplied up to 100k+ cells each at Scale 1, dies grown
// with sqrt of the multiplier so density matches the standard tier. Seeds
// are derived through rng.Mix so the industrial tier's designs are
// statistically independent of the standard tier's at the same root seed;
// generation itself is the same deterministic parallel path
// (GenerateSuiteObs fans designs out across workers, each design fully
// determined by its own profile).
func industrialProfiles(cfg SuiteConfig) []Profile {
	// Size multipliers put every design above 100k cells at Scale 1 while
	// keeping the tier's full leave-one-out attack within single-digit
	// minutes on CI hardware.
	m1 := 11.5 * cfg.Scale // 110,400 cells
	m10 := 7.5 * cfg.Scale // 103,800 cells
	m12 := 9.5 * cfg.Scale // 104,167 cells
	scale := func(n, m float64) int {
		v := int(n * m)
		if v < 1 {
			v = 1
		}
		return v
	}
	stdReach := []ReachFrac{
		{Frac: 0.55, Reach: 0.02},
		{Frac: 0.30, Reach: 0.055},
		{Frac: 0.15, Reach: 0.14},
	}
	return []Profile{
		{
			Name: "sbx1", Seed: rng.Mix(cfg.Seed, 1101), DieSize: dieEdge(36000, m1),
			NumCells: scale(9600, m1), NumMacros: 4, NumNets: scale(10680, m1), SeqFraction: 0.12,
			Clusters: 4, ClusterTightness: 0.55, Reach: stdReach,
			TrunkTargets: TrunkTargets{T9: scale(196, m1), T78: scale(879, m1), T56: scale(2663, m1)},
			PromoteProb:  0.25, EscapeJitter: 1.0, DetourProb: 0.30,
		},
		{
			Name: "sbx10", Seed: rng.Mix(cfg.Seed, 1110), DieSize: dieEdge(44000, m10),
			NumCells: scale(13840, m10), NumMacros: 6, NumNets: scale(15377, m10), SeqFraction: 0.10,
			Clusters: 3, ClusterTightness: 0.45,
			Reach: []ReachFrac{
				{Frac: 0.55, Reach: 0.02},
				{Frac: 0.33, Reach: 0.05},
				{Frac: 0.12, Reach: 0.12},
			},
			TrunkTargets: TrunkTargets{T9: scale(322, m10), T78: scale(1858, m10), T56: scale(3202, m10)},
			PromoteProb:  0.15, EscapeJitter: 0.6, DetourProb: 0.15,
		},
		{
			Name: "sbx12", Seed: rng.Mix(cfg.Seed, 1112), DieSize: dieEdge(48000, m12),
			NumCells: scale(10965, m12), NumMacros: 8, NumNets: scale(12183, m12), SeqFraction: 0.16,
			Clusters: 7, ClusterTightness: 0.75,
			Reach: []ReachFrac{
				{Frac: 0.50, Reach: 0.025},
				{Frac: 0.28, Reach: 0.075},
				{Frac: 0.22, Reach: 0.18},
			},
			TrunkTargets: TrunkTargets{T9: scale(433, m12), T78: scale(1467, m12), T56: scale(2364, m12)},
			PromoteProb:  0.40, EscapeJitter: 1.6, DetourProb: 0.50,
		},
	}
}

// GenerateSuite builds the configured tier's benchmark designs.
func GenerateSuite(cfg SuiteConfig) ([]*Design, error) {
	return GenerateSuiteObs(nil, cfg)
}

// GenerateSuiteObs is GenerateSuite with per-design spans, logs, and
// counters on an observability context (nil disables them). Designs are
// generated concurrently on up to cfg.Workers goroutines (0 = GOMAXPROCS);
// each design is deterministic in its own profile seed, so the returned
// suite is identical at any worker count.
func GenerateSuiteObs(o *obs.Context, cfg SuiteConfig) ([]*Design, error) {
	profiles := SuiteProfiles(cfg)
	if profiles == nil {
		return nil, fmt.Errorf("layout: unknown suite tier %q (want %v)", cfg.Tier, Tiers())
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(profiles) {
		workers = len(profiles)
	}
	tier := cfg.Tier
	if tier == "" {
		tier = TierStandard
	}
	sp := o.Begin("layout.suite", obs.F("tier", tier), obs.F("scale", cfg.Scale),
		obs.F("seed", cfg.Seed), obs.F("designs", len(profiles)), obs.F("workers", workers))
	designs := make([]*Design, len(profiles))
	errs := make([]error, len(profiles))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(profiles) {
					return
				}
				p := profiles[i]
				dsp := sp.Begin("design", obs.F("name", p.Name))
				d, err := Generate(p)
				if err != nil {
					dsp.End()
					errs[i] = err
					continue
				}
				dsp.SetAttr("cells", len(d.Netlist.Cells))
				dsp.SetAttr("nets", len(d.Netlist.Nets))
				dsp.End()
				o.Metrics().Counter("layout.designs.generated").Inc()
				o.Log().Debug("design generated", "name", d.Name,
					"cells", len(d.Netlist.Cells), "nets", len(d.Netlist.Nets))
				designs[i] = d
			}
		}()
	}
	wg.Wait()
	sp.End()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return designs, nil
}
