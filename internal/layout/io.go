package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// The .sml text format serialises a complete placed-and-routed design —
// the role GDSII/DEF files play in the paper's attack model: the layout
// exchange format from which an untrusted foundry reconstructs the
// partially connected netlist. The format is line-based:
//
//	SML 1
//	DESIGN <name>
//	DIE <lox> <loy> <hix> <hiy>
//	CELLS <n>
//	C <id> <kind> <x> <y>
//	NETS <n>
//	N <id> <driverCell> <driverPin> <k> [<sinkCell> <sinkPin>]...
//	ROUTES <n>
//	R <net> <trunkLayer> <eDx> <eDy> <eSx> <eSy> <tAx> <tAy> <tBx> <tBy>
//	S <layer> <side> <ax> <ay> <bx> <by>     (segments of preceding R)
//	V <layer> <side> <x> <y>                 (vias of preceding R)
//	END
//
// Cell kinds refer to the default library by name.

// Save writes the design in .sml format.
func Save(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "SML 1")
	fmt.Fprintf(bw, "DESIGN %s\n", d.Name)
	die := d.Die()
	fmt.Fprintf(bw, "DIE %d %d %d %d\n", die.Lo.X, die.Lo.Y, die.Hi.X, die.Hi.Y)

	fmt.Fprintf(bw, "CELLS %d\n", len(d.Netlist.Cells))
	for _, c := range d.Netlist.Cells {
		org := d.Placement.Origin(c.ID)
		fmt.Fprintf(bw, "C %d %s %d %d\n", c.ID, c.Kind.Name, org.X, org.Y)
	}

	fmt.Fprintf(bw, "NETS %d\n", len(d.Netlist.Nets))
	for i := range d.Netlist.Nets {
		n := &d.Netlist.Nets[i]
		fmt.Fprintf(bw, "N %d %d %d %d", n.ID, n.Driver.Cell, n.Driver.Pin, len(n.Sinks))
		for _, s := range n.Sinks {
			fmt.Fprintf(bw, " %d %d", s.Cell, s.Pin)
		}
		fmt.Fprintln(bw)
	}

	fmt.Fprintf(bw, "ROUTES %d\n", len(d.Routing.Routes))
	for i := range d.Routing.Routes {
		r := &d.Routing.Routes[i]
		fmt.Fprintf(bw, "R %d %d %d %d %d %d %d %d %d %d\n",
			r.Net, r.TrunkLayer,
			r.DriverEscape.X, r.DriverEscape.Y, r.SinkEscape.X, r.SinkEscape.Y,
			r.TrunkA.X, r.TrunkA.Y, r.TrunkB.X, r.TrunkB.Y)
		for _, s := range r.Segments {
			fmt.Fprintf(bw, "S %d %d %d %d %d %d\n", s.Layer, int(s.Side), s.A.X, s.A.Y, s.B.X, s.B.Y)
		}
		for _, v := range r.Vias {
			fmt.Fprintf(bw, "V %d %d %d %d\n", v.Layer, int(v.Side), v.At.X, v.At.Y)
		}
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// loader carries parse state and fails with line numbers.
type loader struct {
	sc   *bufio.Scanner
	line int
}

func (l *loader) next() ([]string, error) {
	for l.sc.Scan() {
		l.line++
		text := strings.TrimSpace(l.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		return strings.Fields(text), nil
	}
	if err := l.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

func (l *loader) errf(format string, args ...any) error {
	return fmt.Errorf("layout: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *loader) coord(s string) (geom.Coord, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	return geom.Coord(v), err
}

func (l *loader) atoi(s string) (int, error) { return strconv.Atoi(s) }

// Load parses a .sml design written by Save. The cell library is resolved
// against the default library by kind name.
func Load(r io.Reader) (*Design, error) {
	l := &loader{sc: bufio.NewScanner(r)}
	l.sc.Buffer(make([]byte, 1<<20), 1<<20)
	lib := cell.DefaultLibrary()

	f, err := l.next()
	if err != nil || len(f) != 2 || f[0] != "SML" || f[1] != "1" {
		return nil, l.errf("missing SML 1 header")
	}
	if f, err = l.next(); err != nil || len(f) != 2 || f[0] != "DESIGN" {
		return nil, l.errf("missing DESIGN")
	}
	name := f[1]

	if f, err = l.next(); err != nil || len(f) != 5 || f[0] != "DIE" {
		return nil, l.errf("missing DIE")
	}
	var die geom.Rect
	coords := make([]geom.Coord, 4)
	for i := 0; i < 4; i++ {
		if coords[i], err = l.coord(f[i+1]); err != nil {
			return nil, l.errf("bad DIE coordinate %q", f[i+1])
		}
	}
	die = geom.R(coords[0], coords[1], coords[2], coords[3])

	// Cells and placement.
	if f, err = l.next(); err != nil || len(f) != 2 || f[0] != "CELLS" {
		return nil, l.errf("missing CELLS")
	}
	nCells, err := l.atoi(f[1])
	if err != nil || nCells < 0 {
		return nil, l.errf("bad cell count")
	}
	nl := &netlist.Netlist{Lib: lib, Cells: make([]netlist.Cell, nCells)}
	pl := &place.Placement{Die: die, Origins: make([]geom.Point, nCells)}
	for i := 0; i < nCells; i++ {
		if f, err = l.next(); err != nil || len(f) != 5 || f[0] != "C" {
			return nil, l.errf("bad cell record")
		}
		id, err := l.atoi(f[1])
		if err != nil || id != i {
			return nil, l.errf("cell IDs must be dense and ordered, got %q", f[1])
		}
		k := lib.Kind(f[2])
		if k == nil {
			return nil, l.errf("unknown cell kind %q", f[2])
		}
		x, err1 := l.coord(f[3])
		y, err2 := l.coord(f[4])
		if err1 != nil || err2 != nil {
			return nil, l.errf("bad cell origin")
		}
		nl.Cells[i] = netlist.Cell{ID: i, Name: fmt.Sprintf("u%d", i), Kind: k}
		pl.Origins[i] = geom.Pt(x, y)
	}

	// Nets.
	if f, err = l.next(); err != nil || len(f) != 2 || f[0] != "NETS" {
		return nil, l.errf("missing NETS")
	}
	nNets, err := l.atoi(f[1])
	if err != nil || nNets < 0 {
		return nil, l.errf("bad net count")
	}
	nl.Nets = make([]netlist.Net, nNets)
	for i := 0; i < nNets; i++ {
		if f, err = l.next(); err != nil || len(f) < 5 || f[0] != "N" {
			return nil, l.errf("bad net record")
		}
		id, err := l.atoi(f[1])
		if err != nil || id != i {
			return nil, l.errf("net IDs must be dense and ordered")
		}
		dc, err1 := l.atoi(f[2])
		dp, err2 := l.atoi(f[3])
		k, err3 := l.atoi(f[4])
		if err1 != nil || err2 != nil || err3 != nil || k < 0 || len(f) != 5+2*k {
			return nil, l.errf("malformed net record")
		}
		net := netlist.Net{ID: i, Name: fmt.Sprintf("n%d", i), Driver: netlist.PinRef{Cell: dc, Pin: dp}}
		for s := 0; s < k; s++ {
			sc, err1 := l.atoi(f[5+2*s])
			sp, err2 := l.atoi(f[6+2*s])
			if err1 != nil || err2 != nil {
				return nil, l.errf("malformed sink")
			}
			net.Sinks = append(net.Sinks, netlist.PinRef{Cell: sc, Pin: sp})
		}
		nl.Nets[i] = net
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("layout: loaded netlist invalid: %w", err)
	}

	// Routes.
	if f, err = l.next(); err != nil || len(f) != 2 || f[0] != "ROUTES" {
		return nil, l.errf("missing ROUTES")
	}
	nRoutes, err := l.atoi(f[1])
	if err != nil || nRoutes != nNets {
		return nil, l.errf("route count %q does not match net count %d", f[1], nNets)
	}
	routing := &route.Routing{Die: die, Routes: make([]route.Route, nRoutes)}
	var cur *route.Route
	for {
		if f, err = l.next(); err != nil {
			return nil, l.errf("unexpected EOF in routes")
		}
		switch f[0] {
		case "R":
			if len(f) != 11 {
				return nil, l.errf("malformed route record")
			}
			netID, err := l.atoi(f[1])
			if err != nil || netID < 0 || netID >= nRoutes {
				return nil, l.errf("bad route net ID")
			}
			trunk, err := l.atoi(f[2])
			if err != nil {
				return nil, l.errf("bad trunk layer")
			}
			var c [8]geom.Coord
			for i := 0; i < 8; i++ {
				if c[i], err = l.coord(f[3+i]); err != nil {
					return nil, l.errf("bad route coordinate")
				}
			}
			routing.Routes[netID] = route.Route{
				Net: netID, TrunkLayer: trunk,
				DriverEscape: geom.Pt(c[0], c[1]), SinkEscape: geom.Pt(c[2], c[3]),
				TrunkA: geom.Pt(c[4], c[5]), TrunkB: geom.Pt(c[6], c[7]),
			}
			cur = &routing.Routes[netID]
		case "S":
			if cur == nil || len(f) != 7 {
				return nil, l.errf("segment outside route")
			}
			layer, err1 := l.atoi(f[1])
			side, err2 := l.atoi(f[2])
			ax, err3 := l.coord(f[3])
			ay, err4 := l.coord(f[4])
			bx, err5 := l.coord(f[5])
			by, err6 := l.coord(f[6])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
				return nil, l.errf("malformed segment")
			}
			cur.Segments = append(cur.Segments, route.Segment{
				Layer: layer, Side: route.Side(side),
				A: geom.Pt(ax, ay), B: geom.Pt(bx, by),
			})
		case "V":
			if cur == nil || len(f) != 5 {
				return nil, l.errf("via outside route")
			}
			layer, err1 := l.atoi(f[1])
			side, err2 := l.atoi(f[2])
			x, err3 := l.coord(f[3])
			y, err4 := l.coord(f[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, l.errf("malformed via")
			}
			cur.Vias = append(cur.Vias, route.Via{Layer: layer, Side: route.Side(side), At: geom.Pt(x, y)})
		case "END":
			d := &Design{Name: name, Netlist: nl, Placement: pl, Routing: routing}
			if err := routing.Validate(); err != nil {
				return nil, fmt.Errorf("layout: loaded routing invalid: %w", err)
			}
			return d, nil
		default:
			return nil, l.errf("unexpected record %q", f[0])
		}
	}
}
