package layout

import (
	"testing"

	"repro/internal/route"
)

// smallSuite is shared across tests; generating designs is the expensive
// part of this package's tests.
func smallSuite(t *testing.T) []*Design {
	t.Helper()
	designs, err := GenerateSuite(SuiteConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return designs
}

func TestGenerateSuiteNames(t *testing.T) {
	designs := smallSuite(t)
	want := []string{"sb1", "sb5", "sb10", "sb12", "sb18"}
	if len(designs) != len(want) {
		t.Fatalf("got %d designs, want %d", len(designs), len(want))
	}
	for i, d := range designs {
		if d.Name != want[i] {
			t.Errorf("design %d name %q, want %q", i, d.Name, want[i])
		}
	}
}

func TestSuiteDesignsValid(t *testing.T) {
	for _, d := range smallSuite(t) {
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("%s: netlist invalid: %v", d.Name, err)
		}
		if err := d.Routing.Validate(); err != nil {
			t.Errorf("%s: routing invalid: %v", d.Name, err)
		}
		if len(d.Routing.Routes) != len(d.Netlist.Nets) {
			t.Errorf("%s: %d routes for %d nets", d.Name, len(d.Routing.Routes), len(d.Netlist.Nets))
		}
	}
}

func TestSuiteTrunkPopulations(t *testing.T) {
	// Every design must have nets on the top layers, or the split-layer
	// experiments would be empty; and populations must grow toward the
	// bottom, as in real designs.
	for _, d := range smallSuite(t) {
		pop := d.Routing.LayerPopulation()
		if pop[9] == 0 {
			t.Errorf("%s: no nets with trunk M9", d.Name)
		}
		cut8 := pop[9]
		cut6 := pop[9] + pop[8] + pop[7]
		cut4 := cut6 + pop[6] + pop[5]
		if !(cut4 > cut6 && cut6 > cut8) {
			t.Errorf("%s: cut-net counts not increasing toward lower splits: %d/%d/%d",
				d.Name, cut8, cut6, cut4)
		}
	}
}

func TestSuiteRelativeSizes(t *testing.T) {
	designs := smallSuite(t)
	byName := map[string]*Design{}
	for _, d := range designs {
		byName[d.Name] = d
	}
	cut8 := func(d *Design) int {
		return d.Routing.LayerPopulation()[9]
	}
	// sb12 has the most top-layer nets and sb18 the fewest, as in Table I.
	if cut8(byName["sb12"]) <= cut8(byName["sb1"]) {
		t.Errorf("sb12 top-layer nets (%d) not above sb1 (%d)",
			cut8(byName["sb12"]), cut8(byName["sb1"]))
	}
	if cut8(byName["sb18"]) > cut8(byName["sb5"]) {
		t.Errorf("sb18 top-layer nets (%d) above sb5 (%d)",
			cut8(byName["sb18"]), cut8(byName["sb5"]))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := SuiteProfiles(SuiteConfig{Scale: 0.1, Seed: 3})[0]
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Netlist.Nets) != len(b.Netlist.Nets) {
		t.Fatal("net counts differ between identical runs")
	}
	for i := range a.Routing.Routes {
		if a.Routing.Routes[i].TrunkA != b.Routing.Routes[i].TrunkA {
			t.Fatalf("route %d differs between identical runs", i)
		}
	}
}

func TestGenerateRejectsEmptyProfile(t *testing.T) {
	if _, err := Generate(Profile{Name: "empty"}); err == nil {
		t.Error("want error for empty profile")
	}
}

func TestLayerFracsSumToOne(t *testing.T) {
	f := layerFracs(TrunkTargets{T9: 100, T78: 400, T56: 1000}, 10000)
	var sum float64
	for m := 2; m <= route.NumMetal; m++ {
		sum += f[m]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("layer fractions sum to %f, want 1", sum)
	}
	if f[9] != 0.01 {
		t.Errorf("f9 = %f, want 0.01", f[9])
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := SuiteProfiles(SuiteConfig{Scale: 0.1})[0]
	big := SuiteProfiles(SuiteConfig{Scale: 0.5})[0]
	if small.NumNets >= big.NumNets {
		t.Errorf("scale 0.1 nets (%d) not below scale 0.5 nets (%d)", small.NumNets, big.NumNets)
	}
	if small.DieSize != big.DieSize {
		t.Errorf("die size should not scale with Scale")
	}
}
