package layout

import (
	"testing"

	"repro/internal/route"
)

// smallSuite is shared across tests; generating designs is the expensive
// part of this package's tests.
func smallSuite(t *testing.T) []*Design {
	t.Helper()
	designs, err := GenerateSuite(SuiteConfig{Scale: 0.15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return designs
}

func TestGenerateSuiteNames(t *testing.T) {
	designs := smallSuite(t)
	want := []string{"sb1", "sb5", "sb10", "sb12", "sb18"}
	if len(designs) != len(want) {
		t.Fatalf("got %d designs, want %d", len(designs), len(want))
	}
	for i, d := range designs {
		if d.Name != want[i] {
			t.Errorf("design %d name %q, want %q", i, d.Name, want[i])
		}
	}
}

func TestSuiteDesignsValid(t *testing.T) {
	for _, d := range smallSuite(t) {
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("%s: netlist invalid: %v", d.Name, err)
		}
		if err := d.Routing.Validate(); err != nil {
			t.Errorf("%s: routing invalid: %v", d.Name, err)
		}
		if len(d.Routing.Routes) != len(d.Netlist.Nets) {
			t.Errorf("%s: %d routes for %d nets", d.Name, len(d.Routing.Routes), len(d.Netlist.Nets))
		}
	}
}

func TestSuiteTrunkPopulations(t *testing.T) {
	// Every design must have nets on the top layers, or the split-layer
	// experiments would be empty; and populations must grow toward the
	// bottom, as in real designs.
	for _, d := range smallSuite(t) {
		pop := d.Routing.LayerPopulation()
		if pop[9] == 0 {
			t.Errorf("%s: no nets with trunk M9", d.Name)
		}
		cut8 := pop[9]
		cut6 := pop[9] + pop[8] + pop[7]
		cut4 := cut6 + pop[6] + pop[5]
		if !(cut4 > cut6 && cut6 > cut8) {
			t.Errorf("%s: cut-net counts not increasing toward lower splits: %d/%d/%d",
				d.Name, cut8, cut6, cut4)
		}
	}
}

func TestSuiteRelativeSizes(t *testing.T) {
	designs := smallSuite(t)
	byName := map[string]*Design{}
	for _, d := range designs {
		byName[d.Name] = d
	}
	cut8 := func(d *Design) int {
		return d.Routing.LayerPopulation()[9]
	}
	// sb12 has the most top-layer nets and sb18 the fewest, as in Table I.
	if cut8(byName["sb12"]) <= cut8(byName["sb1"]) {
		t.Errorf("sb12 top-layer nets (%d) not above sb1 (%d)",
			cut8(byName["sb12"]), cut8(byName["sb1"]))
	}
	if cut8(byName["sb18"]) > cut8(byName["sb5"]) {
		t.Errorf("sb18 top-layer nets (%d) above sb5 (%d)",
			cut8(byName["sb18"]), cut8(byName["sb5"]))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := SuiteProfiles(SuiteConfig{Scale: 0.1, Seed: 3})[0]
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Netlist.Nets) != len(b.Netlist.Nets) {
		t.Fatal("net counts differ between identical runs")
	}
	for i := range a.Routing.Routes {
		if a.Routing.Routes[i].TrunkA != b.Routing.Routes[i].TrunkA {
			t.Fatalf("route %d differs between identical runs", i)
		}
	}
}

func TestGenerateRejectsEmptyProfile(t *testing.T) {
	if _, err := Generate(Profile{Name: "empty"}); err == nil {
		t.Error("want error for empty profile")
	}
}

func TestLayerFracsSumToOne(t *testing.T) {
	f := layerFracs(TrunkTargets{T9: 100, T78: 400, T56: 1000}, 10000)
	var sum float64
	for m := 2; m <= route.NumMetal; m++ {
		sum += f[m]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("layer fractions sum to %f, want 1", sum)
	}
	if f[9] != 0.01 {
		t.Errorf("f9 = %f, want 0.01", f[9])
	}
}

func TestScaleChangesSize(t *testing.T) {
	small := SuiteProfiles(SuiteConfig{Scale: 0.1})[0]
	big := SuiteProfiles(SuiteConfig{Scale: 0.5})[0]
	if small.NumNets >= big.NumNets {
		t.Errorf("scale 0.1 nets (%d) not below scale 0.5 nets (%d)", small.NumNets, big.NumNets)
	}
	if small.DieSize != big.DieSize {
		t.Errorf("die size should not scale with Scale")
	}
}

func TestValidTier(t *testing.T) {
	for _, tier := range []string{"", TierStandard, TierIndustrial} {
		if !ValidTier(tier) {
			t.Errorf("ValidTier(%q) = false, want true", tier)
		}
	}
	for _, tier := range []string{"huge", "Standard", "industrial "} {
		if ValidTier(tier) {
			t.Errorf("ValidTier(%q) = true, want false", tier)
		}
	}
	if got := SuiteProfiles(SuiteConfig{Tier: "huge", Scale: 1}); got != nil {
		t.Errorf("SuiteProfiles with unknown tier returned %d profiles, want nil", len(got))
	}
	if _, err := GenerateSuite(SuiteConfig{Tier: "huge", Scale: 0.1, Seed: 1}); err == nil {
		t.Error("GenerateSuite accepted an unknown tier")
	}
}

func TestIndustrialProfiles(t *testing.T) {
	std := SuiteProfiles(SuiteConfig{Tier: TierStandard, Scale: 1, Seed: 1})
	ind := SuiteProfiles(SuiteConfig{Tier: TierIndustrial, Scale: 1, Seed: 1})
	wantNames := []string{"sbx1", "sbx10", "sbx12"}
	if len(ind) != len(wantNames) {
		t.Fatalf("industrial tier has %d profiles, want %d", len(ind), len(wantNames))
	}
	stdByName := map[string]Profile{}
	for _, p := range std {
		stdByName[p.Name] = p
	}
	for i, p := range ind {
		if p.Name != wantNames[i] {
			t.Errorf("profile %d named %q, want %q", i, p.Name, wantNames[i])
		}
		// The tier's whole point: every design is industrial-sized.
		if p.NumCells < 100000 {
			t.Errorf("%s has %d cells, want >= 100000", p.Name, p.NumCells)
		}
		// Die area grows with the size multiplier so density stays at the
		// calibrated standard-tier level: cells per die area within 10%.
		base := stdByName["sb"+p.Name[3:]]
		stdDensity := float64(base.NumCells) / (float64(base.DieSize) * float64(base.DieSize))
		indDensity := float64(p.NumCells) / (float64(p.DieSize) * float64(p.DieSize))
		if ratio := indDensity / stdDensity; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s density %.3g vs standard %.3g (ratio %.2f), want within 10%%",
				p.Name, indDensity, stdDensity, ratio)
		}
		if p.Seed == base.Seed {
			t.Errorf("%s shares its seed with %s", p.Name, base.Name)
		}
	}
}

// TestStandardProfilesUnchanged pins the pre-tier suite bit-for-bit: the
// tier refactor must not move a single field of the historical profiles.
func TestStandardProfilesUnchanged(t *testing.T) {
	p := SuiteProfiles(SuiteConfig{Scale: 1, Seed: 1})
	if len(p) != 5 {
		t.Fatalf("standard tier has %d profiles, want 5", len(p))
	}
	sb1 := p[0]
	if sb1.Name != "sb1" || sb1.Seed != 102 || sb1.DieSize != 36000 ||
		sb1.NumCells != 9600 || sb1.NumNets != 10680 ||
		sb1.TrunkTargets != (TrunkTargets{T9: 196, T78: 879, T56: 2663}) {
		t.Errorf("sb1 profile changed: %+v", sb1)
	}
	for i, tierCfg := range []SuiteConfig{{Scale: 0.3, Seed: 9}, {Tier: TierStandard, Scale: 0.3, Seed: 9}} {
		got := SuiteProfiles(tierCfg)
		if len(got) != 5 || got[0].NumCells != int(9600*0.3) {
			t.Errorf("case %d: empty-tier and standard-tier profiles diverge", i)
		}
	}
}

func TestIndustrialDieGrowth(t *testing.T) {
	// At tiny scales the multiplier drops to or below 1 and the die must
	// stay at its base edge — exactly the pre-tier behavior.
	tiny := SuiteProfiles(SuiteConfig{Tier: TierIndustrial, Scale: 0.05, Seed: 1})[0]
	if tiny.DieSize != 36000 {
		t.Errorf("sbx1 at scale 0.05 die %d, want base 36000", tiny.DieSize)
	}
	full := SuiteProfiles(SuiteConfig{Tier: TierIndustrial, Scale: 1, Seed: 1})[0]
	if full.DieSize <= 36000 {
		t.Errorf("sbx1 at scale 1 die %d, want above base 36000", full.DieSize)
	}
}

// TestGenerateIndustrialTiny generates the industrial tier at a small scale
// end to end: the designs must be valid and carry the sbx names. (Full-size
// generation is exercised by cmd/benchgen and the attack smoke test.)
func TestGenerateIndustrialTiny(t *testing.T) {
	designs, err := GenerateSuite(SuiteConfig{Tier: TierIndustrial, Scale: 0.03, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sbx1", "sbx10", "sbx12"}
	if len(designs) != len(want) {
		t.Fatalf("got %d designs, want %d", len(designs), len(want))
	}
	for i, d := range designs {
		if d.Name != want[i] {
			t.Errorf("design %d named %q, want %q", i, d.Name, want[i])
		}
		if err := d.Netlist.Validate(); err != nil {
			t.Errorf("%s: netlist invalid: %v", d.Name, err)
		}
		if err := d.Routing.Validate(); err != nil {
			t.Errorf("%s: routing invalid: %v", d.Name, err)
		}
	}
}
