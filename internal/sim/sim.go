// Package sim is a gate-level logic simulator over the synthetic cell
// library, used to evaluate what a split-manufacturing attack actually
// recovers: not just whether the attacker names the right v-pin partner
// (structural success, the paper's PA metric), but whether the
// reconstructed netlist computes the right values (functional recovery).
// Wrong guesses can still be functionally harmless when the swapped
// drivers compute correlated signals, so functional recovery bounds
// structural recovery from above — the quantity a reverse engineer
// ultimately cares about.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// Eval computes the output of a combinational cell kind given its input
// values in pin order. Unknown kinds conservatively return false.
func Eval(kindName string, in []bool) bool {
	base := kindName
	if i := strings.IndexByte(base, '_'); i >= 0 {
		base = base[:i]
	}
	all := func(want bool) bool {
		for _, v := range in {
			if v != want {
				return false
			}
		}
		return true
	}
	any := func(want bool) bool {
		for _, v := range in {
			if v == want {
				return true
			}
		}
		return false
	}
	switch base {
	case "INV":
		return !in[0]
	case "BUF":
		return in[0]
	case "NAND2", "NAND3", "NAND4":
		return !all(true)
	case "NOR2", "NOR3":
		return !any(true)
	case "AND2":
		return all(true)
	case "OR2":
		return any(true)
	case "XOR2":
		return in[0] != in[1]
	case "AOI21":
		// !((A1 & A2) | A3)
		return !((in[0] && in[1]) || in[2])
	case "OAI21":
		// !((A1 | A2) & A3)
		return !((in[0] || in[1]) && in[2])
	case "AOI22":
		return !((in[0] && in[1]) || (in[2] && in[3]))
	case "MUX2":
		// A3 selects between A1 and A2.
		if in[2] {
			return in[1]
		}
		return in[0]
	default:
		return false
	}
}

// IsSequential reports whether the kind is a state element (or macro)
// whose outputs act as pseudo-primary inputs during combinational
// simulation.
func IsSequential(kindName string) bool {
	return strings.HasPrefix(kindName, "DFF") ||
		strings.HasPrefix(kindName, "RAM") ||
		strings.HasPrefix(kindName, "MACRO")
}

// Circuit is a netlist prepared for combinational simulation: values live
// on nets; gates evaluate in topological order; sequential/macro outputs
// and undriven inputs are pseudo-primary inputs.
type Circuit struct {
	nl *netlist.Netlist
	// netOfOutPin[cell][pin] would be sparse; instead store per net.
	// driverCell[net] / driverPin mirrors nl.Nets[net].Driver.
	// inputNets[cell] lists, per input pin index order, the net driving it
	// (-1 when undriven).
	inputNets [][]int
	inputPins [][]int // pin indices aligned with inputNets
	outNet    []int   // cell -> net driven by its (first) output pin, -1 none
	order     []int   // combinational cells in evaluation order
	cyclic    int     // cells left in combinational cycles
	seqCells  []int
}

// Build prepares a circuit from a netlist.
func Build(nl *netlist.Netlist) (*Circuit, error) {
	nCells := len(nl.Cells)
	c := &Circuit{
		nl:        nl,
		inputNets: make([][]int, nCells),
		inputPins: make([][]int, nCells),
		outNet:    make([]int, nCells),
	}
	for i := range c.outNet {
		c.outNet[i] = -1
	}
	// Per-pin driving net.
	type pinKey struct{ cell, pin int }
	driving := make(map[pinKey]int)
	for i := range nl.Nets {
		n := &nl.Nets[i]
		for _, s := range n.Sinks {
			driving[pinKey{s.Cell, s.Pin}] = i
		}
		if c.outNet[n.Driver.Cell] < 0 {
			c.outNet[n.Driver.Cell] = i
		}
	}
	for _, cl := range nl.Cells {
		for _, pin := range cl.Kind.Inputs() {
			net, ok := driving[pinKey{cl.ID, pin}]
			if !ok {
				net = -1
			}
			c.inputNets[cl.ID] = append(c.inputNets[cl.ID], net)
			c.inputPins[cl.ID] = append(c.inputPins[cl.ID], pin)
		}
		if IsSequential(cl.Kind.Name) {
			c.seqCells = append(c.seqCells, cl.ID)
		}
	}

	// Kahn topological order over combinational cells: a cell is ready
	// when all its driven inputs come from pseudo-inputs or already
	// ordered cells.
	indeg := make([]int, nCells)
	dependents := make([][]int32, nCells)
	comb := func(id int) bool { return !IsSequential(nl.Cells[id].Kind.Name) }
	for _, cl := range nl.Cells {
		if !comb(cl.ID) {
			continue
		}
		for _, net := range c.inputNets[cl.ID] {
			if net < 0 {
				continue
			}
			drv := nl.Nets[net].Driver.Cell
			if comb(drv) {
				indeg[cl.ID]++
				dependents[drv] = append(dependents[drv], int32(cl.ID))
			}
		}
	}
	queue := make([]int, 0, nCells)
	for _, cl := range nl.Cells {
		if comb(cl.ID) && indeg[cl.ID] == 0 {
			queue = append(queue, cl.ID)
		}
	}
	sort.Ints(queue) // determinism
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		c.order = append(c.order, id)
		for _, dep := range dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, int(dep))
			}
		}
	}
	for _, cl := range nl.Cells {
		if comb(cl.ID) && indeg[cl.ID] > 0 {
			c.cyclic++
			c.order = append(c.order, cl.ID) // evaluated with extra sweeps
		}
	}
	if len(c.order) == 0 && c.cyclic == 0 && len(c.seqCells) == 0 {
		return nil, fmt.Errorf("sim: empty circuit")
	}
	return c, nil
}

// CyclicCells reports how many combinational cells sit in feedback loops
// (they are simulated with relaxation sweeps).
func (c *Circuit) CyclicCells() int { return c.cyclic }

// Inputs abstracts the pseudo-primary input values of one vector:
// sequential-cell outputs and undriven gate inputs. Keyed deterministically
// so the reference and the attacked circuit see the same environment.
type Inputs struct {
	seed   int64
	vector int
}

// NewInputs fixes the random environment for one input vector.
func NewInputs(seed int64, vector int) Inputs { return Inputs{seed: seed, vector: vector} }

func (in Inputs) seqOut(cell int) bool {
	return hashBit(in.seed, in.vector, int64(cell), 0x5e)
}

func (in Inputs) undriven(cell, pin int) bool {
	return hashBit(in.seed, in.vector, int64(cell)<<20|int64(pin), 0x77)
}

// hashBit is a small deterministic mixer (splitmix64-flavoured).
func hashBit(seed int64, vector int, key int64, salt int64) bool {
	x := uint64(seed) ^ uint64(vector)*0x9e3779b97f4a7c15 ^ uint64(key)*0xbf58476d1ce4e5b9 ^ uint64(salt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x&1 == 1
}

// Simulate evaluates the circuit for one input vector and returns the
// value of every net.
func (c *Circuit) Simulate(in Inputs) []bool {
	nl := c.nl
	values := make([]bool, len(nl.Nets))

	// Seed nets driven by sequential/macro cells.
	for i := range nl.Nets {
		drv := nl.Nets[i].Driver.Cell
		if IsSequential(nl.Cells[drv].Kind.Name) {
			values[i] = in.seqOut(drv)
		}
	}

	sweeps := 1
	if c.cyclic > 0 {
		sweeps = 3 // relaxation for feedback loops
	}
	inBuf := make([]bool, 8)
	for s := 0; s < sweeps; s++ {
		for _, id := range c.order {
			cl := &nl.Cells[id]
			ins := inBuf[:0]
			for k, net := range c.inputNets[id] {
				if net < 0 {
					ins = append(ins, in.undriven(id, c.inputPins[id][k]))
				} else {
					ins = append(ins, values[net])
				}
			}
			out := Eval(cl.Kind.Name, ins)
			if c.outNet[id] >= 0 {
				values[c.outNet[id]] = out
			}
		}
	}
	return values
}

// Vectors returns n distinct input environments under one seed.
func Vectors(seed int64, n int) []Inputs {
	out := make([]Inputs, n)
	for i := range out {
		out[i] = NewInputs(seed, i)
	}
	return out
}
