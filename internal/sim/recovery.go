package sim

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/split"
)

// Rewire builds the netlist an attacker would reconstruct from a split
// challenge given a pairing of v-pins: for every cut net, the driver-side
// fragment is connected to the sink fragment of the v-pin the attacker
// picked. pairing maps driver-side v-pin IDs to the guessed partner v-pin
// IDs; drivers without a guess (or with an illegal guess) lose their
// sinks, and sink groups claimed by several drivers end up driven by the
// last claimant — both are real failure modes of a wrong reconstruction.
func Rewire(ch *split.Challenge, pairing map[int]int) *netlist.Netlist {
	nl := ch.Design.Netlist
	out := &netlist.Netlist{
		Lib:   nl.Lib,
		Cells: nl.Cells,
		Nets:  append([]netlist.Net(nil), nl.Nets...),
	}
	for i := range ch.VPins {
		v := &ch.VPins[i]
		if v.Side != route.DriverSide {
			continue
		}
		out.Nets[v.Net].Sinks = nil // cut: BEOL connectivity unknown
		b, ok := pairing[v.ID]
		if !ok || b < 0 || b >= len(ch.VPins) {
			continue
		}
		partner := &ch.VPins[b]
		if partner.Side != route.SinkSide {
			continue
		}
		out.Nets[v.Net].Sinks = nl.Nets[partner.Net].Sinks
	}
	return out
}

// TruthPairing returns the ground-truth pairing of a challenge.
func TruthPairing(ch *split.Challenge) map[int]int {
	out := make(map[int]int, len(ch.VPins)/2)
	for i := range ch.VPins {
		if ch.VPins[i].Side == route.DriverSide {
			out[i] = ch.VPins[i].Match
		}
	}
	return out
}

// RecoveryReport quantifies how well a reconstructed netlist matches the
// reference.
type RecoveryReport struct {
	// Vectors is the number of random input environments simulated.
	Vectors int
	// StructuralRate is the fraction of cut nets whose guess is exactly
	// the true partner (the paper's PA success over driver-side v-pins).
	StructuralRate float64
	// FunctionalRate is the fraction of (cut-net sink pin, vector) pairs
	// whose simulated value matches the reference. Wrong guesses that feed
	// a correlated signal still score here, so FunctionalRate >=
	// StructuralRate in expectation; 0.5 is chance level.
	FunctionalRate float64
	// CutSinkPins is the number of observation points per vector.
	CutSinkPins int
}

// EvaluateRecovery simulates the reference design and the attacker's
// reconstruction on shared random input environments and reports
// structural and functional recovery rates.
func EvaluateRecovery(ch *split.Challenge, pairing map[int]int, vectors int, seed int64) (RecoveryReport, error) {
	if vectors <= 0 {
		return RecoveryReport{}, fmt.Errorf("sim: vector count must be positive")
	}
	nl := ch.Design.Netlist
	ref, err := Build(nl)
	if err != nil {
		return RecoveryReport{}, err
	}
	rewired := Rewire(ch, pairing)
	att, err := Build(rewired)
	if err != nil {
		return RecoveryReport{}, err
	}

	rep := RecoveryReport{Vectors: vectors}

	// Structural score.
	drivers := 0
	for i := range ch.VPins {
		v := &ch.VPins[i]
		if v.Side != route.DriverSide {
			continue
		}
		drivers++
		if b, ok := pairing[v.ID]; ok && b == v.Match {
			rep.StructuralRate++
		}
	}
	if drivers > 0 {
		rep.StructuralRate /= float64(drivers)
	}

	// Observation points: the sink pins of every cut net, with the net
	// driving each pin in the rewired netlist (or -1 when undriven).
	type obs struct {
		refNet int
		attNet int
		cell   int
		pin    int
	}
	attDriving := map[[2]int]int{}
	for i := range rewired.Nets {
		for _, s := range rewired.Nets[i].Sinks {
			attDriving[[2]int{s.Cell, s.Pin}] = i
		}
	}
	var points []obs
	for i := range ch.VPins {
		v := &ch.VPins[i]
		if v.Side != route.SinkSide {
			continue
		}
		for _, s := range nl.Nets[v.Net].Sinks {
			attNet, ok := attDriving[[2]int{s.Cell, s.Pin}]
			if !ok {
				attNet = -1
			}
			points = append(points, obs{refNet: v.Net, attNet: attNet, cell: s.Cell, pin: s.Pin})
		}
	}
	rep.CutSinkPins = len(points)
	if len(points) == 0 {
		return rep, nil
	}

	agree := 0
	for _, in := range Vectors(seed, vectors) {
		vref := ref.Simulate(in)
		vatt := att.Simulate(in)
		for _, p := range points {
			want := vref[p.refNet]
			var got bool
			if p.attNet >= 0 {
				got = vatt[p.attNet]
			} else {
				got = in.undriven(p.cell, p.pin)
			}
			if got == want {
				agree++
			}
		}
	}
	rep.FunctionalRate = float64(agree) / float64(len(points)*vectors)
	return rep, nil
}
