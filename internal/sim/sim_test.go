package sim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/route"
	"repro/internal/split"
)

func TestEvalGates(t *testing.T) {
	cases := []struct {
		kind string
		in   []bool
		want bool
	}{
		{"INV_X1", []bool{true}, false},
		{"INV_X1", []bool{false}, true},
		{"BUF_X2", []bool{true}, true},
		{"NAND2_X1", []bool{true, true}, false},
		{"NAND2_X1", []bool{true, false}, true},
		{"NAND3_X1", []bool{true, true, true}, false},
		{"NAND4_X2", []bool{true, true, true, false}, true},
		{"NOR2_X1", []bool{false, false}, true},
		{"NOR2_X1", []bool{true, false}, false},
		{"NOR3_X1", []bool{false, false, false}, true},
		{"AND2_X1", []bool{true, true}, true},
		{"AND2_X1", []bool{true, false}, false},
		{"OR2_X1", []bool{false, false}, false},
		{"OR2_X1", []bool{false, true}, true},
		{"XOR2_X1", []bool{true, false}, true},
		{"XOR2_X1", []bool{true, true}, false},
		{"AOI21_X1", []bool{true, true, false}, false},
		{"AOI21_X1", []bool{false, true, false}, true},
		{"OAI21_X1", []bool{false, false, true}, true},
		{"OAI21_X1", []bool{true, false, true}, false},
		{"AOI22_X1", []bool{false, true, false, true}, true},
		{"AOI22_X1", []bool{true, true, false, false}, false},
		{"MUX2_X1", []bool{true, false, false}, true},
		{"MUX2_X1", []bool{true, false, true}, false},
		{"UNKNOWN_X1", []bool{true}, false},
	}
	for _, c := range cases {
		if got := Eval(c.kind, c.in); got != c.want {
			t.Errorf("Eval(%s, %v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestIsSequential(t *testing.T) {
	if !IsSequential("DFF_X1") || !IsSequential("RAM512") || !IsSequential("MACRO_IP") {
		t.Error("sequential kinds not recognised")
	}
	if IsSequential("NAND2_X1") {
		t.Error("NAND2 flagged sequential")
	}
}

var (
	simOnce sync.Once
	simErr  error
	simCh   *split.Challenge
)

func simChallenge(t *testing.T) *split.Challenge {
	t.Helper()
	simOnce.Do(func() {
		p := layout.SuiteProfiles(layout.SuiteConfig{Scale: 0.2, Seed: 51})[4]
		d, err := layout.Generate(p)
		if err != nil {
			simErr = err
			return
		}
		simCh, simErr = split.NewChallenge(d, 6)
	})
	if simErr != nil {
		t.Fatal(simErr)
	}
	return simCh
}

func TestBuildAndSimulate(t *testing.T) {
	ch := simChallenge(t)
	c, err := Build(ch.Design.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	v1 := c.Simulate(NewInputs(1, 0))
	v2 := c.Simulate(NewInputs(1, 0))
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("simulation not deterministic")
		}
	}
	v3 := c.Simulate(NewInputs(1, 1))
	diff := 0
	for i := range v1 {
		if v1[i] != v3[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different vectors produced identical net values")
	}
}

func TestSimulationValueBalance(t *testing.T) {
	// Over many vectors, net values should be roughly balanced — a
	// sanity check that the hash-based environment is not degenerate.
	ch := simChallenge(t)
	c, err := Build(ch.Design.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	ones, total := 0, 0
	for _, in := range Vectors(7, 20) {
		for _, v := range c.Simulate(in) {
			if v {
				ones++
			}
			total++
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.25 || frac > 0.75 {
		t.Errorf("net value balance %.3f degenerate", frac)
	}
}

func TestTruthPairingPerfectRecovery(t *testing.T) {
	ch := simChallenge(t)
	rep, err := EvaluateRecovery(ch, TruthPairing(ch), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StructuralRate != 1 {
		t.Errorf("truth pairing structural rate %.3f, want 1", rep.StructuralRate)
	}
	if rep.FunctionalRate != 1 {
		t.Errorf("truth pairing functional rate %.4f, want 1", rep.FunctionalRate)
	}
	if rep.CutSinkPins == 0 {
		t.Error("no observation points")
	}
}

func TestRandomPairingNearChance(t *testing.T) {
	ch := simChallenge(t)
	rng := rand.New(rand.NewSource(4))
	// Random legal pairing: each driver picks a random sink-side v-pin.
	var sinkSide []int
	for i := range ch.VPins {
		if ch.VPins[i].Side == route.SinkSide {
			sinkSide = append(sinkSide, i)
		}
	}
	pairing := map[int]int{}
	for i := range ch.VPins {
		if ch.VPins[i].Side == route.DriverSide {
			pairing[i] = sinkSide[rng.Intn(len(sinkSide))]
		}
	}
	rep, err := EvaluateRecovery(ch, pairing, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StructuralRate > 0.05 {
		t.Errorf("random pairing structural rate %.3f too high", rep.StructuralRate)
	}
	if rep.FunctionalRate < 0.3 || rep.FunctionalRate > 0.7 {
		t.Errorf("random pairing functional rate %.3f far from chance", rep.FunctionalRate)
	}
}

func TestFunctionalAtLeastStructural(t *testing.T) {
	// A partially correct pairing: half truth, half random.
	ch := simChallenge(t)
	rng := rand.New(rand.NewSource(6))
	var sinkSide []int
	for i := range ch.VPins {
		if ch.VPins[i].Side == route.SinkSide {
			sinkSide = append(sinkSide, i)
		}
	}
	pairing := map[int]int{}
	for i := range ch.VPins {
		if ch.VPins[i].Side != route.DriverSide {
			continue
		}
		if rng.Intn(2) == 0 {
			pairing[i] = ch.VPins[i].Match
		} else {
			pairing[i] = sinkSide[rng.Intn(len(sinkSide))]
		}
	}
	rep, err := EvaluateRecovery(ch, pairing, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FunctionalRate < rep.StructuralRate {
		t.Errorf("functional rate %.3f below structural %.3f; masking should only help",
			rep.FunctionalRate, rep.StructuralRate)
	}
}

func TestEmptyPairing(t *testing.T) {
	ch := simChallenge(t)
	rep, err := EvaluateRecovery(ch, map[int]int{}, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StructuralRate != 0 {
		t.Error("empty pairing cannot be structurally correct")
	}
	if rep.FunctionalRate < 0.3 || rep.FunctionalRate > 0.7 {
		t.Errorf("empty pairing functional rate %.3f far from chance", rep.FunctionalRate)
	}
}

func TestEvaluateRecoveryRejectsBadVectors(t *testing.T) {
	ch := simChallenge(t)
	if _, err := EvaluateRecovery(ch, nil, 0, 1); err == nil {
		t.Error("zero vectors accepted")
	}
}

func TestCyclicCellsHandled(t *testing.T) {
	ch := simChallenge(t)
	c, err := Build(ch.Design.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the cycle count, simulation must terminate and be
	// deterministic (covered above); just report for visibility.
	t.Logf("cyclic combinational cells: %d of %d", c.CyclicCells(), len(ch.Design.Netlist.Cells))
}
