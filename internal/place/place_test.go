package place

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
)

func testNetlist(t *testing.T, n int, rng *rand.Rand) *netlist.Netlist {
	t.Helper()
	lib := cell.DefaultLibrary()
	cells, err := netlist.GenerateCells(lib, netlist.CellMixConfig{NumCells: n, NumMacros: 2, SeqFraction: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &netlist.Netlist{Lib: lib, Cells: cells}
}

func testConfig(die geom.Rect) Config {
	return Config{Die: die, Clusters: 4, ClusterTightness: 0.6, UtilisationTarget: 0.9}
}

func TestPlaceAllCellsInsideDie(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nl := testNetlist(t, 1000, rng)
	die := geom.R(0, 0, 40000, 40000)
	pl, err := Place(nl, testConfig(die), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		org := pl.Origin(c.ID)
		if org.X < die.Lo.X || org.Y < die.Lo.Y ||
			org.X+c.Kind.Width > die.Hi.X || org.Y+c.Kind.Height > die.Hi.Y {
			t.Fatalf("cell %d (%s) at %v extends outside die", c.ID, c.Kind.Name, org)
		}
	}
}

func TestPlaceRowAndSiteAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nl := testNetlist(t, 800, rng)
	die := geom.R(0, 0, 40000, 40000)
	pl, err := Place(nl, testConfig(die), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		if c.Kind.Macro {
			continue
		}
		org := pl.Origin(c.ID)
		if (org.Y-die.Lo.Y)%cell.RowHeight != 0 {
			t.Fatalf("cell %d not row aligned: y=%d", c.ID, org.Y)
		}
		if (org.X-die.Lo.X)%cell.SiteWidth != 0 {
			t.Fatalf("cell %d not site aligned: x=%d", c.ID, org.X)
		}
	}
}

func TestPlaceNoOverlapsWithinRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := testNetlist(t, 1500, rng)
	die := geom.R(0, 0, 50000, 50000)
	pl, err := Place(nl, testConfig(die), rng)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi geom.Coord }
	rows := map[geom.Coord][]span{}
	for _, c := range nl.Cells {
		if c.Kind.Macro {
			continue
		}
		org := pl.Origin(c.ID)
		rows[org.Y] = append(rows[org.Y], span{org.X, org.X + c.Kind.Width})
	}
	for y, spans := range rows {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.lo < b.hi && b.lo < a.hi {
					t.Fatalf("overlap in row y=%d: [%d,%d) vs [%d,%d)", y, a.lo, a.hi, b.lo, b.hi)
				}
			}
		}
	}
}

func TestPlaceStandardCellsAvoidMacros(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nl := testNetlist(t, 1000, rng)
	die := geom.R(0, 0, 40000, 40000)
	pl, err := Place(nl, testConfig(die), rng)
	if err != nil {
		t.Fatal(err)
	}
	var macroRects []geom.Rect
	for _, c := range nl.Cells {
		if c.Kind.Macro {
			org := pl.Origin(c.ID)
			macroRects = append(macroRects, geom.R(org.X, org.Y, org.X+c.Kind.Width, org.Y+c.Kind.Height))
		}
	}
	if len(macroRects) == 0 {
		t.Fatal("no macros placed")
	}
	for _, c := range nl.Cells {
		if c.Kind.Macro {
			continue
		}
		org := pl.Origin(c.ID)
		r := geom.R(org.X+1, org.Y+1, org.X+c.Kind.Width-1, org.Y+c.Kind.Height-1)
		for _, m := range macroRects {
			if r.Intersects(m) {
				t.Fatalf("cell %d at %v overlaps macro %v", c.ID, org, m)
			}
		}
	}
}

func TestPlaceRejectsOverfullDie(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nl := testNetlist(t, 5000, rng)
	die := geom.R(0, 0, 3000, 3000) // far too small
	if _, err := Place(nl, testConfig(die), rng); err == nil {
		t.Error("want utilisation error for tiny die")
	}
}

func TestPlaceDeterministicWithSeed(t *testing.T) {
	run := func() []geom.Point {
		rng := rand.New(rand.NewSource(7))
		nl := testNetlist(t, 400, rng)
		pl, err := Place(nl, testConfig(geom.R(0, 0, 30000, 30000)), rng)
		if err != nil {
			t.Fatal(err)
		}
		return pl.Origins
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("origin %d differs between identical-seed runs", i)
		}
	}
}

func TestPinLocation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nl := testNetlist(t, 50, rng)
	pl, err := Place(nl, testConfig(geom.R(0, 0, 20000, 20000)), rng)
	if err != nil {
		t.Fatal(err)
	}
	ref := netlist.PinRef{Cell: 3, Pin: 0}
	want := pl.Origin(3).Add(nl.PinDef(ref).Offset)
	if got := pl.PinLocation(nl, ref); got != want {
		t.Errorf("PinLocation = %v, want %v", got, want)
	}
}

func TestHPWLReflectsLocality(t *testing.T) {
	// A placement-aware netlist (nets generated after placement) must have
	// much smaller HPWL than a random-connectivity one on the same cells.
	rng := rand.New(rand.NewSource(9))
	nl := testNetlist(t, 1200, rng)
	die := geom.R(0, 0, 50000, 50000)
	pl, err := Place(nl, testConfig(die), rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(id int) geom.Point { return pl.Origin(id) }

	localCfg := netlist.NetGenConfig{
		NumNets: 600,
		Classes: []netlist.ReachClass{{Frac: 1, MeanReach: 1000}},
	}
	localNets, err := netlist.GenerateNets(nl.Cells, pos, die, localCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	globalCfg := netlist.NetGenConfig{
		NumNets: 600,
		Classes: []netlist.ReachClass{{Frac: 1, MeanReach: 60000}},
	}
	globalNets, err := netlist.GenerateNets(nl.Cells, pos, die, globalCfg, rng)
	if err != nil {
		t.Fatal(err)
	}

	nlLocal := &netlist.Netlist{Lib: nl.Lib, Cells: nl.Cells, Nets: localNets}
	nlGlobal := &netlist.Netlist{Lib: nl.Lib, Cells: nl.Cells, Nets: globalNets}
	hl, hg := HPWL(nlLocal, pl), HPWL(nlGlobal, pl)
	if hl*3 > hg {
		t.Errorf("local HPWL %d not far below global HPWL %d", hl, hg)
	}
}

func TestPlaceDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	nl := testNetlist(t, 100, rng)
	// Zero-value knobs should fall back to sane defaults, not fail.
	pl, err := Place(nl, Config{Die: geom.R(0, 0, 20000, 20000)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Origins) != len(nl.Cells) {
		t.Errorf("placement covers %d cells, want %d", len(pl.Origins), len(nl.Cells))
	}
}

func TestPlaceRejectsEmptyDie(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nl := testNetlist(t, 10, rng)
	if _, err := Place(nl, Config{Die: geom.R(0, 0, 0, 0)}, rng); err == nil {
		t.Error("want error for empty die")
	}
}
