// Package place produces legal row-based placements for generated netlists:
// standard cells snapped into rows and sites, macros packed into the die
// corners, and an overall clustered density profile so different regions of
// the die exhibit different placement congestion.
package place

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
)

// Placement maps each cell ID to its placed origin (lower-left corner).
type Placement struct {
	Die     geom.Rect
	Origins []geom.Point
}

// Origin returns the placed origin of the given cell.
func (p *Placement) Origin(cellID int) geom.Point { return p.Origins[cellID] }

// PinLocation returns the absolute location of a pin: cell origin plus the
// library pin offset. Physical pins live on metal 1; this is the (px, py)
// the attack's placement-level features are measured from.
func (p *Placement) PinLocation(nl *netlist.Netlist, r netlist.PinRef) geom.Point {
	return p.Origins[r.Cell].Add(nl.PinDef(r).Offset)
}

// Config controls the placer.
type Config struct {
	// Die is the placement region.
	Die geom.Rect
	// Clusters is the number of density hot spots. Cells are attracted to
	// cluster centres before legalisation, creating the uneven pin-density
	// profile that makes the PC feature informative.
	Clusters int
	// ClusterTightness in (0,1]: 1 packs cells hard onto cluster centres,
	// small values approach a uniform spread.
	ClusterTightness float64
	// UtilisationTarget caps row fill; generation fails if cells do not fit.
	UtilisationTarget float64
}

// Place legalises the cells of nl into rows inside cfg.Die. Macros are
// placed first along the die edges; standard cells are scattered around
// cluster centres and then snapped to free sites row by row.
func Place(nl *netlist.Netlist, cfg Config, rng *rand.Rand) (*Placement, error) {
	if cfg.Die.Width() <= 0 || cfg.Die.Height() <= 0 {
		return nil, fmt.Errorf("place: empty die %v", cfg.Die)
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.ClusterTightness <= 0 || cfg.ClusterTightness > 1 {
		cfg.ClusterTightness = 0.5
	}
	if cfg.UtilisationTarget <= 0 || cfg.UtilisationTarget > 1 {
		cfg.UtilisationTarget = 0.85
	}

	// Capacity check.
	var cellArea float64
	for _, c := range nl.Cells {
		cellArea += c.Kind.Area()
	}
	dieArea := float64(cfg.Die.Area())
	if cellArea > dieArea*cfg.UtilisationTarget {
		return nil, fmt.Errorf("place: utilisation %.2f exceeds target %.2f",
			cellArea/dieArea, cfg.UtilisationTarget)
	}

	pl := &Placement{Die: cfg.Die, Origins: make([]geom.Point, len(nl.Cells))}

	// Macros first: left and right edges, stacked bottom-up with a margin.
	var macros, std []int
	for _, c := range nl.Cells {
		if c.Kind.Macro {
			macros = append(macros, c.ID)
		} else {
			std = append(std, c.ID)
		}
	}
	blocked := placeMacros(nl, pl, macros)

	// Cluster centres.
	centers := make([]geom.Point, cfg.Clusters)
	for i := range centers {
		centers[i] = geom.Pt(
			cfg.Die.Lo.X+geom.Coord(rng.Int63n(int64(cfg.Die.Width())+1)),
			cfg.Die.Lo.Y+geom.Coord(rng.Int63n(int64(cfg.Die.Height())+1)),
		)
	}

	// Desired (illegal) positions: a mixture of cluster-Gaussian and
	// uniform placement.
	type want struct {
		id int
		p  geom.Point
	}
	wants := make([]want, 0, len(std))
	sigmaX := float64(cfg.Die.Width()) * (1.05 - cfg.ClusterTightness) / 3
	sigmaY := float64(cfg.Die.Height()) * (1.05 - cfg.ClusterTightness) / 3
	for _, id := range std {
		var p geom.Point
		if rng.Float64() < 0.75 {
			c := centers[rng.Intn(len(centers))]
			p = geom.Pt(
				c.X+geom.Coord(rng.NormFloat64()*sigmaX),
				c.Y+geom.Coord(rng.NormFloat64()*sigmaY),
			)
		} else {
			p = geom.Pt(
				cfg.Die.Lo.X+geom.Coord(rng.Int63n(int64(cfg.Die.Width())+1)),
				cfg.Die.Lo.Y+geom.Coord(rng.Int63n(int64(cfg.Die.Height())+1)),
			)
		}
		wants = append(wants, want{id: id, p: cfg.Die.ClampPoint(p)})
	}

	// Legalise: assign each cell to the row nearest its desired y, then
	// pack rows left-to-right in desired-x order, skipping macro blockages.
	rows := int(cfg.Die.Height() / cell.RowHeight)
	if rows == 0 {
		return nil, fmt.Errorf("place: die shorter than one row")
	}
	rowOf := func(y geom.Coord) int {
		r := int((y - cfg.Die.Lo.Y) / cell.RowHeight)
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		return r
	}
	perRow := make([][]want, rows)
	for _, w := range wants {
		r := rowOf(w.p.Y)
		perRow[r] = append(perRow[r], w)
	}

	// Legalisation tracks the occupied intervals of every row (macro
	// blockages pre-inserted), so any remaining gap can host a cell even
	// after its row has partially filled.
	rowY := func(r int) geom.Coord { return cfg.Die.Lo.Y + geom.Coord(r)*cell.RowHeight }
	occ := make([]*rowOccupancy, rows)
	for r := range occ {
		occ[r] = newRowOccupancy(cfg.Die.Lo.X, cfg.Die.Hi.X)
		y := rowY(r)
		rowRect := geom.R(cfg.Die.Lo.X, y, cfg.Die.Hi.X, y+cell.RowHeight)
		for _, b := range blocked {
			if rowRect.Intersects(b) {
				occ[r].insert(b.Lo.X, b.Hi.X)
			}
		}
	}

	// tryPlace puts the cell into the gap nearest its desired x in row r.
	tryPlace := func(id, r int, x geom.Coord) bool {
		k := nl.Cells[id].Kind
		pos, ok := occ[r].fit(snapSite(x, cfg.Die.Lo.X), k.Width)
		if !ok {
			return false
		}
		occ[r].insert(pos, pos+k.Width)
		pl.Origins[id] = geom.Pt(pos, rowY(r))
		return true
	}

	var leftovers []want
	for r := 0; r < rows; r++ {
		ws := perRow[r]
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].p.X != ws[j].p.X {
				return ws[i].p.X < ws[j].p.X
			}
			return ws[i].id < ws[j].id
		})
		for _, w := range ws {
			if !tryPlace(w.id, r, w.p.X) {
				leftovers = append(leftovers, w)
			}
		}
	}

	// Second pass: place leftovers in the nearest row with a wide-enough
	// gap, searching outward from the desired row.
	for _, w := range leftovers {
		home := rowOf(w.p.Y)
		placed := false
		for d := 1; d < rows && !placed; d++ {
			for _, r := range []int{home - d, home + d} {
				if r < 0 || r >= rows {
					continue
				}
				if tryPlace(w.id, r, w.p.X) {
					placed = true
					break
				}
			}
		}
		if !placed {
			return nil, fmt.Errorf("place: cell %d does not fit anywhere (utilisation too high)", w.id)
		}
	}
	return pl, nil
}

// rowOccupancy tracks occupied x-intervals of one placement row, kept
// sorted and non-overlapping.
type rowOccupancy struct {
	lo, hi geom.Coord
	spans  []xspan // sorted by lo
}

type xspan struct{ lo, hi geom.Coord }

func newRowOccupancy(lo, hi geom.Coord) *rowOccupancy {
	return &rowOccupancy{lo: lo, hi: hi}
}

// insert marks [lo, hi) occupied. Overlapping inserts are merged.
func (ro *rowOccupancy) insert(lo, hi geom.Coord) {
	i := sort.Search(len(ro.spans), func(i int) bool { return ro.spans[i].lo >= lo })
	ro.spans = append(ro.spans, xspan{})
	copy(ro.spans[i+1:], ro.spans[i:])
	ro.spans[i] = xspan{lo, hi}
	// Merge neighbours that touch or overlap.
	merged := ro.spans[:0]
	for _, s := range ro.spans {
		if n := len(merged); n > 0 && s.lo <= merged[n-1].hi {
			if s.hi > merged[n-1].hi {
				merged[n-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	ro.spans = merged
}

// fit returns a site-aligned position for a cell of the given width, as
// close as possible to the desired x, or false when no gap is wide enough.
func (ro *rowOccupancy) fit(desired, width geom.Coord) (geom.Coord, bool) {
	if desired < ro.lo {
		desired = ro.lo
	}
	if desired > ro.hi-width {
		desired = ro.hi - width
	}
	// Gap list: positions between consecutive spans (and row ends).
	type gap struct{ lo, hi geom.Coord }
	best := geom.Coord(-1)
	bestDist := geom.Coord(1) << 60
	consider := func(g gap) {
		lo := lsnap(g.lo, ro.lo)
		if lo < g.lo {
			lo += cell.SiteWidth
		}
		if lo+width > g.hi {
			return
		}
		// Closest feasible site-aligned x to desired within [lo, g.hi-width].
		x := desired
		if x < lo {
			x = lo
		}
		if x > g.hi-width {
			x = lsnap(g.hi-width, ro.lo)
		}
		x = lsnap(x, ro.lo)
		if x < lo {
			x = lo
		}
		if x+width > g.hi {
			return
		}
		d := (x - desired).Abs()
		if d < bestDist {
			bestDist = d
			best = x
		}
	}
	prev := ro.lo
	for _, s := range ro.spans {
		if s.lo > prev {
			consider(gap{prev, s.lo})
		}
		if s.hi > prev {
			prev = s.hi
		}
	}
	if prev < ro.hi {
		consider(gap{prev, ro.hi})
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// lsnap rounds x down to the site grid anchored at lo.
func lsnap(x, lo geom.Coord) geom.Coord {
	return lo + ((x-lo)/cell.SiteWidth)*cell.SiteWidth
}

// placeMacros stacks macros along the left and right die edges and returns
// their blockage rectangles.
func placeMacros(nl *netlist.Netlist, pl *Placement, macros []int) []geom.Rect {
	var blocked []geom.Rect
	leftY, rightY := pl.Die.Lo.Y, pl.Die.Lo.Y
	margin := cell.RowHeight
	for i, id := range macros {
		k := nl.Cells[id].Kind
		var org geom.Point
		if i%2 == 0 {
			org = geom.Pt(pl.Die.Lo.X, leftY)
			leftY += k.Height + margin
		} else {
			org = geom.Pt(pl.Die.Hi.X-k.Width, rightY)
			rightY += k.Height + margin
		}
		pl.Origins[id] = org
		blocked = append(blocked, geom.R(org.X, org.Y, org.X+k.Width, org.Y+k.Height).Expand(margin/2))
	}
	return blocked
}

func snapSite(x, lo geom.Coord) geom.Coord {
	return lo + ((x-lo)/cell.SiteWidth)*cell.SiteWidth
}

func overlapAny(r geom.Rect, rs []geom.Rect) bool {
	for _, b := range rs {
		if r.Intersects(b) {
			return true
		}
	}
	return false
}

// HPWL returns the total half-perimeter wirelength of the placement, the
// standard placement quality metric.
func HPWL(nl *netlist.Netlist, pl *Placement) int64 {
	var total int64
	for i := range nl.Nets {
		n := &nl.Nets[i]
		pts := make([]geom.Point, 0, 1+len(n.Sinks))
		for _, r := range n.Pins() {
			pts = append(pts, pl.PinLocation(nl, r))
		}
		total += int64(geom.BoundingBox(pts).HalfPerimeter())
	}
	return total
}
