package obfuscate

import (
	"sync"
	"testing"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/route"
	"repro/internal/split"
)

var (
	obOnce    sync.Once
	obErr     error
	obDesigns []*layout.Design
)

func designs(t *testing.T) []*layout.Design {
	t.Helper()
	obOnce.Do(func() {
		obDesigns, obErr = layout.GenerateSuite(layout.SuiteConfig{Scale: 0.2, Seed: 31})
	})
	if obErr != nil {
		t.Fatal(obErr)
	}
	return obDesigns
}

func TestPerturbRoutesValid(t *testing.T) {
	d := designs(t)[0]
	nd, cost, err := PerturbRoutes(d, 6, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Routing.Validate(); err != nil {
		t.Fatalf("perturbed routing invalid: %v", err)
	}
	if cost.ReroutedNets == 0 {
		t.Fatal("no nets rerouted")
	}
	// Trunk layers must be preserved (same nets remain cut).
	for i := range d.Routing.Routes {
		if nd.Routing.Routes[i].TrunkLayer != d.Routing.Routes[i].TrunkLayer {
			t.Fatalf("net %d trunk layer changed", i)
		}
	}
	// The original design must be untouched.
	c0, err := split.NewChallenge(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := split.NewChallenge(nd, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(c0.VPins) != len(c1.VPins) {
		t.Fatalf("v-pin count changed: %d -> %d", len(c0.VPins), len(c1.VPins))
	}
	moved := 0
	for i := range c0.VPins {
		if c0.VPins[i].Pos != c1.VPins[i].Pos {
			moved++
		}
	}
	if moved < len(c0.VPins)/4 {
		t.Errorf("only %d/%d v-pins moved under perturbation", moved, len(c0.VPins))
	}
}

func TestPerturbRoutesCostsWirelength(t *testing.T) {
	d := designs(t)[1]
	_, cost, err := PerturbRoutes(d, 6, 3.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Overhead() < -0.05 {
		t.Errorf("perturbation shrank wirelength by %.1f%%; detours should cost",
			-cost.Overhead()*100)
	}
	if cost.Overhead() > 0.5 {
		t.Errorf("perturbation overhead %.1f%% implausibly large", cost.Overhead()*100)
	}
}

func TestLiftNetsMovesPopulation(t *testing.T) {
	d := designs(t)[0]
	before := d.Routing.LayerPopulation()
	nd, cost, err := LiftNets(d, 5, 6, 2, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Routing.Validate(); err != nil {
		t.Fatal(err)
	}
	after := nd.Routing.LayerPopulation()
	if after[5]+after[6] >= before[5]+before[6] {
		t.Errorf("lift did not reduce M5/M6 population: %d -> %d",
			before[5]+before[6], after[5]+after[6])
	}
	if after[7]+after[8] <= before[7]+before[8] {
		t.Errorf("lift did not grow M7/M8 population")
	}
	if cost.ReroutedNets == 0 {
		t.Error("no nets lifted")
	}
}

func TestLiftNetsGrowsCutPopulation(t *testing.T) {
	// Lifting M5/M6 nets above split 6 means more nets are cut there.
	d := designs(t)[2]
	c0, err := split.NewChallenge(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	nd, _, err := LiftNets(d, 5, 6, 2, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := split.NewChallenge(nd, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c1.CutNets() <= c0.CutNets() {
		t.Errorf("lift did not grow cut-net count: %d -> %d", c0.CutNets(), c1.CutNets())
	}
}

func TestPerturbationDegradesAttack(t *testing.T) {
	// The whole point: re-routed designs must be harder to attack.
	all := designs(t)
	const layer = 6
	clean := make([]*split.Challenge, len(all))
	noisy := make([]*split.Challenge, len(all))
	for i, d := range all {
		var err error
		if clean[i], err = split.NewChallenge(d, layer); err != nil {
			t.Fatal(err)
		}
		nd, _, err := PerturbRoutes(d, layer, 4.0, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if noisy[i], err = split.NewChallenge(nd, layer); err != nil {
			t.Fatal(err)
		}
	}
	cfg := attack.Imp11()
	resClean, err := attack.Run(cfg, clean)
	if err != nil {
		t.Fatal(err)
	}
	cfgN := attack.Imp11()
	cfgN.Name = "Imp-11-perturbed"
	resNoisy, err := attack.Run(cfgN, noisy)
	if err != nil {
		t.Fatal(err)
	}
	var a, b float64
	for i := range resClean.Evals {
		a += resClean.Evals[i].AccuracyAtK(10)
		b += resNoisy.Evals[i].AccuracyAtK(10)
	}
	if b >= a {
		t.Errorf("perturbation did not degrade attack: clean %.3f vs perturbed %.3f", a/5, b/5)
	}
}

func TestInvalidParameters(t *testing.T) {
	d := designs(t)[4]
	if _, _, err := PerturbRoutes(d, 6, 0, 1); err == nil {
		t.Error("zero jitter accepted")
	}
	if _, _, err := LiftNets(d, 1, 6, 1, 0.5, 1); err == nil {
		t.Error("lift range below M2 accepted")
	}
	if _, _, err := LiftNets(d, 5, 4, 1, 0.5, 1); err == nil {
		t.Error("inverted lift range accepted")
	}
	if _, _, err := LiftNets(d, 5, 6, 0, 0.5, 1); err == nil {
		t.Error("zero lift distance accepted")
	}
	if _, _, err := LiftNets(d, 5, 6, 1, 0, 1); err == nil {
		t.Error("zero lift fraction accepted")
	}
	if _, _, err := LiftNets(d, 5, 6, 1, 1.5, 1); err == nil {
		t.Error("fraction above 1 accepted")
	}
}

func TestCostOverhead(t *testing.T) {
	c := Cost{WirelengthBefore: 1000, WirelengthAfter: 1100}
	if c.Overhead() != 0.1 {
		t.Errorf("overhead = %f, want 0.1", c.Overhead())
	}
	if (Cost{}).Overhead() != 0 {
		t.Error("zero cost overhead must be 0")
	}
}

func TestJogTrunksBreaksAlignment(t *testing.T) {
	d := designs(t)[0]
	const layer = 6
	nd, cost, err := JogTrunks(d, layer, 3, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Routing.Validate(); err != nil {
		t.Fatalf("jogged routing invalid: %v", err)
	}
	if cost.ReroutedNets == 0 {
		t.Fatal("no trunks jogged")
	}
	// Jogs cost almost nothing.
	if cost.Overhead() > 0.02 {
		t.Errorf("jog overhead %.2f%% too high", cost.Overhead()*100)
	}

	c0, err := split.NewChallenge(d, layer)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := split.NewChallenge(nd, layer)
	if err != nil {
		t.Fatal(err)
	}
	if len(c0.VPins) != len(c1.VPins) {
		t.Fatal("jog changed v-pin count")
	}
	// Count matched pairs with equal y before and after: trunk-endpoint
	// pairs (trunk = layer+1, horizontal) start aligned; jogs must
	// misalign most of them.
	countAligned := func(c *split.Challenge) int {
		n := 0
		for i := range c.VPins {
			v := &c.VPins[i]
			if v.Match > i && v.Pos.Y == c.VPins[v.Match].Pos.Y {
				n++
			}
		}
		return n
	}
	before, after := countAligned(c0), countAligned(c1)
	if after*2 > before {
		t.Errorf("aligned matched pairs %d -> %d; jogs did not break alignment", before, after)
	}
	// The FEOL view must stay consistent (fragment wirelength == W).
	if err := c1.FEOL().Validate(c1); err != nil {
		t.Fatalf("jogged FEOL inconsistent: %v", err)
	}
}

func TestJogTrunksDegradesAttack(t *testing.T) {
	all := designs(t)
	const layer = 6
	clean := make([]*split.Challenge, len(all))
	jogged := make([]*split.Challenge, len(all))
	for i, d := range all {
		var err error
		if clean[i], err = split.NewChallenge(d, layer); err != nil {
			t.Fatal(err)
		}
		nd, _, err := JogTrunks(d, layer, 4, 1.0, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		if jogged[i], err = split.NewChallenge(nd, layer); err != nil {
			t.Fatal(err)
		}
	}
	resClean, err := attack.Run(attack.Imp11(), clean)
	if err != nil {
		t.Fatal(err)
	}
	cfg := attack.Imp11()
	cfg.Name = "Imp-11-jogged"
	resJog, err := attack.Run(cfg, jogged)
	if err != nil {
		t.Fatal(err)
	}
	var a, b float64
	for i := range resClean.Evals {
		a += resClean.Evals[i].AccuracyAtK(5)
		b += resJog.Evals[i].AccuracyAtK(5)
	}
	if b >= a {
		t.Errorf("jogs did not degrade the attack: clean %.3f vs jogged %.3f", a/5, b/5)
	}
}

func TestJogTrunksInvalidParams(t *testing.T) {
	d := designs(t)[4]
	if _, _, err := JogTrunks(d, 6, 0, 0.5, 1); err == nil {
		t.Error("zero jog distance accepted")
	}
	if _, _, err := JogTrunks(d, 6, 2, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, _, err := JogTrunks(d, 8, 2, 1.1, 1); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if _, _, err := JogTrunks(d, 9, 2, 0.5, 1); err == nil {
		t.Error("split above top metal accepted")
	}
}

func TestJogTrunksLeavesOriginalUntouched(t *testing.T) {
	d := designs(t)[1]
	before := append([]route.Route(nil), d.Routing.Routes...)
	if _, _, err := JogTrunks(d, 6, 2, 1.0, 9); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i].TrunkB != d.Routing.Routes[i].TrunkB ||
			len(before[i].Segments) != len(d.Routing.Routes[i].Segments) {
			t.Fatalf("JogTrunks mutated the original design (net %d)", i)
		}
	}
}
