// Package obfuscate implements defender-side countermeasures against the
// machine-learning attack, at the layout level rather than as an abstract
// perturbation of the challenge:
//
//   - PerturbRoutes re-routes cut nets with amplified escape jitter and
//     detours — the "increase congestion so the router is forced onto less
//     straightforward routes" defence of the paper's §III-I, realised as an
//     actual re-route (cf. routing perturbation [14]).
//   - LiftNets promotes a fraction of shorter nets to higher trunk layers
//     ("wire lifting" [8]): the split then cuts more nets, diluting the
//     v-pin population and forcing the attacker to solve a larger problem.
//
// Every transform returns a new Design sharing the netlist and placement —
// only the routing differs — plus a Cost describing the overhead the
// defender pays.
package obfuscate

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/route"
)

// Cost quantifies what a defence costs the design.
type Cost struct {
	// ReroutedNets is the number of nets whose routing changed.
	ReroutedNets int
	// WirelengthBefore/After are total routed wirelengths.
	WirelengthBefore, WirelengthAfter int64
}

// Overhead returns the relative wirelength increase.
func (c Cost) Overhead() float64 {
	if c.WirelengthBefore == 0 {
		return 0
	}
	return float64(c.WirelengthAfter-c.WirelengthBefore) / float64(c.WirelengthBefore)
}

// PerturbRoutes re-routes every net whose trunk rises above the given split
// layer, with escape jitter scaled by jitterFactor and maximum detour
// probability. The trunk layers are unchanged, so the v-pin population
// stays the same size while every v-pin moves — the layout-level
// counterpart of the paper's Gaussian v-pin noise.
func PerturbRoutes(d *layout.Design, splitLayer int, jitterFactor float64, seed int64) (*layout.Design, Cost, error) {
	if jitterFactor <= 0 {
		return nil, Cost{}, fmt.Errorf("obfuscate: jitter factor must be positive, got %g", jitterFactor)
	}
	assign := map[int]int{}
	for i := range d.Routing.Routes {
		if d.Routing.Routes[i].TrunkLayer > splitLayer {
			assign[i] = d.Routing.Routes[i].TrunkLayer
		}
	}
	cfg := d.Routing.Cfg
	cfg.EscapeJitter *= jitterFactor
	cfg.DetourProb = 1.0
	return apply(d, assign, cfg, seed)
}

// LiftNets promotes up to frac of the nets with trunks in
// [fromLo, fromHi] by `up` layers (clamped to the top metal layer) and
// re-routes them. After lifting, a split immediately above fromHi cuts the
// lifted nets too.
func LiftNets(d *layout.Design, fromLo, fromHi, up int, frac float64, seed int64) (*layout.Design, Cost, error) {
	if fromLo < 2 || fromHi < fromLo || fromHi > route.NumMetal {
		return nil, Cost{}, fmt.Errorf("obfuscate: invalid lift range [%d, %d]", fromLo, fromHi)
	}
	if up <= 0 {
		return nil, Cost{}, fmt.Errorf("obfuscate: lift distance must be positive, got %d", up)
	}
	if frac <= 0 || frac > 1 {
		return nil, Cost{}, fmt.Errorf("obfuscate: lift fraction %g outside (0, 1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	assign := map[int]int{}
	for i := range d.Routing.Routes {
		t := d.Routing.Routes[i].TrunkLayer
		if t >= fromLo && t <= fromHi && rng.Float64() < frac {
			nt := t + up
			if nt > route.NumMetal {
				nt = route.NumMetal
			}
			assign[i] = nt
		}
	}
	return apply(d, assign, d.Routing.Cfg, seed+1)
}

// JogTrunks breaks the track-sharing invariant that makes splits directly
// below a trunk layer so leaky: for nets whose trunk sits exactly one
// metal above the split, the two v-pins are the trunk wire's endpoints and
// share its track coordinate exactly (DiffVpinY = 0 for a horizontal
// trunk). A short wrong-way jog *on the trunk layer itself* — legal,
// manufacturable detailed routing — displaces the sink-side endpoint by up
// to maxJogTracks track pitches, so matching v-pins no longer align. The
// jog is above the split and invisible to the attacker; only the moved
// v-pin and the slightly longer feeder are observable.
//
// This is the defence the attack's own feature ranking suggests: Gaussian
// v-pin noise (paper §III-I) is not manufacturable, and track-snapped
// re-routing leaves the alignment invariant intact (see PerturbRoutes);
// jogs attack the invariant directly at near-zero wirelength cost.
func JogTrunks(d *layout.Design, splitLayer int, maxJogTracks int, frac float64, seed int64) (*layout.Design, Cost, error) {
	if maxJogTracks <= 0 {
		return nil, Cost{}, fmt.Errorf("obfuscate: jog distance must be positive, got %d", maxJogTracks)
	}
	if frac <= 0 || frac > 1 {
		return nil, Cost{}, fmt.Errorf("obfuscate: jog fraction %g outside (0, 1]", frac)
	}
	trunk := splitLayer + 1
	if trunk > route.NumMetal {
		return nil, Cost{}, fmt.Errorf("obfuscate: no metal above split layer %d", splitLayer)
	}
	rng := rand.New(rand.NewSource(seed))
	die := d.Die()

	cost := Cost{WirelengthBefore: d.Routing.TotalWirelength()}
	routing := &route.Routing{
		Die:    d.Routing.Die,
		Routes: append([]route.Route(nil), d.Routing.Routes...),
		Demand: d.Routing.Demand,
		Cfg:    d.Routing.Cfg,
	}
	pitch := route.TrackPitch(trunk)
	for i := range routing.Routes {
		if routing.Routes[i].TrunkLayer != trunk || rng.Float64() >= frac {
			continue
		}
		if jogRoute(&routing.Routes[i], trunk, pitch, maxJogTracks, die, rng) {
			cost.ReroutedNets++
		}
	}
	cost.WirelengthAfter = routing.TotalWirelength()
	return &layout.Design{
		Name:      d.Name,
		Netlist:   d.Netlist,
		Placement: d.Placement,
		Routing:   routing,
	}, cost, nil
}

// jogRoute displaces the sink-side trunk endpoint of rt by a wrong-way jog
// on the trunk layer. It rewrites the route's geometry copy-on-write and
// reports whether a jog was applied.
func jogRoute(rt *route.Route, trunk int, pitch geom.Coord, maxJog int, die geom.Rect, rng *rand.Rand) bool {
	k := geom.Coord(1 + rng.Intn(maxJog))
	if rng.Intn(2) == 0 {
		k = -k
	}
	delta := k * pitch

	oldB := rt.TrunkB
	var newB geom.Point
	horizontal := route.LayerDir(trunk) == route.Horizontal
	if horizontal {
		newB = geom.Pt(oldB.X, oldB.Y+delta)
	} else {
		newB = geom.Pt(oldB.X+delta, oldB.Y)
	}
	if !newB.In(die) {
		return false
	}

	// Copy-on-write the geometry slices.
	segs := append([]route.Segment(nil), rt.Segments...)
	vias := append([]route.Via(nil), rt.Vias...)

	// Rebuild the sink feeder (layer trunk-1, side sink, endpoint oldB) to
	// start from newB, and move the trunk-end via.
	feeder := trunk - 1
	kept := segs[:0]
	for _, s := range segs {
		if s.Layer == feeder && s.Side == route.SinkSide && (s.A == oldB || s.B == oldB) {
			continue // old feeder; re-added below
		}
		kept = append(kept, s)
	}
	segs = kept
	if newB != rt.SinkEscape {
		a, b := newB, rt.SinkEscape
		if a.X > b.X || a.Y > b.Y {
			a, b = b, a
		}
		segs = append(segs, route.Segment{Layer: feeder, A: a, B: b, Side: route.SinkSide})
	}
	// The jog itself: a wrong-way wire on the trunk layer from the old
	// endpoint to the new one (above the split, invisible to the FEOL).
	ja, jb := oldB, newB
	if ja.X > jb.X || ja.Y > jb.Y {
		ja, jb = jb, ja
	}
	segs = append(segs, route.Segment{Layer: trunk, A: ja, B: jb, Side: route.SinkSide})

	for i := range vias {
		if vias[i].Layer == trunk-1 && vias[i].Side == route.SinkSide && vias[i].At == oldB {
			vias[i].At = newB
		}
	}

	rt.Segments = segs
	rt.Vias = vias
	rt.TrunkB = newB
	return true
}

// apply re-routes the assigned nets and assembles the obfuscated design.
func apply(d *layout.Design, assign map[int]int, cfg route.Config, seed int64) (*layout.Design, Cost, error) {
	cost := Cost{
		ReroutedNets:     len(assign),
		WirelengthBefore: d.Routing.TotalWirelength(),
	}
	rng := rand.New(rand.NewSource(seed))
	routing, err := d.Routing.Reroute(d.Netlist, d.Placement, assign, cfg, rng)
	if err != nil {
		return nil, Cost{}, err
	}
	cost.WirelengthAfter = routing.TotalWirelength()
	nd := &layout.Design{
		Name:      d.Name,
		Netlist:   d.Netlist,
		Placement: d.Placement,
		Routing:   routing,
	}
	return nd, cost, nil
}
