// Package geom provides the fixed-point geometric primitives used by the
// layout, routing, and attack packages: points, rectangles, Manhattan
// metrics, and spatial grids for density (congestion) queries.
//
// All coordinates are integer database units (DBU). One DBU corresponds to
// one nanometer in the synthetic technology used by this repository, but
// nothing in the package depends on the physical interpretation.
package geom

import "fmt"

// Coord is a layout coordinate in database units.
type Coord int64

// Abs returns the absolute value of c.
func (c Coord) Abs() Coord {
	if c < 0 {
		return -c
	}
	return c
}

// Point is a location on a layout plane.
type Point struct {
	X, Y Coord
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y Coord) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p translated by -q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Manhattan returns the L1 (rectilinear) distance between p and q. It is
// the minimum wirelength of any rectilinear route connecting the two points,
// which is why it appears throughout the attack's feature set.
func (p Point) Manhattan(q Point) Coord {
	return (p.X - q.X).Abs() + (p.Y - q.Y).Abs()
}

// Chebyshev returns the L∞ distance between p and q.
func (p Point) Chebyshev(q Point) Coord {
	dx := (p.X - q.X).Abs()
	dy := (p.Y - q.Y).Abs()
	if dx > dy {
		return dx
	}
	return dy
}

// In reports whether p lies inside r (inclusive of all edges).
func (p Point) In(r Rect) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Lo is the lower-left corner and Hi the
// upper-right corner; a Rect is well formed when Lo.X <= Hi.X and
// Lo.Y <= Hi.Y.
type Rect struct {
	Lo, Hi Point
}

// R is shorthand for a rectangle from (x0,y0) to (x1,y1), normalising the
// corner order.
func R(x0, y0, x1, y1 Coord) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Lo: Pt(x0, y0), Hi: Pt(x1, y1)}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() Coord { return r.Hi.X - r.Lo.X }

// Height returns the vertical extent of r.
func (r Rect) Height() Coord { return r.Hi.Y - r.Lo.Y }

// HalfPerimeter returns the half-perimeter wirelength (HPWL) of r, the
// standard lower bound on the wirelength of a net whose pins have bounding
// box r.
func (r Rect) HalfPerimeter() Coord { return r.Width() + r.Height() }

// Area returns the area of r in square database units.
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// Center returns the midpoint of r (rounded down).
func (r Rect) Center() Point {
	return Pt((r.Lo.X+r.Hi.X)/2, (r.Lo.Y+r.Hi.Y)/2)
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return s.Lo.In(r) && s.Hi.In(r)
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.Lo.X <= s.Hi.X && s.Lo.X <= r.Hi.X &&
		r.Lo.Y <= s.Hi.Y && s.Lo.Y <= r.Hi.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Lo: Pt(min(r.Lo.X, s.Lo.X), min(r.Lo.Y, s.Lo.Y)),
		Hi: Pt(max(r.Hi.X, s.Hi.X), max(r.Hi.Y, s.Hi.Y)),
	}
}

// Expand returns r grown by d on every side. A negative d shrinks the
// rectangle; the result is normalised so it stays well formed.
func (r Rect) Expand(d Coord) Rect {
	return R(r.Lo.X-d, r.Lo.Y-d, r.Hi.X+d, r.Hi.Y+d)
}

// ClampPoint returns the point of r nearest to p.
func (r Rect) ClampPoint(p Point) Point {
	return Pt(clamp(p.X, r.Lo.X, r.Hi.X), clamp(p.Y, r.Lo.Y, r.Hi.Y))
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("[%v %v]", r.Lo, r.Hi) }

// BoundingBox returns the smallest rectangle containing all pts. It panics
// when pts is empty, because an empty bounding box has no meaningful value.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of no points")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}

// Centroid returns the arithmetic mean of pts (rounded toward zero). It
// panics when pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of no points")
	}
	var sx, sy int64
	for _, p := range pts {
		sx += int64(p.X)
		sy += int64(p.Y)
	}
	n := int64(len(pts))
	return Pt(Coord(sx/n), Coord(sy/n))
}

func clamp(v, lo, hi Coord) Coord {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
