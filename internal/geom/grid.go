package geom

// Grid bins points of a layout plane into square tiles and answers density
// queries over tile neighbourhoods. The attack uses grids for the placement
// congestion (pin density) and routing congestion (v-pin density) features,
// and the router uses them for capacity bookkeeping.
type Grid struct {
	bounds Rect
	tile   Coord
	nx, ny int
	count  []int
	total  int
}

// NewGrid creates a grid covering bounds with square tiles of the given
// size. The tile size must be positive; the rightmost column and topmost row
// absorb any remainder of the bounds that does not divide evenly.
func NewGrid(bounds Rect, tile Coord) *Grid {
	if tile <= 0 {
		panic("geom: non-positive grid tile size")
	}
	nx := int(bounds.Width()/tile) + 1
	ny := int(bounds.Height()/tile) + 1
	return &Grid{
		bounds: bounds,
		tile:   tile,
		nx:     nx,
		ny:     ny,
		count:  make([]int, nx*ny),
	}
}

// Bounds returns the region covered by the grid.
func (g *Grid) Bounds() Rect { return g.bounds }

// TileSize returns the tile edge length.
func (g *Grid) TileSize() Coord { return g.tile }

// Dims returns the number of tiles in x and y.
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// Total returns the number of points added so far.
func (g *Grid) Total() int { return g.total }

func (g *Grid) tileOf(p Point) (int, int) {
	q := g.bounds.ClampPoint(p)
	ix := int((q.X - g.bounds.Lo.X) / g.tile)
	iy := int((q.Y - g.bounds.Lo.Y) / g.tile)
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return ix, iy
}

// Add records one point. Points outside the bounds are clamped to the
// nearest edge tile, so callers may pass slightly out-of-die coordinates
// (e.g. jittered v-pins) without special-casing.
func (g *Grid) Add(p Point) {
	ix, iy := g.tileOf(p)
	g.count[iy*g.nx+ix]++
	g.total++
}

// CountAt returns the number of points recorded in the tile containing p.
func (g *Grid) CountAt(p Point) int {
	ix, iy := g.tileOf(p)
	return g.count[iy*g.nx+ix]
}

// CountWindow returns the number of points in the (2*radius+1)² tile window
// centred on the tile containing p. A radius of 0 is the single tile.
func (g *Grid) CountWindow(p Point, radius int) int {
	ix, iy := g.tileOf(p)
	sum := 0
	for dy := -radius; dy <= radius; dy++ {
		y := iy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -radius; dx <= radius; dx++ {
			x := ix + dx
			if x < 0 || x >= g.nx {
				continue
			}
			sum += g.count[y*g.nx+x]
		}
	}
	return sum
}

// Density returns CountWindow normalised by the window area in tiles, i.e.
// points per tile. This is the congestion measurement used for the PC and RC
// features: a density around the neighbourhood of a pin or v-pin.
func (g *Grid) Density(p Point, radius int) float64 {
	n := 2*radius + 1
	return float64(g.CountWindow(p, radius)) / float64(n*n)
}
