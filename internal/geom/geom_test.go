package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordAbs(t *testing.T) {
	cases := []struct {
		in, want Coord
	}{{0, 0}, {5, 5}, {-5, 5}, {-1, 1}}
	for _, c := range cases {
		if got := c.in.Abs(); got != c.want {
			t.Errorf("Abs(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestManhattanBasic(t *testing.T) {
	if d := Pt(0, 0).Manhattan(Pt(3, 4)); d != 7 {
		t.Errorf("Manhattan = %d, want 7", d)
	}
	if d := Pt(-2, -2).Manhattan(Pt(2, 2)); d != 8 {
		t.Errorf("Manhattan = %d, want 8", d)
	}
}

func TestManhattanSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		a, b := Pt(Coord(ax), Coord(ay)), Pt(Coord(bx), Coord(by))
		return a.Manhattan(b) == b.Manhattan(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanIdentity(t *testing.T) {
	f := func(x, y int32) bool {
		p := Pt(Coord(x), Coord(y))
		return p.Manhattan(p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(Coord(ax), Coord(ay))
		b := Pt(Coord(bx), Coord(by))
		c := Pt(Coord(cx), Coord(cy))
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChebyshevLeqManhattan(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Pt(Coord(ax), Coord(ay))
		b := Pt(Coord(bx), Coord(by))
		return a.Chebyshev(b) <= a.Manhattan(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(ax, ay, bx, by int32) bool {
		a := Pt(Coord(ax), Coord(ay))
		b := Pt(Coord(bx), Coord(by))
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectNormalisation(t *testing.T) {
	r := R(10, 20, 0, 5)
	if r.Lo != Pt(0, 5) || r.Hi != Pt(10, 20) {
		t.Errorf("R did not normalise corners: %v", r)
	}
}

func TestRectMetrics(t *testing.T) {
	r := R(0, 0, 10, 4)
	if r.Width() != 10 || r.Height() != 4 {
		t.Errorf("Width/Height = %d/%d, want 10/4", r.Width(), r.Height())
	}
	if r.HalfPerimeter() != 14 {
		t.Errorf("HalfPerimeter = %d, want 14", r.HalfPerimeter())
	}
	if r.Area() != 40 {
		t.Errorf("Area = %d, want 40", r.Area())
	}
	if r.Center() != Pt(5, 2) {
		t.Errorf("Center = %v, want (5,2)", r.Center())
	}
}

func TestRectContainsAndIn(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !Pt(0, 0).In(r) || !Pt(10, 10).In(r) || !Pt(5, 5).In(r) {
		t.Error("edge and interior points must be In the rect")
	}
	if Pt(11, 5).In(r) || Pt(-1, 5).In(r) {
		t.Error("outside points must not be In the rect")
	}
	if !r.Contains(R(2, 2, 8, 8)) {
		t.Error("rect must contain interior rect")
	}
	if r.Contains(R(2, 2, 12, 8)) {
		t.Error("rect must not contain overflowing rect")
	}
}

func TestRectIntersects(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.Intersects(R(10, 10, 20, 20)) {
		t.Error("touching rects intersect")
	}
	if a.Intersects(R(11, 0, 20, 10)) {
		t.Error("disjoint rects must not intersect")
	}
	if !a.Intersects(R(5, 5, 6, 6)) {
		t.Error("contained rect intersects")
	}
}

func TestRectUnionCommutes(t *testing.T) {
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 int16) bool {
		a := R(Coord(a0), Coord(a1), Coord(a2), Coord(a3))
		b := R(Coord(b0), Coord(b1), Coord(b2), Coord(b3))
		u := a.Union(b)
		return u == b.Union(a) && u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(10, 10, 20, 20).Expand(5)
	if r != R(5, 5, 25, 25) {
		t.Errorf("Expand = %v", r)
	}
	shrunk := R(0, 0, 10, 10).Expand(-6)
	if shrunk.Width() < 0 || shrunk.Height() < 0 {
		t.Errorf("over-shrunk rect not normalised: %v", shrunk)
	}
}

func TestClampPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	cases := []struct{ in, want Point }{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(15, 25), Pt(10, 10)},
	}
	for _, c := range cases {
		if got := r.ClampPoint(c.in); got != c.want {
			t.Errorf("ClampPoint(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{Pt(3, 7), Pt(-1, 2), Pt(5, 0)}
	bb := BoundingBox(pts)
	if bb != R(-1, 0, 5, 7) {
		t.Errorf("BoundingBox = %v", bb)
	}
	for _, p := range pts {
		if !p.In(bb) {
			t.Errorf("point %v outside its bounding box", p)
		}
	}
}

func TestBoundingBoxPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BoundingBox(nil) should panic")
		}
	}()
	BoundingBox(nil)
}

func TestCentroid(t *testing.T) {
	c := Centroid([]Point{Pt(0, 0), Pt(10, 20)})
	if c != Pt(5, 10) {
		t.Errorf("Centroid = %v, want (5,10)", c)
	}
	single := Centroid([]Point{Pt(7, -3)})
	if single != Pt(7, -3) {
		t.Errorf("Centroid of one point = %v", single)
	}
}

func TestCentroidInsideBoundingBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(20)
		pts := make([]Point, n)
		for j := range pts {
			pts[j] = Pt(Coord(rng.Intn(1000)), Coord(rng.Intn(1000)))
		}
		c := Centroid(pts)
		if !c.In(BoundingBox(pts)) {
			t.Fatalf("centroid %v outside bbox %v", c, BoundingBox(pts))
		}
	}
}

func TestGridCounts(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	g.Add(Pt(5, 5))
	g.Add(Pt(6, 7))
	g.Add(Pt(95, 95))
	if g.Total() != 3 {
		t.Errorf("Total = %d, want 3", g.Total())
	}
	if got := g.CountAt(Pt(3, 3)); got != 2 {
		t.Errorf("CountAt(3,3) = %d, want 2", got)
	}
	if got := g.CountAt(Pt(99, 99)); got != 1 {
		t.Errorf("CountAt(99,99) = %d, want 1", got)
	}
	if got := g.CountAt(Pt(50, 50)); got != 0 {
		t.Errorf("CountAt(50,50) = %d, want 0", got)
	}
}

func TestGridWindow(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	// One point in each of the nine tiles around (50,50).
	for dx := Coord(-10); dx <= 10; dx += 10 {
		for dy := Coord(-10); dy <= 10; dy += 10 {
			g.Add(Pt(55+dx, 55+dy))
		}
	}
	if got := g.CountWindow(Pt(55, 55), 1); got != 9 {
		t.Errorf("CountWindow radius 1 = %d, want 9", got)
	}
	if got := g.CountWindow(Pt(55, 55), 0); got != 1 {
		t.Errorf("CountWindow radius 0 = %d, want 1", got)
	}
	if d := g.Density(Pt(55, 55), 1); d != 1.0 {
		t.Errorf("Density = %f, want 1.0", d)
	}
}

func TestGridClampsOutOfBounds(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	g.Add(Pt(-50, -50))
	g.Add(Pt(500, 500))
	if got := g.CountAt(Pt(0, 0)); got != 1 {
		t.Errorf("clamped low point count = %d, want 1", got)
	}
	if got := g.CountAt(Pt(100, 100)); got != 1 {
		t.Errorf("clamped high point count = %d, want 1", got)
	}
}

func TestGridWindowAtEdgeDoesNotPanic(t *testing.T) {
	g := NewGrid(R(0, 0, 100, 100), 10)
	g.Add(Pt(0, 0))
	if got := g.CountWindow(Pt(0, 0), 3); got != 1 {
		t.Errorf("edge window = %d, want 1", got)
	}
}

func TestNewGridPanicsOnBadTile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid with tile 0 should panic")
		}
	}()
	NewGrid(R(0, 0, 10, 10), 0)
}

func TestGridTotalMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGrid(R(0, 0, 1000, 1000), 37)
	n := 500
	for i := 0; i < n; i++ {
		g.Add(Pt(Coord(rng.Intn(1001)), Coord(rng.Intn(1001))))
	}
	nx, ny := g.Dims()
	if got := g.CountWindow(g.Bounds().Center(), nx+ny); got != n {
		t.Errorf("whole-grid window = %d, want %d", got, n)
	}
}
