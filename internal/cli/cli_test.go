package cli

import (
	"flag"
	"io"
	"testing"
)

// newTestApp builds an App on a ContinueOnError FlagSet so flag errors
// surface as errors instead of exiting the test binary.
func newTestApp(t *testing.T, name string) (*App, *flag.FlagSet) {
	t.Helper()
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return New(name, fs), fs
}

func TestNewRegistersSharedFlags(t *testing.T) {
	_, fs := newTestApp(t, "x")
	for _, name := range []string{
		"scale", "seed", "workers", "v", "log-format",
		"report", "metrics", "cpuprofile", "memprofile", "version",
		"serve-obs", "trace",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestParsePopulatesFields(t *testing.T) {
	app, _ := newTestApp(t, "x")
	o := app.Parse([]string{"-scale", "0.5", "-seed", "7", "-workers", "3"})
	if o != nil {
		t.Error("observability context is not nil without obs flags")
	}
	if app.Scale != 0.5 || app.Seed != 7 || app.Workers() != 3 {
		t.Errorf("parsed scale=%v seed=%v workers=%v, want 0.5 7 3",
			app.Scale, app.Seed, app.Workers())
	}
}

func TestParseDefaults(t *testing.T) {
	app, _ := newTestApp(t, "x")
	app.Parse(nil)
	if app.Scale != 1.0 || app.Seed != 1 || app.Workers() != 0 {
		t.Errorf("defaults scale=%v seed=%v workers=%v, want 1.0 1 0",
			app.Scale, app.Seed, app.Workers())
	}
}

func TestVersionExitsZero(t *testing.T) {
	app, _ := newTestApp(t, "x")
	code := captureExit(t, func() { app.Parse([]string{"-version"}) })
	if code != 0 {
		t.Errorf("-version exited %d, want 0", code)
	}
}

func TestBadLogFormatIsFatal(t *testing.T) {
	app, _ := newTestApp(t, "x")
	code := captureExit(t, func() { app.Parse([]string{"-v", "-log-format", "yaml"}) })
	if code != 1 {
		t.Errorf("bad -log-format exited %d, want 1", code)
	}
}

func TestFinishStampsSharedConfig(t *testing.T) {
	app, _ := newTestApp(t, "x")
	app.Parse([]string{"-scale", "2", "-seed", "9"})
	config := map[string]any{"seed": int64(42)} // command override wins
	app.Finish(nil, config, nil)
	if config["scale"] != 2.0 {
		t.Errorf("scale = %v, want 2.0", config["scale"])
	}
	if config["seed"] != int64(42) {
		t.Errorf("seed = %v, want the command's own 42", config["seed"])
	}
	if config["workers"] != 0 {
		t.Errorf("workers = %v, want 0", config["workers"])
	}
}

// captureExit runs fn with osExit replaced by a panic-based stub and
// reports the exit code fn requested; it fails the test if fn returns
// without exiting.
func captureExit(t *testing.T, fn func()) (code int) {
	t.Helper()
	type exitPanic struct{ code int }
	orig := osExit
	osExit = func(c int) { panic(exitPanic{c}) }
	defer func() {
		osExit = orig
		if r := recover(); r != nil {
			if ep, ok := r.(exitPanic); ok {
				code = ep.code
				return
			}
			panic(r)
		}
		t.Fatal("function returned without exiting")
	}()
	fn()
	return 0
}
