// Package cli holds the flag wiring shared by every command in cmd/: the
// -scale/-seed pair that parameterizes the synthetic suite, the obs.CLI
// observability bundle (-v, -workers, -report, -metrics, profiles,
// -version), and the exit-path plumbing around them. Commands add their own
// flags on the same FlagSet and call Parse once:
//
//	fs := flag.NewFlagSet("mycmd", flag.ExitOnError)
//	app := cli.New("mycmd", fs)
//	layer := fs.Int("layer", 8, "split layer")
//	o := app.Parse(os.Args[1:])
//	...
//	app.Finish(o, configMap, summaryMap)
package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// osExit is swapped out by tests that exercise the exit paths.
var osExit = os.Exit

// App is one command's shared flag state: the suite parameters plus the
// observability bundle, bound to the command's FlagSet.
type App struct {
	// Name is the command name, used for -version output and as the
	// observability report's command field.
	Name string
	// Tier, Scale, and Seed are the -tier/-scale/-seed values after Parse.
	Tier  string
	Scale float64
	Seed  int64
	// Obs is the observability flag bundle (verbose, workers, report,
	// metrics, profiles, version).
	Obs obs.CLI
	// ModelCache and ModelCacheDir are the -model-cache/-model-cache-dir
	// values after Parse: the in-memory capacity and optional on-disk
	// directory of the trained-artifact store built by ModelStore.
	ModelCache    int
	ModelCacheDir string
	// CheckpointDir is the -checkpoint-dir value after Parse: the sweep
	// checkpoint directory for per-fold partial results (resume after a
	// kill, shard across processes, merge deterministically). Empty
	// disables checkpointing.
	CheckpointDir string

	fs *flag.FlagSet
}

// New registers the shared flags on fs and returns the App bound to it.
// Command-specific flags are registered on the same fs afterwards.
func New(name string, fs *flag.FlagSet) *App {
	a := &App{Name: name, fs: fs}
	fs.StringVar(&a.Tier, "tier", layout.TierStandard,
		"benchmark suite tier: standard (five sb* designs) or industrial (three 100k+-cell sbx* designs)")
	fs.Float64Var(&a.Scale, "scale", 1.0, "benchmark suite scale factor")
	fs.Int64Var(&a.Seed, "seed", 1, "generation and attack seed")
	fs.IntVar(&a.ModelCache, "model-cache", 0,
		"in-memory trained-model cache capacity (0 = default)")
	fs.StringVar(&a.ModelCacheDir, "model-cache-dir", "",
		"on-disk trained-model cache directory; artifacts persist across runs (empty = memory only)")
	fs.StringVar(&a.CheckpointDir, "checkpoint-dir", "",
		"sweep checkpoint directory: per-fold partial results for resume, sharding, and merge (empty = off)")
	a.Obs.Register(fs)
	return a
}

// Checkpoint opens the sweep checkpoint implied by -checkpoint-dir, or nil
// when the flag is unset. Open errors terminate the process.
func (a *App) Checkpoint() *sweep.Checkpoint {
	if a.CheckpointDir == "" {
		return nil
	}
	ck, err := sweep.Open(a.CheckpointDir)
	if err != nil {
		Fatal(err)
	}
	return ck
}

// ModelStore builds the trained-artifact store implied by the
// -model-cache/-model-cache-dir flags: an in-memory LRU always, plus the
// on-disk layer when a directory was given, so repeated runs (and the job
// server's concurrent requests) train each spec exactly once. Results are
// bit-identical with or without the store.
func (a *App) ModelStore() *model.Store {
	return model.NewStore(a.ModelCache, a.ModelCacheDir)
}

// Parse parses args, handles -version (print and exit 0), and starts the
// observability context implied by the flags — nil when every observability
// feature is off. Flag and setup errors terminate the process.
func (a *App) Parse(args []string) *obs.Context {
	if err := a.fs.Parse(args); err != nil {
		// Only reachable under flag.ContinueOnError; ExitOnError FlagSets
		// have already exited.
		Fatal(err)
	}
	if a.Obs.ShowVersion {
		fmt.Println(a.Name, obs.Version())
		osExit(0)
	}
	o, err := a.Obs.Setup(a.Name)
	if err != nil {
		Fatal(err)
	}
	return o
}

// Workers is the parsed -workers value (0 = GOMAXPROCS).
func (a *App) Workers() int { return a.Obs.Workers }

// Finish runs the at-exit observability work (profiles, metrics dump, run
// report), stamping the shared scale/seed/workers values into the report's
// config block unless the command already set them. Errors terminate the
// process.
func (a *App) Finish(o *obs.Context, config, summary map[string]any) {
	if config == nil {
		config = map[string]any{}
	}
	for key, val := range map[string]any{
		"scale":   a.Scale,
		"seed":    a.Seed,
		"workers": a.Obs.Workers,
	} {
		if _, ok := config[key]; !ok {
			config[key] = val
		}
	}
	if err := a.Obs.Finish(o, config, summary); err != nil {
		Fatal(err)
	}
}

// Fatal prints err to stderr and exits 1.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	osExit(1)
}

// Usage prints a formatted usage error to stderr and exits 2, matching the
// flag package's convention for bad invocations.
func Usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	osExit(2)
}
