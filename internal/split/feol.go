package split

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/route"
)

// Fragment is one connected piece of FEOL wiring hanging off a v-pin: the
// geometry and standard-cell pins the untrusted foundry can trace below the
// split. This is the "gate-level description of the partially-connected
// network" of §II-A, from which all per-v-pin features derive.
type Fragment struct {
	// VPin is the ID of the v-pin this fragment terminates in.
	VPin int
	// Pins are the standard-cell pins reached by the fragment.
	Pins []netlist.PinRef
	// Segments and Vias are the visible below-split geometry.
	Segments []route.Segment
	Vias     []route.Via
}

// Wirelength returns the fragment's total routed length.
func (f *Fragment) Wirelength() (total int64) {
	for _, s := range f.Segments {
		total += int64(s.Len())
	}
	return total
}

// FEOLView is the attacker's complete view of a challenge: per-v-pin
// fragments for every cut net plus the nets that are entirely visible
// (routed at or below the split layer).
type FEOLView struct {
	SplitLayer int
	// Fragments is indexed by v-pin ID.
	Fragments []Fragment
	// CompleteNets lists the IDs of nets whose routing never rises above
	// the split layer; the foundry sees those connections in full.
	CompleteNets []int
}

// FEOL constructs the attacker-visible view of the challenge.
func (c *Challenge) FEOL() *FEOLView {
	d := c.Design
	view := &FEOLView{
		SplitLayer: c.SplitLayer,
		Fragments:  make([]Fragment, len(c.VPins)),
	}

	// Map (net, side) -> v-pin ID for fragment attribution.
	type key struct {
		net  int
		side route.Side
	}
	owner := make(map[key]int, len(c.VPins))
	for i := range c.VPins {
		v := &c.VPins[i]
		owner[key{v.Net, v.Side}] = v.ID
		view.Fragments[v.ID] = Fragment{VPin: v.ID}
	}

	for netID := range d.Netlist.Nets {
		rt := &d.Routing.Routes[netID]
		if rt.TrunkLayer <= c.SplitLayer {
			view.CompleteNets = append(view.CompleteNets, netID)
			continue
		}
		net := &d.Netlist.Nets[netID]
		// Below-split geometry belongs to the side's fragment.
		for _, s := range rt.Segments {
			if s.Layer > c.SplitLayer {
				continue
			}
			id := owner[key{netID, s.Side}]
			view.Fragments[id].Segments = append(view.Fragments[id].Segments, s)
		}
		for _, v := range rt.Vias {
			if v.Layer >= c.SplitLayer {
				continue // the split-layer via is the v-pin itself
			}
			id := owner[key{netID, v.Side}]
			view.Fragments[id].Vias = append(view.Fragments[id].Vias, v)
		}
		// Pins: the driver pin on the driver side, all sinks on the sink
		// side (this router connects every sink below the split).
		dID := owner[key{netID, route.DriverSide}]
		view.Fragments[dID].Pins = append(view.Fragments[dID].Pins, net.Driver)
		sID := owner[key{netID, route.SinkSide}]
		view.Fragments[sID].Pins = append(view.Fragments[sID].Pins, net.Sinks...)
	}
	return view
}

// Validate cross-checks the view against the challenge's per-v-pin
// features: every fragment must reach at least one pin, its geometry must
// stay at or below the split layer, and its wirelength must equal the
// v-pin's W feature.
func (view *FEOLView) Validate(c *Challenge) error {
	if len(view.Fragments) != len(c.VPins) {
		return fmt.Errorf("split: %d fragments for %d v-pins", len(view.Fragments), len(c.VPins))
	}
	for i := range view.Fragments {
		f := &view.Fragments[i]
		if f.VPin != i {
			return fmt.Errorf("split: fragment %d labelled %d", i, f.VPin)
		}
		if len(f.Pins) == 0 {
			return fmt.Errorf("split: fragment %d reaches no cell pins", i)
		}
		for _, s := range f.Segments {
			if s.Layer > view.SplitLayer {
				return fmt.Errorf("split: fragment %d has segment on M%d above split %d",
					i, s.Layer, view.SplitLayer)
			}
		}
		for _, v := range f.Vias {
			if v.Layer >= view.SplitLayer {
				return fmt.Errorf("split: fragment %d has via at layer %d not below split %d",
					i, v.Layer, view.SplitLayer)
			}
		}
		if got, want := f.Wirelength(), int64(c.VPins[i].Wirelength); got != want {
			return fmt.Errorf("split: fragment %d wirelength %d != v-pin W %d", i, got, want)
		}
	}
	seen := make(map[int]bool, len(view.CompleteNets))
	for _, n := range view.CompleteNets {
		if seen[n] {
			return fmt.Errorf("split: net %d listed complete twice", n)
		}
		seen[n] = true
		if c.Design.Routing.Routes[n].TrunkLayer > view.SplitLayer {
			return fmt.Errorf("split: cut net %d listed as complete", n)
		}
	}
	if len(view.CompleteNets)+c.CutNets() != len(c.Design.Netlist.Nets) {
		return fmt.Errorf("split: %d complete + %d cut != %d nets",
			len(view.CompleteNets), c.CutNets(), len(c.Design.Netlist.Nets))
	}
	return nil
}
