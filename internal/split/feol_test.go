package split

import (
	"testing"

	"repro/internal/route"
)

func TestFEOLViewValidates(t *testing.T) {
	for _, layer := range []int{4, 6, 8} {
		c := challenge(t, layer)
		view := c.FEOL()
		if err := view.Validate(c); err != nil {
			t.Fatalf("layer %d: %v", layer, err)
		}
	}
}

func TestFEOLFragmentSides(t *testing.T) {
	c := challenge(t, 6)
	view := c.FEOL()
	nl := c.Design.Netlist
	for i := range view.Fragments {
		f := &view.Fragments[i]
		v := &c.VPins[i]
		if v.Side == route.DriverSide {
			if len(f.Pins) != 1 {
				t.Fatalf("driver fragment %d reaches %d pins, want 1", i, len(f.Pins))
			}
			if nl.PinDef(f.Pins[0]).Dir.String() != "output" {
				t.Fatalf("driver fragment %d ends in non-output pin", i)
			}
		} else {
			for _, p := range f.Pins {
				if nl.PinDef(p).Dir.String() != "input" {
					t.Fatalf("sink fragment %d reaches an output pin", i)
				}
			}
			if len(f.Pins) != len(nl.Nets[v.Net].Sinks) {
				t.Fatalf("sink fragment %d reaches %d pins, want %d",
					i, len(f.Pins), len(nl.Nets[v.Net].Sinks))
			}
		}
	}
}

func TestFEOLCompleteNetsShrinkWithLowerSplit(t *testing.T) {
	// A lower split hides more: fewer nets remain completely visible.
	n8 := len(challenge(t, 8).FEOL().CompleteNets)
	n6 := len(challenge(t, 6).FEOL().CompleteNets)
	n4 := len(challenge(t, 4).FEOL().CompleteNets)
	if !(n4 < n6 && n6 < n8) {
		t.Errorf("complete-net counts 4/6/8 = %d/%d/%d not increasing with split height", n4, n6, n8)
	}
}

func TestFEOLValidateCatchesCorruption(t *testing.T) {
	c := challenge(t, 6)
	view := c.FEOL()

	mutate := func(mut func(v *FEOLView)) error {
		cp := &FEOLView{
			SplitLayer:   view.SplitLayer,
			Fragments:    append([]Fragment(nil), view.Fragments...),
			CompleteNets: append([]int(nil), view.CompleteNets...),
		}
		mut(cp)
		return cp.Validate(c)
	}

	if err := mutate(func(v *FEOLView) { v.Fragments[0].Pins = nil }); err == nil {
		t.Error("pinless fragment not caught")
	}
	if err := mutate(func(v *FEOLView) { v.Fragments = v.Fragments[:len(v.Fragments)-1] }); err == nil {
		t.Error("missing fragment not caught")
	}
	if err := mutate(func(v *FEOLView) { v.CompleteNets[0] = c.VPins[0].Net }); err == nil {
		t.Error("cut net listed complete not caught")
	}
	if err := mutate(func(v *FEOLView) {
		f := v.Fragments[0]
		// Zero-length so the wirelength check stays satisfied; the layer
		// check must still reject it.
		f.Segments = append(append([]route.Segment(nil), f.Segments...),
			route.Segment{Layer: 9, A: c.VPins[0].Pos, B: c.VPins[0].Pos})
		v.Fragments[0] = f
	}); err == nil {
		t.Error("above-split segment not caught")
	}
	if err := mutate(func(v *FEOLView) {
		f := v.Fragments[0]
		f.Vias = append(append([]route.Via(nil), f.Vias...),
			route.Via{Layer: v.SplitLayer, At: c.VPins[0].Pos})
		v.Fragments[0] = f
	}); err == nil {
		t.Error("split-layer via inside fragment not caught")
	}
}
