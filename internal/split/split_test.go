package split

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/route"
)

// testDesign caches one generated design for all tests in this package.
var (
	testDesignOnce sync.Once
	testDesignVal  *layout.Design
)

func testDesign(t *testing.T) *layout.Design {
	t.Helper()
	testDesignOnce.Do(func() {
		p := layout.SuiteProfiles(layout.SuiteConfig{Scale: 0.25, Seed: 11})[0]
		d, err := layout.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		testDesignVal = d
	})
	if testDesignVal == nil {
		t.Fatal("design generation failed earlier")
	}
	return testDesignVal
}

func challenge(t *testing.T, splitLayer int) *Challenge {
	t.Helper()
	c, err := NewChallenge(testDesign(t), splitLayer)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVPinCountMatchesCutNets(t *testing.T) {
	d := testDesign(t)
	for _, s := range []int{4, 6, 8} {
		c := challenge(t, s)
		wantCut := 0
		for i := range d.Routing.Routes {
			if d.Routing.Routes[i].TrunkLayer > s {
				wantCut++
			}
		}
		if c.CutNets() != wantCut {
			t.Errorf("split %d: CutNets = %d, want %d", s, c.CutNets(), wantCut)
		}
		if len(c.VPins) != 2*wantCut {
			t.Errorf("split %d: %d v-pins, want %d", s, len(c.VPins), 2*wantCut)
		}
	}
}

func TestVPinPopulationGrowsDownward(t *testing.T) {
	n8 := len(challenge(t, 8).VPins)
	n6 := len(challenge(t, 6).VPins)
	n4 := len(challenge(t, 4).VPins)
	if !(n4 > n6 && n6 > n8) {
		t.Errorf("v-pin counts 4/6/8 = %d/%d/%d not decreasing with higher split", n4, n6, n8)
	}
}

func TestMatchIsInvolution(t *testing.T) {
	c := challenge(t, 6)
	for i := range c.VPins {
		v := &c.VPins[i]
		m := &c.VPins[v.Match]
		if m.Match != v.ID {
			t.Fatalf("v-pin %d: match %d does not point back", v.ID, v.Match)
		}
		if m.Net != v.Net {
			t.Fatalf("v-pin %d matched across nets %d vs %d", v.ID, v.Net, m.Net)
		}
		if m.Side == v.Side {
			t.Fatalf("v-pin %d matched to same side", v.ID)
		}
	}
}

func TestTopLayerMatchesShareY(t *testing.T) {
	// At split layer 8 only the horizontal M9 remains above the split, so
	// every truly matching pair must have DiffVpinY = 0 (paper §III-G).
	c := challenge(t, 8)
	for i := range c.VPins {
		v := &c.VPins[i]
		m := &c.VPins[v.Match]
		if v.Pos.Y != m.Pos.Y {
			t.Fatalf("split 8: matching pair (%d,%d) has DiffVpinY = %d",
				v.ID, m.ID, (v.Pos.Y - m.Pos.Y).Abs())
		}
	}
}

func TestLowerLayerMatchesUseBothDirections(t *testing.T) {
	// At split 6, nets with trunks on M8/M9 are cut at their escape
	// stacks, so some matching pairs must have non-zero DiffVpinY.
	c := challenge(t, 6)
	nonzero := 0
	for i := range c.VPins {
		v := &c.VPins[i]
		if v.Pos.Y != c.VPins[v.Match].Pos.Y {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("split 6: all matches have DiffVpinY = 0; lower-layer cuts should not be single-direction")
	}
}

func TestSideAreas(t *testing.T) {
	c := challenge(t, 6)
	for i := range c.VPins {
		v := &c.VPins[i]
		if v.Side == route.DriverSide {
			if v.OutArea <= 0 || v.InArea != 0 {
				t.Fatalf("driver-side v-pin %d has In/Out = %f/%f", v.ID, v.InArea, v.OutArea)
			}
		} else {
			if v.InArea <= 0 || v.OutArea != 0 {
				t.Fatalf("sink-side v-pin %d has In/Out = %f/%f", v.ID, v.InArea, v.OutArea)
			}
		}
	}
}

func TestLegalPair(t *testing.T) {
	c := challenge(t, 8)
	var driver, sink *VPin
	for i := range c.VPins {
		if c.VPins[i].IsDriverSide() {
			driver = &c.VPins[i]
		} else {
			sink = &c.VPins[i]
		}
		if driver != nil && sink != nil {
			break
		}
	}
	if !LegalPair(driver, sink) || !LegalPair(sink, driver) {
		t.Error("driver-sink pair must be legal")
	}
	if !LegalPair(sink, sink) {
		t.Error("sink-sink pair is legal (both could be loads of one driver fragment)")
	}
	if LegalPair(driver, driver) {
		t.Error("driver-driver pair must be illegal")
	}
}

func TestWirelengthNonNegativeAndPlausible(t *testing.T) {
	c := challenge(t, 6)
	for i := range c.VPins {
		v := &c.VPins[i]
		if v.Wirelength < 0 {
			t.Fatalf("v-pin %d negative wirelength", v.ID)
		}
	}
}

func TestVPinsInsideDie(t *testing.T) {
	for _, s := range []int{4, 6, 8} {
		c := challenge(t, s)
		die := c.Design.Die()
		for i := range c.VPins {
			if !c.VPins[i].Pos.In(die) {
				t.Fatalf("split %d: v-pin %d at %v outside die", s, i, c.VPins[i].Pos)
			}
		}
	}
}

func TestCongestionMeasuresFinite(t *testing.T) {
	c := challenge(t, 6)
	for i := range c.VPins {
		v := &c.VPins[i]
		if pc := c.PC(v); pc < 0 {
			t.Fatalf("negative PC for v-pin %d", v.ID)
		}
		if rc := c.RC(v); rc < 0 {
			t.Fatalf("negative RC for v-pin %d", v.ID)
		}
	}
	// RC must see at least the v-pin itself.
	v := &c.VPins[0]
	if c.RC(v) == 0 {
		t.Error("RC at an existing v-pin should be positive")
	}
}

func TestNewChallengeRejectsBadLayer(t *testing.T) {
	d := testDesign(t)
	for _, s := range []int{0, -1, route.NumVia + 1} {
		if _, err := NewChallenge(d, s); err == nil {
			t.Errorf("split layer %d accepted", s)
		}
	}
}

func TestWithNoiseDisplacesOnlyY(t *testing.T) {
	c := challenge(t, 6)
	rng := rand.New(rand.NewSource(5))
	nc := c.WithNoise(0.01, rng)
	if len(nc.VPins) != len(c.VPins) {
		t.Fatal("noise changed v-pin count")
	}
	moved := 0
	for i := range c.VPins {
		if nc.VPins[i].Pos.X != c.VPins[i].Pos.X {
			t.Fatalf("v-pin %d x changed under y-noise", i)
		}
		if nc.VPins[i].Pos.Y != c.VPins[i].Pos.Y {
			moved++
		}
		if nc.VPins[i].Match != c.VPins[i].Match {
			t.Fatalf("v-pin %d ground truth changed under noise", i)
		}
	}
	if moved < len(c.VPins)/2 {
		t.Errorf("only %d/%d v-pins moved under 1%% noise", moved, len(c.VPins))
	}
	// Original challenge must be untouched.
	if c.VPins[0].Pos != challenge(t, 6).VPins[0].Pos {
		t.Error("WithNoise mutated the original challenge")
	}
}

func TestWithNoiseZeroSD(t *testing.T) {
	c := challenge(t, 6)
	rng := rand.New(rand.NewSource(6))
	nc := c.WithNoise(0, rng)
	for i := range c.VPins {
		if nc.VPins[i].Pos != c.VPins[i].Pos {
			t.Fatalf("v-pin %d moved under zero noise", i)
		}
	}
}

func TestSummary(t *testing.T) {
	c := challenge(t, 8)
	s := c.Summary()
	if s.Design != c.Design.Name || s.SplitLayer != 8 {
		t.Error("summary identity fields wrong")
	}
	if s.VPins != len(c.VPins) || s.CutNets != len(c.VPins)/2 {
		t.Error("summary counts wrong")
	}
	if s.MeanMatchDist <= 0 {
		t.Error("mean match distance should be positive")
	}
}

func TestEveryFragmentReachesPins(t *testing.T) {
	// The paper's model: each v-pin connects through its FEOL fragment to
	// one or more standard-cell pins; PinLoc must be inside the die.
	c := challenge(t, 4)
	die := c.Design.Die()
	for i := range c.VPins {
		if !c.VPins[i].PinLoc.In(die) {
			t.Fatalf("v-pin %d PinLoc %v outside die", i, c.VPins[i].PinLoc)
		}
	}
}
