// Package split generates split-manufacturing challenge instances: given a
// placed-and-routed design and a split (via) layer, it computes the FEOL
// view an untrusted foundry would receive — the v-pins where nets are cut,
// each with the layout quantities observable below the split — together
// with the hidden ground-truth matching used to train and score attacks.
package split

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/route"
)

// VPin is a virtual pin: the via at the split layer where a cut net leaves
// the FEOL. All fields except Match are observable by the attacker.
type VPin struct {
	// ID indexes the v-pin within its challenge.
	ID int
	// Pos is the v-pin location on the split layer: (vx, vy).
	Pos geom.Point
	// PinLoc is where the v-pin connects on the placement layer: (px, py).
	// When the route fragment reaches multiple standard-cell pins, this is
	// the average of their locations (paper §III-A).
	PinLoc geom.Point
	// Wirelength is W: the routed length of the FEOL fragment hanging off
	// this v-pin.
	Wirelength geom.Coord
	// InArea is the summed area of cells reached through an input pin;
	// OutArea through an output pin. At most one of the two is non-zero in
	// this model (a fragment is either the driver side or the sink side).
	InArea, OutArea float64
	// Net and Side are ground-truth provenance, retained for analysis; the
	// attack itself must only use them via Match-based labels.
	Net  int
	Side route.Side
	// Match is the ID of the v-pin this one truly connects to above the
	// split. It is the label the attack tries to recover.
	Match int
}

// IsDriverSide reports whether the fragment ends in the net's output pin.
func (v *VPin) IsDriverSide() bool { return v.OutArea > 0 }

// Challenge is one design cut at one split layer.
type Challenge struct {
	Design     *layout.Design
	SplitLayer int
	VPins      []VPin

	pinGrid  *geom.Grid // all standard-cell pin locations (PC source)
	vpinGrid *geom.Grid // v-pin locations on the split layer (RC source)
}

// congestionRadius is the tile-window radius used for the PC and RC
// density measurements.
const congestionRadius = 1

// NewChallengeObs is NewChallenge with a span, a debug log line, and a
// challenge counter on an observability context (nil disables them).
func NewChallengeObs(o *obs.Context, d *layout.Design, splitLayer int) (*Challenge, error) {
	sp := o.Begin("split.challenge", obs.F("design", d.Name), obs.F("layer", splitLayer))
	ch, err := NewChallenge(d, splitLayer)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("vpins", len(ch.VPins))
	sp.End()
	o.Metrics().Counter("split.challenges").Inc()
	o.Log().Debug("challenge cut", "design", d.Name, "layer", splitLayer, "vpins", len(ch.VPins))
	return ch, nil
}

// NewChallenge cuts the design at the given via layer (1..route.NumVia) and
// extracts all v-pins. Split layers 4, 6 and 8 are the ones studied in the
// paper, but any via layer is accepted.
func NewChallenge(d *layout.Design, splitLayer int) (*Challenge, error) {
	if splitLayer < 1 || splitLayer > route.NumVia {
		return nil, fmt.Errorf("split: via layer %d out of range 1..%d", splitLayer, route.NumVia)
	}
	c := &Challenge{Design: d, SplitLayer: splitLayer}

	nl := d.Netlist
	pl := d.Placement
	for netID := range nl.Nets {
		rt := &d.Routing.Routes[netID]
		if rt.TrunkLayer <= splitLayer {
			continue // net fully inside the FEOL; nothing is cut
		}
		net := &nl.Nets[netID]

		// V-pin positions: at the trunk-end vias when the split sits just
		// below the trunk, otherwise at the via-stack escape points.
		var posA, posB geom.Point
		if splitLayer == rt.TrunkLayer-1 {
			posA, posB = rt.TrunkA, rt.TrunkB
		} else {
			posA, posB = rt.DriverEscape, rt.SinkEscape
		}

		driverLoc := pl.PinLocation(nl, net.Driver)
		sinkPts := make([]geom.Point, len(net.Sinks))
		var inArea float64
		for i, s := range net.Sinks {
			sinkPts[i] = pl.PinLocation(nl, s)
			inArea += nl.Kind(s.Cell).Area()
		}
		outArea := nl.Kind(net.Driver.Cell).Area()

		idA := len(c.VPins)
		idB := idA + 1
		c.VPins = append(c.VPins,
			VPin{
				ID: idA, Pos: posA, PinLoc: driverLoc,
				Wirelength: rt.WirelengthBelow(splitLayer, route.DriverSide),
				OutArea:    outArea,
				Net:        netID, Side: route.DriverSide, Match: idB,
			},
			VPin{
				ID: idB, Pos: posB, PinLoc: geom.Centroid(sinkPts),
				Wirelength: rt.WirelengthBelow(splitLayer, route.SinkSide),
				InArea:     inArea,
				Net:        netID, Side: route.SinkSide, Match: idA,
			},
		)
	}
	if len(c.VPins) == 0 {
		return nil, fmt.Errorf("split: no nets cut at via layer %d in %s", splitLayer, d.Name)
	}
	c.buildGrids()
	return c, nil
}

// buildGrids prepares the congestion measurement grids.
func (c *Challenge) buildGrids() {
	die := c.Design.Die()
	tile := die.Width() / 48
	if tile <= 0 {
		tile = 1
	}
	c.pinGrid = geom.NewGrid(die, tile)
	nl := c.Design.Netlist
	pl := c.Design.Placement
	for _, cl := range nl.Cells {
		for pin := range cl.Kind.Pins {
			c.pinGrid.Add(pl.PinLocation(nl, netlist.PinRef{Cell: cl.ID, Pin: pin}))
		}
	}
	c.vpinGrid = geom.NewGrid(die, tile)
	for i := range c.VPins {
		c.vpinGrid.Add(c.VPins[i].Pos)
	}
}

// PC returns the placement congestion of v: the density of standard-cell
// pins around the placement-layer point the v-pin connects to.
func (c *Challenge) PC(v *VPin) float64 {
	return c.pinGrid.Density(v.PinLoc, congestionRadius)
}

// RC returns the routing congestion of v: the density of v-pins around v on
// the split layer.
func (c *Challenge) RC(v *VPin) float64 {
	return c.vpinGrid.Density(v.Pos, congestionRadius)
}

// LegalPair reports whether (a, b) could be the two sides of one net: two
// driver-side fragments would connect two output pins, which is
// electrically illegal and excluded from training and testing (paper
// footnotes 1 and 2).
func LegalPair(a, b *VPin) bool {
	return !(a.IsDriverSide() && b.IsDriverSide())
}

// WithNoise returns a copy of the challenge in which every v-pin's
// y-coordinate is displaced by Gaussian noise with standard deviation
// sd*dieHeight, modelling routing obfuscation (paper §III-I). The RC grid
// is rebuilt from the noised positions; ground truth is unchanged.
func (c *Challenge) WithNoise(sd float64, rng *rand.Rand) *Challenge {
	die := c.Design.Die()
	sigma := sd * float64(die.Height())
	nc := &Challenge{
		Design:     c.Design,
		SplitLayer: c.SplitLayer,
		VPins:      append([]VPin(nil), c.VPins...),
		pinGrid:    c.pinGrid, // placement layer is untouched by the noise
	}
	for i := range nc.VPins {
		y := nc.VPins[i].Pos.Y + geom.Coord(rng.NormFloat64()*sigma)
		nc.VPins[i].Pos = die.ClampPoint(geom.Pt(nc.VPins[i].Pos.X, y))
	}
	tile := die.Width() / 48
	if tile <= 0 {
		tile = 1
	}
	nc.vpinGrid = geom.NewGrid(die, tile)
	for i := range nc.VPins {
		nc.vpinGrid.Add(nc.VPins[i].Pos)
	}
	return nc
}

// Restrict returns a copy of the challenge containing only the listed
// v-pins (in the given order), re-IDed 0..len(ids)-1. A v-pin whose true
// partner is not in ids gets Match = -1, producing the degenerate
// instances (single-sided nets, singleton v-pin sets) that exercise the
// pair pipeline's edge cases. The RC grid is rebuilt from the restricted
// set; the placement grid is shared with the original.
func (c *Challenge) Restrict(ids []int) *Challenge {
	remap := make(map[int]int, len(ids))
	for newID, oldID := range ids {
		remap[oldID] = newID
	}
	nc := &Challenge{
		Design:     c.Design,
		SplitLayer: c.SplitLayer,
		VPins:      make([]VPin, len(ids)),
		pinGrid:    c.pinGrid,
	}
	for newID, oldID := range ids {
		v := c.VPins[oldID]
		v.ID = newID
		if m, ok := remap[v.Match]; ok {
			v.Match = m
		} else {
			v.Match = -1
		}
		nc.VPins[newID] = v
	}
	die := c.Design.Die()
	tile := die.Width() / 48
	if tile <= 0 {
		tile = 1
	}
	nc.vpinGrid = geom.NewGrid(die, tile)
	for i := range nc.VPins {
		nc.vpinGrid.Add(nc.VPins[i].Pos)
	}
	return nc
}

// CutNets returns the number of nets cut at the split layer.
func (c *Challenge) CutNets() int { return len(c.VPins) / 2 }

// Stats summarises a challenge for reporting.
type Stats struct {
	Design     string
	SplitLayer int
	VPins      int
	CutNets    int
	// MeanMatchDist is the mean ManhattanVpin distance of true matches.
	MeanMatchDist float64
}

// Summary computes challenge statistics.
func (c *Challenge) Summary() Stats {
	var sum float64
	n := 0
	for i := range c.VPins {
		v := &c.VPins[i]
		if v.Side != route.DriverSide {
			continue
		}
		sum += float64(v.Pos.Manhattan(c.VPins[v.Match].Pos))
		n++
	}
	s := Stats{
		Design:     c.Design.Name,
		SplitLayer: c.SplitLayer,
		VPins:      len(c.VPins),
		CutNets:    c.CutNets(),
	}
	if n > 0 {
		s.MeanMatchDist = sum / float64(n)
	}
	return s
}
