package attack

import (
	"math/rand"
	"testing"

	"repro/internal/split"
)

// synthEval builds a small hand-crafted Evaluation for deterministic unit
// tests of the metrics and the proximity pick.
func synthEval() *Evaluation {
	// 4 v-pins; truth pairs (0,1) and (2,3).
	return &Evaluation{
		ConfigName: "synth",
		Design:     "synth",
		N:          4,
		Truth:      []int32{1, 0, 3, 2},
		TruthP:     []float32{0.9, 0.9, 0.4, -1},
		Cands: [][]Candidate{
			{{Other: 1, P: 0.9, D: 100}, {Other: 2, P: 0.8, D: 50}, {Other: 3, P: 0.1, D: 300}},
			{{Other: 0, P: 0.9, D: 100}, {Other: 3, P: 0.2, D: 80}},
			{{Other: 1, P: 0.7, D: 40}, {Other: 3, P: 0.4, D: 120}},
			nil, // v-pin 3: nothing scored (e.g. filtered out)
		},
	}
}

func TestSynthAccuracy(t *testing.T) {
	ev := synthEval()
	// k=1: v0 truth ranked 1st (hit), v1 truth 1st (hit), v2 truth 2nd
	// (miss), v3 unscored (miss) => 0.5.
	if acc := ev.AccuracyAtK(1); acc != 0.5 {
		t.Errorf("AccuracyAtK(1) = %f, want 0.5", acc)
	}
	// k=2: v2's truth now included => 0.75. v3 can never hit.
	if acc := ev.AccuracyAtK(2); acc != 0.75 {
		t.Errorf("AccuracyAtK(2) = %f, want 0.75", acc)
	}
	if acc := ev.MaxAccuracy(); acc != 0.75 {
		t.Errorf("MaxAccuracy = %f, want 0.75", acc)
	}
}

func TestSynthMeanLoC(t *testing.T) {
	ev := synthEval()
	if loc := ev.MeanLoC(0.5); loc != (2+1+1+0)/4.0 {
		t.Errorf("MeanLoC(0.5) = %f", loc)
	}
	if loc := ev.MeanLoC(0.0); loc != (3+2+2+0)/4.0 {
		t.Errorf("MeanLoC(0) = %f", loc)
	}
}

func TestSynthLoCForAccuracy(t *testing.T) {
	ev := synthEval()
	if loc := ev.LoCForAccuracy(0.5); loc != 1 {
		t.Errorf("LoCForAccuracy(0.5) = %f, want 1", loc)
	}
	if loc := ev.LoCForAccuracy(0.75); loc != 2 {
		t.Errorf("LoCForAccuracy(0.75) = %f, want 2", loc)
	}
	if loc := ev.LoCForAccuracy(0.9); loc != -1 {
		t.Errorf("LoCForAccuracy(0.9) = %f, want -1 (unreachable)", loc)
	}
}

func TestSynthTieHandling(t *testing.T) {
	// Truth ties with two other candidates at p=0.5; with k=1 the truth
	// occupies one of three equally likely slots.
	ev := &Evaluation{
		N:      1,
		Truth:  []int32{1},
		TruthP: []float32{0.5},
		Cands: [][]Candidate{
			{{Other: 1, P: 0.5, D: 10}, {Other: 2, P: 0.5, D: 20}, {Other: 3, P: 0.5, D: 30}},
		},
	}
	if acc := ev.AccuracyAtK(1); acc < 0.333 || acc > 0.334 {
		t.Errorf("tied AccuracyAtK(1) = %f, want 1/3", acc)
	}
	if acc := ev.AccuracyAtK(3); acc != 1 {
		t.Errorf("tied AccuracyAtK(3) = %f, want 1", acc)
	}
}

func TestProximityPickNearest(t *testing.T) {
	ev := synthEval()
	rng := rand.New(rand.NewSource(1))
	// v0 with k=3: candidates at D 100/50/300; nearest is Other=2.
	pick, ok := ev.proximityPick(0, 3, rng)
	if !ok || pick != 2 {
		t.Errorf("pick = %d/%v, want 2", pick, ok)
	}
	// v0 with k=1: only the top-p candidate (truth, D=100).
	pick, ok = ev.proximityPick(0, 1, rng)
	if !ok || pick != 1 {
		t.Errorf("pick@k1 = %d/%v, want 1", pick, ok)
	}
	// v3 has no candidates.
	if _, ok := ev.proximityPick(3, 5, rng); ok {
		t.Error("pick on empty candidate list should fail")
	}
}

func TestProximityPickDistanceTie(t *testing.T) {
	// Two candidates at the same distance: the higher-p one wins.
	ev := &Evaluation{
		N:     1,
		Truth: []int32{2},
		Cands: [][]Candidate{
			{{Other: 1, P: 0.9, D: 10}, {Other: 2, P: 0.5, D: 10}},
		},
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		pick, ok := ev.proximityPick(0, 2, rng)
		if !ok || pick != 1 {
			t.Fatalf("distance tie must resolve to higher p, got %d", pick)
		}
	}
}

func TestProximityPickFullTieIsRandom(t *testing.T) {
	ev := &Evaluation{
		N:     1,
		Truth: []int32{2},
		Cands: [][]Candidate{
			{{Other: 1, P: 0.5, D: 10}, {Other: 2, P: 0.5, D: 10}},
		},
	}
	rng := rand.New(rand.NewSource(3))
	seen := map[int32]int{}
	for i := 0; i < 200; i++ {
		pick, ok := ev.proximityPick(0, 2, rng)
		if !ok {
			t.Fatal("pick failed")
		}
		seen[pick]++
	}
	if seen[1] == 0 || seen[2] == 0 {
		t.Errorf("full tie not randomised: %v", seen)
	}
}

func TestProximitySuccessBounds(t *testing.T) {
	res := run(t, Imp9(), 8)
	rng := rand.New(rand.NewSource(4))
	for _, ev := range res.Evals {
		for _, f := range []float64{0.001, 0.01, 0.1} {
			s := ev.ProximitySuccess(f, rng)
			if s < 0 || s > 1 {
				t.Fatalf("PA success %.3f out of range", s)
			}
			if s > ev.MaxAccuracy()+1e-9 {
				t.Fatalf("PA success %.3f exceeds max accuracy %.3f", s, ev.MaxAccuracy())
			}
		}
	}
}

func TestRunProximityOutcomes(t *testing.T) {
	chs := challenges(t, 8)
	outcomes, err := RunProximity(Imp9(), chs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(chs) {
		t.Fatalf("%d outcomes for %d designs", len(outcomes), len(chs))
	}
	grid := map[float64]bool{}
	for _, f := range DefaultPAFractions() {
		grid[f] = true
	}
	for _, o := range outcomes {
		if o.Success < 0 || o.Success > 1 || o.FixedSuccess < 0 || o.FixedSuccess > 1 {
			t.Errorf("%s: PA rates out of range: %+v", o.Design, o)
		}
		if !grid[o.BestFrac] {
			t.Errorf("%s: BestFrac %f not from the validation grid", o.Design, o.BestFrac)
		}
	}
}

func TestRunProximityRejectsBadInput(t *testing.T) {
	chs := challenges(t, 8)
	if _, err := RunProximity(Imp9(), chs[:1]); err == nil {
		t.Error("single design accepted")
	}
}

func TestObfuscationNoiseHurtsAttack(t *testing.T) {
	// Gaussian y-noise on the v-pins (design obfuscation, §III-I) must
	// degrade the attack: lower aggregate accuracy at a fixed LoC size.
	chs := challenges(t, 6)
	rng := rand.New(rand.NewSource(7))
	noised := make([]*split.Challenge, len(chs))
	for i, ch := range chs {
		noised[i] = ch.WithNoise(0.015, rng)
	}
	clean := run(t, Imp11(), 6)
	cfg := Imp11()
	cfg.Name = "Imp-11-noise"
	noisy, err := Run(cfg, noised)
	if err != nil {
		t.Fatal(err)
	}
	var cleanAcc, noisyAcc float64
	for i := range clean.Evals {
		cleanAcc += clean.Evals[i].AccuracyAtK(10)
		noisyAcc += noisy.Evals[i].AccuracyAtK(10)
	}
	if noisyAcc >= cleanAcc {
		t.Errorf("noise did not hurt: clean %.3f vs noisy %.3f", cleanAcc/5, noisyAcc/5)
	}
}
