package attack

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
)

// TrainSpec returns the model spec the leave-one-out run for the held-out
// design at index target would train, plus the neighborhood radius it
// derives from the training designs. `splitattack train` feeds the spec to
// model.Train and ships the artifact; a later RunTargetArtifact with the
// same configuration, instances, and seed accepts it.
func TrainSpec(cfg Config, insts []*Instance, target int) (model.Spec, float64, error) {
	_, spec, radiusNorm, err := targetSpec(cfg, insts, target)
	return spec, radiusNorm, err
}

// targetSpec validates the run request and builds the target's training
// spec alongside the defaults-applied configuration.
func targetSpec(cfg Config, insts []*Instance, target int) (Config, model.Spec, float64, error) {
	cfg, err := prepareRun(cfg, insts)
	if err != nil {
		return cfg, model.Spec{}, 0, err
	}
	if target < 0 || target >= len(insts) {
		return cfg, model.Spec{}, 0, fmt.Errorf("attack: target %d out of range 0..%d", target, len(insts)-1)
	}
	trainInsts := others(insts, target)
	radiusNorm := -1.0
	if cfg.Neighborhood {
		radiusNorm = NeighborRadiusNorm(trainInsts, cfg.NeighborQuantile)
	}
	return cfg, cfg.trainSpec(trainInsts, target, radiusNorm, nil), radiusNorm, nil
}

// RunTargetArtifact scores the held-out design at index target with a
// pre-trained artifact instead of training in-process. The artifact's spec
// hash must match the spec this run would train — same designs,
// configuration, seed, and fold — which pins the result to be bit-identical
// to RunTargetInstances' evaluation (training durations aside, since no
// training happens here).
func RunTargetArtifact(cfg Config, insts []*Instance, target int, art *model.Artifact) (*Evaluation, float64, error) {
	cfg, spec, radiusNorm, err := targetSpec(cfg, insts, target)
	if err != nil {
		return nil, 0, err
	}
	if h := spec.Hash(); h != art.Meta.SpecHash {
		return nil, 0, fmt.Errorf("attack: artifact %.12s (config %s, seed %d) does not match this run's spec %.12s (config %s, target %s, seed %d): train and attack must agree on designs, configuration, and seed",
			art.Meta.SpecHash, art.Meta.Config, art.Meta.Seed,
			h, cfg.Name, insts[target].Ch.Design.Name, cfg.Seed)
	}
	o := cfg.Obs
	sp := o.Begin("target", obs.F("design", insts[target].Ch.Design.Name),
		obs.F("artifact", art.Meta.SpecHash))
	scsp := sp.Begin("scoring")
	ev := scoreTarget(art.Scorer(), insts[target], cfg, radiusNorm)
	scsp.SetAttr("pairs", ev.PairsScored)
	scsp.End()
	sp.SetAttr("test_ns", int64(ev.TestDur))
	sp.SetAttr("vpins", ev.N)
	sp.End()
	o.Metrics().Counter("attack.targets").Inc()
	o.Metrics().Counter("attack.pairs.scored").Add(ev.PairsScored)
	return ev, radiusNorm, nil
}
