package attack

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/split"
)

// Result is the outcome of one leave-one-out attack run: one Evaluation per
// design, each produced by a model trained on the other designs.
type Result struct {
	Config Config
	Evals  []*Evaluation
	// RadiusNorm[i] is the neighborhood radius (fraction of die width)
	// used when design i was the target; -1 without the Imp improvement.
	RadiusNorm []float64
	TotalDur   time.Duration
}

// MeanTrainDur and MeanTestDur average the per-target phase durations.
func (r *Result) MeanTrainDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TrainDur })
}

// MeanTestDur averages the per-target scoring durations.
func (r *Result) MeanTestDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TestDur })
}

func (r *Result) meanDur(f func(*Evaluation) time.Duration) time.Duration {
	if len(r.Evals) == 0 {
		return 0
	}
	var sum time.Duration
	for _, e := range r.Evals {
		sum += f(e)
	}
	return sum / time.Duration(len(r.Evals))
}

// NewInstances prepares challenges for attack runs.
func NewInstances(chs []*split.Challenge) []*Instance {
	insts := make([]*Instance, len(chs))
	for i, ch := range chs {
		insts[i] = NewInstance(ch)
	}
	return insts
}

// Run executes the full leave-one-out cross-validation attack of §III-C:
// for every challenge, a model is trained on all other challenges and used
// to score the held-out one. All challenges must be cuts at the same split
// layer.
func Run(cfg Config, chs []*split.Challenge) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(chs) < 2 {
		return nil, fmt.Errorf("attack: leave-one-out needs at least 2 designs, got %d", len(chs))
	}
	for _, ch := range chs[1:] {
		if ch.SplitLayer != chs[0].SplitLayer {
			return nil, fmt.Errorf("attack: mixed split layers %d and %d", chs[0].SplitLayer, ch.SplitLayer)
		}
	}
	start := time.Now()
	insts := NewInstances(chs)
	res := &Result{
		Config:     cfg,
		Evals:      make([]*Evaluation, len(insts)),
		RadiusNorm: make([]float64, len(insts)),
	}
	for target := range insts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(target)*7919))
		ev, radius, err := runTarget(cfg, insts, target, rng)
		if err != nil {
			return nil, err
		}
		res.Evals[target] = ev
		res.RadiusNorm[target] = radius
	}
	res.TotalDur = time.Since(start)
	return res, nil
}

// others returns insts without the element at target.
func others(insts []*Instance, target int) []*Instance {
	out := make([]*Instance, 0, len(insts)-1)
	for i, inst := range insts {
		if i != target {
			out = append(out, inst)
		}
	}
	return out
}

// trainModel trains the configuration's classifier: the Bagging ensemble by
// default, or a custom Learner when one is set.
func trainModel(cfg Config, ds *ml.Dataset, rng *rand.Rand) (Scorer, error) {
	if cfg.Learner != nil {
		return cfg.Learner(ds, cfg, rng)
	}
	return ml.TrainBagging(ds, cfg.NumTrees, baseTreeOptions(cfg), rng)
}

func baseTreeOptions(cfg Config) ml.TreeOptions {
	opts := ml.TreeOptions{Kind: cfg.BaseKind, Features: cfg.Features}
	if cfg.BaseKind == ml.RandomTree {
		opts.MinLeaf = 1 // Weka RandomTree default
	}
	return opts
}

// runTarget trains on all instances except target and scores target.
func runTarget(cfg Config, insts []*Instance, target int, rng *rand.Rand) (*Evaluation, float64, error) {
	trainInsts := others(insts, target)
	radiusNorm := -1.0
	if cfg.Neighborhood {
		radiusNorm = NeighborRadiusNorm(trainInsts, cfg.NeighborQuantile)
	}

	t0 := time.Now()
	ds := TrainingSet(cfg, trainInsts, radiusNorm, nil, rng)
	model, err := trainModel(cfg, ds, rng)
	if err != nil {
		return nil, 0, fmt.Errorf("attack: %s: %w", cfg.Name, err)
	}
	var sc Scorer = model
	if cfg.TwoLevel {
		level2, err := trainLevel2(cfg, trainInsts, model, radiusNorm, rng)
		if err != nil {
			return nil, 0, err
		}
		sc = &twoLevelScorer{l1: model, l2: level2}
	}
	trainDur := time.Since(t0)

	ev := scoreTarget(sc, insts[target], cfg, radiusNorm)
	ev.TrainDur = trainDur
	return ev, radiusNorm, nil
}

// ScoreWithTrainingSet trains a model on a caller-provided training set and
// scores the target instance with it. It exposes the engine's internals for
// ablation studies (custom sampling schemes); normal attacks should use Run.
func ScoreWithTrainingSet(cfg Config, ds *ml.Dataset, target *Instance, radiusNorm float64, rng *rand.Rand) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := trainModel(cfg, ds, rng)
	if err != nil {
		return nil, err
	}
	return scoreTarget(model, target, cfg, radiusNorm), nil
}

// trainLevel2 implements two-level pruning (§III-E): the level-1 model is
// applied to the training designs themselves; every v-pin's level-1 LoC
// (threshold 0.5) supplies one "high-quality" negative — a candidate the
// level-1 model could not reject — and the level-2 model is trained on
// these negatives plus all positives.
func trainLevel2(cfg Config, trainInsts []*Instance, l1 Scorer, radiusNorm float64, rng *rand.Rand) (Scorer, error) {
	ds := &ml.Dataset{}
	for _, inst := range trainInsts {
		filter := newPairFilter(inst, cfg, radiusNorm)
		ev := scoreTarget(l1, inst, cfg, radiusNorm)
		for a := 0; a < inst.N(); a++ {
			m := inst.Match(a)
			if filter.admits(a, m) {
				row := make([]float64, features.NumFeatures)
				inst.Ex.Pair(a, m, row)
				ds.Add(row, true)
			}
			// Collect the level-1 LoC of a (p >= 0.5, excluding the truth)
			// and sample one high-quality negative from it.
			cands := ev.Cands[a]
			loc := cands[:0:0]
			for _, c := range cands {
				if c.P < 0.5 {
					break // sorted descending
				}
				if int(c.Other) != m {
					loc = append(loc, c)
				}
			}
			if len(loc) == 0 {
				continue
			}
			pick := loc[rng.Intn(len(loc))]
			row := make([]float64, features.NumFeatures)
			inst.Ex.Pair(a, int(pick.Other), row)
			ds.Add(row, false)
		}
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("attack: two-level pruning produced no training samples")
	}
	return trainModel(cfg, ds, rng)
}

// twoLevelScorer composes the two pruning levels: pairs the level-1 model
// rejects (p1 < 0.5) are excluded outright (scored -1, below every
// threshold); surviving pairs are scored by the level-2 model.
type twoLevelScorer struct {
	l1, l2 Scorer
}

// Prob implements Scorer with the two-level composition.
func (s *twoLevelScorer) Prob(x []float64) float64 {
	if s.l1.Prob(x) < 0.5 {
		return -1
	}
	return s.l2.Prob(x)
}
