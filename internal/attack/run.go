package attack

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/split"
)

// Result is the outcome of one leave-one-out attack run: one Evaluation per
// design, each produced by a model trained on the other designs.
type Result struct {
	Config Config
	Evals  []*Evaluation
	// RadiusNorm[i] is the neighborhood radius (fraction of die width)
	// used when design i was the target; -1 without the Imp improvement.
	RadiusNorm []float64
	TotalDur   time.Duration
}

// MeanTrainDur and MeanTestDur average the per-target phase durations.
func (r *Result) MeanTrainDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TrainDur })
}

// MeanTestDur averages the per-target scoring durations.
func (r *Result) MeanTestDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TestDur })
}

func (r *Result) meanDur(f func(*Evaluation) time.Duration) time.Duration {
	if len(r.Evals) == 0 {
		return 0
	}
	var sum time.Duration
	for _, e := range r.Evals {
		sum += f(e)
	}
	return sum / time.Duration(len(r.Evals))
}

// NewInstances prepares challenges for attack runs.
func NewInstances(chs []*split.Challenge) []*Instance {
	insts := make([]*Instance, len(chs))
	for i, ch := range chs {
		insts[i] = NewInstance(ch)
	}
	return insts
}

// prepareRun applies defaults and validates a leave-one-out run request.
func prepareRun(cfg Config, chs []*split.Challenge) (Config, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if len(chs) < 2 {
		return cfg, fmt.Errorf("attack: leave-one-out needs at least 2 designs, got %d", len(chs))
	}
	for _, ch := range chs[1:] {
		if ch.SplitLayer != chs[0].SplitLayer {
			return cfg, fmt.Errorf("attack: mixed split layers %d and %d", chs[0].SplitLayer, ch.SplitLayer)
		}
	}
	return cfg, nil
}

// Run executes the full leave-one-out cross-validation attack of §III-C:
// for every challenge, a model is trained on all other challenges and used
// to score the held-out one. All challenges must be cuts at the same split
// layer.
func Run(cfg Config, chs []*split.Challenge) (*Result, error) {
	cfg, err := prepareRun(cfg, chs)
	if err != nil {
		return nil, err
	}
	o := cfg.Obs
	sp := o.Begin("attack.run", obs.F("config", cfg.Name),
		obs.F("layer", chs[0].SplitLayer), obs.F("designs", len(chs)))
	defer sp.End()
	start := time.Now()
	insts := NewInstances(chs)
	res := &Result{
		Config:     cfg,
		Evals:      make([]*Evaluation, len(insts)),
		RadiusNorm: make([]float64, len(insts)),
	}
	for target := range insts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(target)*7919))
		ev, radius, err := runTarget(cfg, insts, target, rng, sp)
		if err != nil {
			return nil, err
		}
		res.Evals[target] = ev
		res.RadiusNorm[target] = radius
	}
	res.TotalDur = time.Since(start)
	return res, nil
}

// RunTarget runs the leave-one-out attack for the single held-out design at
// index target: one model is trained on every other challenge and scores
// only the target, skipping the len(chs)-1 sibling runs Run would perform.
// It returns the target's evaluation and the neighborhood radius used (as a
// fraction of die width; -1 without the Imp improvement). The evaluation is
// identical to Run(cfg, chs).Evals[target]: per-target randomness is
// derived from cfg.Seed and the target index alone.
func RunTarget(cfg Config, chs []*split.Challenge, target int) (*Evaluation, float64, error) {
	cfg, err := prepareRun(cfg, chs)
	if err != nil {
		return nil, 0, err
	}
	if target < 0 || target >= len(chs) {
		return nil, 0, fmt.Errorf("attack: target %d out of range 0..%d", target, len(chs)-1)
	}
	o := cfg.Obs
	o.Log().Info("single-target attack: skipping sibling leave-one-out runs",
		"config", cfg.Name, "target", chs[target].Design.Name, "targets_skipped", len(chs)-1)
	insts := NewInstances(chs)
	rng := rand.New(rand.NewSource(cfg.Seed + int64(target)*7919))
	return runTarget(cfg, insts, target, rng, nil)
}

// others returns insts without the element at target.
func others(insts []*Instance, target int) []*Instance {
	out := make([]*Instance, 0, len(insts)-1)
	for i, inst := range insts {
		if i != target {
			out = append(out, inst)
		}
	}
	return out
}

// trainModel trains the configuration's classifier: the Bagging ensemble by
// default, or a custom Learner when one is set.
func trainModel(cfg Config, ds *ml.Dataset, rng *rand.Rand) (Scorer, error) {
	if cfg.Learner != nil {
		return cfg.Learner(ds, cfg, rng)
	}
	return ml.TrainBaggingObs(cfg.Obs, ds, cfg.NumTrees, baseTreeOptions(cfg), rng)
}

func baseTreeOptions(cfg Config) ml.TreeOptions {
	opts := ml.TreeOptions{Kind: cfg.BaseKind, Features: cfg.Features}
	if cfg.BaseKind == ml.RandomTree {
		opts.MinLeaf = 1 // Weka RandomTree default
	}
	return opts
}

// runTarget trains on all instances except target and scores target. The
// span for the target nests under parent when one is given (Run's root
// span), else at the context's root (RunTarget).
func runTarget(cfg Config, insts []*Instance, target int, rng *rand.Rand, parent *obs.Span) (*Evaluation, float64, error) {
	o := cfg.Obs
	sp := o.BeginUnder(parent, "target", obs.F("design", insts[target].Ch.Design.Name))
	trainInsts := others(insts, target)
	radiusNorm := -1.0
	if cfg.Neighborhood {
		radiusNorm = NeighborRadiusNorm(trainInsts, cfg.NeighborQuantile)
		sp.SetAttr("radius_norm", radiusNorm)
	}

	t0 := time.Now()
	ssp := sp.Begin("sampling")
	ds := TrainingSet(cfg, trainInsts, radiusNorm, nil, rng)
	tSample := time.Now()
	ssp.SetAttr("samples", ds.Len())
	ssp.End()

	l1sp := sp.Begin("train-level1", obs.F("samples", ds.Len()), obs.F("trees", cfg.NumTrees))
	model, err := trainModel(cfg, ds, rng)
	tLevel1 := time.Now()
	l1sp.End()
	if err != nil {
		sp.End()
		return nil, 0, fmt.Errorf("attack: %s: %w", cfg.Name, err)
	}
	var sc Scorer = model
	tLevel2 := tLevel1
	if cfg.TwoLevel {
		l2sp := sp.Begin("train-level2")
		level2, err := trainLevel2(cfg, trainInsts, model, radiusNorm, rng)
		tLevel2 = time.Now()
		l2sp.End()
		if err != nil {
			sp.End()
			return nil, 0, err
		}
		sc = &twoLevelScorer{l1: model, l2: level2}
	}
	trainDur := time.Since(t0)

	scsp := sp.Begin("scoring")
	ev := scoreTarget(sc, insts[target], cfg, radiusNorm)
	scsp.SetAttr("pairs", ev.PairsScored)
	scsp.End()
	ev.TrainDur = trainDur
	ev.Phases.Sampling = tSample.Sub(t0)
	ev.Phases.Level1 = tLevel1.Sub(tSample)
	ev.Phases.Level2 = tLevel2.Sub(tLevel1)
	sp.SetAttr("train_ns", int64(ev.TrainDur))
	sp.SetAttr("test_ns", int64(ev.TestDur))
	sp.SetAttr("vpins", ev.N)
	sp.End()
	o.Metrics().Counter("attack.targets").Inc()
	o.Metrics().Counter("attack.pairs.scored").Add(ev.PairsScored)
	return ev, radiusNorm, nil
}

// ScoreWithTrainingSet trains a model on a caller-provided training set and
// scores the target instance with it. It exposes the engine's internals for
// ablation studies (custom sampling schemes); normal attacks should use Run.
func ScoreWithTrainingSet(cfg Config, ds *ml.Dataset, target *Instance, radiusNorm float64, rng *rand.Rand) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := trainModel(cfg, ds, rng)
	if err != nil {
		return nil, err
	}
	return scoreTarget(model, target, cfg, radiusNorm), nil
}

// trainLevel2 implements two-level pruning (§III-E): the level-1 model is
// applied to the training designs themselves; every v-pin's level-1 LoC
// (threshold 0.5) supplies one "high-quality" negative — a candidate the
// level-1 model could not reject — and the level-2 model is trained on
// these negatives plus all positives.
func trainLevel2(cfg Config, trainInsts []*Instance, l1 Scorer, radiusNorm float64, rng *rand.Rand) (Scorer, error) {
	ds := &ml.Dataset{}
	for _, inst := range trainInsts {
		filter := newPairFilter(inst, cfg, radiusNorm)
		ev := scoreTarget(l1, inst, cfg, radiusNorm)
		for a := 0; a < inst.N(); a++ {
			m := inst.Match(a)
			if filter.admits(a, m) {
				row := make([]float64, features.NumFeatures)
				inst.Ex.Pair(a, m, row)
				ds.Add(row, true)
			}
			// Collect the level-1 LoC of a (p >= 0.5, excluding the truth)
			// and sample one high-quality negative from it.
			cands := ev.Cands[a]
			loc := cands[:0:0]
			for _, c := range cands {
				if c.P < 0.5 {
					break // sorted descending
				}
				if int(c.Other) != m {
					loc = append(loc, c)
				}
			}
			if len(loc) == 0 {
				continue
			}
			pick := loc[rng.Intn(len(loc))]
			row := make([]float64, features.NumFeatures)
			inst.Ex.Pair(a, int(pick.Other), row)
			ds.Add(row, false)
		}
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("attack: two-level pruning produced no training samples")
	}
	return trainModel(cfg, ds, rng)
}

// twoLevelScorer composes the two pruning levels: pairs the level-1 model
// rejects (p1 < 0.5) are excluded outright (scored -1, below every
// threshold); surviving pairs are scored by the level-2 model.
type twoLevelScorer struct {
	l1, l2 Scorer
}

// Prob implements Scorer with the two-level composition.
func (s *twoLevelScorer) Prob(x []float64) float64 {
	if s.l1.Prob(x) < 0.5 {
		return -1
	}
	return s.l2.Prob(x)
}
