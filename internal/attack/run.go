package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/split"
)

// Stream units name the independent random streams a target consumes.
// Every stream is derived as rng.Derive(cfg.Seed, unit, target, index...),
// so a unit's draws depend only on the seed and its coordinates — never on
// what other units consumed or on which worker ran them. The training
// units 1–4 moved to the model package with the train stage
// (model.UnitSampling .. model.UnitLevel2Model); the proximity-attack
// units stay here with their explicit historical values. Renumbering any
// unit changes every downstream result; treat them like the golden values
// in internal/rng.
const (
	unitPA      int64 = 5 // proximity-attack validation split
	unitPAModel int64 = 6 // proximity-attack model training (per tree)
)

// Result is the outcome of one leave-one-out attack run: one Evaluation per
// design, each produced by a model trained on the other designs.
type Result struct {
	Config Config
	// Evals[i] is the evaluation with design i held out. When Run returns
	// a partial result alongside an error, entries for failed targets are
	// nil.
	Evals []*Evaluation
	// RadiusNorm[i] is the neighborhood radius (fraction of die width)
	// used when design i was the target; -1 without the Imp improvement.
	RadiusNorm []float64
	TotalDur   time.Duration
}

// MeanTrainDur and MeanTestDur average the per-target phase durations.
func (r *Result) MeanTrainDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TrainDur })
}

// MeanTestDur averages the per-target scoring durations.
func (r *Result) MeanTestDur() time.Duration {
	return r.meanDur(func(e *Evaluation) time.Duration { return e.TestDur })
}

func (r *Result) meanDur(f func(*Evaluation) time.Duration) time.Duration {
	n := 0
	var sum time.Duration
	for _, e := range r.Evals {
		if e == nil {
			continue
		}
		sum += f(e)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// NewInstances prepares challenges for attack runs, building the feature
// extractors and spatial indexes of all designs in parallel (GOMAXPROCS
// workers). Use NewInstancesWorkers to bound the fan-out explicitly.
func NewInstances(chs []*split.Challenge) []*Instance {
	return pairs.NewAll(chs, 0)
}

// NewInstancesWorkers is NewInstances bounded to the given worker count
// (<= 0 selects GOMAXPROCS). Instance construction is per-design
// deterministic, so the result is identical at any worker count.
func NewInstancesWorkers(chs []*split.Challenge, workers int) []*Instance {
	return pairs.NewAll(chs, workers)
}

// prepareRun applies defaults and validates a leave-one-out run request.
func prepareRun(cfg Config, insts []*Instance) (Config, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	if len(insts) < 2 {
		return cfg, fmt.Errorf("attack: leave-one-out needs at least 2 designs, got %d", len(insts))
	}
	for _, inst := range insts[1:] {
		if inst.Ch.SplitLayer != insts[0].Ch.SplitLayer {
			return cfg, fmt.Errorf("attack: mixed split layers %d and %d",
				insts[0].Ch.SplitLayer, inst.Ch.SplitLayer)
		}
	}
	return cfg, nil
}

// Run executes the full leave-one-out cross-validation attack of §III-C:
// for every challenge, a model is trained on all other challenges and used
// to score the held-out one. All challenges must be cuts at the same split
// layer.
//
// Targets run concurrently on cfg.Workers goroutines (0 = GOMAXPROCS).
// Each target's randomness is an independent stream derived from cfg.Seed
// and the target index (see internal/rng), so the result is bit-identical
// at every worker count, including 1.
//
// A failing target does not abort its siblings: Run finishes every target
// and, when some failed, returns the partial Result — nil Evals entries
// and RadiusNorm -1 for the failures — together with the joined per-target
// errors.
func Run(cfg Config, chs []*split.Challenge) (*Result, error) {
	return RunInstances(cfg, NewInstancesWorkers(chs, cfg.Workers))
}

// RunInstances is Run on already-prepared instances, letting callers that
// run several configurations over the same challenges (experiment sweeps)
// pay the extractor/index construction cost once. Instances are read-only
// during the run and may be shared between concurrent runs.
func RunInstances(cfg Config, insts []*Instance) (*Result, error) {
	cfg, err := prepareRun(cfg, insts)
	if err != nil {
		return nil, err
	}
	o := cfg.Obs
	workers := cfg.workerCount(len(insts))
	sp := o.Begin("attack.run", obs.F("config", cfg.Name),
		obs.F("layer", insts[0].Ch.SplitLayer), obs.F("designs", len(insts)),
		obs.F("workers", workers))
	defer sp.End()
	// Live progress over targets: done/total, rate, and ETA land in the
	// progress gauges and the /progress endpoint while the run executes.
	prog := o.NewProgress(fmt.Sprintf("attack.%s.L%d", cfg.Name, insts[0].Ch.SplitLayer),
		int64(len(insts)))
	defer prog.Finish()
	start := time.Now()
	res := &Result{
		Config:     cfg,
		Evals:      make([]*Evaluation, len(insts)),
		RadiusNorm: make([]float64, len(insts)),
	}
	errs := make([]error, len(insts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			done := o.Metrics().Counter(fmt.Sprintf("attack.worker.%d.targets", worker))
			for {
				target := int(next.Add(1)) - 1
				if target >= len(insts) {
					return
				}
				res.RadiusNorm[target] = -1
				ev, radius, err := runTarget(cfg, insts, target, worker, sp)
				prog.Add(1)
				if err != nil {
					errs[target] = err
					continue
				}
				res.Evals[target] = ev
				res.RadiusNorm[target] = radius
				done.Inc()
			}
		}(w)
	}
	wg.Wait()
	res.TotalDur = time.Since(start)
	if err := errors.Join(errs...); err != nil {
		failed := 0
		for _, e := range errs {
			if e != nil {
				failed++
			}
		}
		return res, fmt.Errorf("attack: %s: %d of %d targets failed: %w",
			cfg.Name, failed, len(insts), err)
	}
	return res, nil
}

// RunTarget runs the leave-one-out attack for the single held-out design at
// index target: one model is trained on every other challenge and scores
// only the target, skipping the len(chs)-1 sibling runs Run would perform.
// It returns the target's evaluation and the neighborhood radius used (as a
// fraction of die width; -1 without the Imp improvement). The evaluation is
// identical to Run(cfg, chs).Evals[target] at any worker count: every
// random stream the target consumes is derived from cfg.Seed, a stream
// unit, and the target index alone (see internal/rng).
func RunTarget(cfg Config, chs []*split.Challenge, target int) (*Evaluation, float64, error) {
	return RunTargetInstances(cfg, NewInstancesWorkers(chs, cfg.Workers), target)
}

// RunTargetInstances is RunTarget on already-prepared instances.
func RunTargetInstances(cfg Config, insts []*Instance, target int) (*Evaluation, float64, error) {
	if cfg.Obs != nil && target >= 0 && target < len(insts) {
		cfg.Obs.Log().Info("single-target attack: skipping sibling leave-one-out runs",
			"config", cfg.Name, "target", insts[target].Ch.Design.Name, "targets_skipped", len(insts)-1)
	}
	return RunFoldInstances(cfg, insts, target)
}

// RunFoldInstances is the fold primitive of the sweep layer: it runs exactly
// one leave-one-out fold — train on every instance except target, score
// target — and returns the fold's evaluation and neighborhood radius. It is
// RunTargetInstances without the single-target framing: bit-identical to
// RunInstances(cfg, insts).Evals[target] at any worker count, which is what
// lets a full leave-one-out run be decomposed into independently scheduled
// (and independently checkpointed) fold units and recombined exactly.
func RunFoldInstances(cfg Config, insts []*Instance, target int) (*Evaluation, float64, error) {
	cfg, err := prepareRun(cfg, insts)
	if err != nil {
		return nil, 0, err
	}
	if target < 0 || target >= len(insts) {
		return nil, 0, fmt.Errorf("attack: target %d out of range 0..%d", target, len(insts)-1)
	}
	return runTarget(cfg, insts, target, 0, nil)
}

// others returns insts without the element at target.
func others(insts []*Instance, target int) []*Instance {
	out := make([]*Instance, 0, len(insts)-1)
	for i, inst := range insts {
		if i != target {
			out = append(out, inst)
		}
	}
	return out
}

// trainModel trains the configuration's classifier through its learner
// family, consuming the single shared rng sequentially. It is the legacy
// sequential path kept for ScoreWithTrainingSet, whose callers own their
// rng; the engine itself trains through the model package (see model.Train).
func trainModel(cfg Config, ds *ml.Dataset, r *rand.Rand) (Scorer, error) {
	fam, err := model.FamilyByName(cfg.Family)
	if err != nil {
		return nil, err
	}
	return fam.TrainSeq(cfg.Obs, cfg.TrainOptions().WithDefaults(), ds, r)
}

// trainModelUnit trains the configuration's classifier from streams derived
// from (cfg.Seed, unit, target): the family draws every random decision
// through TrainContext.Rng — the Bagging ensemble trains tree t in parallel
// on stream (cfg.Seed, unit, target, t) and compiles into its flat-arena
// form (bit-identical Prob — the documented Ensemble contract), single-model
// families consume the stream (cfg.Seed, unit, target) whole. The
// leave-one-out train stage lives in the model package; this helper remains
// for the proximity attack's validation-split models, which are trained on
// PA stream units.
func trainModelUnit(cfg Config, ds *ml.Dataset, unit int64, target int) (Scorer, error) {
	fam, err := model.FamilyByName(cfg.Family)
	if err != nil {
		return nil, err
	}
	return fam.Train(model.TrainContext{
		Obs:     cfg.Obs,
		Opts:    cfg.TrainOptions().WithDefaults(),
		Seed:    cfg.Seed,
		Unit:    unit,
		Fold:    target,
		Workers: cfg.Workers,
	}, ds)
}

// runTarget trains on all instances except target and scores target. All
// randomness is drawn from streams derived from (cfg.Seed, unit, target),
// so the result does not depend on which worker runs it or on sibling
// targets. Training goes through the model layer: cfg.Models, when set,
// serves repeated folds from its artifact cache (bit-identical to fresh
// training); a nil store trains inline. The span for the target nests
// under parent when one is given (Run's root span), else at the context's
// root (RunTarget).
func runTarget(cfg Config, insts []*Instance, target, worker int, parent *obs.Span) (*Evaluation, float64, error) {
	o := cfg.Obs
	sp := o.BeginUnder(parent, "target",
		obs.F("design", insts[target].Ch.Design.Name), obs.F("worker", worker))
	trainInsts := others(insts, target)
	radiusNorm := -1.0
	if cfg.Neighborhood {
		radiusNorm = NeighborRadiusNorm(trainInsts, cfg.NeighborQuantile)
		sp.SetAttr("radius_norm", radiusNorm)
	}

	t0 := time.Now()
	spec := cfg.trainSpec(trainInsts, target, radiusNorm, sp)
	art, stats, err := cfg.Models.GetOrTrain(spec)
	if err != nil {
		sp.End()
		return nil, 0, fmt.Errorf("attack: %s: target %s: %w", cfg.Name, insts[target].Ch.Design.Name, err)
	}
	trainDur := time.Since(t0)

	scsp := sp.Begin("scoring")
	ev := scoreTarget(art.Scorer(), insts[target], cfg, radiusNorm)
	scsp.SetAttr("pairs", ev.PairsScored)
	if ev.Batches > 0 {
		scsp.SetAttr("batches", ev.Batches)
		scsp.SetAttr("batch_rows", ev.BatchRows)
	}
	scsp.End()
	ev.TrainDur = trainDur
	ev.Phases.Sampling = stats.Sampling
	ev.Phases.Level1 = stats.Level1
	ev.Phases.Level2 = stats.Level2
	sp.SetAttr("train_ns", int64(ev.TrainDur))
	sp.SetAttr("test_ns", int64(ev.TestDur))
	sp.SetAttr("vpins", ev.N)
	sp.End()
	o.Metrics().Counter("attack.targets").Inc()
	o.Metrics().Counter("attack.pairs.scored").Add(ev.PairsScored)
	return ev, radiusNorm, nil
}

// ScoreWithTrainingSet trains a model on a caller-provided training set and
// scores the target instance with it. It exposes the engine's internals for
// ablation studies (custom sampling schemes); normal attacks should use Run.
// Training consumes the caller's rng sequentially (the caller controls
// reproducibility); only candidate-pair scoring runs in parallel.
func ScoreWithTrainingSet(cfg Config, ds *ml.Dataset, target *Instance, radiusNorm float64, r *rand.Rand) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := trainModel(cfg, ds, r)
	if err != nil {
		return nil, err
	}
	return scoreTarget(model, target, cfg, radiusNorm), nil
}
