package attack

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunTargetMatchesRun pins the single-target entry point to the full
// leave-one-out run: per-target randomness depends only on the seed and the
// target index, so RunTarget must reproduce Run's evaluation exactly.
func TestRunTargetMatchesRun(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	full := run(t, cfg, 8)
	for target := range chs {
		ev, radius, err := RunTarget(cfg, chs, target)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Evals[target]
		if ev.Design != want.Design || ev.N != want.N {
			t.Fatalf("target %d: design/N %s/%d, want %s/%d",
				target, ev.Design, ev.N, want.Design, want.N)
		}
		if radius != full.RadiusNorm[target] {
			t.Errorf("target %d: radius %f, want %f", target, radius, full.RadiusNorm[target])
		}
		for v := range want.TruthP {
			if ev.TruthP[v] != want.TruthP[v] {
				t.Fatalf("target %d: TruthP[%d] = %f, want %f",
					target, v, ev.TruthP[v], want.TruthP[v])
			}
		}
		for a := range want.Cands {
			if len(ev.Cands[a]) != len(want.Cands[a]) {
				t.Fatalf("target %d: v-pin %d has %d candidates, want %d",
					target, a, len(ev.Cands[a]), len(want.Cands[a]))
			}
			for j, c := range want.Cands[a] {
				if ev.Cands[a][j] != c {
					t.Fatalf("target %d: candidate %d/%d differs: %+v vs %+v",
						target, a, j, ev.Cands[a][j], c)
				}
			}
		}
	}
}

func TestRunTargetRejectsBadTarget(t *testing.T) {
	chs := challenges(t, 8)
	if _, _, err := RunTarget(Imp9(), chs, -1); err == nil {
		t.Error("negative target accepted")
	}
	if _, _, err := RunTarget(Imp9(), chs, len(chs)); err == nil {
		t.Error("out-of-range target accepted")
	}
}

// TestPhasesPopulated checks the per-phase breakdown recorded on every
// evaluation, with or without an observability context attached.
func TestPhasesPopulated(t *testing.T) {
	ev := run(t, Imp9(), 8).Evals[0]
	p := ev.Phases
	if p.Sampling <= 0 || p.Level1 <= 0 {
		t.Errorf("sampling/level-1 phases not recorded: %+v", p)
	}
	if p.Level2 != 0 {
		t.Errorf("level-2 phase %v recorded for a single-level config", p.Level2)
	}
	if p.Scoring != ev.TestDur {
		t.Errorf("scoring phase %v != TestDur %v", p.Scoring, ev.TestDur)
	}
	if sum := p.Sampling + p.Level1 + p.Level2; sum > ev.TrainDur {
		t.Errorf("phase sum %v exceeds TrainDur %v", sum, ev.TrainDur)
	}
	if ev.PairsScored <= 0 {
		t.Error("PairsScored not recorded")
	}
}

// durTolerance bounds the bookkeeping gap between an Evaluation's stopwatch
// durations and the span durations around the same code.
const durTolerance = 50 * time.Millisecond

func within(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestReportAgreesWithEvaluation runs a single-target attack under an
// observability context and cross-checks the run report against the returned
// evaluation: the target span's train_ns/test_ns attributes must match
// TrainDur/TestDur exactly, the phase child spans must agree with the
// stopwatch phases within tolerance, and the metrics registry must have seen
// the run.
func TestReportAgreesWithEvaluation(t *testing.T) {
	chs := challenges(t, 8)
	o := obs.New(obs.Options{Command: "test"})
	cfg := Imp9()
	cfg.Obs = o
	ev, _, err := RunTarget(cfg, chs, 1)
	if err != nil {
		t.Fatal(err)
	}

	rep := o.BuildReport()
	sp := rep.Find("target")
	if sp == nil {
		t.Fatal("report has no target span")
	}
	if got := sp.Attrs["train_ns"]; got != int64(ev.TrainDur) {
		t.Errorf("report train_ns = %v, want %d", got, int64(ev.TrainDur))
	}
	if got := sp.Attrs["test_ns"]; got != int64(ev.TestDur) {
		t.Errorf("report test_ns = %v, want %d", got, int64(ev.TestDur))
	}
	if sp.Attrs["design"] != ev.Design {
		t.Errorf("report design attr %v, want %s", sp.Attrs["design"], ev.Design)
	}

	phaseDur := func(name string) time.Duration {
		c := sp.Find(name)
		if c == nil {
			t.Fatalf("report missing %s span", name)
		}
		return time.Duration(c.DurNS)
	}
	if d := phaseDur("sampling"); !within(d, ev.Phases.Sampling, durTolerance) {
		t.Errorf("sampling span %v vs phase %v", d, ev.Phases.Sampling)
	}
	if d := phaseDur("train-level1"); !within(d, ev.Phases.Level1, durTolerance) {
		t.Errorf("train-level1 span %v vs phase %v", d, ev.Phases.Level1)
	}
	if d := phaseDur("scoring"); !within(d, ev.TestDur, durTolerance) {
		t.Errorf("scoring span %v vs TestDur %v", d, ev.TestDur)
	}
	trainSpans := phaseDur("sampling") + phaseDur("train-level1")
	if !within(trainSpans, ev.TrainDur, durTolerance) {
		t.Errorf("phase span total %v vs TrainDur %v", trainSpans, ev.TrainDur)
	}

	m := o.Metrics()
	if n := m.Counter("attack.targets").Value(); n != 1 {
		t.Errorf("attack.targets = %d, want 1", n)
	}
	if n := m.Counter("attack.pairs.scored").Value(); n != ev.PairsScored {
		t.Errorf("attack.pairs.scored = %d, want %d", n, ev.PairsScored)
	}
	snap := m.Snapshot()
	hs, ok := snap.Histograms["attack.trainset.size"]
	if !ok || hs.Count != 1 || hs.Min <= 0 {
		t.Errorf("attack.trainset.size histogram = %+v", hs)
	}
}

// TestRunReportPerTarget checks the full leave-one-out run under a context:
// one target span per design, totals matching the evaluations.
func TestRunReportPerTarget(t *testing.T) {
	chs := challenges(t, 8)
	o := obs.New(obs.Options{Command: "test"})
	cfg := Imp11()
	cfg.Obs = o
	res, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}

	rep := o.BuildReport()
	root := rep.Find("attack.run")
	if root == nil {
		t.Fatal("report has no attack.run span")
	}
	type targetSpan struct {
		trainNS, testNS int64
	}
	// Targets run concurrently, so child spans appear in completion order;
	// match them to evaluations by design name (unique per suite).
	targets := map[string]targetSpan{}
	for _, c := range root.Children {
		if c.Name != "target" {
			continue
		}
		targets[c.Attrs["design"].(string)] = targetSpan{
			trainNS: c.Attrs["train_ns"].(int64),
			testNS:  c.Attrs["test_ns"].(int64),
		}
	}
	if len(targets) != len(res.Evals) {
		t.Fatalf("%d target spans for %d evaluations", len(targets), len(res.Evals))
	}
	for _, ev := range res.Evals {
		sp, ok := targets[ev.Design]
		if !ok {
			t.Errorf("no target span for design %s", ev.Design)
			continue
		}
		if sp.trainNS != int64(ev.TrainDur) {
			t.Errorf("%s: span train_ns %d, want %d", ev.Design, sp.trainNS, int64(ev.TrainDur))
		}
		if sp.testNS != int64(ev.TestDur) {
			t.Errorf("%s: span test_ns %d, want %d", ev.Design, sp.testNS, int64(ev.TestDur))
		}
	}
	if n := o.Metrics().Counter("attack.targets").Value(); n != int64(len(res.Evals)) {
		t.Errorf("attack.targets = %d, want %d", n, len(res.Evals))
	}
}
