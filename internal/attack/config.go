// Package attack implements the paper's contribution: the machine-learning
// attack on split manufacturing. It generates balanced training samples
// from v-pin pairs, trains a Bagging classifier under leave-one-out
// cross-validation, scores all candidate pairs of a held-out design into
// per-v-pin Lists of Candidates (LoC), and layers on the paper's
// refinements — neighborhood-restricted sampling for scalability (Imp),
// two-level pruning, top-layer direction limits ("Y"), threshold-controlled
// LoC sizes, and the validation-based proximity attack.
package attack

import (
	"fmt"
	"runtime"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pairs"
)

// Config selects one of the paper's model configurations.
type Config struct {
	// Name labels the configuration in reports ("ML-9", "Imp-11Y", ...).
	Name string
	// Features are the feature indices trees may split on.
	Features []int
	// Neighborhood enables the Imp scalability improvement (§III-D):
	// training samples and tested pairs are restricted to v-pins within a
	// radius derived from the matched-pair ManhattanVpin distribution of
	// the training designs.
	Neighborhood bool
	// NeighborQuantile is the CDF cut defining the neighborhood radius;
	// the paper uses 0.90. Zero selects 0.90.
	NeighborQuantile float64
	// LimitDiffVpinY enables the "Y" refinement (§III-G): only pairs with
	// DiffVpinY = 0 are trained on and tested, exploiting the single
	// routing direction above the highest via layer. Only meaningful when
	// attacking split layer 8.
	LimitDiffVpinY bool
	// TwoLevel enables two-level pruning (§III-E).
	TwoLevel bool
	// BaseKind is the Bagging base classifier; the paper's final models
	// use REPTree, its predecessor [18] used RandomTree.
	BaseKind ml.TreeKind
	// NumTrees is the ensemble size; zero selects the Weka default for
	// the base kind (10 for REPTree, 100 for RandomTree).
	NumTrees int
	// MaxLoCFrac bounds the per-v-pin candidate list retained during
	// testing, as a fraction of the design's v-pin count. Metrics are
	// exact for LoC fractions up to this bound; the paper's tables query
	// at most 10%. Zero selects 0.15.
	MaxLoCFrac float64
	// MaxLoCCount, when positive, additionally caps every retained
	// candidate list at an absolute length, on top of the fractional
	// MaxLoCFrac bound. At industrial scale the fractional bound alone
	// retains gigabytes (0.15 of 30k v-pins is 4.5k candidates each); an
	// absolute cap keeps the Evaluation's memory proportional to N while
	// FCR/LoC/proximity metrics and Evaluation.Digest stay exact for every
	// query within the retained bound. Under TwoLevel the same cap bounds
	// the level-1 lists the pruning stage draws negatives from, so it is
	// part of the trained model's identity there (and only there — see
	// model.Spec.Hash).
	MaxLoCCount int
	// ShardVpins is the spatial-region size of the streamed scoring stage:
	// how many v-pins a worker claims at a time from the vpinIndex grid
	// walk. Zero picks an automatic size. Results are bit-identical for
	// every value; this is purely a working-set/latency knob, so it is
	// excluded from model spec hashes.
	ShardVpins int
	// TrainCap bounds the number of training samples (0 = unlimited);
	// when exceeded, a balanced random subsample is used.
	TrainCap int
	// Family selects the learner family by registry name ("" or
	// model.FamilyBagging for the paper's Bagging ensemble,
	// model.FamilyMLP for the DL-perspective multi-layer perceptron,
	// model.FamilyLogistic for the linear ablation baseline). Every family
	// is hashable and serializable, so all of them checkpoint, cache, and
	// sweep identically; Validate rejects unregistered names.
	Family string
	// MLPHidden, MLPEpochs, and MLPRate tune the MLP family (hidden layer
	// width, SGD epochs, learning rate); zero selects the defaults
	// (16/30/0.05). Other families ignore them and never hash them.
	MLPHidden int
	MLPEpochs int
	MLPRate   float64
	// Ranking enables the list-wise ranking head of the DL-perspective
	// attack: each scored v-pin's candidate list is softmax-normalised in
	// place (see pairs.Ranked). The softmax is monotone within a list, so
	// candidate rankings, CCR, and accuracy-at-K are unchanged; score-scale
	// consumers (figure-of-merit, threshold sweeps) see a per-list
	// probability distribution instead of raw classifier outputs.
	Ranking bool
	// ScalarScoring disables the batched scoring fast path: the trained
	// Bagging is used directly through per-pair Scorer.Prob calls instead
	// of being compiled into an ml.Ensemble arena. Results are bit-identical
	// either way; the scalar path exists as the correctness oracle and for
	// benchmarking the batch path against it.
	ScalarScoring bool
	// Seed is the root of all randomness of a run. Every random decision —
	// training-set sampling, tree induction, level-2 negative draws,
	// proximity validation splits — draws from an independent stream
	// derived from Seed and the unit's coordinates via rng.Derive, so
	// results depend only on Seed, never on Workers or scheduling.
	Seed int64
	// Workers bounds the goroutines used for per-target runs, ensemble
	// training, level-2 scoring, and candidate-pair scoring. Zero or
	// negative selects GOMAXPROCS. Results are bit-identical at any
	// worker count.
	Workers int
	// Obs, when non-nil, receives structured logs, per-phase spans, and
	// metrics from every stage of the run. A nil Obs disables all
	// instrumentation at no cost.
	Obs *obs.Context
	// Models, when non-nil, caches trained artifacts by spec content hash:
	// repeated folds (threshold sweeps, config variants sharing a level-1
	// model) become cache hits instead of retrainings. A nil store trains
	// every target fresh. Results are bit-identical either way.
	Models *model.Store
}

// Scorer is the classifier interface the attack engine consumes: a
// probability that a feature vector describes a truly matching v-pin pair.
// It is the pairs package's Scorer — the attack engine scores candidates
// exclusively through the shared pair pipeline (see internal/pairs).
type Scorer = pairs.Scorer

// BatchScorer is a Scorer that can score a whole row-major feature matrix
// in one call; see pairs.BatchScorer for the contract. The engine scores
// each v-pin's gathered candidates through this fast path; scalar-only
// families fall back to per-pair Prob calls over the same gathered arena.
type BatchScorer = pairs.BatchScorer

var (
	_ BatchScorer = (*ml.Ensemble)(nil)
	_ BatchScorer = (*ml.MLP)(nil)
)

// TrainOptions projects the configuration's training-relevant fields into
// the model package's option struct — the one place training options live.
// The learner family travels by name; the model package resolves it through
// its registry, so every family the attack engine can name is hashable,
// serializable, and cacheable.
func (c Config) TrainOptions() model.TrainOptions {
	return model.TrainOptions{
		Name:             c.Name,
		Features:         c.Features,
		Neighborhood:     c.Neighborhood,
		NeighborQuantile: c.NeighborQuantile,
		LimitDiffVpinY:   c.LimitDiffVpinY,
		TwoLevel:         c.TwoLevel,
		BaseKind:         c.BaseKind,
		NumTrees:         c.NumTrees,
		MaxLoCFrac:       c.MaxLoCFrac,
		MaxLoCCount:      c.MaxLoCCount,
		TrainCap:         c.TrainCap,
		Family:           c.Family,
		MLPHidden:        c.MLPHidden,
		MLPEpochs:        c.MLPEpochs,
		MLPRate:          c.MLPRate,
		ScalarScoring:    c.ScalarScoring,
		ShardVpins:       c.ShardVpins,
	}
}

// trainSpec builds the model spec for training on trainInsts with this
// configuration's options, seeded for the given held-out fold. span, when
// non-nil, is the parent the training stage's progress spans nest under.
func (c Config) trainSpec(trainInsts []*Instance, target int, radiusNorm float64, span *obs.Span) model.Spec {
	spec := model.NewSpec(c.TrainOptions(), c.Seed, target, trainInsts, radiusNorm)
	spec.Workers = c.Workers
	spec.Obs = c.Obs
	spec.Span = span
	return spec
}

func (c Config) withDefaults() Config {
	to := c.TrainOptions().WithDefaults()
	c.NeighborQuantile = to.NeighborQuantile
	c.NumTrees = to.NumTrees
	c.MaxLoCFrac = to.MaxLoCFrac
	c.Features = to.Features
	c.Family = to.Family
	c.MLPHidden = to.MLPHidden
	c.MLPEpochs = to.MLPEpochs
	c.MLPRate = to.MLPRate
	return c
}

// workerCount resolves the configured worker bound for a pool processing n
// units: Workers when positive (GOMAXPROCS otherwise), capped at n so no
// goroutine starts idle.
func (c Config) workerCount(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("attack: config without name")
	}
	for _, f := range c.Features {
		if f < 0 || f >= features.NumAll {
			return fmt.Errorf("attack: config %s: feature index %d out of range", c.Name, f)
		}
	}
	if _, err := model.FamilyByName(c.Family); err != nil {
		return fmt.Errorf("attack: config %s: %w", c.Name, err)
	}
	if c.MaxLoCCount < 0 {
		return fmt.Errorf("attack: config %s: MaxLoCCount %d must not be negative", c.Name, c.MaxLoCCount)
	}
	if c.ShardVpins < 0 {
		return fmt.Errorf("attack: config %s: ShardVpins %d must not be negative", c.Name, c.ShardVpins)
	}
	return nil
}

// retainCap is the per-v-pin candidate-list bound of this configuration for
// a design with n v-pins: the fractional LoCCap, tightened by the absolute
// MaxLoCCount when set.
func (c Config) retainCap(n int) int {
	capPer := pairs.LoCCap(n, c.MaxLoCFrac)
	if c.MaxLoCCount > 0 && c.MaxLoCCount < capPer {
		capPer = c.MaxLoCCount
	}
	return capPer
}

// ML9 is the baseline configuration: the first nine features, no
// scalability improvement ("ML" in the paper's predecessor [18]).
func ML9() Config {
	return Config{Name: "ML-9", Features: features.Set9()}
}

// Imp9 is ML9 plus the neighborhood scalability improvement.
func Imp9() Config {
	return Config{Name: "Imp-9", Features: features.Set9(), Neighborhood: true}
}

// Imp7 removes the two least important features from Imp9 ("ML-Imp" in
// [18]).
func Imp7() Config {
	return Config{Name: "Imp-7", Features: features.Set7(), Neighborhood: true}
}

// Imp11 uses all eleven features, including the congestion measurements.
func Imp11() Config {
	return Config{Name: "Imp-11", Features: features.Set11(), Neighborhood: true}
}

// WithY returns the "Y" variant of a configuration: DiffVpinY limited to
// zero, for attacks on the highest via layer.
func WithY(c Config) Config {
	c.Name += "Y"
	c.LimitDiffVpinY = true
	return c
}

// WithTwoLevel returns the two-level-pruning variant of a configuration.
func WithTwoLevel(c Config) Config {
	c.TwoLevel = true
	return c
}

// WithBase returns c with a different Bagging base classifier and ensemble
// size (0 = Weka default for the kind).
func WithBase(c Config, kind ml.TreeKind, trees int) Config {
	c.BaseKind = kind
	c.NumTrees = trees
	return c
}

// WithFamily returns c trained with the named learner family (see
// model.Families for the registered names).
func WithFamily(c Config, family string) Config {
	c.Family = family
	return c
}

// WithRanking returns c with the list-wise ranking head enabled.
func WithRanking(c Config) Config {
	c.Ranking = true
	return c
}

// DLMLP is the DL-perspective configuration (Li et al., DAC'19/TCAD'20
// recast onto this engine): the full feature set including the
// routing-hint block, neighborhood sampling, and the MLP learner family.
func DLMLP() Config {
	return Config{
		Name:         "DL-MLP",
		Features:     features.Set15(),
		Neighborhood: true,
		Family:       model.FamilyMLP,
	}
}

// DLMLPRank is DLMLP with the list-wise ranking head.
func DLMLPRank() Config {
	c := WithRanking(DLMLP())
	c.Name = "DL-MLP-rank"
	return c
}

// StandardConfigs returns the four headline configurations of the paper's
// experiments in presentation order.
func StandardConfigs() []Config {
	return []Config{ML9(), Imp9(), Imp7(), Imp11()}
}

// ConfigByName resolves a named configuration preset by its report name
// ("ML-9", "Imp-11", "Imp-7Y", "DL-MLP", ...), covering StandardConfigs,
// their "Y" variants, and the DL-perspective configurations. Commands and
// the job server accept these names as config presets.
func ConfigByName(name string) (Config, bool) {
	for _, c := range ConfigPresets() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// ConfigPresets lists every named configuration preset ConfigByName
// resolves, in presentation order. The serve layer's GET /configs endpoint
// reports these names.
func ConfigPresets() []Config {
	presets := append(StandardConfigs(), StandardConfigsY()...)
	return append(presets, DLMLP(), DLMLPRank())
}

// StandardConfigsY returns the four "Y" variants evaluated at split layer 8.
func StandardConfigsY() []Config {
	return []Config{WithY(ML9()), WithY(Imp9()), WithY(Imp7()), WithY(Imp11())}
}
