package attack

import (
	"time"

	"repro/internal/features"
	"repro/internal/pairs"
)

// Candidate is one scored entry of a v-pin's candidate list; it is the
// pairs package's Candidate — the candidate-list machinery (ordering,
// bounded retention, LoC cap) lives there so the attack engine and the
// model package's two-level stage share one implementation.
type Candidate = pairs.Candidate

// compareCandidates is the canonical candidate-list order; see
// pairs.CompareCandidates.
func compareCandidates(x, y Candidate) int {
	return pairs.CompareCandidates(x, y)
}

// Evaluation holds the scored candidate lists of one (config, design,
// split-layer) attack run. All LoC/accuracy metrics and the proximity
// attack are computed from it without re-running inference, which is how
// the paper varies the threshold "without re-running the entire
// classification process" (§III-F).
type Evaluation struct {
	ConfigName string
	Design     string
	SplitLayer int
	// N is the number of v-pins in the target design.
	N int
	// Cands[a] lists the retained candidates of v-pin a, sorted by
	// descending P. Lists are truncated to MaxLoCFrac*N entries (further
	// capped by MaxLoCCount when the configuration sets it); metrics are
	// exact for LoC sizes up to that bound.
	Cands [][]Candidate
	// TruthP[a] is the scored probability of a's true match, or -1 when
	// the pair was never scored (filtered out by neighborhood or Y rules
	// — the saturation effect of Fig. 9).
	TruthP []float32
	// Truth[a] is the ground-truth partner of a.
	Truth []int32
	// Subset, when non-nil, lists the only v-pins that were scored;
	// metrics over the whole design are then undefined and only
	// subset-aware consumers (the PA validation) should use the result.
	Subset []int
	// TrainDur and TestDur are the wall-clock durations of model training
	// and candidate scoring.
	TrainDur, TestDur time.Duration
	// Phases breaks the run into its pipeline stages; the training phases
	// sum to TrainDur and Scoring equals TestDur (up to clock granularity).
	Phases Phases
	// PairsScored counts the candidate pairs evaluated by the model.
	PairsScored int64
	// Batches and BatchRows count the ProbBatch calls of the batched
	// scoring path and the rows scored through them (level-1 and level-2
	// batches both counted). Zero on the scalar path.
	Batches, BatchRows int64
	// Regions is the number of spatial shards the scoring stage streamed
	// the targets through, and Retained the total candidates kept across
	// all lists. Execution-shape statistics: not part of Digest.
	Regions int
	// Retained counts the candidates kept across all lists after the
	// retention bound — the Evaluation's dominant memory term (12 bytes
	// per retained candidate).
	Retained int64
}

// Phases is the per-stage wall-clock breakdown of one target's attack run.
type Phases struct {
	// Sampling is training-set generation (§III-B sampling plus the Imp
	// neighborhood radius computation consumers fold into TrainDur).
	Sampling time.Duration `json:"sampling_ns"`
	// Level1 is the level-1 ensemble training.
	Level1 time.Duration `json:"level1_ns"`
	// Level2 is the two-level-pruning model training (0 without TwoLevel).
	Level2 time.Duration `json:"level2_ns"`
	// Scoring is candidate scoring of the held-out design (== TestDur).
	Scoring time.Duration `json:"scoring_ns"`
}

// scoreTarget evaluates all admitted candidate pairs of the target instance
// with the model and assembles the Evaluation. Work is parallelised across
// v-pins.
func scoreTarget(model Scorer, inst *Instance, cfg Config, radiusNorm float64) *Evaluation {
	return scoreSubset(model, inst, cfg, radiusNorm, nil)
}

// scoreSubset is scoreTarget restricted to the listed target v-pins
// (candidates are still drawn from the whole design). A nil subset scores
// every v-pin. The proximity attack's validation stage uses this to score
// only held-out v-pins.
//
// Scoring rides pairs.ScoreLists, the shared region-streamed engine: the
// targets are sharded by spatial region of the v-pin index, each worker
// streams one region at a time through its reusable Gatherer arena and
// TopK heap, and the backend pairs.ResolveBackendObs picked — the batched
// flat-arena engine when the model supports it, the per-row scalar oracle
// otherwise (or under cfg.ScalarScoring), wrapped in the list-wise ranking
// head when cfg.Ranking — scores each arena. Retention is
// order-free, so the Evaluation is bit-identical at any worker count and
// any shard size; TruthP is filled from the Visit hook before retention,
// so the true pair's probability survives even when the truth falls
// outside the retained bound.
func scoreSubset(model Scorer, inst *Instance, cfg Config, radiusNorm float64, subset []int) *Evaluation {
	start := time.Now()
	n := inst.N()
	filter := newPairFilter(inst, cfg, radiusNorm)

	ev := &Evaluation{
		ConfigName: cfg.Name,
		Design:     inst.Ch.Design.Name,
		SplitLayer: inst.Ch.SplitLayer,
		N:          n,
		Subset:     subset,
		TruthP:     make([]float32, n),
		Truth:      make([]int32, n),
	}
	for a := 0; a < n; a++ {
		ev.TruthP[a] = -1
		ev.Truth[a] = int32(inst.Match(a))
	}

	total := n
	if subset != nil {
		total = len(subset)
	}
	backend := pairs.ResolveBackendObs(cfg.Obs, model, cfg.ScalarScoring)
	if cfg.Ranking {
		backend = pairs.Ranked(backend)
	}
	lists, stats := pairs.ScoreLists(filter, backend, pairs.StreamOptions{
		Targets:    subset,
		Cap:        cfg.retainCap(n),
		ShardVpins: cfg.ShardVpins,
		Workers:    cfg.workerCount(total),
		Stride:     features.Width(cfg.Features),
		Visit: func(a int, g *pairs.Gatherer) {
			m := inst.Match(a)
			for k, b32 := range g.Ids {
				if int(b32) == m {
					ev.TruthP[a] = float32(g.P[k])
					return
				}
			}
		},
	})
	ev.Cands = lists
	ev.PairsScored = stats.Pairs
	ev.Batches = stats.Batches
	ev.BatchRows = stats.BatchRows
	ev.Regions = stats.Regions
	ev.Retained = stats.Retained
	ev.TestDur = time.Since(start)
	ev.Phases.Scoring = ev.TestDur
	return ev
}
