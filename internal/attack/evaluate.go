package attack

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pairs"
)

// Candidate is one scored entry of a v-pin's candidate list; it is the
// pairs package's Candidate — the candidate-list machinery (ordering,
// bounded retention, LoC cap) lives there so the attack engine and the
// model package's two-level stage share one implementation.
type Candidate = pairs.Candidate

// compareCandidates is the canonical candidate-list order; see
// pairs.CompareCandidates.
func compareCandidates(x, y Candidate) int {
	return pairs.CompareCandidates(x, y)
}

// Evaluation holds the scored candidate lists of one (config, design,
// split-layer) attack run. All LoC/accuracy metrics and the proximity
// attack are computed from it without re-running inference, which is how
// the paper varies the threshold "without re-running the entire
// classification process" (§III-F).
type Evaluation struct {
	ConfigName string
	Design     string
	SplitLayer int
	// N is the number of v-pins in the target design.
	N int
	// Cands[a] lists the retained candidates of v-pin a, sorted by
	// descending P. Lists are truncated to MaxLoCFrac*N entries; metrics
	// are exact for LoC fractions up to that bound.
	Cands [][]Candidate
	// TruthP[a] is the scored probability of a's true match, or -1 when
	// the pair was never scored (filtered out by neighborhood or Y rules
	// — the saturation effect of Fig. 9).
	TruthP []float32
	// Truth[a] is the ground-truth partner of a.
	Truth []int32
	// Subset, when non-nil, lists the only v-pins that were scored;
	// metrics over the whole design are then undefined and only
	// subset-aware consumers (the PA validation) should use the result.
	Subset []int
	// TrainDur and TestDur are the wall-clock durations of model training
	// and candidate scoring.
	TrainDur, TestDur time.Duration
	// Phases breaks the run into its pipeline stages; the training phases
	// sum to TrainDur and Scoring equals TestDur (up to clock granularity).
	Phases Phases
	// PairsScored counts the candidate pairs evaluated by the model.
	PairsScored int64
	// Batches and BatchRows count the ProbBatch calls of the batched
	// scoring path and the rows scored through them (level-1 and level-2
	// batches both counted). Zero on the scalar path.
	Batches, BatchRows int64
}

// Phases is the per-stage wall-clock breakdown of one target's attack run.
type Phases struct {
	// Sampling is training-set generation (§III-B sampling plus the Imp
	// neighborhood radius computation consumers fold into TrainDur).
	Sampling time.Duration `json:"sampling_ns"`
	// Level1 is the level-1 ensemble training.
	Level1 time.Duration `json:"level1_ns"`
	// Level2 is the two-level-pruning model training (0 without TwoLevel).
	Level2 time.Duration `json:"level2_ns"`
	// Scoring is candidate scoring of the held-out design (== TestDur).
	Scoring time.Duration `json:"scoring_ns"`
}

// scoreTarget evaluates all admitted candidate pairs of the target instance
// with the model and assembles the Evaluation. Work is parallelised across
// v-pins.
func scoreTarget(model Scorer, inst *Instance, cfg Config, radiusNorm float64) *Evaluation {
	return scoreSubset(model, inst, cfg, radiusNorm, nil)
}

// scoreSubset is scoreTarget restricted to the listed target v-pins
// (candidates are still drawn from the whole design). A nil subset scores
// every v-pin. The proximity attack's validation stage uses this to score
// only held-out v-pins.
//
// There is one scoring path: each worker gathers a v-pin's admitted
// candidates into its reusable pairs.Gatherer arena and scores the arena
// through the backend pairs.ResolveBackend picked — the batched flat-arena
// engine when the model supports it, the per-row scalar oracle otherwise
// (or under cfg.ScalarScoring). Candidates enter the heap in enumeration
// order under both backends, so the retained lists are bit-identical.
func scoreSubset(model Scorer, inst *Instance, cfg Config, radiusNorm float64, subset []int) *Evaluation {
	start := time.Now()
	n := inst.N()
	filter := newPairFilter(inst, cfg, radiusNorm)
	capPer := pairs.LoCCap(n, cfg.MaxLoCFrac)

	targets := subset
	if targets == nil {
		targets = make([]int, n)
		for i := range targets {
			targets[i] = i
		}
	}

	ev := &Evaluation{
		ConfigName: cfg.Name,
		Design:     inst.Ch.Design.Name,
		SplitLayer: inst.Ch.SplitLayer,
		N:          n,
		Subset:     subset,
		Cands:      make([][]Candidate, n),
		TruthP:     make([]float32, n),
		Truth:      make([]int32, n),
	}
	for a := 0; a < n; a++ {
		ev.TruthP[a] = -1
		ev.Truth[a] = int32(inst.Match(a))
	}

	workers := cfg.workerCount(len(targets))
	var next int64
	var mu sync.Mutex
	take := func(batch int) (int, int) {
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= len(targets) {
			return 0, 0
		}
		hi := lo + batch
		if hi > len(targets) {
			hi = len(targets)
		}
		next = int64(hi)
		return lo, hi
	}

	backend := pairs.ResolveBackend(model, cfg.ScalarScoring)

	var pairsScored, batches, batchRows int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var g pairs.Gatherer
			var scored int64
			defer func() {
				atomic.AddInt64(&pairsScored, scored)
				atomic.AddInt64(&batches, g.Batches)
				atomic.AddInt64(&batchRows, g.BatchRows)
			}()
			for {
				lo, hi := take(16)
				if lo == hi {
					return
				}
				for _, a := range targets[lo:hi] {
					h := pairs.TopK{Cap: capPer}
					m := inst.Match(a)
					g.Gather(filter, a)
					g.Score(backend)
					scored += int64(len(g.Ids))
					for k, b32 := range g.Ids {
						p := float32(g.P[k])
						if int(b32) == m {
							ev.TruthP[a] = p
						}
						h.Push(Candidate{Other: b32, P: p, D: g.D[k]})
					}
					ev.Cands[a] = h.Sorted()
				}
			}
		}()
	}
	wg.Wait()
	ev.PairsScored = pairsScored
	ev.Batches = batches
	ev.BatchRows = batchRows
	ev.TestDur = time.Since(start)
	ev.Phases.Scoring = ev.TestDur
	return ev
}
