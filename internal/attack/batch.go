package attack

import "repro/internal/features"

// batchEngine is the batched scoring fast path of scoreSubset: the
// batch-capable form of a trained model. b2 is the level-2 model under
// two-level pruning, nil otherwise.
type batchEngine struct {
	b1 BatchScorer
	b2 BatchScorer
}

// batchable resolves a trained model into its batch engine, or nil when
// any component only supports scalar Prob (custom Learners, or the
// ScalarScoring oracle path). A two-level model batches only when both
// levels do: mixing a batched level with a scalar one would complicate the
// contract for no caller that exists.
func batchable(model Scorer) *batchEngine {
	switch m := model.(type) {
	case *twoLevelScorer:
		b1, ok1 := m.l1.(BatchScorer)
		b2, ok2 := m.l2.(BatchScorer)
		if ok1 && ok2 {
			return &batchEngine{b1: b1, b2: b2}
		}
	case BatchScorer:
		return &batchEngine{b1: m}
	}
	return nil
}

// batchBuf is one scoring worker's reusable gather arena. All slices grow
// to the largest candidate set the worker has seen and are then reused, so
// steady-state gathering and scoring allocate nothing.
type batchBuf struct {
	// ids[k] is the k-th admitted candidate of the current v-pin, in
	// enumeration order — the same order the scalar path scores in, which
	// is what keeps heap tie-breaking identical.
	ids []int32
	// d[k] is the ManhattanVpin distance of candidate k.
	d []float32
	// rows is the row-major feature matrix: candidate k occupies
	// rows[k*features.NumFeatures : (k+1)*features.NumFeatures].
	rows []float64
	// p[k] is candidate k's final probability; under two-level pruning it
	// passes through the level-1 gate first (see score).
	p []float64
	// p2 holds level-2 probabilities of the gate's survivors.
	p2 []float64
	// batches and batchRows count ProbBatch calls and the rows scored
	// through them, reported on the scoring span.
	batches, batchRows int64
}

// gather collects v-pin a's admitted candidates: ids, distances, and the
// feature matrix, in the exact enumeration order of the scalar path.
func (bb *batchBuf) gather(inst *Instance, filter pairFilter, a int) {
	const stride = features.NumFeatures
	bb.ids = bb.ids[:0]
	bb.d = bb.d[:0]
	bb.rows = bb.rows[:0]
	inst.ix.candidates(a, filter.radius, filter.yLimit, func(b32 int32) {
		b := int(b32)
		if !inst.Ex.Legal(a, b) {
			return
		}
		bb.ids = append(bb.ids, b32)
		bb.d = append(bb.d, float32(inst.Ex.VpinDist(a, b)))
		k := len(bb.rows)
		if k+stride <= cap(bb.rows) {
			bb.rows = bb.rows[:k+stride]
		} else {
			bb.rows = append(bb.rows, make([]float64, stride)...)
		}
		inst.Ex.Pair(a, b, bb.rows[k:k+stride])
	})
}

// score runs the gathered candidates through the engine in one batch per
// model level. Under two-level pruning, level 1 scores all rows first;
// surviving rows (p1 >= 0.5, the gate of twoLevelScorer.Prob) are
// compacted to the front of the matrix in place, level 2 scores only the
// survivors, and the results scatter back over the gate: rejected
// candidates score -1, exactly like the scalar composition.
func (bb *batchBuf) score(eng *batchEngine) {
	const stride = features.NumFeatures
	k := len(bb.ids)
	if cap(bb.p) < k {
		bb.p = make([]float64, k)
	}
	bb.p = bb.p[:k]
	if k == 0 {
		return
	}
	eng.b1.ProbBatch(bb.rows, stride, bb.p)
	bb.batches++
	bb.batchRows += int64(k)
	if eng.b2 == nil {
		return
	}
	surv := 0
	for i := 0; i < k; i++ {
		if bb.p[i] < 0.5 {
			continue
		}
		if surv != i {
			copy(bb.rows[surv*stride:(surv+1)*stride], bb.rows[i*stride:(i+1)*stride])
		}
		surv++
	}
	if cap(bb.p2) < surv {
		bb.p2 = make([]float64, surv)
	}
	bb.p2 = bb.p2[:surv]
	if surv > 0 {
		eng.b2.ProbBatch(bb.rows[:surv*stride], stride, bb.p2)
		bb.batches++
		bb.batchRows += int64(surv)
	}
	s := 0
	for i := 0; i < k; i++ {
		if bb.p[i] < 0.5 {
			bb.p[i] = -1
		} else {
			bb.p[i] = bb.p2[s]
			s++
		}
	}
}
