package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/split"
)

// DefaultPAFractions is the PA-LoC fraction grid searched during the
// proximity attack's validation stage.
func DefaultPAFractions() []float64 {
	return []float64{0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}
}

// ProximitySuccess runs the proximity attack of §III-H on every scored
// v-pin: the PA-LoC of a v-pin is its top frac*N candidates by probability,
// and the attack picks the candidate with the smallest ManhattanVpin
// distance (ties broken by higher probability, then randomly). It returns
// the fraction of v-pins whose picked candidate is the true match. The rng
// breaks exact ties only; the caller owns it (RunProximity hands each
// target its derived unitPA stream).
func (ev *Evaluation) ProximitySuccess(frac float64, rng *rand.Rand) float64 {
	targets := ev.Subset
	if targets == nil {
		targets = make([]int, ev.N)
		for i := range targets {
			targets[i] = i
		}
	}
	if len(targets) == 0 {
		return 0
	}
	k := int(frac*float64(ev.N) + 0.5)
	if k < 1 {
		k = 1
	}
	success := 0
	for _, a := range targets {
		if pick, ok := ev.proximityPick(a, k, rng); ok && pick == ev.Truth[a] {
			success++
		}
	}
	return float64(success) / float64(len(targets))
}

// proximityPick selects the PA answer for v-pin a from its top-k
// candidates.
func (ev *Evaluation) proximityPick(a, k int, rng *rand.Rand) (int32, bool) {
	cands := ev.Cands[a]
	if k > len(cands) {
		k = len(cands)
	}
	best := -1
	ties := 0
	for i := 0; i < k; i++ {
		c := cands[i]
		if c.P < 0 {
			break // unscored tail (two-level exclusions); list is sorted by P
		}
		switch {
		case best < 0 || c.D < cands[best].D:
			best = i
			ties = 1
		case c.D == cands[best].D:
			// Same distance: the list is sorted by descending P, so the
			// incumbent has the higher probability; on an exact P tie,
			// reservoir-sample among the tied candidates.
			if c.P == cands[best].P {
				ties++
				if rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return cands[best].Other, true
}

// PAAnswers returns the proximity-attack pick of every v-pin at the given
// PA-LoC fraction, or -1 where no candidate exists. Downstream consumers
// (e.g. functional netlist-recovery evaluation) turn this into a pairing.
// The rng breaks exact ties; the caller owns it.
func (ev *Evaluation) PAAnswers(frac float64, rng *rand.Rand) []int32 {
	k := int(frac*float64(ev.N) + 0.5)
	if k < 1 {
		k = 1
	}
	out := make([]int32, ev.N)
	for a := 0; a < ev.N; a++ {
		if pick, ok := ev.proximityPick(a, k, rng); ok {
			out[a] = pick
		} else {
			out[a] = -1
		}
	}
	return out
}

// PAOutcome reports the proximity attack against one design.
type PAOutcome struct {
	Design string
	// Success is the PA success rate with the validated PA-LoC fraction.
	Success float64
	// FixedSuccess is the PA success rate with the fixed threshold-0.5 LoC
	// (the pre-validation procedure of [18]), for comparison.
	FixedSuccess float64
	// BestFrac is the PA-LoC fraction selected by validation.
	BestFrac float64
	// ValidationDur is the extra wall-clock cost of the validation stage.
	ValidationDur time.Duration
}

// RunProximity executes the validation-based proximity attack for every
// design under leave-one-out cross-validation: for each target, the PA-LoC
// fraction is chosen by an 80/20 v-pin split of the training designs
// (§III-H) and then applied to the target's scored candidates.
func RunProximity(cfg Config, chs []*split.Challenge) ([]PAOutcome, error) {
	return RunProximityOn(cfg, chs, nil)
}

// RunProximityOn is RunProximity reusing an existing attack run's scored
// candidates (prior must come from Run with the same configuration and
// challenges); with a nil prior the evaluations are computed here. Only the
// validation stage is executed either way, and the PA outcome of a target
// is identical whether its evaluation was reused or recomputed: all PA
// randomness comes from the stream (cfg.Seed, unitPA, target), independent
// of the attack-run streams.
//
// Targets run concurrently on cfg.Workers goroutines (0 = GOMAXPROCS) with
// bit-identical outcomes at any worker count. A failing target does not
// abort its siblings; failed entries are zero-valued in the returned slice
// and their errors are joined.
func RunProximityOn(cfg Config, chs []*split.Challenge, prior *Result) ([]PAOutcome, error) {
	return RunProximityOnInstances(cfg, NewInstancesWorkers(chs, cfg.Workers), prior)
}

// RunProximityOnInstances is RunProximityOn on already-prepared instances,
// sharing the extractor/index construction cost with a prior attack run.
func RunProximityOnInstances(cfg Config, insts []*Instance, prior *Result) ([]PAOutcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(insts) < 2 {
		return nil, fmt.Errorf("attack: proximity attack needs at least 2 designs")
	}
	if prior != nil && len(prior.Evals) != len(insts) {
		return nil, fmt.Errorf("attack: prior result covers %d designs, want %d", len(prior.Evals), len(insts))
	}
	o := cfg.Obs
	workers := cfg.workerCount(len(insts))
	root := o.Begin("attack.pa", obs.F("config", cfg.Name),
		obs.F("designs", len(insts)), obs.F("workers", workers))
	defer root.End()
	prog := o.NewProgress(fmt.Sprintf("pa.%s.L%d", cfg.Name, insts[0].Ch.SplitLayer),
		int64(len(insts)))
	defer prog.Finish()
	outcomes := make([]PAOutcome, len(insts))
	errs := make([]error, len(insts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				target := int(next.Add(1)) - 1
				if target >= len(insts) {
					return
				}
				tsp := root.Begin("pa-target",
					obs.F("design", insts[target].Ch.Design.Name), obs.F("worker", worker))
				var ev *Evaluation
				var radiusNorm float64
				if prior != nil {
					ev = prior.Evals[target]
					radiusNorm = prior.RadiusNorm[target]
				} else {
					var err error
					ev, radiusNorm, err = runTarget(cfg, insts, target, worker, tsp)
					if err != nil {
						errs[target] = err
						tsp.End()
						prog.Add(1)
						continue
					}
				}
				if ev == nil {
					errs[target] = fmt.Errorf("attack: %s: target %s: prior result has no evaluation",
						cfg.Name, insts[target].Ch.Design.Name)
					tsp.End()
					prog.Add(1)
					continue
				}
				outcomes[target] = paTarget(cfg, insts, target, ev, radiusNorm, tsp)
				tsp.End()
				prog.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return outcomes, fmt.Errorf("attack: %s: proximity attack: %w", cfg.Name, err)
	}
	return outcomes, nil
}

// paTarget runs the validation stage for one target and assembles its
// outcome from an already-scored evaluation. Every random draw — the 80/20
// validation split, validation-model training, and tie-breaking — comes
// from streams derived from (cfg.Seed, unitPA/unitPAModel, target), so the
// outcome is the same from RunProximity, RunProximityOn, and
// ProximityTarget alike.
func paTarget(cfg Config, insts []*Instance, target int, ev *Evaluation,
	radiusNorm float64, sp *obs.Span) PAOutcome {

	paRng := rng.Derive(cfg.Seed, unitPA, int64(target))
	v0 := time.Now()
	vsp := sp.Begin("validation")
	bestFrac := validatePAFraction(cfg, others(insts, target), radiusNorm, target, paRng)
	vsp.SetAttr("best_frac", bestFrac)
	vsp.End()
	valDur := time.Since(v0)

	out := PAOutcome{
		Design:        insts[target].Ch.Design.Name,
		Success:       ev.ProximitySuccess(bestFrac, paRng),
		FixedSuccess:  ev.fixedThresholdPA(paRng),
		BestFrac:      bestFrac,
		ValidationDur: valDur,
	}
	sp.SetAttr("success", out.Success)
	sp.SetAttr("fixed_success", out.FixedSuccess)
	return out
}

// ProximityTarget runs the validation-based proximity attack for the single
// design at index target, reusing its already-scored evaluation and
// neighborhood radius from RunTarget (or from a full Run). Only the PA-LoC
// validation stage is new work — the sibling targets' models are never
// trained — and the outcome equals RunProximity's entry for the target:
// PA randomness is derived from cfg.Seed and the target index alone.
func ProximityTarget(cfg Config, chs []*split.Challenge, target int, ev *Evaluation, radiusNorm float64) (PAOutcome, error) {
	return ProximityTargetInstances(cfg, NewInstancesWorkers(chs, cfg.Workers), target, ev, radiusNorm)
}

// ProximityTargetInstances is ProximityTarget on already-prepared
// instances, typically the ones the evaluation was scored on.
func ProximityTargetInstances(cfg Config, insts []*Instance, target int, ev *Evaluation, radiusNorm float64) (PAOutcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return PAOutcome{}, err
	}
	if len(insts) < 2 {
		return PAOutcome{}, fmt.Errorf("attack: proximity attack needs at least 2 designs")
	}
	if target < 0 || target >= len(insts) {
		return PAOutcome{}, fmt.Errorf("attack: target %d out of range 0..%d", target, len(insts)-1)
	}
	if ev == nil {
		return PAOutcome{}, fmt.Errorf("attack: proximity target needs a scored evaluation")
	}
	o := cfg.Obs
	sp := o.Begin("attack.pa-target", obs.F("design", insts[target].Ch.Design.Name))
	defer sp.End()
	return paTarget(cfg, insts, target, ev, radiusNorm, sp), nil
}

// fixedThresholdPA is the pre-validation PA of [18]: the PA-LoC is simply
// the threshold-0.5 LoC.
func (ev *Evaluation) fixedThresholdPA(rng *rand.Rand) float64 {
	targets := make([]int, ev.N)
	for i := range targets {
		targets[i] = i
	}
	success := 0
	for _, a := range targets {
		// Count the p >= 0.5 prefix and pick within it.
		k := 0
		for k < len(ev.Cands[a]) && ev.Cands[a][k].P >= 0.5 {
			k++
		}
		if k == 0 {
			continue
		}
		if pick, ok := ev.proximityPickFixed(a, k, rng); ok && pick == ev.Truth[a] {
			success++
		}
	}
	return float64(success) / float64(ev.N)
}

func (ev *Evaluation) proximityPickFixed(a, k int, rng *rand.Rand) (int32, bool) {
	return ev.proximityPick(a, k, rng)
}

// validatePAFraction selects the PA-LoC fraction: 80% of each training
// design's v-pins form a validation training set; the held-out 20% are
// attacked with every candidate fraction; the fraction with the best mean
// success rate wins. The split permutations and success-rate tie-breaks
// consume the caller's per-target paRng sequentially; the validation model
// trains in parallel from (cfg.Seed, unitPAModel, target) tree streams.
func validatePAFraction(cfg Config, trainInsts []*Instance, radiusNorm float64, target int, paRng *rand.Rand) float64 {
	fracs := DefaultPAFractions()
	selected := make([][]int, len(trainInsts))
	heldout := make([][]int, len(trainInsts))
	for i, inst := range trainInsts {
		perm := paRng.Perm(inst.N())
		cut := inst.N() * 8 / 10
		selected[i] = append([]int(nil), perm[:cut]...)
		heldout[i] = append([]int(nil), perm[cut:]...)
	}

	ds := TrainingSet(cfg, trainInsts, radiusNorm, selected, paRng)
	model, err := trainModelUnit(cfg, ds, unitPAModel, target)
	if err != nil {
		// Degenerate validation data (e.g. tiny tests): fall back to a
		// mid-grid fraction rather than failing the whole attack.
		return fracs[len(fracs)/2]
	}

	evals := make([]*Evaluation, len(trainInsts))
	for i, inst := range trainInsts {
		evals[i] = scoreSubset(model, inst, cfg, radiusNorm, heldout[i])
	}

	bestFrac, bestRate := fracs[0], -1.0
	for _, f := range fracs {
		var sum float64
		for _, e := range evals {
			sum += e.ProximitySuccess(f, paRng)
		}
		rate := sum / float64(len(evals))
		if rate > bestRate {
			bestRate, bestFrac = rate, f
		}
	}
	return bestFrac
}
