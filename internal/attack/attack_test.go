package attack

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/split"
)

// Shared test fixtures: one small suite, challenges per layer, generated
// once per test binary.
var (
	fixOnce sync.Once
	fixErr  error
	fixChs  map[int][]*split.Challenge
)

func challenges(t testing.TB, layer int) []*split.Challenge {
	t.Helper()
	fixOnce.Do(func() {
		designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: 0.2, Seed: 5})
		if err != nil {
			fixErr = err
			return
		}
		fixChs = map[int][]*split.Challenge{}
		for _, layer := range []int{6, 8} {
			for _, d := range designs {
				c, err := split.NewChallenge(d, layer)
				if err != nil {
					fixErr = err
					return
				}
				fixChs[layer] = append(fixChs[layer], c)
			}
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixChs[layer]
}

// cached attack results to avoid re-running identical configurations.
var (
	resMu    sync.Mutex
	resCache = map[string]*Result{}
)

func run(t *testing.T, cfg Config, layer int) *Result {
	t.Helper()
	key := cfg.Name + string(rune('0'+layer))
	resMu.Lock()
	defer resMu.Unlock()
	if r, ok := resCache[key]; ok {
		return r
	}
	r, err := Run(cfg, challenges(t, layer))
	if err != nil {
		t.Fatal(err)
	}
	resCache[key] = r
	return r
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Name: "x"}.withDefaults()
	if c.NeighborQuantile != 0.90 {
		t.Errorf("default quantile %f", c.NeighborQuantile)
	}
	if c.NumTrees != ml.DefaultBaggingSize {
		t.Errorf("default trees %d", c.NumTrees)
	}
	if len(c.Features) != 9 {
		t.Errorf("default features %d", len(c.Features))
	}
	cr := Config{Name: "x", BaseKind: ml.RandomTree}.withDefaults()
	if cr.NumTrees != ml.DefaultForestSize {
		t.Errorf("random-tree default trees %d", cr.NumTrees)
	}
}

func TestStandardConfigNames(t *testing.T) {
	names := []string{}
	for _, c := range StandardConfigs() {
		names = append(names, c.Name)
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	want := []string{"ML-9", "Imp-9", "Imp-7", "Imp-11"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("config %d = %s, want %s", i, names[i], want[i])
		}
	}
	for i, c := range StandardConfigsY() {
		if c.Name != want[i]+"Y" || !c.LimitDiffVpinY {
			t.Errorf("Y config %d = %+v", i, c)
		}
	}
	if !ML9().Neighborhood == false || Imp9().Neighborhood != true {
		t.Error("neighborhood flags wrong")
	}
	if len(Imp7().Features) != 7 || len(Imp11().Features) != 11 {
		t.Error("feature counts wrong")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	chs := challenges(t, 8)
	if _, err := Run(ML9(), chs[:1]); err == nil {
		t.Error("single design accepted")
	}
	mixed := []*split.Challenge{chs[0], challenges(t, 6)[1]}
	if _, err := Run(ML9(), mixed); err == nil {
		t.Error("mixed split layers accepted")
	}
	bad := ML9()
	bad.Features = []int{99}
	if _, err := Run(bad, chs); err == nil {
		t.Error("bad feature index accepted")
	}
	if _, err := Run(Config{}, chs); err == nil {
		t.Error("unnamed config accepted")
	}
}

func TestRunShape(t *testing.T) {
	res := run(t, ML9(), 8)
	chs := challenges(t, 8)
	if len(res.Evals) != len(chs) {
		t.Fatalf("%d evaluations for %d designs", len(res.Evals), len(chs))
	}
	for i, ev := range res.Evals {
		if ev.Design != chs[i].Design.Name {
			t.Errorf("evaluation %d design %s", i, ev.Design)
		}
		if ev.N != len(chs[i].VPins) {
			t.Errorf("evaluation %d covers %d v-pins, want %d", i, ev.N, len(chs[i].VPins))
		}
		if ev.SplitLayer != 8 {
			t.Errorf("evaluation %d layer %d", i, ev.SplitLayer)
		}
	}
}

func TestLayer8AttackQuality(t *testing.T) {
	res := run(t, ML9(), 8)
	for _, ev := range res.Evals {
		if acc := ev.MaxAccuracy(); acc < 0.95 {
			t.Errorf("%s: ML-9 max accuracy %.3f at layer 8 (no filtering, should be ~1)", ev.Design, acc)
		}
		if acc := ev.AccuracyAtK(10); acc < 0.6 {
			t.Errorf("%s: accuracy@10 = %.3f at layer 8", ev.Design, acc)
		}
	}
}

func TestLayer8EasierThanLayer6(t *testing.T) {
	acc8 := 0.0
	for _, ev := range run(t, Imp11(), 8).Evals {
		acc8 += ev.AccuracyAtK(5)
	}
	acc6 := 0.0
	for _, ev := range run(t, Imp11(), 6).Evals {
		acc6 += ev.AccuracyAtK(5)
	}
	if acc8 <= acc6 {
		t.Errorf("layer 8 aggregate accuracy %.3f not above layer 6 %.3f", acc8/5, acc6/5)
	}
}

func TestAccuracyMonotoneInK(t *testing.T) {
	ev := run(t, Imp9(), 8).Evals[0]
	prev := -1.0
	for k := 1; k <= 30; k++ {
		acc := ev.AccuracyAtK(k)
		if acc < prev-1e-12 {
			t.Fatalf("accuracy decreased at k=%d: %.6f < %.6f", k, acc, prev)
		}
		prev = acc
	}
	if ev.AccuracyAtK(0) != 0 {
		t.Error("accuracy at k=0 must be 0")
	}
}

func TestMeanLoCMonotoneInThreshold(t *testing.T) {
	ev := run(t, ML9(), 8).Evals[0]
	prev := ev.MeanLoC(0)
	for _, thr := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		cur := ev.MeanLoC(thr)
		if cur > prev+1e-9 {
			t.Fatalf("MeanLoC increased at threshold %.1f", thr)
		}
		prev = cur
	}
	if ev.MeanLoC(1.01) != 0 {
		t.Error("MeanLoC above max probability must be 0")
	}
}

func TestAccuracyThresholdConsistency(t *testing.T) {
	ev := run(t, ML9(), 8).Evals[1]
	for _, thr := range []float64{0.2, 0.5, 0.8} {
		acc := ev.Accuracy(thr)
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy %.3f out of range", acc)
		}
	}
	if a0, a1 := ev.Accuracy(0.0), ev.Accuracy(1.0); a0 < a1 {
		t.Error("accuracy must not increase with threshold")
	}
	if ev.MaxAccuracy() != ev.Accuracy(0) {
		t.Error("MaxAccuracy must equal Accuracy(0)")
	}
}

func TestLoCForAccuracyRoundTrip(t *testing.T) {
	ev := run(t, ML9(), 8).Evals[2]
	for _, target := range []float64{0.5, 0.7, 0.9} {
		loc := ev.LoCForAccuracy(target)
		if loc < 0 {
			continue // saturated below target
		}
		if got := ev.AccuracyAtK(int(loc)); got < target-1e-9 {
			t.Errorf("LoCForAccuracy(%.2f) = %.0f but accuracy there is %.3f", target, loc, got)
		}
		if loc > 1 {
			if prev := ev.AccuracyAtK(int(loc) - 1); prev >= target {
				t.Errorf("LoCForAccuracy(%.2f) = %.0f not minimal", target, loc)
			}
		}
	}
}

func TestLoCForAccuracyUnreachable(t *testing.T) {
	// Imp on sb12 saturates well below 100%: requesting accuracy 1.0 must
	// return the paper's "dash".
	res := run(t, Imp9(), 8)
	found := false
	for _, ev := range res.Evals {
		if ev.MaxAccuracy() < 0.999 {
			found = true
			if ev.LoCForAccuracy(0.9999) != -1 {
				t.Errorf("%s: unreachable accuracy did not return -1", ev.Design)
			}
			if ev.LoCFracForAccuracy(0.9999) != -1 {
				t.Errorf("%s: unreachable accuracy fraction did not return -1", ev.Design)
			}
		}
	}
	if !found {
		t.Skip("no saturated design in this suite")
	}
}

func TestNeighborhoodSaturation(t *testing.T) {
	ml9 := run(t, ML9(), 6)
	imp9 := run(t, Imp9(), 6)
	for i := range ml9.Evals {
		if ml9.Evals[i].MaxAccuracy() < imp9.Evals[i].MaxAccuracy()-1e-9 {
			t.Errorf("%s: Imp max accuracy above ML (filtering cannot add matches)",
				ml9.Evals[i].Design)
		}
	}
	// At least one design must show the saturation plateau.
	saturated := false
	for _, ev := range imp9.Evals {
		if ev.MaxAccuracy() < 0.97 {
			saturated = true
		}
	}
	if !saturated {
		t.Error("no design saturated under the 90% neighborhood")
	}
	for i := range imp9.RadiusNorm {
		if imp9.RadiusNorm[i] <= 0 || imp9.RadiusNorm[i] > 2 {
			t.Errorf("implausible neighborhood radius %f", imp9.RadiusNorm[i])
		}
		if ml9.RadiusNorm[i] != -1 {
			t.Errorf("ML-9 should not compute a radius")
		}
	}
}

func TestNeighborhoodShrinksTestedPairs(t *testing.T) {
	ml9 := run(t, ML9(), 6)
	imp9 := run(t, Imp9(), 6)
	var mlPairs, impPairs int
	for i := range ml9.Evals {
		mlPairs += int(ml9.Evals[i].MeanLoC(0) * float64(ml9.Evals[i].N))
		impPairs += int(imp9.Evals[i].MeanLoC(0) * float64(imp9.Evals[i].N))
	}
	if impPairs >= mlPairs {
		t.Errorf("Imp stored %d scored pairs, ML %d; neighborhood should shrink the candidate space",
			impPairs, mlPairs)
	}
}

func TestYConfigLayer8(t *testing.T) {
	plain := run(t, Imp9(), 8)
	y := run(t, WithY(Imp9()), 8)
	var plainLoC, yLoC, plainAcc, yAcc float64
	for i := range plain.Evals {
		plainLoC += plain.Evals[i].MeanLoC(0)
		yLoC += y.Evals[i].MeanLoC(0)
		plainAcc += plain.Evals[i].AccuracyAtK(5)
		yAcc += y.Evals[i].AccuracyAtK(5)
	}
	if yLoC >= plainLoC {
		t.Errorf("Y candidates (%.1f) not fewer than plain (%.1f)", yLoC/5, plainLoC/5)
	}
	if yAcc < plainAcc-0.05*5 {
		t.Errorf("Y accuracy %.3f clearly below plain %.3f", yAcc/5, plainAcc/5)
	}
}

func TestTwoLevelRuns(t *testing.T) {
	res := run(t, WithTwoLevel(Imp11()), 8)
	for _, ev := range res.Evals {
		if acc := ev.MaxAccuracy(); acc < 0 || acc > 1 {
			t.Fatalf("two-level accuracy %.3f out of range", acc)
		}
		if ev.MeanLoC(0) <= 0 {
			t.Fatalf("%s: two-level produced empty candidate lists", ev.Design)
		}
	}
}

func TestRandomTreeBase(t *testing.T) {
	cfg := WithBase(Imp7(), ml.RandomTree, 20)
	cfg.Name = "Imp-7-RT"
	res := run(t, cfg, 8)
	for _, ev := range res.Evals {
		if acc := ev.AccuracyAtK(10); acc < 0.5 {
			t.Errorf("%s: RandomTree-based accuracy@10 = %.3f", ev.Design, acc)
		}
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	cfg.Seed = 99
	a, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Evals {
		for v := range a.Evals[i].TruthP {
			if a.Evals[i].TruthP[v] != b.Evals[i].TruthP[v] {
				t.Fatalf("TruthP differs between identical-seed runs (design %d, vpin %d)", i, v)
			}
		}
	}
}

func TestTrainingSetProperties(t *testing.T) {
	chs := challenges(t, 6)
	insts := NewInstances(chs[:4])
	rng := rand.New(rand.NewSource(3))
	cfg := Imp9().withDefaults()
	radius := NeighborRadiusNorm(insts, cfg.NeighborQuantile)
	ds := TrainingSet(cfg, insts, radius, nil, rng)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	pos := ds.Positives()
	neg := ds.Len() - pos
	if pos == 0 || neg == 0 {
		t.Fatal("training set missing a class")
	}
	ratio := float64(pos) / float64(neg)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("positive/negative ratio %.2f not balanced", ratio)
	}
}

func TestTrainingSetCap(t *testing.T) {
	chs := challenges(t, 6)
	insts := NewInstances(chs[:2])
	rng := rand.New(rand.NewSource(4))
	cfg := ML9().withDefaults()
	cfg.TrainCap = 100
	ds := TrainingSet(cfg, insts, -1, nil, rng)
	if ds.Len() != 100 {
		t.Errorf("capped training set has %d rows, want 100", ds.Len())
	}
}

func TestNeighborRadiusNorm(t *testing.T) {
	chs := challenges(t, 6)
	insts := NewInstances(chs)
	r90 := NeighborRadiusNorm(insts, 0.90)
	r100 := NeighborRadiusNorm(insts, 1.0)
	r50 := NeighborRadiusNorm(insts, 0.50)
	if !(r50 <= r90 && r90 <= r100) {
		t.Errorf("radius quantiles not monotone: %f/%f/%f", r50, r90, r100)
	}
	if r90 <= 0 {
		t.Error("radius must be positive")
	}
}

func TestLogisticFamilyDrivesAttack(t *testing.T) {
	// A non-tree learner family must drive the attack end to end.
	cfg := WithFamily(Imp11(), model.FamilyLogistic)
	cfg.Name = "Imp-11-logistic"
	res := run(t, cfg, 8)
	var acc float64
	for _, ev := range res.Evals {
		acc += ev.AccuracyAtK(10)
	}
	acc /= float64(len(res.Evals))
	// Logistic regression is weaker than the tree ensemble but must still
	// attack far better than chance.
	if acc < 0.3 {
		t.Errorf("logistic attack accuracy@10 = %.3f", acc)
	}
	bagged := 0.0
	for _, ev := range run(t, Imp11(), 8).Evals {
		bagged += ev.AccuracyAtK(10)
	}
	bagged /= 5
	if acc > bagged+0.05 {
		t.Logf("note: logistic (%.3f) outperformed bagging (%.3f) on this suite", acc, bagged)
	}
}

func TestScoreSubset(t *testing.T) {
	chs := challenges(t, 8)
	insts := NewInstances(chs)
	rng := rand.New(rand.NewSource(5))
	cfg := Imp9().withDefaults()
	radius := NeighborRadiusNorm(others(insts, 0), cfg.NeighborQuantile)
	ds := TrainingSet(cfg, others(insts, 0), radius, nil, rng)
	model, err := trainModel(cfg, ds, rng)
	if err != nil {
		t.Fatal(err)
	}
	subset := []int{0, 5, 9}
	ev := scoreSubset(model, insts[0], cfg, radius, subset)
	for _, a := range subset {
		if ev.Cands[a] == nil {
			t.Errorf("subset v-pin %d not scored", a)
		}
	}
	scored := 0
	for a := 0; a < ev.N; a++ {
		if ev.Cands[a] != nil {
			scored++
		}
	}
	if scored != len(subset) {
		t.Errorf("%d v-pins scored, want %d", scored, len(subset))
	}
}
