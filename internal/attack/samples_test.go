package attack

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestPairFilterRules(t *testing.T) {
	chs := challenges(t, 6)
	inst := NewInstance(chs[4])

	// No filters: everything legal and distinct is admitted.
	open := newPairFilter(inst, ML9().withDefaults(), -1)
	if open.Admits(0, 0) {
		t.Error("self-pair admitted")
	}
	m := inst.Match(0)
	if !open.Admits(0, m) {
		t.Error("true match not admitted without filters")
	}

	// Neighborhood: radius 0 rejects everything not co-located.
	cfg := Imp9().withDefaults()
	tight := newPairFilter(inst, cfg, 0)
	admittedAny := false
	for b := 0; b < inst.N() && !admittedAny; b++ {
		if b != 0 && tight.Admits(0, b) && inst.Ex.VpinDist(0, b) > 0 {
			admittedAny = true
		}
	}
	if admittedAny {
		t.Error("zero-radius filter admitted a distant pair")
	}

	// Y limit rejects pairs with different y.
	ycfg := WithY(ML9()).withDefaults()
	yf := newPairFilter(inst, ycfg, -1)
	for b := 1; b < inst.N(); b++ {
		if inst.Ex.DiffVpinYOf(0, b) != 0 && yf.Admits(0, b) {
			t.Fatalf("Y filter admitted pair with DiffVpinY %f", inst.Ex.DiffVpinYOf(0, b))
		}
	}

	// Illegal (driver-driver) pairs are always rejected.
	var d1, d2 = -1, -1
	for i := 0; i < inst.N(); i++ {
		if inst.Ch.VPins[i].IsDriverSide() {
			if d1 < 0 {
				d1 = i
			} else {
				d2 = i
				break
			}
		}
	}
	if d1 >= 0 && d2 >= 0 && open.Admits(d1, d2) {
		t.Error("driver-driver pair admitted")
	}
}

func TestSampleNegativeRespectsFilters(t *testing.T) {
	chs := challenges(t, 8)
	inst := NewInstance(chs[0])
	rng := rand.New(rand.NewSource(2))
	cfg := WithY(Imp9()).withDefaults()
	radius := NeighborRadiusNorm([]*Instance{inst}, 0.9)
	filter := newPairFilter(inst, cfg, radius)

	vpins := make([]int, inst.N())
	selected := make([]bool, inst.N())
	for i := range vpins {
		vpins[i] = i
		selected[i] = true
	}
	for trial := 0; trial < 100; trial++ {
		a := rng.Intn(inst.N())
		m := inst.Match(a)
		b, ok := model.SampleNegative(filter, vpins, selected, a, m, rng)
		if !ok {
			continue // legitimately no admitted negative for this v-pin
		}
		if b == m || b == a {
			t.Fatalf("negative sample returned the match or self")
		}
		if !filter.Admits(a, b) {
			t.Fatalf("negative sample (%d,%d) violates the filter", a, b)
		}
	}
}

func TestTrainingSetOnlyVpinsRestriction(t *testing.T) {
	chs := challenges(t, 8)
	insts := NewInstances(chs[:1])
	rng := rand.New(rand.NewSource(3))
	n := insts[0].N()
	only := [][]int{make([]int, 0, n/2)}
	chosen := map[int]bool{}
	for i := 0; i < n/2; i++ {
		only[0] = append(only[0], i)
		chosen[i] = true
	}
	cfg := ML9().withDefaults()
	ds := TrainingSet(cfg, insts, -1, only, rng)
	if ds.Len() == 0 {
		t.Fatal("empty restricted training set")
	}
	// Positives require both sides selected; since matches pair low and
	// high indices arbitrarily, just confirm it is smaller than the
	// unrestricted set.
	full := TrainingSet(cfg, insts, -1, nil, rng)
	if ds.Len() >= full.Len() {
		t.Errorf("restricted set (%d) not smaller than full set (%d)", ds.Len(), full.Len())
	}
}
