package attack

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteCandidates computes the candidate set of a by scanning all v-pins —
// the reference the spatial index must match exactly.
func bruteCandidates(inst *Instance, a int, radius float64, yLimit bool) []int {
	var out []int
	for b := 0; b < inst.N(); b++ {
		if b == a {
			continue
		}
		if yLimit && inst.Ex.DiffVpinYOf(a, b) != 0 {
			continue
		}
		if radius >= 0 && inst.Ex.VpinDist(a, b) > radius {
			continue
		}
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func indexCandidates(inst *Instance, a int, radius float64, yLimit bool) []int {
	var out []int
	inst.ix.candidates(a, radius, yLimit, func(b int32) {
		out = append(out, int(b))
	})
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestVpinIndexMatchesBruteForce(t *testing.T) {
	chs := challenges(t, 6)
	inst := NewInstance(chs[4]) // smallest design
	dieW := inst.dieW
	rng := rand.New(rand.NewSource(1))
	radii := []float64{-1, 0, dieW * 0.01, dieW * 0.1, dieW * 0.5, dieW * 3}
	for trial := 0; trial < 40; trial++ {
		a := rng.Intn(inst.N())
		for _, r := range radii {
			for _, yLimit := range []bool{false, true} {
				want := bruteCandidates(inst, a, r, yLimit)
				got := indexCandidates(inst, a, r, yLimit)
				if !equalInts(got, want) {
					t.Fatalf("v-pin %d radius %.0f yLimit=%v: index %d candidates, brute force %d",
						a, r, yLimit, len(got), len(want))
				}
			}
		}
	}
}

func TestVpinIndexTopLayerYBuckets(t *testing.T) {
	// At split layer 8 every true match shares its partner's y, so the
	// y-limited candidate set must always contain the match.
	chs := challenges(t, 8)
	inst := NewInstance(chs[0])
	for a := 0; a < inst.N(); a++ {
		found := false
		inst.ix.candidates(a, -1, true, func(b int32) {
			if int(b) == inst.Match(a) {
				found = true
			}
		})
		if !found {
			t.Fatalf("y-limited candidates of %d exclude its true match", a)
		}
	}
}

func TestPairFilterRules(t *testing.T) {
	chs := challenges(t, 6)
	inst := NewInstance(chs[4])

	// No filters: everything legal and distinct is admitted.
	open := newPairFilter(inst, ML9().withDefaults(), -1)
	if open.admits(0, 0) {
		t.Error("self-pair admitted")
	}
	m := inst.Match(0)
	if !open.admits(0, m) {
		t.Error("true match not admitted without filters")
	}

	// Neighborhood: radius 0 rejects everything not co-located.
	cfg := Imp9().withDefaults()
	tight := newPairFilter(inst, cfg, 0)
	admittedAny := false
	for b := 0; b < inst.N() && !admittedAny; b++ {
		if b != 0 && tight.admits(0, b) && inst.Ex.VpinDist(0, b) > 0 {
			admittedAny = true
		}
	}
	if admittedAny {
		t.Error("zero-radius filter admitted a distant pair")
	}

	// Y limit rejects pairs with different y.
	ycfg := WithY(ML9()).withDefaults()
	yf := newPairFilter(inst, ycfg, -1)
	for b := 1; b < inst.N(); b++ {
		if inst.Ex.DiffVpinYOf(0, b) != 0 && yf.admits(0, b) {
			t.Fatalf("Y filter admitted pair with DiffVpinY %f", inst.Ex.DiffVpinYOf(0, b))
		}
	}

	// Illegal (driver-driver) pairs are always rejected.
	var d1, d2 = -1, -1
	for i := 0; i < inst.N(); i++ {
		if inst.Ch.VPins[i].IsDriverSide() {
			if d1 < 0 {
				d1 = i
			} else {
				d2 = i
				break
			}
		}
	}
	if d1 >= 0 && d2 >= 0 && open.admits(d1, d2) {
		t.Error("driver-driver pair admitted")
	}
}

func TestSampleNegativeRespectsFilters(t *testing.T) {
	chs := challenges(t, 8)
	inst := NewInstance(chs[0])
	rng := rand.New(rand.NewSource(2))
	cfg := WithY(Imp9()).withDefaults()
	radius := NeighborRadiusNorm([]*Instance{inst}, 0.9)
	filter := newPairFilter(inst, cfg, radius)

	vpins := make([]int, inst.N())
	selected := make([]bool, inst.N())
	for i := range vpins {
		vpins[i] = i
		selected[i] = true
	}
	for trial := 0; trial < 100; trial++ {
		a := rng.Intn(inst.N())
		m := inst.Match(a)
		b, ok := sampleNegative(inst, filter, vpins, selected, a, m, rng)
		if !ok {
			continue // legitimately no admitted negative for this v-pin
		}
		if b == m || b == a {
			t.Fatalf("negative sample returned the match or self")
		}
		if !filter.admits(a, b) {
			t.Fatalf("negative sample (%d,%d) violates the filter", a, b)
		}
	}
}

func TestTrainingSetOnlyVpinsRestriction(t *testing.T) {
	chs := challenges(t, 8)
	insts := NewInstances(chs[:1])
	rng := rand.New(rand.NewSource(3))
	n := insts[0].N()
	only := [][]int{make([]int, 0, n/2)}
	chosen := map[int]bool{}
	for i := 0; i < n/2; i++ {
		only[0] = append(only[0], i)
		chosen[i] = true
	}
	cfg := ML9().withDefaults()
	ds := TrainingSet(cfg, insts, -1, only, rng)
	if ds.Len() == 0 {
		t.Fatal("empty restricted training set")
	}
	// Positives require both sides selected; since matches pair low and
	// high indices arbitrarily, just confirm it is smaller than the
	// unrestricted set.
	full := TrainingSet(cfg, insts, -1, nil, rng)
	if ds.Len() >= full.Len() {
		t.Errorf("restricted set (%d) not smaller than full set (%d)", ds.Len(), full.Len())
	}
}
