package attack

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"repro/internal/model"
)

// OptionsHash is a canonical content address over every configuration field
// that can change an Evaluation's bits: the display name (it is digested
// into every Evaluation), the feature set, the sampling and pruning
// refinements, the base classifier, and the retention bounds. Fields that
// are documented not to change results — Seed (a run input, not a config
// property), Workers, ShardVpins, ScalarScoring, observability, and the
// model store — are excluded, so two configs with equal hashes run to
// bit-identical evaluations given the same instances, seed, and fold.
//
// The sweep layer uses this hash as the config coordinate of its
// content-addressed work units. Every learner family serializes its
// identity here — there is no unhashable configuration, so every
// configuration checkpoints.
//
// The non-default family and ranking lines append after the historical
// fields, so every pre-family configuration (Bagging, no ranking head)
// keeps its exact historical hash; see TestOptionsHashPresetStability.
func (c Config) OptionsHash() string {
	c = c.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "attack-config/v1\n")
	fmt.Fprintf(&b, "name=%s\n", c.Name)
	fmt.Fprintf(&b, "features=%v\n", c.Features)
	fmt.Fprintf(&b, "neighborhood=%t quantile=%016x ylimit=%t twolevel=%t\n",
		c.Neighborhood, math.Float64bits(c.NeighborQuantile), c.LimitDiffVpinY, c.TwoLevel)
	fmt.Fprintf(&b, "base=%d trees=%d traincap=%d\n", c.BaseKind, c.NumTrees, c.TrainCap)
	fmt.Fprintf(&b, "maxlocfrac=%016x maxloccount=%d\n",
		math.Float64bits(c.MaxLoCFrac), c.MaxLoCCount)
	if c.Family != "" {
		fmt.Fprintf(&b, "family=%s\n", c.Family)
		if c.Family == model.FamilyMLP {
			fmt.Fprintf(&b, "mlp hidden=%d epochs=%d rate=%016x\n",
				c.MLPHidden, c.MLPEpochs, math.Float64bits(c.MLPRate))
		}
	}
	if c.Ranking {
		fmt.Fprintf(&b, "ranking=true\n")
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
