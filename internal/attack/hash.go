package attack

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
)

// OptionsHash is a canonical content address over every configuration field
// that can change an Evaluation's bits: the display name (it is digested
// into every Evaluation), the feature set, the sampling and pruning
// refinements, the base classifier, and the retention bounds. Fields that
// are documented not to change results — Seed (a run input, not a config
// property), Workers, ShardVpins, ScalarScoring, observability, and the
// model store — are excluded, so two configs with equal hashes run to
// bit-identical evaluations given the same instances, seed, and fold.
//
// The sweep layer uses this hash as the config coordinate of its
// content-addressed work units; a custom Learner has no canonical serialized
// form, so such configurations hash to "" and are never checkpointed.
func (c Config) OptionsHash() string {
	if c.Learner != nil {
		return ""
	}
	c = c.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "attack-config/v1\n")
	fmt.Fprintf(&b, "name=%s\n", c.Name)
	fmt.Fprintf(&b, "features=%v\n", c.Features)
	fmt.Fprintf(&b, "neighborhood=%t quantile=%016x ylimit=%t twolevel=%t\n",
		c.Neighborhood, math.Float64bits(c.NeighborQuantile), c.LimitDiffVpinY, c.TwoLevel)
	fmt.Fprintf(&b, "base=%d trees=%d traincap=%d\n", c.BaseKind, c.NumTrees, c.TrainCap)
	fmt.Fprintf(&b, "maxlocfrac=%016x maxloccount=%d\n",
		math.Float64bits(c.MaxLoCFrac), c.MaxLoCCount)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
