package attack

// Benchmarks for the candidate pair-scoring hot path: the scalar oracle
// (per-pair Scorer.Prob calls on the compiled arena, selected by
// Config.ScalarScoring) against the batched flat-arena path (gather into
// per-worker buffers, one ml.Ensemble.ProbBatch call per v-pin and model
// level). Both paths produce bit-identical Evaluations — batch_test.go
// proves it — so these benchmarks compare pure throughput.
//
// The pairs/s metric is the one to read: ns/op varies with the fixture's
// candidate counts, pairs/s does not.

import (
	"testing"

	"repro/internal/model"
)

// benchAttackModel trains cfg's model for target 0 of the fixture at the
// layer, exactly as runTarget would: same derived streams, same optional
// level-2 stage, same compiled arenas.
func benchAttackModel(b *testing.B, cfg Config, layer int) (Scorer, *Instance, float64) {
	b.Helper()
	insts := NewInstances(challenges(b, layer))
	train := others(insts, 0)
	radius := -1.0
	if cfg.Neighborhood {
		radius = NeighborRadiusNorm(train, cfg.NeighborQuantile)
	}
	art, _, err := model.Train(cfg.trainSpec(train, 0, radius, nil))
	if err != nil {
		b.Fatal(err)
	}
	return art.Scorer(), insts[0], radius
}

func benchScoreTarget(b *testing.B, cfg Config, scalar bool) {
	cfg = cfg.withDefaults()
	cfg.Seed = 1
	cfg.Workers = 1
	cfg.ScalarScoring = scalar
	model, inst, radius := benchAttackModel(b, cfg, 6)
	b.ResetTimer()
	var scored int64
	for i := 0; i < b.N; i++ {
		ev := scoreTarget(model, inst, cfg, radius)
		scored = ev.PairsScored
	}
	b.ReportMetric(float64(scored)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
}

func BenchmarkScoreTargetML9Scalar(b *testing.B)   { benchScoreTarget(b, ML9(), true) }
func BenchmarkScoreTargetML9Batch(b *testing.B)    { benchScoreTarget(b, ML9(), false) }
func BenchmarkScoreTargetImp11Scalar(b *testing.B) { benchScoreTarget(b, Imp11(), true) }
func BenchmarkScoreTargetImp11Batch(b *testing.B)  { benchScoreTarget(b, Imp11(), false) }
func BenchmarkScoreTargetTwoLevelScalar(b *testing.B) {
	benchScoreTarget(b, WithTwoLevel(Imp11()), true)
}
func BenchmarkScoreTargetTwoLevelBatch(b *testing.B) {
	benchScoreTarget(b, WithTwoLevel(Imp11()), false)
}
