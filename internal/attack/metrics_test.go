package attack

import (
	"math/rand"
	"slices"
	"testing"
)

// randomEval builds a random but internally consistent Evaluation: each
// v-pin gets a sorted candidate list and the truth probability is recorded
// consistently with the list contents.
func randomEval(rng *rand.Rand, n int) *Evaluation {
	ev := &Evaluation{
		N:      n,
		Cands:  make([][]Candidate, n),
		TruthP: make([]float32, n),
		Truth:  make([]int32, n),
	}
	for a := 0; a < n; a++ {
		ev.Truth[a] = int32((a + 1) % n)
		ev.TruthP[a] = -1
		k := rng.Intn(n)
		cands := make([]Candidate, 0, k)
		for j := 0; j < k; j++ {
			other := int32(rng.Intn(n))
			if int(other) == a {
				continue
			}
			// Quantised probabilities create plenty of ties, stressing the
			// tie-handling paths.
			p := float32(rng.Intn(8)) / 8
			cands = append(cands, Candidate{Other: other, P: p, D: float32(rng.Intn(1000))})
			if other == ev.Truth[a] && p > ev.TruthP[a] {
				ev.TruthP[a] = p
			}
		}
		slices.SortFunc(cands, compareCandidates)
		ev.Cands[a] = cands
	}
	return ev
}

func TestRandomEvalAccuracyMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		ev := randomEval(rng, 3+rng.Intn(30))
		prev := 0.0
		for k := 0; k <= ev.N; k++ {
			acc := ev.AccuracyAtK(k)
			if acc < prev-1e-12 {
				t.Fatalf("trial %d: accuracy decreased at k=%d", trial, k)
			}
			if acc < 0 || acc > 1 {
				t.Fatalf("trial %d: accuracy %f out of range", trial, acc)
			}
			prev = acc
		}
	}
}

func TestRandomEvalMeanLoCMonotoneInThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		ev := randomEval(rng, 3+rng.Intn(30))
		prev := ev.MeanLoC(0)
		for _, thr := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			cur := ev.MeanLoC(thr)
			if cur > prev+1e-9 {
				t.Fatalf("trial %d: MeanLoC increased at %f", trial, thr)
			}
			prev = cur
		}
	}
}

func TestRandomEvalAccuracyBelowThresholdAccuracy(t *testing.T) {
	// Accuracy at threshold t can never exceed MaxAccuracy.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		ev := randomEval(rng, 3+rng.Intn(30))
		max := ev.MaxAccuracy()
		for _, thr := range []float64{0, 0.3, 0.6, 0.9} {
			if a := ev.Accuracy(thr); a > max+1e-12 {
				t.Fatalf("trial %d: Accuracy(%f)=%f above max %f", trial, thr, a, max)
			}
		}
	}
}

func TestRandomEvalLoCForAccuracyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		ev := randomEval(rng, 3+rng.Intn(30))
		for _, target := range []float64{0.1, 0.3, 0.5} {
			loc := ev.LoCForAccuracy(target)
			if loc < 0 {
				// Unreachable: even the largest k must fall short.
				maxK := 0
				for _, c := range ev.Cands {
					if len(c) > maxK {
						maxK = len(c)
					}
				}
				if ev.AccuracyAtK(maxK) >= target {
					t.Fatalf("trial %d: LoCForAccuracy(%f) = -1 but reachable", trial, target)
				}
				continue
			}
			if ev.AccuracyAtK(int(loc)) < target-1e-12 {
				t.Fatalf("trial %d: k=%v does not reach accuracy %f", trial, loc, target)
			}
		}
	}
}

func TestRandomEvalProximityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		ev := randomEval(rng, 3+rng.Intn(30))
		for _, f := range []float64{0.01, 0.1, 0.5, 1.0} {
			s := ev.ProximitySuccess(f, rng)
			if s < 0 || s > 1 {
				t.Fatalf("trial %d: PA success %f out of range", trial, s)
			}
			if s > ev.MaxAccuracy()+1e-12 {
				t.Fatalf("trial %d: PA success %f above max accuracy %f", trial, s, ev.MaxAccuracy())
			}
		}
	}
}

func TestAggregateMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	evals := []*Evaluation{randomEval(rng, 20), randomEval(rng, 40)}
	for _, f := range []float64{0.05, 0.1, 0.5} {
		agg := AggregateAccuracyAtLoCFrac(evals, f)
		want := (evals[0].AccuracyAtLoCFrac(f) + evals[1].AccuracyAtLoCFrac(f)) / 2
		if agg != want {
			t.Errorf("aggregate accuracy at %f = %f, want %f", f, agg, want)
		}
	}
	if AggregateAccuracyAtLoCFrac(nil, 0.1) != 0 {
		t.Error("empty aggregate should be 0")
	}
	// AggregateLoCFracForAccuracy must invert AggregateAccuracyAtLoCFrac.
	target := AggregateAccuracyAtLoCFrac(evals, 0.3)
	if target > 0 {
		frac := AggregateLoCFracForAccuracy(evals, target-1e-9, 0.9)
		if frac < 0 {
			t.Fatal("reachable aggregate accuracy reported unreachable")
		}
		if got := AggregateAccuracyAtLoCFrac(evals, frac); got < target-0.05 {
			t.Errorf("inverted fraction %f yields accuracy %f, want >= %f", frac, got, target)
		}
	}
	if AggregateLoCFracForAccuracy(evals, 1.01, 0.9) != -1 {
		t.Error("impossible accuracy should be unreachable")
	}
}

func TestCurveFractionsGrid(t *testing.T) {
	fr := CurveFractions()
	if len(fr) == 0 {
		t.Fatal("empty curve grid")
	}
	for i := 1; i < len(fr); i++ {
		if fr[i] <= fr[i-1] {
			t.Fatal("curve grid not increasing")
		}
	}
	if fr[0] > 1e-4 || fr[len(fr)-1] > 0.15 {
		t.Errorf("curve grid range [%g, %g] unexpected", fr[0], fr[len(fr)-1])
	}
}

func TestResultDurations(t *testing.T) {
	r := &Result{Evals: []*Evaluation{
		{TrainDur: 100, TestDur: 10},
		{TrainDur: 300, TestDur: 30},
	}}
	if r.MeanTrainDur() != 200 {
		t.Errorf("MeanTrainDur = %v", r.MeanTrainDur())
	}
	if r.MeanTestDur() != 20 {
		t.Errorf("MeanTestDur = %v", r.MeanTestDur())
	}
	empty := &Result{}
	if empty.MeanTrainDur() != 0 || empty.MeanTestDur() != 0 {
		t.Error("empty result durations must be 0")
	}
}
