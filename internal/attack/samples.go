package attack

import (
	"math/rand"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/pairs"
	"repro/internal/split"
)

// Instance is the per-(design, split layer) state of the pair pipeline;
// see the pairs package, which owns it. The alias keeps the attack API
// stable while every consumer shares one pipeline.
type Instance = pairs.Instance

// NewInstance prepares a challenge for training or testing.
func NewInstance(ch *split.Challenge) *Instance { return pairs.New(ch) }

// NeighborRadiusNorm pools the normalised matched-pair distances of the
// given (training) instances and returns their q-quantile — the
// neighborhood radius of the Imp configurations, as a fraction of die
// width (paper §III-D, Fig. 4).
func NeighborRadiusNorm(insts []*Instance, q float64) float64 {
	return pairs.NeighborRadiusNorm(insts, q)
}

// newPairFilter builds the pair-admission filter of a configuration for
// one instance: the neighborhood radius applies only under the Imp
// improvement, the DiffVpinY limit only under the "Y" refinement.
func newPairFilter(inst *Instance, cfg Config, radiusNorm float64) pairs.Filter {
	return cfg.TrainOptions().Filter(inst, radiusNorm)
}

// TrainingSet generates the balanced sample set of §III-B from the given
// training instances: one positive (true match) per v-pin plus one random
// admitted negative per v-pin. onlyVpins, when non-nil, restricts sample
// generation to the listed v-pins of each instance (used by the proximity
// attack's 80/20 validation split). The sampling stage lives in the model
// package; this wrapper projects the configuration's training options.
func TrainingSet(cfg Config, insts []*Instance, radiusNorm float64,
	onlyVpins [][]int, rng *rand.Rand) *ml.Dataset {
	return model.TrainingSet(cfg.Obs, cfg.TrainOptions(), insts, radiusNorm, onlyVpins, rng)
}
