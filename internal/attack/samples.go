package attack

import (
	"math/rand"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/split"
)

// Instance bundles a challenge with its feature extractor; one Instance per
// (design, split layer).
type Instance struct {
	Ch *split.Challenge
	Ex *features.Extractor
	// match[i] is the ground-truth partner of v-pin i.
	match []int32
	// dieW normalises distances across designs of different sizes.
	dieW float64
	ix   *vpinIndex
}

// NewInstance prepares a challenge for training or testing.
func NewInstance(ch *split.Challenge) *Instance {
	inst := &Instance{
		Ch:    ch,
		Ex:    features.NewExtractor(ch),
		match: make([]int32, len(ch.VPins)),
		dieW:  float64(ch.Design.Die().Width()),
	}
	for i := range ch.VPins {
		inst.match[i] = int32(ch.VPins[i].Match)
	}
	inst.ix = newVpinIndex(ch)
	return inst
}

// N returns the v-pin count.
func (inst *Instance) N() int { return len(inst.Ch.VPins) }

// Match returns the ground-truth partner of v-pin a.
func (inst *Instance) Match(a int) int { return int(inst.match[a]) }

// matchDistsNorm returns the ManhattanVpin distance of every true match,
// normalised by die width (one entry per cut net).
func (inst *Instance) matchDistsNorm() []float64 {
	out := make([]float64, 0, inst.N()/2)
	for a := 0; a < inst.N(); a++ {
		m := inst.Match(a)
		if a < m {
			out = append(out, inst.Ex.VpinDist(a, m)/inst.dieW)
		}
	}
	return out
}

// NeighborRadiusNorm pools the normalised matched-pair distances of the
// given (training) instances and returns their q-quantile — the
// neighborhood radius of the Imp configurations, as a fraction of die
// width (paper §III-D, Fig. 4).
func NeighborRadiusNorm(insts []*Instance, q float64) float64 {
	var all []float64
	for _, inst := range insts {
		all = append(all, inst.matchDistsNorm()...)
	}
	return ml.Quantile(all, q)
}

// pairFilter bundles the candidate-pair admission rules of a configuration
// for one instance.
type pairFilter struct {
	inst   *Instance
	radius float64 // absolute DBU; <0 disables the neighborhood test
	yLimit bool
}

func newPairFilter(inst *Instance, cfg Config, radiusNorm float64) pairFilter {
	f := pairFilter{inst: inst, radius: -1, yLimit: cfg.LimitDiffVpinY}
	if cfg.Neighborhood {
		f.radius = radiusNorm * inst.dieW
	}
	return f
}

// admits reports whether the pair (a, b) may be trained on or tested.
func (f pairFilter) admits(a, b int) bool {
	if a == b || !f.inst.Ex.Legal(a, b) {
		return false
	}
	if f.yLimit && f.inst.Ex.DiffVpinYOf(a, b) != 0 {
		return false
	}
	if f.radius >= 0 && f.inst.Ex.VpinDist(a, b) > f.radius {
		return false
	}
	return true
}

// TrainingSet generates the balanced sample set of §III-B from the given
// training instances: one positive (true match) per v-pin plus one random
// admitted negative per v-pin. onlyVpins, when non-nil, restricts sample
// generation to the listed v-pins of each instance (used by the proximity
// attack's 80/20 validation split).
func TrainingSet(cfg Config, insts []*Instance, radiusNorm float64,
	onlyVpins [][]int, rng *rand.Rand) *ml.Dataset {

	ds := &ml.Dataset{}
	for k, inst := range insts {
		filter := newPairFilter(inst, cfg, radiusNorm)
		n := inst.N()
		vpins := onlyVpins0(onlyVpins, k, n)
		selected := make([]bool, n)
		for _, a := range vpins {
			selected[a] = true
		}
		for _, a := range vpins {
			m := inst.Match(a)
			if !selected[m] || !filter.admits(a, m) {
				continue
			}
			row := make([]float64, features.NumFeatures)
			inst.Ex.Pair(a, m, row)
			ds.Add(row, true)

			// Matched negative: a random admitted non-matching partner.
			if b, ok := sampleNegative(inst, filter, vpins, selected, a, m, rng); ok {
				neg := make([]float64, features.NumFeatures)
				inst.Ex.Pair(a, b, neg)
				ds.Add(neg, false)
			}
		}
	}
	if cfg.TrainCap > 0 && ds.Len() > cfg.TrainCap {
		idx := rng.Perm(ds.Len())[:cfg.TrainCap]
		ds = ds.Subset(idx)
	}
	cfg.Obs.Metrics().Histogram("attack.trainset.size").Observe(float64(ds.Len()))
	cfg.Obs.Log().Debug("training set sampled", "config", cfg.Name,
		"designs", len(insts), "samples", ds.Len())
	return ds
}

// sampleNegative draws a uniform random admitted non-matching partner for
// a. It first tries cheap rejection sampling; under tight filters (small
// neighborhoods, Y-limits) where rejection rarely lands, it falls back to
// reservoir sampling over the index's pre-filtered candidate stream.
func sampleNegative(inst *Instance, filter pairFilter, vpins []int,
	selected []bool, a, m int, rng *rand.Rand) (int, bool) {

	const tries = 40
	for t := 0; t < tries; t++ {
		b := vpins[rng.Intn(len(vpins))]
		if b != m && filter.admits(a, b) {
			return b, true
		}
	}
	// Reservoir over all admitted candidates of a.
	chosen, count := -1, 0
	inst.ix.candidates(a, filter.radius, filter.yLimit, func(b32 int32) {
		b := int(b32)
		if b == m || !selected[b] || !inst.Ex.Legal(a, b) {
			return
		}
		count++
		if rng.Intn(count) == 0 {
			chosen = b
		}
	})
	if chosen < 0 {
		return 0, false
	}
	return chosen, true
}

func onlyVpins0(only [][]int, k, n int) []int {
	if only != nil {
		return only[k]
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// vpinIndex accelerates candidate enumeration: spatial buckets for
// neighborhood queries and exact-y buckets for the "Y" configurations.
type vpinIndex struct {
	n    int
	tile float64
	nx   int
	ny   int
	grid [][]int32
	byY  map[int64][]int32
	xs   []float64
	ys   []float64
}

func newVpinIndex(ch *split.Challenge) *vpinIndex {
	die := ch.Design.Die()
	n := len(ch.VPins)
	ix := &vpinIndex{
		n:    n,
		tile: float64(die.Width()) / 32,
		byY:  make(map[int64][]int32),
		xs:   make([]float64, n),
		ys:   make([]float64, n),
	}
	if ix.tile <= 0 {
		ix.tile = 1
	}
	ix.nx = int(float64(die.Width())/ix.tile) + 2
	ix.ny = int(float64(die.Height())/ix.tile) + 2
	ix.grid = make([][]int32, ix.nx*ix.ny)
	for i := range ch.VPins {
		x := float64(ch.VPins[i].Pos.X)
		y := float64(ch.VPins[i].Pos.Y)
		ix.xs[i], ix.ys[i] = x, y
		tx, ty := ix.tileOf(x, y)
		ix.grid[ty*ix.nx+tx] = append(ix.grid[ty*ix.nx+tx], int32(i))
		yi := int64(ch.VPins[i].Pos.Y)
		ix.byY[yi] = append(ix.byY[yi], int32(i))
	}
	return ix
}

func (ix *vpinIndex) tileOf(x, y float64) (int, int) {
	tx := int(x / ix.tile)
	ty := int(y / ix.tile)
	if tx < 0 {
		tx = 0
	}
	if ty < 0 {
		ty = 0
	}
	if tx >= ix.nx {
		tx = ix.nx - 1
	}
	if ty >= ix.ny {
		ty = ix.ny - 1
	}
	return tx, ty
}

// candidates invokes fn for every v-pin b that passes the geometric
// pre-filters relative to a (excluding a itself). Legality is not checked
// here; callers apply pairFilter.admits or an equivalent.
func (ix *vpinIndex) candidates(a int, radius float64, yLimit bool, fn func(b int32)) {
	if yLimit {
		for _, b := range ix.byY[int64(ix.ys[a])] {
			if int(b) == a {
				continue
			}
			if radius >= 0 {
				d := ix.xs[a] - ix.xs[int(b)]
				if d < 0 {
					d = -d
				}
				if d > radius {
					continue
				}
			}
			fn(b)
		}
		return
	}
	if radius < 0 {
		for b := int32(0); b < int32(ix.n); b++ {
			if int(b) != a {
				fn(b)
			}
		}
		return
	}
	x, y := ix.xs[a], ix.ys[a]
	tx0, ty0 := ix.tileOf(x-radius, y-radius)
	tx1, ty1 := ix.tileOf(x+radius, y+radius)
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			for _, b := range ix.grid[ty*ix.nx+tx] {
				if int(b) == a {
					continue
				}
				dx := x - ix.xs[b]
				if dx < 0 {
					dx = -dx
				}
				dy := y - ix.ys[b]
				if dy < 0 {
					dy = -dy
				}
				if dx+dy <= radius {
					fn(b)
				}
			}
		}
	}
}
