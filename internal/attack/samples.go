package attack

import (
	"math/rand"

	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/pairs"
	"repro/internal/split"
)

// Instance is the per-(design, split layer) state of the pair pipeline;
// see the pairs package, which owns it. The alias keeps the attack API
// stable while every consumer shares one pipeline.
type Instance = pairs.Instance

// NewInstance prepares a challenge for training or testing.
func NewInstance(ch *split.Challenge) *Instance { return pairs.New(ch) }

// NeighborRadiusNorm pools the normalised matched-pair distances of the
// given (training) instances and returns their q-quantile — the
// neighborhood radius of the Imp configurations, as a fraction of die
// width (paper §III-D, Fig. 4).
func NeighborRadiusNorm(insts []*Instance, q float64) float64 {
	return pairs.NeighborRadiusNorm(insts, q)
}

// newPairFilter builds the pair-admission filter of a configuration for
// one instance: the neighborhood radius applies only under the Imp
// improvement, the DiffVpinY limit only under the "Y" refinement.
func newPairFilter(inst *Instance, cfg Config, radiusNorm float64) pairs.Filter {
	if !cfg.Neighborhood {
		radiusNorm = -1
	}
	return inst.Filter(radiusNorm, cfg.LimitDiffVpinY)
}

// TrainingSet generates the balanced sample set of §III-B from the given
// training instances: one positive (true match) per v-pin plus one random
// admitted negative per v-pin. onlyVpins, when non-nil, restricts sample
// generation to the listed v-pins of each instance (used by the proximity
// attack's 80/20 validation split).
func TrainingSet(cfg Config, insts []*Instance, radiusNorm float64,
	onlyVpins [][]int, rng *rand.Rand) *ml.Dataset {

	ds := &ml.Dataset{}
	for k, inst := range insts {
		filter := newPairFilter(inst, cfg, radiusNorm)
		n := inst.N()
		vpins := onlyVpins0(onlyVpins, k, n)
		selected := make([]bool, n)
		for _, a := range vpins {
			selected[a] = true
		}
		for _, a := range vpins {
			m := inst.Match(a)
			if m < 0 || !selected[m] || !filter.Admits(a, m) {
				continue
			}
			row := make([]float64, features.NumFeatures)
			inst.Ex.Pair(a, m, row)
			ds.Add(row, true)

			// Matched negative: a random admitted non-matching partner.
			if b, ok := sampleNegative(filter, vpins, selected, a, m, rng); ok {
				neg := make([]float64, features.NumFeatures)
				inst.Ex.Pair(a, b, neg)
				ds.Add(neg, false)
			}
		}
	}
	if cfg.TrainCap > 0 && ds.Len() > cfg.TrainCap {
		idx := rng.Perm(ds.Len())[:cfg.TrainCap]
		ds = ds.Subset(idx)
	}
	cfg.Obs.Metrics().Histogram("attack.trainset.size").Observe(float64(ds.Len()))
	cfg.Obs.Log().Debug("training set sampled", "config", cfg.Name,
		"designs", len(insts), "samples", ds.Len())
	return ds
}

// sampleNegative draws a uniform random admitted non-matching partner for
// a. It first tries cheap rejection sampling; under tight filters (small
// neighborhoods, Y-limits) where rejection rarely lands, it falls back to
// reservoir sampling over the filter's admitted candidate stream.
func sampleNegative(filter pairs.Filter, vpins []int,
	selected []bool, a, m int, rng *rand.Rand) (int, bool) {

	const tries = 40
	for t := 0; t < tries; t++ {
		b := vpins[rng.Intn(len(vpins))]
		if b != m && filter.Admits(a, b) {
			return b, true
		}
	}
	// Reservoir over all admitted candidates of a.
	chosen, count := -1, 0
	filter.Enumerate(a, func(b32 int32) {
		b := int(b32)
		if b == m || !selected[b] {
			return
		}
		count++
		if rng.Intn(count) == 0 {
			chosen = b
		}
	})
	if chosen < 0 {
		return 0, false
	}
	return chosen, true
}

func onlyVpins0(only [][]int, k, n int) []int {
	if only != nil {
		return only[k]
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
