package attack

// Batch/scalar equivalence: the batched flat-arena scoring path must be a
// pure performance change. Every test here compares Config.ScalarScoring
// (the per-pair Bagging.Prob oracle) against the default batched path and
// requires bit-identical Evaluations.

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/pairs"
)

// TestBatchScoringMatchesScalar is the tentpole equivalence guarantee:
// full leave-one-out runs through the batch path are byte-identical to the
// scalar oracle — candidate lists, truth probabilities, pair counts — for
// plain, neighborhood, two-level, and Y configurations, at any worker
// count.
func TestBatchScoringMatchesScalar(t *testing.T) {
	cases := []struct {
		cfg   Config
		layer int
	}{
		{ML9(), 6},
		{Imp11(), 6},
		{WithTwoLevel(Imp11()), 8},
		{WithY(Imp9()), 8},
	}
	for _, tc := range cases {
		scalar := tc.cfg
		scalar.Seed = 11
		scalar.Workers = 1
		scalar.ScalarScoring = true
		want, err := Run(scalar, challenges(t, tc.layer))
		if err != nil {
			t.Fatalf("%s scalar: %v", tc.cfg.Name, err)
		}
		for _, ev := range want.Evals {
			if ev.Batches != 0 || ev.BatchRows != 0 {
				t.Fatalf("%s: scalar path reported %d batches", tc.cfg.Name, ev.Batches)
			}
		}
		for _, w := range []int{1, 3} {
			batch := tc.cfg
			batch.Seed = 11
			batch.Workers = w
			got, err := Run(batch, challenges(t, tc.layer))
			if err != nil {
				t.Fatalf("%s batch workers=%d: %v", tc.cfg.Name, w, err)
			}
			label := fmt.Sprintf("%s layer %d workers %d", tc.cfg.Name, tc.layer, w)
			sameResult(t, label, want, got)
			for i := range got.Evals {
				a, b := want.Evals[i], got.Evals[i]
				if a.PairsScored != b.PairsScored {
					t.Fatalf("%s: target %d scored %d pairs, scalar %d",
						label, i, b.PairsScored, a.PairsScored)
				}
				if b.Batches == 0 {
					t.Fatalf("%s: target %d never used the batch path", label, i)
				}
				if tc.cfg.TwoLevel {
					// Level-2 batches re-score only the level-1 survivors.
					if b.BatchRows <= b.PairsScored {
						t.Fatalf("%s: target %d two-level batch rows %d not above pair count %d",
							label, i, b.BatchRows, b.PairsScored)
					}
				} else if b.BatchRows != b.PairsScored {
					t.Fatalf("%s: target %d batch rows %d != pairs scored %d",
						label, i, b.BatchRows, b.PairsScored)
				}
			}
		}
	}
}

// TestBatchProximityMatchesScalar extends the equivalence to the proximity
// attack: its validation stage scores held-out v-pins through scoreSubset
// and must be unaffected by the scoring path.
func TestBatchProximityMatchesScalar(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	cfg.Seed = 42
	cfg.Workers = 1
	prior, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunProximityOn(cfg, chs, prior)
	if err != nil {
		t.Fatal(err)
	}
	sc := cfg
	sc.ScalarScoring = true
	scalar, err := RunProximityOn(sc, chs, prior)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		// Durations are measurements, not results; compare everything else.
		if batch[i].Design != scalar[i].Design || batch[i].Success != scalar[i].Success ||
			batch[i].FixedSuccess != scalar[i].FixedSuccess || batch[i].BestFrac != scalar[i].BestFrac {
			t.Fatalf("PA outcome %d differs: batch %+v vs scalar %+v", i, batch[i], scalar[i])
		}
	}
}

// TestScalarFamilyFallsBackToScalar: the logistic family trains a plain
// Scorer with no ProbBatch; the engine must quietly fall back to per-pair
// Prob.
func TestScalarFamilyFallsBackToScalar(t *testing.T) {
	chs := challenges(t, 8)
	cfg := WithFamily(Imp9(), model.FamilyLogistic)
	cfg.Name = "Imp-9-logistic-fallback"
	cfg.Seed = 8
	ev, _, err := RunTarget(cfg, chs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Batches != 0 || ev.BatchRows != 0 {
		t.Fatalf("scalar-family run reported %d batches / %d rows; expected the scalar fallback",
			ev.Batches, ev.BatchRows)
	}
	if ev.PairsScored == 0 {
		t.Fatal("fallback path scored nothing")
	}
}

// TestMLPFamilyUsesBatchPath pins that the MLP family rides the batched
// flat-arena engine exactly like the tree ensemble — a regression here
// silently reverts every DL-perspective run to scalar speed.
func TestMLPFamilyUsesBatchPath(t *testing.T) {
	chs := challenges(t, 8)
	cfg := DLMLP()
	cfg.Seed = 8
	cfg.MLPEpochs = 3
	ev, _, err := RunTarget(cfg, chs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Batches == 0 || ev.BatchRows != ev.PairsScored {
		t.Fatalf("batch counters %d/%d for %d pairs; MLP batch path not engaged",
			ev.Batches, ev.BatchRows, ev.PairsScored)
	}
}

// TestBatchDefaultPathIsUsed pins that the standard tree configurations do
// go through the batch engine (a regression here would silently revert the
// hot path to scalar speed).
func TestBatchDefaultPathIsUsed(t *testing.T) {
	chs := challenges(t, 8)
	cfg := ML9()
	cfg.Seed = 8
	ev, _, err := RunTarget(cfg, chs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Batches == 0 || ev.BatchRows != ev.PairsScored {
		t.Fatalf("batch counters %d/%d for %d pairs; batch path not engaged",
			ev.Batches, ev.BatchRows, ev.PairsScored)
	}
}

// TestBatchGatherScoreAllocFree guards the zero-steady-state-allocation
// property of the scoring inner loop: once a worker's buffers have grown to
// the largest candidate set seen, gather+score must not allocate.
func TestBatchGatherScoreAllocFree(t *testing.T) {
	insts := NewInstances(challenges(t, 6))
	for _, base := range []Config{Imp11(), WithTwoLevel(Imp11())} {
		cfg := base.withDefaults()
		cfg.Seed = 3
		train := others(insts, 0)
		radius := NeighborRadiusNorm(train, cfg.NeighborQuantile)
		art, _, err := model.Train(cfg.trainSpec(train, 0, radius, nil))
		if err != nil {
			t.Fatal(err)
		}
		sc := art.Scorer()
		backend := pairs.ResolveBackend(sc, false)
		if !pairs.Batched(backend) {
			t.Fatalf("%s: trained model is not batchable", cfg.Name)
		}
		inst := insts[0]
		filter := newPairFilter(inst, cfg, radius)
		var g pairs.Gatherer
		warm := inst.N()
		if warm > 64 {
			warm = 64
		}
		for a := 0; a < warm; a++ {
			g.Gather(filter, a)
			g.Score(backend)
		}
		allocs := testing.AllocsPerRun(50, func() {
			for a := 0; a < warm; a++ {
				g.Gather(filter, a)
				g.Score(backend)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: gather+score allocated %.1f times per run after warmup", cfg.Name, allocs)
		}
	}
}
