package attack

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestArtifactScoringBitIdentity is the tentpole acceptance check: a model
// trained by the train stage, serialized, and reloaded from its binary form
// produces a bit-identical evaluation to the in-process path — at a
// different worker count, too.
func TestArtifactScoringBitIdentity(t *testing.T) {
	chs := challenges(t, 8)
	for _, mk := range []func() Config{Imp11, func() Config { return WithTwoLevel(Imp11()) }} {
		cfg := mk()
		cfg.Seed = 42
		cfg.Workers = 1
		insts := NewInstances(chs)

		ev, radius, err := RunTargetInstances(cfg, insts, 0)
		if err != nil {
			t.Fatal(err)
		}

		spec, specRadius, err := TrainSpec(cfg, insts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if specRadius != radius {
			t.Fatalf("%s: TrainSpec radius %v, run radius %v", cfg.Name, specRadius, radius)
		}
		art, _, err := model.Train(spec)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := art.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := model.UnmarshalArtifact(blob)
		if err != nil {
			t.Fatal(err)
		}

		c2 := cfg
		c2.Workers = runtime.GOMAXPROCS(0)
		ev2, radius2, err := RunTargetArtifact(c2, insts, 0, back)
		if err != nil {
			t.Fatal(err)
		}
		if radius2 != radius {
			t.Fatalf("%s: artifact run radius %v, want %v", cfg.Name, radius2, radius)
		}
		sameEval(t, cfg.Name+": artifact vs in-process", ev, ev2)
	}
}

// TestRunWithStoreBitIdentity: wiring a Store into a run changes nothing
// about its results — cold (every fold trains) or warm (every fold hits).
func TestRunWithStoreBitIdentity(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	cfg.Seed = 42
	base, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}

	cached := cfg
	cached.Models = model.NewStore(0, "")
	cold, err := Run(cached, chs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "store cold vs no store", base, cold)

	warm, err := Run(cached, chs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "store warm vs no store", base, warm)
	if got, want := cached.Models.Len(), len(chs); got != want {
		t.Fatalf("store holds %d artifacts, want one per fold (%d)", got, want)
	}
}

// TestArtifactSpecMismatchRejected: an artifact trained for one fold (or
// seed) must be refused by a run whose spec differs, instead of silently
// producing wrong-model scores.
func TestArtifactSpecMismatchRejected(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp11()
	cfg.Seed = 42
	insts := NewInstances(chs)
	spec, _, err := TrainSpec(cfg, insts, 0)
	if err != nil {
		t.Fatal(err)
	}
	art, _, err := model.Train(spec)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := RunTargetArtifact(cfg, insts, 1, art); err == nil {
		t.Fatal("artifact for fold 0 accepted by fold 1")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatch error %q does not explain itself", err)
	}

	wrongSeed := cfg
	wrongSeed.Seed = 43
	if _, _, err := RunTargetArtifact(wrongSeed, insts, 0, art); err == nil {
		t.Fatal("artifact for seed 42 accepted by a seed-43 run")
	}
}
