package attack

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ml"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pairs"
	"repro/internal/rng"
)

// sameResult fails the test unless a and b are byte-identical: every
// evaluation's candidate lists, truth probabilities, ground truth, and
// neighborhood radii must match exactly. Durations are excluded — they are
// wall-clock measurements, not results.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Evals) != len(b.Evals) {
		t.Fatalf("%s: %d vs %d evaluations", label, len(a.Evals), len(b.Evals))
	}
	for i := range a.Evals {
		if a.RadiusNorm[i] != b.RadiusNorm[i] {
			t.Fatalf("%s: target %d: RadiusNorm %v vs %v", label, i, a.RadiusNorm[i], b.RadiusNorm[i])
		}
		sameEval(t, fmt.Sprintf("%s: target %d", label, i), a.Evals[i], b.Evals[i])
	}
}

func sameEval(t *testing.T, label string, a, b *Evaluation) {
	t.Helper()
	if a == nil || b == nil {
		if a != b {
			t.Fatalf("%s: one evaluation is nil", label)
		}
		return
	}
	if a.Design != b.Design || a.N != b.N || a.SplitLayer != b.SplitLayer {
		t.Fatalf("%s: identity differs: %s/%d/%d vs %s/%d/%d",
			label, a.Design, a.N, a.SplitLayer, b.Design, b.N, b.SplitLayer)
	}
	for v := range a.TruthP {
		if a.TruthP[v] != b.TruthP[v] {
			t.Fatalf("%s: TruthP[%d] = %v vs %v", label, v, a.TruthP[v], b.TruthP[v])
		}
		if a.Truth[v] != b.Truth[v] {
			t.Fatalf("%s: Truth[%d] = %d vs %d", label, v, a.Truth[v], b.Truth[v])
		}
	}
	for v := range a.Cands {
		if len(a.Cands[v]) != len(b.Cands[v]) {
			t.Fatalf("%s: v-pin %d has %d vs %d candidates", label, v, len(a.Cands[v]), len(b.Cands[v]))
		}
		for j := range a.Cands[v] {
			if a.Cands[v][j] != b.Cands[v][j] {
				t.Fatalf("%s: candidate %d/%d: %+v vs %+v", label, v, j, a.Cands[v][j], b.Cands[v][j])
			}
		}
	}
}

// TestRunDeterministicAcrossWorkers is the tentpole guarantee: Run's output
// is byte-identical for every worker count, and equals RunTarget per index.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	cfg.Seed = 42

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	results := make([]*Result, len(workerCounts))
	for i, w := range workerCounts {
		c := cfg
		c.Workers = w
		r, err := Run(c, chs)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		results[i] = r
	}
	for i := 1; i < len(results); i++ {
		sameResult(t, fmt.Sprintf("workers %d vs %d", workerCounts[0], workerCounts[i]),
			results[0], results[i])
	}

	for target := range chs {
		ev, radius, err := RunTarget(cfg, chs, target)
		if err != nil {
			t.Fatalf("RunTarget(%d): %v", target, err)
		}
		if radius != results[0].RadiusNorm[target] {
			t.Fatalf("RunTarget(%d): radius %v, want %v", target, radius, results[0].RadiusNorm[target])
		}
		sameEval(t, fmt.Sprintf("RunTarget(%d)", target), results[0].Evals[target], ev)
	}
}

// TestTwoLevelDeterministicAcrossWorkers covers the streams the plain run
// never touches: level-2 negative draws and the level-2 ensemble.
func TestTwoLevelDeterministicAcrossWorkers(t *testing.T) {
	chs := challenges(t, 8)
	cfg := WithTwoLevel(Imp11())
	cfg.Seed = 7

	serial := cfg
	serial.Workers = 1
	a, err := Run(serial, chs)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Workers = runtime.GOMAXPROCS(0)
	b, err := Run(parallel, chs)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "two-level workers 1 vs GOMAXPROCS", a, b)
}

// TestProximityDeterministicAcrossWorkers checks the PA pipeline: outcomes
// are identical at any worker count and whether candidates are reused from
// a prior run (RunProximityOn) or computed per target (ProximityTarget).
func TestProximityDeterministicAcrossWorkers(t *testing.T) {
	chs := challenges(t, 8)
	cfg := Imp9()
	cfg.Seed = 42
	cfg.Workers = runtime.GOMAXPROCS(0)
	prior, err := Run(cfg, chs)
	if err != nil {
		t.Fatal(err)
	}

	var base []PAOutcome
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		c := cfg
		c.Workers = w
		outs, err := RunProximityOn(c, chs, prior)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if base == nil {
			base = outs
			continue
		}
		for i := range outs {
			if outs[i].Design != base[i].Design || outs[i].Success != base[i].Success ||
				outs[i].FixedSuccess != base[i].FixedSuccess || outs[i].BestFrac != base[i].BestFrac {
				t.Fatalf("workers=%d: PA outcome %d differs: %+v vs %+v", w, i, outs[i], base[i])
			}
		}
	}

	for target := range chs {
		out, err := ProximityTarget(cfg, chs, target, prior.Evals[target], prior.RadiusNorm[target])
		if err != nil {
			t.Fatal(err)
		}
		if out.Success != base[target].Success || out.FixedSuccess != base[target].FixedSuccess ||
			out.BestFrac != base[target].BestFrac {
			t.Fatalf("ProximityTarget(%d) = %+v, want %+v", target, out, base[target])
		}
	}
}

// TestRunCollectsPartialErrors pins the bugfix: one failing target must not
// discard its siblings' evaluations. The test-only failing family identifies
// which target it is training for by the first draw of its derived stream —
// the stream is a pure function of (seed, unit, target), which is itself the
// property under test.
func TestRunCollectsPartialErrors(t *testing.T) {
	chs := challenges(t, 8)
	cfg := WithFamily(ML9(), "test-fail")
	cfg.Name = "ML-9-partial"
	cfg.Seed = 13
	cfg.Workers = 2

	const failTarget = 1
	failFamilyDraw.Store(rng.Derive(cfg.Seed, model.UnitLevel1, failTarget).Int63())

	res, err := Run(cfg, chs)
	if err == nil {
		t.Fatal("Run succeeded despite a failing target")
	}
	if res == nil {
		t.Fatal("Run returned no partial result")
	}
	if !strings.Contains(err.Error(), "1 of 5 targets failed") {
		t.Errorf("error %q does not report the failure count", err)
	}
	if !strings.Contains(err.Error(), chs[failTarget].Design.Name) {
		t.Errorf("error %q does not name the failing design", err)
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Errorf("error %q does not wrap the cause", err)
	}
	for i, ev := range res.Evals {
		if i == failTarget {
			if ev != nil {
				t.Errorf("failed target %d has an evaluation", i)
			}
			if res.RadiusNorm[i] != -1 {
				t.Errorf("failed target %d has radius %v, want -1", i, res.RadiusNorm[i])
			}
			continue
		}
		if ev == nil {
			t.Errorf("sibling target %d lost its evaluation", i)
		}
	}
	if res.MeanTrainDur() < 0 || res.MeanTestDur() < 0 {
		t.Error("partial-result durations must not panic or go negative")
	}
}

// constScorer is a trivial concurrency-safe Scorer for failure-path tests.
type constScorer struct{}

func (constScorer) Prob(x []float64) float64 { return 0.5 }

// failFamily is a test-only learner family whose Train fails exactly when
// its derived stream's first draw matches failFamilyDraw — proving the
// stream is a pure function of (seed, unit, target).
type failFamily struct{}

var failFamilyDraw atomic.Int64

func (failFamily) Name() string { return "test-fail" }

func (failFamily) HashOptions(w io.Writer, o model.TrainOptions) {
	fmt.Fprintf(w, "family=test-fail\n")
}

func (failFamily) Train(ctx model.TrainContext, ds *ml.Dataset) (pairs.Scorer, error) {
	if ctx.Rng().Int63() == failFamilyDraw.Load() {
		return nil, fmt.Errorf("injected failure")
	}
	return constScorer{}, nil
}

func (f failFamily) TrainSeq(o *obs.Context, opts model.TrainOptions, ds *ml.Dataset, r *rand.Rand) (pairs.Scorer, error) {
	return constScorer{}, nil
}

func (failFamily) Encode(sc pairs.Scorer) ([]byte, error) {
	return nil, fmt.Errorf("test-fail family is not serializable")
}

func (failFamily) Decode(data []byte) (pairs.Scorer, error) {
	return nil, fmt.Errorf("test-fail family is not serializable")
}

func init() { model.Register(failFamily{}) }
