package attack

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/split"
)

// Industrial-tier smoke fixture: the sbx* suite at a small scale, so the
// streamed scoring path, the absolute retention cap, and the tier plumbing
// are all exercised in seconds rather than minutes. The full-size tier is
// validated by cmd/benchgen's industrial baseline.
var (
	indOnce sync.Once
	indErr  error
	indChs  []*split.Challenge
)

func industrialChallenges(t testing.TB) []*split.Challenge {
	t.Helper()
	indOnce.Do(func() {
		designs, err := layout.GenerateSuite(layout.SuiteConfig{
			Tier: layout.TierIndustrial, Scale: 0.02, Seed: 3})
		if err != nil {
			indErr = err
			return
		}
		for _, d := range designs {
			c, err := split.NewChallenge(d, 6)
			if err != nil {
				indErr = err
				return
			}
			indChs = append(indChs, c)
		}
	})
	if indErr != nil {
		t.Fatal(indErr)
	}
	return indChs
}

// industrialSmokeConfig is Imp-11 trimmed for test speed, with the tier's
// memory bounds on.
func industrialSmokeConfig() Config {
	cfg := Imp11()
	cfg.Seed = 11
	cfg.NumTrees = 3
	cfg.MaxLoCCount = 64
	return cfg
}

// TestIndustrialTierSmoke runs the leave-one-out attack on the tiny
// industrial suite across worker counts and shard sizes: every combination
// must produce the same evaluation digest, and the absolute retention cap
// must hold on every candidate list.
func TestIndustrialTierSmoke(t *testing.T) {
	chs := industrialChallenges(t)
	base := industrialSmokeConfig()

	type combo struct{ workers, shard int }
	combos := []combo{
		{workers: 1, shard: 0},
		{workers: 4, shard: 17},
		{workers: runtime.GOMAXPROCS(0), shard: 1},
		{workers: 2, shard: 1 << 20},
	}
	var want *Evaluation
	var wantDigest string
	for _, c := range combos {
		cfg := base
		cfg.Workers = c.workers
		cfg.ShardVpins = c.shard
		ev, _, err := RunTarget(cfg, chs, 0)
		if err != nil {
			t.Fatalf("workers=%d shard=%d: %v", c.workers, c.shard, err)
		}
		if want == nil {
			want, wantDigest = ev, ev.Digest()
			continue
		}
		if got := ev.Digest(); got != wantDigest {
			t.Errorf("workers=%d shard=%d: digest %s, want %s", c.workers, c.shard, got, wantDigest)
		}
		sameEval(t, fmt.Sprintf("workers=%d shard=%d", c.workers, c.shard), want, ev)
	}

	for v, cands := range want.Cands {
		if len(cands) > base.MaxLoCCount {
			t.Fatalf("v-pin %d retained %d candidates, cap %d", v, len(cands), base.MaxLoCCount)
		}
	}
	var retained int64
	for _, cands := range want.Cands {
		retained += int64(len(cands))
	}
	if want.Retained != retained {
		t.Errorf("Retained = %d, lists hold %d", want.Retained, retained)
	}
	if want.Regions < 1 {
		t.Errorf("Regions = %d, want >= 1", want.Regions)
	}
}

// TestMaxLoCCountTruncatesExactly pins the compact-retention contract: the
// capped run's lists are exactly the uncapped run's lists cut at the cap,
// so FCR/LoC metrics agree wherever the retained bound covers them.
func TestMaxLoCCountTruncatesExactly(t *testing.T) {
	chs := industrialChallenges(t)
	full := industrialSmokeConfig()
	full.MaxLoCCount = 0
	capped := industrialSmokeConfig()

	evFull, _, err := RunTarget(full, chs, 1)
	if err != nil {
		t.Fatal(err)
	}
	evCapped, _, err := RunTarget(capped, chs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range evFull.Cands {
		want := evFull.Cands[v]
		if len(want) > capped.MaxLoCCount {
			want = want[:capped.MaxLoCCount]
		}
		got := evCapped.Cands[v]
		if len(got) != len(want) {
			t.Fatalf("v-pin %d: capped list has %d candidates, want %d", v, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("v-pin %d candidate %d: %+v, want %+v", v, j, got[j], want[j])
			}
		}
		if evFull.TruthP[v] != evCapped.TruthP[v] {
			t.Fatalf("v-pin %d: TruthP %v vs %v", v, evFull.TruthP[v], evCapped.TruthP[v])
		}
	}
	if evFull.PairsScored != evCapped.PairsScored {
		t.Errorf("capped run scored %d pairs, uncapped %d — the cap must change retention, not scoring",
			evCapped.PairsScored, evFull.PairsScored)
	}
}

func TestConfigValidateMemoryKnobs(t *testing.T) {
	cfg := Imp11()
	cfg.MaxLoCCount = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative MaxLoCCount accepted")
	}
	cfg = Imp11()
	cfg.ShardVpins = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative ShardVpins accepted")
	}
	cfg = Imp11()
	cfg.MaxLoCCount = 64
	cfg.ShardVpins = 100
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid memory knobs rejected: %v", err)
	}
}

func TestRetainCap(t *testing.T) {
	cfg := Imp11().withDefaults() // MaxLoCFrac 0 resolves to 0.15
	if got := cfg.retainCap(1000); got != 150 {
		t.Errorf("retainCap(1000) = %d, want 150", got)
	}
	cfg.MaxLoCCount = 100
	if got := cfg.retainCap(1000); got != 100 {
		t.Errorf("retainCap(1000) with count 100 = %d, want 100", got)
	}
	cfg.MaxLoCCount = 500
	if got := cfg.retainCap(1000); got != 150 {
		t.Errorf("retainCap(1000) with loose count = %d, want 150 (fraction still binds)", got)
	}
}
