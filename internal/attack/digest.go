package attack

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// Digest is a canonical content address over everything an Evaluation
// asserts about the attacked design: the identity fields, the ground
// truth, the scored true-match probabilities, and every retained candidate
// list entry (partner, probability bits, distance bits), in list order.
// Two evaluations share a digest exactly when every downstream metric —
// accuracy at any LoC, proximity picks, trade-off curves — is computed
// from identical bits. Durations and phase breakdowns are excluded: they
// vary run to run without changing the result.
//
// The digest is how the job server's bit-identity contract is checked:
// an attack served over HTTP must digest identically to the same
// configuration run in-process via RunTarget.
func (ev *Evaluation) Digest() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "eval/v1 config=%s design=%s layer=%d n=%d\n",
		ev.ConfigName, ev.Design, ev.SplitLayer, ev.N)
	fmt.Fprintf(h, "subset=%d\n", len(ev.Subset))
	for _, a := range ev.Subset {
		u64(uint64(int64(a)))
	}
	for a := 0; a < ev.N; a++ {
		u64(uint64(int64(ev.Truth[a])))
		u64(uint64(math.Float32bits(ev.TruthP[a])))
		cands := ev.Cands[a]
		u64(uint64(len(cands)))
		for _, c := range cands {
			u64(uint64(int64(c.Other)))
			u64(uint64(math.Float32bits(c.P)))
			u64(uint64(math.Float32bits(c.D)))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
