package attack

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
)

func TestOptionsHashStableAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, cfg := range append(StandardConfigs(), StandardConfigsY()...) {
		h := cfg.OptionsHash()
		if h == "" {
			t.Fatalf("%s: empty hash for a standard config", cfg.Name)
		}
		if h != cfg.OptionsHash() {
			t.Fatalf("%s: hash not deterministic", cfg.Name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("configs %s and %s share hash %s", prev, cfg.Name, h)
		}
		seen[h] = cfg.Name
	}
}

func TestOptionsHashIgnoresRunInputs(t *testing.T) {
	a := Imp11()
	b := Imp11()
	b.Seed = 42
	b.Workers = 7
	b.ShardVpins = 128
	b.ScalarScoring = true
	if a.OptionsHash() != b.OptionsHash() {
		t.Error("run inputs (seed/workers/sharding/scalar) changed the options hash")
	}
	c := Imp11()
	c.NumTrees = 3
	if a.OptionsHash() == c.OptionsHash() {
		t.Error("NumTrees did not change the options hash")
	}
	d := WithBase(Imp11(), ml.RandomTree, 0)
	if a.OptionsHash() == d.OptionsHash() {
		t.Error("base classifier did not change the options hash")
	}
}

func TestOptionsHashDefaultsApplied(t *testing.T) {
	a := Imp11()
	b := Imp11()
	b = b.withDefaults()
	if a.OptionsHash() != b.OptionsHash() {
		t.Error("a config and its defaults-applied form must hash identically")
	}
}

func TestOptionsHashLearnerNotAddressable(t *testing.T) {
	cfg := Imp11()
	cfg.Learner = func(ds *ml.Dataset, c Config, r *rand.Rand) (Scorer, error) { return nil, nil }
	if cfg.OptionsHash() != "" {
		t.Error("custom-Learner config must hash to \"\" (not content-addressable)")
	}
}
