package attack

import (
	"testing"

	"repro/internal/ml"
	"repro/internal/model"
)

func TestOptionsHashStableAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, cfg := range append(StandardConfigs(), StandardConfigsY()...) {
		h := cfg.OptionsHash()
		if h == "" {
			t.Fatalf("%s: empty hash for a standard config", cfg.Name)
		}
		if h != cfg.OptionsHash() {
			t.Fatalf("%s: hash not deterministic", cfg.Name)
		}
		if prev, dup := seen[h]; dup {
			t.Errorf("configs %s and %s share hash %s", prev, cfg.Name, h)
		}
		seen[h] = cfg.Name
	}
}

func TestOptionsHashIgnoresRunInputs(t *testing.T) {
	a := Imp11()
	b := Imp11()
	b.Seed = 42
	b.Workers = 7
	b.ShardVpins = 128
	b.ScalarScoring = true
	if a.OptionsHash() != b.OptionsHash() {
		t.Error("run inputs (seed/workers/sharding/scalar) changed the options hash")
	}
	c := Imp11()
	c.NumTrees = 3
	if a.OptionsHash() == c.OptionsHash() {
		t.Error("NumTrees did not change the options hash")
	}
	d := WithBase(Imp11(), ml.RandomTree, 0)
	if a.OptionsHash() == d.OptionsHash() {
		t.Error("base classifier did not change the options hash")
	}
}

func TestOptionsHashDefaultsApplied(t *testing.T) {
	a := Imp11()
	b := Imp11()
	b = b.withDefaults()
	if a.OptionsHash() != b.OptionsHash() {
		t.Error("a config and its defaults-applied form must hash identically")
	}
}

// TestOptionsHashPresetStability pins the exact hashes of every
// pre-existing Bagging configuration: the family and ranking lines append
// after the historical fields only for non-default values, so these
// constants — the config coordinates of every previously checkpointed
// sweep unit — must never change. Recompute them only for a deliberate,
// documented break of checkpoint compatibility.
func TestOptionsHashPresetStability(t *testing.T) {
	twoLevel := WithTwoLevel(Imp11())
	twoLevel.Name = "Imp-11-2L"
	forest := WithBase(Imp11(), ml.RandomTree, 0)
	forest.Name = "Imp-11-RandomForest"
	pinned := []struct {
		cfg  Config
		want string
	}{
		{ML9(), "e89a017deb14d845e9a751114597e6f33c0ce892322cc7d007a0a48b00514c8e"},
		{Imp9(), "1a0161e20e486504f9649f8031917f9da9389eb53428f8285dfc807bdc6b1b69"},
		{Imp7(), "6e675a0a4c8d7c0ed1f80e8b3d135379ae16fe6743b1a339457abb1cc778360e"},
		{Imp11(), "002561972c48547ebcd9eb58aa6cb81a2a9102aa9511dbe7d054bdb14e4c12ce"},
		{WithY(ML9()), "ac01d6726911ae8f432f0263c915903eda5f6066ebf828faa82c35bde4a82b30"},
		{WithY(Imp9()), "5d2021230981e6f2d955b1604b0dc092086f54681d015e74a3d9059da7c4e830"},
		{WithY(Imp7()), "42b6f8439e748e6746310dc53206202678b03c36b7b2434fe1f0fee6bd103147"},
		{WithY(Imp11()), "24436f89a1aedeb938f045e4e901cf3e20ea248ae5b98b2ddf0f3f5912154663"},
		{twoLevel, "2ad7a99b29548b08d8a6a83e111a0253771e72eef4fb7b96513920b81e86c932"},
		{forest, "2838bd16de8fd6f484e88a0404d410a058582ee3c1c5671b772eaef3378b2dde"},
	}
	for _, tc := range pinned {
		if got := tc.cfg.OptionsHash(); got != tc.want {
			t.Errorf("%s: OptionsHash = %s, want pinned %s", tc.cfg.Name, got, tc.want)
		}
	}
}

// TestOptionsHashFamilies: every learner-family axis — the family itself,
// the MLP knobs, the ranking head — must be part of the config coordinate,
// and the explicit "bagging" spelling must alias the default.
func TestOptionsHashFamilies(t *testing.T) {
	base := Imp11()
	spelled := WithFamily(Imp11(), model.FamilyBagging)
	if base.OptionsHash() != spelled.OptionsHash() {
		t.Error("explicit bagging family must hash like the default")
	}
	mlp := WithFamily(Imp11(), model.FamilyMLP)
	if mlp.OptionsHash() == base.OptionsHash() {
		t.Error("mlp family did not change the options hash")
	}
	logistic := WithFamily(Imp11(), model.FamilyLogistic)
	if logistic.OptionsHash() == base.OptionsHash() || logistic.OptionsHash() == mlp.OptionsHash() {
		t.Error("logistic family hash must be distinct")
	}
	wide := mlp
	wide.MLPHidden = 32
	if wide.OptionsHash() == mlp.OptionsHash() {
		t.Error("MLPHidden did not change the options hash")
	}
	ranked := WithRanking(Imp11())
	if ranked.OptionsHash() == base.OptionsHash() {
		t.Error("ranking head did not change the options hash")
	}
	seen := map[string]string{}
	for _, cfg := range ConfigPresets() {
		h := cfg.OptionsHash()
		if prev, dup := seen[h]; dup {
			t.Errorf("presets %s and %s share hash %s", prev, cfg.Name, h)
		}
		seen[h] = cfg.Name
	}
}
