package attack

import (
	"sort"
)

// MeanLoC returns the average List-of-Candidates size at threshold t: the
// mean over v-pins of the number of candidates with p >= t.
func (ev *Evaluation) MeanLoC(t float64) float64 {
	tf := float32(t)
	total := 0
	for _, cands := range ev.Cands {
		// cands is sorted by descending P; count the prefix with P >= t.
		total += sort.Search(len(cands), func(i int) bool { return cands[i].P < tf })
	}
	return float64(total) / float64(ev.N)
}

// LoCFrac returns MeanLoC(t) normalised by the v-pin count, the x-axis of
// the paper's Fig. 9.
func (ev *Evaluation) LoCFrac(t float64) float64 {
	return ev.MeanLoC(t) / float64(ev.N)
}

// Accuracy returns the fraction of v-pins whose true match scores p >= t —
// i.e. whose LoC at threshold t contains the actual match.
func (ev *Evaluation) Accuracy(t float64) float64 {
	tf := float32(t)
	hit := 0
	for _, p := range ev.TruthP {
		if p >= tf && p >= 0 {
			hit++
		}
	}
	return float64(hit) / float64(ev.N)
}

// MaxAccuracy is the accuracy as the threshold approaches zero: the
// fraction of v-pins whose true match was scored at all. Under the Imp
// neighborhood (or Y limits) this saturates below 1 — the plateau the
// paper discusses for Fig. 9(b,c).
func (ev *Evaluation) MaxAccuracy() float64 {
	return ev.Accuracy(0)
}

// ThresholdForLoCFrac returns a threshold at which the mean LoC fraction is
// approximately frac. MeanLoC is monotone non-increasing in the threshold,
// so a bisection suffices. Fractions beyond the retained candidate bound
// return 0.
func (ev *Evaluation) ThresholdForLoCFrac(frac float64) float64 {
	lo, hi := 0.0, 1.0000001
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if ev.LoCFrac(mid) > frac {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// truthRank returns, for v-pin a, how many stored candidates outscore the
// true match strictly (gt) and how many tie with it including the match
// itself (eq). ok is false when the match was never scored.
func (ev *Evaluation) truthRank(a int) (gt, eq int, ok bool) {
	pt := ev.TruthP[a]
	if pt < 0 {
		return 0, 0, false
	}
	cands := ev.Cands[a]
	// Sorted by descending P: find the strict and weak boundaries.
	gt = sort.Search(len(cands), func(i int) bool { return cands[i].P <= pt })
	weak := sort.Search(len(cands), func(i int) bool { return cands[i].P < pt })
	eq = weak - gt
	if eq < 1 {
		// The truth was pushed out of the bounded list by equal-scoring
		// candidates; it still occupies one tie slot.
		eq = 1
	}
	return gt, eq, true
}

// AccuracyAtK returns the expected accuracy when each v-pin's LoC is its
// top-k candidates by probability with ties broken uniformly at random —
// the per-v-pin LoC-size control the paper introduces for the proximity
// attack (§III-H), applied as a metric. The expectation smooths the
// discrete tie buckets that a hard global threshold cannot split.
func (ev *Evaluation) AccuracyAtK(k int) float64 {
	if k <= 0 {
		return 0
	}
	var sum float64
	for a := 0; a < ev.N; a++ {
		gt, eq, ok := ev.truthRank(a)
		if !ok || gt >= k {
			continue
		}
		slots := k - gt
		if slots >= eq {
			sum++
		} else {
			sum += float64(slots) / float64(eq)
		}
	}
	return sum / float64(ev.N)
}

// AccuracyAtLoCFrac returns the expected accuracy with mean LoC size
// frac*N (see AccuracyAtK).
func (ev *Evaluation) AccuracyAtLoCFrac(frac float64) float64 {
	return ev.AccuracyAtK(int(frac*float64(ev.N) + 0.5))
}

// AccuracyAtLoC returns the expected accuracy with the given mean LoC size.
func (ev *Evaluation) AccuracyAtLoC(loc float64) float64 {
	return ev.AccuracyAtK(int(loc + 0.5))
}

// LoCForAccuracy returns the smallest LoC size k whose expected accuracy
// reaches acc, or -1 when the accuracy is unreachable at any size up to
// the retained candidate bound (the dashes in the paper's Table IV, caused
// by neighborhood saturation).
func (ev *Evaluation) LoCForAccuracy(acc float64) float64 {
	maxK := 0
	for _, c := range ev.Cands {
		if len(c) > maxK {
			maxK = len(c)
		}
	}
	if ev.AccuracyAtK(maxK) < acc {
		return -1
	}
	k := sort.Search(maxK, func(k int) bool { return ev.AccuracyAtK(k+1) >= acc }) + 1
	return float64(k)
}

// LoCFracForAccuracy is LoCForAccuracy normalised by the v-pin count; -1
// when unreachable.
func (ev *Evaluation) LoCFracForAccuracy(acc float64) float64 {
	loc := ev.LoCForAccuracy(acc)
	if loc < 0 {
		return -1
	}
	return loc / float64(ev.N)
}

// TradeoffPoint is one point of the LoC-fraction/accuracy trade-off curve.
type TradeoffPoint struct {
	LoCFrac  float64
	Accuracy float64
}

// CurveFractions is the log-spaced LoC-fraction grid used for the
// trade-off curves of Fig. 9 and Fig. 10.
func CurveFractions() []float64 {
	var fr []float64
	for _, decade := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		for _, m := range []float64{1, 1.5, 2, 3, 5, 7} {
			f := decade * m
			if f <= 0.15 {
				fr = append(fr, f)
			}
		}
	}
	return fr
}

// AggregateAccuracyAtLoCFrac tunes each design's threshold to the given LoC
// fraction and averages the resulting accuracies — the paper's way of
// comparing designs with very different v-pin counts.
func AggregateAccuracyAtLoCFrac(evals []*Evaluation, frac float64) float64 {
	if len(evals) == 0 {
		return 0
	}
	var sum float64
	for _, ev := range evals {
		sum += ev.AccuracyAtLoCFrac(frac)
	}
	return sum / float64(len(evals))
}

// AggregateLoCFracForAccuracy returns the smallest LoC fraction at which
// the average accuracy across designs reaches acc, or -1 when unreachable
// at any fraction up to the retained bound.
func AggregateLoCFracForAccuracy(evals []*Evaluation, acc float64, maxFrac float64) float64 {
	if maxFrac <= 0 {
		maxFrac = 0.14
	}
	if AggregateAccuracyAtLoCFrac(evals, maxFrac) < acc {
		return -1
	}
	lo, hi := 0.0, maxFrac
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if AggregateAccuracyAtLoCFrac(evals, mid) >= acc {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Curve evaluates the aggregate trade-off curve on the given fraction grid.
func Curve(evals []*Evaluation, fractions []float64) []TradeoffPoint {
	pts := make([]TradeoffPoint, len(fractions))
	for i, f := range fractions {
		pts[i] = TradeoffPoint{LoCFrac: f, Accuracy: AggregateAccuracyAtLoCFrac(evals, f)}
	}
	return pts
}
