package timing

import (
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/obfuscate"
	"repro/internal/route"
)

var (
	tmOnce   sync.Once
	tmErr    error
	tmDesign *layout.Design
)

func design(t *testing.T) *layout.Design {
	t.Helper()
	tmOnce.Do(func() {
		p := layout.SuiteProfiles(layout.SuiteConfig{Scale: 0.25, Seed: 41})[0]
		tmDesign, tmErr = layout.Generate(p)
	})
	if tmErr != nil {
		t.Fatal(tmErr)
	}
	return tmDesign
}

func TestTechnologySane(t *testing.T) {
	if err := CheckSane(); err != nil {
		t.Fatal(err)
	}
}

func TestUpperLayersFasterPerUnitLength(t *testing.T) {
	// The whole point of fat top-layer wires: R*C per unit length must
	// drop toward the top, otherwise promoting long nets would be wrong.
	for m := 1; m < route.NumMetal; m++ {
		rc1 := WireRes(m) * WireCap(m)
		rc2 := WireRes(m+1) * WireCap(m+1)
		if rc2 > rc1 {
			t.Errorf("RC per DBU rises from M%d (%.3g) to M%d (%.3g)", m, rc1, m+1, rc2)
		}
	}
}

func TestDriverResScaling(t *testing.T) {
	if DriverRes(2) >= DriverRes(1) || DriverRes(4) >= DriverRes(2) {
		t.Error("driver resistance must fall with drive strength")
	}
	if DriverRes(0) != DriverRes(1) {
		t.Error("degenerate drive must clamp to 1")
	}
}

func TestNetDelaysPositive(t *testing.T) {
	d := design(t)
	for i := range d.Netlist.Nets {
		nt := AnalyzeNet(d, i)
		if nt.Delay <= 0 {
			t.Fatalf("net %d delay %f not positive", i, nt.Delay)
		}
		if nt.LoadCap < nt.WireCap {
			t.Fatalf("net %d load cap below wire cap", i)
		}
		if nt.WireCap < 0 {
			t.Fatalf("net %d negative wire cap", i)
		}
	}
}

func TestLongerNetsSlower(t *testing.T) {
	// Among same-drive nets, the top decile by wirelength must be slower
	// on average than the bottom decile.
	d := design(t)
	type nd struct{ wl, delay float64 }
	var xs []nd
	for i := range d.Netlist.Nets {
		if d.Netlist.Kind(d.Netlist.Nets[i].Driver.Cell).Drive != 1 {
			continue
		}
		nt := AnalyzeNet(d, i)
		xs = append(xs, nd{float64(d.Routing.Routes[i].Wirelength()), nt.Delay})
	}
	if len(xs) < 50 {
		t.Skip("not enough drive-1 nets")
	}
	var shortSum, shortN, longSum, longN float64
	// Median split by wirelength.
	var median float64
	{
		var tot float64
		for _, x := range xs {
			tot += x.wl
		}
		median = tot / float64(len(xs))
	}
	for _, x := range xs {
		if x.wl < median/2 {
			shortSum += x.delay
			shortN++
		} else if x.wl > median*2 {
			longSum += x.delay
			longN++
		}
	}
	if shortN == 0 || longN == 0 {
		t.Skip("degenerate wirelength distribution")
	}
	if longSum/longN <= shortSum/shortN {
		t.Errorf("long nets (%.0f) not slower than short nets (%.0f)",
			longSum/longN, shortSum/shortN)
	}
}

func TestAnalyzeSummary(t *testing.T) {
	d := design(t)
	dt := Analyze(d)
	if dt.MaxDelay < dt.MeanDelay {
		t.Error("max delay below mean delay")
	}
	if dt.WorstNet < 0 || dt.WorstNet >= len(d.Netlist.Nets) {
		t.Errorf("worst net ID %d out of range", dt.WorstNet)
	}
	worst := AnalyzeNet(d, dt.WorstNet)
	if worst.Delay != dt.MaxDelay {
		t.Errorf("worst net delay %f != max %f", worst.Delay, dt.MaxDelay)
	}
	// Drive-aware net generation keeps overload rare.
	frac := float64(dt.OverloadedDrivers) / float64(len(d.Netlist.Nets))
	if frac > 0.25 {
		t.Errorf("%.1f%% of drivers overloaded; drive/reach correlation broken", frac*100)
	}
}

func TestObfuscationDelayOverhead(t *testing.T) {
	d := design(t)
	before := Analyze(d)
	nd, _, err := obfuscate.PerturbRoutes(d, 6, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := Analyze(nd)
	oh := Overhead(before, after)
	if oh < -0.02 {
		t.Errorf("perturbation made the design faster by %.2f%%?", -oh*100)
	}
	if oh > 0.30 {
		t.Errorf("perturbation delay overhead %.1f%% implausible", oh*100)
	}
}

func TestOverheadDegenerate(t *testing.T) {
	if Overhead(DesignTiming{}, DesignTiming{MeanDelay: 5}) != 0 {
		t.Error("zero-baseline overhead must be 0")
	}
}

func TestJoggedRoutesNotDoubleCounted(t *testing.T) {
	// Trunk jogs add one short trunk-layer segment; the capacitance change
	// must be commensurate with the added wirelength, not double it.
	d := design(t)
	nd, cost, err := obfuscate.JogTrunks(d, 6, 2, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := Analyze(d)
	after := Analyze(nd)
	capRatio := Overhead(before, after)
	wlRatio := cost.Overhead()
	// Delay grows superlinearly with length, but a jog of x% wirelength
	// cannot plausibly add more than ~5x% mean delay.
	if capRatio > 5*wlRatio+0.01 {
		t.Errorf("delay overhead %.4f disproportionate to wirelength overhead %.4f",
			capRatio, wlRatio)
	}
}
