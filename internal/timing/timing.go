// Package timing provides a static timing model over routed nets: per-layer
// wire RC derived from the fabric's wire widths, a drive-strength-based
// driver model, and Elmore delay estimation along each net's routed path.
//
// The paper's TotalWirelength / TotalCellArea / DiffCellArea features exist
// because "the wirelength of each net impacts timing" and "each cell has a
// maximum output load that it can drive" (§III-A/B). This package makes
// that physics explicit: it quantifies the delay of every routed net, lets
// tests assert that the synthetic fabric behaves like a real one (wide top
// layers are faster per unit length), and prices obfuscation transforms in
// delay as well as wirelength.
package timing

import (
	"fmt"
	"math"

	"repro/internal/layout"
	"repro/internal/route"
)

// Technology constants. Units are arbitrary but consistent: resistance in
// ohms, capacitance in femtofarads, length in database units; delays come
// out in ohm*fF = femtoseconds-scale units, reported as float64.
const (
	// sheetRes is the metal sheet resistance in ohm/square: the wire
	// resistance per unit length is sheetRes / width.
	sheetRes = 2.0
	// areaCapPerDBU2 is capacitance per unit wire area; wider wires have
	// proportionally more plate capacitance.
	areaCapPerDBU2 = 0.00002
	// fringeCapPerDBU is the width-independent fringe capacitance per unit
	// length.
	fringeCapPerDBU = 0.004
	// ViaRes is the resistance of a single via cut.
	ViaRes = 4.0
	// pinCap is the input capacitance of one standard-cell pin.
	pinCap = 1.2
	// driverBaseRes is the output resistance of a drive-1 cell; stronger
	// drivers scale it down.
	driverBaseRes = 2400.0
)

// WireRes returns the resistance per database unit of metal layer m. Upper
// layers are wider and therefore less resistive — the reason routers put
// long nets there, and the reason our layer assignment by length is
// physically sensible.
func WireRes(m int) float64 {
	return sheetRes / float64(route.WireWidth(m))
}

// WireCap returns the capacitance per database unit of metal layer m.
func WireCap(m int) float64 {
	return areaCapPerDBU2*float64(route.WireWidth(m)) + fringeCapPerDBU
}

// DriverRes returns the output resistance of a driver with the given
// drive strength.
func DriverRes(drive int) float64 {
	if drive < 1 {
		drive = 1
	}
	return driverBaseRes / float64(drive)
}

// NetTiming is the timing summary of one routed net.
type NetTiming struct {
	Net int
	// Delay is the Elmore delay from the driver output to the farthest
	// sink along the routed path.
	Delay float64
	// WireCap is the total routed wire capacitance.
	WireCap float64
	// LoadCap is the total capacitance the driver sees (wire + sink pins).
	LoadCap float64
	// DriveRes is the driver's output resistance.
	DriveRes float64
}

// pathStage is one resistive stage of the driver-to-sink path with the
// capacitance attached at its far end.
type pathStage struct {
	res, cap float64
}

// AnalyzeNet computes the Elmore delay of one net. The routed topology is
// approximated as a single path driver → escape stack → feeder → trunk →
// feeder → stack → sink subtree, which is exactly how the router builds
// nets; sink-side local wiring and pin loads lump at the far end.
func AnalyzeNet(d *layout.Design, netID int) NetTiming {
	nl := d.Netlist
	rt := &d.Routing.Routes[netID]
	net := &nl.Nets[netID]

	nt := NetTiming{
		Net:      netID,
		DriveRes: DriverRes(nl.Kind(net.Driver.Cell).Drive),
	}

	// Partition wire RC into driver-side, trunk, and sink-side stages.
	// Trunk-layer segments (including obfuscation jogs, whichever side
	// label they carry) belong to the trunk stage so nothing is counted
	// twice; the path ordering is driver-local, trunk, sink-local.
	var stages []pathStage
	var trunkRes, trunkCap float64
	var drvRes, drvCap float64
	var sinkCapOnly float64
	for _, s := range rt.Segments {
		l := float64(s.Len())
		if s.Layer == rt.TrunkLayer && rt.TrunkLayer > 2 {
			trunkRes += l * WireRes(s.Layer)
			trunkCap += l * WireCap(s.Layer)
			continue
		}
		if s.Side == route.DriverSide {
			drvRes += l * WireRes(s.Layer)
			drvCap += l * WireCap(s.Layer)
		} else {
			sinkCapOnly += l * WireCap(s.Layer)
		}
	}

	// Via stacks: count vias per side.
	var drvVias, sinkVias int
	for _, v := range rt.Vias {
		if v.Side == route.DriverSide {
			drvVias++
		} else {
			sinkVias++
		}
	}

	var sinkRes float64
	for _, s := range rt.Segments {
		if s.Side == route.SinkSide && !(s.Layer == rt.TrunkLayer && rt.TrunkLayer > 2) {
			sinkRes += float64(s.Len()) * WireRes(s.Layer)
		}
	}

	pins := float64(len(net.Sinks)) * pinCap
	nt.WireCap = drvCap + trunkCap + sinkCapOnly
	nt.LoadCap = nt.WireCap + pins

	stages = []pathStage{
		{res: drvRes + float64(drvVias)*ViaRes, cap: drvCap},
		{res: trunkRes, cap: trunkCap},
		{res: sinkRes + float64(sinkVias)*ViaRes, cap: sinkCapOnly + pins},
	}

	// Elmore: driver resistance charges everything; each stage's
	// resistance charges the capacitance downstream of it (approximating
	// distributed wire RC with the standard 1/2 factor on own-stage cap).
	total := nt.LoadCap
	delay := nt.DriveRes * total
	downstream := total
	for _, st := range stages {
		delay += st.res * (downstream - st.cap/2)
		downstream -= st.cap
	}
	nt.Delay = delay
	return nt
}

// DesignTiming summarises a design's nets.
type DesignTiming struct {
	// MaxDelay is the slowest net (critical-net proxy).
	MaxDelay float64
	// MeanDelay averages all nets.
	MeanDelay float64
	// WorstNet is the ID of the slowest net.
	WorstNet int
	// OverloadedDrivers counts nets whose load exceeds the driver's
	// nominal capability (load cap > drive * maxLoadPerDrive).
	OverloadedDrivers int
}

// maxLoadPerDrive is the nominal load capacitance one unit of drive
// strength supports.
const maxLoadPerDrive = 220.0

// Analyze runs the timing model over every net of the design.
func Analyze(d *layout.Design) DesignTiming {
	var out DesignTiming
	out.WorstNet = -1
	var sum float64
	for i := range d.Netlist.Nets {
		nt := AnalyzeNet(d, i)
		sum += nt.Delay
		if nt.Delay > out.MaxDelay {
			out.MaxDelay = nt.Delay
			out.WorstNet = i
		}
		drive := d.Netlist.Kind(d.Netlist.Nets[i].Driver.Cell).Drive
		if nt.LoadCap > float64(drive)*maxLoadPerDrive {
			out.OverloadedDrivers++
		}
	}
	if n := len(d.Netlist.Nets); n > 0 {
		out.MeanDelay = sum / float64(n)
	}
	return out
}

// Overhead compares two timing summaries (e.g. before and after an
// obfuscation transform) and returns the relative mean-delay increase.
func Overhead(before, after DesignTiming) float64 {
	if before.MeanDelay == 0 {
		return 0
	}
	return (after.MeanDelay - before.MeanDelay) / before.MeanDelay
}

// CheckSane validates the technology model's internal consistency; it is
// exercised by tests and returns an error description or nil.
func CheckSane() error {
	for m := 1; m < route.NumMetal; m++ {
		if WireRes(m+1) > WireRes(m) {
			return fmt.Errorf("timing: M%d more resistive than M%d", m+1, m)
		}
	}
	if math.IsNaN(DriverRes(1)) || DriverRes(4) >= DriverRes(1) {
		return fmt.Errorf("timing: driver resistance not decreasing with drive")
	}
	return nil
}
