package netlist

import (
	"fmt"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/geom"
)

// CellMixConfig controls the instance population of a generated netlist.
type CellMixConfig struct {
	// NumCells is the number of standard-cell instances.
	NumCells int
	// NumMacros is the number of macro instances (may be zero).
	NumMacros int
	// SeqFraction is the fraction of standard cells that are flip-flops.
	SeqFraction float64
}

// GenerateCells creates the instance population: a skew toward small
// high-usage gates (inverters, NANDs) as in real designs, a configurable
// flip-flop fraction, and optional macros appended at the end.
func GenerateCells(lib *cell.Library, cfg CellMixConfig, rng *rand.Rand) ([]Cell, error) {
	if cfg.NumCells <= 0 {
		return nil, fmt.Errorf("netlist: NumCells must be positive, got %d", cfg.NumCells)
	}
	std := lib.StandardKinds()
	if len(std) == 0 {
		return nil, fmt.Errorf("netlist: library has no standard kinds")
	}
	var comb, seq []*cell.Kind
	for _, k := range std {
		if len(k.Inputs()) > 0 && k.Name[:3] == "DFF" {
			seq = append(seq, k)
		} else {
			comb = append(comb, k)
		}
	}
	if len(seq) == 0 {
		seq = comb // degenerate libraries: fall back to combinational kinds
	}
	// Weight combinational kinds inversely to area so small gates dominate,
	// mirroring the usage profile of synthesised logic.
	weights := make([]float64, len(comb))
	var wsum float64
	for i, k := range comb {
		weights[i] = 1.0 / k.Area()
		wsum += weights[i]
	}
	pick := func() *cell.Kind {
		r := rng.Float64() * wsum
		for i, w := range weights {
			r -= w
			if r <= 0 {
				return comb[i]
			}
		}
		return comb[len(comb)-1]
	}

	cells := make([]Cell, 0, cfg.NumCells+cfg.NumMacros)
	for i := 0; i < cfg.NumCells; i++ {
		var k *cell.Kind
		if rng.Float64() < cfg.SeqFraction {
			k = seq[rng.Intn(len(seq))]
		} else {
			k = pick()
		}
		cells = append(cells, Cell{ID: i, Name: fmt.Sprintf("u%d", i), Kind: k})
	}
	macros := lib.Macros()
	for i := 0; i < cfg.NumMacros && len(macros) > 0; i++ {
		k := macros[i%len(macros)]
		id := len(cells)
		cells = append(cells, Cell{ID: id, Name: fmt.Sprintf("m%d", i), Kind: k})
	}
	return cells, nil
}

// ReachClass describes one locality class of nets: Frac of all nets are
// drawn with sink distances exponentially distributed around MeanReach
// database units. Real netlists mix short local nets with a long tail of
// regional and global nets; the class mix shapes how many nets end up on
// high metal layers, and therefore the v-pin populations per split layer.
type ReachClass struct {
	Frac      float64
	MeanReach geom.Coord
}

// NetGenConfig controls connectivity generation.
type NetGenConfig struct {
	// NumNets is the target number of nets; generation may stop short if
	// the supply of unused pins runs out.
	NumNets int
	// FanoutWeights[i] is the relative probability of fanout i+1.
	FanoutWeights []float64
	// Classes is the locality mix; fractions should sum to roughly 1.
	Classes []ReachClass
}

// DefaultFanoutWeights matches the fanout distribution of typical gate-level
// netlists: dominated by fanout 1-2 with a short tail.
func DefaultFanoutWeights() []float64 {
	return []float64{0.52, 0.27, 0.12, 0.05, 0.02, 0.01, 0.005, 0.005}
}

// GenerateNets synthesises connectivity over already-placed cells. pos must
// return the placed origin of each cell. Sinks are sampled near the driver
// at distances drawn from the net's locality class, so the resulting
// (netlist, placement) pair behaves like the output of a wirelength-driven
// placer: connected pins are spatially correlated, which is precisely the
// structure the proximity attack exploits.
func GenerateNets(cells []Cell, pos func(int) geom.Point, die geom.Rect, cfg NetGenConfig, rng *rand.Rand) ([]Net, error) {
	if cfg.NumNets <= 0 {
		return nil, fmt.Errorf("netlist: NumNets must be positive, got %d", cfg.NumNets)
	}
	if len(cfg.FanoutWeights) == 0 {
		cfg.FanoutWeights = DefaultFanoutWeights()
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("netlist: no reach classes")
	}

	// Free pin bookkeeping: each output pin drives at most one net and each
	// input pin is driven by at most one net.
	type freePins struct{ in, out []int }
	free := make([]freePins, len(cells))
	var drivers []int // cell IDs with at least one free output pin
	for i, c := range cells {
		free[i].in = append([]int(nil), c.Kind.Inputs()...)
		free[i].out = append([]int(nil), c.Kind.Outputs()...)
		if len(free[i].out) > 0 {
			drivers = append(drivers, i)
		}
	}

	// Spatial index of cells with free input pins, for proximity sampling.
	idx := newCellIndex(cells, pos, die)

	takeIn := func(cellID int) (int, bool) {
		f := &free[cellID]
		if len(f.in) == 0 {
			return -1, false
		}
		p := f.in[len(f.in)-1]
		f.in = f.in[:len(f.in)-1]
		if len(f.in) == 0 {
			idx.remove(cellID)
		}
		return p, true
	}

	fanout := func() int {
		var sum float64
		for _, w := range cfg.FanoutWeights {
			sum += w
		}
		r := rng.Float64() * sum
		for i, w := range cfg.FanoutWeights {
			r -= w
			if r <= 0 {
				return i + 1
			}
		}
		return 1
	}

	// classOf biases net reach by driver strength: strong drivers are the
	// ones synthesis assigns to long nets, so high-drive cells
	// preferentially source regional/global nets. This is the physical
	// origin of the attack's DiffArea/TotalArea features being informative
	// about whether a candidate pair's combined reach is plausible.
	var maxReach geom.Coord = 1
	for _, c := range cfg.Classes {
		if c.MeanReach > maxReach {
			maxReach = c.MeanReach
		}
	}
	classOf := func(drive int) ReachClass {
		if drive < 1 {
			drive = 1
		}
		var wsum float64
		ws := make([]float64, len(cfg.Classes))
		for i, c := range cfg.Classes {
			boost := 1 + float64(drive-1)*float64(c.MeanReach)/float64(maxReach)
			ws[i] = c.Frac * boost
			wsum += ws[i]
		}
		r := rng.Float64() * wsum
		for i, w := range ws {
			r -= w
			if r <= 0 {
				return cfg.Classes[i]
			}
		}
		return cfg.Classes[len(cfg.Classes)-1]
	}

	var nets []Net
	di := 0 // rotating cursor over drivers for fairness
	perm := rng.Perm(len(drivers))
	for len(nets) < cfg.NumNets && di < len(perm) {
		cellID := drivers[perm[di]]
		di++
		f := &free[cellID]
		if len(f.out) == 0 {
			continue
		}
		outPin := f.out[len(f.out)-1]
		f.out = f.out[:len(f.out)-1]
		if len(f.out) > 0 {
			// Put multi-output cells (macros) back in rotation.
			perm = append(perm, perm[di-1])
		}

		origin := pos(cellID)
		cls := classOf(cells[cellID].Kind.Drive)
		want := fanout()
		net := Net{
			ID:     len(nets),
			Name:   fmt.Sprintf("n%d", len(nets)),
			Driver: PinRef{Cell: cellID, Pin: outPin},
		}
		seen := map[int]bool{cellID: true}
		for s := 0; s < want; s++ {
			// Manhattan-radius target point: exponential distance, random
			// direction split between x and y.
			d := geom.Coord(rng.ExpFloat64() * float64(cls.MeanReach))
			fx := rng.Float64()
			dx := geom.Coord(float64(d) * fx)
			dy := d - dx
			if rng.Intn(2) == 0 {
				dx = -dx
			}
			if rng.Intn(2) == 0 {
				dy = -dy
			}
			target := die.ClampPoint(origin.Add(geom.Pt(dx, dy)))
			sinkCell, ok := idx.nearest(target, seen)
			if !ok {
				break // no free input pins anywhere
			}
			pin, ok := takeIn(sinkCell)
			if !ok {
				continue
			}
			seen[sinkCell] = true
			net.Sinks = append(net.Sinks, PinRef{Cell: sinkCell, Pin: pin})
		}
		if len(net.Sinks) == 0 {
			continue
		}
		nets = append(nets, net)
	}
	return nets, nil
}

// cellIndex is a tile-bucketed index of cells that still have free input
// pins, supporting nearest-cell queries via an expanding ring search.
type cellIndex struct {
	die   geom.Rect
	tile  geom.Coord
	nx    int
	ny    int
	cells [][]int // tile -> cell IDs
	pos   func(int) geom.Point
	slot  map[int]int // cell ID -> tile index, for removal
}

func newCellIndex(cells []Cell, pos func(int) geom.Point, die geom.Rect) *cellIndex {
	// Aim for a few dozen cells per tile.
	tiles := len(cells)/32 + 1
	tile := die.Width()
	for nx := 1; nx*nx < tiles; nx++ {
		tile = die.Width() / geom.Coord(nx)
	}
	if tile <= 0 {
		tile = 1
	}
	ix := &cellIndex{
		die:  die,
		tile: tile,
		nx:   int(die.Width()/tile) + 1,
		ny:   int(die.Height()/tile) + 1,
		pos:  pos,
		slot: make(map[int]int, len(cells)),
	}
	ix.cells = make([][]int, ix.nx*ix.ny)
	for _, c := range cells {
		if len(c.Kind.Inputs()) == 0 {
			continue
		}
		ti := ix.tileOf(pos(c.ID))
		ix.cells[ti] = append(ix.cells[ti], c.ID)
		ix.slot[c.ID] = ti
	}
	return ix
}

func (ix *cellIndex) tileOf(p geom.Point) int {
	q := ix.die.ClampPoint(p)
	tx := int((q.X - ix.die.Lo.X) / ix.tile)
	ty := int((q.Y - ix.die.Lo.Y) / ix.tile)
	if tx >= ix.nx {
		tx = ix.nx - 1
	}
	if ty >= ix.ny {
		ty = ix.ny - 1
	}
	return ty*ix.nx + tx
}

func (ix *cellIndex) remove(cellID int) {
	ti, ok := ix.slot[cellID]
	if !ok {
		return
	}
	delete(ix.slot, cellID)
	bucket := ix.cells[ti]
	for i, id := range bucket {
		if id == cellID {
			bucket[i] = bucket[len(bucket)-1]
			ix.cells[ti] = bucket[:len(bucket)-1]
			return
		}
	}
}

// nearest returns the cell with a free input pin closest to target,
// excluding the IDs in skip. The search expands tile rings outward until a
// candidate ring yields no improvement.
func (ix *cellIndex) nearest(target geom.Point, skip map[int]bool) (int, bool) {
	q := ix.die.ClampPoint(target)
	tx := int((q.X - ix.die.Lo.X) / ix.tile)
	ty := int((q.Y - ix.die.Lo.Y) / ix.tile)
	best, bestD := -1, geom.Coord(1)<<60
	maxR := ix.nx + ix.ny
	for r := 0; r <= maxR; r++ {
		found := false
		for dy := -r; dy <= r; dy++ {
			y := ty + dy
			if y < 0 || y >= ix.ny {
				continue
			}
			for dx := -r; dx <= r; dx++ {
				// Ring only: skip interior tiles already visited.
				if dx > -r && dx < r && dy > -r && dy < r {
					continue
				}
				x := tx + dx
				if x < 0 || x >= ix.nx {
					continue
				}
				for _, id := range ix.cells[y*ix.nx+x] {
					if skip[id] {
						continue
					}
					d := ix.pos(id).Manhattan(target)
					if d < bestD {
						best, bestD = id, d
						found = true
					}
				}
			}
		}
		// Once a candidate exists, one extra ring suffices: any cell two
		// rings out is necessarily farther in Manhattan distance.
		if best >= 0 && !found {
			break
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
