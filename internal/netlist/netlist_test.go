package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/geom"
)

func testCells(t *testing.T, n int, rng *rand.Rand) ([]Cell, *cell.Library) {
	t.Helper()
	lib := cell.DefaultLibrary()
	cells, err := GenerateCells(lib, CellMixConfig{NumCells: n, NumMacros: 2, SeqFraction: 0.15}, rng)
	if err != nil {
		t.Fatalf("GenerateCells: %v", err)
	}
	return cells, lib
}

// uniformPositions scatters cells deterministically for tests that need a
// position function without a full placement.
func uniformPositions(cells []Cell, die geom.Rect, rng *rand.Rand) func(int) geom.Point {
	pos := make([]geom.Point, len(cells))
	for i := range pos {
		pos[i] = geom.Pt(
			die.Lo.X+geom.Coord(rng.Int63n(int64(die.Width())+1)),
			die.Lo.Y+geom.Coord(rng.Int63n(int64(die.Height())+1)),
		)
	}
	return func(id int) geom.Point { return pos[id] }
}

func TestGenerateCellsCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cells, _ := testCells(t, 500, rng)
	if len(cells) != 502 {
		t.Fatalf("got %d cells, want 502 (500 std + 2 macros)", len(cells))
	}
	macros := 0
	for _, c := range cells {
		if c.Kind.Macro {
			macros++
		}
	}
	if macros != 2 {
		t.Errorf("got %d macros, want 2", macros)
	}
}

func TestGenerateCellsIDsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cells, _ := testCells(t, 100, rng)
	for i, c := range cells {
		if c.ID != i {
			t.Fatalf("cell %d has ID %d", i, c.ID)
		}
	}
}

func TestGenerateCellsSeqFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lib := cell.DefaultLibrary()
	cells, err := GenerateCells(lib, CellMixConfig{NumCells: 2000, SeqFraction: 0.25}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ffs := 0
	for _, c := range cells {
		if c.Kind.Name[:3] == "DFF" {
			ffs++
		}
	}
	frac := float64(ffs) / 2000
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("flip-flop fraction %.3f outside [0.18, 0.32]", frac)
	}
}

func TestGenerateCellsRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lib := cell.DefaultLibrary()
	if _, err := GenerateCells(lib, CellMixConfig{NumCells: 0}, rng); err == nil {
		t.Error("want error for NumCells=0")
	}
}

func defaultNetCfg(n int) NetGenConfig {
	return NetGenConfig{
		NumNets:       n,
		FanoutWeights: DefaultFanoutWeights(),
		Classes: []ReachClass{
			{Frac: 0.6, MeanReach: 500},
			{Frac: 0.3, MeanReach: 2000},
			{Frac: 0.1, MeanReach: 6000},
		},
	}
}

func TestGenerateNetsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	die := geom.R(0, 0, 20000, 20000)
	cells, lib := testCells(t, 800, rng)
	pos := uniformPositions(cells, die, rng)
	nets, err := GenerateNets(cells, pos, die, defaultNetCfg(600), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) < 500 {
		t.Fatalf("only %d nets generated, want >= 500", len(nets))
	}
	nl := &Netlist{Lib: lib, Cells: cells, Nets: nets}
	if err := nl.Validate(); err != nil {
		t.Fatalf("generated netlist invalid: %v", err)
	}
}

func TestGenerateNetsSingleDriverInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	die := geom.R(0, 0, 10000, 10000)
	cells, _ := testCells(t, 400, rng)
	pos := uniformPositions(cells, die, rng)
	nets, err := GenerateNets(cells, pos, die, defaultNetCfg(300), rng)
	if err != nil {
		t.Fatal(err)
	}
	usedOut := map[PinRef]bool{}
	usedIn := map[PinRef]bool{}
	for _, n := range nets {
		if usedOut[n.Driver] {
			t.Fatalf("output pin %+v drives two nets", n.Driver)
		}
		usedOut[n.Driver] = true
		for _, s := range n.Sinks {
			if usedIn[s] {
				t.Fatalf("input pin %+v driven twice", s)
			}
			usedIn[s] = true
		}
	}
}

func TestGenerateNetsLocality(t *testing.T) {
	// With a short mean reach, generated nets must be much shorter on
	// average than random pairs would be.
	rng := rand.New(rand.NewSource(7))
	die := geom.R(0, 0, 40000, 40000)
	cells, _ := testCells(t, 2000, rng)
	pos := uniformPositions(cells, die, rng)
	cfg := NetGenConfig{
		NumNets: 800,
		Classes: []ReachClass{{Frac: 1.0, MeanReach: 800}},
	}
	nets, err := GenerateNets(cells, pos, die, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum, count float64
	for _, n := range nets {
		d := pos(n.Driver.Cell)
		for _, s := range n.Sinks {
			sum += float64(d.Manhattan(pos(s.Cell)))
			count++
		}
	}
	mean := sum / count
	// Random pairs on a 40000x40000 die average ~26000 apart; generated
	// local nets must be far below that.
	if mean > 6000 {
		t.Errorf("mean net span %.0f too large for MeanReach 800", mean)
	}
}

func TestGenerateNetsFanoutDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	die := geom.R(0, 0, 30000, 30000)
	cells, _ := testCells(t, 3000, rng)
	pos := uniformPositions(cells, die, rng)
	nets, err := GenerateNets(cells, pos, die, defaultNetCfg(1500), rng)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, n := range nets {
		if n.Fanout() == 1 {
			ones++
		}
		if n.Fanout() > len(DefaultFanoutWeights()) {
			t.Fatalf("net %d fanout %d exceeds configured maximum", n.ID, n.Fanout())
		}
	}
	frac := float64(ones) / float64(len(nets))
	if frac < 0.35 || frac > 0.75 {
		t.Errorf("fanout-1 fraction %.2f outside [0.35, 0.75]", frac)
	}
}

func TestGenerateNetsDeterministicWithSeed(t *testing.T) {
	die := geom.R(0, 0, 10000, 10000)
	run := func() []Net {
		rng := rand.New(rand.NewSource(42))
		cells, _ := testCells(t, 300, rng)
		pos := uniformPositions(cells, die, rng)
		nets, err := GenerateNets(cells, pos, die, defaultNetCfg(200), rng)
		if err != nil {
			t.Fatal(err)
		}
		return nets
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in net count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Driver != b[i].Driver || len(a[i].Sinks) != len(b[i].Sinks) {
			t.Fatalf("net %d differs between identical-seed runs", i)
		}
	}
}

func TestGenerateNetsRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	die := geom.R(0, 0, 1000, 1000)
	cells, _ := testCells(t, 10, rng)
	pos := uniformPositions(cells, die, rng)
	if _, err := GenerateNets(cells, pos, die, NetGenConfig{NumNets: 0}, rng); err == nil {
		t.Error("want error for NumNets=0")
	}
	if _, err := GenerateNets(cells, pos, die, NetGenConfig{NumNets: 5}, rng); err == nil {
		t.Error("want error for missing reach classes")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	die := geom.R(0, 0, 10000, 10000)
	cells, lib := testCells(t, 200, rng)
	pos := uniformPositions(cells, die, rng)
	nets, err := GenerateNets(cells, pos, die, defaultNetCfg(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	base := &Netlist{Lib: lib, Cells: cells, Nets: nets}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}

	corrupt := func(mut func(nl *Netlist)) error {
		cp := &Netlist{Lib: lib, Cells: cells, Nets: append([]Net(nil), nets...)}
		// Deep-copy sinks of net 0 so mutations do not leak.
		cp.Nets[0].Sinks = append([]PinRef(nil), nets[0].Sinks...)
		mut(cp)
		return cp.Validate()
	}

	if err := corrupt(func(nl *Netlist) { nl.Nets[0].Driver.Cell = -1 }); err == nil {
		t.Error("negative cell index not caught")
	}
	if err := corrupt(func(nl *Netlist) { nl.Nets[0].Driver.Cell = len(cells) }); err == nil {
		t.Error("out-of-range cell index not caught")
	}
	if err := corrupt(func(nl *Netlist) { nl.Nets[0].Sinks = nil }); err == nil {
		t.Error("sink-less net not caught")
	}
	if err := corrupt(func(nl *Netlist) { nl.Nets[0].Driver = nl.Nets[0].Sinks[0] }); err == nil {
		t.Error("input-pin driver not caught")
	}
	if err := corrupt(func(nl *Netlist) { nl.Nets[0].ID = 99 }); err == nil {
		t.Error("bad net ID not caught")
	}
}

func TestNetPins(t *testing.T) {
	n := Net{Driver: PinRef{1, 0}, Sinks: []PinRef{{2, 0}, {3, 1}}}
	pins := n.Pins()
	if len(pins) != 3 || pins[0] != n.Driver || pins[2] != n.Sinks[1] {
		t.Errorf("Pins() = %+v", pins)
	}
	if n.Fanout() != 2 {
		t.Errorf("Fanout = %d, want 2", n.Fanout())
	}
}
