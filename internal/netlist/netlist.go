// Package netlist models gate-level netlists: cell instances from a
// standard-cell library connected by multi-fanout nets, plus the random
// netlist generator used to synthesise benchmark designs.
//
// A net always has exactly one driver (an output pin) and one or more sinks
// (input pins). This single-driver invariant is what makes certain v-pin
// pairs electrically illegal in the attack: two route fragments that both
// end in output pins can never belong to the same net.
package netlist

import (
	"fmt"

	"repro/internal/cell"
)

// Cell is an instance of a library kind.
type Cell struct {
	ID   int
	Name string
	Kind *cell.Kind
}

// PinRef identifies one pin of one cell instance: Pin indexes into
// Cell.Kind.Pins.
type PinRef struct {
	Cell int
	Pin  int
}

// Net is a single-driver, multi-sink connection.
type Net struct {
	ID     int
	Name   string
	Driver PinRef
	Sinks  []PinRef
}

// Fanout returns the number of sinks.
func (n *Net) Fanout() int { return len(n.Sinks) }

// Pins returns the driver followed by all sinks.
func (n *Net) Pins() []PinRef {
	out := make([]PinRef, 0, 1+len(n.Sinks))
	out = append(out, n.Driver)
	return append(out, n.Sinks...)
}

// Netlist is a set of cells and the nets connecting them.
type Netlist struct {
	Lib   *cell.Library
	Cells []Cell
	Nets  []Net
}

// Kind returns the library kind of the cell with the given ID.
func (nl *Netlist) Kind(cellID int) *cell.Kind { return nl.Cells[cellID].Kind }

// PinDef resolves a PinRef to its library pin definition.
func (nl *Netlist) PinDef(r PinRef) cell.PinDef {
	return nl.Cells[r.Cell].Kind.Pins[r.Pin]
}

// Validate checks structural invariants: pin references in range, drivers on
// output pins, sinks on input pins, and no sink driven twice. It returns the
// first violation found.
func (nl *Netlist) Validate() error {
	if nl.Lib == nil {
		return fmt.Errorf("netlist: nil library")
	}
	for i, c := range nl.Cells {
		if c.ID != i {
			return fmt.Errorf("netlist: cell %d has ID %d", i, c.ID)
		}
		if c.Kind == nil {
			return fmt.Errorf("netlist: cell %d has nil kind", i)
		}
	}
	sinkSeen := make(map[PinRef]int)
	for i, n := range nl.Nets {
		if n.ID != i {
			return fmt.Errorf("netlist: net %d has ID %d", i, n.ID)
		}
		if err := nl.checkRef(n.Driver); err != nil {
			return fmt.Errorf("netlist: net %d driver: %w", i, err)
		}
		if nl.PinDef(n.Driver).Dir != cell.Output {
			return fmt.Errorf("netlist: net %d driven by non-output pin", i)
		}
		if len(n.Sinks) == 0 {
			return fmt.Errorf("netlist: net %d has no sinks", i)
		}
		for _, s := range n.Sinks {
			if err := nl.checkRef(s); err != nil {
				return fmt.Errorf("netlist: net %d sink: %w", i, err)
			}
			if nl.PinDef(s).Dir != cell.Input {
				return fmt.Errorf("netlist: net %d has non-input sink", i)
			}
			if prev, dup := sinkSeen[s]; dup {
				return fmt.Errorf("netlist: pin %+v driven by nets %d and %d", s, prev, i)
			}
			sinkSeen[s] = i
		}
	}
	return nil
}

func (nl *Netlist) checkRef(r PinRef) error {
	if r.Cell < 0 || r.Cell >= len(nl.Cells) {
		return fmt.Errorf("cell index %d out of range", r.Cell)
	}
	if r.Pin < 0 || r.Pin >= len(nl.Cells[r.Cell].Kind.Pins) {
		return fmt.Errorf("pin index %d out of range for kind %s", r.Pin, nl.Cells[r.Cell].Kind.Name)
	}
	return nil
}
