package ml

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary codec for trained MLPs, mirroring the ensemble codec's contract:
// versioned, CRC-checked, bit-exact round-trips.
//
//	magic    "MLNN"                      4 bytes
//	version  uint16 little-endian        currently 1
//	hidden   uint32                      hidden-layer width
//	m        uint32                      feature-subset size
//	features m × uint32                  feature column of each input
//	w1       hidden × m × float64       first layer (standardisation folded)
//	b1       hidden × float64
//	w2       hidden × float64
//	b2       float64
//	crc      uint32                      IEEE CRC-32 of everything above
//
// Weights are raw IEEE-754 bits, so a decoded network's Prob/ProbBatch
// results are bit-identical to the encoded one's. Decoding rejects
// truncation, trailing garbage, unknown versions, checksum mismatches, and
// structurally invalid payloads (zero widths, negative feature columns,
// non-finite weights).
const (
	mlpMagic = "MLNN"
	// MLPCodecVersion is the current on-disk MLP format version.
	MLPCodecVersion = 1
)

const mlpHeaderLen = 4 + 2 + 4 + 4 // magic, version, hidden, m

// MarshalBinary encodes the network in the versioned binary format above.
func (nn *MLP) MarshalBinary() ([]byte, error) {
	if nn.hidden <= 0 || len(nn.features) == 0 {
		return nil, fmt.Errorf("ml: cannot encode an empty mlp")
	}
	h, m := nn.hidden, len(nn.features)
	buf := make([]byte, 0, mlpHeaderLen+4*m+8*(h*m+2*h+1)+4)
	buf = append(buf, mlpMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, MLPCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	for _, f := range nn.features {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f))
	}
	for _, v := range nn.w1 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range nn.b1 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, v := range nn.w2 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(nn.b2))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalMLP decodes a network encoded by MarshalBinary, validating the
// checksum and structural invariants. The returned MLP is bit-identical to
// the encoded one.
func UnmarshalMLP(data []byte) (*MLP, error) {
	if len(data) < mlpHeaderLen+4 {
		return nil, fmt.Errorf("ml: mlp blob truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != mlpMagic {
		return nil, fmt.Errorf("ml: not an mlp blob (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != MLPCodecVersion {
		return nil, fmt.Errorf("ml: unsupported mlp codec version %d (have %d)",
			v, MLPCodecVersion)
	}
	h := int(binary.LittleEndian.Uint32(data[6:]))
	m := int(binary.LittleEndian.Uint32(data[10:]))
	want := mlpHeaderLen + 4*m + 8*(h*m+2*h+1) + 4
	if h <= 0 || m <= 0 || h > 1<<20 || m > 1<<20 || len(data) != want {
		return nil, fmt.Errorf("ml: mlp blob is %d bytes, want %d for hidden %d / %d features",
			len(data), want, h, m)
	}
	if got, stored := crc32.ChecksumIEEE(data[:len(data)-4]),
		binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("ml: mlp blob checksum mismatch (corrupted payload)")
	}
	nn := &MLP{
		w1: make([]float64, h*m), b1: make([]float64, h),
		w2:       make([]float64, h),
		features: make([]int, m),
		hidden:   h,
	}
	off := mlpHeaderLen
	for i := range nn.features {
		nn.features[i] = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
	}
	readF64 := func(dst []float64) {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	readF64(nn.w1)
	readF64(nn.b1)
	readF64(nn.w2)
	nn.b2 = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	if err := nn.validate(); err != nil {
		return nil, err
	}
	return nn, nil
}

// validate checks the invariants TrainMLP establishes: non-negative feature
// columns and finite weights everywhere. The CRC already caught random
// corruption; this catches deliberate or wildly unlucky structural damage
// that would make Prob read out of bounds or emit NaN scores.
func (nn *MLP) validate() error {
	for i, f := range nn.features {
		if f < 0 {
			return fmt.Errorf("ml: mlp feature column %d is negative (%d)", i, f)
		}
	}
	check := func(name string, vs []float64) error {
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: mlp %s[%d] is not finite (%v)", name, i, v)
			}
		}
		return nil
	}
	if err := check("w1", nn.w1); err != nil {
		return err
	}
	if err := check("b1", nn.b1); err != nil {
		return err
	}
	if err := check("w2", nn.w2); err != nil {
		return err
	}
	if math.IsNaN(nn.b2) || math.IsInf(nn.b2, 0) {
		return fmt.Errorf("ml: mlp b2 is not finite (%v)", nn.b2)
	}
	return nil
}
