package ml

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// Bagging is the bootstrap-aggregating meta-classifier. Following Weka, it
// combines base trees by soft voting: the ensemble probability is the mean
// of the per-tree leaf-frequency probabilities (paper eq. 1-3), and the
// binary prediction applies a threshold — 0.5 by default, but the attack
// varies it to control LoC sizes (paper §III-F).
type Bagging struct {
	Trees []*Tree
}

// DefaultBaggingSize is Weka's default number of REPTrees in Bagging. The
// paper's headline models use exactly this.
const DefaultBaggingSize = 10

// DefaultForestSize is Weka's default number of RandomTrees in
// RandomForest, the slower baseline the paper compares against.
const DefaultForestSize = 100

// TrainBagging trains n base trees on independent bootstrap resamples.
func TrainBagging(ds *Dataset, n int, opts TreeOptions, rng *rand.Rand) (*Bagging, error) {
	return TrainBaggingObs(nil, ds, n, opts, rng)
}

// TrainBaggingObs is TrainBagging reporting per-ensemble logs and per-tree
// size metrics to an observability context (nil disables both).
func TrainBaggingObs(o *obs.Context, ds *Dataset, n int, opts TreeOptions, rng *rand.Rand) (*Bagging, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ml: bagging size %d must be positive", n)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	b := &Bagging{Trees: make([]*Tree, 0, n)}
	for i := 0; i < n; i++ {
		boot := ds.Bootstrap(rng)
		t, err := TrainTree(boot, opts, rng)
		if err != nil {
			return nil, err
		}
		b.Trees = append(b.Trees, t)
	}
	if o.Enabled() {
		h := o.Metrics().Histogram("ml.tree.nodes")
		for _, t := range b.Trees {
			h.Observe(float64(t.Nodes()))
		}
		o.Metrics().Counter("ml.trees.trained").Add(int64(n))
		o.Log().Debug("bagging trained", "trees", n, "samples", ds.Len(), "nodes", b.Nodes())
	}
	return b, nil
}

// TrainRandomForest is Bagging with RandomTree base classifiers — Weka's
// RandomForest, used by the paper's earlier configuration [18].
func TrainRandomForest(ds *Dataset, n int, features []int, rng *rand.Rand) (*Bagging, error) {
	return TrainBagging(ds, n, TreeOptions{Kind: RandomTree, Features: features, MinLeaf: 1}, rng)
}

// Prob returns the soft-voting ensemble probability p(x) in [0, 1].
func (b *Bagging) Prob(x []float64) float64 {
	var sum float64
	for _, t := range b.Trees {
		sum += t.Prob(x)
	}
	return sum / float64(len(b.Trees))
}

// Predict applies threshold t to the ensemble probability.
func (b *Bagging) Predict(x []float64, t float64) bool {
	return b.Prob(x) >= t
}

// Nodes returns the total node count across all trees.
func (b *Bagging) Nodes() int {
	n := 0
	for _, t := range b.Trees {
		n += t.Nodes()
	}
	return n
}
