package ml

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Bagging is the bootstrap-aggregating meta-classifier. Following Weka, it
// combines base trees by soft voting: the ensemble probability is the mean
// of the per-tree leaf-frequency probabilities (paper eq. 1-3), and the
// binary prediction applies a threshold — 0.5 by default, but the attack
// varies it to control LoC sizes (paper §III-F).
//
// A trained Bagging is immutable; Prob, Predict, and Nodes are safe for
// concurrent use from any number of goroutines.
type Bagging struct {
	Trees []*Tree
}

// DefaultBaggingSize is Weka's default number of REPTrees in Bagging. The
// paper's headline models use exactly this.
const DefaultBaggingSize = 10

// DefaultForestSize is Weka's default number of RandomTrees in
// RandomForest, the slower baseline the paper compares against.
const DefaultForestSize = 100

// TrainBagging trains n base trees sequentially on independent bootstrap
// resamples, all drawn from the single shared rng. The resulting ensemble
// depends on the rng's state and on every draw made during training; for
// the scheduling-independent parallel path used by the attack engine, see
// TrainBaggingStreams.
func TrainBagging(ds *Dataset, n int, opts TreeOptions, rng *rand.Rand) (*Bagging, error) {
	return TrainBaggingObs(nil, ds, n, opts, rng)
}

// TrainBaggingObs is TrainBagging reporting per-ensemble logs and per-tree
// size metrics to an observability context (nil disables both). Training is
// sequential: tree i's bootstrap resample and induction randomness are
// consumed from the shared rng in tree order.
func TrainBaggingObs(o *obs.Context, ds *Dataset, n int, opts TreeOptions, rng *rand.Rand) (*Bagging, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ml: bagging size %d must be positive", n)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	b := &Bagging{Trees: make([]*Tree, 0, n)}
	for i := 0; i < n; i++ {
		boot := ds.Bootstrap(rng)
		t, err := TrainTree(boot, opts, rng)
		if err != nil {
			return nil, err
		}
		b.Trees = append(b.Trees, t)
	}
	observeEnsemble(o, b, ds, n)
	return b, nil
}

// TrainBaggingStreams trains the n base trees on up to workers goroutines.
// Tree i draws its bootstrap resample and all induction randomness (the
// REPTree grow/prune split, RandomTree per-node feature sampling)
// exclusively from streams(i), so the trained ensemble depends only on the
// streams, never on scheduling: any worker count, including 1, yields a
// bit-identical model. This is the training path behind the attack
// engine's determinism guarantee (see internal/rng).
//
// streams is called at most once per tree, possibly from several
// goroutines concurrently, and must return an independent generator per
// index (a pure derivation such as rng.Derive qualifies). workers <= 0
// selects one goroutine per tree, capped at the tree count. The dataset is
// only read; it must not be mutated concurrently.
func TrainBaggingStreams(o *obs.Context, ds *Dataset, n int, opts TreeOptions, streams func(tree int) *rand.Rand, workers int) (*Bagging, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ml: bagging size %d must be positive", n)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	trees := make([]*Tree, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r := streams(i)
				boot := ds.Bootstrap(r)
				trees[i], errs[i] = TrainTree(boot, opts, r)
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	b := &Bagging{Trees: trees}
	observeEnsemble(o, b, ds, n)
	return b, nil
}

// observeEnsemble reports the per-tree size metrics and the ensemble log
// line shared by both training paths.
func observeEnsemble(o *obs.Context, b *Bagging, ds *Dataset, n int) {
	if !o.Enabled() {
		return
	}
	h := o.Metrics().Histogram("ml.tree.nodes")
	for _, t := range b.Trees {
		h.Observe(float64(t.Nodes()))
	}
	o.Metrics().Counter("ml.trees.trained").Add(int64(n))
	o.Log().Debug("bagging trained", "trees", n, "samples", ds.Len(), "nodes", b.Nodes())
}

// TrainRandomForest is Bagging with RandomTree base classifiers — Weka's
// RandomForest, used by the paper's earlier configuration [18]. Like
// TrainBagging it trains sequentially from the shared rng.
func TrainRandomForest(ds *Dataset, n int, features []int, rng *rand.Rand) (*Bagging, error) {
	return TrainBagging(ds, n, TreeOptions{Kind: RandomTree, Features: features, MinLeaf: 1}, rng)
}

// Prob returns the soft-voting ensemble probability p(x) in [0, 1].
func (b *Bagging) Prob(x []float64) float64 {
	var sum float64
	for _, t := range b.Trees {
		sum += t.Prob(x)
	}
	return sum / float64(len(b.Trees))
}

// Predict applies threshold t to the ensemble probability.
func (b *Bagging) Predict(x []float64, t float64) bool {
	return b.Prob(x) >= t
}

// Nodes returns the total node count across all trees.
func (b *Bagging) Nodes() int {
	n := 0
	for _, t := range b.Trees {
		n += t.Nodes()
	}
	return n
}
