package ml

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/rng"
)

// streamsDataset builds a small two-cluster dataset deterministic in seed.
func streamsDataset(seed int64, n int) *Dataset {
	r := rand.New(rand.NewSource(seed))
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		center := 0.0
		if pos {
			center = 2.0
		}
		ds.Add([]float64{center + r.NormFloat64(), center - r.NormFloat64(), r.Float64()}, pos)
	}
	return ds
}

// TestTrainBaggingStreamsDeterministic pins the headline guarantee at the
// ml layer: with per-tree streams, the trained ensemble is identical at
// every worker count.
func TestTrainBaggingStreamsDeterministic(t *testing.T) {
	ds := streamsDataset(11, 300)
	streams := func(tree int) *rand.Rand { return rng.Derive(7, 3, int64(tree)) }
	opts := TreeOptions{Kind: REPTree}

	var base *Bagging
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 0} {
		b, err := TrainBaggingStreams(nil, ds, 16, opts, streams, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = b
			continue
		}
		if b.Nodes() != base.Nodes() {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, b.Nodes(), base.Nodes())
		}
		for i, tree := range b.Trees {
			if tree.Nodes() != base.Trees[i].Nodes() {
				t.Fatalf("workers=%d: tree %d has %d nodes, want %d",
					workers, i, tree.Nodes(), base.Trees[i].Nodes())
			}
		}
		for _, x := range ds.X {
			if p, q := b.Prob(x), base.Prob(x); p != q {
				t.Fatalf("workers=%d: Prob diverges: %g vs %g", workers, p, q)
			}
		}
	}
}

// TestTrainBaggingStreamsMatchesSequential checks that one worker consuming
// the same per-tree streams as the parallel pool reproduces a hand-rolled
// sequential loop exactly — the pool adds scheduling, never randomness.
func TestTrainBaggingStreamsMatchesSequential(t *testing.T) {
	ds := streamsDataset(23, 200)
	streams := func(tree int) *rand.Rand { return rng.Derive(9, 1, int64(tree)) }
	opts := TreeOptions{Kind: RandomTree, MinLeaf: 1}

	want := make([]*Tree, 8)
	for i := range want {
		r := streams(i)
		tree, err := TrainTree(ds.Bootstrap(r), opts, r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = tree
	}
	got, err := TrainBaggingStreams(nil, ds, len(want), opts, streams, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Trees[i].Nodes() != want[i].Nodes() {
			t.Fatalf("tree %d: %d nodes, want %d", i, got.Trees[i].Nodes(), want[i].Nodes())
		}
		for _, x := range ds.X[:50] {
			if p, q := got.Trees[i].Prob(x), want[i].Prob(x); p != q {
				t.Fatalf("tree %d: Prob %g, want %g", i, p, q)
			}
		}
	}
}

func TestTrainBaggingStreamsErrors(t *testing.T) {
	ds := streamsDataset(3, 50)
	streams := func(tree int) *rand.Rand { return rng.Derive(1, int64(tree)) }
	if _, err := TrainBaggingStreams(nil, ds, 0, TreeOptions{}, streams, 2); err == nil {
		t.Error("non-positive ensemble size accepted")
	}
	if _, err := TrainBaggingStreams(nil, &Dataset{}, 4, TreeOptions{}, streams, 2); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := TreeOptions{Features: []int{99}}
	if _, err := TrainBaggingStreams(nil, ds, 4, bad, streams, 2); err == nil {
		t.Error("out-of-range feature index accepted")
	}
}

func TestTrainBaggingStreamsQuality(t *testing.T) {
	ds := streamsDataset(5, 400)
	streams := func(tree int) *rand.Rand { return rng.Derive(5, 2, int64(tree)) }
	b, err := TrainBaggingStreams(nil, ds, DefaultBaggingSize, TreeOptions{Kind: REPTree}, streams, 0)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range ds.X {
		if b.Predict(x, 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.8 {
		t.Errorf("training accuracy %.3f on separable clusters", acc)
	}
	for _, x := range ds.X {
		if p := b.Prob(x); p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %g out of range", p)
		}
	}
}
