package ml

import (
	"math/rand"
	"testing"
)

func TestPermutationImportanceSeparatesSignalFromNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := separableData(1500, rng) // feature 0 informative, feature 1 noise
	test := separableData(800, rng)
	model, err := TrainBagging(train, DefaultBaggingSize, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	imp := PermutationImportance(model, test, rng)
	if len(imp) != 2 {
		t.Fatalf("importance length %d", len(imp))
	}
	if imp[0] < 0.2 {
		t.Errorf("informative feature importance %.3f too small", imp[0])
	}
	if imp[1] > 0.05 || imp[1] < -0.05 {
		t.Errorf("noise feature importance %.3f not near zero", imp[1])
	}
	if imp[0] <= imp[1] {
		t.Error("signal feature must outrank noise")
	}
}

func TestPermutationImportanceWorksWithLogistic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := separableData(1000, rng)
	lg, err := TrainLogistic(train, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	imp := PermutationImportance(lg, train, rng)
	if imp[0] <= imp[1] {
		t.Errorf("logistic importances %.3f vs %.3f not ordered", imp[0], imp[1])
	}
}

func TestPermutationImportanceEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := separableData(50, rng)
	model, err := TrainBagging(ds, 3, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if PermutationImportance(model, &Dataset{}, rng) != nil {
		t.Error("empty dataset importance should be nil")
	}
}
