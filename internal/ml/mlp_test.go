package ml

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMLPLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := separableData(1000, rng)
	nn, err := TrainMLP(ds, MLPOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range ds.X {
		if (nn.Prob(ds.X[i]) >= 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Errorf("mlp accuracy %.3f on separable data", acc)
	}
}

func TestMLPLearnsNonlinearData(t *testing.T) {
	// XOR-style labels: no linear model can beat chance, a one-hidden-layer
	// network must — this is the capability the family adds over Logistic.
	rng := rand.New(rand.NewSource(2))
	ds := &Dataset{}
	for i := 0; i < 2000; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		ds.Add([]float64{a, b}, (a > 0) != (b > 0))
	}
	nn, err := TrainMLP(ds, MLPOptions{Hidden: 8, Epochs: 60}, rng)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := TrainLogistic(ds, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	accOf := func(prob func([]float64) float64) float64 {
		correct := 0
		for i := range ds.X {
			if (prob(ds.X[i]) >= 0.5) == ds.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(ds.Len())
	}
	nnAcc, lgAcc := accOf(nn.Prob), accOf(lg.Prob)
	if nnAcc < 0.9 {
		t.Errorf("mlp accuracy %.3f on XOR data", nnAcc)
	}
	if lgAcc > 0.65 {
		t.Errorf("logistic accuracy %.3f on XOR data; test data is not nonlinear enough", lgAcc)
	}
}

func TestMLPHandlesUnscaledFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := &Dataset{}
	for i := 0; i < 1000; i++ {
		y := rng.Intn(2) == 0
		big := rng.NormFloat64() * 1e7
		if y {
			big += 2e7
		}
		ds.Add([]float64{big, rng.Float64() * 1e-3}, y)
	}
	nn, err := TrainMLP(ds, MLPOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range ds.X {
		if (nn.Prob(ds.X[i]) >= 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.8 {
		t.Errorf("accuracy %.3f on unscaled features", acc)
	}
}

// TestMLPDeterministic pins the family contract the Spec/Store layers rely
// on: the same dataset and seed produce bit-identical weights, so a cached
// artifact is indistinguishable from a retrain.
func TestMLPDeterministic(t *testing.T) {
	ds := noisyData(600, 0.15, rand.New(rand.NewSource(10)))
	train := func() []byte {
		nn, err := TrainMLP(ds, MLPOptions{Hidden: 8, Epochs: 10}, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := nn.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if !bytes.Equal(train(), train()) {
		t.Fatal("two same-seed trainings produced different weights")
	}
}

// TestMLPProbBatchBitIdentity pins the BatchScorer contract: ProbBatch must
// reproduce Prob bit for bit over a strided matrix, including rows wider
// than the trained feature subset.
func TestMLPProbBatchBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := noisyData(400, 0.2, rng)
	nn, err := TrainMLP(ds, MLPOptions{Hidden: 6, Epochs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n, stride = 64, 5
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	out := make([]float64, n)
	nn.ProbBatch(rows, stride, out)
	for r := 0; r < n; r++ {
		if want := nn.Prob(rows[r*stride : (r+1)*stride]); out[r] != want {
			t.Fatalf("row %d: ProbBatch = %v, Prob = %v (must be bit-identical)", r, out[r], want)
		}
	}
}

func TestMLPProbBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := noisyData(300, 0.2, rng)
	nn, err := TrainMLP(ds, MLPOptions{Hidden: 6, Epochs: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]float64, 32*2)
	out := make([]float64, 32)
	if allocs := testing.AllocsPerRun(20, func() { nn.ProbBatch(rows, 2, out) }); allocs != 0 {
		t.Errorf("ProbBatch allocates %.1f times per call, want 0", allocs)
	}
}

func TestMLPProbBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds := noisyData(300, 0.2, rng)
	nn, err := TrainMLP(ds, MLPOptions{Epochs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := nn.Prob([]float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Prob out of [0, 1]: %v", p)
		}
	}
}

func TestMLPRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	if _, err := TrainMLP(&Dataset{}, MLPOptions{}, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := separableData(10, rng)
	if _, err := TrainMLP(ds, MLPOptions{Features: []int{7}}, rng); err == nil {
		t.Error("out-of-range feature accepted")
	}
}

// mlpFixture trains a small deterministic network for codec tests.
func mlpFixture(t *testing.T) *MLP {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	ds := noisyData(500, 0.2, rng)
	nn, err := TrainMLP(ds, MLPOptions{Hidden: 4, Epochs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nn
}

func TestMLPCodecRoundTrip(t *testing.T) {
	nn := mlpFixture(t)
	blob, err := nn.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d, err := UnmarshalMLP(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Hidden() != nn.Hidden() {
		t.Fatalf("decoded hidden = %d, want %d", d.Hidden(), nn.Hidden())
	}
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 1000; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		if got, want := d.Prob(x), nn.Prob(x); got != want {
			t.Fatalf("decoded Prob = %v, original = %v (must be bit-identical)", got, want)
		}
	}
	blob2, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs from the original")
	}
}

func TestMLPCodecRejectsCorruption(t *testing.T) {
	nn := mlpFixture(t)
	blob, err := nn.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		errPart string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:8] }, "truncated"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "bytes, want"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, "bytes, want"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"ensemble magic", func(b []byte) []byte { copy(b, ensembleMagic); return b }, "bad magic"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 999)
			return b
		}, "unsupported mlp codec version"},
		{"payload bit flip", func(b []byte) []byte { b[20] ^= 0x40; return b }, "checksum mismatch"},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
		{"zero hidden", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[6:], 0)
			return recrc(b)
		}, "bytes, want"},
		{"negative feature", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[mlpHeaderLen:], ^uint32(0))
			return recrc(b)
		}, "negative"},
		{"nan weight", func(b []byte) []byte {
			off := mlpHeaderLen + 4*len(nn.features)
			binary.LittleEndian.PutUint64(b[off:], 0xFFF8000000000000)
			return recrc(b)
		}, "not finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), blob...))
			_, err := UnmarshalMLP(data)
			if err == nil {
				t.Fatal("corrupted blob decoded without error")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestMLPCodecGolden pins the on-disk format; regenerate with
// `go test -run Golden -update ./internal/ml/`.
func TestMLPCodecGolden(t *testing.T) {
	nn := mlpFixture(t)
	blob, err := nn.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "mlp_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("encoded blob (%d bytes) differs from golden (%d bytes); if the format change is intentional, bump MLPCodecVersion and run with -update", len(blob), len(want))
	}
	d, err := UnmarshalMLP(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		if got, want := d.Prob(x), nn.Prob(x); got != want {
			t.Fatalf("golden-decoded Prob = %v, fixture = %v", got, want)
		}
	}
}

func TestLogisticCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	ds := noisyData(500, 0.2, rng)
	lg, err := TrainLogistic(ds, LogisticOptions{Epochs: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := lg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d, err := UnmarshalLogistic(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		if got, want := d.Prob(x), lg.Prob(x); got != want {
			t.Fatalf("decoded Prob = %v, original = %v (must be bit-identical)", got, want)
		}
	}
	blob2, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs from the original")
	}
}

func TestLogisticCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	ds := noisyData(300, 0.2, rng)
	lg, err := TrainLogistic(ds, LogisticOptions{Epochs: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := lg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		errPart string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "bytes, want"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 999)
			return b
		}, "unsupported logistic codec version"},
		{"payload bit flip", func(b []byte) []byte { b[12] ^= 0x40; return b }, "checksum mismatch"},
		{"zero sd", func(b []byte) []byte {
			m := len(lg.features)
			off := logisticHeaderLen + 4*m + 8*2*m // past features, w, mean
			binary.LittleEndian.PutUint64(b[off:], 0)
			return recrc(b)
		}, "valid scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), blob...))
			_, err := UnmarshalLogistic(data)
			if err == nil {
				t.Fatal("corrupted blob decoded without error")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}
