package ml

import (
	"math/rand"
	"testing"
)

// Inference benchmarks: pair scoring dominates attack runtime, so the
// per-vector cost of the ensemble matters.

func benchModel(b *testing.B, kind TreeKind, trees int) (*Bagging, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := noisyData(5000, 0.15, rng)
	m, err := TrainBagging(ds, trees, TreeOptions{Kind: kind}, rng)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([][]float64, 1024)
	for i := range probes {
		probes[i] = []float64{rng.NormFloat64(), rng.Float64()}
	}
	return m, probes
}

func BenchmarkBaggingProbREPTree(b *testing.B) {
	m, probes := benchModel(b, REPTree, DefaultBaggingSize)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Prob(probes[i%len(probes)])
	}
	_ = sink
}

func BenchmarkBaggingProbRandomForest(b *testing.B) {
	m, probes := benchModel(b, RandomTree, DefaultForestSize)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Prob(probes[i%len(probes)])
	}
	_ = sink
}

// BenchmarkEnsembleProbScalar walks the compiled arena one vector at a
// time — the fallback path when batching is disabled.
func BenchmarkEnsembleProbScalar(b *testing.B) {
	m, probes := benchModel(b, REPTree, DefaultBaggingSize)
	e := m.Compile()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += e.Prob(probes[i%len(probes)])
	}
	_ = sink
}

// BenchmarkEnsembleProbBatch is the attack's hot path: the same vectors
// scored through one ProbBatch call over a row-major matrix. Compare
// against BenchmarkBaggingProbREPTree (the pre-arena scalar path) and
// BenchmarkEnsembleProbScalar for the per-layer speedups.
func BenchmarkEnsembleProbBatch(b *testing.B) {
	m, probes := benchModel(b, REPTree, DefaultBaggingSize)
	e := m.Compile()
	const stride = 2
	rows := make([]float64, len(probes)*stride)
	for i, p := range probes {
		copy(rows[i*stride:], p)
	}
	out := make([]float64, len(probes))
	b.ResetTimer()
	for i := 0; i < b.N; i += len(probes) {
		e.ProbBatch(rows, stride, out)
	}
}

// attackishData mimics the attack's pair training sets: 11 features, a few
// informative dimensions, label noise. REPTrees trained on it come out
// ~100-150 nodes with depth ~15 — much closer to the scoring hot path than
// the 2-feature noisyData trees above.
func attackishData(n int, rng *rand.Rand) *Dataset {
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		x := make([]float64, 11)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		score := x[0] + 0.7*x[3] - 0.5*x[7] + 0.3*x[9]*x[1]
		y := score > 0
		if rng.Float64() < 0.12 {
			y = !y
		}
		ds.Add(x, y)
	}
	return ds
}

func benchAttackishModel(b *testing.B) (*Bagging, []float64, int) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	ds := attackishData(6000, rng)
	m, err := TrainBagging(ds, DefaultBaggingSize, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		b.Fatal(err)
	}
	const stride = 11
	const probes = 1024
	rows := make([]float64, probes*stride)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	return m, rows, probes
}

// BenchmarkBaggingProbAttackShaped is the pre-arena per-pair path on
// attack-shaped trees; divide ns/op by the probe count for ns/row.
func BenchmarkBaggingProbAttackShaped(b *testing.B) {
	m, rows, probes := benchAttackishModel(b)
	const stride = 11
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		r := (i % probes) * stride
		sink += m.Prob(rows[r : r+stride])
	}
	_ = sink
}

// BenchmarkEnsembleProbBatchAttackShaped is the arena batch walk over the
// same rows — the kernel the attack's gather path feeds.
func BenchmarkEnsembleProbBatchAttackShaped(b *testing.B) {
	m, rows, probes := benchAttackishModel(b)
	e := m.Compile()
	const stride = 11
	out := make([]float64, probes)
	b.ResetTimer()
	for i := 0; i < b.N; i += probes {
		e.ProbBatch(rows, stride, out)
	}
}

func BenchmarkTrainBaggingREPTree(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ds := noisyData(5000, 0.15, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBagging(ds, DefaultBaggingSize, TreeOptions{Kind: REPTree}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainStreams measures parallel ensemble training at a fixed worker
// count; compare across counts for the tree-level speedup.
func benchTrainStreams(b *testing.B, workers int) {
	seedRng := rand.New(rand.NewSource(2))
	ds := noisyData(5000, 0.15, seedRng)
	streams := func(tree int) *rand.Rand {
		return rand.New(rand.NewSource(int64(tree) + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBaggingStreams(nil, ds, 32, TreeOptions{Kind: REPTree}, streams, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBaggingStreams1(b *testing.B) { benchTrainStreams(b, 1) }
func BenchmarkTrainBaggingStreams2(b *testing.B) { benchTrainStreams(b, 2) }
func BenchmarkTrainBaggingStreams4(b *testing.B) { benchTrainStreams(b, 4) }
func BenchmarkTrainBaggingStreamsMax(b *testing.B) {
	benchTrainStreams(b, 0) // one goroutine per tree, capped at 32
}
