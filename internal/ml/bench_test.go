package ml

import (
	"math/rand"
	"testing"
)

// Inference benchmarks: pair scoring dominates attack runtime, so the
// per-vector cost of the ensemble matters.

func benchModel(b *testing.B, kind TreeKind, trees int) (*Bagging, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ds := noisyData(5000, 0.15, rng)
	m, err := TrainBagging(ds, trees, TreeOptions{Kind: kind}, rng)
	if err != nil {
		b.Fatal(err)
	}
	probes := make([][]float64, 1024)
	for i := range probes {
		probes[i] = []float64{rng.NormFloat64(), rng.Float64()}
	}
	return m, probes
}

func BenchmarkBaggingProbREPTree(b *testing.B) {
	m, probes := benchModel(b, REPTree, DefaultBaggingSize)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Prob(probes[i%len(probes)])
	}
	_ = sink
}

func BenchmarkBaggingProbRandomForest(b *testing.B) {
	m, probes := benchModel(b, RandomTree, DefaultForestSize)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Prob(probes[i%len(probes)])
	}
	_ = sink
}

func BenchmarkTrainBaggingREPTree(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ds := noisyData(5000, 0.15, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBagging(ds, DefaultBaggingSize, TreeOptions{Kind: REPTree}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainStreams measures parallel ensemble training at a fixed worker
// count; compare across counts for the tree-level speedup.
func benchTrainStreams(b *testing.B, workers int) {
	seedRng := rand.New(rand.NewSource(2))
	ds := noisyData(5000, 0.15, seedRng)
	streams := func(tree int) *rand.Rand {
		return rand.New(rand.NewSource(int64(tree) + 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBaggingStreams(nil, ds, 32, TreeOptions{Kind: REPTree}, streams, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBaggingStreams1(b *testing.B) { benchTrainStreams(b, 1) }
func BenchmarkTrainBaggingStreams2(b *testing.B) { benchTrainStreams(b, 2) }
func BenchmarkTrainBaggingStreams4(b *testing.B) { benchTrainStreams(b, 4) }
func BenchmarkTrainBaggingStreamsMax(b *testing.B) {
	benchTrainStreams(b, 0) // one goroutine per tree, capped at 32
}
