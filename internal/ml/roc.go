package ml

import (
	"cmp"
	"slices"
)

// AUC computes the area under the ROC curve from scores and binary labels
// using the rank statistic (equivalent to the Mann-Whitney U), with the
// standard half-credit handling of tied scores. It returns 0.5 when either
// class is absent. The experiment harness uses AUC as a
// threshold-independent quality summary of a classifier over v-pin pairs.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0.5
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(scores[a], scores[b]) })

	// Assign average ranks to ties (1-based ranks).
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // mean of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}

	var posRankSum float64
	var nPos, nNeg float64
	for i, y := range labels {
		if y {
			posRankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := posRankSum - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// ROCPoint is one (false-positive rate, true-positive rate) sample.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC returns the ROC curve of the scores at every distinct threshold,
// from the most permissive (FPR=TPR=1) to the strictest (0, 0).
func ROC(scores []float64, labels []bool) []ROCPoint {
	if len(scores) != len(labels) || len(scores) == 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(scores[b], scores[a]) })
	var nPos, nNeg float64
	for _, y := range labels {
		if y {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return nil
	}
	var pts []ROCPoint
	tp, fp := 0.0, 0.0
	for i := 0; i < len(idx); {
		thr := scores[idx[i]]
		for i < len(idx) && scores[idx[i]] == thr {
			if labels[idx[i]] {
				tp++
			} else {
				fp++
			}
			i++
		}
		pts = append(pts, ROCPoint{FPR: fp / nNeg, TPR: tp / nPos, Threshold: thr})
	}
	return pts
}
