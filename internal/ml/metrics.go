package ml

import (
	"cmp"
	"math"
	"slices"
	"sort"
)

// InfoGain returns the information gain (in nats) of a numeric feature with
// respect to a binary label, computed over an equal-frequency
// discretisation with the given number of bins — the approach Weka's
// attribute evaluators take for numeric attributes. Larger is more
// informative. bins <= 0 selects 10.
func InfoGain(xs []float64, ys []bool, bins int) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0
	}
	if bins <= 0 {
		bins = 10
	}
	pos := 0
	for _, y := range ys {
		if y {
			pos++
		}
	}
	parent := entropy2(pos, len(ys)-pos)
	if parent == 0 {
		return 0
	}

	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return cmp.Compare(xs[a], xs[b]) })

	var cond float64
	n := len(order)
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		if hi <= lo {
			continue
		}
		// Extend the bin over ties so identical values land in one bin.
		for hi < n && xs[order[hi]] == xs[order[hi-1]] {
			hi++
		}
		if b > 0 && lo < n {
			// Skip samples consumed by the previous bin's tie extension.
			for lo < hi && lo > 0 && xs[order[lo-1]] == xs[order[lo]] {
				lo++
			}
		}
		if hi <= lo {
			continue
		}
		bp := 0
		for _, i := range order[lo:hi] {
			if ys[i] {
				bp++
			}
		}
		cond += float64(hi-lo) / float64(n) * entropy2(bp, (hi-lo)-bp)
	}
	gain := parent - cond
	if gain < 0 {
		return 0
	}
	return gain
}

// CorrCoef returns the Pearson correlation coefficient between a numeric
// feature and the binary label (taken as 0/1). The attack reports its
// absolute value as a feature-importance measure.
func CorrCoef(xs []float64, ys []bool) float64 {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i, x := range xs {
		y := 0.0
		if ys[i] {
			y = 1
		}
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// FisherRatio returns Fisher's discriminant ratio of a feature:
// (mu1-mu2)^2 / (var1+var2), measuring how separable the two classes are
// along this feature. Larger is more separable. A zero denominator with
// distinct means returns +Inf; with equal means it returns 0.
func FisherRatio(xs []float64, ys []bool) float64 {
	var n1, n2 float64
	var s1, s2 float64
	for i, x := range xs {
		if ys[i] {
			n1++
			s1 += x
		} else {
			n2++
			s2 += x
		}
	}
	if n1 == 0 || n2 == 0 {
		return 0
	}
	m1, m2 := s1/n1, s2/n2
	var v1, v2 float64
	for i, x := range xs {
		if ys[i] {
			v1 += (x - m1) * (x - m1)
		} else {
			v2 += (x - m2) * (x - m2)
		}
	}
	v1 /= n1
	v2 /= n2
	num := (m1 - m2) * (m1 - m2)
	if v1+v2 == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / (v1 + v2)
}

// Quantile returns the q-quantile (0 <= q <= 1) of values using the
// nearest-rank method on a sorted copy. The attack's neighborhood is the
// 0.9-quantile of the matched-pair ManhattanVpin distribution (paper
// §III-D, Fig. 4).
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(q*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Histogram bins values into n equal-width bins over [min, max] and returns
// the bin counts plus the bin edges. Used to reproduce the paper's Fig. 8
// feature-distribution plots.
func Histogram(values []float64, n int) (counts []int, edges []float64) {
	if len(values) == 0 || n <= 0 {
		return nil, nil
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	counts = make([]int, n)
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	if width == 0 {
		counts[0] = len(values)
		return counts, edges
	}
	for _, v := range values {
		b := int((v - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, edges
}

// CDF returns, for each of the given probe fractions q in [0,1], the value
// below which a q fraction of the data lies — i.e. points on the empirical
// CDF, as plotted in the paper's Fig. 4.
func CDF(values []float64, probes []float64) []float64 {
	out := make([]float64, len(probes))
	for i, q := range probes {
		out[i] = Quantile(values, q)
	}
	return out
}
