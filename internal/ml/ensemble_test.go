package ml

import (
	"math/rand"
	"testing"
)

// trainEnsemble builds a Bagging and its compiled Ensemble on noisy data.
func trainEnsemble(t *testing.T, kind TreeKind, trees int) (*Bagging, *Ensemble, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	ds := noisyData(2000, 0.15, rng)
	b, err := TrainBagging(ds, trees, TreeOptions{Kind: kind}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b, b.Compile(), rng
}

// TestEnsembleProbMatchesBagging pins the compile contract: the arena walk
// with precomputed leaf probabilities is bit-identical to the per-tree
// scalar path, which is what lets the attack use either interchangeably.
func TestEnsembleProbMatchesBagging(t *testing.T) {
	for _, kind := range []TreeKind{REPTree, RandomTree} {
		b, e, rng := trainEnsemble(t, kind, DefaultBaggingSize)
		for i := 0; i < 2000; i++ {
			x := []float64{rng.NormFloat64(), rng.Float64()}
			if got, want := e.Prob(x), b.Prob(x); got != want {
				t.Fatalf("%v: Ensemble.Prob = %v, Bagging.Prob = %v (must be bit-identical)", kind, got, want)
			}
		}
	}
}

func TestEnsembleProbBatchMatchesScalar(t *testing.T) {
	_, e, rng := trainEnsemble(t, REPTree, DefaultBaggingSize)
	const stride = 2
	for _, n := range []int{0, 1, 7, 256} {
		rows := make([]float64, n*stride)
		for i := range rows {
			rows[i] = rng.NormFloat64()
		}
		out := make([]float64, n)
		e.ProbBatch(rows, stride, out)
		for r := 0; r < n; r++ {
			if want := e.Prob(rows[r*stride : (r+1)*stride]); out[r] != want {
				t.Fatalf("n=%d: ProbBatch row %d = %v, Prob = %v", n, r, out[r], want)
			}
		}
	}
}

// TestEnsembleProbBatchWideStride checks that rows wider than the feature
// set the trees split on are handled (the attack always passes full
// NumFeatures-wide rows even for reduced feature sets).
func TestEnsembleProbBatchWideStride(t *testing.T) {
	_, e, rng := trainEnsemble(t, REPTree, DefaultBaggingSize)
	const stride = 5 // trees trained on 2 features; extra columns are ignored
	n := 64
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	out := make([]float64, n)
	e.ProbBatch(rows, stride, out)
	for r := 0; r < n; r++ {
		if want := e.Prob(rows[r*stride : (r+1)*stride]); out[r] != want {
			t.Fatalf("row %d = %v, want %v", r, out[r], want)
		}
	}
}

func TestEnsembleProbBatchRejectsShortMatrix(t *testing.T) {
	_, e, _ := trainEnsemble(t, REPTree, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("short matrix did not panic")
		}
	}()
	e.ProbBatch(make([]float64, 3), 2, make([]float64, 2))
}

func TestEnsembleStats(t *testing.T) {
	b, e, _ := trainEnsemble(t, REPTree, DefaultBaggingSize)
	if e.Trees() != len(b.Trees) {
		t.Errorf("Trees() = %d, want %d", e.Trees(), len(b.Trees))
	}
	if e.Nodes() != b.Nodes() {
		t.Errorf("Nodes() = %d, want %d", e.Nodes(), b.Nodes())
	}
}

// TestTreeStatsSurviveFreedPointerTree pins the flatten contract: the
// pointer tree is released after training, but Nodes/Depth still report
// the trained tree's stats, and they agree with the flat representation.
func TestTreeStatsSurviveFreedPointerTree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ds := noisyData(1500, 0.1, rng)
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tree.root != nil {
		t.Error("pointer tree not freed after flatten")
	}
	if tree.Nodes() != len(tree.flat) {
		t.Errorf("Nodes() = %d, flat has %d", tree.Nodes(), len(tree.flat))
	}
	// Recompute depth from the flat representation.
	var depth func(i int32, d int) int
	depth = func(i int32, d int) int {
		fn := tree.flat[i]
		if fn.feature < 0 {
			return d
		}
		l, r := depth(fn.left, d+1), depth(fn.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if want := depth(0, 0); tree.Depth() != want {
		t.Errorf("Depth() = %d, flat walk says %d", tree.Depth(), want)
	}
}

// TestEnsembleProbBatchAllocFree guards the scoring inner loop: a batch
// call must not allocate.
func TestEnsembleProbBatchAllocFree(t *testing.T) {
	_, e, rng := trainEnsemble(t, REPTree, DefaultBaggingSize)
	const stride, n = 2, 512
	rows := make([]float64, n*stride)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}
	out := make([]float64, n)
	if allocs := testing.AllocsPerRun(20, func() {
		e.ProbBatch(rows, stride, out)
	}); allocs != 0 {
		t.Errorf("ProbBatch allocates %.1f objects per call, want 0", allocs)
	}
}
