package ml

import (
	"math/rand"
	"testing"
)

func tinyDataset() *Dataset {
	d := &Dataset{}
	d.Add([]float64{1, 10}, true)
	d.Add([]float64{2, 20}, false)
	d.Add([]float64{3, 30}, true)
	d.Add([]float64{4, 40}, false)
	return d
}

func TestDatasetBasics(t *testing.T) {
	d := tinyDataset()
	if d.Len() != 4 {
		t.Errorf("Len = %d, want 4", d.Len())
	}
	if d.Positives() != 2 {
		t.Errorf("Positives = %d, want 2", d.Positives())
	}
	if err := d.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
}

func TestDatasetValidateErrors(t *testing.T) {
	empty := &Dataset{}
	if empty.Validate() == nil {
		t.Error("empty dataset accepted")
	}
	ragged := tinyDataset()
	ragged.X[2] = []float64{1}
	if ragged.Validate() == nil {
		t.Error("ragged dataset accepted")
	}
	mismatched := tinyDataset()
	mismatched.Y = mismatched.Y[:3]
	if mismatched.Validate() == nil {
		t.Error("row/label mismatch accepted")
	}
}

func TestSubset(t *testing.T) {
	d := tinyDataset()
	s := d.Subset([]int{2, 0})
	if s.Len() != 2 {
		t.Fatalf("subset len = %d, want 2", s.Len())
	}
	if s.X[0][0] != 3 || !s.Y[0] {
		t.Error("subset row 0 wrong")
	}
	if s.X[1][0] != 1 || !s.Y[1] {
		t.Error("subset row 1 wrong")
	}
}

func TestBootstrapSizeAndSource(t *testing.T) {
	d := tinyDataset()
	rng := rand.New(rand.NewSource(1))
	b := d.Bootstrap(rng)
	if b.Len() != d.Len() {
		t.Fatalf("bootstrap len = %d, want %d", b.Len(), d.Len())
	}
	orig := map[float64]bool{1: true, 2: true, 3: true, 4: true}
	for _, row := range b.X {
		if !orig[row[0]] {
			t.Fatalf("bootstrap row %v not from source", row)
		}
	}
}

func TestSplitFracDisjointAndComplete(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 100; i++ {
		d.Add([]float64{float64(i)}, i%2 == 0)
	}
	rng := rand.New(rand.NewSource(2))
	a, b := d.SplitFrac(0.3, rng)
	if a.Len() != 30 || b.Len() != 70 {
		t.Fatalf("split sizes %d/%d, want 30/70", a.Len(), b.Len())
	}
	seen := map[float64]int{}
	for _, row := range a.X {
		seen[row[0]]++
	}
	for _, row := range b.X {
		seen[row[0]]++
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("value %f appears %d times across split", v, c)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("split covers %d values, want 100", len(seen))
	}
}

func TestColumn(t *testing.T) {
	d := tinyDataset()
	col := d.Column(1)
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(1) = %v", col)
		}
	}
}
