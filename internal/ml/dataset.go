// Package ml is a from-scratch reimplementation of the machine-learning
// components the paper uses from Weka: decision trees (REPTree with
// reduced-error pruning, and the unpruned RandomTree), the Bagging
// meta-classifier with soft voting over per-leaf class frequencies, and the
// attribute-ranking metrics (information gain, correlation coefficient, and
// Fisher's discriminant ratio).
package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a dense binary-classification dataset. Rows of X are feature
// vectors; Y[i] is true for positive samples (matching v-pin pairs).
type Dataset struct {
	X [][]float64
	Y []bool
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Add appends one sample. The caller retains ownership of x; Add does not
// copy it, so callers generating rows in a reused buffer must clone first.
func (d *Dataset) Add(x []float64, y bool) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Positives returns the number of positive samples.
func (d *Dataset) Positives() int {
	n := 0
	for _, y := range d.Y {
		if y {
			n++
		}
	}
	return n
}

// Validate checks the dataset is rectangular and non-empty.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has width %d, want %d", i, len(row), w)
		}
	}
	return nil
}

// Subset returns a view of the dataset restricted to the given row indices.
// The underlying rows are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		X: make([][]float64, len(idx)),
		Y: make([]bool, len(idx)),
	}
	for i, j := range idx {
		s.X[i] = d.X[j]
		s.Y[i] = d.Y[j]
	}
	return s
}

// Bootstrap returns a bootstrap resample of d (sampling with replacement,
// same size), as used by Bagging.
func (d *Dataset) Bootstrap(rng *rand.Rand) *Dataset {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	return d.Subset(idx)
}

// SplitFrac partitions the dataset into two disjoint parts, the first
// holding approximately frac of the rows, shuffled by rng. REPTree uses
// this to hold out a pruning fold.
func (d *Dataset) SplitFrac(frac float64, rng *rand.Rand) (a, b *Dataset) {
	idx := rng.Perm(d.Len())
	cut := int(float64(d.Len()) * frac)
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// Column extracts feature f of every row.
func (d *Dataset) Column(f int) []float64 {
	col := make([]float64, d.Len())
	for i, row := range d.X {
		col[i] = row[f]
	}
	return col
}
