package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogisticLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := separableData(1000, rng)
	lg, err := TrainLogistic(ds, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range ds.X {
		if lg.Predict(ds.X[i], 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Errorf("logistic accuracy %.3f on separable data", acc)
	}
}

func TestLogisticGeneralises(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := noisyData(2000, 0.1, rng)
	test := noisyData(1000, 0.0, rng)
	lg, err := TrainLogistic(train, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range test.X {
		if lg.Predict(test.X[i], 0.5) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.72 {
		t.Errorf("logistic test accuracy %.3f", acc)
	}
}

func TestLogisticHandlesUnscaledFeatures(t *testing.T) {
	// Features on wildly different scales (as layout features are) must
	// not break training — this is what standardisation is for.
	rng := rand.New(rand.NewSource(3))
	ds := &Dataset{}
	for i := 0; i < 1000; i++ {
		y := rng.Intn(2) == 0
		big := rng.NormFloat64() * 1e7
		if y {
			big += 2e7
		}
		ds.Add([]float64{big, rng.Float64() * 1e-3}, y)
	}
	lg, err := TrainLogistic(ds, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range ds.X {
		if lg.Predict(ds.X[i], 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.8 {
		t.Errorf("accuracy %.3f on unscaled features", acc)
	}
}

func TestLogisticProbBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := noisyData(300, 0.2, rng)
	lg, err := TrainLogistic(ds, LogisticOptions{Epochs: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		p := lg.Prob([]float64{a, b})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogisticFeatureRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := separableData(800, rng)
	lg, err := TrainLogistic(ds, LogisticOptions{Features: []int{1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range ds.X {
		if lg.Predict(ds.X[i], 0.5) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc > 0.65 {
		t.Errorf("noise-only logistic accuracy %.3f; restriction leaked", acc)
	}
	feats, w := lg.Weights()
	if len(feats) != 1 || feats[0] != 1 || len(w) != 1 {
		t.Errorf("Weights() = %v, %v", feats, w)
	}
}

func TestLogisticRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := TrainLogistic(&Dataset{}, LogisticOptions{}, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := separableData(10, rng)
	if _, err := TrainLogistic(ds, LogisticOptions{Features: []int{7}}, rng); err == nil {
		t.Error("out-of-range feature accepted")
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); s != 0.5 {
		t.Errorf("sigmoid(0) = %f", s)
	}
	if s := sigmoid(100); s < 0.999 {
		t.Errorf("sigmoid(100) = %f", s)
	}
	if s := sigmoid(-100); s > 0.001 {
		t.Errorf("sigmoid(-100) = %f", s)
	}
	// Symmetry: sigmoid(-v) = 1 - sigmoid(v).
	for _, v := range []float64{0.5, 1, 3, 10} {
		if d := math.Abs(sigmoid(-v) - (1 - sigmoid(v))); d > 1e-12 {
			t.Errorf("sigmoid symmetry broken at %f: %g", v, d)
		}
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, true, false, false}
	if a := AUC(scores, labels); a != 1 {
		t.Errorf("perfect AUC = %f, want 1", a)
	}
	inverted := []bool{false, false, true, true}
	if a := AUC(scores, inverted); a != 0 {
		t.Errorf("inverted AUC = %f, want 0", a)
	}

	rng := rand.New(rand.NewSource(7))
	n := 20000
	s := make([]float64, n)
	y := make([]bool, n)
	for i := range s {
		s[i] = rng.Float64()
		y[i] = rng.Intn(2) == 0
	}
	if a := AUC(s, y); a < 0.48 || a > 0.52 {
		t.Errorf("random AUC = %f, want ~0.5", a)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 via half-credit.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if a := AUC(scores, labels); a != 0.5 {
		t.Errorf("tied AUC = %f, want 0.5", a)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if a := AUC(nil, nil); a != 0.5 {
		t.Errorf("empty AUC = %f", a)
	}
	if a := AUC([]float64{1, 2}, []bool{true, true}); a != 0.5 {
		t.Errorf("single-class AUC = %f", a)
	}
}

func TestROCCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, true, false, false}
	pts := ROC(scores, labels)
	if len(pts) != 4 {
		t.Fatalf("%d ROC points, want 4", len(pts))
	}
	last := pts[len(pts)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("ROC must end at (1,1), got (%f,%f)", last.FPR, last.TPR)
	}
	// Perfect classifier reaches TPR=1 before any FP.
	if pts[1].TPR != 1 || pts[1].FPR != 0 {
		t.Errorf("perfect ROC wrong: %+v", pts[1])
	}
	prevF, prevT := -1.0, -1.0
	for _, p := range pts {
		if p.FPR < prevF || p.TPR < prevT {
			t.Fatal("ROC not monotone")
		}
		prevF, prevT = p.FPR, p.TPR
	}
}

func TestROCDegenerate(t *testing.T) {
	if ROC(nil, nil) != nil {
		t.Error("empty ROC should be nil")
	}
	if ROC([]float64{1}, []bool{true}) != nil {
		t.Error("single-class ROC should be nil")
	}
}

func TestLogisticVsTreeOnAUC(t *testing.T) {
	// On linearly separable data both should have near-perfect AUC.
	rng := rand.New(rand.NewSource(8))
	train := separableData(800, rng)
	test := separableData(400, rng)
	lg, err := TrainLogistic(train, LogisticOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainTree(train, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sLg := make([]float64, test.Len())
	sTr := make([]float64, test.Len())
	for i := range test.X {
		sLg[i] = lg.Prob(test.X[i])
		sTr[i] = tree.Prob(test.X[i])
	}
	if a := AUC(sLg, test.Y); a < 0.98 {
		t.Errorf("logistic AUC %.3f", a)
	}
	if a := AUC(sTr, test.Y); a < 0.95 {
		t.Errorf("tree AUC %.3f", a)
	}
}
