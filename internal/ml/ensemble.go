package ml

import "fmt"

// Ensemble is the compiled, inference-only form of a Bagging: every base
// tree flattened into one contiguous node arena shared by the whole
// ensemble, with the Laplace-smoothed leaf probability (P+1)/(P+N+2)
// precomputed as a float64 at compile time. Relative to walking the
// per-tree flat slices through Bagging.Prob, this removes the per-tree
// slice indirection, the per-visit division, and (via ProbBatch) the
// per-pair interface dispatch of the attack's scoring hot path.
//
// An Ensemble is immutable; Prob and ProbBatch are safe for concurrent use
// from any number of goroutines. Prob is bit-identical to the Bagging it
// was compiled from: the precomputed leaf probability is the same division
// over the same operands, and per-vector tree probabilities are summed in
// tree order before one final division by the tree count.
type Ensemble struct {
	nodes []enode
	roots []int32
}

// enode is one packed arena node, 16 bytes. val is the split threshold of
// internal nodes and the precomputed Laplace-smoothed probability of
// leaves; feature < 0 marks a leaf. Trees flatten in DFS preorder, so an
// internal node's left child is always the next arena slot and only the
// right child needs an index. Halving the node size keeps even the larger
// attack ensembles L1-resident during a batch walk.
type enode struct {
	val     float64
	feature int32
	right   int32
}

// Compile packs the trained ensemble into an Ensemble. The Bagging remains
// usable as the scalar correctness oracle; the Ensemble holds its own
// arena and keeps no reference to the trees.
func (b *Bagging) Compile() *Ensemble {
	total := 0
	for _, t := range b.Trees {
		total += len(t.flat)
	}
	e := &Ensemble{
		nodes: make([]enode, 0, total),
		roots: make([]int32, len(b.Trees)),
	}
	for ti, t := range b.Trees {
		base := int32(len(e.nodes))
		e.roots[ti] = base
		for fi, fn := range t.flat {
			en := enode{feature: fn.feature}
			if fn.feature < 0 {
				en.val = float64(fn.pos+1) / float64(fn.pos+fn.neg+2)
			} else {
				if fn.left != int32(fi)+1 {
					panic("ml: flat tree not in DFS preorder")
				}
				en.val = fn.threshold
				en.right = base + fn.right
			}
			e.nodes = append(e.nodes, en)
		}
	}
	return e
}

// Trees returns the number of base trees in the compiled ensemble.
func (e *Ensemble) Trees() int { return len(e.roots) }

// Nodes returns the total node count of the arena.
func (e *Ensemble) Nodes() int { return len(e.nodes) }

// Prob returns the soft-voting ensemble probability p(x) in [0, 1],
// bit-identical to the source Bagging's Prob.
func (e *Ensemble) Prob(x []float64) float64 {
	var sum float64
	for _, root := range e.roots {
		i := root
		for {
			n := &e.nodes[i]
			if n.feature < 0 {
				sum += n.val
				break
			}
			if x[n.feature] < n.val {
				i++
			} else {
				i = n.right
			}
		}
	}
	return sum / float64(len(e.roots))
}

// Predict applies threshold t to the ensemble probability.
func (e *Ensemble) Predict(x []float64, t float64) bool {
	return e.Prob(x) >= t
}

// ProbBatch scores len(out) feature vectors in one call. rows is a
// row-major matrix: vector r occupies rows[r*stride : r*stride+stride].
// out[r] receives the ensemble probability of vector r, bit-identical to
// Prob(rows[r*stride:(r+1)*stride]).
//
// The batch iterates row-outer/tree-inner: each row's tree walks are
// independent dependency chains the CPU overlaps, the per-row sum lives in
// a register, and the arena (16-byte nodes) stays cache-hot for the whole
// batch instead of being re-streamed per tree or evicted by interleaved
// caller work. ProbBatch performs no allocations.
func (e *Ensemble) ProbBatch(rows []float64, stride int, out []float64) {
	n := len(out)
	if stride <= 0 || len(rows) < n*stride {
		panic(fmt.Sprintf("ml: ProbBatch matrix %d floats cannot hold %d rows of stride %d",
			len(rows), n, stride))
	}
	nodes := e.nodes
	div := float64(len(e.roots))
	off := 0
	for r := 0; r < n; r++ {
		var sum float64
		for _, root := range e.roots {
			i := root
			for {
				nd := &nodes[i]
				if nd.feature < 0 {
					sum += nd.val
					break
				}
				if rows[off+int(nd.feature)] < nd.val {
					i++
				} else {
					i = nd.right
				}
			}
		}
		out[r] = sum / div
		off += stride
	}
}
