package ml

import "math/rand"

// ProbModel is any classifier exposing a positive-class probability.
type ProbModel interface {
	Prob(x []float64) float64
}

// PermutationImportance measures each feature's contribution to a trained
// model: the drop in AUC on ds when that feature's column is randomly
// permuted (breaking its relationship with the label while preserving its
// marginal distribution). Unlike the filter metrics of Fig. 7 (information
// gain, correlation, Fisher ratio), this is a model-based importance: it
// reflects what the trained ensemble actually uses, including feature
// interactions. Near-zero (or slightly negative, from sampling noise)
// values mean the model does not rely on the feature.
func PermutationImportance(model ProbModel, ds *Dataset, rng *rand.Rand) []float64 {
	n := ds.Len()
	if n == 0 {
		return nil
	}
	m := len(ds.X[0])

	score := func(col int, perm []int) float64 {
		scores := make([]float64, n)
		row := make([]float64, m)
		for i := 0; i < n; i++ {
			copy(row, ds.X[i])
			if perm != nil {
				row[col] = ds.X[perm[i]][col]
			}
			scores[i] = model.Prob(row)
		}
		return AUC(scores, ds.Y)
	}

	base := score(-1, nil)
	out := make([]float64, m)
	for f := 0; f < m; f++ {
		perm := rng.Perm(n)
		out[f] = base - score(f, perm)
	}
	return out
}
