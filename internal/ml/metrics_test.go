package ml

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInfoGainPerfectVsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	perfect := make([]float64, n)
	noise := make([]float64, n)
	ys := make([]bool, n)
	for i := 0; i < n; i++ {
		ys[i] = rng.Intn(2) == 0
		if ys[i] {
			perfect[i] = 1 + rng.Float64()
		} else {
			perfect[i] = rng.Float64()
		}
		noise[i] = rng.Float64()
	}
	gp := InfoGain(perfect, ys, 10)
	gn := InfoGain(noise, ys, 10)
	if gp < 0.5 {
		t.Errorf("perfect feature gain %.3f too small (max ~0.693)", gp)
	}
	if gn > 0.05 {
		t.Errorf("noise feature gain %.3f too large", gn)
	}
	if gp <= gn {
		t.Error("perfect feature must outrank noise")
	}
}

func TestInfoGainDegenerate(t *testing.T) {
	if g := InfoGain(nil, nil, 10); g != 0 {
		t.Errorf("empty gain = %f", g)
	}
	// Single-class labels carry no entropy to reduce.
	xs := []float64{1, 2, 3}
	ys := []bool{true, true, true}
	if g := InfoGain(xs, ys, 10); g != 0 {
		t.Errorf("single-class gain = %f", g)
	}
	// Constant feature gains nothing.
	xs2 := []float64{5, 5, 5, 5}
	ys2 := []bool{true, false, true, false}
	if g := InfoGain(xs2, ys2, 10); g > 1e-9 {
		t.Errorf("constant feature gain = %f", g)
	}
}

func TestInfoGainNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		xs := make([]float64, n)
		ys := make([]bool, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.Intn(2) == 0
		}
		return InfoGain(xs, ys, 10) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrCoefLinear(t *testing.T) {
	// Feature exactly equal to the label (as 0/1) has correlation 1.
	xs := []float64{0, 1, 0, 1, 0, 1}
	ys := []bool{false, true, false, true, false, true}
	if c := CorrCoef(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("correlation = %f, want 1", c)
	}
	// Inverted feature has correlation -1.
	inv := []float64{1, 0, 1, 0, 1, 0}
	if c := CorrCoef(inv, ys); math.Abs(c+1) > 1e-12 {
		t.Errorf("correlation = %f, want -1", c)
	}
}

func TestCorrCoefIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 5000
	xs := make([]float64, n)
	ys := make([]bool, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.Intn(2) == 0
	}
	if c := math.Abs(CorrCoef(xs, ys)); c > 0.06 {
		t.Errorf("independent correlation = %f", c)
	}
}

func TestCorrCoefDegenerate(t *testing.T) {
	if c := CorrCoef(nil, nil); c != 0 {
		t.Errorf("empty correlation = %f", c)
	}
	if c := CorrCoef([]float64{3, 3, 3}, []bool{true, false, true}); c != 0 {
		t.Errorf("constant-feature correlation = %f", c)
	}
}

func TestCorrCoefBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]bool, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			ys[i] = rng.Intn(2) == 0
		}
		c := CorrCoef(xs, ys)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFisherRatioSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	far := make([]float64, n)
	near := make([]float64, n)
	ys := make([]bool, n)
	for i := 0; i < n; i++ {
		ys[i] = rng.Intn(2) == 0
		mu := 0.0
		if ys[i] {
			mu = 10
		}
		far[i] = mu + rng.NormFloat64()
		near[i] = mu/20 + rng.NormFloat64()
	}
	ff := FisherRatio(far, ys)
	fn := FisherRatio(near, ys)
	if ff < 10 {
		t.Errorf("well-separated Fisher ratio %.2f too small", ff)
	}
	if fn > 1 {
		t.Errorf("overlapping Fisher ratio %.2f too large", fn)
	}
	if ff <= fn {
		t.Error("separated feature must outrank overlapping feature")
	}
}

func TestFisherRatioDegenerate(t *testing.T) {
	ys := []bool{true, true, false, false}
	if f := FisherRatio([]float64{1, 1, 1, 1}, ys); f != 0 {
		t.Errorf("constant feature Fisher = %f, want 0", f)
	}
	if f := FisherRatio([]float64{2, 2, 1, 1}, ys); !math.IsInf(f, 1) {
		t.Errorf("zero-variance separated Fisher = %f, want +Inf", f)
	}
	if f := FisherRatio([]float64{1, 2}, []bool{true, true}); f != 0 {
		t.Errorf("single-class Fisher = %f, want 0", f)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.4, 2}, {0.6, 3}, {0.8, 4}, {0.9, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%.1f) = %f, want %f", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if !sort.Float64sAreSorted(vals) && (vals[0] != 3 || vals[1] != 1 || vals[2] != 2) {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(vals, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(counts) != 5 || len(edges) != 6 {
		t.Fatalf("histogram shape %d/%d", len(counts), len(edges))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total %d, want 10", total)
	}
	if edges[0] != 0 || edges[5] != 9 {
		t.Errorf("edges [%f, %f], want [0, 9]", edges[0], edges[5])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _ := Histogram([]float64{7, 7, 7}, 4)
	if counts[0] != 3 {
		t.Errorf("constant histogram counts = %v", counts)
	}
	if c, e := Histogram(nil, 3); c != nil || e != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestCDFMatchesQuantiles(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	probes := []float64{0.1, 0.5, 0.9}
	out := CDF(vals, probes)
	for i, q := range probes {
		if out[i] != Quantile(vals, q) {
			t.Errorf("CDF[%d] = %f, want %f", i, out[i], Quantile(vals, q))
		}
	}
}
