package ml

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary codec for trained Logistic models, completing the learner-family
// contract: every family an artifact can carry has a versioned, CRC-checked
// payload codec with bit-exact round-trips.
//
//	magic    "MLLR"                      4 bytes
//	version  uint16 little-endian        currently 1
//	m        uint32                      feature-subset size
//	features m × uint32                  feature column of each input
//	w        m × float64                 weights over standardised features
//	mean     m × float64                 feature standardisation
//	sd       m × float64
//	b        float64
//	crc      uint32                      IEEE CRC-32 of everything above
const (
	logisticMagic = "MLLR"
	// LogisticCodecVersion is the current on-disk logistic format version.
	LogisticCodecVersion = 1
)

const logisticHeaderLen = 4 + 2 + 4 // magic, version, m

// MarshalBinary encodes the model in the versioned binary format above.
func (lg *Logistic) MarshalBinary() ([]byte, error) {
	if len(lg.features) == 0 {
		return nil, fmt.Errorf("ml: cannot encode an empty logistic model")
	}
	m := len(lg.features)
	buf := make([]byte, 0, logisticHeaderLen+4*m+8*(3*m+1)+4)
	buf = append(buf, logisticMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, LogisticCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	for _, f := range lg.features {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f))
	}
	for _, vs := range [][]float64{lg.w, lg.mean, lg.sd} {
		for _, v := range vs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(lg.b))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalLogistic decodes a model encoded by MarshalBinary, validating
// the checksum and structural invariants. The returned Logistic is
// bit-identical to the encoded one.
func UnmarshalLogistic(data []byte) (*Logistic, error) {
	if len(data) < logisticHeaderLen+4 {
		return nil, fmt.Errorf("ml: logistic blob truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != logisticMagic {
		return nil, fmt.Errorf("ml: not a logistic blob (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != LogisticCodecVersion {
		return nil, fmt.Errorf("ml: unsupported logistic codec version %d (have %d)",
			v, LogisticCodecVersion)
	}
	m := int(binary.LittleEndian.Uint32(data[6:]))
	want := logisticHeaderLen + 4*m + 8*(3*m+1) + 4
	if m <= 0 || m > 1<<20 || len(data) != want {
		return nil, fmt.Errorf("ml: logistic blob is %d bytes, want %d for %d features",
			len(data), want, m)
	}
	if got, stored := crc32.ChecksumIEEE(data[:len(data)-4]),
		binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("ml: logistic blob checksum mismatch (corrupted payload)")
	}
	lg := &Logistic{
		w:        make([]float64, m),
		mean:     make([]float64, m),
		sd:       make([]float64, m),
		features: make([]int, m),
	}
	off := logisticHeaderLen
	for i := range lg.features {
		lg.features[i] = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
	}
	for _, dst := range [][]float64{lg.w, lg.mean, lg.sd} {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	lg.b = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	for i, f := range lg.features {
		if f < 0 {
			return nil, fmt.Errorf("ml: logistic feature column %d is negative (%d)", i, f)
		}
	}
	for i := range lg.sd {
		if lg.sd[i] == 0 || math.IsNaN(lg.sd[i]) || math.IsInf(lg.sd[i], 0) {
			return nil, fmt.Errorf("ml: logistic sd[%d] is not a valid scale (%v)", i, lg.sd[i])
		}
	}
	return lg, nil
}
