package ml

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary codec for compiled Ensemble arenas. The format is versioned and
// self-checking so artifacts written by one process can be loaded by a
// scoring process later (or on another machine) with bit-exact results:
//
//	magic   "MLEN"                       4 bytes
//	version uint16 little-endian         currently 1
//	trees   uint32                       number of roots
//	nodes   uint32                       total arena nodes
//	roots   trees × uint32               arena index of each tree's root
//	arena   nodes × (float64, int32, int32)
//	crc     uint32                       IEEE CRC-32 of everything above
//
// Node values are encoded as raw IEEE-754 bits, so a decoded ensemble's
// Prob/ProbBatch results are bit-identical to the encoded one's. Decoding
// rejects truncation, trailing garbage, unknown versions, checksum
// mismatches, and structurally invalid arenas (roots out of order, child
// indexes outside the tree, probabilities outside [0, 1]).
const (
	ensembleMagic = "MLEN"
	// EnsembleCodecVersion is the current on-disk arena format version.
	EnsembleCodecVersion = 1
)

const ensembleHeaderLen = 4 + 2 + 4 + 4 // magic, version, trees, nodes

// MarshalBinary encodes the arena in the versioned binary format above.
func (e *Ensemble) MarshalBinary() ([]byte, error) {
	if len(e.roots) == 0 {
		return nil, fmt.Errorf("ml: cannot encode an ensemble with no trees")
	}
	buf := make([]byte, 0, ensembleHeaderLen+4*len(e.roots)+16*len(e.nodes)+4)
	buf = append(buf, ensembleMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, EnsembleCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.roots)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.nodes)))
	for _, r := range e.roots {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	for i := range e.nodes {
		n := &e.nodes[i]
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(n.val))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.feature))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n.right))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// UnmarshalEnsemble decodes an arena encoded by MarshalBinary, validating
// the checksum and the structural invariants Compile guarantees. The
// returned Ensemble is bit-identical to the encoded one.
func UnmarshalEnsemble(data []byte) (*Ensemble, error) {
	if len(data) < ensembleHeaderLen+4 {
		return nil, fmt.Errorf("ml: ensemble blob truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != ensembleMagic {
		return nil, fmt.Errorf("ml: not an ensemble blob (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != EnsembleCodecVersion {
		return nil, fmt.Errorf("ml: unsupported ensemble codec version %d (have %d)",
			v, EnsembleCodecVersion)
	}
	trees := int(binary.LittleEndian.Uint32(data[6:]))
	nodes := int(binary.LittleEndian.Uint32(data[10:]))
	want := ensembleHeaderLen + 4*trees + 16*nodes + 4
	if trees <= 0 || nodes <= 0 || len(data) != want {
		return nil, fmt.Errorf("ml: ensemble blob is %d bytes, want %d for %d trees / %d nodes",
			len(data), want, trees, nodes)
	}
	if got, stored := crc32.ChecksumIEEE(data[:len(data)-4]),
		binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, fmt.Errorf("ml: ensemble blob checksum mismatch (corrupted payload)")
	}
	e := &Ensemble{
		roots: make([]int32, trees),
		nodes: make([]enode, nodes),
	}
	off := ensembleHeaderLen
	for i := range e.roots {
		e.roots[i] = int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	for i := range e.nodes {
		e.nodes[i] = enode{
			val:     math.Float64frombits(binary.LittleEndian.Uint64(data[off:])),
			feature: int32(binary.LittleEndian.Uint32(data[off+8:])),
			right:   int32(binary.LittleEndian.Uint32(data[off+12:])),
		}
		off += 16
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// validate checks the structural invariants Compile establishes: roots
// start at 0 and strictly increase, internal nodes point right to a later
// in-range slot (the left child is implicitly the next slot), and leaf
// probabilities are genuine probabilities. A decoded arena passing these
// checks cannot make Prob/ProbBatch read out of bounds or loop forever
// backwards, and the CRC already caught random corruption; this catches
// deliberate or wildly unlucky structural damage.
func (e *Ensemble) validate() error {
	n := int32(len(e.nodes))
	for i, r := range e.roots {
		if r < 0 || r >= n {
			return fmt.Errorf("ml: ensemble root %d out of range", i)
		}
		if i == 0 && r != 0 {
			return fmt.Errorf("ml: ensemble arena does not start at root 0")
		}
		if i > 0 && r <= e.roots[i-1] {
			return fmt.Errorf("ml: ensemble roots not strictly increasing at tree %d", i)
		}
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		if nd.feature < 0 {
			if nd.val < 0 || nd.val > 1 || math.IsNaN(nd.val) {
				return fmt.Errorf("ml: ensemble leaf %d has probability %v outside [0, 1]", i, nd.val)
			}
			continue
		}
		if nd.right <= int32(i)+1 || nd.right >= n {
			return fmt.Errorf("ml: ensemble node %d right child %d violates DFS preorder", i, nd.right)
		}
	}
	return nil
}
