package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TreeKind selects the base-classifier algorithm.
type TreeKind int

const (
	// REPTree is Weka's reduced-error-pruning tree: grown on part of the
	// data, pruned bottom-up against a held-out fold, then backfitted with
	// the full training data. The paper switches Bagging's base classifier
	// to REPTree for a ~10x runtime reduction at equal attack quality.
	REPTree TreeKind = iota
	// RandomTree is Weka's unpruned randomised tree (the RandomForest base
	// classifier): each node considers only a random subset of features.
	RandomTree
)

// String implements fmt.Stringer.
func (k TreeKind) String() string {
	if k == REPTree {
		return "REPTree"
	}
	return "RandomTree"
}

// TreeOptions configures tree induction.
type TreeOptions struct {
	Kind TreeKind
	// Features restricts splits to these feature indices. Nil means all
	// columns. This is how the ML-9/Imp-7/Imp-11 configurations select
	// their feature sets without reshaping the data.
	Features []int
	// MinLeaf is the minimum number of samples in a leaf (default 2).
	MinLeaf int
	// MaxDepth caps tree depth (default 30).
	MaxDepth int
	// PruneFrac is the fraction of training data held out for
	// reduced-error pruning when Kind is REPTree (default 1/3, Weka's
	// "one of three folds").
	PruneFrac float64
	// RandomK is the number of random features RandomTree considers per
	// node; 0 selects Weka's default of log2(m)+1.
	RandomK int
}

func (o TreeOptions) withDefaults(numFeatures int) TreeOptions {
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 30
	}
	if o.PruneFrac <= 0 || o.PruneFrac >= 1 {
		o.PruneFrac = 1.0 / 3.0
	}
	if len(o.Features) == 0 {
		o.Features = make([]int, numFeatures)
		for i := range o.Features {
			o.Features[i] = i
		}
	}
	if o.RandomK <= 0 {
		o.RandomK = int(math.Log2(float64(len(o.Features)))) + 1
	}
	return o
}

// node is one decision node or leaf. Leaves keep the positive/negative
// sample counts that the soft-voting probability (paper eq. 1) is computed
// from.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node
	pos, neg  int
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a trained decision tree.
type Tree struct {
	// root only exists during training; flatten captures the size stats
	// and releases the pointer nodes, so a trained Tree holds nothing but
	// the flat slice.
	root *node
	opts TreeOptions
	// flat is the inference-time representation: nodes packed into one
	// slice in DFS order for cache locality. Pair scoring evaluates
	// millions of vectors per run, and the flat walk is measurably faster
	// than chasing node pointers. Ensemble.Compile packs these per-tree
	// slices further into one arena for the whole ensemble.
	flat []flatNode
	// nodes and depth are captured at flatten time, when the pointer tree
	// is freed.
	nodes, depth int
}

// flatNode is one packed tree node; feature < 0 marks a leaf.
type flatNode struct {
	threshold   float64
	feature     int32
	left, right int32
	pos, neg    int32
}

// flatten packs the pointer tree into the flat slice, captures the
// node-count and depth stats, and frees the pointer nodes — after training
// the flat representation is the tree.
func (t *Tree) flatten() {
	t.flat = t.flat[:0]
	t.depth = 0
	var walk func(n *node, depth int) int32
	walk = func(n *node, depth int) int32 {
		if depth > t.depth {
			t.depth = depth
		}
		idx := int32(len(t.flat))
		t.flat = append(t.flat, flatNode{feature: -1, pos: int32(n.pos), neg: int32(n.neg)})
		if !n.isLeaf() {
			l := walk(n.left, depth+1)
			r := walk(n.right, depth+1)
			t.flat[idx].feature = int32(n.feature)
			t.flat[idx].threshold = n.threshold
			t.flat[idx].left = l
			t.flat[idx].right = r
		}
		return idx
	}
	walk(t.root, 0)
	t.nodes = len(t.flat)
	t.root = nil
}

// TrainTree induces a tree from ds according to opts. The rng drives the
// grow/prune split (REPTree) and per-node feature sampling (RandomTree).
func TrainTree(ds *Dataset, opts TreeOptions, rng *rand.Rand) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(len(ds.X[0]))
	for _, f := range opts.Features {
		if f < 0 || f >= len(ds.X[0]) {
			return nil, fmt.Errorf("ml: feature index %d out of range", f)
		}
	}

	t := &Tree{opts: opts}
	switch opts.Kind {
	case REPTree:
		pruneSet, growSet := ds.SplitFrac(opts.PruneFrac, rng)
		if growSet.Len() == 0 || pruneSet.Len() == 0 {
			growSet, pruneSet = ds, ds
		}
		t.root = newGrower(growSet, opts).grow(rng)
		t.prune(t.root, pruneSet, allIdx(pruneSet.Len()), make([]int, pruneSet.Len()))
		t.backfit(ds)
	case RandomTree:
		t.root = newGrower(ds, opts).grow(rng)
	default:
		return nil, fmt.Errorf("ml: unknown tree kind %d", opts.Kind)
	}
	t.flatten()
	return t, nil
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// grower holds the presorted index structure used during tree induction.
// Rather than re-sorting at every node (O(m·n·log n) per level), each
// feature's row indices are sorted once; every node owns a contiguous
// segment [lo, hi) of all per-feature arrays and splits stably partition
// each array in place — the classic C4.5 presort scheme, O(m·n) per level.
type grower struct {
	ds      *Dataset
	opts    TreeOptions
	sorted  [][]int32 // one sorted index array per considered feature
	scratch []int32
}

func newGrower(ds *Dataset, opts TreeOptions) *grower {
	g := &grower{
		ds:      ds,
		opts:    opts,
		sorted:  make([][]int32, len(opts.Features)),
		scratch: make([]int32, ds.Len()),
	}
	for fp, f := range opts.Features {
		idx := make([]int32, ds.Len())
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(a, b int) bool {
			va, vb := ds.X[idx[a]][f], ds.X[idx[b]][f]
			if va != vb {
				return va < vb
			}
			return idx[a] < idx[b]
		})
		g.sorted[fp] = idx
	}
	return g
}

func (g *grower) grow(rng *rand.Rand) *node {
	return g.growSeg(0, g.ds.Len(), 0, rng)
}

// growSeg builds the subtree over segment [lo, hi) of the sorted arrays.
func (g *grower) growSeg(lo, hi, depth int, rng *rand.Rand) *node {
	total := hi - lo
	pos := 0
	for _, i := range g.sorted[0][lo:hi] {
		if g.ds.Y[i] {
			pos++
		}
	}
	n := &node{pos: pos, neg: total - pos}
	if pos == 0 || pos == total || total < 2*g.opts.MinLeaf || depth >= g.opts.MaxDepth {
		return n
	}

	// Feature positions to consider at this node.
	featPos := make([]int, len(g.opts.Features))
	for i := range featPos {
		featPos[i] = i
	}
	if g.opts.Kind == RandomTree && g.opts.RandomK < len(featPos) {
		rng.Shuffle(len(featPos), func(i, j int) { featPos[i], featPos[j] = featPos[j], featPos[i] })
		featPos = featPos[:g.opts.RandomK]
	}

	bestGain := 0.0
	bestFP, bestThr := -1, 0.0
	parentH := entropy2(pos, total-pos)
	for _, fp := range featPos {
		f := g.opts.Features[fp]
		order := g.sorted[fp][lo:hi]
		lp, ln := 0, 0
		for k := 0; k < total-1; k++ {
			if g.ds.Y[order[k]] {
				lp++
			} else {
				ln++
			}
			v, next := g.ds.X[order[k]][f], g.ds.X[order[k+1]][f]
			if v == next {
				continue
			}
			left := lp + ln
			right := total - left
			if left < g.opts.MinLeaf || right < g.opts.MinLeaf {
				continue
			}
			h := (float64(left)*entropy2(lp, ln) +
				float64(right)*entropy2(pos-lp, (total-pos)-ln)) / float64(total)
			gain := parentH - h
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFP = fp
				bestThr = (v + next) / 2
			}
		}
	}
	if bestFP < 0 {
		return n
	}
	bestFeat := g.opts.Features[bestFP]

	// Stable-partition every feature array's segment by the split
	// predicate, preserving sort order on both sides.
	goesLeft := func(row int32) bool { return g.ds.X[row][bestFeat] < bestThr }
	nLeft := 0
	for _, i := range g.sorted[bestFP][lo:hi] {
		if goesLeft(i) {
			nLeft++
		}
	}
	if nLeft == 0 || nLeft == total {
		return n
	}
	for fp := range g.sorted {
		seg := g.sorted[fp][lo:hi]
		l, r := 0, 0
		right := g.scratch[:total-nLeft]
		for _, i := range seg {
			if goesLeft(i) {
				seg[l] = i
				l++
			} else {
				right[r] = i
				r++
			}
		}
		copy(seg[nLeft:], right)
	}

	n.feature = bestFeat
	n.threshold = bestThr
	n.left = g.growSeg(lo, lo+nLeft, depth+1, rng)
	n.right = g.growSeg(lo+nLeft, hi, depth+1, rng)
	return n
}

// prune performs reduced-error pruning: a subtree is collapsed to a leaf
// unless it beats the leaf on the pruning fold by more than a pessimistic
// margin of about half a standard deviation of the fold size — chance
// splits on noise cannot clear the margin, while genuinely informative
// splits exceed it easily. It returns the subtree's error count on the
// fold.
//
// Each node stably partitions its idx segment in place — left rows
// compact to the front, right rows stage through scratch — mirroring the
// grower's presort scheme, so the whole pruning pass reuses the two
// buffers the caller allocated instead of two fresh slices per node.
// scratch must be at least len(idx) long and is only used between the
// partition and the recursive calls, so one buffer serves every level.
func (t *Tree) prune(n *node, prune *Dataset, idx, scratch []int) int {
	pos := 0
	for _, i := range idx {
		if prune.Y[i] {
			pos++
		}
	}
	// Errors if this node were a leaf predicting its training majority.
	leafErr := pos
	if n.pos > n.neg {
		leafErr = len(idx) - pos
	}
	if n.isLeaf() {
		return leafErr
	}

	nLeft, nRight := 0, 0
	for _, i := range idx {
		if prune.X[i][n.feature] < n.threshold {
			idx[nLeft] = i
			nLeft++
		} else {
			scratch[nRight] = i
			nRight++
		}
	}
	copy(idx[nLeft:], scratch[:nRight])
	subErr := t.prune(n.left, prune, idx[:nLeft], scratch) +
		t.prune(n.right, prune, idx[nLeft:], scratch)
	margin := 0.5 * math.Sqrt(float64(len(idx))+1)
	if float64(leafErr) <= float64(subErr)+margin {
		n.left, n.right = nil, nil
		return leafErr
	}
	return subErr
}

// backfit replaces all leaf class counts with counts from the full training
// set, so inference probabilities reflect all available data rather than
// only the grow fold.
func (t *Tree) backfit(ds *Dataset) {
	clearCounts(t.root)
	for i := range ds.X {
		n := t.root
		for !n.isLeaf() {
			if ds.X[i][n.feature] < n.threshold {
				n = n.left
			} else {
				n = n.right
			}
		}
		if ds.Y[i] {
			n.pos++
		} else {
			n.neg++
		}
	}
}

func clearCounts(n *node) {
	if n.isLeaf() {
		n.pos, n.neg = 0, 0
		return
	}
	clearCounts(n.left)
	clearCounts(n.right)
}

// Counts returns the positive/negative training counts of the leaf x falls
// into: the P_i and N_i of the paper's eq. (1).
func (t *Tree) Counts(x []float64) (pos, neg int) {
	i := int32(0)
	for {
		n := &t.flat[i]
		if n.feature < 0 {
			return int(n.pos), int(n.neg)
		}
		if x[n.feature] < n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Prob returns the Laplace-smoothed leaf probability (P+1)/(P+N+2) for the
// leaf x falls into. The paper's eq. (1) uses the raw ratio P/(P+N); the
// smoothing grades otherwise-pure leaves by their support so that ensemble
// probabilities are fine-grained enough for threshold-controlled LoC sizes
// on designs smaller than the paper's (an empty leaf still yields 0.5).
func (t *Tree) Prob(x []float64) float64 {
	p, n := t.Counts(x)
	return float64(p+1) / float64(p+n+2)
}

// Predict returns the default-threshold (0.5) binary prediction.
func (t *Tree) Predict(x []float64) bool { return t.Prob(x) >= 0.5 }

// Nodes returns the total number of nodes in the tree, a size measure used
// to verify that pruning shrinks trees. The count is captured when the
// pointer tree is flattened and freed.
func (t *Tree) Nodes() int { return t.nodes }

// Depth returns the maximum depth of the tree (a single leaf has depth 0),
// captured at flatten time like Nodes.
func (t *Tree) Depth() int { return t.depth }

// entropy2 is the binary entropy of a (pos, neg) split in nats.
func entropy2(pos, neg int) float64 {
	total := pos + neg
	if total == 0 || pos == 0 || neg == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	q := 1 - p
	return -p*math.Log(p) - q*math.Log(q)
}
