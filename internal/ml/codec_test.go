package ml

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// codecFixture trains a small deterministic ensemble: fixed source data,
// fixed training stream.
func codecFixture(t *testing.T) *Ensemble {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	ds := noisyData(500, 0.2, rng)
	b, err := TrainBagging(ds, 8, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return b.Compile()
}

func TestEnsembleCodecRoundTrip(t *testing.T) {
	e := codecFixture(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d, err := UnmarshalEnsemble(blob)
	if err != nil {
		t.Fatal(err)
	}
	if d.Trees() != e.Trees() {
		t.Fatalf("decoded %d trees, want %d", d.Trees(), e.Trees())
	}
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 1000; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		if got, want := d.Prob(x), e.Prob(x); got != want {
			t.Fatalf("decoded Prob = %v, original = %v (must be bit-identical)", got, want)
		}
	}
	// The round trip is exact: re-encoding the decoded arena reproduces the
	// original blob byte for byte.
	blob2, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoded blob differs from the original")
	}
}

// recrc recomputes the trailing checksum after a deliberate payload edit,
// so the test reaches the structural validation behind the CRC gate.
func recrc(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
	return b
}

func TestEnsembleCodecRejectsCorruption(t *testing.T) {
	e := codecFixture(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		errPart string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:8] }, "truncated"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-5] }, "bytes, want"},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, "bytes, want"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 999)
			return b
		}, "unsupported ensemble codec version"},
		{"payload bit flip", func(b []byte) []byte { b[20] ^= 0x40; return b }, "checksum mismatch"},
		{"checksum flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "checksum mismatch"},
		{"zero trees", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[6:], 0)
			return recrc(b)
		}, "bytes, want"},
		{"root out of order", func(b []byte) []byte {
			// First root must be 0; point it past the arena start.
			binary.LittleEndian.PutUint32(b[ensembleHeaderLen:], 1)
			return recrc(b)
		}, "root 0"},
		{"leaf probability out of range", func(b []byte) []byte {
			// The first arena node of a REPTree fixture may be internal, so
			// hunt for a leaf (feature == -1) and break its value.
			off := ensembleHeaderLen + 4*e.Trees()
			for {
				if int32(binary.LittleEndian.Uint32(b[off+8:])) < 0 {
					binary.LittleEndian.PutUint64(b[off:], 0xFFF8000000000000) // NaN
					return recrc(b)
				}
				off += 16
			}
		}, "outside [0, 1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), blob...))
			_, err := UnmarshalEnsemble(data)
			if err == nil {
				t.Fatal("corrupted blob decoded without error")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestEnsembleCodecGolden pins the on-disk format: the deterministic
// fixture must encode to the committed golden blob byte for byte, so a
// codec change that silently alters the format (without bumping
// EnsembleCodecVersion) fails here. Regenerate with `go test -run Golden
// -update ./internal/ml/`.
func TestEnsembleCodecGolden(t *testing.T) {
	e := codecFixture(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "ensemble_v1.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("encoded blob (%d bytes) differs from golden (%d bytes); if the format change is intentional, bump EnsembleCodecVersion and run with -update", len(blob), len(want))
	}
	d, err := UnmarshalEnsemble(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		if got, want := d.Prob(x), e.Prob(x); got != want {
			t.Fatalf("golden-decoded Prob = %v, fixture = %v", got, want)
		}
	}
}
