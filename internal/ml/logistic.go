package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Logistic is an L2-regularised logistic-regression classifier trained by
// mini-batch gradient descent on standardised features. It extends the
// repository beyond the paper's tree ensembles: a linear baseline between
// the prior work's linear regression [5] and the Bagging models, used by
// the classifier-choice ablation.
type Logistic struct {
	w        []float64 // weights over standardised features
	b        float64
	mean, sd []float64 // feature standardisation
	features []int
}

// LogisticOptions configures training.
type LogisticOptions struct {
	// Features restricts the model to these columns (nil = all).
	Features []int
	// Epochs over the training set (default 50).
	Epochs int
	// LearningRate for gradient descent (default 0.1).
	LearningRate float64
	// L2 regularisation strength (default 1e-4).
	L2 float64
	// BatchSize for mini-batches (default 64).
	BatchSize int
}

func (o LogisticOptions) withDefaults(numFeatures int) LogisticOptions {
	if len(o.Features) == 0 {
		o.Features = make([]int, numFeatures)
		for i := range o.Features {
			o.Features[i] = i
		}
	}
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	return o
}

// TrainLogistic fits the model to ds.
func TrainLogistic(ds *Dataset, opts LogisticOptions, rng *rand.Rand) (*Logistic, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(len(ds.X[0]))
	for _, f := range opts.Features {
		if f < 0 || f >= len(ds.X[0]) {
			return nil, fmt.Errorf("ml: logistic feature %d out of range", f)
		}
	}
	m := len(opts.Features)
	lg := &Logistic{
		w:        make([]float64, m),
		mean:     make([]float64, m),
		sd:       make([]float64, m),
		features: append([]int(nil), opts.Features...),
	}

	// Standardise features: gradient descent on raw layout magnitudes
	// (10^0..10^8) would not converge.
	n := float64(ds.Len())
	for j, f := range lg.features {
		var s float64
		for _, row := range ds.X {
			s += row[f]
		}
		lg.mean[j] = s / n
		var v float64
		for _, row := range ds.X {
			d := row[f] - lg.mean[j]
			v += d * d
		}
		lg.sd[j] = math.Sqrt(v / n)
		if lg.sd[j] == 0 {
			lg.sd[j] = 1
		}
	}

	z := make([]float64, m)
	std := func(row []float64) []float64 {
		for j, f := range lg.features {
			z[j] = (row[f] - lg.mean[j]) / lg.sd[j]
		}
		return z
	}

	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			gw := make([]float64, m)
			gb := 0.0
			for _, i := range idx[start:end] {
				x := std(ds.X[i])
				p := sigmoid(dot(lg.w, x) + lg.b)
				y := 0.0
				if ds.Y[i] {
					y = 1
				}
				e := p - y
				for j := range gw {
					gw[j] += e * x[j]
				}
				gb += e
			}
			scale := opts.LearningRate / float64(end-start)
			for j := range lg.w {
				lg.w[j] -= scale * (gw[j] + opts.L2*lg.w[j])
			}
			lg.b -= scale * gb
		}
	}
	return lg, nil
}

// Prob returns P(positive | x).
func (lg *Logistic) Prob(x []float64) float64 {
	var s float64
	for j, f := range lg.features {
		s += lg.w[j] * (x[f] - lg.mean[j]) / lg.sd[j]
	}
	return sigmoid(s + lg.b)
}

// Predict applies threshold t.
func (lg *Logistic) Predict(x []float64, t float64) bool { return lg.Prob(x) >= t }

// Weights returns the learned weights over standardised features, aligned
// with the trained feature subset — interpretable importance signs.
func (lg *Logistic) Weights() ([]int, []float64) {
	return append([]int(nil), lg.features...), append([]float64(nil), lg.w...)
}

func sigmoid(v float64) float64 {
	if v >= 0 {
		return 1 / (1 + math.Exp(-v))
	}
	e := math.Exp(v)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
