package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// separableData is perfectly separated by feature 0 at 0.5.
func separableData(n int, rng *rand.Rand) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := rng.Intn(2) == 0
		x0 := rng.Float64() * 0.5
		if y {
			x0 += 0.5
		}
		d.Add([]float64{x0, rng.Float64()}, y)
	}
	return d
}

// noisyData has feature 0 weakly predictive and feature 1 pure noise.
func noisyData(n int, flip float64, rng *rand.Rand) *Dataset {
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := rng.Intn(2) == 0
		x0 := rng.NormFloat64()
		if y {
			x0 += 1.5
		}
		if rng.Float64() < flip {
			y = !y
		}
		d.Add([]float64{x0, rng.Float64()}, y)
	}
	return d
}

func accuracy(t *Tree, ds *Dataset) float64 {
	correct := 0
	for i := range ds.X {
		if t.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestTreeLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := separableData(500, rng)
	for _, kind := range []TreeKind{REPTree, RandomTree} {
		tree, err := TrainTree(ds, TreeOptions{Kind: kind}, rng)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if acc := accuracy(tree, ds); acc < 0.98 {
			t.Errorf("%v: training accuracy %.3f on separable data", kind, acc)
		}
	}
}

func TestTreeGeneralises(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := noisyData(2000, 0.1, rng)
	test := noisyData(1000, 0.0, rng)
	tree, err := TrainTree(train, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, test); acc < 0.75 {
		t.Errorf("test accuracy %.3f, want >= 0.75 (Bayes ~0.77 pre-flip)", acc)
	}
}

func TestREPTreeSmallerThanRandomTree(t *testing.T) {
	// The paper's rationale for switching base classifiers: pruned trees
	// are smaller than unpruned randomised trees on noisy data.
	rng := rand.New(rand.NewSource(3))
	ds := noisyData(3000, 0.25, rng)
	rep, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := TrainTree(ds, TreeOptions{Kind: RandomTree, MinLeaf: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes() >= rnd.Nodes() {
		t.Errorf("REPTree %d nodes not smaller than RandomTree %d nodes", rep.Nodes(), rnd.Nodes())
	}
}

func TestREPTreePrunesPureNoise(t *testing.T) {
	// With labels independent of features, reduced-error pruning must
	// remove the bulk of the chance splits an unpruned tree keeps.
	rng := rand.New(rand.NewSource(4))
	ds := &Dataset{}
	for i := 0; i < 1000; i++ {
		ds.Add([]float64{rng.Float64(), rng.Float64()}, rng.Intn(2) == 0)
	}
	pruned, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := TrainTree(ds, TreeOptions{Kind: RandomTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Nodes()*2 > unpruned.Nodes() {
		t.Errorf("noise tree has %d nodes vs %d unpruned; pruning ineffective",
			pruned.Nodes(), unpruned.Nodes())
	}
}

func TestFeatureRestriction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := separableData(800, rng)
	// Restricted to the noise feature, the tree cannot learn.
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree, Features: []int{1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree, ds); acc > 0.65 {
		t.Errorf("accuracy %.3f using only the noise feature; restriction leaked", acc)
	}
	// Restricted to the informative feature, it learns fine.
	tree2, err := TrainTree(ds, TreeOptions{Kind: REPTree, Features: []int{0}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tree2, ds); acc < 0.95 {
		t.Errorf("accuracy %.3f using the informative feature", acc)
	}
}

func TestTrainTreeRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := TrainTree(&Dataset{}, TreeOptions{}, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := separableData(10, rng)
	if _, err := TrainTree(ds, TreeOptions{Features: []int{5}}, rng); err == nil {
		t.Error("out-of-range feature accepted")
	}
	if _, err := TrainTree(ds, TreeOptions{Kind: TreeKind(9)}, rng); err == nil {
		t.Error("unknown tree kind accepted")
	}
}

func TestProbInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := noisyData(500, 0.2, rng)
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		p := tree.Prob([]float64{a, b})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsConsistentWithProb(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := noisyData(500, 0.2, rng)
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		p, n := tree.Counts(x)
		if p < 0 || n < 0 {
			t.Fatalf("negative counts %d/%d", p, n)
		}
		want := float64(p+1) / float64(p+n+2)
		if got := tree.Prob(x); got != want {
			t.Fatalf("Prob = %f, want %f from counts %d/%d", got, want, p, n)
		}
	}
}

func TestBackfitCountsCoverFullTrainingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := noisyData(600, 0.1, rng)
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Summing leaf counts by routing every training row must equal the
	// training set size exactly once per row. The pointer tree is freed at
	// flatten time, so walk the flat representation.
	total := 0
	for _, fn := range tree.flat {
		if fn.feature < 0 {
			total += int(fn.pos + fn.neg)
		}
	}
	if total != ds.Len() {
		t.Errorf("leaf counts sum to %d, want %d", total, ds.Len())
	}
}

func TestTreeDeterministicWithSeed(t *testing.T) {
	ds := separableData(300, rand.New(rand.NewSource(10)))
	t1, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if t1.Nodes() != t2.Nodes() || t1.Depth() != t2.Depth() {
		t.Error("same-seed trees differ")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := noisyData(2000, 0.05, rng)
	tree, err := TrainTree(ds, TreeOptions{Kind: RandomTree, MaxDepth: 3, MinLeaf: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Errorf("depth %d exceeds MaxDepth 3", tree.Depth())
	}
}

func TestTreeKindString(t *testing.T) {
	if REPTree.String() != "REPTree" || RandomTree.String() != "RandomTree" {
		t.Error("TreeKind string mismatch")
	}
}

func TestSingleClassDataYieldsLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := &Dataset{}
	for i := 0; i < 50; i++ {
		ds.Add([]float64{rng.Float64()}, true)
	}
	tree, err := TrainTree(ds, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes() != 1 {
		t.Errorf("single-class tree has %d nodes, want 1", tree.Nodes())
	}
	// Laplace smoothing: 50 positives of 50 yield (50+1)/(50+2).
	if p := tree.Prob([]float64{0.5}); p != 51.0/52.0 {
		t.Errorf("single-class prob = %f, want %f", p, 51.0/52.0)
	}
}
