package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func baggingAccuracy(b *Bagging, ds *Dataset, thr float64) float64 {
	correct := 0
	for i := range ds.X {
		if b.Predict(ds.X[i], thr) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestBaggingLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := noisyData(2000, 0.1, rng)
	test := noisyData(1000, 0.0, rng)
	b, err := TrainBagging(train, DefaultBaggingSize, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := baggingAccuracy(b, test, 0.5); acc < 0.78 {
		t.Errorf("bagging test accuracy %.3f", acc)
	}
}

func TestRandomForestLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := noisyData(1500, 0.1, rng)
	test := noisyData(800, 0.0, rng)
	b, err := TrainRandomForest(train, 25, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := baggingAccuracy(b, test, 0.5); acc < 0.70 {
		t.Errorf("random forest test accuracy %.3f", acc)
	}
}

func TestBaggingProbInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := noisyData(500, 0.2, rng)
	b, err := TrainBagging(ds, 5, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, c float64) bool {
		p := b.Prob([]float64{a, c})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictMonotonicInThreshold(t *testing.T) {
	// Raising the threshold can only turn predictions off, never on —
	// the property the LoC-size control of §III-F depends on.
	rng := rand.New(rand.NewSource(4))
	ds := noisyData(500, 0.2, rng)
	b, err := TrainBagging(ds, 5, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64(), rng.Float64()}
		prev := true
		for _, thr := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			cur := b.Predict(x, thr)
			if cur && !prev {
				t.Fatalf("prediction turned on as threshold rose at x=%v", x)
			}
			prev = cur
		}
	}
}

func TestBaggingSoftVoteIsMeanOfTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := noisyData(400, 0.1, rng)
	b, err := TrainBagging(ds, 7, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.6}
	var sum float64
	for _, tr := range b.Trees {
		sum += tr.Prob(x)
	}
	want := sum / 7
	if got := b.Prob(x); got != want {
		t.Errorf("Prob = %f, want mean of trees %f", got, want)
	}
}

func TestTrainBaggingRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := noisyData(50, 0.1, rng)
	if _, err := TrainBagging(ds, 0, TreeOptions{}, rng); err == nil {
		t.Error("bagging size 0 accepted")
	}
	if _, err := TrainBagging(&Dataset{}, 5, TreeOptions{}, rng); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestBaggingNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := noisyData(300, 0.1, rng)
	b, err := TrainBagging(ds, 3, TreeOptions{Kind: REPTree}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, tr := range b.Trees {
		sum += tr.Nodes()
	}
	if b.Nodes() != sum {
		t.Errorf("Nodes = %d, want %d", b.Nodes(), sum)
	}
}

func TestBaggingBeatsSingleTreeOnAverage(t *testing.T) {
	// Aggregate stability: over several resamples of the task, the
	// ensemble should be at least as accurate as a single tree.
	var single, bagged float64
	const rounds = 10
	for r := 0; r < rounds; r++ {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		train := noisyData(800, 0.15, rng)
		test := noisyData(800, 0.0, rng)
		tr, err := TrainTree(train, TreeOptions{Kind: REPTree}, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := TrainBagging(train, 10, TreeOptions{Kind: REPTree}, rng)
		if err != nil {
			t.Fatal(err)
		}
		single += accuracy(tr, test)
		bagged += baggingAccuracy(b, test, 0.5)
	}
	if bagged < single-0.025*rounds {
		t.Errorf("bagging mean accuracy %.3f clearly below single tree %.3f",
			bagged/rounds, single/rounds)
	}
}
