package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a from-scratch one-hidden-layer perceptron (tanh hidden units,
// sigmoid output) trained by fixed-seed mini-batch SGD — the neural learner
// of the DL-perspective attack family (Li et al., DAC'19/TCAD'20). It is
// built for the same batch scoring contract as the compiled Ensemble:
// training folds the feature standardisation into the first-layer weights,
// so Prob/ProbBatch are pure affine-plus-tanh passes over the raw feature
// row — allocation-free and safe for concurrent use.
type MLP struct {
	// w1 is hidden×m row-major: w1[j*m+i] feeds feature column features[i]
	// into hidden unit j. Standardisation is pre-folded: these weights
	// apply to raw, unstandardised rows.
	w1, b1   []float64
	w2       []float64 // hidden output weights
	b2       float64
	features []int
	hidden   int
}

// MLPOptions configures training.
type MLPOptions struct {
	// Features restricts the model to these columns (nil = all).
	Features []int
	// Hidden is the hidden-layer width (default 16).
	Hidden int
	// Epochs over the training set (default 30).
	Epochs int
	// LearningRate for gradient descent (default 0.05).
	LearningRate float64
	// L2 regularisation strength (default 1e-4).
	L2 float64
	// BatchSize for mini-batches (default 64).
	BatchSize int
}

func (o MLPOptions) withDefaults(numFeatures int) MLPOptions {
	if len(o.Features) == 0 {
		o.Features = make([]int, numFeatures)
		for i := range o.Features {
			o.Features[i] = i
		}
	}
	if o.Hidden <= 0 {
		o.Hidden = 16
	}
	if o.Epochs <= 0 {
		o.Epochs = 30
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.05
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	return o
}

// TrainMLP fits the network to ds. All randomness (weight init, epoch
// shuffles) is drawn from rng, so a fixed seed reproduces the weights bit
// for bit regardless of hardware or worker count.
func TrainMLP(ds *Dataset, opts MLPOptions, rng *rand.Rand) (*MLP, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(len(ds.X[0]))
	for _, f := range opts.Features {
		if f < 0 || f >= len(ds.X[0]) {
			return nil, fmt.Errorf("ml: mlp feature %d out of range", f)
		}
	}
	m, h := len(opts.Features), opts.Hidden
	nn := &MLP{
		w1: make([]float64, h*m), b1: make([]float64, h),
		w2:       make([]float64, h),
		features: append([]int(nil), opts.Features...),
		hidden:   h,
	}

	// Standardise features before descent, exactly as TrainLogistic does:
	// raw layout magnitudes span 10^0..10^8.
	mean, sd := make([]float64, m), make([]float64, m)
	n := float64(ds.Len())
	for j, f := range nn.features {
		var s float64
		for _, row := range ds.X {
			s += row[f]
		}
		mean[j] = s / n
		var v float64
		for _, row := range ds.X {
			d := row[f] - mean[j]
			v += d * d
		}
		sd[j] = math.Sqrt(v / n)
		if sd[j] == 0 {
			sd[j] = 1
		}
	}

	// Deterministic Xavier-style init from the per-unit rng.
	scale1 := math.Sqrt(1 / float64(m))
	for i := range nn.w1 {
		nn.w1[i] = rng.NormFloat64() * scale1
	}
	scale2 := math.Sqrt(1 / float64(h))
	for j := range nn.w2 {
		nn.w2[j] = rng.NormFloat64() * scale2
	}

	x := make([]float64, m)     // standardised input row
	a := make([]float64, h)     // hidden activations
	dh := make([]float64, h)    // hidden deltas
	gw1 := make([]float64, h*m) // batch gradients
	gb1 := make([]float64, h)
	gw2 := make([]float64, h)
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for i := range gw1 {
				gw1[i] = 0
			}
			for j := range gb1 {
				gb1[j] = 0
			}
			for j := range gw2 {
				gw2[j] = 0
			}
			gb2 := 0.0
			for _, i := range idx[start:end] {
				row := ds.X[i]
				for j, f := range nn.features {
					x[j] = (row[f] - mean[j]) / sd[j]
				}
				var out float64
				for j := 0; j < h; j++ {
					z := nn.b1[j]
					w := nn.w1[j*m : (j+1)*m]
					for k, v := range x {
						z += w[k] * v
					}
					a[j] = math.Tanh(z)
					out += nn.w2[j] * a[j]
				}
				p := sigmoid(out + nn.b2)
				y := 0.0
				if ds.Y[i] {
					y = 1
				}
				e := p - y // dLoss/dPreSigmoid for cross-entropy
				for j := 0; j < h; j++ {
					gw2[j] += e * a[j]
					dh[j] = e * nn.w2[j] * (1 - a[j]*a[j])
					gb1[j] += dh[j]
					g := gw1[j*m : (j+1)*m]
					for k, v := range x {
						g[k] += dh[j] * v
					}
				}
				gb2 += e
			}
			lr := opts.LearningRate / float64(end-start)
			for i := range nn.w1 {
				nn.w1[i] -= lr * (gw1[i] + opts.L2*nn.w1[i])
			}
			for j := 0; j < h; j++ {
				nn.b1[j] -= lr * gb1[j]
				nn.w2[j] -= lr * (gw2[j] + opts.L2*nn.w2[j])
			}
			nn.b2 -= lr * gb2
		}
	}

	// Fold the standardisation into the first layer so inference needs no
	// scratch buffer: w1'[j][i] = w1[j][i]/sd[i] applied to the raw column,
	// b1'[j] = b1[j] − Σ_i w1[j][i]·mean[i]/sd[i].
	for j := 0; j < h; j++ {
		w := nn.w1[j*m : (j+1)*m]
		for i := range w {
			nn.b1[j] -= w[i] * mean[i] / sd[i]
			w[i] /= sd[i]
		}
	}
	return nn, nil
}

// Prob returns P(positive | x) for one raw (unstandardised) feature row.
// Allocation-free and safe for concurrent use: the network is read-only
// after training.
func (nn *MLP) Prob(x []float64) float64 {
	m := len(nn.features)
	var out float64
	for j := 0; j < nn.hidden; j++ {
		z := nn.b1[j]
		w := nn.w1[j*m : (j+1)*m]
		for i, f := range nn.features {
			z += w[i] * x[f]
		}
		out += nn.w2[j] * math.Tanh(z)
	}
	return sigmoid(out + nn.b2)
}

// ProbBatch scores a row-major feature matrix: out[r] receives exactly what
// Prob(rows[r*stride:(r+1)*stride]) returns. Allocation-free and safe for
// concurrent use, satisfying the pairs.BatchScorer contract.
func (nn *MLP) ProbBatch(rows []float64, stride int, out []float64) {
	n := len(out)
	if stride <= 0 || len(rows) < n*stride {
		panic(fmt.Sprintf("ml: ProbBatch matrix %d floats cannot hold %d rows of stride %d",
			len(rows), n, stride))
	}
	m := len(nn.features)
	for r := 0; r < n; r++ {
		row := rows[r*stride : (r+1)*stride]
		var o float64
		for j := 0; j < nn.hidden; j++ {
			z := nn.b1[j]
			w := nn.w1[j*m : (j+1)*m]
			for i, f := range nn.features {
				z += w[i] * row[f]
			}
			o += nn.w2[j] * math.Tanh(z)
		}
		out[r] = sigmoid(o + nn.b2)
	}
}

// Hidden returns the hidden-layer width.
func (nn *MLP) Hidden() int { return nn.hidden }

// Features returns the feature subset the network scores.
func (nn *MLP) Features() []int { return append([]int(nil), nn.features...) }
