package sweep

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/attack"
)

func testUnit() Unit {
	return Unit{
		Prov:   Provenance{Tier: "standard", Scale: 0.12, Seed: 3},
		Config: "Imp-11",
		Spec:   "abc123",
		Layer:  6,
		Noise:  0.01,
		Fold:   2,
		Design: "sb10",
	}
}

// syntheticEval builds an evaluation exercising every digest-relevant field,
// including float values (0.1, NaN-free but non-representable in decimal
// shorthand) that would expose a lossy codec.
func syntheticEval() *attack.Evaluation {
	return &attack.Evaluation{
		ConfigName: "Imp-11",
		Design:     "sb10",
		SplitLayer: 6,
		N:          3,
		Cands: [][]attack.Candidate{
			{{Other: 1, P: 0.875, D: 12.5}, {Other: 2, P: float32(0.1), D: float32(math.Pi)}},
			{{Other: 0, P: 0.875, D: 12.5}},
			{},
		},
		TruthP:      []float32{0.875, 0.875, -1},
		Truth:       []int32{1, 0, 2},
		Subset:      []int{0, 1, 2},
		TrainDur:    123 * time.Millisecond,
		TestDur:     45 * time.Millisecond,
		PairsScored: 99,
		Retained:    3,
	}
}

func TestUnitKeyDeterministicAndDistinct(t *testing.T) {
	u := testUnit()
	k1, k2 := u.Key(), u.Key()
	if k1 != k2 {
		t.Fatalf("Key not deterministic: %s vs %s", k1, k2)
	}
	if len(k1) != 32 {
		t.Fatalf("Key length = %d, want 32 hex chars", len(k1))
	}
	// Every coordinate must change the key.
	variants := []Unit{u, u, u, u, u, u, u, u}
	variants[1].Prov.Tier = "industrial"
	variants[2].Prov.Scale = 0.13
	variants[3].Prov.Seed = 4
	variants[4].Config = "Imp-9"
	variants[5].Spec = "def456"
	variants[6].Layer = 8
	variants[7].Noise = 0.02
	more := []Unit{u, u}
	more[0].Fold = 3
	more[1].Design = "sb12"
	variants = append(variants, more...)
	seen := map[string]int{}
	for i, v := range variants {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("variants %d and %d share key %s", j, i, k)
		}
		seen[k] = i
	}
	if len(seen) != len(variants) {
		t.Errorf("expected %d distinct keys, got %d", len(variants), len(seen))
	}
}

func TestShardPartitionCoversExactlyOnce(t *testing.T) {
	shards := []Shard{{1, 3}, {2, 3}, {3, 3}}
	u := testUnit()
	for fold := 0; fold < 20; fold++ {
		u.Fold = fold
		key := u.Key()
		owners := 0
		for _, sh := range shards {
			if sh.Owns(key) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("fold %d key %s owned by %d shards, want exactly 1", fold, key, owners)
		}
		if !(Shard{}).Owns(key) {
			t.Errorf("zero shard must own every key")
		}
		if !(Shard{1, 1}).Owns(key) {
			t.Errorf("1/1 shard must own every key")
		}
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"":    {},
		"1/3": {1, 3},
		"3/3": {3, 3},
		"1/1": {1, 1},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"0/3", "4/3", "1/0", "-1/3", "x/3", "1/x", "13", "1/3/5"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) succeeded, want error", in)
		}
	}
}

func TestCheckpointRoundTripPreservesDigest(t *testing.T) {
	ck, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	u := testUnit()
	ev := syntheticEval()
	want := ev.Digest()
	if err := ck.Save(&UnitResult{Unit: u, RadiusNorm: 0.0625, Eval: ev}); err != nil {
		t.Fatal(err)
	}
	res, discarded, err := ck.Load(u)
	if err != nil || discarded {
		t.Fatalf("Load = %v, discarded=%t", err, discarded)
	}
	if res == nil {
		t.Fatal("Load returned nil for a saved unit")
	}
	if res.RadiusNorm != 0.0625 {
		t.Errorf("RadiusNorm = %v, want 0.0625", res.RadiusNorm)
	}
	if got := res.Eval.Digest(); got != want {
		t.Errorf("digest changed across the checkpoint round trip:\n  saved  %s\n  loaded %s", want, got)
	}
	if res.Unit != u {
		t.Errorf("embedded unit = %+v, want %+v", res.Unit, u)
	}
}

func TestCheckpointLoadMissing(t *testing.T) {
	ck, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, discarded, err := ck.Load(testUnit())
	if res != nil || discarded || err != nil {
		t.Fatalf("Load of missing unit = %v, %t, %v; want nil, false, nil", res, discarded, err)
	}
}

// corrupt writes a saved unit file back with the given mutation applied.
func corrupt(t *testing.T, ck *Checkpoint, u Unit, mutate func([]byte) []byte) string {
	t.Helper()
	path := filepath.Join(ck.Dir(), u.Key()+".unit")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckpointCorruptionDiscarded(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"nearly-empty", func(b []byte) []byte { return b[:3] }},
		{"bit-flip", func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		}},
		{"bad-magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"bad-version", func(b []byte) []byte {
			b[len(unitMagic)] = 0xFF
			return b
		}},
		{"garbage", func([]byte) []byte { return []byte("not a unit file at all") }},
		{"partial-write", func(b []byte) []byte { return b[:len(b)-2] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			u := testUnit()
			if err := ck.Save(&UnitResult{Unit: u, Eval: syntheticEval()}); err != nil {
				t.Fatal(err)
			}
			path := corrupt(t, ck, u, tc.mutate)
			res, discarded, err := ck.Load(u)
			if err != nil {
				t.Fatalf("Load of corrupt unit errored (%v); want discard", err)
			}
			if res != nil {
				t.Fatal("corrupt unit was served")
			}
			if !discarded {
				t.Fatal("corrupt unit not reported as discarded")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt unit file not removed: %v", err)
			}
			// The next load sees a clean miss, so the unit is recomputed.
			res, discarded, err = ck.Load(u)
			if res != nil || discarded || err != nil {
				t.Fatalf("Load after discard = %v, %t, %v; want clean miss", res, discarded, err)
			}
		})
	}
}

func TestCheckpointProvenanceMismatch(t *testing.T) {
	ck, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	u := testUnit()
	if err := ck.Save(&UnitResult{Unit: u, Eval: syntheticEval()}); err != nil {
		t.Fatal(err)
	}
	// Rename the valid file onto a different unit's key: the contents decode
	// fine but describe the wrong unit — a provenance error, not a discard.
	other := u
	other.Prov.Seed = 99
	if err := os.Rename(
		filepath.Join(ck.Dir(), u.Key()+".unit"),
		filepath.Join(ck.Dir(), other.Key()+".unit")); err != nil {
		t.Fatal(err)
	}
	res, discarded, err := ck.Load(other)
	if err == nil {
		t.Fatal("Load of a foreign unit succeeded; want provenance error")
	}
	if res != nil || discarded {
		t.Fatalf("foreign unit: res=%v discarded=%t; want nil, false", res, discarded)
	}
	if !strings.Contains(err.Error(), "refusing to merge") {
		t.Errorf("provenance error %q should explain the refusal", err)
	}
}

func TestSaveRefusesNilEval(t *testing.T) {
	ck, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(&UnitResult{Unit: testUnit()}); err == nil {
		t.Fatal("Save without an evaluation succeeded")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
