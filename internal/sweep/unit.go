// Package sweep decomposes leave-one-out experiment sweeps into enumerable
// work units with content-addressed keys, so a sweep can be partitioned
// across processes ("-shard i/n"), checkpointed per unit, resumed after a
// kill, and merged deterministically.
//
// The unit of work is one (design-fold × config × layer × noise) attack run:
// train on every design but the fold's, score the fold's. Fold runs are
// independent — attack.RunFoldInstances is bit-identical to the matching
// slice of a full attack.RunInstances — so any partition of the unit set
// across shards, in any order, at any worker count, recombines into exactly
// the single-process result. Unit keys hash every coordinate that selects
// the unit's bits (suite provenance, config options hash, layer, noise,
// fold), which makes the checkpoint content-addressed: a shard resumes by
// skipping keys that already have valid unit files, and a merge is just
// loading every key of the plan.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Provenance pins the benchmark suite a unit was computed against. Two
// units from different provenances must never merge: their designs (and
// therefore every evaluation bit) differ.
type Provenance struct {
	// Tier is the suite tier ("standard" or "industrial").
	Tier string `json:"tier"`
	// Scale is the suite scale factor.
	Scale float64 `json:"scale"`
	// Seed roots suite generation and all attack randomness.
	Seed int64 `json:"seed"`
}

// Unit is one checkpointable work unit: a single leave-one-out fold of one
// configuration at one (layer, noise) coordinate. All fields participate in
// Key, and all are embedded in the unit's checkpoint file so a merge can
// refuse partials from a different sweep.
type Unit struct {
	Prov Provenance `json:"prov"`
	// Config is the configuration's display name (part of the Evaluation's
	// digest, hence part of the unit's identity).
	Config string `json:"config"`
	// Spec is the configuration's content hash (attack.Config.OptionsHash).
	// Every registered learner family hashes canonically, so every
	// configuration is representable as a unit.
	Spec string `json:"spec"`
	// Layer is the split (via) layer.
	Layer int `json:"layer"`
	// Noise is the Gaussian y-noise standard deviation applied to the
	// challenges (fraction of die height; 0 = clean).
	Noise float64 `json:"noise"`
	// Fold is the held-out design's index in the suite.
	Fold int `json:"fold"`
	// Design is the held-out design's name (redundant with Fold given the
	// provenance, kept for self-describing checkpoint files).
	Design string `json:"design"`
}

// Key is the unit's content address: a truncated SHA-256 over a canonical
// serialization of every field, with floats hashed by bit pattern. It names
// the unit's checkpoint file and is the value shards partition on.
func (u Unit) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep-unit/v1\n")
	fmt.Fprintf(&b, "tier=%s scale=%016x seed=%d\n",
		u.Prov.Tier, math.Float64bits(u.Prov.Scale), u.Prov.Seed)
	fmt.Fprintf(&b, "config=%s spec=%s\n", u.Config, u.Spec)
	fmt.Fprintf(&b, "layer=%d noise=%016x\n", u.Layer, math.Float64bits(u.Noise))
	fmt.Fprintf(&b, "fold=%d design=%s\n", u.Fold, u.Design)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// String renders the unit for logs and errors.
func (u Unit) String() string {
	s := fmt.Sprintf("%s@L%d", u.Config, u.Layer)
	if u.Noise != 0 {
		s += fmt.Sprintf("/noise%g", u.Noise)
	}
	return fmt.Sprintf("%s fold %d (%s) [tier=%s scale=%g seed=%d]",
		s, u.Fold, u.Design, u.Prov.Tier, u.Prov.Scale, u.Prov.Seed)
}

// Shard is one partition of the unit set: shard Index of Count (1-based).
// The zero value owns every unit (no sharding).
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the "-shard i/n" flag form. The empty string is the
// zero shard (own everything).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/n", s)
	}
	idx, err1 := strconv.Atoi(i)
	cnt, err2 := strconv.Atoi(n)
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("sweep: shard %q is not of the form i/n", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate rejects out-of-range shards. The zero value is valid.
func (sh Shard) Validate() error {
	if sh.Index == 0 && sh.Count == 0 {
		return nil
	}
	if sh.Count < 1 || sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("sweep: shard %d/%d out of range (want 1 <= i <= n)", sh.Index, sh.Count)
	}
	return nil
}

// Enabled reports whether the shard actually partitions (Count > 1 — a
// 1/1 shard owns everything, like the zero value).
func (sh Shard) Enabled() bool { return sh.Count > 1 }

// String renders the "i/n" form ("" for the zero shard).
func (sh Shard) String() string {
	if sh.Count == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}

// Owns reports whether this shard is responsible for the unit with the
// given key. Ownership is content-addressed — a hash of the key modulo the
// shard count — so it is stable under any re-enumeration or reordering of
// the plan, and every unit belongs to exactly one shard.
func (sh Shard) Owns(key string) bool {
	if !sh.Enabled() {
		return true
	}
	h, err := strconv.ParseUint(key[:min(16, len(key))], 16, 64)
	if err != nil {
		// Keys are always hex; a malformed one lands on shard 1 so it is
		// still owned exactly once.
		h = 0
	}
	return int(h%uint64(sh.Count)) == sh.Index-1
}
