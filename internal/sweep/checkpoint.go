package sweep

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/attack"
)

// UnitResult is one completed unit's partial result: the fold's evaluation
// plus the neighborhood radius the fold used, with the unit embedded so the
// file is self-describing and a merge can verify provenance.
type UnitResult struct {
	Unit       Unit               `json:"unit"`
	RadiusNorm float64            `json:"radius_norm"`
	Eval       *attack.Evaluation `json:"eval"`
}

// Unit checkpoint container format, mirroring the model artifact codec and
// internal/serve/state.go's atomicity discipline:
//
//	magic   "SPLITUNT"                   8 bytes
//	version uint16 little-endian         currently 1
//	payload uint32 length + JSON UnitResult
//	crc     uint32                       IEEE CRC-32 of everything above
//
// Go's JSON float formatting is shortest-round-trip, so every float32/
// float64 in the evaluation decodes to exactly the bits that were encoded
// and Evaluation.Digest survives the round trip unchanged.
const (
	unitMagic = "SPLITUNT"
	// UnitCodecVersion is the current on-disk unit file format version.
	UnitCodecVersion = 1
)

// Checkpoint is a directory of per-unit partial results, keyed by Unit.Key.
// Writes are atomic (temp file + rename, like serve's state dir), loads are
// CRC-checked, and anything that fails validation — truncated, bit-flipped,
// torn, or foreign — is discarded rather than served. A Checkpoint is safe
// for concurrent use from many goroutines and many processes sharing the
// directory: distinct units touch distinct files, and the same unit written
// twice writes identical bytes.
type Checkpoint struct {
	dir string
}

// Open creates (if needed) and opens a checkpoint directory.
func Open(dir string) (*Checkpoint, error) {
	if dir == "" {
		return nil, errors.New("sweep: checkpoint needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint dir: %w", err)
	}
	return &Checkpoint{dir: dir}, nil
}

// Dir returns the checkpoint's directory.
func (c *Checkpoint) Dir() string { return c.dir }

// path is the unit's file under the checkpoint dir.
func (c *Checkpoint) path(u Unit) string {
	return filepath.Join(c.dir, u.Key()+".unit")
}

// Save persists a completed unit atomically: a reader (or a crash) never
// observes a partial file under the unit's final name.
func (c *Checkpoint) Save(res *UnitResult) error {
	if res.Eval == nil {
		return fmt.Errorf("sweep: refusing to checkpoint unit %s without an evaluation", res.Unit)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encoding unit %s: %w", res.Unit, err)
	}
	buf := make([]byte, 0, len(unitMagic)+2+4+len(payload)+4)
	buf = append(buf, unitMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, UnitCodecVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	path := c.path(res.Unit)
	tmp, err := os.CreateTemp(c.dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: writing unit %s: %w", res.Unit, err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing unit %s: %w", res.Unit, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing unit %s: %w", res.Unit, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: writing unit %s: %w", res.Unit, err)
	}
	return nil
}

// Load fetches the unit's partial result. A missing file returns
// (nil, false, nil): the unit has not been computed. A file that fails any
// validation layer — magic, version, length, CRC, JSON — is deleted and
// reported as (nil, true, nil): corrupt partials are discarded and
// recomputed, never served. A file that validates but describes a
// *different* unit (possible only through renaming or a hash collision)
// is a provenance error: the merge must refuse it loudly instead of
// silently combining results from mismatched sweeps.
func (c *Checkpoint) Load(u Unit) (res *UnitResult, discarded bool, err error) {
	path := c.path(u)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sweep: reading unit %s: %w", u, err)
	}
	res, derr := decodeUnit(data)
	if derr != nil {
		os.Remove(path)
		return nil, true, nil
	}
	if res.Unit != u {
		return nil, false, fmt.Errorf(
			"sweep: checkpoint %s holds unit %s but the plan expects %s: refusing to merge partials from a different sweep",
			filepath.Base(path), res.Unit, u)
	}
	return res, false, nil
}

// decodeUnit validates the container and decodes the payload.
func decodeUnit(data []byte) (*UnitResult, error) {
	headerLen := len(unitMagic) + 2 + 4
	if len(data) < headerLen+4 {
		return nil, fmt.Errorf("sweep: unit file truncated (%d bytes)", len(data))
	}
	if string(data[:len(unitMagic)]) != unitMagic {
		return nil, errors.New("sweep: not a unit file (bad magic)")
	}
	if v := binary.LittleEndian.Uint16(data[len(unitMagic):]); v != UnitCodecVersion {
		return nil, fmt.Errorf("sweep: unsupported unit codec version %d (have %d)", v, UnitCodecVersion)
	}
	if got, stored := crc32.ChecksumIEEE(data[:len(data)-4]),
		binary.LittleEndian.Uint32(data[len(data)-4:]); got != stored {
		return nil, errors.New("sweep: unit file checksum mismatch (corrupted payload)")
	}
	n := int(binary.LittleEndian.Uint32(data[len(unitMagic)+2:]))
	if headerLen+n != len(data)-4 {
		return nil, fmt.Errorf("sweep: unit payload length %d does not match file", n)
	}
	res := &UnitResult{}
	if err := json.Unmarshal(data[headerLen:len(data)-4], res); err != nil {
		return nil, fmt.Errorf("sweep: decoding unit payload: %w", err)
	}
	if res.Eval == nil {
		return nil, errors.New("sweep: unit file has no evaluation")
	}
	return res, nil
}
