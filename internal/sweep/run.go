package sweep

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/obs"
)

// Outcome says how RunUnit produced a unit's result.
type Outcome int

const (
	// Computed: the unit was run fresh (and checkpointed, when a checkpoint
	// is configured).
	Computed Outcome = iota
	// Loaded: a valid checkpoint file served the unit without any engine
	// work.
	Loaded
	// Recomputed: a checkpoint file existed but failed validation, was
	// discarded, and the unit was run fresh.
	Recomputed
)

// String names the outcome for logs and stats.
func (o Outcome) String() string {
	switch o {
	case Loaded:
		return "loaded"
	case Recomputed:
		return "recomputed"
	default:
		return "computed"
	}
}

// RunUnit is the single chokepoint every sharded, checkpointed, or merged
// fold goes through: load the unit from the checkpoint if a valid partial
// exists, otherwise compute it with attack.RunFoldInstances and persist it.
// The result is bit-identical either way — the checkpoint codec round-trips
// every evaluation bit — so callers can mix loaded and computed units
// freely. A nil checkpoint always computes.
//
// Outcomes land on the obs counters sweep.units.done (computed),
// sweep.units.skipped (served from checkpoint), and sweep.units.recomputed
// (corrupt partial discarded and re-run, also counted under done).
func RunUnit(o *obs.Context, ck *Checkpoint, u Unit, cfg attack.Config,
	insts []*attack.Instance) (*attack.Evaluation, float64, Outcome, error) {

	if u.Fold < 0 || u.Fold >= len(insts) {
		return nil, 0, Computed, fmt.Errorf("sweep: unit %s: fold out of range 0..%d", u, len(insts)-1)
	}
	if name := insts[u.Fold].Ch.Design.Name; name != u.Design {
		return nil, 0, Computed, fmt.Errorf("sweep: unit %s: fold %d is design %s in the prepared suite",
			u, u.Fold, name)
	}
	if layer := insts[u.Fold].Ch.SplitLayer; layer != u.Layer {
		return nil, 0, Computed, fmt.Errorf("sweep: unit %s: prepared instances are cut at layer %d",
			u, layer)
	}

	discarded := false
	if ck != nil {
		res, disc, err := ck.Load(u)
		if err != nil {
			return nil, 0, Computed, err
		}
		if res != nil {
			o.Metrics().Counter("sweep.units.skipped").Inc()
			return res.Eval, res.RadiusNorm, Loaded, nil
		}
		discarded = disc
	}

	ev, radius, err := attack.RunFoldInstances(cfg, insts, u.Fold)
	if err != nil {
		return nil, 0, Computed, err
	}
	outcome := Computed
	if discarded {
		outcome = Recomputed
		o.Metrics().Counter("sweep.units.recomputed").Inc()
		o.Log().Warn("discarded corrupt checkpoint unit and recomputed", "unit", u.String())
	}
	if ck != nil {
		if err := ck.Save(&UnitResult{Unit: u, RadiusNorm: radius, Eval: ev}); err != nil {
			return nil, 0, outcome, err
		}
	}
	o.Metrics().Counter("sweep.units.done").Inc()
	return ev, radius, outcome, nil
}
