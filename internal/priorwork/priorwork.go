// Package priorwork implements the baseline attacks the paper compares
// against:
//
//   - The proximity-region attack of Magaña et al. [5]: a linear-regression
//     model, fitted across designs, predicts a search-region radius around
//     each v-pin from congestion and wirelength measurements; the List of
//     Candidates is every legal v-pin inside the region. It produces large
//     LoCs at moderate accuracy — the reference row of Table I and the
//     reference curve of Fig. 9.
//   - The naive nearest-neighbour proximity attack of Rajendran et al. [9]:
//     match every v-pin to its nearest legal v-pin.
package priorwork

import (
	"fmt"
	"math/rand"

	"repro/internal/features"
	"repro/internal/split"
)

// numPredictors is the regression design width: intercept, routing
// congestion, placement congestion, and normalised below-split wirelength.
const numPredictors = 4

// Model is the fitted linear-regression radius predictor.
type Model struct {
	w [numPredictors]float64
}

// predictors fills x with the regression inputs of v-pin i. Distances are
// normalised by die width so the model transfers across designs.
func predictors(ch *split.Challenge, i int, dieW float64, x *[numPredictors]float64) {
	v := &ch.VPins[i]
	x[0] = 1
	x[1] = ch.RC(v)
	x[2] = ch.PC(v)
	x[3] = float64(v.Wirelength) / dieW
}

// Train fits the radius model on the true matches of the given challenges
// by ordinary least squares (normal equations with a small ridge term for
// numerical stability).
func Train(chs []*split.Challenge) (*Model, error) {
	var xtx [numPredictors][numPredictors]float64
	var xty [numPredictors]float64
	samples := 0
	for _, ch := range chs {
		dieW := float64(ch.Design.Die().Width())
		var x [numPredictors]float64
		for i := range ch.VPins {
			v := &ch.VPins[i]
			m := &ch.VPins[v.Match]
			predictors(ch, i, dieW, &x)
			y := float64(v.Pos.Manhattan(m.Pos)) / dieW
			for a := 0; a < numPredictors; a++ {
				for b := 0; b < numPredictors; b++ {
					xtx[a][b] += x[a] * x[b]
				}
				xty[a] += x[a] * y
			}
			samples++
		}
	}
	if samples < numPredictors {
		return nil, fmt.Errorf("priorwork: only %d training matches", samples)
	}
	for a := 0; a < numPredictors; a++ {
		xtx[a][a] += 1e-9 * float64(samples)
	}
	w, ok := solve(xtx, xty)
	if !ok {
		return nil, fmt.Errorf("priorwork: singular normal equations")
	}
	return &Model{w: w}, nil
}

// solve performs Gaussian elimination with partial pivoting on the 4x4
// system.
func solve(a [numPredictors][numPredictors]float64, b [numPredictors]float64) ([numPredictors]float64, bool) {
	n := numPredictors
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[p][col]) {
				p = r
			}
		}
		if abs(a[p][col]) < 1e-18 {
			return b, false
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [numPredictors]float64
	for r := n - 1; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < n; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// PredictRadius returns the predicted search radius (normalised by die
// width) for v-pin i of the challenge.
func (m *Model) PredictRadius(ch *split.Challenge, i int) float64 {
	var x [numPredictors]float64
	predictors(ch, i, float64(ch.Design.Die().Width()), &x)
	var r float64
	for k := 0; k < numPredictors; k++ {
		r += m.w[k] * x[k]
	}
	if r < 0 {
		return 0
	}
	return r
}

// Outcome summarises the regression attack against one design.
type Outcome struct {
	Design string
	// MeanLoC is the average search-region population.
	MeanLoC float64
	// Accuracy is the fraction of v-pins whose true match lies inside the
	// region.
	Accuracy float64
	// PASuccess is the success rate of picking the nearest region member.
	PASuccess float64
}

// Attack runs the regression-region attack on a challenge. slack scales
// every predicted radius; 1.0 is the fitted model, larger values trade LoC
// size for accuracy (used to sweep the prior-work curve in Fig. 9).
func (m *Model) Attack(ch *split.Challenge, slack float64, rng *rand.Rand) Outcome {
	ex := features.NewExtractor(ch)
	n := len(ch.VPins)
	dieW := float64(ch.Design.Die().Width())
	out := Outcome{Design: ch.Design.Name}
	totalLoC := 0
	hits := 0
	pa := 0
	for a := 0; a < n; a++ {
		radius := m.PredictRadius(ch, a) * slack * dieW
		match := ch.VPins[a].Match
		loc := 0
		best := -1
		bestD := 0.0
		ties := 0
		for b := 0; b < n; b++ {
			if b == a || !ex.Legal(a, b) {
				continue
			}
			d := ex.VpinDist(a, b)
			if d > radius {
				continue
			}
			loc++
			switch {
			case best < 0 || d < bestD:
				best, bestD, ties = b, d, 1
			case d == bestD:
				ties++
				if rng.Intn(ties) == 0 {
					best = b
				}
			}
			if b == match {
				hits++
			}
		}
		totalLoC += loc
		if best == match {
			pa++
		}
	}
	out.MeanLoC = float64(totalLoC) / float64(n)
	out.Accuracy = float64(hits) / float64(n)
	out.PASuccess = float64(pa) / float64(n)
	return out
}

// RunLeaveOneOut evaluates the regression attack with the paper's
// cross-validation discipline: each design is attacked by a model fitted on
// the remaining ones. ([5] itself fitted across all designs at once — the
// paper criticises exactly that — so this is a slightly stronger version of
// the baseline.)
func RunLeaveOneOut(chs []*split.Challenge, slack float64, seed int64) ([]Outcome, error) {
	if len(chs) < 2 {
		return nil, fmt.Errorf("priorwork: need at least 2 designs")
	}
	outcomes := make([]Outcome, len(chs))
	for target := range chs {
		train := make([]*split.Challenge, 0, len(chs)-1)
		for i, ch := range chs {
			if i != target {
				train = append(train, ch)
			}
		}
		model, err := Train(train)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(target)))
		outcomes[target] = model.Attack(chs[target], slack, rng)
	}
	return outcomes, nil
}

// CurvePoint is one (mean LoC fraction, accuracy) sample of the regression
// attack's trade-off sweep.
type CurvePoint struct {
	LoCFrac  float64
	Accuracy float64
}

// Curve sweeps the slack factor and reports the aggregate trade-off of the
// regression attack over all challenges (leave-one-out), for the prior-work
// reference curve of Fig. 9.
func Curve(chs []*split.Challenge, slacks []float64, seed int64) ([]CurvePoint, error) {
	pts := make([]CurvePoint, 0, len(slacks))
	for _, s := range slacks {
		outs, err := RunLeaveOneOut(chs, s, seed)
		if err != nil {
			return nil, err
		}
		var frac, acc float64
		for i, o := range outs {
			frac += o.MeanLoC / float64(len(chs[i].VPins))
			acc += o.Accuracy
		}
		pts = append(pts, CurvePoint{LoCFrac: frac / float64(len(outs)), Accuracy: acc / float64(len(outs))})
	}
	return pts, nil
}

// NearestNeighborPA is the naive proximity attack of [9]: every v-pin is
// matched to its nearest legal v-pin (ties broken randomly). It returns the
// success rate.
func NearestNeighborPA(ch *split.Challenge, rng *rand.Rand) float64 {
	ex := features.NewExtractor(ch)
	n := len(ch.VPins)
	success := 0
	for a := 0; a < n; a++ {
		best := -1
		bestD := 0.0
		ties := 0
		for b := 0; b < n; b++ {
			if b == a || !ex.Legal(a, b) {
				continue
			}
			d := ex.VpinDist(a, b)
			switch {
			case best < 0 || d < bestD:
				best, bestD, ties = b, d, 1
			case d == bestD:
				ties++
				if rng.Intn(ties) == 0 {
					best = b
				}
			}
		}
		if best == ch.VPins[a].Match {
			success++
		}
	}
	return float64(success) / float64(n)
}
