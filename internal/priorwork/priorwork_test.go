package priorwork

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/layout"
	"repro/internal/split"
)

var (
	pwOnce sync.Once
	pwErr  error
	pwChs  []*split.Challenge
)

func testChallenges(t *testing.T) []*split.Challenge {
	t.Helper()
	pwOnce.Do(func() {
		designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: 0.2, Seed: 9})
		if err != nil {
			pwErr = err
			return
		}
		for _, d := range designs {
			c, err := split.NewChallenge(d, 6)
			if err != nil {
				pwErr = err
				return
			}
			pwChs = append(pwChs, c)
		}
	})
	if pwErr != nil {
		t.Fatal(pwErr)
	}
	return pwChs
}

func TestSolveKnownSystem(t *testing.T) {
	// Identity system: solution equals RHS.
	var a [numPredictors][numPredictors]float64
	for i := range a {
		a[i][i] = 1
	}
	b := [numPredictors]float64{1, 2, 3, 4}
	x, ok := solve(a, b)
	if !ok {
		t.Fatal("identity system reported singular")
	}
	for i := range b {
		if x[i] != b[i] {
			t.Fatalf("x = %v, want %v", x, b)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	var a [numPredictors][numPredictors]float64 // all zeros
	if _, ok := solve(a, [numPredictors]float64{1, 0, 0, 0}); ok {
		t.Error("singular system not detected")
	}
}

func TestTrainRecoversPlantedIntercept(t *testing.T) {
	// With identical designs, the model must predict radii of the same
	// order as the true matched distances.
	chs := testChallenges(t)
	m, err := Train(chs)
	if err != nil {
		t.Fatal(err)
	}
	ch := chs[0]
	dieW := float64(ch.Design.Die().Width())
	var predSum, trueSum float64
	for i := range ch.VPins {
		predSum += m.PredictRadius(ch, i)
		trueSum += float64(ch.VPins[i].Pos.Manhattan(ch.VPins[ch.VPins[i].Match].Pos)) / dieW
	}
	n := float64(len(ch.VPins))
	if predSum/n < 0.2*(trueSum/n) || predSum/n > 5*(trueSum/n) {
		t.Errorf("mean predicted radius %.4f far from mean true distance %.4f",
			predSum/n, trueSum/n)
	}
}

func TestPredictRadiusNonNegative(t *testing.T) {
	chs := testChallenges(t)
	m, err := Train(chs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range chs[1].VPins {
		if r := m.PredictRadius(chs[1], i); r < 0 {
			t.Fatalf("negative radius %f", r)
		}
	}
}

func TestAttackOutcomeShape(t *testing.T) {
	chs := testChallenges(t)
	outs, err := RunLeaveOneOut(chs, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(chs) {
		t.Fatalf("%d outcomes for %d designs", len(outs), len(chs))
	}
	for i, o := range outs {
		if o.Design != chs[i].Design.Name {
			t.Errorf("outcome %d design %s", i, o.Design)
		}
		if o.Accuracy < 0 || o.Accuracy > 1 || o.PASuccess < 0 || o.PASuccess > 1 {
			t.Errorf("%s: rates out of range: %+v", o.Design, o)
		}
		if o.MeanLoC < 0 || o.MeanLoC > float64(len(chs[i].VPins)) {
			t.Errorf("%s: implausible mean LoC %f", o.Design, o.MeanLoC)
		}
		if o.PASuccess > o.Accuracy+1e-9 {
			t.Errorf("%s: PA success %f exceeds accuracy %f", o.Design, o.PASuccess, o.Accuracy)
		}
	}
}

func TestSlackTradeoff(t *testing.T) {
	// Larger slack must grow the regions (more LoC) and not reduce
	// accuracy.
	chs := testChallenges(t)
	small, err := RunLeaveOneOut(chs, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunLeaveOneOut(chs, 2.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	var smallLoC, bigLoC, smallAcc, bigAcc float64
	for i := range small {
		smallLoC += small[i].MeanLoC
		bigLoC += big[i].MeanLoC
		smallAcc += small[i].Accuracy
		bigAcc += big[i].Accuracy
	}
	if bigLoC <= smallLoC {
		t.Errorf("slack 2.0 LoC %.1f not above slack 0.5 LoC %.1f", bigLoC, smallLoC)
	}
	if bigAcc < smallAcc {
		t.Errorf("slack 2.0 accuracy %.3f below slack 0.5 accuracy %.3f", bigAcc, smallAcc)
	}
}

func TestCurveMonotone(t *testing.T) {
	chs := testChallenges(t)
	pts, err := Curve(chs, []float64{0.5, 1, 2, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LoCFrac < pts[i-1].LoCFrac {
			t.Errorf("curve LoC fraction not non-decreasing at %d", i)
		}
		if pts[i].Accuracy < pts[i-1].Accuracy-1e-9 {
			t.Errorf("curve accuracy not non-decreasing at %d", i)
		}
	}
}

func TestNearestNeighborPA(t *testing.T) {
	chs := testChallenges(t)
	rng := rand.New(rand.NewSource(4))
	for _, ch := range chs[:2] {
		s := NearestNeighborPA(ch, rng)
		if s < 0 || s > 1 {
			t.Fatalf("NN PA success %f out of range", s)
		}
	}
}

func TestRunLeaveOneOutRejectsSmallInput(t *testing.T) {
	chs := testChallenges(t)
	if _, err := RunLeaveOneOut(chs[:1], 1, 1); err == nil {
		t.Error("single design accepted")
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training set accepted")
	}
}
