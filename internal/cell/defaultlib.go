package cell

import (
	"fmt"

	"repro/internal/geom"
)

// Technology constants of the synthetic 45nm-flavoured library. The site
// width and row height match typical academic libraries; absolute values
// only matter relative to the die sizes chosen in internal/layout.
const (
	// SiteWidth is the placement site pitch in database units.
	SiteWidth geom.Coord = 38
	// RowHeight is the standard-cell row height in database units.
	RowHeight geom.Coord = 240
)

// DefaultLibrary constructs the synthetic standard-cell library used by the
// benchmark generator. It contains the usual combinational gates in several
// drive strengths, sequential cells, buffers for long nets, and two macro
// footprints. Cell widths grow with drive strength and input count, giving
// the area/drive correlation the attack's InArea/OutArea features rely on.
func DefaultLibrary() *Library {
	var kinds []*Kind

	// comb describes a combinational gate family: one output, n inputs,
	// issued in drive strengths X1..X4 with widths growing with drive.
	type family struct {
		name   string
		inputs int
		base   geom.Coord // width of the X1 variant, in sites
	}
	families := []family{
		{"INV", 1, 2},
		{"BUF", 1, 3},
		{"NAND2", 2, 3},
		{"NOR2", 2, 3},
		{"AND2", 2, 4},
		{"OR2", 2, 4},
		{"XOR2", 2, 5},
		{"NAND3", 3, 4},
		{"NOR3", 3, 4},
		{"AOI21", 3, 4},
		{"OAI21", 3, 4},
		{"MUX2", 3, 6},
		{"NAND4", 4, 5},
		{"AOI22", 4, 5},
	}
	for _, f := range families {
		for _, drive := range []int{1, 2, 4} {
			w := f.base * SiteWidth * geom.Coord(1+drive/2)
			k := &Kind{
				Name:   fmt.Sprintf("%s_X%d", f.name, drive),
				Width:  w,
				Height: RowHeight,
				Drive:  drive,
			}
			for i := 0; i < f.inputs; i++ {
				k.Pins = append(k.Pins, PinDef{
					Name:   fmt.Sprintf("A%d", i+1),
					Dir:    Input,
					Offset: geom.Pt(w*geom.Coord(i+1)/geom.Coord(f.inputs+2), RowHeight/3),
				})
			}
			k.Pins = append(k.Pins, PinDef{
				Name:   "ZN",
				Dir:    Output,
				Offset: geom.Pt(w*geom.Coord(f.inputs+1)/geom.Coord(f.inputs+2), 2*RowHeight/3),
			})
			kinds = append(kinds, k)
		}
	}

	// Sequential cells: D flip-flops in two drive strengths. The clock pin
	// is modelled as a regular input; clock routing is excluded from the
	// signal netlist by the generator, matching how split-manufacturing
	// studies treat clock trees separately.
	for _, drive := range []int{1, 2} {
		w := 8 * SiteWidth * geom.Coord(1+drive/2)
		kinds = append(kinds, &Kind{
			Name:   fmt.Sprintf("DFF_X%d", drive),
			Width:  w,
			Height: RowHeight,
			Drive:  drive,
			Pins: []PinDef{
				{Name: "D", Dir: Input, Offset: geom.Pt(w/4, RowHeight/3)},
				{Name: "CK", Dir: Input, Offset: geom.Pt(w/2, RowHeight/4)},
				{Name: "Q", Dir: Output, Offset: geom.Pt(3*w/4, 2*RowHeight/3)},
			},
		})
	}

	// Macros: block RAM and a PLL-like analog block. Their huge areas are
	// the outliers in the cell-area feature distributions.
	kinds = append(kinds,
		&Kind{
			Name:   "RAM512",
			Width:  120 * SiteWidth,
			Height: 16 * RowHeight,
			Drive:  8,
			Macro:  true,
			Pins: []PinDef{
				{Name: "A", Dir: Input, Offset: geom.Pt(10*SiteWidth, RowHeight)},
				{Name: "DI", Dir: Input, Offset: geom.Pt(30*SiteWidth, RowHeight)},
				{Name: "WE", Dir: Input, Offset: geom.Pt(50*SiteWidth, RowHeight)},
				{Name: "DO", Dir: Output, Offset: geom.Pt(90*SiteWidth, 15*RowHeight)},
			},
		},
		&Kind{
			Name:   "MACRO_IP",
			Width:  80 * SiteWidth,
			Height: 10 * RowHeight,
			Drive:  6,
			Macro:  true,
			Pins: []PinDef{
				{Name: "IN1", Dir: Input, Offset: geom.Pt(8*SiteWidth, RowHeight)},
				{Name: "IN2", Dir: Input, Offset: geom.Pt(24*SiteWidth, RowHeight)},
				{Name: "OUT1", Dir: Output, Offset: geom.Pt(60*SiteWidth, 9*RowHeight)},
				{Name: "OUT2", Dir: Output, Offset: geom.Pt(72*SiteWidth, 9*RowHeight)},
			},
		},
	)

	lib, err := NewLibrary(kinds)
	if err != nil {
		// The default library is a compile-time constant in spirit; a
		// construction error is a programming bug, not a runtime condition.
		panic(err)
	}
	return lib
}
