// Package cell models the standard-cell library of the synthetic technology:
// cell kinds with footprint, drive strength, and typed pins. The attack's
// InArea/OutArea features are computed from these cell areas, and pin
// directions determine which v-pin pairs are electrically legal.
package cell

import (
	"fmt"

	"repro/internal/geom"
)

// PinDir is the electrical direction of a cell pin.
type PinDir int

const (
	// Input pins sink current; a net drives them.
	Input PinDir = iota
	// Output pins source current; they drive a net.
	Output
)

// String implements fmt.Stringer.
func (d PinDir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("PinDir(%d)", int(d))
	}
}

// PinDef describes one pin of a cell kind. Offset is the pin location
// relative to the cell origin (lower-left corner); physical pins live on
// metal 1.
type PinDef struct {
	Name   string
	Dir    PinDir
	Offset geom.Point
}

// Kind is a standard-cell (or macro) master: every instance of the kind
// shares the same footprint and pins.
type Kind struct {
	Name   string
	Width  geom.Coord
	Height geom.Coord
	// Drive is the relative drive strength (X1, X2, ...). Larger drive
	// implies a larger footprint; the paper's area features use this
	// correlation to reason about whether a driver can support a load.
	Drive int
	// Macro marks large hard blocks (RAMs etc.). Macro-heavy designs are
	// responsible for the outliers visible in the paper's Fig. 8.
	Macro bool
	Pins  []PinDef
}

// Area returns the footprint area of the kind in square database units.
func (k *Kind) Area() float64 {
	return float64(k.Width) * float64(k.Height)
}

// Inputs returns the indices of input pins in k.Pins.
func (k *Kind) Inputs() []int {
	var idx []int
	for i, p := range k.Pins {
		if p.Dir == Input {
			idx = append(idx, i)
		}
	}
	return idx
}

// Outputs returns the indices of output pins in k.Pins.
func (k *Kind) Outputs() []int {
	var idx []int
	for i, p := range k.Pins {
		if p.Dir == Output {
			idx = append(idx, i)
		}
	}
	return idx
}

// Library is an immutable set of cell kinds.
type Library struct {
	kinds  []*Kind
	byName map[string]*Kind
}

// NewLibrary builds a library from kinds. Kind names must be unique and
// every kind must have at least one pin.
func NewLibrary(kinds []*Kind) (*Library, error) {
	lib := &Library{byName: make(map[string]*Kind, len(kinds))}
	for _, k := range kinds {
		if k.Name == "" {
			return nil, fmt.Errorf("cell: kind with empty name")
		}
		if _, dup := lib.byName[k.Name]; dup {
			return nil, fmt.Errorf("cell: duplicate kind %q", k.Name)
		}
		if len(k.Pins) == 0 {
			return nil, fmt.Errorf("cell: kind %q has no pins", k.Name)
		}
		if k.Width <= 0 || k.Height <= 0 {
			return nil, fmt.Errorf("cell: kind %q has non-positive footprint", k.Name)
		}
		for _, p := range k.Pins {
			if p.Offset.X < 0 || p.Offset.X > k.Width || p.Offset.Y < 0 || p.Offset.Y > k.Height {
				return nil, fmt.Errorf("cell: kind %q pin %q offset %v outside footprint", k.Name, p.Name, p.Offset)
			}
		}
		lib.kinds = append(lib.kinds, k)
		lib.byName[k.Name] = k
	}
	if len(lib.kinds) == 0 {
		return nil, fmt.Errorf("cell: empty library")
	}
	return lib, nil
}

// Kinds returns all kinds in definition order. The returned slice must not
// be modified.
func (l *Library) Kinds() []*Kind { return l.kinds }

// Kind returns the kind with the given name, or nil when absent.
func (l *Library) Kind(name string) *Kind { return l.byName[name] }

// StandardKinds returns the non-macro kinds.
func (l *Library) StandardKinds() []*Kind {
	var out []*Kind
	for _, k := range l.kinds {
		if !k.Macro {
			out = append(out, k)
		}
	}
	return out
}

// Macros returns the macro kinds.
func (l *Library) Macros() []*Kind {
	var out []*Kind
	for _, k := range l.kinds {
		if k.Macro {
			out = append(out, k)
		}
	}
	return out
}
