package cell

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestDefaultLibraryValid(t *testing.T) {
	lib := DefaultLibrary()
	if len(lib.Kinds()) == 0 {
		t.Fatal("default library is empty")
	}
	for _, k := range lib.Kinds() {
		if k.Area() <= 0 {
			t.Errorf("kind %s has non-positive area", k.Name)
		}
		if len(k.Outputs()) == 0 {
			t.Errorf("kind %s has no output pin", k.Name)
		}
		if !k.Macro && len(k.Outputs()) != 1 {
			t.Errorf("standard kind %s has %d outputs, want 1", k.Name, len(k.Outputs()))
		}
	}
}

func TestDefaultLibraryDriveAreaCorrelation(t *testing.T) {
	// The attack assumes larger drive implies larger area within a family.
	lib := DefaultLibrary()
	x1 := lib.Kind("INV_X1")
	x4 := lib.Kind("INV_X4")
	if x1 == nil || x4 == nil {
		t.Fatal("INV family missing")
	}
	if x4.Area() <= x1.Area() {
		t.Errorf("INV_X4 area %.0f not larger than INV_X1 area %.0f", x4.Area(), x1.Area())
	}
}

func TestDefaultLibraryMacros(t *testing.T) {
	lib := DefaultLibrary()
	macros := lib.Macros()
	if len(macros) < 2 {
		t.Fatalf("want at least 2 macros, got %d", len(macros))
	}
	std := lib.StandardKinds()
	var maxStd float64
	for _, k := range std {
		if k.Area() > maxStd {
			maxStd = k.Area()
		}
	}
	for _, m := range macros {
		if m.Area() <= maxStd {
			t.Errorf("macro %s area %.0f not larger than biggest standard cell %.0f", m.Name, m.Area(), maxStd)
		}
	}
}

func TestKindLookup(t *testing.T) {
	lib := DefaultLibrary()
	if lib.Kind("NAND2_X1") == nil {
		t.Error("NAND2_X1 missing")
	}
	if lib.Kind("NO_SUCH_CELL") != nil {
		t.Error("lookup of unknown kind must return nil")
	}
}

func TestInputsOutputsPartitionPins(t *testing.T) {
	lib := DefaultLibrary()
	for _, k := range lib.Kinds() {
		if len(k.Inputs())+len(k.Outputs()) != len(k.Pins) {
			t.Errorf("kind %s: inputs+outputs != pins", k.Name)
		}
		for _, i := range k.Inputs() {
			if k.Pins[i].Dir != Input {
				t.Errorf("kind %s: Inputs() returned non-input pin", k.Name)
			}
		}
		for _, i := range k.Outputs() {
			if k.Pins[i].Dir != Output {
				t.Errorf("kind %s: Outputs() returned non-output pin", k.Name)
			}
		}
	}
}

func TestPinOffsetsInsideFootprint(t *testing.T) {
	lib := DefaultLibrary()
	for _, k := range lib.Kinds() {
		for _, p := range k.Pins {
			if p.Offset.X < 0 || p.Offset.X > k.Width || p.Offset.Y < 0 || p.Offset.Y > k.Height {
				t.Errorf("kind %s pin %s offset %v outside footprint %dx%d",
					k.Name, p.Name, p.Offset, k.Width, k.Height)
			}
		}
	}
}

func TestNewLibraryRejectsDuplicates(t *testing.T) {
	k := func(name string) *Kind {
		return &Kind{Name: name, Width: 10, Height: 10,
			Pins: []PinDef{{Name: "Z", Dir: Output}}}
	}
	_, err := NewLibrary([]*Kind{k("A"), k("A")})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate error, got %v", err)
	}
}

func TestNewLibraryRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		kind *Kind
	}{
		{"empty name", &Kind{Width: 10, Height: 10, Pins: []PinDef{{Name: "Z", Dir: Output}}}},
		{"no pins", &Kind{Name: "X", Width: 10, Height: 10}},
		{"zero width", &Kind{Name: "X", Height: 10, Pins: []PinDef{{Name: "Z", Dir: Output}}}},
		{"pin outside", &Kind{Name: "X", Width: 10, Height: 10,
			Pins: []PinDef{{Name: "Z", Dir: Output, Offset: geom.Pt(11, 0)}}}},
	}
	for _, c := range cases {
		if _, err := NewLibrary([]*Kind{c.kind}); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	if _, err := NewLibrary(nil); err == nil {
		t.Error("empty library: want error, got nil")
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Error("PinDir.String mismatch")
	}
	if s := PinDir(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown PinDir string %q", s)
	}
}

func TestDefaultLibraryDeterministic(t *testing.T) {
	a, b := DefaultLibrary(), DefaultLibrary()
	if len(a.Kinds()) != len(b.Kinds()) {
		t.Fatal("library size differs between constructions")
	}
	for i, k := range a.Kinds() {
		if k.Name != b.Kinds()[i].Name || k.Width != b.Kinds()[i].Width {
			t.Fatalf("kind %d differs between constructions", i)
		}
	}
}
