package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
)

// apiError is the error envelope every non-2xx API response carries.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	// Code is a stable machine-readable identifier: invalid_spec,
	// queue_full, unknown_job, not_ready, conflict.
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits the error envelope with the given HTTP status.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(apiError{Error: apiErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}}) //nolint:errcheck
}

// Handler returns the service's HTTP API on one mux:
//
//	GET    /                 endpoint index
//	POST   /jobs             submit a JobSpec -> 202 + JobStatus
//	GET    /jobs             list all jobs
//	GET    /jobs/{id}        one job's status (live progress included)
//	DELETE /jobs/{id}        cancel a pending or running job
//	GET    /jobs/{id}/result the Result document of a done job
//	GET    /designs          the suite design names jobs may target
//	GET    /configs          the config presets and learner families
//
// plus the obs telemetry endpoints (/metrics, /progress, /spans, /healthz,
// /debug/pprof) mounted on the same mux, so one address serves both the
// API and its observability. See API.md for request/response schemas and
// curl examples.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	obsEndpoints := s.o.Mount(mux)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /designs", s.handleDesigns)
	mux.HandleFunc("GET /configs", s.handleConfigs)
	endpoints := append([]string{
		"POST /jobs", "GET /jobs", "GET /jobs/{id}", "DELETE /jobs/{id}",
		"GET /jobs/{id}/result", "GET /designs", "GET /configs",
	}, obsEndpoints...)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "splitserved job API (see API.md):")
		for _, ep := range endpoints {
			fmt.Fprintf(w, "  %s\n", ep)
		}
	})
	return mux
}

// handleSubmit accepts a JobSpec and enqueues it: 202 with the pending
// job's status, 400 on an invalid spec, 429 with Retry-After when the
// queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_spec", "decode job spec: %v", err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"job queue is full (%d pending); retry later", cap(s.queue))
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid_spec", "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	obs.ServeJSON(noStatusWriter{w}, s.Status(job))
}

// handleList serves every job's status, submission-ordered. An optional
// ?state= query keeps only jobs in that lifecycle state (400 on an unknown
// one); omitted, every job is listed.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := JobState(r.URL.Query().Get("state"))
	if filter != "" && !validState(filter) {
		writeError(w, http.StatusBadRequest, "invalid_spec",
			"unknown state %q (want pending, running, done, failed, cancelled, or interrupted)", filter)
		return
	}
	jobs := s.Jobs()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, job := range jobs {
		st := s.Status(job)
		if filter != "" && st.State != filter {
			continue
		}
		statuses = append(statuses, st)
	}
	obs.ServeJSON(w, statuses)
}

// handleStatus serves one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	obs.ServeJSON(w, s.Status(job))
}

// handleCancel cancels a job: 200 with the (possibly still "running",
// about to turn cancelled) status, 404 unknown, 409 already terminal.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, "conflict",
			"job %s is already %s", job.ID, s.Status(job).State)
		return
	}
	obs.ServeJSON(w, s.Status(job))
}

// handleResult serves a done job's Result: 200 with the document, 202 with
// the status while pending/running, 404 unknown, 409 for a job that ended
// without a result (failed, cancelled, interrupted).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	st := s.Status(job)
	switch st.State {
	case StateDone:
	case StatePending, StateRunning:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		obs.ServeJSON(noStatusWriter{w}, st)
		return
	default:
		writeError(w, http.StatusConflict, "conflict",
			"job %s is %s and has no result: %s", job.ID, st.State, st.Error)
		return
	}
	if res, ok := s.Result(job); ok {
		obs.ServeJSON(w, res)
		return
	}
	// Done before a restart: the document lives only in the state dir.
	raw, err := s.loadResultRaw(job.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "missing_result",
			"job %s is done but its result document is gone: %v", job.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw) //nolint:errcheck
}

// handleDesigns lists the design names a job may target at the server's
// default scale and seed. An optional ?tier= query selects the suite tier
// ("standard" or "industrial"); omitted, the server's default tier answers,
// so pre-tier clients see exactly the response they always did.
func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	tier := r.URL.Query().Get("tier")
	if tier == "" {
		tier = s.opts.DefaultTier
	}
	if !layout.ValidTier(tier) {
		writeError(w, http.StatusBadRequest, "invalid_spec",
			"unknown tier %q (want %v)", tier, layout.Tiers())
		return
	}
	obs.ServeJSON(w, suiteDesigns(tier, s.opts.DefaultScale, s.opts.DefaultSeed))
}

// configInfo summarises one named preset for GET /configs: enough to pick
// a preset without consulting the source. Learner is always spelled out
// ("bagging" rather than the empty default) — the wire form never leaks the
// zero-value compatibility alias.
type configInfo struct {
	Name         string `json:"name"`
	Learner      string `json:"learner"`
	Features     int    `json:"features"`
	Neighborhood bool   `json:"neighborhood"`
	TwoLevel     bool   `json:"two_level,omitempty"`
	Ranking      bool   `json:"ranking,omitempty"`
}

// configsResponse is the GET /configs document.
type configsResponse struct {
	// Tier echoes the resolved suite tier the presets would run against.
	Tier string `json:"tier"`
	// Presets are the named configurations a ConfigSpec may reference.
	Presets []configInfo `json:"presets"`
	// Learners are the registered learner-family names a ConfigSpec's
	// learner field accepts.
	Learners []string `json:"learners"`
}

// handleConfigs lists the named attack-config presets and the registered
// learner families a job spec may select. The ?tier= query mirrors
// /designs: it validates against the suite tiers (400 on an unknown one)
// and is echoed in the response, so clients can pair the preset list with
// the design list of the same tier.
func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	tier := r.URL.Query().Get("tier")
	if tier == "" {
		tier = s.opts.DefaultTier
	}
	if !layout.ValidTier(tier) {
		writeError(w, http.StatusBadRequest, "invalid_spec",
			"unknown tier %q (want %v)", tier, layout.Tiers())
		return
	}
	presets := attack.ConfigPresets()
	infos := make([]configInfo, 0, len(presets))
	for _, c := range presets {
		fam := c.Family
		if fam == "" {
			fam = model.FamilyBagging
		}
		infos = append(infos, configInfo{
			Name: c.Name, Learner: fam, Features: len(c.Features),
			Neighborhood: c.Neighborhood, TwoLevel: c.TwoLevel, Ranking: c.Ranking,
		})
	}
	obs.ServeJSON(w, configsResponse{Tier: tier, Presets: infos, Learners: model.Families()})
}

// noStatusWriter suppresses the WriteHeader a JSON helper would issue
// after the caller already wrote a non-200 status.
type noStatusWriter struct{ http.ResponseWriter }

func (noStatusWriter) WriteHeader(int) {}
