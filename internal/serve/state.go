package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// record is the persisted form of a job: jobs/<id>.json under the state
// dir. Results live next to it as results/<id>.json so a restarted server
// can keep serving them.
type record struct {
	ID       string    `json:"id"`
	Spec     JobSpec   `json:"spec"`
	State    JobState  `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`
	Error    string    `json:"error,omitempty"`
	// HasResult marks that results/<id>.json was written before this
	// record went done.
	HasResult bool `json:"has_result,omitempty"`
}

func (s *Server) jobsDir() string    { return filepath.Join(s.opts.StateDir, "jobs") }
func (s *Server) resultsDir() string { return filepath.Join(s.opts.StateDir, "results") }

// resultPath is the persisted result document of a job.
func (s *Server) resultPath(id string) string {
	return filepath.Join(s.resultsDir(), id+".json")
}

// saveJob persists the job's current record; a memory-only server no-ops.
// Persistence failures are logged, not fatal: the job keeps running and
// only restart durability degrades.
func (s *Server) saveJob(job *Job) {
	if s.opts.StateDir == "" {
		return
	}
	s.mu.Lock()
	rec := record{
		ID:        job.ID,
		Spec:      job.Spec,
		State:     job.State,
		Created:   job.Created,
		Started:   job.Started,
		Finished:  job.Finished,
		Error:     job.Err,
		HasResult: job.State == StateDone,
	}
	s.mu.Unlock()
	if err := writeJSONAtomic(filepath.Join(s.jobsDir(), job.ID+".json"), rec); err != nil {
		s.o.Log().Warn("persist job record failed", "job", job.ID, "err", err)
	}
}

// saveResult persists a done job's result document. It runs before the
// done record is written, so a record with HasResult always has its file.
func (s *Server) saveResult(job *Job) {
	if s.opts.StateDir == "" {
		return
	}
	s.mu.Lock()
	res := job.result
	s.mu.Unlock()
	if res == nil {
		return
	}
	if err := writeJSONAtomic(s.resultPath(job.ID), res); err != nil {
		s.o.Log().Warn("persist result failed", "job", job.ID, "err", err)
	}
}

// loadResultRaw reads a persisted result document's bytes for a job whose
// in-memory result is gone (server restarted after the job finished).
func (s *Server) loadResultRaw(id string) ([]byte, error) {
	if s.opts.StateDir == "" {
		return nil, os.ErrNotExist
	}
	return os.ReadFile(s.resultPath(id))
}

// loadState reloads the state directory into the registry and returns the
// jobs to re-enqueue: terminal jobs keep their states, pending jobs resume,
// and jobs persisted as running were interrupted by the previous process's
// death — they are marked so and not re-run (the attack consumed no
// caller-visible state, but silently re-running could double multi-minute
// work; the client decides). Creates the directory layout on first use.
func (s *Server) loadState() ([]*Job, error) {
	if s.opts.StateDir == "" {
		return nil, nil
	}
	for _, dir := range []string{s.jobsDir(), s.resultsDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids)
	var pending, interrupted []*Job
	for _, id := range ids {
		data, err := os.ReadFile(filepath.Join(s.jobsDir(), id+".json"))
		if err != nil {
			return nil, fmt.Errorf("serve: load job %s: %w", id, err)
		}
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, fmt.Errorf("serve: load job %s: %w", id, err)
		}
		job := &Job{
			ID:       rec.ID,
			Spec:     rec.Spec,
			State:    rec.State,
			Created:  rec.Created,
			Started:  rec.Started,
			Finished: rec.Finished,
			Err:      rec.Error,
			done:     make(chan struct{}),
		}
		switch rec.State {
		case StatePending:
			pending = append(pending, job)
		case StateRunning:
			job.State = StateInterrupted
			job.Err = "server restarted while the job was running"
			if job.Finished.IsZero() {
				job.Finished = time.Now()
			}
			close(job.done)
			interrupted = append(interrupted, job)
		default:
			close(job.done)
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if n := idNumber(job.ID); n > s.nextID {
			s.nextID = n
		}
	}
	// Persist the interruption marks before any new work starts.
	for _, job := range interrupted {
		s.saveJob(job)
	}
	if len(s.order) > 0 {
		s.o.Log().Info("state reloaded", "jobs", len(s.order), "resumed", len(pending))
	}
	return pending, nil
}

// idNumber extracts the numeric suffix of a job ID ("j-000042" -> 42).
func idNumber(id string) int {
	num, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0
	}
	return n
}

// writeJSONAtomic writes v to path via a temp file + rename, so readers
// (and crashed writers) never observe a torn document.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
