package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// sweepSpec is the canonical tiny sweep job of the shard tests: one cheap
// configuration over the five-design suite.
func sweepSpec(shard, of int) JobSpec {
	seed := testSeed
	return JobSpec{
		Kind:    KindSweep,
		Layer:   8,
		Scale:   testScale,
		Seed:    &seed,
		Configs: []ConfigSpec{{Preset: "ML-9"}},
		Shard:   shard,
		Of:      of,
	}
}

// TestServeShardedSweepMerge is the service half of the sharded-sweep
// contract: three sharded jobs partition the folds into the server's
// checkpoint, and a later unsharded sweep job merges them into a result
// digest-identical to a server that computed everything itself.
func TestServeShardedSweepMerge(t *testing.T) {
	o := obs.New(obs.Options{Command: "serve-test"})
	s := newTestServer(t, Options{Obs: o, Pool: 3, Queue: 8, CheckpointDir: t.TempDir()})

	shards := make([]*Job, 3)
	for i := range shards {
		job, err := s.Submit(sweepSpec(i+1, 3))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = job
	}
	owned, done := 0, 0
	for i, job := range shards {
		waitTerminal(t, job, 10*time.Minute)
		if st := s.Status(job); st.State != StateDone {
			t.Fatalf("shard job %d state %s, error %q", i+1, st.State, st.Error)
		}
		res, _ := s.Result(job)
		if res.Sweep == nil || res.Sweep.Units == nil {
			t.Fatalf("shard job %d returned no unit statistics", i+1)
		}
		if len(res.Sweep.Configs) != 0 {
			t.Errorf("shard job %d returned aggregates; those belong to the merge job", i+1)
		}
		u := res.Sweep.Units
		if u.Skipped != 0 || u.Recomputed != 0 || u.Done != u.Owned {
			t.Errorf("shard job %d on a fresh checkpoint: %+v", i+1, u)
		}
		owned += u.Owned
		done += u.Done
	}

	merge, err := s.Submit(sweepSpec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, merge, 10*time.Minute)
	if st := s.Status(merge); st.State != StateDone {
		t.Fatalf("merge job state %s, error %q", st.State, st.Error)
	}
	mres, _ := s.Result(merge)
	if mres.Sweep == nil || len(mres.Sweep.Configs) != 1 || mres.Sweep.Units != nil {
		t.Fatalf("merge job result %+v, want one config aggregate and no unit stats", mres.Sweep)
	}
	folds := len(mres.Sweep.Configs[0].Designs)
	if owned != folds || done != folds {
		t.Errorf("3 shards owned %d and computed %d of %d folds", owned, done, folds)
	}
	if got := o.Metrics().Counter("sweep.units.skipped").Value(); got != int64(folds) {
		t.Errorf("merge loaded %d units from the checkpoint, want all %d", got, folds)
	}
	if got := o.Metrics().Counter("sweep.units.done").Value(); got != int64(folds) {
		t.Errorf("%d units computed across the shard jobs, want %d", got, folds)
	}

	// A checkpoint-less server computing the same sweep from scratch agrees
	// on every fold digest.
	direct := newTestServer(t, Options{Pool: 1})
	djob, err := direct.Submit(sweepSpec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, djob, 10*time.Minute)
	if st := direct.Status(djob); st.State != StateDone {
		t.Fatalf("direct job state %s, error %q", st.State, st.Error)
	}
	dres, _ := direct.Result(djob)
	want := dres.Sweep.Configs[0]
	got := mres.Sweep.Configs[0]
	if len(got.Designs) != len(want.Designs) {
		t.Fatalf("merged sweep has %d designs, direct %d", len(got.Designs), len(want.Designs))
	}
	for i := range want.Designs {
		if got.Designs[i].EvalDigest != want.Designs[i].EvalDigest {
			t.Errorf("design %s: merged digest %s != direct %s",
				want.Designs[i].Design, got.Designs[i].EvalDigest, want.Designs[i].EvalDigest)
		}
	}
}

// TestServeShardSpecValidation exercises submission-time rejection of bad
// shard coordinates and checks the shard shows up in job statuses.
func TestServeShardSpecValidation(t *testing.T) {
	noCk := newTestServer(t, Options{Pool: 1, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})
	if _, err := noCk.Submit(sweepSpec(1, 3)); err == nil {
		t.Error("sharded sweep accepted by a server without a checkpoint directory")
	}

	s := newTestServer(t, Options{Pool: 1, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed, CheckpointDir: t.TempDir()})
	bad := []struct {
		name string
		spec JobSpec
	}{
		{"shard on attack", func() JobSpec {
			spec := attackSpec("sb1")
			spec.Shard, spec.Of = 1, 3
			return spec
		}()},
		{"index out of range", sweepSpec(4, 3)},
		{"index without count", sweepSpec(2, 0)},
		{"count without index", sweepSpec(0, 3)},
		{"negative index", sweepSpec(-1, 3)},
	}
	for _, tc := range bad {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: submission unexpectedly accepted", tc.name)
		}
	}

	job, err := s.Submit(sweepSpec(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Status(job).Shard; got != "2/3" {
		t.Errorf("status shard = %q, want \"2/3\"", got)
	}
	waitTerminal(t, job, 30*time.Second)
	plain, err := s.Submit(sweepSpec(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Status(plain).Shard; got != "" {
		t.Errorf("unsharded job status shard = %q, want empty", got)
	}
	waitTerminal(t, plain, 30*time.Second)
}

// TestServeListStateFilter exercises GET /jobs?state=: a matching filter
// keeps only jobs in that state, an empty match serves [] (not null), and
// an unknown state is a 400.
func TestServeListStateFilter(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, Queue: 4, runner: stubRunner})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for i := 0; i < 2; i++ {
		job, err := s.Submit(attackSpec("sb1"))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job, 30*time.Second)
	}

	list := func(query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [4096]byte
		n, _ := resp.Body.Read(buf[:])
		return resp, buf[:n]
	}

	resp, body := list("?state=done")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?state=done status %d: %s", resp.StatusCode, body)
	}
	var statuses []JobStatus
	if err := json.Unmarshal(body, &statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Errorf("?state=done listed %d jobs, want 2", len(statuses))
	}
	for _, st := range statuses {
		if st.State != StateDone {
			t.Errorf("job %s state %s leaked through the done filter", st.ID, st.State)
		}
	}

	resp, body = list("?state=pending")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?state=pending status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 0 {
		t.Errorf("?state=pending listed %d jobs, want 0", len(statuses))
	}
	if string(body) != "[]\n" && string(body) != "[]" {
		t.Errorf("empty filter result body %q, want a JSON array, not null", body)
	}

	resp, body = list("?state=enlightened")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown state status %d: %s", resp.StatusCode, body)
	}
	var apiErr apiError
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Error.Code != "invalid_spec" {
		t.Errorf("unknown state error code %q, want invalid_spec", apiErr.Error.Code)
	}
}
