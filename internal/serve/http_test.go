package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// httpFixture is an httptest server over a job server with the given
// options.
func httpFixture(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.DefaultScale == 0 {
		opts.DefaultScale = testScale
	}
	if opts.DefaultSeed == 0 {
		opts.DefaultSeed = testSeed
	}
	s := newTestServer(t, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues a request and decodes the response body into out (skipped
// when out is nil), returning the response for header/status checks.
func doJSON(t *testing.T, method, url string, body string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp
}

// errCode extracts the error envelope's code from a response body.
func errCode(t *testing.T, resp *http.Response, body string, url string) string {
	t.Helper()
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("%s: error body %q is not the envelope: %v", url, body, err)
	}
	return env.Error.Code
}

// TestHTTPLifecycle walks the documented happy path over real HTTP:
// submit -> 202, poll -> 200, result -> 202 then 200, list, index, designs,
// and the mounted obs endpoints.
func TestHTTPLifecycle(t *testing.T) {
	_, ts := httpFixture(t, Options{Pool: 1, runner: stubRunner})

	var st JobStatus
	resp := doJSON(t, "POST", ts.URL+"/jobs",
		`{"kind":"attack","design":"sb1","config":{"preset":"ML-9"}}`, &st)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("submit content type %q", ct)
	}
	if st.ID == "" || st.Spec.Seed == nil || *st.Spec.Seed != testSeed ||
		st.Spec.Scale != testScale || st.Spec.Layer != 8 {
		t.Fatalf("submit status did not echo the normalized spec: %+v", st)
	}
	if st.Links["result"] != "/jobs/"+st.ID+"/result" {
		t.Errorf("links = %v", st.Links)
	}

	// Poll until done; each poll must return 200 regardless of state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp = doJSON(t, "GET", ts.URL+"/jobs/"+st.ID, "", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll %d, want 200", resp.StatusCode)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job state %s, error %q", st.State, st.Error)
	}
	if st.Started == nil || st.Finished == nil || st.ElapsedNS < 0 {
		t.Errorf("done status missing timestamps: %+v", st)
	}

	var res Result
	resp = doJSON(t, "GET", ts.URL+"/jobs/"+st.ID+"/result", "", &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d, want 200", resp.StatusCode)
	}
	if res.ID != st.ID || res.Attack == nil || res.Attack.EvalDigest != "stub" {
		t.Errorf("result = %+v", res)
	}

	var list []JobStatus
	if resp = doJSON(t, "GET", ts.URL+"/jobs", "", &list); len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list = %+v", list)
	}
	var designs []string
	doJSON(t, "GET", ts.URL+"/designs", "", &designs)
	if len(designs) == 0 || designs[0] != "sb1" {
		t.Errorf("designs = %v", designs)
	}
	for _, path := range []string{"/", "/healthz", "/metrics", "/progress", "/spans"} {
		if resp := doJSON(t, "GET", ts.URL+path, "", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestHTTPResultWhileRunning checks the result endpoint answers 202 with
// the live status while the job is still in flight.
func TestHTTPResultWhileRunning(t *testing.T) {
	s, ts := httpFixture(t, Options{Pool: 1, runner: blockUntilCancelled})
	var st JobStatus
	doJSON(t, "POST", ts.URL+"/jobs",
		`{"kind":"attack","design":"sb1","config":{"preset":"ML-9"}}`, &st)
	job, _ := s.Job(st.ID)
	waitState(t, s, job, StateRunning)

	resp := doJSON(t, "GET", ts.URL+"/jobs/"+st.ID+"/result", "", &st)
	if resp.StatusCode != http.StatusAccepted || st.State != StateRunning {
		t.Errorf("running result = %d state %s, want 202 running", resp.StatusCode, st.State)
	}

	// Cancel over HTTP, then the result endpoint conflicts.
	if resp = doJSON(t, "DELETE", ts.URL+"/jobs/"+st.ID, "", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	waitTerminal(t, job, 30*time.Second)
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+st.ID+"/result", nil)
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(raw.Body)
	raw.Body.Close()
	if raw.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled result status %d, want 409", raw.StatusCode)
	}
	if code := errCode(t, raw, string(body), "result"); code != "conflict" {
		t.Errorf("error code %q, want conflict", code)
	}
}

// TestHTTPErrors exercises every documented error response and its
// envelope code.
func TestHTTPErrors(t *testing.T) {
	s, ts := httpFixture(t, Options{Pool: 1, Queue: 1, runner: blockUntilCancelled})

	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{"POST", "/jobs", `not json`, http.StatusBadRequest, "invalid_spec"},
		{"POST", "/jobs", `{"kind":"attack","design":"sb1","config":{"preset":"ML-9"},"bogus":1}`,
			http.StatusBadRequest, "invalid_spec"}, // unknown fields rejected
		{"POST", "/jobs", `{"kind":"attack","design":"sb1"}`, http.StatusBadRequest, "invalid_spec"},
		{"GET", "/jobs/j-999999", "", http.StatusNotFound, "unknown_job"},
		{"GET", "/jobs/j-999999/result", "", http.StatusNotFound, "unknown_job"},
		{"DELETE", "/jobs/j-999999", "", http.StatusNotFound, "unknown_job"},
	}
	for _, tc := range cases {
		var rd io.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		}
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, rd)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.status, body)
			continue
		}
		if code := errCode(t, resp, string(body), tc.path); code != tc.code {
			t.Errorf("%s %s code %q, want %q", tc.method, tc.path, code, tc.code)
		}
	}

	// Backpressure: park the only worker, fill the queue, then overflow.
	submit := func() (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			bytes.NewReader([]byte(`{"kind":"attack","design":"sb1","config":{"preset":"ML-9"}}`)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}
	resp, body := submit()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	blocker, _ := s.Job(st.ID)
	waitState(t, s, blocker, StateRunning)
	if resp, body = submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit %d: %s", resp.StatusCode, body)
	}
	resp, body = submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit %d, want 429 (%s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code := errCode(t, resp, body, "/jobs"); code != "queue_full" {
		t.Errorf("429 code %q, want queue_full", code)
	}

	// Cancelling a terminal job conflicts over HTTP too.
	s.Cancel(blocker.ID)
	waitTerminal(t, blocker, 30*time.Second)
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+blocker.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("terminal cancel %d, want 409", resp.StatusCode)
	}
	if code := errCode(t, resp, string(body2), "cancel"); code != "conflict" {
		t.Errorf("terminal cancel code %q, want conflict", code)
	}
}

// TestHTTPConfigs checks GET /configs lists every named preset and every
// registered learner family, validates the tier query like /designs, and
// spells out the bagging default instead of the zero-value alias.
func TestHTTPConfigs(t *testing.T) {
	_, ts := httpFixture(t, Options{Pool: 1, runner: stubRunner})

	var doc configsResponse
	if resp := doJSON(t, "GET", ts.URL+"/configs", "", &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /configs = %d, want 200", resp.StatusCode)
	}
	if doc.Tier != "standard" {
		t.Errorf("default tier %q, want standard", doc.Tier)
	}
	byName := map[string]configInfo{}
	for _, p := range doc.Presets {
		if p.Learner == "" {
			t.Errorf("preset %s has an empty learner; the wire form must spell out the default", p.Name)
		}
		byName[p.Name] = p
	}
	for _, name := range []string{"ML-9", "Imp-11", "Imp-11Y", "DL-MLP", "DL-MLP-rank"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("preset %s missing from /configs", name)
		}
	}
	if p := byName["Imp-11"]; p.Learner != "bagging" || p.Features != 11 {
		t.Errorf("Imp-11 = %+v", p)
	}
	if p := byName["DL-MLP-rank"]; p.Learner != "mlp" || !p.Ranking {
		t.Errorf("DL-MLP-rank = %+v", p)
	}
	families := map[string]bool{}
	for _, f := range doc.Learners {
		families[f] = true
	}
	for _, f := range []string{"bagging", "mlp", "logistic"} {
		if !families[f] {
			t.Errorf("family %s missing from /configs learners %v", f, doc.Learners)
		}
	}

	// Explicit tier echoes; unknown tier answers 400 with the envelope.
	if resp := doJSON(t, "GET", ts.URL+"/configs?tier=industrial", "", &doc); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /configs?tier=industrial = %d, want 200", resp.StatusCode)
	}
	if doc.Tier != "industrial" {
		t.Errorf("tier echo %q, want industrial", doc.Tier)
	}
	resp, err := http.Get(ts.URL + "/configs?tier=galactic")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown tier = %d, want 400 (%s)", resp.StatusCode, body)
	}
	if code := errCode(t, resp, string(body), "/configs"); code != "invalid_spec" {
		t.Errorf("unknown tier code %q, want invalid_spec", code)
	}
}

// TestHTTPIndexListsEndpoints checks the index mentions every route.
func TestHTTPIndexListsEndpoints(t *testing.T) {
	_, ts := httpFixture(t, Options{Pool: 1, runner: stubRunner})
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, ep := range []string{"POST /jobs", "GET /jobs/{id}/result", "DELETE /jobs/{id}",
		"GET /designs", "GET /configs", "/metrics", "/progress", "/healthz"} {
		if !strings.Contains(string(body), ep) {
			t.Errorf("index missing %q:\n%s", ep, body)
		}
	}
}
