package serve

import (
	"context"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// JobState is one point of the job lifecycle:
//
//	pending ──> running ──> done
//	   │           ├──────> failed
//	   │           ├──────> cancelled    (DELETE while running)
//	   │           └──────> interrupted  (server died or shut down mid-run)
//	   └──────────────────> cancelled    (DELETE while queued)
//
// done, failed, cancelled, and interrupted are terminal.
type JobState string

const (
	StatePending     JobState = "pending"
	StateRunning     JobState = "running"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCancelled   JobState = "cancelled"
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled || st == StateInterrupted
}

// validState reports whether st names a lifecycle state (the ?state= list
// filter rejects anything else).
func validState(st JobState) bool {
	switch st {
	case StatePending, StateRunning, StateDone, StateFailed, StateCancelled, StateInterrupted:
		return true
	}
	return false
}

// Job is one submitted unit of work. Fields are guarded by the owning
// Server's mutex; read them through Status, Wait, or the Server accessors
// rather than directly from other goroutines.
type Job struct {
	ID       string
	Spec     JobSpec
	State    JobState
	Stage    string // coarse progress label while running
	Created  time.Time
	Started  time.Time
	Finished time.Time
	Err      string

	result *Result
	cancel context.CancelFunc
	done   chan struct{} // closed on entering a terminal state
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JobStatus is the wire form of a job returned by GET /jobs and
// GET /jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	Stage string   `json:"stage,omitempty"`
	// Shard is the sweep partition this job computes ("i/n"); empty for
	// unsharded jobs.
	Shard    string     `json:"shard,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// ElapsedNS is the wall-clock run time so far (running) or total
	// (terminal); 0 while pending.
	ElapsedNS int64   `json:"elapsed_ns,omitempty"`
	Error     string  `json:"error,omitempty"`
	Spec      JobSpec `json:"spec"`
	// Progress carries the job's live obs.Progress snapshots (the
	// "job.<id>" tracker plus any engine trackers while running).
	Progress []obs.ProgressStatus `json:"progress,omitempty"`
	Links    map[string]string    `json:"links"`
}

// Status snapshots the job for the API.
func (s *Server) Status(job *Job) JobStatus {
	s.mu.Lock()
	st := JobStatus{
		ID:      job.ID,
		Kind:    job.Spec.Kind,
		State:   job.State,
		Stage:   job.Stage,
		Shard:   sweep.Shard{Index: job.Spec.Shard, Count: job.Spec.Of}.String(),
		Created: job.Created,
		Error:   job.Err,
		Spec:    job.Spec,
		Links: map[string]string{
			"self":   "/jobs/" + job.ID,
			"result": "/jobs/" + job.ID + "/result",
		},
	}
	if !job.Started.IsZero() {
		t := job.Started
		st.Started = &t
		switch {
		case !job.Finished.IsZero():
			st.ElapsedNS = int64(job.Finished.Sub(job.Started))
		default:
			st.ElapsedNS = int64(time.Since(job.Started))
		}
	}
	if !job.Finished.IsZero() {
		t := job.Finished
		st.Finished = &t
	}
	running := job.State == StateRunning
	s.mu.Unlock()
	if running {
		prefix := "job." + job.ID
		for _, p := range s.o.ProgressStatuses() {
			if p.Name == prefix || strings.HasPrefix(p.Name, prefix+".") {
				st.Progress = append(st.Progress, p)
			}
		}
	}
	return st
}

// Result returns the job's result document once done; ok is false before
// the job reaches StateDone. On a server restarted from a state dir the
// in-memory document may be gone — the HTTP layer then serves the
// persisted results/<id>.json instead.
func (s *Server) Result(job *Job) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.State != StateDone || job.result == nil {
		return nil, false
	}
	return job.result, true
}
