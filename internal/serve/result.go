package serve

import (
	"fmt"

	"repro/internal/attack"
)

// Result is the document served by GET /jobs/{id}/result: the normalized
// spec that produced it plus exactly one kind-specific section. It is what
// gets persisted as results/<id>.json.
type Result struct {
	ID        string  `json:"id"`
	Kind      JobKind `json:"kind"`
	Spec      JobSpec `json:"spec"`
	ElapsedNS int64   `json:"elapsed_ns"`

	Train  *TrainResult  `json:"train,omitempty"`
	Attack *AttackResult `json:"attack,omitempty"`
	Sweep  *SweepResult  `json:"sweep,omitempty"`
}

// TrainResult describes the trained artifact of a train job.
type TrainResult struct {
	SpecHash string `json:"spec_hash"`
	// Artifact is the persisted artifact's path under the server's state
	// dir; empty on a memory-only server.
	Artifact      string `json:"artifact,omitempty"`
	Level         int    `json:"level"`
	Trees         int    `json:"trees"`
	Samples       int    `json:"samples"`
	Level2Trees   int    `json:"level2_trees,omitempty"`
	Level2Samples int    `json:"level2_samples,omitempty"`
	// Cached reports whether the shared store served the artifact without
	// training (a prior job or a coalesced concurrent one trained it).
	Cached  bool  `json:"cached"`
	TrainNS int64 `json:"train_ns"`
}

// AttackResult is the outcome of an attack or proximity job against one
// held-out design.
type AttackResult struct {
	Design string `json:"design"`
	Layer  int    `json:"layer"`
	Config string `json:"config"`
	VPins  int    `json:"vpins"`
	// RadiusNorm is the Imp neighborhood radius as a fraction of die width
	// (-1 without the improvement).
	RadiusNorm  float64 `json:"radius_norm"`
	TrainNS     int64   `json:"train_ns"`
	TestNS      int64   `json:"test_ns"`
	PairsScored int64   `json:"pairs_scored"`
	MaxAccuracy float64 `json:"max_accuracy"`
	// AccuracyAtK maps |LoC| sizes ("1", "2", "5", ...) to attack accuracy.
	AccuracyAtK map[string]float64 `json:"accuracy_at_k"`
	// EvalDigest is the canonical content hash of the full evaluation
	// (attack.Evaluation.Digest): equal digests mean bit-identical scored
	// candidate lists — the served result matches an in-process
	// attack.RunTarget of the same spec exactly.
	EvalDigest string `json:"eval_digest"`
	// Evaluation carries the full scored candidate lists.
	Evaluation *Eval            `json:"evaluation,omitempty"`
	Proximity  *ProximityResult `json:"proximity,omitempty"`
}

// Eval is the wire form of an attack.Evaluation's data: ground truth,
// scored true-match probabilities (-1 = never scored), and the retained
// candidate list of every v-pin, sorted by descending probability.
type Eval struct {
	N      int       `json:"n"`
	Truth  []int32   `json:"truth"`
	TruthP []float32 `json:"truth_p"`
	Cands  [][]Cand  `json:"candidates"`
}

// Cand is one scored candidate: partner v-pin, probability, and
// ManhattanVpin distance.
type Cand struct {
	Other int32   `json:"other"`
	P     float32 `json:"p"`
	D     float32 `json:"d"`
}

// ProximityResult reports the validation-based proximity attack.
type ProximityResult struct {
	Success      float64 `json:"success"`
	FixedSuccess float64 `json:"fixed_success"`
	BestFrac     float64 `json:"best_frac"`
	ValidationNS int64   `json:"validation_ns"`
}

// SweepResult aggregates a full leave-one-out sweep per configuration. A
// sharded sweep job (spec shard/of set) reports only its unit statistics:
// its folds live in the server's checkpoint, and a later full sweep job
// merges them into Configs.
type SweepResult struct {
	Layer int `json:"layer"`
	// Shard and Of echo a sharded job's partition (0/0 for a full sweep).
	Shard int `json:"shard,omitempty"`
	Of    int `json:"of,omitempty"`
	// Units summarises a sharded job's work; nil for a full sweep.
	Units   *UnitStats          `json:"units,omitempty"`
	Configs []SweepConfigResult `json:"configs,omitempty"`
}

// UnitStats counts a sharded sweep job's work units.
type UnitStats struct {
	// Owned is how many of the sweep's units this shard was responsible
	// for under the content-addressed partition.
	Owned int `json:"owned"`
	// Done units ran the attack engine (includes Recomputed).
	Done int `json:"done"`
	// Skipped units were already checkpointed — a resumed job finding its
	// earlier work, or another process sharing the directory.
	Skipped int `json:"skipped"`
	// Recomputed units had a corrupt checkpoint file discarded first.
	Recomputed int `json:"recomputed"`
}

// SweepConfigResult is one configuration's leave-one-out outcome: a
// per-design summary plus the aggregate LoC/accuracy trade-off curve.
type SweepConfigResult struct {
	Config      string          `json:"config"`
	Designs     []DesignSummary `json:"designs"`
	Curve       []CurvePoint    `json:"curve"`
	MeanTrainNS int64           `json:"mean_train_ns"`
	MeanTestNS  int64           `json:"mean_test_ns"`
}

// DesignSummary is the per-design slice of a sweep (no full candidate
// lists; submit an attack job for one design to fetch those).
type DesignSummary struct {
	Design      string  `json:"design"`
	VPins       int     `json:"vpins"`
	MaxAccuracy float64 `json:"max_accuracy"`
	EvalDigest  string  `json:"eval_digest"`
}

// CurvePoint is one aggregate trade-off sample: mean accuracy across
// designs with each design's threshold tuned to the LoC fraction.
type CurvePoint struct {
	LoCFrac  float64 `json:"loc_frac"`
	Accuracy float64 `json:"accuracy"`
}

// accuracyKs are the |LoC| sizes reported in AccuracyAtK, matching the
// splitattack command's table.
var accuracyKs = []int{1, 2, 5, 10, 20, 50, 100}

// attackResult flattens an evaluation into its wire form.
func attackResult(cfg attack.Config, layer int, ev *attack.Evaluation, radiusNorm float64) *AttackResult {
	res := &AttackResult{
		Design:      ev.Design,
		Layer:       layer,
		Config:      cfg.Name,
		VPins:       ev.N,
		RadiusNorm:  radiusNorm,
		TrainNS:     int64(ev.TrainDur),
		TestNS:      int64(ev.TestDur),
		PairsScored: ev.PairsScored,
		MaxAccuracy: ev.MaxAccuracy(),
		AccuracyAtK: map[string]float64{},
		EvalDigest:  ev.Digest(),
		Evaluation:  evalWire(ev),
	}
	for _, k := range accuracyKs {
		if k > ev.N {
			break
		}
		res.AccuracyAtK[fmt.Sprintf("%d", k)] = ev.AccuracyAtK(k)
	}
	return res
}

// evalWire copies the evaluation's data sections into the wire form.
func evalWire(ev *attack.Evaluation) *Eval {
	out := &Eval{
		N:      ev.N,
		Truth:  ev.Truth,
		TruthP: ev.TruthP,
		Cands:  make([][]Cand, len(ev.Cands)),
	}
	for a, cands := range ev.Cands {
		row := make([]Cand, len(cands))
		for i, c := range cands {
			row[i] = Cand{Other: c.Other, P: c.P, D: c.D}
		}
		out.Cands[a] = row
	}
	return out
}
