package serve

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/ml"
	"repro/internal/sweep"
)

// JobKind selects which pipeline a job runs.
type JobKind string

const (
	// KindTrain trains the leave-one-out model for the held-out design and
	// returns the artifact metadata (persisting the artifact when the
	// server has a state dir).
	KindTrain JobKind = "train"
	// KindAttack runs the single-target attack: train on every other
	// design, score the held-out one, return the Evaluation.
	KindAttack JobKind = "attack"
	// KindProximity is KindAttack plus the validation-based proximity
	// attack over the evaluation.
	KindProximity JobKind = "proximity"
	// KindSweep runs the full leave-one-out attack over every design for
	// each listed configuration and returns aggregate trade-off curves.
	KindSweep JobKind = "sweep"
)

// JobSpec is the body of POST /jobs: what to run, on which design shape,
// with which attack configuration. Zero scale, seed, and layer inherit the
// server defaults (layer 8); the normalized spec — defaults filled in — is
// echoed back in statuses and results, so a job is reproducible from its
// own record.
type JobSpec struct {
	Kind JobKind `json:"kind"`
	// Design is the held-out target (train/attack/proximity): one of the
	// synthetic suite's design names ("sb1", "sb5", "sb10", "sb12",
	// "sb18"). Ignored for sweep jobs, which target every design in turn.
	Design string `json:"design,omitempty"`
	// Layer is the split (via) layer, 1..8; 0 selects 8.
	Layer int `json:"layer,omitempty"`
	// Tier is the synthetic-suite tier: "standard" (five sb* designs) or
	// "industrial" (three 100k+-cell sbx* designs); omitted inherits the
	// server's default.
	Tier string `json:"tier,omitempty"`
	// Scale is the synthetic-suite scale factor; 0 inherits the server's
	// default.
	Scale float64 `json:"scale,omitempty"`
	// Seed roots all randomness of the job; omitted inherits the server's
	// default. Jobs with equal normalized specs produce bit-identical
	// results.
	Seed *int64 `json:"seed,omitempty"`
	// Config is the attack configuration (train/attack/proximity).
	Config *ConfigSpec `json:"config,omitempty"`
	// Configs are the sweep's configurations; empty selects the paper's
	// four standard configurations.
	Configs []ConfigSpec `json:"configs,omitempty"`
	// Shard and Of partition a sweep job's leave-one-out folds across
	// cooperating jobs ("shard/of", 1-based): the job computes only the
	// work units it owns, writes them to the server's checkpoint
	// directory, and returns unit statistics instead of aggregates. A
	// later sweep job without shard/of merges every checkpointed fold into
	// the full result, bit-identical to an unsharded run. Sweep jobs only;
	// sharding requires the server to have a checkpoint directory.
	Shard int `json:"shard,omitempty"`
	Of    int `json:"of,omitempty"`
}

// ConfigSpec is the model.TrainOptions-shaped wire form of an attack
// configuration: start from a named preset and/or set fields explicitly.
// Pointer fields distinguish "absent" from "false" so presets can be
// toggled off.
type ConfigSpec struct {
	// Preset is a standard configuration name ("ML-9", "Imp-9", "Imp-7",
	// "Imp-11", or a "Y" variant like "Imp-11Y"); the remaining fields
	// override it. Without a preset, Name is required and unset fields take
	// the engine defaults.
	Preset string `json:"preset,omitempty"`
	// Name labels the configuration in results (defaults to the preset's).
	Name string `json:"name,omitempty"`
	// Features are the feature indices trees may split on.
	Features []int `json:"features,omitempty"`
	// Neighborhood toggles the Imp scalability improvement.
	Neighborhood *bool `json:"neighborhood,omitempty"`
	// NeighborQuantile is the CDF cut defining the neighborhood radius
	// (0 = the paper's 0.90).
	NeighborQuantile float64 `json:"neighbor_quantile,omitempty"`
	// LimitDiffVpinY toggles the "Y" refinement (split layer 8 only).
	LimitDiffVpinY *bool `json:"limit_diff_vpin_y,omitempty"`
	// TwoLevel toggles two-level pruning.
	TwoLevel *bool `json:"two_level,omitempty"`
	// Base is the Bagging base classifier: "reptree" (default) or
	// "randomtree".
	Base string `json:"base,omitempty"`
	// NumTrees is the ensemble size (0 = Weka default for the base).
	NumTrees int `json:"num_trees,omitempty"`
	// MaxLoCFrac bounds retained per-v-pin candidate lists (0 = 0.15).
	MaxLoCFrac float64 `json:"max_loc_frac,omitempty"`
	// MaxLoCCount additionally caps retained lists at an absolute length
	// (0 = no absolute cap) — the memory bound for industrial-tier jobs.
	MaxLoCCount int `json:"max_loc_count,omitempty"`
	// ShardVpins is the spatial-region size of the streamed scoring stage
	// (0 = automatic). Results are bit-identical for every value.
	ShardVpins int `json:"shard_vpins,omitempty"`
	// TrainCap bounds training samples (0 = unlimited).
	TrainCap int `json:"train_cap,omitempty"`
	// Learner selects the learner family by registry name ("bagging" —
	// the default — "mlp", or "logistic"); unknown names are rejected at
	// submission time. See GET /configs for the registered families.
	Learner string `json:"learner,omitempty"`
	// MLPHidden, MLPEpochs, and MLPRate tune the MLP family (0 = the
	// engine defaults 16/30/0.05); other families ignore them.
	MLPHidden int     `json:"mlp_hidden,omitempty"`
	MLPEpochs int     `json:"mlp_epochs,omitempty"`
	MLPRate   float64 `json:"mlp_rate,omitempty"`
	// Ranking toggles the list-wise ranking head (softmax over each
	// v-pin's candidate list; rankings and accuracy metrics unchanged).
	Ranking *bool `json:"ranking,omitempty"`
	// ScalarScoring disables the batched scoring fast path (results are
	// bit-identical either way; this is the slow correctness oracle).
	ScalarScoring bool `json:"scalar_scoring,omitempty"`
}

// resolve turns the wire form into an engine configuration.
func (cs ConfigSpec) resolve() (attack.Config, error) {
	var cfg attack.Config
	switch {
	case cs.Preset != "":
		c, ok := attack.ConfigByName(cs.Preset)
		if !ok {
			return cfg, fmt.Errorf("unknown config preset %q", cs.Preset)
		}
		cfg = c
	case cs.Name != "":
		cfg = attack.Config{Name: cs.Name}
	default:
		return cfg, errors.New("config needs a preset or a name")
	}
	if cs.Name != "" {
		cfg.Name = cs.Name
	}
	if len(cs.Features) > 0 {
		cfg.Features = cs.Features
	}
	if cs.Neighborhood != nil {
		cfg.Neighborhood = *cs.Neighborhood
	}
	if cs.NeighborQuantile != 0 {
		cfg.NeighborQuantile = cs.NeighborQuantile
	}
	if cs.LimitDiffVpinY != nil {
		cfg.LimitDiffVpinY = *cs.LimitDiffVpinY
	}
	if cs.TwoLevel != nil {
		cfg.TwoLevel = *cs.TwoLevel
	}
	switch cs.Base {
	case "", "reptree":
		// REPTree is the zero TreeKind; presets already carry it.
	case "randomtree":
		cfg.BaseKind = ml.RandomTree
	default:
		return cfg, fmt.Errorf("unknown base %q (want reptree or randomtree)", cs.Base)
	}
	if cs.NumTrees > 0 {
		cfg.NumTrees = cs.NumTrees
	}
	if cs.MaxLoCFrac != 0 {
		cfg.MaxLoCFrac = cs.MaxLoCFrac
	}
	if cs.MaxLoCCount != 0 {
		cfg.MaxLoCCount = cs.MaxLoCCount
	}
	if cs.ShardVpins != 0 {
		cfg.ShardVpins = cs.ShardVpins
	}
	if cs.TrainCap != 0 {
		cfg.TrainCap = cs.TrainCap
	}
	if cs.Learner != "" {
		cfg.Family = cs.Learner
	}
	if cs.MLPHidden != 0 {
		cfg.MLPHidden = cs.MLPHidden
	}
	if cs.MLPEpochs != 0 {
		cfg.MLPEpochs = cs.MLPEpochs
	}
	if cs.MLPRate != 0 {
		cfg.MLPRate = cs.MLPRate
	}
	if cs.Ranking != nil {
		cfg.Ranking = *cs.Ranking
	}
	if cs.ScalarScoring {
		cfg.ScalarScoring = true
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// normalize fills server defaults into a submitted spec and validates it
// completely, so every rejection happens at submission time with a 400
// rather than as a failed job.
func (s *Server) normalize(spec JobSpec) (JobSpec, error) {
	switch spec.Kind {
	case KindTrain, KindAttack, KindProximity, KindSweep:
	case "":
		return spec, errors.New("spec needs a kind: train, attack, proximity, or sweep")
	default:
		return spec, fmt.Errorf("unknown kind %q (want train, attack, proximity, or sweep)", spec.Kind)
	}
	if spec.Layer == 0 {
		spec.Layer = 8
	}
	if spec.Layer < 1 || spec.Layer > 8 {
		return spec, fmt.Errorf("layer %d out of range 1..8", spec.Layer)
	}
	if spec.Tier == "" {
		spec.Tier = s.opts.DefaultTier
	}
	if !layout.ValidTier(spec.Tier) {
		return spec, fmt.Errorf("unknown tier %q (want %v)", spec.Tier, layout.Tiers())
	}
	if spec.Scale == 0 {
		spec.Scale = s.opts.DefaultScale
	}
	if spec.Scale <= 0 {
		return spec, fmt.Errorf("scale %g must be positive", spec.Scale)
	}
	if spec.Seed == nil {
		seed := s.opts.DefaultSeed
		spec.Seed = &seed
	}
	if spec.Shard != 0 || spec.Of != 0 {
		if spec.Kind != KindSweep {
			return spec, fmt.Errorf("%s jobs cannot shard (shard/of applies to sweep jobs only)", spec.Kind)
		}
		sh := sweep.Shard{Index: spec.Shard, Count: spec.Of}
		if err := sh.Validate(); err != nil {
			return spec, err
		}
		if s.ck == nil {
			return spec, errors.New("sharded sweep jobs need a server checkpoint directory (start splitserved with -checkpoint or -state)")
		}
	}
	if spec.Kind == KindSweep {
		spec.Design = ""
		if spec.Config != nil {
			return spec, errors.New("sweep jobs take configs, not config")
		}
		if len(spec.Configs) == 0 {
			for _, c := range attack.StandardConfigs() {
				spec.Configs = append(spec.Configs, ConfigSpec{Preset: c.Name})
			}
		}
		for i, cs := range spec.Configs {
			if _, err := cs.resolve(); err != nil {
				return spec, fmt.Errorf("configs[%d]: %w", i, err)
			}
		}
		return spec, nil
	}
	if len(spec.Configs) > 0 {
		return spec, fmt.Errorf("%s jobs take config, not configs", spec.Kind)
	}
	if spec.Config == nil {
		return spec, fmt.Errorf("%s jobs need a config", spec.Kind)
	}
	if _, err := spec.Config.resolve(); err != nil {
		return spec, err
	}
	if spec.Design == "" {
		return spec, fmt.Errorf("%s jobs need a target design", spec.Kind)
	}
	names := suiteDesigns(spec.Tier, spec.Scale, *spec.Seed)
	for _, n := range names {
		if n == spec.Design {
			return spec, nil
		}
	}
	return spec, fmt.Errorf("unknown design %q (%s tier has %v)", spec.Design, spec.Tier, names)
}

// suiteDesigns lists the design names of the synthetic suite at one
// (tier, scale, seed) without generating it.
func suiteDesigns(tier string, scale float64, seed int64) []string {
	profiles := layout.SuiteProfiles(layout.SuiteConfig{Tier: tier, Scale: scale, Seed: seed})
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}
