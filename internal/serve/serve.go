// Package serve is the attack-as-a-service layer: a JSON-over-HTTP job
// server exposing the engine's train / attack / proximity / sweep stages as
// asynchronous jobs. A client POSTs a JobSpec, receives a job ID, polls the
// job's status (live obs.Progress snapshots included), and fetches the
// Result once the job is done — an Evaluation served this way is
// bit-identical to the same configuration run in-process through
// attack.RunTarget.
//
// # Concurrency contract
//
// Jobs run on a bounded worker pool of Options.Pool goroutines; admission
// is a bounded queue of Options.Queue pending jobs, and a full queue
// rejects the submission (HTTP 429 with Retry-After) instead of buffering
// without bound. Each running job owns a context cancelled by DELETE
// /jobs/{id}: cancellation is observed at stage boundaries (between
// instance preparation, training, scoring, proximity, and sweep
// configurations) and frees the worker slot immediately — a computation
// abandoned mid-stage finishes on its own goroutine and its result is
// discarded. All jobs share one warm model.Store, so concurrent
// submissions of the same spec coalesce into exactly one training
// (singleflight), and one prepared-instance cache per (scale, seed, layer),
// so the synthetic suite is generated and indexed once per shape. Results
// are bit-identical at any pool size, queue depth, or submission
// interleaving: every job's randomness derives from its own spec's seed
// alone.
//
// # Persistence
//
// With Options.StateDir set, every job transition is persisted as
// jobs/<id>.json and every result as results/<id>.json under the
// directory. A restarted server reloads the directory: terminal jobs keep
// their states and results, pending jobs are re-enqueued and run again,
// and jobs that were running when the process died are marked
// "interrupted" (the client resubmits). Without a state dir the server is
// memory-only.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/split"
	"repro/internal/sweep"
)

// Defaults for Options fields left zero.
const (
	DefaultPool  = 2
	DefaultQueue = 16
)

// Options configures a Server.
type Options struct {
	// Obs receives the server's logs, metrics, progress trackers, and
	// spans; its telemetry endpoints are mounted on the server's mux. Nil
	// creates a fresh enabled context.
	Obs *obs.Context
	// Store is the shared trained-artifact cache; nil creates a
	// memory-only store. Concurrent same-spec jobs coalesce on it.
	Store *model.Store
	// Workers bounds the engine goroutines of each job (0 = GOMAXPROCS).
	// With Pool > 1 concurrently running jobs the pools add up; size
	// Workers accordingly.
	Workers int
	// Pool is the number of concurrently running jobs (0 = DefaultPool).
	Pool int
	// Queue bounds the pending-job queue (0 = DefaultQueue); submissions
	// beyond it are rejected with ErrQueueFull.
	Queue int
	// StateDir enables job persistence (see the package doc); empty runs
	// memory-only.
	StateDir string
	// CheckpointDir is the sweep checkpoint directory of per-fold partial
	// results (see internal/sweep). Sharded sweep jobs require it; full
	// sweep jobs use it, when present, to load folds already computed —
	// by earlier jobs, concurrent shards, or `experiments -shard` workers
	// sharing the directory — which is the merge path. Empty defaults to
	// StateDir/checkpoints when StateDir is set, else checkpointing is off.
	CheckpointDir string
	// DefaultTier, DefaultScale, and DefaultSeed fill job specs that omit
	// the suite tier, scale, or seed ("" selects layout.TierStandard, 0
	// selects 1.0 and 1).
	DefaultTier  string
	DefaultScale float64
	DefaultSeed  int64

	// runner replaces the job execution function in tests.
	runner func(ctx context.Context, s *Server, job *Job) (*Result, error)
}

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// Server is the job service: a bounded worker pool over a registry of
// jobs, a shared artifact store, and a prepared-instance cache. Create
// with New, expose with Handler, stop with Close.
type Server struct {
	opts  Options
	o     *obs.Context
	store *model.Store
	// ck is the sweep checkpoint (nil without a checkpoint dir).
	ck *sweep.Checkpoint

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	instMu sync.Mutex
	insts  map[instKey]*instEntry
}

// instKey identifies one prepared suite shape.
type instKey struct {
	tier  string
	scale float64
	seed  int64
	layer int
}

// instEntry is one once-built instance list concurrent jobs share.
type instEntry struct {
	once  sync.Once
	insts []*attack.Instance
	err   error
}

// New builds the server, reloads the state directory when one is
// configured (re-enqueueing pending jobs, marking previously running ones
// interrupted), and starts the worker pool.
func New(opts Options) (*Server, error) {
	if opts.Obs == nil {
		opts.Obs = obs.New(obs.Options{Command: "splitserved"})
	}
	if opts.Store == nil {
		opts.Store = model.NewStore(0, "")
	}
	if opts.Pool <= 0 {
		opts.Pool = DefaultPool
	}
	if opts.Queue <= 0 {
		opts.Queue = DefaultQueue
	}
	if opts.DefaultTier == "" {
		opts.DefaultTier = layout.TierStandard
	}
	if !layout.ValidTier(opts.DefaultTier) {
		return nil, fmt.Errorf("serve: unknown default tier %q (want %v)", opts.DefaultTier, layout.Tiers())
	}
	if opts.DefaultScale <= 0 {
		opts.DefaultScale = 1.0
	}
	if opts.DefaultSeed == 0 {
		opts.DefaultSeed = 1
	}
	if opts.runner == nil {
		opts.runner = execute
	}
	if opts.CheckpointDir == "" && opts.StateDir != "" {
		opts.CheckpointDir = filepath.Join(opts.StateDir, "checkpoints")
	}
	s := &Server{
		opts:  opts,
		o:     opts.Obs,
		store: opts.Store,
		jobs:  make(map[string]*Job),
		insts: make(map[instKey]*instEntry),
	}
	if opts.CheckpointDir != "" {
		ck, err := sweep.Open(opts.CheckpointDir)
		if err != nil {
			return nil, err
		}
		s.ck = ck
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	pending, err := s.loadState()
	if err != nil {
		return nil, err
	}
	// The queue must hold every reloaded pending job or resume would drop
	// some; live submissions are still bounded by opts.Queue afterwards.
	s.queue = make(chan *Job, max(opts.Queue, len(pending)))
	for _, job := range pending {
		s.queue <- job
	}
	s.queueDepth()
	for i := 0; i < opts.Pool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Obs returns the server's observability context.
func (s *Server) Obs() *obs.Context { return s.o }

// Close stops the server: no further jobs start, the contexts of running
// jobs are cancelled (they finish as "interrupted", persisted when a state
// dir is configured), and the worker pool drains. Pending jobs stay
// pending — a restart with the same state dir resumes them.
func (s *Server) Close() error {
	s.baseCancel()
	s.wg.Wait()
	return nil
}

// Submit validates, registers, and enqueues a job, returning it in state
// pending. A full queue returns ErrQueueFull and registers nothing.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec, err := s.normalize(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j-%06d", s.nextID),
		Spec:    spec,
		State:   StatePending,
		Created: time.Now(),
		done:    make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	select {
	case s.queue <- job:
	default:
		s.mu.Lock()
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.o.Metrics().Counter("serve.jobs.rejected").Inc()
		return nil, ErrQueueFull
	}
	s.queueDepth()
	s.saveJob(job)
	s.o.Metrics().Counter("serve.jobs.submitted").Inc()
	s.o.Log().Info("job submitted", "job", job.ID, "kind", spec.Kind)
	return job, nil
}

// Job returns the registered job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// Jobs lists every registered job in submission order (reloaded jobs
// first, ordered by ID).
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Cancel cancels the job: a pending job goes terminal immediately, a
// running job has its context cancelled and goes terminal as soon as the
// worker observes it (promptly — see the package doc). Cancelling a
// terminal job reports ErrTerminal.
func (s *Server) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrUnknownJob
	}
	switch job.State {
	case StatePending:
		job.State = StateCancelled
		job.Finished = time.Now()
		close(job.done)
		s.mu.Unlock()
		s.saveJob(job)
		s.o.Metrics().Counter("serve.jobs.cancelled").Inc()
	case StateRunning:
		cancel := job.cancel
		s.mu.Unlock()
		cancel()
	default:
		s.mu.Unlock()
		return job, ErrTerminal
	}
	s.o.Log().Info("job cancel requested", "job", id)
	return job, nil
}

// ErrUnknownJob and ErrTerminal are Cancel's failure modes; the HTTP layer
// maps them to 404 and 409.
var (
	ErrUnknownJob = errors.New("serve: unknown job")
	ErrTerminal   = errors.New("serve: job already terminal")
)

// worker runs queued jobs until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case job := <-s.queue:
			s.queueDepth()
			s.runOne(job)
		}
	}
}

// runOne drives one job from pending to a terminal state without holding
// the worker slot past cancellation: the job body runs on its own
// goroutine, and the worker waits for whichever comes first — completion
// or the job's context.
func (s *Server) runOne(job *Job) {
	if s.baseCtx.Err() != nil {
		// Shutting down: leave the job pending for the next start.
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	s.mu.Lock()
	if job.State != StatePending { // cancelled while queued
		s.mu.Unlock()
		return
	}
	job.State = StateRunning
	job.Started = time.Now()
	job.cancel = cancel
	s.mu.Unlock()
	s.saveJob(job)
	s.o.Metrics().Counter("serve.jobs.started").Inc()
	s.o.Log().Info("job started", "job", job.ID, "kind", job.Spec.Kind)

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := s.opts.runner(ctx, s, job)
		ch <- outcome{res, err}
	}()
	select {
	case out := <-ch:
		s.finish(job, out.res, out.err)
	case <-ctx.Done():
		// Cancelled (or shutdown): free the slot now. The abandoned
		// computation finishes on its goroutine; finish ignores late
		// results because the job is already terminal.
		s.finish(job, nil, ctx.Err())
	}
}

// finish moves a running job to its terminal state and persists it. Late
// calls for an already-terminal job (the detached goroutine of a cancelled
// run completing) are discarded.
func (s *Server) finish(job *Job, res *Result, err error) {
	s.mu.Lock()
	if job.State != StateRunning {
		s.mu.Unlock()
		return
	}
	job.Finished = time.Now()
	var counter string
	switch {
	case err == nil:
		job.State = StateDone
		job.result = res
		counter = "serve.jobs.done"
	case errors.Is(err, context.Canceled) && s.baseCtx.Err() != nil:
		job.State = StateInterrupted
		job.Err = "server shut down while the job was running"
		counter = "serve.jobs.interrupted"
	case errors.Is(err, context.Canceled):
		job.State = StateCancelled
		job.Err = "cancelled"
		counter = "serve.jobs.cancelled"
	default:
		job.State = StateFailed
		job.Err = err.Error()
		counter = "serve.jobs.failed"
	}
	state := job.State
	close(job.done)
	s.mu.Unlock()
	if state == StateDone {
		s.saveResult(job)
	}
	s.saveJob(job)
	s.o.Metrics().Counter(counter).Inc()
	s.o.Log().Info("job finished", "job", job.ID, "state", string(state),
		"elapsed", job.Finished.Sub(job.Started))
}

// setStage updates the job's coarse stage label shown in status polls.
func (s *Server) setStage(job *Job, stage string) {
	s.mu.Lock()
	job.Stage = stage
	s.mu.Unlock()
}

// queueDepth refreshes the pending-queue gauge.
func (s *Server) queueDepth() {
	s.o.Metrics().Gauge("serve.queue.depth").Set(float64(len(s.queue)))
}

// instances returns the prepared attack instances for one suite shape,
// building them once and sharing them across jobs; lookups feed the
// "serve.instances" cache counters. Instances are read-only after
// construction and safe to share between concurrent runs.
func (s *Server) instances(tier string, scale float64, seed int64, layer int) ([]*attack.Instance, error) {
	key := instKey{tier: tier, scale: scale, seed: seed, layer: layer}
	s.instMu.Lock()
	e, ok := s.insts[key]
	if !ok {
		e = &instEntry{}
		s.insts[key] = e
	}
	s.instMu.Unlock()
	hit := true
	e.once.Do(func() {
		hit = false
		designs, err := layout.GenerateSuiteObs(s.o, layout.SuiteConfig{
			Tier: tier, Scale: scale, Seed: seed, Workers: s.opts.Workers})
		if err != nil {
			e.err = err
			return
		}
		chs := make([]*split.Challenge, len(designs))
		for i, d := range designs {
			if chs[i], err = split.NewChallengeObs(s.o, d, layer); err != nil {
				e.err = err
				return
			}
		}
		e.insts = attack.NewInstancesWorkers(chs, s.opts.Workers)
	})
	s.o.Metrics().Cache("serve.instances").Lookup(hit)
	return e.insts, e.err
}
