package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// execute runs one job end to end. Cancellation is checked at every stage
// boundary; within a stage the engine runs to completion (the worker slot
// is freed anyway — see Server.runOne). A "job.<id>" progress tracker
// counts the job's coarse stages for status polls and /progress.
func execute(ctx context.Context, s *Server, job *Job) (*Result, error) {
	spec := job.Spec
	start := time.Now()
	prog := s.o.NewProgress("job."+job.ID, int64(stages(spec)))
	defer prog.Finish()

	s.setStage(job, "instances")
	insts, err := s.instances(spec.Tier, spec.Scale, *spec.Seed, spec.Layer)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{ID: job.ID, Kind: spec.Kind, Spec: spec}
	switch spec.Kind {
	case KindTrain:
		res.Train, err = s.runTrain(job, spec, insts, prog)
	case KindAttack, KindProximity:
		res.Attack, err = s.runAttack(ctx, job, spec, insts, prog)
	case KindSweep:
		res.Sweep, err = s.runSweep(ctx, job, spec, insts, prog)
	default:
		err = fmt.Errorf("serve: unknown kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	res.ElapsedNS = int64(time.Since(start))
	return res, nil
}

// stages is the coarse step count of the job's progress tracker.
func stages(spec JobSpec) int {
	switch spec.Kind {
	case KindProximity:
		return 3 // instances, attack, proximity
	case KindSweep:
		return 1 + len(spec.Configs)
	default:
		return 2 // instances, train or attack
	}
}

// engineCfg wires a resolved configuration to the server's shared
// resources: the job's seed, the per-job engine worker bound, the obs
// context, and the coalescing artifact store.
func (s *Server) engineCfg(cfg attack.Config, spec JobSpec) attack.Config {
	cfg.Seed = *spec.Seed
	cfg.Workers = s.opts.Workers
	cfg.Obs = s.o
	cfg.Models = s.store
	return cfg
}

// targetIndex resolves the held-out design's instance index.
func targetIndex(insts []*attack.Instance, design string) (int, error) {
	for i, inst := range insts {
		if inst.Ch.Design.Name == design {
			return i, nil
		}
	}
	return -1, fmt.Errorf("serve: design %q not in generated suite", design)
}

// runTrain trains (or fetches from the shared store) the leave-one-out
// artifact for the held-out design and persists it under the state dir.
func (s *Server) runTrain(job *Job, spec JobSpec, insts []*attack.Instance,
	prog *obs.Progress) (*TrainResult, error) {

	cfg, err := spec.Config.resolve()
	if err != nil {
		return nil, err
	}
	cfg = s.engineCfg(cfg, spec)
	target, err := targetIndex(insts, spec.Design)
	if err != nil {
		return nil, err
	}
	s.setStage(job, "train")
	aspec, _, err := attack.TrainSpec(cfg, insts, target)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	art, stats, err := s.store.GetOrTrain(aspec)
	if err != nil {
		return nil, err
	}
	res := &TrainResult{
		SpecHash:      art.Meta.SpecHash,
		Level:         art.Meta.Level,
		Trees:         art.Meta.Trees,
		Samples:       art.Meta.Samples,
		Level2Trees:   art.Meta.Level2Trees,
		Level2Samples: art.Meta.Level2Samples,
		Cached:        stats.Sampling == 0 && stats.Level1 == 0 && stats.Level2 == 0,
		TrainNS:       int64(time.Since(t0)),
	}
	if s.opts.StateDir != "" {
		dir := filepath.Join(s.opts.StateDir, "artifacts")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: artifacts dir: %w", err)
		}
		path := filepath.Join(dir, art.Meta.SpecHash+".model")
		if _, err := os.Stat(path); err != nil {
			if err := art.WriteFile(path); err != nil {
				return nil, fmt.Errorf("serve: persist artifact: %w", err)
			}
		}
		res.Artifact = path
	}
	prog.Add(1)
	return res, nil
}

// runAttack runs the single-target attack (plus the proximity stage for
// proximity jobs).
func (s *Server) runAttack(ctx context.Context, job *Job, spec JobSpec,
	insts []*attack.Instance, prog *obs.Progress) (*AttackResult, error) {

	cfg, err := spec.Config.resolve()
	if err != nil {
		return nil, err
	}
	cfg = s.engineCfg(cfg, spec)
	target, err := targetIndex(insts, spec.Design)
	if err != nil {
		return nil, err
	}
	s.setStage(job, "attack")
	ev, radiusNorm, err := attack.RunTargetInstances(cfg, insts, target)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	res := attackResult(cfg, spec.Layer, ev, radiusNorm)
	if spec.Kind != KindProximity {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.setStage(job, "proximity")
	out, err := attack.ProximityTargetInstances(cfg, insts, target, ev, radiusNorm)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	res.Proximity = &ProximityResult{
		Success:      out.Success,
		FixedSuccess: out.FixedSuccess,
		BestFrac:     out.BestFrac,
		ValidationNS: int64(out.ValidationDur),
	}
	return res, nil
}

// runSweep runs the leave-one-out sweep of every configuration, checking
// for cancellation between configurations. A full sweep (no shard/of)
// computes — or, when the server has a checkpoint, loads — every fold and
// returns per-configuration aggregates; a sharded sweep computes only the
// work units its partition owns into the checkpoint and returns unit
// statistics, leaving aggregation to a later full sweep job.
func (s *Server) runSweep(ctx context.Context, job *Job, spec JobSpec,
	insts []*attack.Instance, prog *obs.Progress) (*SweepResult, error) {

	res := &SweepResult{Layer: spec.Layer, Shard: spec.Shard, Of: spec.Of}
	sh := sweep.Shard{Index: spec.Shard, Count: spec.Of}
	sharded := spec.Of > 0
	var stats UnitStats
	for i, cs := range spec.Configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, err := cs.resolve()
		if err != nil {
			return nil, err
		}
		cfg = s.engineCfg(cfg, spec)
		s.setStage(job, fmt.Sprintf("sweep %d/%d: %s", i+1, len(spec.Configs), cfg.Name))
		if sharded {
			err = s.sweepShardConfig(ctx, spec, cfg, sh, insts, &stats)
		} else {
			var cr *SweepConfigResult
			if cr, err = s.sweepConfig(ctx, spec, cfg, insts); err == nil {
				res.Configs = append(res.Configs, *cr)
			}
		}
		if err != nil {
			return nil, err
		}
		prog.Add(1)
	}
	if sharded {
		res.Units = &stats
	}
	return res, nil
}

// sweepUnit builds the work unit of one sweep fold. Its key is identical to
// the unit an `experiments -shard` worker builds at the same (tier, scale,
// seed, config, layer, fold) coordinates, so server jobs and CLI shards can
// split one sweep through a shared checkpoint directory.
func sweepUnit(spec JobSpec, cfg attack.Config, fold int, insts []*attack.Instance) (sweep.Unit, bool) {
	h := cfg.OptionsHash()
	if h == "" {
		return sweep.Unit{}, false
	}
	return sweep.Unit{
		Prov:   sweep.Provenance{Tier: spec.Tier, Scale: spec.Scale, Seed: *spec.Seed},
		Config: cfg.Name,
		Spec:   h,
		Layer:  spec.Layer,
		Fold:   fold,
		Design: insts[fold].Ch.Design.Name,
	}, true
}

// sweepShardConfig computes the owned folds of one configuration into the
// server's checkpoint (normalize guarantees one exists for sharded jobs),
// accumulating unit statistics.
func (s *Server) sweepShardConfig(ctx context.Context, spec JobSpec, cfg attack.Config,
	sh sweep.Shard, insts []*attack.Instance, stats *UnitStats) error {

	for fold := range insts {
		u, ok := sweepUnit(spec, cfg, fold, insts)
		if !ok || !sh.Owns(u.Key()) {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		stats.Owned++
		_, _, outcome, err := sweep.RunUnit(s.o, s.ck, u, cfg, insts)
		if err != nil {
			return err
		}
		switch outcome {
		case sweep.Loaded:
			stats.Skipped++
		case sweep.Recomputed:
			stats.Recomputed++
			stats.Done++
		default:
			stats.Done++
		}
	}
	return nil
}

// sweepConfig runs one configuration's full leave-one-out sweep, fanning
// folds across a bounded pool (like attack.RunInstances) and serving each
// fold from the server's checkpoint when it has one — the merge path
// recombining partials that sharded jobs or CLI shards computed. Results
// are bit-identical to attack.RunInstances at any pool size and any mix of
// loaded and computed folds.
func (s *Server) sweepConfig(ctx context.Context, spec JobSpec, cfg attack.Config,
	insts []*attack.Instance) (*SweepConfigResult, error) {

	start := time.Now()
	r := &attack.Result{
		Config:     cfg,
		Evals:      make([]*attack.Evaluation, len(insts)),
		RadiusNorm: make([]float64, len(insts)),
	}
	workers := s.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	errs := make([]error, len(insts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				fold := int(next.Add(1)) - 1
				if fold >= len(insts) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[fold] = err
					return
				}
				r.RadiusNorm[fold] = -1
				var ev *attack.Evaluation
				var radius float64
				var err error
				if u, ok := sweepUnit(spec, cfg, fold, insts); ok && s.ck != nil {
					ev, radius, _, err = sweep.RunUnit(s.o, s.ck, u, cfg, insts)
				} else {
					ev, radius, err = attack.RunFoldInstances(cfg, insts, fold)
				}
				if err != nil {
					errs[fold] = err
					continue
				}
				r.Evals[fold] = ev
				r.RadiusNorm[fold] = radius
			}
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	r.TotalDur = time.Since(start)
	cr := &SweepConfigResult{
		Config:      cfg.Name,
		MeanTrainNS: int64(r.MeanTrainDur()),
		MeanTestNS:  int64(r.MeanTestDur()),
	}
	for _, ev := range r.Evals {
		cr.Designs = append(cr.Designs, DesignSummary{
			Design:      ev.Design,
			VPins:       ev.N,
			MaxAccuracy: ev.MaxAccuracy(),
			EvalDigest:  ev.Digest(),
		})
	}
	for _, pt := range attack.Curve(r.Evals, attack.CurveFractions()) {
		cr.Curve = append(cr.Curve, CurvePoint{LoCFrac: pt.LoCFrac, Accuracy: pt.Accuracy})
	}
	return cr, nil
}
