package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
)

// execute runs one job end to end. Cancellation is checked at every stage
// boundary; within a stage the engine runs to completion (the worker slot
// is freed anyway — see Server.runOne). A "job.<id>" progress tracker
// counts the job's coarse stages for status polls and /progress.
func execute(ctx context.Context, s *Server, job *Job) (*Result, error) {
	spec := job.Spec
	start := time.Now()
	prog := s.o.NewProgress("job."+job.ID, int64(stages(spec)))
	defer prog.Finish()

	s.setStage(job, "instances")
	insts, err := s.instances(spec.Tier, spec.Scale, *spec.Seed, spec.Layer)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{ID: job.ID, Kind: spec.Kind, Spec: spec}
	switch spec.Kind {
	case KindTrain:
		res.Train, err = s.runTrain(job, spec, insts, prog)
	case KindAttack, KindProximity:
		res.Attack, err = s.runAttack(ctx, job, spec, insts, prog)
	case KindSweep:
		res.Sweep, err = s.runSweep(ctx, job, spec, insts, prog)
	default:
		err = fmt.Errorf("serve: unknown kind %q", spec.Kind)
	}
	if err != nil {
		return nil, err
	}
	res.ElapsedNS = int64(time.Since(start))
	return res, nil
}

// stages is the coarse step count of the job's progress tracker.
func stages(spec JobSpec) int {
	switch spec.Kind {
	case KindProximity:
		return 3 // instances, attack, proximity
	case KindSweep:
		return 1 + len(spec.Configs)
	default:
		return 2 // instances, train or attack
	}
}

// engineCfg wires a resolved configuration to the server's shared
// resources: the job's seed, the per-job engine worker bound, the obs
// context, and the coalescing artifact store.
func (s *Server) engineCfg(cfg attack.Config, spec JobSpec) attack.Config {
	cfg.Seed = *spec.Seed
	cfg.Workers = s.opts.Workers
	cfg.Obs = s.o
	cfg.Models = s.store
	return cfg
}

// targetIndex resolves the held-out design's instance index.
func targetIndex(insts []*attack.Instance, design string) (int, error) {
	for i, inst := range insts {
		if inst.Ch.Design.Name == design {
			return i, nil
		}
	}
	return -1, fmt.Errorf("serve: design %q not in generated suite", design)
}

// runTrain trains (or fetches from the shared store) the leave-one-out
// artifact for the held-out design and persists it under the state dir.
func (s *Server) runTrain(job *Job, spec JobSpec, insts []*attack.Instance,
	prog *obs.Progress) (*TrainResult, error) {

	cfg, err := spec.Config.resolve()
	if err != nil {
		return nil, err
	}
	cfg = s.engineCfg(cfg, spec)
	target, err := targetIndex(insts, spec.Design)
	if err != nil {
		return nil, err
	}
	s.setStage(job, "train")
	aspec, _, err := attack.TrainSpec(cfg, insts, target)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	art, stats, err := s.store.GetOrTrain(aspec)
	if err != nil {
		return nil, err
	}
	res := &TrainResult{
		SpecHash:      art.Meta.SpecHash,
		Level:         art.Meta.Level,
		Trees:         art.Meta.Trees,
		Samples:       art.Meta.Samples,
		Level2Trees:   art.Meta.Level2Trees,
		Level2Samples: art.Meta.Level2Samples,
		Cached:        stats.Sampling == 0 && stats.Level1 == 0 && stats.Level2 == 0,
		TrainNS:       int64(time.Since(t0)),
	}
	if s.opts.StateDir != "" {
		dir := filepath.Join(s.opts.StateDir, "artifacts")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: artifacts dir: %w", err)
		}
		path := filepath.Join(dir, art.Meta.SpecHash+".model")
		if _, err := os.Stat(path); err != nil {
			if err := art.WriteFile(path); err != nil {
				return nil, fmt.Errorf("serve: persist artifact: %w", err)
			}
		}
		res.Artifact = path
	}
	prog.Add(1)
	return res, nil
}

// runAttack runs the single-target attack (plus the proximity stage for
// proximity jobs).
func (s *Server) runAttack(ctx context.Context, job *Job, spec JobSpec,
	insts []*attack.Instance, prog *obs.Progress) (*AttackResult, error) {

	cfg, err := spec.Config.resolve()
	if err != nil {
		return nil, err
	}
	cfg = s.engineCfg(cfg, spec)
	target, err := targetIndex(insts, spec.Design)
	if err != nil {
		return nil, err
	}
	s.setStage(job, "attack")
	ev, radiusNorm, err := attack.RunTargetInstances(cfg, insts, target)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	res := attackResult(cfg, spec.Layer, ev, radiusNorm)
	if spec.Kind != KindProximity {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.setStage(job, "proximity")
	out, err := attack.ProximityTargetInstances(cfg, insts, target, ev, radiusNorm)
	if err != nil {
		return nil, err
	}
	prog.Add(1)
	res.Proximity = &ProximityResult{
		Success:      out.Success,
		FixedSuccess: out.FixedSuccess,
		BestFrac:     out.BestFrac,
		ValidationNS: int64(out.ValidationDur),
	}
	return res, nil
}

// runSweep runs the full leave-one-out attack for every configuration,
// checking for cancellation between configurations.
func (s *Server) runSweep(ctx context.Context, job *Job, spec JobSpec,
	insts []*attack.Instance, prog *obs.Progress) (*SweepResult, error) {

	res := &SweepResult{Layer: spec.Layer}
	for i, cs := range spec.Configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, err := cs.resolve()
		if err != nil {
			return nil, err
		}
		cfg = s.engineCfg(cfg, spec)
		s.setStage(job, fmt.Sprintf("sweep %d/%d: %s", i+1, len(spec.Configs), cfg.Name))
		r, err := attack.RunInstances(cfg, insts)
		if err != nil {
			return nil, err
		}
		cr := SweepConfigResult{
			Config:      cfg.Name,
			MeanTrainNS: int64(r.MeanTrainDur()),
			MeanTestNS:  int64(r.MeanTestDur()),
		}
		for _, ev := range r.Evals {
			cr.Designs = append(cr.Designs, DesignSummary{
				Design:      ev.Design,
				VPins:       ev.N,
				MaxAccuracy: ev.MaxAccuracy(),
				EvalDigest:  ev.Digest(),
			})
		}
		for _, pt := range attack.Curve(r.Evals, attack.CurveFractions()) {
			cr.Curve = append(cr.Curve, CurvePoint{LoCFrac: pt.LoCFrac, Accuracy: pt.Accuracy})
		}
		res.Configs = append(res.Configs, cr)
		prog.Add(1)
	}
	return res, nil
}
