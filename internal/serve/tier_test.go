package serve

import (
	"net/http"
	"testing"

	"repro/internal/layout"
)

// TestServeTierNormalize covers the tier field's submission-time handling:
// defaults fill in, unknown tiers are rejected, and design validation
// happens against the selected tier's suite.
func TestServeTierNormalize(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})

	norm, err := s.normalize(JobSpec{Kind: KindAttack, Design: "sb1",
		Config: &ConfigSpec{Preset: "ML-9"}})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tier != layout.TierStandard {
		t.Errorf("empty tier normalized to %q, want %q", norm.Tier, layout.TierStandard)
	}

	if _, err := s.normalize(JobSpec{Kind: KindAttack, Design: "sb1", Tier: "huge",
		Config: &ConfigSpec{Preset: "ML-9"}}); err == nil {
		t.Error("unknown tier accepted")
	}

	// The industrial tier has sbx* designs, not sb*.
	if _, err := s.normalize(JobSpec{Kind: KindAttack, Design: "sb1", Tier: layout.TierIndustrial,
		Config: &ConfigSpec{Preset: "ML-9"}}); err == nil {
		t.Error("standard design accepted under the industrial tier")
	}
	norm, err = s.normalize(JobSpec{Kind: KindAttack, Design: "sbx1", Tier: layout.TierIndustrial,
		Config: &ConfigSpec{Preset: "ML-9"}})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tier != layout.TierIndustrial || norm.Design != "sbx1" {
		t.Errorf("industrial normalize = %+v", norm)
	}
}

// TestServeDefaultTierOption checks the server-level default: a server
// started on the industrial tier routes tier-less jobs there.
func TestServeDefaultTierOption(t *testing.T) {
	if _, err := New(Options{Pool: 1, runner: stubRunner, DefaultTier: "huge"}); err == nil {
		t.Error("server accepted an unknown default tier")
	}
	s := newTestServer(t, Options{Pool: 1, runner: stubRunner,
		DefaultTier: layout.TierIndustrial, DefaultScale: testScale, DefaultSeed: testSeed})
	norm, err := s.normalize(JobSpec{Kind: KindAttack, Design: "sbx10",
		Config: &ConfigSpec{Preset: "ML-9"}})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tier != layout.TierIndustrial {
		t.Errorf("tier-less job normalized to %q, want the server default", norm.Tier)
	}
}

// TestHTTPDesignsTier exercises GET /designs with and without the tier
// query: each tier lists its own names, unknown tiers get a 400.
func TestHTTPDesignsTier(t *testing.T) {
	_, ts := httpFixture(t, Options{Pool: 1, runner: stubRunner})

	var names []string
	resp := doJSON(t, "GET", ts.URL+"/designs", "", &names)
	if resp.StatusCode != http.StatusOK || len(names) != 5 || names[0] != "sb1" {
		t.Errorf("GET /designs = %d %v, want 200 and the five sb* names", resp.StatusCode, names)
	}

	names = nil
	resp = doJSON(t, "GET", ts.URL+"/designs?tier=industrial", "", &names)
	want := []string{"sbx1", "sbx10", "sbx12"}
	if resp.StatusCode != http.StatusOK || len(names) != len(want) {
		t.Fatalf("GET /designs?tier=industrial = %d %v, want 200 and %v", resp.StatusCode, names, want)
	}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("industrial design %d = %q, want %q", i, n, want[i])
		}
	}

	var env apiError
	resp = doJSON(t, "GET", ts.URL+"/designs?tier=huge", "", &env)
	if resp.StatusCode != http.StatusBadRequest || env.Error.Code != "invalid_spec" {
		t.Errorf("GET /designs?tier=huge = %d code %q, want 400 invalid_spec", resp.StatusCode, env.Error.Code)
	}
}

// TestServeConfigSpecMemoryKnobs checks the wire form of the industrial
// memory bounds reaches the engine configuration.
func TestServeConfigSpecMemoryKnobs(t *testing.T) {
	cs := ConfigSpec{Preset: "Imp-11", MaxLoCCount: 256, ShardVpins: 2048}
	cfg, err := cs.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxLoCCount != 256 || cfg.ShardVpins != 2048 {
		t.Errorf("resolved config knobs = %d/%d, want 256/2048", cfg.MaxLoCCount, cfg.ShardVpins)
	}
	if _, err := (ConfigSpec{Preset: "Imp-11", MaxLoCCount: -1}).resolve(); err == nil {
		t.Error("negative max_loc_count accepted")
	}
	if _, err := (ConfigSpec{Preset: "Imp-11", ShardVpins: -1}).resolve(); err == nil {
		t.Error("negative shard_vpins accepted")
	}
}
