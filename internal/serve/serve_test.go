package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/layout"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/split"
)

// testScale/testSeed shape the tiny suite every serve test runs against,
// matching the attack package's fixtures.
const (
	testScale = 0.2
	testSeed  = int64(5)
)

// newTestServer builds a server with a fresh obs context (so metric
// assertions see only this server's counters) and closes it with the test.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.New(obs.Options{Command: "serve-test"})
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// stubRunner returns instantly with a marker result, no engine work.
func stubRunner(ctx context.Context, s *Server, job *Job) (*Result, error) {
	return &Result{ID: job.ID, Kind: job.Spec.Kind, Spec: job.Spec,
		Attack: &AttackResult{Design: job.Spec.Design, EvalDigest: "stub"}}, nil
}

// blockUntilCancelled parks until the job's context is cancelled; jobs
// targeting sb5 return immediately instead, so one server can hold a slot
// hostage with sb1 while sb5 proves the slot frees up.
func blockUntilCancelled(ctx context.Context, s *Server, job *Job) (*Result, error) {
	if job.Spec.Design == "sb5" {
		return stubRunner(ctx, s, job)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// attackSpec is the canonical tiny attack job of these tests.
func attackSpec(design string) JobSpec {
	seed := testSeed
	return JobSpec{
		Kind:   KindAttack,
		Design: design,
		Layer:  8,
		Scale:  testScale,
		Seed:   &seed,
		Config: &ConfigSpec{Preset: "ML-9"},
	}
}

// waitTerminal blocks until the job finishes (fails the test at timeout).
func waitTerminal(t *testing.T, job *Job, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", job.ID, err)
	}
}

// waitState polls until the job's observed state matches.
func waitState(t *testing.T, s *Server, job *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if s.Status(job).State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", job.ID, want, s.Status(job).State)
}

// TestServeBitIdentity is the service's core contract: an attack job
// submitted over the job layer yields an Evaluation digest-identical to
// the same configuration run directly through attack.RunTargetInstances.
func TestServeBitIdentity(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1})
	job, err := s.Submit(attackSpec("sb1"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job, 10*time.Minute)
	st := s.Status(job)
	if st.State != StateDone {
		t.Fatalf("job state %s, error %q", st.State, st.Error)
	}
	res, ok := s.Result(job)
	if !ok || res.Attack == nil {
		t.Fatalf("no attack result (ok=%v)", ok)
	}

	// The same attack, run in-process with no store and no serving layer.
	designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: testScale, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallenge(d, 8); err != nil {
			t.Fatal(err)
		}
		if d.Name == "sb1" {
			target = i
		}
	}
	cfg, _ := attack.ConfigByName("ML-9")
	cfg.Seed = testSeed
	ev, radius, err := attack.RunTargetInstances(cfg, attack.NewInstances(chs), target)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Attack.EvalDigest, ev.Digest(); got != want {
		t.Errorf("served digest %s != direct digest %s", got, want)
	}
	if res.Attack.VPins != ev.N {
		t.Errorf("served vpins %d != direct %d", res.Attack.VPins, ev.N)
	}
	if res.Attack.RadiusNorm != radius {
		t.Errorf("served radius %v != direct %v", res.Attack.RadiusNorm, radius)
	}
	if res.Attack.Evaluation == nil || len(res.Attack.Evaluation.Cands) != ev.N {
		t.Errorf("served evaluation lists missing or short")
	}
	if res.Attack.MaxAccuracy != ev.MaxAccuracy() {
		t.Errorf("served max accuracy %v != direct %v", res.Attack.MaxAccuracy, ev.MaxAccuracy())
	}
}

// TestServeMLPBitIdentity extends the core contract to the MLP family: a
// DL-MLP job served over the job layer must be digest-identical to the same
// configuration run directly — family selection travels the wire losslessly.
func TestServeMLPBitIdentity(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1})
	seed := testSeed
	job, err := s.Submit(JobSpec{
		Kind: KindAttack, Design: "sb1", Layer: 8, Scale: testScale, Seed: &seed,
		Config: &ConfigSpec{Preset: "DL-MLP", MLPEpochs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job, 10*time.Minute)
	st := s.Status(job)
	if st.State != StateDone {
		t.Fatalf("job state %s, error %q", st.State, st.Error)
	}
	res, ok := s.Result(job)
	if !ok || res.Attack == nil {
		t.Fatalf("no attack result (ok=%v)", ok)
	}

	designs, err := layout.GenerateSuite(layout.SuiteConfig{Scale: testScale, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	chs := make([]*split.Challenge, len(designs))
	for i, d := range designs {
		if chs[i], err = split.NewChallenge(d, 8); err != nil {
			t.Fatal(err)
		}
		if d.Name == "sb1" {
			target = i
		}
	}
	cfg, ok := attack.ConfigByName("DL-MLP")
	if !ok {
		t.Fatal("DL-MLP preset not registered")
	}
	cfg.Seed = testSeed
	cfg.MLPEpochs = 3
	ev, _, err := attack.RunTargetInstances(cfg, attack.NewInstances(chs), target)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Attack.EvalDigest, ev.Digest(); got != want {
		t.Errorf("served mlp digest %s != direct digest %s", got, want)
	}
}

// TestServeConcurrentSameSpecTrainsOnce hammers the server with identical
// concurrent submissions: the shared store must coalesce them into exactly
// one training (model.artifacts: 1 miss) and one suite preparation
// (serve.instances: 1 miss), all results digest-identical.
func TestServeConcurrentSameSpecTrainsOnce(t *testing.T) {
	const n = 6
	o := obs.New(obs.Options{Command: "serve-test"})
	s := newTestServer(t, Options{Obs: o, Pool: n, Queue: n})
	jobs := make([]*Job, n)
	for i := range jobs {
		job, err := s.Submit(attackSpec("sb1"))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	digests := map[string]bool{}
	for _, job := range jobs {
		waitTerminal(t, job, 10*time.Minute)
		if st := s.Status(job); st.State != StateDone {
			t.Fatalf("job %s state %s, error %q", job.ID, st.State, st.Error)
		}
		res, _ := s.Result(job)
		digests[res.Attack.EvalDigest] = true
	}
	if len(digests) != 1 {
		t.Errorf("expected one shared digest, got %d: %v", len(digests), digests)
	}
	arts := o.Metrics().Cache("model.artifacts")
	if got := arts.Misses(); got != 1 {
		t.Errorf("model.artifacts misses = %d, want exactly 1 training", got)
	}
	if got := arts.Hits(); got != n-1 {
		t.Errorf("model.artifacts hits = %d, want %d", got, n-1)
	}
	insts := o.Metrics().Cache("serve.instances")
	if got := insts.Misses(); got != 1 {
		t.Errorf("serve.instances misses = %d, want 1", got)
	}
}

// TestServeCancelRunningFreesSlot cancels a mid-run job on a pool of one
// and checks the slot frees for the next job immediately.
func TestServeCancelRunningFreesSlot(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, Queue: 4, runner: blockUntilCancelled})
	blocker, err := s.Submit(attackSpec("sb1"))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker, StateRunning)
	next, err := s.Submit(attackSpec("sb5"))
	if err != nil {
		t.Fatal(err)
	}
	// The pool has one slot and it is parked in the blocker: next must
	// stay pending until the cancellation below frees the worker.
	if st := s.Status(next).State; st != StatePending {
		t.Fatalf("second job should be pending behind the blocker, got %s", st)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, blocker, 30*time.Second)
	if st := s.Status(blocker).State; st != StateCancelled {
		t.Errorf("blocker state %s, want cancelled", st)
	}
	waitTerminal(t, next, 30*time.Second)
	if st := s.Status(next).State; st != StateDone {
		t.Errorf("next job state %s, want done", st)
	}
}

// TestServeCancelPending cancels a queued job before any worker takes it.
func TestServeCancelPending(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, Queue: 4, runner: blockUntilCancelled})
	blocker, _ := s.Submit(attackSpec("sb1"))
	waitState(t, s, blocker, StateRunning)
	queued, err := s.Submit(attackSpec("sb1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(queued).State; st != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled", st)
	}
	// Cancelling a terminal job conflicts.
	if _, err := s.Cancel(queued.ID); err != ErrTerminal {
		t.Errorf("second cancel err = %v, want ErrTerminal", err)
	}
	if _, err := s.Cancel("j-999999"); err != ErrUnknownJob {
		t.Errorf("unknown cancel err = %v, want ErrUnknownJob", err)
	}
	s.Cancel(blocker.ID)
}

// TestServeQueueFull checks admission control: with the only worker parked
// and the queue at capacity, the next submission is rejected.
func TestServeQueueFull(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, Queue: 1, runner: blockUntilCancelled})
	blocker, _ := s.Submit(attackSpec("sb1"))
	waitState(t, s, blocker, StateRunning)
	if _, err := s.Submit(attackSpec("sb1")); err != nil {
		t.Fatalf("queued submission should fit: %v", err)
	}
	if _, err := s.Submit(attackSpec("sb1")); err != ErrQueueFull {
		t.Fatalf("overflow submission err = %v, want ErrQueueFull", err)
	}
	// Rejected submissions must not leak into the registry.
	if got := len(s.Jobs()); got != 2 {
		t.Errorf("registry has %d jobs, want 2", got)
	}
	s.Cancel(blocker.ID)
}

// TestServeCloseInterruptsRunning shuts the server down mid-job: the
// running job must come out interrupted, not stuck.
func TestServeCloseInterruptsRunning(t *testing.T) {
	o := obs.New(obs.Options{Command: "serve-test"})
	s, err := New(Options{Obs: o, Pool: 1, runner: blockUntilCancelled})
	if err != nil {
		t.Fatal(err)
	}
	job, _ := s.Submit(attackSpec("sb1"))
	waitState(t, s, job, StateRunning)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(job).State; st != StateInterrupted {
		t.Errorf("job state after Close = %s, want interrupted", st)
	}
}

// TestServeSpecValidation exercises submission-time rejection.
func TestServeSpecValidation(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"no kind", JobSpec{Design: "sb1"}},
		{"bad kind", JobSpec{Kind: "exfiltrate"}},
		{"no config", JobSpec{Kind: KindAttack, Design: "sb1"}},
		{"no design", JobSpec{Kind: KindAttack, Config: &ConfigSpec{Preset: "ML-9"}}},
		{"bad design", JobSpec{Kind: KindAttack, Design: "sb999", Config: &ConfigSpec{Preset: "ML-9"}}},
		{"bad preset", JobSpec{Kind: KindAttack, Design: "sb1", Config: &ConfigSpec{Preset: "GPT-9"}}},
		{"bad layer", JobSpec{Kind: KindAttack, Design: "sb1", Layer: 11, Config: &ConfigSpec{Preset: "ML-9"}}},
		{"bad base", JobSpec{Kind: KindAttack, Design: "sb1", Config: &ConfigSpec{Preset: "ML-9", Base: "xgboost"}}},
		{"bad learner", JobSpec{Kind: KindAttack, Design: "sb1", Config: &ConfigSpec{Preset: "ML-9", Learner: "xgboost"}}},
		{"bad sweep learner", JobSpec{Kind: KindSweep, Configs: []ConfigSpec{{Preset: "ML-9", Learner: "nope"}}}},
		{"empty config", JobSpec{Kind: KindAttack, Design: "sb1", Config: &ConfigSpec{}}},
		{"sweep with config", JobSpec{Kind: KindSweep, Config: &ConfigSpec{Preset: "ML-9"}}},
		{"attack with configs", JobSpec{Kind: KindAttack, Design: "sb1",
			Configs: []ConfigSpec{{Preset: "ML-9"}}}},
		{"negative scale", JobSpec{Kind: KindAttack, Design: "sb1", Scale: -1,
			Config: &ConfigSpec{Preset: "ML-9"}}},
		{"bad sweep config", JobSpec{Kind: KindSweep, Configs: []ConfigSpec{{Preset: "nope"}}}},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: submission unexpectedly accepted", tc.name)
		}
	}
	// Defaults fill in: a sweep with no configs resolves to the four
	// standard configurations, layer 8, the server's scale and seed.
	norm, err := s.normalize(JobSpec{Kind: KindSweep})
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Configs) != 4 || norm.Layer != 8 || norm.Scale != testScale ||
		norm.Seed == nil || *norm.Seed != testSeed {
		t.Errorf("sweep normalize = %+v", norm)
	}
}

// TestServeConfigSpecResolve checks preset + override resolution.
func TestServeConfigSpecResolve(t *testing.T) {
	tr := true
	cs := ConfigSpec{Preset: "Imp-11", TwoLevel: &tr, NumTrees: 7, Base: "randomtree"}
	cfg, err := cs.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Neighborhood || !cfg.TwoLevel || cfg.NumTrees != 7 {
		t.Errorf("resolved config %+v", cfg)
	}
	off := false
	cs2 := ConfigSpec{Preset: "Imp-9", Neighborhood: &off}
	cfg2, err := cs2.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Neighborhood {
		t.Errorf("neighborhood override off failed: %+v", cfg2)
	}
	if _, err := (ConfigSpec{Name: "custom", Features: []int{0, 1, 99}}).resolve(); err == nil {
		t.Error("out-of-range feature index accepted")
	}

	// The learner family axis maps onto the engine config, knobs included.
	on := true
	cs3 := ConfigSpec{Preset: "Imp-11", Learner: model.FamilyMLP,
		MLPHidden: 24, MLPEpochs: 5, MLPRate: 0.1, Ranking: &on}
	cfg3, err := cs3.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg3.Family != model.FamilyMLP || cfg3.MLPHidden != 24 ||
		cfg3.MLPEpochs != 5 || cfg3.MLPRate != 0.1 || !cfg3.Ranking {
		t.Errorf("mlp learner resolution = %+v", cfg3)
	}
	// The DL-MLP preset's ranking head can be toggled off.
	offR := false
	cfg4, err := (ConfigSpec{Preset: "DL-MLP-rank", Ranking: &offR}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg4.Ranking || cfg4.Family != model.FamilyMLP {
		t.Errorf("ranking override off failed: %+v", cfg4)
	}
}

// TestServeJobIDsMonotonic checks IDs are unique and ordered.
func TestServeJobIDsMonotonic(t *testing.T) {
	s := newTestServer(t, Options{Pool: 1, Queue: 16, runner: stubRunner})
	var last string
	for i := 0; i < 5; i++ {
		job, err := s.Submit(attackSpec("sb1"))
		if err != nil {
			t.Fatal(err)
		}
		if job.ID <= last {
			t.Errorf("job ID %s not greater than %s", job.ID, last)
		}
		last = job.ID
		waitTerminal(t, job, 30*time.Second)
	}
	if want := fmt.Sprintf("j-%06d", 5); last != want {
		t.Errorf("last ID %s, want %s", last, want)
	}
}
