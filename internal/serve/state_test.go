package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStateRestart drives the documented restart semantics through a real
// state directory: a done job keeps serving its persisted result, a job
// persisted as running comes back interrupted, a pending job resumes and
// runs, and new IDs continue past every reloaded one.
func TestStateRestart(t *testing.T) {
	dir := t.TempDir()

	// First life: run one job to completion, then shut down.
	s1 := newTestServer(t, Options{Pool: 1, StateDir: dir, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})
	done, err := s1.Submit(attackSpec("sb1"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, done, 30*time.Second)
	if st := s1.Status(done).State; st != StateDone {
		t.Fatalf("first-life job state %s", st)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "results", done.ID+".json")); err != nil {
		t.Fatalf("result document not persisted: %v", err)
	}

	// Forge the two records a crashed server would leave behind: one job
	// that was running when the process died, one still pending.
	seed := testSeed
	spec := JobSpec{Kind: KindAttack, Design: "sb5", Layer: 8,
		Scale: testScale, Seed: &seed, Config: &ConfigSpec{Preset: "ML-9"}}
	forge := func(id string, state JobState) {
		rec := record{ID: id, Spec: spec, State: state, Created: time.Now()}
		if state == StateRunning {
			rec.Started = time.Now()
		}
		if err := writeJSONAtomic(filepath.Join(dir, "jobs", id+".json"), rec); err != nil {
			t.Fatal(err)
		}
	}
	forge("j-000007", StateRunning)
	forge("j-000009", StatePending)

	// Second life.
	s2 := newTestServer(t, Options{Pool: 1, StateDir: dir, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	// The done job's result is still served — its document now comes from
	// disk, since the in-memory result did not survive the restart.
	resp, err := http.Get(ts.URL + "/jobs/" + done.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reloaded result status %d: %s", resp.StatusCode, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != done.ID || res.Attack == nil || res.Attack.EvalDigest != "stub" {
		t.Errorf("reloaded result = %+v", res)
	}

	// The running record came back interrupted, and the interruption is
	// persisted (visible to a third life).
	interrupted, ok := s2.Job("j-000007")
	if !ok {
		t.Fatal("running record not reloaded")
	}
	if st := s2.Status(interrupted); st.State != StateInterrupted || st.Error == "" {
		t.Errorf("running record reloaded as %s (%q), want interrupted", st.State, st.Error)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs", "j-000007.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateInterrupted {
		t.Errorf("persisted state %s, want interrupted", rec.State)
	}

	// The pending record was re-enqueued and runs to completion.
	resumed, ok := s2.Job("j-000009")
	if !ok {
		t.Fatal("pending record not reloaded")
	}
	waitTerminal(t, resumed, 30*time.Second)
	if st := s2.Status(resumed).State; st != StateDone {
		t.Errorf("resumed job state %s, want done", st)
	}

	// New submissions continue past the highest reloaded ID.
	fresh, err := s2.Submit(attackSpec("sb1"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID <= "j-000009" {
		t.Errorf("fresh ID %s does not continue past reloaded IDs", fresh.ID)
	}
	waitTerminal(t, fresh, 30*time.Second)

	// The full registry lists every life's jobs in ID order.
	jobs := s2.Jobs()
	if len(jobs) != 4 {
		t.Fatalf("registry has %d jobs, want 4", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].ID >= jobs[i].ID {
			t.Errorf("registry out of order: %s before %s", jobs[i-1].ID, jobs[i].ID)
		}
	}
}

// TestStateResumeOverflowsQueue reloads more pending jobs than the
// configured queue bound: resume must not drop any.
func TestStateResumeOverflowsQueue(t *testing.T) {
	dir := t.TempDir()
	seed := testSeed
	spec := JobSpec{Kind: KindAttack, Design: "sb1", Layer: 8,
		Scale: testScale, Seed: &seed, Config: &ConfigSpec{Preset: "ML-9"}}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 1; i <= n; i++ {
		id := jobID(i)
		rec := record{ID: id, Spec: spec, State: StatePending, Created: time.Now()}
		if err := writeJSONAtomic(filepath.Join(dir, "jobs", id+".json"), rec); err != nil {
			t.Fatal(err)
		}
	}
	// Queue bound 1 < 5 reloaded jobs: all must still resume.
	s := newTestServer(t, Options{Pool: 1, Queue: 1, StateDir: dir, runner: stubRunner,
		DefaultScale: testScale, DefaultSeed: testSeed})
	for _, job := range s.Jobs() {
		waitTerminal(t, job, 30*time.Second)
		if st := s.Status(job).State; st != StateDone {
			t.Errorf("resumed job %s state %s, want done", job.ID, st)
		}
	}
}

// TestStateCorruptRecord checks a torn/corrupt job record fails server
// construction loudly instead of silently dropping jobs.
func TestStateCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "jobs", "j-000001.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{StateDir: dir}); err == nil {
		t.Fatal("corrupt record accepted")
	}
}

// jobID formats an ID the way the server does.
func jobID(n int) string {
	return fmt.Sprintf("j-%06d", n)
}
