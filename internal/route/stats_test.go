package route

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestStatsShape(t *testing.T) {
	_, _, r := buildTestDesign(t, 20, 1500, 1200)
	stats := r.Stats()
	if len(stats) != NumMetal {
		t.Fatalf("%d layer stats, want %d", len(stats), NumMetal)
	}
	var totalWL int64
	for i, s := range stats {
		if s.Layer != i+1 {
			t.Fatalf("stats[%d].Layer = %d", i, s.Layer)
		}
		if s.Dir != LayerDir(s.Layer) {
			t.Fatalf("M%d direction mismatch", s.Layer)
		}
		if s.Tracks <= 0 || s.Capacity <= 0 {
			t.Fatalf("M%d has no capacity", s.Layer)
		}
		if s.Utilisation < 0 || s.Utilisation > 1.5 {
			t.Fatalf("M%d utilisation %.3f implausible", s.Layer, s.Utilisation)
		}
		totalWL += s.Wirelength
	}
	if totalWL != r.TotalWirelength() {
		t.Errorf("per-layer wirelength %d != total %d", totalWL, r.TotalWirelength())
	}
}

func TestStatsBottomHeavier(t *testing.T) {
	// Most wirelength sits on the lower layer pairs; the top layer must
	// carry less than the local layers combined.
	_, _, r := buildTestDesign(t, 21, 1500, 1200)
	stats := r.Stats()
	low := stats[0].Wirelength + stats[1].Wirelength
	top := stats[NumMetal-1].Wirelength
	if top >= low {
		t.Errorf("top-layer wirelength %d not below M1+M2 %d", top, low)
	}
}

func TestStatsTrackPitchCoarserOnTop(t *testing.T) {
	_, _, r := buildTestDesign(t, 22, 300, 250)
	stats := r.Stats()
	if stats[0].Tracks <= stats[NumMetal-1].Tracks {
		t.Errorf("M1 tracks %d not more than M9 tracks %d (wider top wires mean fewer tracks)",
			stats[0].Tracks, stats[NumMetal-1].Tracks)
	}
}

func TestWriteStats(t *testing.T) {
	_, _, r := buildTestDesign(t, 23, 300, 250)
	var buf bytes.Buffer
	WriteStats(&buf, r.Stats())
	out := buf.String()
	for _, want := range []string{"M1", "M9", "utilisation", "horizontal", "vertical"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestCongestionAt(t *testing.T) {
	_, _, r := buildTestDesign(t, 24, 1000, 800)
	// The die centre of a clustered design should be near or above mean
	// congestion somewhere; just check bounds and a non-trivial spread.
	var lo, hi float64 = 1e18, -1
	for x := 0; x <= 4; x++ {
		for y := 0; y <= 4; y++ {
			p := r.Die.Lo
			p.X += r.Die.Width() * geom.Coord(x) / 4
			p.Y += r.Die.Height() * geom.Coord(y) / 4
			c := r.CongestionAt(p)
			if c < 0 {
				t.Fatalf("negative congestion at %v", p)
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	if hi == lo {
		t.Error("congestion perfectly uniform; demand grid not working")
	}
}
