package route

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/geom"
)

// LayerStats summarises one metal layer's routing load.
type LayerStats struct {
	Layer int
	Dir   Dir
	// Wirelength is the total routed length on the layer.
	Wirelength int64
	// Segments is the number of wires on the layer.
	Segments int
	// Tracks is the number of routing tracks the layer offers across the
	// die in its preferred direction.
	Tracks int
	// Capacity is the total routable length: tracks times die extent.
	Capacity int64
	// Utilisation is Wirelength/Capacity.
	Utilisation float64
	// Vias is the number of vias on the via layer below this metal
	// (vias[1] counts M1-M2 cuts, reported on layer 2 and upward).
	Vias int
}

// Stats computes per-layer utilisation of the routing. Real designs show
// higher relative congestion on the lower layers — the property the paper
// calls out as essential for realistic split-manufacturing studies — and
// this report makes that measurable for the synthetic fabric.
func (r *Routing) Stats() []LayerStats {
	die := r.Die
	out := make([]LayerStats, NumMetal)
	for m := 1; m <= NumMetal; m++ {
		s := &out[m-1]
		s.Layer = m
		s.Dir = LayerDir(m)
		extent := die.Width()
		span := die.Height()
		if s.Dir == Horizontal {
			extent, span = span, extent
		}
		s.Tracks = int(extent / TrackPitch(m))
		s.Capacity = int64(s.Tracks) * int64(span)
	}
	for i := range r.Routes {
		rt := &r.Routes[i]
		for _, seg := range rt.Segments {
			s := &out[seg.Layer-1]
			s.Wirelength += int64(seg.Len())
			s.Segments++
		}
		for _, v := range rt.Vias {
			if v.Layer >= 1 && v.Layer <= NumVia {
				out[v.Layer].Vias++ // attributed to the metal above the cut
			}
		}
	}
	for m := range out {
		if out[m].Capacity > 0 {
			out[m].Utilisation = float64(out[m].Wirelength) / float64(out[m].Capacity)
		}
	}
	return out
}

// WriteStats renders the utilisation report as a table.
func WriteStats(w io.Writer, stats []LayerStats) {
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\tdir\twidth\ttracks\tsegments\twirelength\tutilisation\tvias-below")
	for _, s := range stats {
		fmt.Fprintf(tw, "M%d\t%v\t%d\t%d\t%d\t%d\t%.3f\t%d\n",
			s.Layer, s.Dir, WireWidth(s.Layer), s.Tracks, s.Segments,
			s.Wirelength, s.Utilisation, s.Vias)
	}
	tw.Flush()
}

// TotalWirelength sums routed length over all nets.
func (r *Routing) TotalWirelength() int64 {
	var total int64
	for i := range r.Routes {
		total += int64(r.Routes[i].Wirelength())
	}
	return total
}

// CongestionAt reports the demand-grid density around a point relative to
// the mean demand; values above 1 indicate congestion.
func (r *Routing) CongestionAt(p geom.Point) float64 {
	if r.Demand == nil || r.Demand.Total() == 0 {
		return 0
	}
	nx, ny := r.Demand.Dims()
	mean := float64(r.Demand.Total()) / float64(nx*ny)
	return r.Demand.Density(p, 1) / mean
}
