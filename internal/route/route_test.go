package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

func TestLayerDirAlternates(t *testing.T) {
	for m := 1; m <= NumMetal; m++ {
		want := Horizontal
		if m%2 == 0 {
			want = Vertical
		}
		if got := LayerDir(m); got != want {
			t.Errorf("LayerDir(%d) = %v, want %v", m, got, want)
		}
	}
	if LayerDir(NumMetal) != Horizontal {
		t.Error("top layer must be horizontal (paper relies on single-direction M9)")
	}
}

func TestWireWidthSpread(t *testing.T) {
	if WireWidth(NumMetal) != 4*WireWidth(1) {
		t.Errorf("top/bottom wire width ratio = %d/%d, want 4x",
			WireWidth(NumMetal), WireWidth(1))
	}
	for m := 1; m < NumMetal; m++ {
		if WireWidth(m+1) < WireWidth(m) {
			t.Errorf("wire width must be non-decreasing: M%d=%d > M%d=%d",
				m, WireWidth(m), m+1, WireWidth(m+1))
		}
	}
}

func TestSnap(t *testing.T) {
	cases := []struct{ v, pitch, want geom.Coord }{
		{0, 100, 0},
		{49, 100, 0},
		{50, 100, 100},
		{149, 100, 100},
		{-49, 100, 0},
		{-51, 100, -100},
		{7, 0, 7}, // degenerate pitch passes through
	}
	for _, c := range cases {
		if got := Snap(c.v, c.pitch); got != c.want {
			t.Errorf("Snap(%d, %d) = %d, want %d", c.v, c.pitch, got, c.want)
		}
	}
}

func TestSnapProperty(t *testing.T) {
	f := func(v int32) bool {
		s := Snap(geom.Coord(v), 320)
		return s%320 == 0 && (geom.Coord(v)-s).Abs() <= 160
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// buildTestDesign places and routes a small design for routing tests.
func buildTestDesign(t *testing.T, seed int64, nCells, nNets int) (*netlist.Netlist, *place.Placement, *Routing) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	lib := cell.DefaultLibrary()
	cells, err := netlist.GenerateCells(lib, netlist.CellMixConfig{NumCells: nCells, NumMacros: 2, SeqFraction: 0.1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nl := &netlist.Netlist{Lib: lib, Cells: cells}
	die := geom.R(0, 0, 40000, 40000)
	pl, err := place.Place(nl, place.Config{Die: die, Clusters: 3, ClusterTightness: 0.5, UtilisationTarget: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(id int) geom.Point { return pl.Origin(id) }
	nets, err := netlist.GenerateNets(cells, pos, die, netlist.NetGenConfig{
		NumNets: nNets,
		Classes: []netlist.ReachClass{
			{Frac: 0.6, MeanReach: 1200},
			{Frac: 0.3, MeanReach: 5000},
			{Frac: 0.1, MeanReach: 15000},
		},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nl.Nets = nets
	r, err := BuildRouting(nl, pl, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nl, pl, r
}

func TestBuildRoutingValid(t *testing.T) {
	_, _, r := buildTestDesign(t, 1, 1000, 800)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsFollowLayerDirections(t *testing.T) {
	_, _, r := buildTestDesign(t, 2, 800, 600)
	for _, rt := range r.Routes {
		for _, s := range rt.Segments {
			if s.Len() == 0 {
				t.Fatalf("net %d: zero-length segment stored", rt.Net)
			}
			if s.Dir() != LayerDir(s.Layer) {
				t.Fatalf("net %d: %v segment on %v layer M%d",
					rt.Net, s.Dir(), LayerDir(s.Layer), s.Layer)
			}
		}
	}
}

func TestTrunkLayerPopulationShape(t *testing.T) {
	_, _, r := buildTestDesign(t, 3, 2000, 1500)
	pop := r.LayerPopulation()
	total := 0
	for _, c := range pop {
		total += c
	}
	if total != len(r.Routes) {
		t.Fatalf("population sums to %d, want %d", total, len(r.Routes))
	}
	// Lower layers must hold more nets than the top layer.
	if pop[2] <= pop[9] {
		t.Errorf("layer population not bottom-heavy: M2=%d, M9=%d", pop[2], pop[9])
	}
	if pop[9] == 0 {
		t.Error("no nets on the top layer; top-layer experiments would be empty")
	}
}

func TestLongNetsGetHighLayers(t *testing.T) {
	nl, pl, r := buildTestDesign(t, 4, 2000, 1500)
	var lowLens, highLens []float64
	for i := range nl.Nets {
		pts := pinPoints(nl, pl, &nl.Nets[i])
		h := float64(geom.BoundingBox(pts).HalfPerimeter())
		if r.Routes[i].TrunkLayer >= 8 {
			highLens = append(highLens, h)
		} else if r.Routes[i].TrunkLayer <= 3 {
			lowLens = append(lowLens, h)
		}
	}
	if len(highLens) == 0 || len(lowLens) == 0 {
		t.Skip("degenerate layer assignment")
	}
	if mean(highLens) < 2*mean(lowLens) {
		t.Errorf("high-layer nets (mean HPWL %.0f) not clearly longer than low-layer nets (%.0f)",
			mean(highLens), mean(lowLens))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestTrunkEndpointsOnTrack(t *testing.T) {
	_, _, r := buildTestDesign(t, 5, 800, 600)
	for _, rt := range r.Routes {
		if rt.TrunkLayer <= 2 {
			continue
		}
		pitch := TrackPitch(rt.TrunkLayer)
		if LayerDir(rt.TrunkLayer) == Horizontal {
			if rt.TrunkA.Y != rt.TrunkB.Y {
				t.Fatalf("net %d: horizontal trunk endpoints differ in y", rt.Net)
			}
			if rt.TrunkA.Y%pitch != 0 && rt.TrunkA.Y != r.Die.Hi.Y && rt.TrunkA.Y != r.Die.Lo.Y {
				t.Fatalf("net %d: trunk y=%d not on M%d track pitch %d",
					rt.Net, rt.TrunkA.Y, rt.TrunkLayer, pitch)
			}
		} else {
			if rt.TrunkA.X != rt.TrunkB.X {
				t.Fatalf("net %d: vertical trunk endpoints differ in x", rt.Net)
			}
			if rt.TrunkA.X%pitch != 0 && rt.TrunkA.X != r.Die.Hi.X && rt.TrunkA.X != r.Die.Lo.X {
				t.Fatalf("net %d: trunk x=%d not on M%d track pitch %d",
					rt.Net, rt.TrunkA.X, rt.TrunkLayer, pitch)
			}
		}
	}
}

func TestStackViasComplete(t *testing.T) {
	_, _, r := buildTestDesign(t, 6, 800, 600)
	for _, rt := range r.Routes {
		if rt.TrunkLayer <= 2 {
			continue
		}
		// Each side must have vias on every via layer 2..trunk-2 at the
		// escape point, plus the trunk-end via at trunk-1.
		for _, side := range []Side{DriverSide, SinkSide} {
			at := rt.DriverEscape
			end := rt.TrunkA
			if side == SinkSide {
				at, end = rt.SinkEscape, rt.TrunkB
			}
			seen := map[int]bool{}
			for _, v := range rt.Vias {
				if v.Side != side {
					continue
				}
				if v.Layer >= 2 && v.Layer <= rt.TrunkLayer-2 && v.At == at {
					seen[v.Layer] = true
				}
				if v.Layer == rt.TrunkLayer-1 && v.At == end {
					seen[v.Layer] = true
				}
			}
			for l := 2; l <= rt.TrunkLayer-1; l++ {
				if !seen[l] {
					t.Fatalf("net %d side %v: missing via on via layer %d", rt.Net, side, l)
				}
			}
		}
	}
}

func TestWirelengthBelowMonotonic(t *testing.T) {
	_, _, r := buildTestDesign(t, 7, 500, 400)
	for _, rt := range r.Routes {
		prev := geom.Coord(-1)
		for m := 1; m <= NumMetal; m++ {
			w := rt.WirelengthBelow(m, DriverSide) + rt.WirelengthBelow(m, SinkSide)
			if w < prev {
				t.Fatalf("net %d: wirelength below M%d decreased", rt.Net, m)
			}
			prev = w
		}
		if got := rt.WirelengthBelow(NumMetal, DriverSide) + rt.WirelengthBelow(NumMetal, SinkSide); got != rt.Wirelength() {
			t.Fatalf("net %d: side wirelengths %d do not sum to total %d", rt.Net, got, rt.Wirelength())
		}
	}
}

func TestRoutingDeterministicWithSeed(t *testing.T) {
	_, _, a := buildTestDesign(t, 8, 400, 300)
	_, _, b := buildTestDesign(t, 8, 400, 300)
	if len(a.Routes) != len(b.Routes) {
		t.Fatal("route counts differ between identical-seed runs")
	}
	for i := range a.Routes {
		if a.Routes[i].TrunkLayer != b.Routes[i].TrunkLayer ||
			a.Routes[i].TrunkA != b.Routes[i].TrunkA ||
			a.Routes[i].DriverEscape != b.Routes[i].DriverEscape {
			t.Fatalf("route %d differs between identical-seed runs", i)
		}
	}
}

func TestBuildRoutingRejectsEmptyNetlist(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lib := cell.DefaultLibrary()
	cells, err := netlist.GenerateCells(lib, netlist.CellMixConfig{NumCells: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nl := &netlist.Netlist{Lib: lib, Cells: cells}
	pl, err := place.Place(nl, place.Config{Die: geom.R(0, 0, 10000, 10000)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildRouting(nl, pl, DefaultConfig(), rng); err == nil {
		t.Error("want error for empty netlist")
	}
}

func TestRouteValidateCatchesBadGeometry(t *testing.T) {
	good := Route{Net: 0, TrunkLayer: 5, Segments: []Segment{
		{Layer: 5, A: geom.Pt(0, 0), B: geom.Pt(10, 0)},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good route rejected: %v", err)
	}

	diag := Route{Net: 0, TrunkLayer: 5, Segments: []Segment{
		{Layer: 5, A: geom.Pt(0, 0), B: geom.Pt(10, 10)},
	}}
	if diag.Validate() == nil {
		t.Error("diagonal segment not caught")
	}

	badLayer := Route{Net: 0, TrunkLayer: 5, Segments: []Segment{
		{Layer: 12, A: geom.Pt(0, 0), B: geom.Pt(10, 0)},
	}}
	if badLayer.Validate() == nil {
		t.Error("out-of-range layer not caught")
	}

	aboveTrunk := Route{Net: 0, TrunkLayer: 3, Segments: []Segment{
		{Layer: 5, A: geom.Pt(0, 0), B: geom.Pt(10, 0)},
	}}
	if aboveTrunk.Validate() == nil {
		t.Error("segment above trunk not caught")
	}

	badVia := Route{Net: 0, TrunkLayer: 5, Vias: []Via{{Layer: 8}}}
	if badVia.Validate() == nil {
		t.Error("via at/above trunk not caught")
	}

	unnormalised := Route{Net: 0, TrunkLayer: 5, Segments: []Segment{
		{Layer: 5, A: geom.Pt(10, 0), B: geom.Pt(0, 0)},
	}}
	if unnormalised.Validate() == nil {
		t.Error("unnormalised segment not caught")
	}
}

func TestEscapePointsNearPins(t *testing.T) {
	nl, pl, r := buildTestDesign(t, 10, 800, 600)
	var worst geom.Coord
	for i := range nl.Nets {
		rt := &r.Routes[i]
		if rt.TrunkLayer <= 2 {
			continue
		}
		d := pl.PinLocation(nl, nl.Nets[i].Driver).Manhattan(rt.DriverEscape)
		if d > worst {
			worst = d
		}
	}
	// Escape jitter is congestion-scaled but should stay within a few
	// thousand DBU on a 40k die.
	if worst > 5000 {
		t.Errorf("worst escape displacement %d too large", worst)
	}
}

func TestRerouteSelective(t *testing.T) {
	nl, pl, r := buildTestDesign(t, 30, 400, 300)
	rng := rand.New(rand.NewSource(1))
	// Reroute net 0 to the top layer; all other routes must be untouched.
	assign := map[int]int{0: NumMetal}
	nr, err := r.Reroute(nl, pl, assign, r.Cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Routes[0].TrunkLayer != NumMetal {
		t.Errorf("net 0 trunk = %d, want %d", nr.Routes[0].TrunkLayer, NumMetal)
	}
	for i := 1; i < len(nr.Routes); i++ {
		if nr.Routes[i].TrunkA != r.Routes[i].TrunkA {
			t.Fatalf("unselected net %d changed", i)
		}
	}
	if err := nr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if r.Routes[0].TrunkLayer == NumMetal && nr.Routes[0].TrunkA == r.Routes[0].TrunkA {
		t.Log("net 0 already on top layer; weak test")
	}
}

func TestRerouteRejectsBadInput(t *testing.T) {
	nl, pl, r := buildTestDesign(t, 31, 100, 80)
	rng := rand.New(rand.NewSource(2))
	if _, err := r.Reroute(nl, pl, map[int]int{-1: 5}, r.Cfg, rng); err == nil {
		t.Error("negative net ID accepted")
	}
	if _, err := r.Reroute(nl, pl, map[int]int{len(r.Routes): 5}, r.Cfg, rng); err == nil {
		t.Error("out-of-range net ID accepted")
	}
	if _, err := r.Reroute(nl, pl, map[int]int{0: 1}, r.Cfg, rng); err == nil {
		t.Error("trunk layer 1 accepted")
	}
	if _, err := r.Reroute(nl, pl, map[int]int{0: NumMetal + 1}, r.Cfg, rng); err == nil {
		t.Error("trunk layer above top accepted")
	}
}
