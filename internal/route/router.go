package route

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Config controls the router.
type Config struct {
	// LayerFracs[m] is the fraction of nets whose trunk is assigned to
	// metal layer m (index 0 and 1 unused; valid trunk layers are 2..9).
	// Assignment is by net length rank: the longest nets get the highest
	// layers, as routers do to exploit the wide fast top-layer wires.
	// Fractions are normalised internally.
	LayerFracs [NumMetal + 1]float64
	// CongestionTile is the tile size of the demand grid used for
	// congestion-driven promotion and escape jitter. Zero selects a
	// default of 1/24 of the die width.
	CongestionTile geom.Coord
	// PromoteProb is the probability that a net in a congested tile is
	// promoted one trunk layer up, spreading demand the way a
	// congestion-driven router would.
	PromoteProb float64
	// EscapeJitter scales the congestion-dependent displacement between a
	// pin and its via-stack escape point. Higher local congestion pushes
	// escape stacks farther from their pins, which is the mechanism that
	// makes attacks harder in congested regions (paper §II-B).
	EscapeJitter float64
	// DetourProb is the probability that a trunk takes a detour track
	// rather than the straight track, modelling rip-up-and-reroute under
	// congestion.
	DetourProb float64
}

// DefaultConfig returns router settings producing layer populations similar
// in shape to the paper's benchmarks: most nets local (low trunks), a
// minority promoted to the top layers.
func DefaultConfig() Config {
	var f [NumMetal + 1]float64
	f[2], f[3], f[4] = 0.30, 0.22, 0.16
	f[5], f[6] = 0.12, 0.08
	f[7], f[8] = 0.06, 0.04
	f[9] = 0.02
	return Config{
		LayerFracs:   f,
		PromoteProb:  0.25,
		EscapeJitter: 1.0,
		DetourProb:   0.3,
	}
}

// Routing is the routed view of a design: one Route per net plus the demand
// grid used during construction (retained for congestion queries).
type Routing struct {
	Die    geom.Rect
	Routes []Route
	Demand *geom.Grid
	// Cfg is the configuration the routing was built with, retained so
	// obfuscation transforms can re-route nets consistently.
	Cfg Config
}

// BuildRouting assigns trunk layers to every net of nl and synthesises their
// route geometry. The result is deterministic for a fixed rng state.
func BuildRouting(nl *netlist.Netlist, pl *place.Placement, cfg Config, rng *rand.Rand) (*Routing, error) {
	if len(nl.Nets) == 0 {
		return nil, fmt.Errorf("route: netlist has no nets")
	}
	die := pl.Die
	tile := cfg.CongestionTile
	if tile <= 0 {
		tile = die.Width() / 24
		if tile <= 0 {
			tile = 1
		}
	}

	// Demand grid: each net deposits its bounding-box centre; tiles crossed
	// by many nets are congested.
	demand := geom.NewGrid(die, tile)
	bboxes := make([]geom.Rect, len(nl.Nets))
	for i := range nl.Nets {
		pts := pinPoints(nl, pl, &nl.Nets[i])
		bboxes[i] = geom.BoundingBox(pts)
		demand.Add(bboxes[i].Center())
	}
	meanDemand := float64(demand.Total()) / float64(numTiles(demand))

	layers := assignLayers(bboxes, cfg, demand, meanDemand, rng)

	r := &Routing{Die: die, Routes: make([]Route, len(nl.Nets)), Demand: demand, Cfg: cfg}
	for i := range nl.Nets {
		r.Routes[i] = routeNet(nl, pl, &nl.Nets[i], layers[i], cfg, demand, meanDemand, rng)
	}
	return r, nil
}

// Reroute returns a copy of the routing in which the selected nets are
// re-routed: assign maps net IDs to their new trunk layers (2..NumMetal),
// and cfg overrides the router personality (escape jitter, detours) for
// the re-routed nets. Unselected nets keep their original routes. This is
// the primitive behind the obfuscation transforms: lifting nets to higher
// layers and perturbing routes are both re-routing operations.
func (r *Routing) Reroute(nl *netlist.Netlist, pl *place.Placement, assign map[int]int, cfg Config, rng *rand.Rand) (*Routing, error) {
	out := &Routing{
		Die:    r.Die,
		Routes: append([]Route(nil), r.Routes...),
		Demand: r.Demand,
		Cfg:    r.Cfg,
	}
	meanDemand := float64(r.Demand.Total()) / float64(numTiles(r.Demand))
	for netID, trunk := range assign {
		if netID < 0 || netID >= len(out.Routes) {
			return nil, fmt.Errorf("route: reroute of unknown net %d", netID)
		}
		if trunk < 2 || trunk > NumMetal {
			return nil, fmt.Errorf("route: reroute of net %d to invalid layer %d", netID, trunk)
		}
		out.Routes[netID] = routeNet(nl, pl, &nl.Nets[netID], trunk, cfg, r.Demand, meanDemand, rng)
	}
	return out, nil
}

func numTiles(g *geom.Grid) int {
	nx, ny := g.Dims()
	return nx * ny
}

func pinPoints(nl *netlist.Netlist, pl *place.Placement, n *netlist.Net) []geom.Point {
	pts := make([]geom.Point, 0, 1+len(n.Sinks))
	for _, ref := range n.Pins() {
		pts = append(pts, pl.PinLocation(nl, ref))
	}
	return pts
}

// assignLayers gives each net a trunk layer: nets are ranked by HPWL and the
// configured fractions are applied from the top layer down, so the longest
// nets use the widest, highest wires. Congestion then promotes some nets.
func assignLayers(bboxes []geom.Rect, cfg Config, demand *geom.Grid, meanDemand float64, rng *rand.Rand) []int {
	n := len(bboxes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ha := bboxes[order[a]].HalfPerimeter()
		hb := bboxes[order[b]].HalfPerimeter()
		if ha != hb {
			return ha > hb
		}
		return order[a] < order[b]
	})

	var total float64
	for m := 2; m <= NumMetal; m++ {
		total += cfg.LayerFracs[m]
	}
	if total <= 0 {
		total = 1
	}

	layers := make([]int, n)
	idx := 0
	for m := NumMetal; m >= 2; m-- {
		quota := int(float64(n) * cfg.LayerFracs[m] / total)
		if m == 2 {
			quota = n - idx // absorb rounding remainder in the bottom pair
		}
		for k := 0; k < quota && idx < n; k++ {
			layers[order[idx]] = m
			idx++
		}
	}
	for ; idx < n; idx++ {
		layers[order[idx]] = 2
	}

	// Congestion-driven promotion: nets in over-subscribed tiles move up a
	// layer with probability PromoteProb, as a congestion-aware router
	// would spill demand upward.
	for i := range layers {
		if layers[i] >= NumMetal {
			continue
		}
		d := demand.Density(bboxes[i].Center(), 0)
		if d > 1.5*meanDemand && rng.Float64() < cfg.PromoteProb {
			layers[i]++
		}
	}
	return layers
}

// congestionAt returns a >=0 congestion factor at p: 0 at or below average
// demand, growing linearly above it.
func congestionAt(demand *geom.Grid, meanDemand float64, p geom.Point) float64 {
	d := demand.Density(p, 1)
	if meanDemand <= 0 {
		return 0
	}
	f := d/meanDemand - 1
	if f < 0 {
		return 0
	}
	return f
}

// routeNet synthesises the geometry of one net:
//
//	driver pin --(M1/M2 local)-- driver escape ==(via stack)== feeder on
//	M(T-1) -- trunk on MT -- feeder on M(T-1) ==(via stack)== sink escape
//	--(M1/M2 local)-- sink pins
//
// Nets with trunk layer 2 are routed as plain M1/M2 L-shapes.
func routeNet(nl *netlist.Netlist, pl *place.Placement, n *netlist.Net,
	trunk int, cfg Config, demand *geom.Grid, meanDemand float64, rng *rand.Rand) Route {

	driver := pl.PinLocation(nl, n.Driver)
	sinkPts := make([]geom.Point, len(n.Sinks))
	for i, s := range n.Sinks {
		sinkPts[i] = pl.PinLocation(nl, s)
	}
	sinkCenter := geom.Centroid(sinkPts)

	rt := Route{Net: n.ID, TrunkLayer: trunk}

	if trunk <= 2 {
		rt.TrunkLayer = 2
		// Pure local routing: L-shapes from the driver to every sink on
		// M1 (horizontal) and M2 (vertical). No escape structure.
		rt.DriverEscape, rt.SinkEscape = driver, sinkCenter
		rt.TrunkA, rt.TrunkB = driver, sinkCenter
		for _, sp := range sinkPts {
			addLRoute(&rt, driver, sp, 1, 2, DriverSide)
		}
		return rt
	}

	// Escape points: pins displaced by congestion-scaled jitter, snapped to
	// mid-level track grids (x to the M4 grid, y to the M3 grid). The via
	// stack to the trunk stands at the escape point.
	escape := func(p geom.Point, side Side) geom.Point {
		cong := congestionAt(demand, meanDemand, p)
		sigma := cfg.EscapeJitter * float64(TrackPitch(2)) * (1 + 2*cong)
		e := geom.Pt(
			p.X+geom.Coord(rng.NormFloat64()*sigma),
			p.Y+geom.Coord(rng.NormFloat64()*sigma),
		)
		e = demand.Bounds().ClampPoint(e)
		return geom.Pt(Snap(e.X, TrackPitch(4)), Snap(e.Y, TrackPitch(3)))
	}
	eD := escape(driver, DriverSide)
	eS := escape(sinkCenter, SinkSide)

	// Local routing below the stacks.
	addLRoute(&rt, driver, eD, 1, 2, DriverSide)
	for _, sp := range sinkPts {
		addLRoute(&rt, eS, sp, 1, 2, SinkSide)
	}

	// Via stacks from M2 up to the feeder layer M(trunk-1).
	for v := 2; v <= trunk-2; v++ {
		rt.Vias = append(rt.Vias, Via{Layer: v, At: eD, Side: DriverSide})
		rt.Vias = append(rt.Vias, Via{Layer: v, At: eS, Side: SinkSide})
	}

	// Trunk track selection. For a horizontal trunk the track is a y
	// coordinate snapped to the MT pitch, chosen near one endpoint or the
	// midpoint, with congestion-driven detours.
	pitch := TrackPitch(trunk)
	feeder := trunk - 1
	detour := func(at geom.Point) geom.Coord {
		if rng.Float64() >= cfg.DetourProb {
			return 0
		}
		cong := congestionAt(demand, meanDemand, at)
		steps := 1 + int(cong*3) + rng.Intn(2)
		d := geom.Coord(steps) * pitch
		if rng.Intn(2) == 0 {
			return -d
		}
		return d
	}

	if LayerDir(trunk) == Horizontal {
		var yStar geom.Coord
		switch rng.Intn(3) {
		case 0:
			yStar = eD.Y
		case 1:
			yStar = eS.Y
		default:
			yStar = (eD.Y + eS.Y) / 2
		}
		yStar = Snap(yStar+detour(geom.Pt((eD.X+eS.X)/2, yStar)), pitch)
		yStar = clampCoord(yStar, demand.Bounds().Lo.Y, demand.Bounds().Hi.Y)

		rt.TrunkA = geom.Pt(eD.X, yStar)
		rt.TrunkB = geom.Pt(eS.X, yStar)
		addSeg(&rt, feeder, eD, rt.TrunkA, DriverSide)
		addSeg(&rt, feeder, rt.TrunkB, eS, SinkSide)
		addSeg(&rt, trunk, rt.TrunkA, rt.TrunkB, DriverSide)
	} else {
		var xStar geom.Coord
		switch rng.Intn(3) {
		case 0:
			xStar = eD.X
		case 1:
			xStar = eS.X
		default:
			xStar = (eD.X + eS.X) / 2
		}
		xStar = Snap(xStar+detour(geom.Pt(xStar, (eD.Y+eS.Y)/2)), pitch)
		xStar = clampCoord(xStar, demand.Bounds().Lo.X, demand.Bounds().Hi.X)

		rt.TrunkA = geom.Pt(xStar, eD.Y)
		rt.TrunkB = geom.Pt(xStar, eS.Y)
		addSeg(&rt, feeder, eD, rt.TrunkA, DriverSide)
		addSeg(&rt, feeder, rt.TrunkB, eS, SinkSide)
		addSeg(&rt, trunk, rt.TrunkA, rt.TrunkB, DriverSide)
	}

	// Trunk-end vias on via layer trunk-1.
	rt.Vias = append(rt.Vias,
		Via{Layer: trunk - 1, At: rt.TrunkA, Side: DriverSide},
		Via{Layer: trunk - 1, At: rt.TrunkB, Side: SinkSide},
	)

	rt.DriverEscape, rt.SinkEscape = eD, eS
	return rt
}

// addLRoute adds an L-shaped connection from a to b using hLayer for the
// horizontal leg and vLayer for the vertical leg.
func addLRoute(rt *Route, a, b geom.Point, hLayer, vLayer int, side Side) {
	corner := geom.Pt(b.X, a.Y)
	addSeg(rt, hLayer, a, corner, side)
	addSeg(rt, vLayer, corner, b, side)
	if a.Y != b.Y && a.X != b.X {
		rt.Vias = append(rt.Vias, Via{Layer: 1, At: corner, Side: side})
	}
}

// addSeg appends a normalised segment, dropping zero-length wires.
func addSeg(rt *Route, layer int, a, b geom.Point, side Side) {
	if a == b {
		return
	}
	if a.X > b.X || a.Y > b.Y {
		a, b = b, a
	}
	rt.Segments = append(rt.Segments, Segment{Layer: layer, A: a, B: b, Side: side})
}

func clampCoord(v, lo, hi geom.Coord) geom.Coord {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Validate checks every route in the routing.
func (r *Routing) Validate() error {
	for i := range r.Routes {
		if err := r.Routes[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// LayerPopulation returns how many nets have each trunk layer, indexed by
// metal layer (entries 0 and 1 are always zero).
func (r *Routing) LayerPopulation() [NumMetal + 1]int {
	var pop [NumMetal + 1]int
	for i := range r.Routes {
		pop[r.Routes[i].TrunkLayer]++
	}
	return pop
}
